// neighborhood_sampling: GraphSage-style neighborhood expansion on the walk engine.
//
// §1: "an important component of approximate graph mining systems (such as ASAP and
// GraphSage) performs neighborhood sampling that expands sampled subgraphs, which
// would also benefit from FlashMob's cache-friendly design." This example builds
// k-hop sampled neighborhoods for a batch of seed vertices by launching short
// walks: fanout walkers per seed, depth-step walks; the multiset of visited
// vertices per seed is the sampled neighborhood (with repetition weighting, the
// standard GraphSage estimator).
//
// It also demonstrates PathSet bookkeeping: walker j belongs to seed j / fanout.
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "src/fm.h"

int main() {
  using namespace fm;

  PowerLawConfig config;
  config.degrees.num_vertices = 200000;
  config.degrees.avg_degree = 12;
  config.degrees.alpha = 0.8;
  config.degrees.max_degree = 200000 / 16;
  CsrGraph g = GeneratePowerLawGraph(config);

  const uint32_t kDepth = 2;    // 2-hop neighborhoods
  const uint32_t kFanout = 25;  // GraphSage's common 25x10 schedule, 1st layer
  const Wid kSeeds = 4096;      // minibatch of seed vertices

  // Seeds: a random minibatch of vertices. WalkSpec::start_vertices assigns
  // walker j to seed j % kSeeds, so each seed receives exactly kFanout walkers.
  XorShiftRng seed_rng(7);
  std::vector<Vid> seeds(kSeeds);
  for (auto& s : seeds) {
    s = static_cast<Vid>(seed_rng.NextBounded(g.num_vertices()));
  }
  WalkSpec spec;
  spec.steps = kDepth;
  spec.num_walkers = kSeeds * kFanout;
  spec.start_vertices = seeds;
  spec.seed = 99;
  FlashMobEngine engine(g);
  WalkResult result = engine.Run(spec);
  std::printf("sampled %llu walkers x %u hops at %.1f ns/step\n",
              static_cast<unsigned long long>(spec.num_walkers), kDepth,
              result.stats.PerStepNs());

  // Group walkers by start vertex => neighborhoods.
  std::unordered_map<Vid, std::unordered_map<Vid, uint32_t>> neighborhoods;
  for (Wid w = 0; w < result.paths.num_walkers(); ++w) {
    Vid seed = result.paths.At(w, 0);
    auto& hood = neighborhoods[seed];
    for (uint32_t s = 1; s <= kDepth; ++s) {
      ++hood[result.paths.At(w, s)];
    }
  }

  // Report neighborhood-size statistics (the quantity GNN training cares about).
  std::vector<double> sizes;
  sizes.reserve(neighborhoods.size());
  for (const auto& [seed, hood] : neighborhoods) {
    sizes.push_back(static_cast<double>(hood.size()));
  }
  std::printf("distinct seeds: %zu (of %llu requested)\n", neighborhoods.size(),
              static_cast<unsigned long long>(kSeeds));
  std::printf("sampled-neighborhood size: mean %.1f, p50 %.0f, p95 %.0f, p99 %.0f\n",
              Mean(sizes), Percentile(sizes, 50), Percentile(sizes, 95),
              Percentile(sizes, 99));

  // Show one hub's top-weighted sampled neighbors (estimator weights = visit
  // multiplicity).
  Vid hub = 0;  // highest-degree vertex (generator emits sorted labels)
  if (auto it = neighborhoods.find(hub); it != neighborhoods.end()) {
    std::vector<std::pair<Vid, uint32_t>> top(it->second.begin(), it->second.end());
    std::sort(top.begin(), top.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::printf("hub v0 sampled neighborhood (top 8 of %zu):", top.size());
    for (size_t i = 0; i < std::min<size_t>(8, top.size()); ++i) {
      std::printf(" v%u(x%u)", top[i].first, top[i].second);
    }
    std::printf("\n");
  }
  return 0;
}
