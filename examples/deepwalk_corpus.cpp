// deepwalk_corpus: the node-embedding front end the paper's systems feed (§1).
//
// Runs DeepWalk on a graph and materializes skip-gram training pairs — the
// (center, context) vertex pairs within a +-window along each walk — exactly what a
// word2vec-style embedding trainer (GraphVite's GPU side, Tencent's system)
// consumes. Prints corpus statistics and writes the pairs to a file.
//
//   ./deepwalk_corpus [edges.txt] [out_pairs.bin]
#include <cstdio>
#include <fstream>

#include "src/fm.h"

int main(int argc, char** argv) {
  using namespace fm;

  CsrGraph raw;
  if (argc > 1) {
    raw = LoadEdgeListText(argv[1], {.remove_self_loops = true,
                                     .remove_zero_degree = true});
  } else {
    std::printf("no edge list given; using the YT stand-in at 0.25 scale\n");
    raw = LoadDataset(DatasetByName("YT"), 0.25);
  }
  DegreeSortedGraph sorted = DegreeSort(raw);
  const CsrGraph& g = sorted.graph;

  const uint32_t kWindow = 5;   // word2vec-style context window
  const uint32_t kSteps = 40;
  FlashMobEngine engine(g);
  WalkSpec spec = DeepWalkSpec(g.num_vertices(), kSteps, /*rounds=*/1);
  WalkResult result = engine.Run(spec);
  std::printf("walk: %.1f ns/step, %llu total steps\n", result.stats.PerStepNs(),
              static_cast<unsigned long long>(result.stats.total_steps));

  // Emit skip-gram pairs via the corpus library (apps/embedding_corpus.h).
  const char* out_path = argc > 2 ? argv[2] : "deepwalk_pairs.bin";
  CorpusOptions corpus;
  corpus.window = kWindow;
  corpus.id_map = &sorted.new_to_old;
  uint64_t pairs = WriteSkipGramPairs(result.paths, corpus, out_path);
  std::printf("wrote %llu skip-gram pairs to %s (%.1f MB)\n",
              static_cast<unsigned long long>(pairs), out_path,
              pairs * 8 / 1048576.0);

  // Corpus sanity statistics: vertex frequency should follow the walk's stationary
  // distribution (~ degree), which downstream negative sampling relies on.
  auto visits = result.paths.VisitCounts(g.num_vertices());
  uint64_t top1pct = 0, total = 0;
  Vid top = std::max<Vid>(g.num_vertices() / 100, 1);
  for (Vid v = 0; v < g.num_vertices(); ++v) {
    total += visits[v];
    if (v < top) {
      top1pct += visits[v];
    }
  }
  std::printf("corpus skew: top-1%% vertices account for %.1f%% of tokens\n",
              100.0 * top1pct / total);
  return 0;
}
