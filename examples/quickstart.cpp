// Quickstart: load or build a graph, run DeepWalk with FlashMob, inspect output.
//
//   ./quickstart                 # demo on a built-in synthetic graph
//   ./quickstart edges.txt       # walk a text edge list ("u v" per line)
//
// Shows the full public-API flow: GraphBuilder/LoadEdgeListText -> DegreeSort ->
// FlashMobEngine::Run -> PathSet, with IDs mapped back to the caller's labels.
#include <cstdio>

#include "src/fm.h"

int main(int argc, char** argv) {
  using namespace fm;

  // 1. Obtain a graph.
  CsrGraph raw;
  if (argc > 1) {
    std::printf("loading %s ...\n", argv[1]);
    raw = LoadEdgeListText(argv[1], {.remove_self_loops = true,
                                     .remove_zero_degree = true});
  } else {
    std::printf("generating a demo power-law graph (100k vertices) ...\n");
    PowerLawConfig config;
    config.degrees.num_vertices = 100000;
    config.degrees.avg_degree = 12;
    config.degrees.alpha = 0.8;
    config.shuffle_labels = true;  // pretend the labels arrived in arbitrary order
    raw = GeneratePowerLawGraph(config);
  }
  std::printf("graph: |V|=%u |E|=%llu (CSR %.1f MB)\n", raw.num_vertices(),
              static_cast<unsigned long long>(raw.num_edges()),
              raw.CsrBytes() / 1048576.0);

  // 2. FlashMob requires degree-descending vertex order (§4.1); DegreeSort returns
  //    the relabelled graph plus both ID mappings.
  DegreeSortedGraph sorted = DegreeSort(raw);

  // 3. Walk: 10 rounds of |V| walkers, 80 steps (the DeepWalk tradition).
  FlashMobEngine engine(sorted.graph);
  WalkSpec spec = DeepWalkSpec(sorted.graph.num_vertices(), /*steps=*/80,
                               /*rounds=*/1);
  WalkResult result = engine.Run(spec);

  std::printf("\nwalked %llu steps in %.2fs => %.1f ns/step\n",
              static_cast<unsigned long long>(result.stats.total_steps),
              result.stats.times.Total(), result.stats.PerStepNs());
  std::printf("  sample %.2fs | shuffle %.2fs | other %.2fs | episodes %u\n",
              result.stats.times.sample_s, result.stats.times.shuffle_s,
              result.stats.times.other_s, result.stats.episodes);
  std::printf("plan: %u partitions over %u groups\n", engine.plan().num_vps(),
              engine.plan().num_groups());

  // 4. Paths come back in sorted-ID space; map through new_to_old for output.
  std::printf("\nfirst 3 walks (original vertex IDs):\n");
  for (Wid w = 0; w < 3 && w < result.paths.num_walkers(); ++w) {
    std::printf("  walk %llu:", static_cast<unsigned long long>(w));
    auto path = result.paths.Path(w);
    for (size_t i = 0; i < path.size() && i < 10; ++i) {
      std::printf(" %u", sorted.new_to_old[path[i]]);
    }
    std::printf(" ...\n");
  }

  // 5. The other output mode: stream sampled edges to a downstream consumer.
  uint64_t pairs = 0;
  result.paths.StreamEdges([&](Vid, Vid) { ++pairs; });
  std::printf("\nstreamed %llu training edges to the (stub) consumer\n",
              static_cast<unsigned long long>(pairs));
  return 0;
}
