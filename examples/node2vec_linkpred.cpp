// node2vec_linkpred: link prediction with second-order walks (§2.1's application).
//
// Pipeline: hold out a sample of edges from a graph; run node2vec on the remaining
// graph; score vertex pairs by co-occurrence within a window of the walks; evaluate
// AUC of held-out edges against random non-edges. Demonstrates the node2vec engine
// end to end and that its BFS/DFS interpolation (p, q) affects task quality.
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "src/fm.h"

namespace {

using namespace fm;

// Pair key for co-occurrence counting.
uint64_t Key(Vid a, Vid b) {
  if (a > b) {
    std::swap(a, b);
  }
  return (static_cast<uint64_t>(a) << 32) | b;
}

double EvaluateAuc(const std::unordered_map<uint64_t, uint32_t>& scores,
                   const std::vector<std::pair<Vid, Vid>>& positives,
                   const std::vector<std::pair<Vid, Vid>>& negatives) {
  auto score_of = [&](const std::pair<Vid, Vid>& e) -> double {
    auto it = scores.find(Key(e.first, e.second));
    return it == scores.end() ? 0.0 : it->second;
  };
  // AUC = P(score(pos) > score(neg)) + 0.5 P(==), over all pairs.
  uint64_t wins = 0, ties = 0;
  for (const auto& p : positives) {
    for (const auto& n : negatives) {
      double sp = score_of(p);
      double sn = score_of(n);
      wins += sp > sn;
      ties += sp == sn;
    }
  }
  double total = static_cast<double>(positives.size()) * negatives.size();
  return (wins + 0.5 * ties) / total;
}

}  // namespace

int main() {
  using namespace fm;
  // 1. Build an undirected power-law graph and hold out 300 edges.
  // A locality-structured graph (most edges connect nearby ranks): unlike a pure
  // configuration model, it has real neighborhood structure for the walks to learn.
  PowerLawConfig config;
  config.degrees.num_vertices = 20000;
  config.degrees.avg_degree = 10;
  config.degrees.alpha = 0.3;
  config.locality = 0.85;
  config.locality_window = 64;
  CsrGraph base = GeneratePowerLawGraph(config);

  XorShiftRng rng(2024);
  std::unordered_set<uint64_t> held;
  std::vector<std::pair<Vid, Vid>> positives;
  GraphBuilder builder(base.num_vertices());
  for (Vid v = 0; v < base.num_vertices(); ++v) {
    for (Vid u : base.neighbors(v)) {
      if (u == v) {
        continue;
      }
      if (positives.size() < 300 && base.degree(v) > 2 &&
          rng.NextDouble() < 0.002 && held.insert(Key(v, u)).second) {
        positives.push_back({v, u});
        continue;  // held out
      }
      builder.AddEdge(v, u);
      builder.AddEdge(u, v);
    }
  }
  std::vector<std::pair<Vid, Vid>> negatives;
  while (negatives.size() < 300) {
    Vid a = static_cast<Vid>(rng.NextBounded(base.num_vertices()));
    Vid b = static_cast<Vid>(rng.NextBounded(base.num_vertices()));
    if (a != b && !base.HasEdge(a, b) && !base.HasEdge(b, a)) {
      negatives.push_back({a, b});
    }
  }
  CsrGraph train = builder.Build({.remove_duplicate_edges = true});
  DegreeSortedGraph sorted = DegreeSort(train);
  std::printf("train graph: |V|=%u |E|=%llu; %zu held-out edges, %zu non-edges\n",
              sorted.graph.num_vertices(),
              static_cast<unsigned long long>(sorted.graph.num_edges()),
              positives.size(), negatives.size());

  // 2. node2vec walks at two (p, q) settings; score pairs by windowed
  //    co-occurrence (a standard cheap proxy for embedding dot products).
  for (auto [p, q] : {std::pair<double, double>{1.0, 1.0}, {0.25, 4.0}}) {
    FlashMobEngine engine(sorted.graph);
    WalkSpec spec = Node2VecSpec(sorted.graph.num_vertices(), p, q,
                                 /*steps=*/20, /*rounds=*/2);
    WalkResult result = engine.Run(spec);

    std::unordered_map<uint64_t, uint32_t> scores;
    const uint32_t kWindow = 4;
    for (Wid w = 0; w < result.paths.num_walkers(); ++w) {
      auto path = result.paths.Path(w);
      for (size_t i = 0; i < path.size(); ++i) {
        for (size_t j = i + 1; j < std::min(path.size(), i + 1 + kWindow); ++j) {
          Vid a = sorted.new_to_old[path[i]];
          Vid b = sorted.new_to_old[path[j]];
          if (a != b) {
            ++scores[Key(a, b)];
          }
        }
      }
    }
    double auc = EvaluateAuc(scores, positives, negatives);
    std::printf("node2vec p=%.2f q=%.2f: %.1f ns/step, link-pred AUC = %.3f\n", p,
                q, result.stats.PerStepNs(), auc);
  }
  std::printf("(AUC well above 0.5 = walks carry real link signal)\n");
  return 0;
}
