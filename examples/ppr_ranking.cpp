// ppr_ranking: personalized PageRank by Monte-Carlo random walks (§1 lists
// PageRank/ranking among random walk's classic applications).
//
// Uses the apps/pagerank API: walkers start at the seed set and terminate with
// probability (1 - damping) per step (the engine's stop_probability path);
// normalized visit counts estimate the personalized PageRank vector, validated
// against exact power iteration.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "src/fm.h"

int main() {
  using namespace fm;

  PowerLawConfig config;
  config.degrees.num_vertices = 30000;
  config.degrees.avg_degree = 8;
  config.degrees.alpha = 0.75;
  config.degrees.max_degree = 30000 / 16;
  CsrGraph g = GeneratePowerLawGraph(config);  // already degree-sorted

  PageRankOptions options;
  options.damping = 0.85;
  options.walkers_per_vertex = 40;  // MC budget: 1.2M walks
  options.personalization = {10, 11, 12};  // three popular seeds

  Timer timer;
  std::vector<double> estimate = EstimatePageRank(g, options);
  double mc_seconds = timer.Elapsed();
  timer.Start();
  std::vector<double> exact = PowerIterationPageRank(g, options);
  double pi_seconds = timer.Elapsed();

  std::printf("personalized PageRank on |V|=%u |E|=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("Monte-Carlo (FlashMob walks): %.2fs | power iteration: %.2fs | "
              "L1 distance: %.4f\n",
              mc_seconds, pi_seconds, L1Distance(estimate, exact));

  std::vector<Vid> by_est(g.num_vertices()), by_exact(g.num_vertices());
  std::iota(by_est.begin(), by_est.end(), 0);
  by_exact = by_est;
  std::sort(by_est.begin(), by_est.end(),
            [&](Vid a, Vid b) { return estimate[a] > estimate[b]; });
  std::sort(by_exact.begin(), by_exact.end(),
            [&](Vid a, Vid b) { return exact[a] > exact[b]; });

  std::printf("\n%-6s %-24s %-24s\n", "rank", "MC estimate", "exact PPR");
  for (int i = 0; i < 10; ++i) {
    std::printf("%-6d v%-8u %9.4f%%    v%-8u %9.4f%%\n", i + 1, by_est[i],
                100.0 * estimate[by_est[i]], by_exact[i],
                100.0 * exact[by_exact[i]]);
  }
  size_t overlap = 0;
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      overlap += by_est[i] == by_exact[j];
    }
  }
  std::printf("\ntop-10 overlap with exact PPR: %zu/10\n", overlap);
  return overlap >= 8 ? 0 : 1;
}
