// out_of_core_walk: walking a disk-resident graph (the paper's §5.4/§7 future-work
// direction, implemented here via a memory-mapped CSR).
//
// FlashMob's streaming design makes out-of-core walking practical: graph data is
// read partition-at-a-time with mostly-sequential access, so the OS page cache can
// stage partitions from disk on demand ("A larger graph streamed through the DRAM
// 80 times ... would consume an I/O bandwidth of 5GB/s, below the capability of
// today's commodity NVMe SSDs", §5.4).
//
// The demo generates a graph, stores it as a binary CSR file, drops the in-memory
// copy, and walks the file through LoadCsrBinaryMapped — comparing against the
// in-memory run for both correctness (identical paths for identical seeds) and
// speed.
#include <cstdio>
#include <filesystem>

#include "src/fm.h"

int main(int argc, char** argv) {
  using namespace fm;

  std::filesystem::path csr_path =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() / "fm_ooc.csr";

  if (!std::filesystem::exists(csr_path)) {
    std::printf("generating a graph and saving CSR to %s ...\n",
                csr_path.c_str());
    PowerLawConfig config;
    config.degrees.num_vertices = 500000;
    config.degrees.avg_degree = 20;
    config.degrees.alpha = 0.8;
    config.degrees.max_degree = 500000 / 16;
    CsrGraph g = GeneratePowerLawGraph(config);
    SaveCsrBinary(g, csr_path.string());
  }

  WalkSpec spec;
  spec.steps = 24;
  spec.keep_paths = false;

  // In-memory reference run.
  CsrGraph in_memory = LoadCsrBinary(csr_path.string());
  spec.num_walkers = static_cast<Wid>(in_memory.num_vertices()) * 2;
  {
    FlashMobEngine engine(in_memory);
    WalkResult r = engine.Run(spec);
    std::printf("in-memory : %6.1f ns/step  (|V|=%u |E|=%llu, CSR %.1f MB)\n",
                r.stats.PerStepNs(), in_memory.num_vertices(),
                static_cast<unsigned long long>(in_memory.num_edges()),
                in_memory.CsrBytes() / 1048576.0);
  }

  // Out-of-core run: the CSR arrays stay in the file mapping; the page cache
  // streams them in as the sample stage touches each partition.
  CsrGraph mapped = LoadCsrBinaryMapped(csr_path.string());
  std::printf("mapped graph reports memory_mapped=%d\n", mapped.memory_mapped());
  {
    FlashMobEngine engine(mapped);
    WalkResult r = engine.Run(spec);
    std::printf("mmap/disk : %6.1f ns/step  (first run may page in from disk)\n",
                r.stats.PerStepNs());
    // Second run: pages are warm, matching in-memory speed.
    WalkResult r2 = engine.Run(spec);
    std::printf("mmap warm : %6.1f ns/step\n", r2.stats.PerStepNs());
  }

  // Correctness: same seed => byte-identical walk on both backings.
  WalkSpec check = spec;
  check.keep_paths = true;
  check.num_walkers = 10000;
  FlashMobEngine a(in_memory), b(mapped);
  WalkResult ra = a.Run(check);
  WalkResult rb = b.Run(check);
  bool same = true;
  for (uint32_t s = 0; s <= check.steps && same; ++s) {
    same = ra.paths.Row(s) == rb.paths.Row(s);
  }
  std::printf("identical paths across backings: %s\n", same ? "yes" : "NO");
  return same ? 0 : 1;
}
