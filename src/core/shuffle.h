// Walker-to-partition shuffle (§4.3) behind a pluggable ShuffleBackend.
//
// Between walk steps, the walker array W_i (walker order) is regrouped into SW_i
// (partition order). Two backends produce the identical layout:
//
//  * direct  — the two-pass counting shuffle: pass 1 counts walkers per
//    destination partition per thread chunk, pass 2 scatters after a prefix sum
//    (escalating to the two-level outer/inner path of §4.4 when the plan has
//    internal-shuffle groups). This is the bit-exact oracle.
//  * binned  — propagation blocking: pass 1 radix-bins walkers into cache-sized
//    segments through per-(worker, bin) write-combining buffers (full buffers
//    flush to the record arena as whole cache lines, via streaming stores where
//    available); pass 2 scatters each cache-resident segment into its final SW
//    range with all destinations fitting in L2. Bin geometry comes from the
//    ShufflePlan computed in partition_plan.{h,cc}.
//
// Within each partition, SW preserves the W-scan order — this implicit ordering
// is what lets the engine recover walker identities without storing
// <walker, vertex> pairs: after the sample stage overwrites SW in place,
// Gather() re-scans W_i, replays the same counting offsets, and writes each
// walker's new location back to its walker-order slot in W_{i+1} ("Compact
// walker state storage"). Both backends replay the same offsets — the binned
// backend through its segment structure — so the invariant is
// backend-independent, which the equivalence tests assert bit-for-bit.
//
// The ShuffleBackend seam is deliberately narrow (Scatter/Gather/Simulate*)
// so NUMA-partitioned or disk-block-aware shuffles are one new subclass.
#ifndef SRC_CORE_SHUFFLE_H_
#define SRC_CORE_SHUFFLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/core/partition_plan.h"
#include "src/util/aligned_buffer.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"
#include "src/util/types.h"

namespace fm {

// Scratch memory for the binned backend's record segments and gather values.
// Owned by WalkerState (it already owns every other per-episode array) and
// attached to the Shuffler per episode, so backends never allocate on the hot
// path; buffers grow monotonically and their contents are undefined after
// growth.
class ShuffleArena {
 public:
  Vid* EnsureRecords(size_t vids) { return Ensure(&records_, vids); }
  Vid* EnsureAuxRecords(size_t vids) { return Ensure(&aux_records_, vids); }
  Vid* EnsureValues(size_t vids) { return Ensure(&values_, vids); }
  Vid* EnsureAuxValues(size_t vids) { return Ensure(&aux_values_, vids); }

  size_t capacity_vids() const {
    return records_.size() + aux_records_.size() + values_.size() +
           aux_values_.size();
  }

 private:
  static Vid* Ensure(AlignedBuffer<Vid>* buf, size_t vids) {
    if (buf->size() < vids) {
      buf->Allocate(vids);
    }
    return buf->data();
  }

  AlignedBuffer<Vid> records_;
  AlignedBuffer<Vid> aux_records_;
  AlignedBuffer<Vid> values_;
  AlignedBuffer<Vid> aux_values_;
};

// Per-operation stage breakdown, refreshed by every Scatter/Gather call.
struct ShuffleOpStats {
  // Scatter: record-binning pass / Gather: segment value fetch. 0 for direct.
  double pass1_s = 0;
  // Scatter: counting scatter into SW / Gather: walker-order replay or merge.
  double pass2_s = 0;
  // Full cache lines flushed through the write-combining buffers (binned
  // scatter pass 1; counts the aux stream too). 0 for direct.
  uint64_t flushed_lines = 0;
  // Software prefetches issued by the scatter/gather look-ahead
  // (ShuffleConfig::prefetch_lookahead). 0 when the look-ahead is off.
  uint64_t prefetch_issues = 0;
};

// Callback receiving one memory access of a simulated replay (address and
// byte count); the engine feeds these into the cachesim hierarchy.
using MemAccessFn = std::function<void(const void* addr, uint32_t bytes)>;

// One shuffle implementation. Holds the counting state shared by every
// backend: the per-(chunk, vp) offset table that defines the canonical SW
// layout and that Gather replays.
class ShuffleBackend {
 public:
  ShuffleBackend(const PartitionPlan* plan, ThreadPool* pool);
  virtual ~ShuffleBackend() = default;

  virtual void Scatter(const Vid* w, const Vid* aux, Wid n, Vid* sw,
                       Vid* sw_aux) = 0;
  [[nodiscard]] virtual Status Gather(const Vid* w_prev, Wid n, const Vid* sw,
                                      Vid* w_next, const Vid* sw_aux,
                                      Vid* aux_next) = 0;

  // Replays the access pattern of the last Scatter/Gather (same inputs)
  // through `access` for deterministic cache simulation. Serial; does not
  // mutate shuffle state.
  virtual void SimulateScatter(const Vid* w, const Vid* aux, Wid n,
                               const Vid* sw, const Vid* sw_aux,
                               const MemAccessFn& access) const = 0;
  virtual void SimulateGather(const Vid* w_prev, Wid n, const Vid* sw,
                              const Vid* sw_aux, const Vid* w_next,
                              const Vid* aux_next,
                              const MemAccessFn& access) const = 0;

  virtual ShuffleBackendKind kind() const = 0;
  const char* name() const { return ShuffleBackendName(kind()); }

  virtual void AttachArena(ShuffleArena* /*arena*/) {}

  // Destination look-ahead distance (ShuffleConfig::prefetch_lookahead);
  // applied by the next Scatter/Gather. 0 = off.
  void set_prefetch_lookahead(uint32_t k) { prefetch_lookahead_ = k; }
  uint32_t prefetch_lookahead() const { return prefetch_lookahead_; }

  const std::vector<Wid>& vp_offsets() const { return vp_offsets_; }
  Wid dead_count() const {
    return vp_offsets_.back() - vp_offsets_[vp_offsets_.size() - 2];
  }
  Wid scattered_n() const { return scattered_n_; }
  const ShuffleOpStats& last_scatter_stats() const { return scatter_stats_; }
  const ShuffleOpStats& last_gather_stats() const { return gather_stats_; }

 protected:
  // Pass 1 + prefix sum: fills starts_ and vp_offsets_ for input w[0..n).
  void CountAndPrefix(const Vid* w, Wid n);

  // Walkers of (chunk c, vp) in the last CountAndPrefix; vp == num_vps_ is the
  // dead bin.
  Wid ChunkVpCount(uint32_t c, uint32_t vp) const {
    const size_t row = num_vps_ + 1;
    const Wid next = (c + 1 < num_chunks_) ? starts_[(c + 1) * row + vp]
                                           : vp_offsets_[vp + 1];
    return next - starts_[c * row + vp];
  }

  const PartitionPlan* plan_;
  ThreadPool* pool_;
  uint32_t num_vps_;
  uint32_t num_chunks_;
  uint32_t prefetch_lookahead_ = 0;
  Wid scattered_n_ = 0;

  // starts_[chunk * (num_vps_+1) + vp] = first SW slot for that (chunk, vp) pair.
  std::vector<Wid> starts_;
  std::vector<Wid> vp_offsets_;
  ShuffleOpStats scatter_stats_;
  ShuffleOpStats gather_stats_;
};

// Backend selection for a Shuffler. kAuto with a ShufflePlan runs its
// recommendation; kAuto without one falls back to direct.
struct ShuffleConfig {
  ShuffleBackendKind kind = ShuffleBackendKind::kDirect;
  // Required for kBinned (and consulted by kAuto); must outlive the Shuffler.
  const ShufflePlan* shuffle_plan = nullptr;
  // Scatter/gather destination look-ahead (walkers): while handling walker j,
  // prefetch the destination cursor line for walker j+k. The destination
  // cursors advance sequentially per bin, so the line prefetched through the
  // *current* cursor is the true target's line (or its predecessor) — a pure
  // hint that never changes the layout. 0 disables. The engine sets this from
  // the resolved interleave depth (src/core/interleave.h).
  uint32_t prefetch_lookahead = 0;
};

class Shuffler {
 public:
  // Direct backend — the historical constructor, kept so call sites that only
  // ever want the oracle path stay unchanged.
  Shuffler(const PartitionPlan* plan, ThreadPool* pool);
  Shuffler(const PartitionPlan* plan, ThreadPool* pool,
           const ShuffleConfig& config);
  ~Shuffler();

  // Scatters w[0..n) into sw[0..n), grouped by vertex partition (dead walkers —
  // value kInvalidVid — go to a trailing dead bin). `aux`/`sw_aux` optionally carry
  // a second per-walker attribute through the same permutation (node2vec's previous
  // vertex). After Scatter, vp_offsets()[i]..vp_offsets()[i+1] is partition i's
  // chunk.
  // Out-of-line (shuffle.cc): delegates to the backend, then publishes the
  // op's pass timings / flushed-line / prefetch-issue stats to telemetry.
  void Scatter(const Vid* w, const Vid* aux, Wid n, Vid* sw, Vid* sw_aux);

  // Replays the permutation from w_prev (the array Scatter consumed): writes
  // w_next[j] = sw[position walker j's element was scattered to], and likewise for
  // the aux stream when supplied. Fails (without aborting) when `n` differs
  // from the last Scatter's walker count — the replay would not be a
  // bijection.
  [[nodiscard]] Status Gather(const Vid* w_prev, Wid n, const Vid* sw,
                              Vid* w_next, const Vid* sw_aux, Vid* aux_next);

  void SimulateScatter(const Vid* w, const Vid* aux, Wid n, const Vid* sw,
                       const Vid* sw_aux, const MemAccessFn& access) const {
    backend_->SimulateScatter(w, aux, n, sw, sw_aux, access);
  }
  void SimulateGather(const Vid* w_prev, Wid n, const Vid* sw,
                      const Vid* sw_aux, const Vid* w_next,
                      const Vid* aux_next, const MemAccessFn& access) const {
    backend_->SimulateGather(w_prev, n, sw, sw_aux, w_next, aux_next, access);
  }

  // Binned backends scatter through an externally owned arena; a no-op for
  // direct. Must be called before Scatter when the backend is binned.
  void AttachArena(ShuffleArena* arena) { backend_->AttachArena(arena); }

  // Partition chunk boundaries in SW: size num_vps + 2 (entry num_vps is the dead
  // bin start; entry num_vps+1 == n).
  const std::vector<Wid>& vp_offsets() const { return backend_->vp_offsets(); }

  Wid dead_count() const { return backend_->dead_count(); }

  ShuffleBackendKind backend_kind() const { return backend_->kind(); }
  const char* backend_name() const { return backend_->name(); }
  const ShuffleOpStats& last_scatter_stats() const {
    return backend_->last_scatter_stats();
  }
  const ShuffleOpStats& last_gather_stats() const {
    return backend_->last_gather_stats();
  }

  // Exposed for tests: scatter via the explicit two-level path (outer bins then
  // in-bin counting) regardless of plan.has_internal_shuffle(); must produce the
  // same layout as the direct path. Direct backend only.
  void ScatterTwoLevelForTest(const Vid* w, const Vid* aux, Wid n, Vid* sw,
                              Vid* sw_aux);

 private:
  std::unique_ptr<ShuffleBackend> backend_;
};

}  // namespace fm

#endif  // SRC_CORE_SHUFFLE_H_
