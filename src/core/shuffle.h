// Walker-to-partition shuffle (§4.3).
//
// Between walk steps, the walker array W_i (walker order) is regrouped into SW_i
// (partition order) with a two-pass counting shuffle: pass 1 counts walkers per
// destination partition per thread chunk, pass 2 scatters after a prefix sum. Within
// each partition, SW preserves the W-scan order — this implicit ordering is what lets
// the engine recover walker identities without storing <walker, vertex> pairs: after
// the sample stage overwrites SW in place, Gather() re-scans W_i, replays the same
// counting offsets, and writes each walker's new location back to its walker-order
// slot in W_{i+1} ("Compact walker state storage").
//
// When the plan exceeds the outer fan-out limit, groups flagged `internal_shuffle`
// form a single outer bin and their partitions are separated by a second counting
// pass over the bin's chunk (the "additional level of shuffle" of §4.4). The final
// layout is identical either way — grouped by VP, (chunk, scan)-ordered within VP —
// which tests assert.
#ifndef SRC_CORE_SHUFFLE_H_
#define SRC_CORE_SHUFFLE_H_

#include <vector>

#include "src/core/partition_plan.h"
#include "src/util/thread_pool.h"
#include "src/util/types.h"

namespace fm {

class Shuffler {
 public:
  Shuffler(const PartitionPlan* plan, ThreadPool* pool);

  // Scatters w[0..n) into sw[0..n), grouped by vertex partition (dead walkers —
  // value kInvalidVid — go to a trailing dead bin). `aux`/`sw_aux` optionally carry
  // a second per-walker attribute through the same permutation (node2vec's previous
  // vertex). After Scatter, vp_offsets()[i]..vp_offsets()[i+1] is partition i's
  // chunk.
  void Scatter(const Vid* w, const Vid* aux, Wid n, Vid* sw, Vid* sw_aux);

  // Replays the permutation from w_prev (the array Scatter consumed): writes
  // w_next[j] = sw[position walker j's element was scattered to], and likewise for
  // the aux stream when supplied.
  void Gather(const Vid* w_prev, Wid n, const Vid* sw, Vid* w_next,
              const Vid* sw_aux, Vid* aux_next) const;

  // Partition chunk boundaries in SW: size num_vps + 2 (entry num_vps is the dead
  // bin start; entry num_vps+1 == n).
  const std::vector<Wid>& vp_offsets() const { return vp_offsets_; }

  Wid dead_count() const {
    return vp_offsets_.back() - vp_offsets_[vp_offsets_.size() - 2];
  }

  // Exposed for tests: scatter via the explicit two-level path (outer bins then
  // in-bin counting) regardless of plan.has_internal_shuffle(); must produce the
  // same layout as the direct path.
  void ScatterTwoLevelForTest(const Vid* w, const Vid* aux, Wid n, Vid* sw,
                              Vid* sw_aux);

 private:
  void CountAndPrefix(const Vid* w, Wid n);
  void ScatterDirect(const Vid* w, const Vid* aux, Wid n, Vid* sw, Vid* sw_aux);
  void ScatterTwoLevel(const Vid* w, const Vid* aux, Wid n, Vid* sw, Vid* sw_aux);

  const PartitionPlan* plan_;
  ThreadPool* pool_;
  uint32_t num_vps_;
  uint32_t num_chunks_;
  Wid scattered_n_ = 0;

  // starts_[chunk * (num_vps_+1) + vp] = first SW slot for that (chunk, vp) pair.
  std::vector<Wid> starts_;
  std::vector<Wid> vp_offsets_;
  // Scratch for the two-level path.
  std::vector<Vid> inter_;
  std::vector<Vid> inter_aux_;
};

}  // namespace fm

#endif  // SRC_CORE_SHUFFLE_H_
