// Vertex partitions, groups, and the DP-optimized partition plan (§4.1, §4.4).
//
// The degree-sorted vertex array is cut into G equal-size power-of-2 groups; each
// group is cut into equal power-of-2-size vertex partitions (VPs), so locating a
// vertex's VP is pure arithmetic (two shifts + two small-table lookups) — no
// per-vertex map is ever touched on the hot shuffle path.
//
// Shuffle fan-out is bounded by `max_partitions` (P): each VP is an *outer bin*
// unless its group opted into an internal second-level shuffle, in which case the
// whole group is one outer bin and its VPs are separated by an inner counting pass.
#ifndef SRC_CORE_PARTITION_PLAN_H_
#define SRC_CORE_PARTITION_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/csr_graph.h"
#include "src/util/cache_info.h"
#include "src/util/types.h"

namespace fm {

class CostModel;

// Edge sampling policy of one vertex partition (§4.2).
enum class SamplePolicy : uint8_t {
  kPS,  // pre-sampling: batched sample production into per-vertex edge buffers
  kDS,  // direct sampling: dice thrown on the spot against the adjacency list
};

struct VertexPartition {
  Vid begin = 0;
  Vid end = 0;  // exclusive
  SamplePolicy policy = SamplePolicy::kDS;
  // All member vertices share one degree (common in the sorted long tail); enables
  // the direct-indexing fast path that skips the CSR offset lookup (§4.2 "DS").
  bool uniform_degree = false;
  Degree degree = 0;          // valid when uniform_degree
  Eid edge_begin = 0;         // CSR offset of `begin`
  // Cache level (1..4, 4=DRAM) the partition's sampling working set fits in —
  // informational, reported by the Fig 10 bench.
  uint8_t cache_level = 4;

  Vid vertex_count() const { return end - begin; }
};

struct PartitionGroup {
  Vid begin = 0;
  Vid end = 0;
  uint32_t vp_size_log2 = 0;   // VPs in this group have 2^vp_size_log2 vertices
  uint32_t vp_base = 0;        // global index of the group's first VP
  uint32_t vp_count = 0;
  bool internal_shuffle = false;
  uint32_t outer_bin_base = 0;  // first outer bin (== vp count bins unless internal)
};

class PartitionPlan {
 public:
  Vid num_vertices() const { return num_vertices_; }
  uint32_t num_vps() const { return static_cast<uint32_t>(vps_.size()); }
  uint32_t num_outer_bins() const { return num_outer_bins_; }
  uint32_t num_groups() const { return static_cast<uint32_t>(groups_.size()); }
  bool has_internal_shuffle() const { return has_internal_shuffle_; }

  const std::vector<VertexPartition>& vps() const { return vps_; }
  const std::vector<PartitionGroup>& groups() const { return groups_; }
  const VertexPartition& vp(uint32_t i) const { return vps_[i]; }

  uint32_t GroupOf(Vid v) const {
    uint32_t g = static_cast<uint32_t>(v >> group_size_log2_);
    uint32_t last = static_cast<uint32_t>(groups_.size() - 1);
    return g < last ? g : last;
  }

  uint32_t VpOf(Vid v) const {
    const PartitionGroup& g = groups_[GroupOf(v)];
    return g.vp_base + static_cast<uint32_t>((v - g.begin) >> g.vp_size_log2);
  }

  // Outer shuffle bin of a vertex (< num_outer_bins()).
  uint32_t OuterBinOf(Vid v) const {
    const PartitionGroup& g = groups_[GroupOf(v)];
    if (g.internal_shuffle) {
      return g.outer_bin_base;
    }
    return g.outer_bin_base + static_cast<uint32_t>((v - g.begin) >> g.vp_size_log2);
  }

  // Structural invariants: VPs tile [0, num_vertices), groups tile the VPs, bin
  // indices dense. Aborts on violation.
  void CheckValid() const;

  // Human-readable summary (one line per group) for the Fig 10 bench.
  std::string Describe() const;

  // -- construction ----------------------------------------------------------

  // Builds the DP-optimized plan (§4.4): groups the sorted vertices, enumerates
  // power-of-2 VP sizes per group (costed via `model` at the walk's density), maps
  // to MCKP and solves. `graph` must be degree-sorted descending.
  struct Config {
    uint32_t num_groups = 64;        // G hyper-parameter (64..128 in the paper)
    uint32_t max_partitions = 2048;  // P: outer shuffle fan-out limit (L2-derived)
    uint32_t min_vp_size_log2 = 6;   // don't cut below 64 vertices
    CacheInfo cache;
    // Sampling working sets target one core's private share; the shared L3 is
    // divided by the thread count when classifying cache levels. 0 = auto (the
    // engine fills in its pool's thread count; standalone callers get 1).
    uint32_t threads_sharing_l3 = 0;
  };

  static PartitionPlan BuildOptimized(const CsrGraph& graph, Wid num_walkers,
                                      const CostModel& model, const Config& config);

  // Uniform strategy baselines for Fig 9b: `partitions` equal-size VPs, all with the
  // given policy.
  static PartitionPlan BuildUniform(const CsrGraph& graph, uint32_t partitions,
                                    SamplePolicy policy);

  // The pre-MCKP heuristic the paper calls "Manual Opt" (§5.3): PS for high-degree
  // or low-density vertices, DS otherwise, with L2-sized partitions.
  static PartitionPlan BuildManualHeuristic(const CsrGraph& graph, Wid num_walkers,
                                            const Config& config);

 private:
  friend class PlanBuilder;

  Vid num_vertices_ = 0;
  uint32_t group_size_log2_ = 0;
  uint32_t num_outer_bins_ = 0;
  bool has_internal_shuffle_ = false;
  std::vector<VertexPartition> vps_;
  std::vector<PartitionGroup> groups_;
};

// -- shuffle backend planning -------------------------------------------------

// Which Shuffler implementation regroups W into SW each step.
enum class ShuffleBackendKind : uint8_t {
  kAuto = 0,    // resolved to ShufflePlan::recommended by the engine
  kDirect = 1,  // counting scatter straight into SW (the bit-exact oracle)
  kBinned = 2,  // propagation-blocking: radix-bin into cache-sized segments
};

const char* ShuffleBackendName(ShuffleBackendKind kind);

// Parses "auto" / "direct" / "binned"; returns false on anything else.
bool ParseShuffleBackendName(const std::string& name, ShuffleBackendKind* kind);

// Geometry of the binned shuffle backend, computed next to the MCKP plan from
// the same cache model. Bins are contiguous VP ranges sized so one bin's
// records plus its SW destination span stay resident in a private L2 during
// the segment scatter (pass 2); the per-(worker, bin) write-combining buffers
// of pass 1 are whole multiples of the cache line so full buffers flush as
// complete lines (streaming stores where available).
struct ShufflePlan {
  // Bin b covers VPs [bin_first_vp[b], bin_first_vp[b+1]); size num_bins()+1,
  // strictly increasing, last entry == num_vps. The dead bin (terminated
  // walkers) is implicit and trails the last VP bin.
  std::vector<uint32_t> bin_first_vp;
  // Per-(worker, bin) write-combining buffer capacity in records; a multiple
  // of the Vids-per-cache-line count.
  uint32_t buffer_records = 32;
  Wid expected_walkers = 0;
  // What `--shuffle=auto` should run, from the crossover model below.
  ShuffleBackendKind recommended = ShuffleBackendKind::kDirect;

  uint32_t num_bins() const {
    return bin_first_vp.empty()
               ? 0
               : static_cast<uint32_t>(bin_first_vp.size() - 1);
  }
  std::string Describe() const;
};

// Builds the bin tiling and buffer geometry for `plan` at the given expected
// episode walker count. Recommends kBinned only where the direct path's
// fan-out working set (one open destination line plus one cursor per VP)
// spills the private L2 AND the walker array itself exceeds the LLC — below
// that crossover the direct scatter is already cache-resident and the binned
// backend's extra pass over the record arena only adds traffic.
ShufflePlan BuildShufflePlan(const PartitionPlan& plan, const CsrGraph& graph,
                             Wid expected_walkers, const CacheInfo& cache,
                             uint32_t num_workers);

}  // namespace fm

#endif  // SRC_CORE_PARTITION_PLAN_H_
