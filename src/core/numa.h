// Cross-socket walk modes (§4.5, Figure 12).
//
// FlashMob-P ("P"artitioned): one copy of the graph; VPs and walker arrays are
// distributed across sockets. Remote traffic is confined to streaming reads of
// walker chunks during the sample stage (never random) — §4.5.
//
// FlashMob-R ("R"eplicated): the graph (plus pre-sample buffers) is replicated per
// socket and independent walk instances run side by side; no remote accesses at all,
// but the replicas eat into the DRAM budget, halving the walker density and with it
// the cache reuse rate.
//
// The reproduction box has one socket, so this module *emulates* the two layouts: it
// computes each mode's walker budget from a SocketTopology, runs the engine at the
// resulting density, and reports the structural remote-access metrics exactly
// (which walker-stream fraction would cross sockets under mode P). See DESIGN.md §3.
#ifndef SRC_CORE_NUMA_H_
#define SRC_CORE_NUMA_H_

#include "src/core/engine.h"

namespace fm {

enum class NumaMode { kPartitioned, kReplicated };

struct SocketTopology {
  uint32_t sockets = 2;
  uint64_t dram_per_socket_bytes = 2ull << 30;
};

struct NumaRunResult {
  double per_step_ns = 0;
  double walker_density = 0;       // walkers per edge per episode (Fig 12b)
  Wid walkers_per_episode = 0;
  // Mode P: expected fraction of sample-stage walker-stream bytes that are remote
  // ((sockets-1)/sockets: walkers are distributed round-robin across sockets while a
  // VP is processed by one of them). Zero for mode R.
  double remote_stream_fraction = 0;
  WalkStats stats;
};

// Runs `spec` on `graph` under the given mode/topology and reports Fig 12's metrics.
// The graph must be degree-sorted.
NumaRunResult RunNumaWalk(const CsrGraph& graph, const WalkSpec& spec,
                          NumaMode mode, const SocketTopology& topology,
                          const EngineOptions& base_options = {});

}  // namespace fm

#endif  // SRC_CORE_NUMA_H_
