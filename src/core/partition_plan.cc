#include "src/core/partition_plan.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/core/cost_model.h"
#include "src/core/mckp.h"
#include "src/util/bits.h"
#include "src/util/logging.h"
#include "src/util/trace.h"

namespace fm {

// Internal helper assembling a PartitionPlan from per-group (vp_size_log2,
// internal_shuffle) decisions plus a per-VP policy chooser.
class PlanBuilder {
 public:
  PlanBuilder(const CsrGraph& graph, uint32_t group_size_log2)
      : graph_(graph), group_size_log2_(group_size_log2) {}

  struct GroupChoice {
    uint32_t vp_size_log2 = 0;
    bool internal_shuffle = false;
  };

  // `policy_of(begin, end)` decides the policy of one VP.
  template <typename PolicyFn>
  PartitionPlan Assemble(const std::vector<GroupChoice>& choices,
                         PolicyFn&& policy_of, const CacheInfo& cache,
                         uint32_t threads_sharing_l3) {
    PartitionPlan plan;
    Vid n = graph_.num_vertices();
    plan.num_vertices_ = n;
    plan.group_size_log2_ = group_size_log2_;
    Vid group_size = Vid{1} << group_size_log2_;
    uint32_t num_groups = static_cast<uint32_t>(CeilDiv(n, group_size));
    FM_CHECK(choices.size() == num_groups);
    AnalyticCostModel level_model(cache, LatencyModel{}, threads_sharing_l3);

    uint32_t bin = 0;
    for (uint32_t g = 0; g < num_groups; ++g) {
      PartitionGroup group;
      group.begin = g * group_size;
      group.end = std::min<Vid>(group.begin + group_size, n);
      group.vp_size_log2 = choices[g].vp_size_log2;
      group.vp_base = static_cast<uint32_t>(plan.vps_.size());
      Vid vp_size = Vid{1} << group.vp_size_log2;
      group.vp_count =
          static_cast<uint32_t>(CeilDiv(group.end - group.begin, vp_size));
      group.internal_shuffle = choices[g].internal_shuffle && group.vp_count > 1;
      group.outer_bin_base = bin;
      bin += group.internal_shuffle ? 1 : group.vp_count;
      plan.has_internal_shuffle_ |= group.internal_shuffle;

      for (Vid b = group.begin; b < group.end; b += vp_size) {
        VertexPartition vp;
        vp.begin = b;
        vp.end = std::min<Vid>(b + vp_size, group.end);
        vp.edge_begin = graph_.edge_begin(vp.begin);
        Degree first = graph_.degree(vp.begin);
        Degree last = graph_.degree(vp.end - 1);
        vp.uniform_degree = (first == last);
        vp.degree = vp.uniform_degree ? first : 0;
        vp.policy = policy_of(vp.begin, vp.end);
        double avg_degree = AvgDegree(vp.begin, vp.end);
        vp.cache_level = level_model.LevelFor(
            level_model.WorkingSetBytes(vp.end - vp.begin, avg_degree, vp.policy));
        plan.vps_.push_back(vp);
      }
      plan.groups_.push_back(group);
    }
    plan.num_outer_bins_ = bin;
    plan.CheckValid();
    return plan;
  }

  double AvgDegree(Vid begin, Vid end) const {
    if (end == begin) {
      return 0;
    }
    // offsets() has |V|+1 entries, so indexing with `end` is always valid.
    return static_cast<double>(graph_.offsets()[end] - graph_.offsets()[begin]) /
           static_cast<double>(end - begin);
  }

 private:
  const CsrGraph& graph_;
  uint32_t group_size_log2_;
};

namespace {

// Total out-edges in [begin, end).
Eid EdgeSpan(const CsrGraph& graph, Vid begin, Vid end) {
  return graph.offsets()[end] - graph.offsets()[begin];
}

uint32_t PickGroupSizeLog2(Vid n, uint32_t num_groups) {
  Vid per_group = static_cast<Vid>(CeilDiv(std::max<Vid>(n, 1), num_groups));
  return Log2Ceil(std::max<Vid>(per_group, 1));
}

}  // namespace

PartitionPlan PartitionPlan::BuildOptimized(const CsrGraph& graph, Wid num_walkers,
                                            const CostModel& model,
                                            const Config& config) {
  TraceSpan plan_span("plan", "build_optimized");
  Vid n = graph.num_vertices();
  plan_span.Arg("vertices", n);
  plan_span.Arg("walkers", num_walkers);
  FM_CHECK(n > 0);
  uint32_t gsl = PickGroupSizeLog2(n, config.num_groups);
  Vid group_size = Vid{1} << gsl;
  uint32_t num_groups = static_cast<uint32_t>(CeilDiv(n, group_size));
  double density = static_cast<double>(num_walkers) /
                   std::max<double>(1.0, static_cast<double>(graph.num_edges()));

  // One MCKP class per group; items = candidate VP sizes x {flat, internal shuffle}.
  // Item cost = per-iteration sampling time of the group (each VP at the cheaper of
  // PS/DS), in ns; internal-shuffle items add the extra shuffle pass over the
  // group's walkers and weigh 1 outer bin (§4.4).
  struct ItemMeta {
    uint32_t vp_size_log2;
    bool internal;
  };
  std::vector<std::vector<MckpItem>> classes(num_groups);
  std::vector<std::vector<ItemMeta>> metas(num_groups);

  for (uint32_t g = 0; g < num_groups; ++g) {
    Vid gbegin = g * group_size;
    Vid gend = std::min<Vid>(gbegin + group_size, n);
    uint32_t max_s = Log2Ceil(std::max<Vid>(gend - gbegin, 1));
    uint32_t min_s = std::min(config.min_vp_size_log2, max_s);
    double group_walkers =
        density * static_cast<double>(EdgeSpan(graph, gbegin, gend));

    for (uint32_t s = min_s; s <= max_s; ++s) {
      Vid vp_size = Vid{1} << s;
      uint32_t vp_count = static_cast<uint32_t>(CeilDiv(gend - gbegin, vp_size));
      double total_ns = 0;
      for (Vid b = gbegin; b < gend; b += vp_size) {
        Vid e = std::min<Vid>(b + vp_size, gend);
        Eid vp_edges = EdgeSpan(graph, b, e);
        double avg_degree =
            static_cast<double>(vp_edges) / static_cast<double>(e - b);
        double vp_walker_steps = density * static_cast<double>(vp_edges);
        double ps = model.SampleNsPerStep(e - b, avg_degree, density,
                                          SamplePolicy::kPS);
        double ds = model.SampleNsPerStep(e - b, avg_degree, density,
                                          SamplePolicy::kDS);
        total_ns += std::min(ps, ds) * vp_walker_steps;
      }
      classes[g].push_back({total_ns, vp_count});
      metas[g].push_back({s, false});
      if (vp_count > 1) {
        double internal_ns =
            total_ns + model.ShuffleNsPerWalker() * group_walkers;
        classes[g].push_back({internal_ns, 1});
        metas[g].push_back({s, true});
      }
    }
  }

  MckpSolution solution;
  {
    TraceSpan span("plan", "mckp_solve");
    span.Arg("classes", classes.size());
    solution = SolveMckp(classes, config.max_partitions);
  }
  FM_CHECK_MSG(solution.feasible,
               "MCKP infeasible: num_groups exceeds max_partitions?");

  std::vector<PlanBuilder::GroupChoice> choices(num_groups);
  for (uint32_t g = 0; g < num_groups; ++g) {
    const ItemMeta& meta = metas[g][solution.chosen[g]];
    choices[g] = {meta.vp_size_log2, meta.internal};
  }

  PlanBuilder builder(graph, gsl);
  auto policy_of = [&](Vid begin, Vid end) {
    Eid vp_edges = EdgeSpan(graph, begin, end);
    double avg_degree =
        static_cast<double>(vp_edges) / static_cast<double>(end - begin);
    double ps =
        model.SampleNsPerStep(end - begin, avg_degree, density, SamplePolicy::kPS);
    double ds =
        model.SampleNsPerStep(end - begin, avg_degree, density, SamplePolicy::kDS);
    return ps < ds ? SamplePolicy::kPS : SamplePolicy::kDS;
  };
  return builder.Assemble(choices, policy_of, config.cache,
                          config.threads_sharing_l3);
}

PartitionPlan PartitionPlan::BuildUniform(const CsrGraph& graph,
                                          uint32_t partitions,
                                          SamplePolicy policy) {
  Vid n = graph.num_vertices();
  FM_CHECK(n > 0);
  FM_CHECK(partitions > 0);
  uint32_t vp_s = Log2Ceil(std::max<Vid>(static_cast<Vid>(CeilDiv(n, partitions)), 1));
  // One group spanning everything, cut into equal power-of-2 VPs.
  uint32_t gsl = Log2Ceil(n);
  PlanBuilder builder(graph, gsl);
  std::vector<PlanBuilder::GroupChoice> choices{{vp_s, false}};
  return builder.Assemble(
      choices, [policy](Vid, Vid) { return policy; }, CacheInfo{}, 1);
}

PartitionPlan PartitionPlan::BuildManualHeuristic(const CsrGraph& graph,
                                                  Wid num_walkers,
                                                  const Config& config) {
  // The pre-MCKP heuristic (§5.3 "Manual Opt"): L2-sized partitions; PS for
  // high-degree or low-density vertices, DS for the rest.
  Vid n = graph.num_vertices();
  FM_CHECK(n > 0);
  uint32_t gsl = PickGroupSizeLog2(n, config.num_groups);
  Vid group_size = Vid{1} << gsl;
  uint32_t num_groups = static_cast<uint32_t>(CeilDiv(n, group_size));
  double density = static_cast<double>(num_walkers) /
                   std::max<double>(1.0, static_cast<double>(graph.num_edges()));
  AnalyticCostModel sizing(config.cache, LatencyModel{}, config.threads_sharing_l3);

  std::vector<PlanBuilder::GroupChoice> choices(num_groups);
  uint64_t total_vps = 0;
  for (uint32_t g = 0; g < num_groups; ++g) {
    Vid gbegin = g * group_size;
    Vid gend = std::min<Vid>(gbegin + group_size, n);
    double avg_degree = static_cast<double>(EdgeSpan(graph, gbegin, gend)) /
                        static_cast<double>(gend - gbegin);
    // Largest power-of-2 VP whose DS working set fits L2.
    uint32_t max_s = Log2Ceil(std::max<Vid>(gend - gbegin, 1));
    uint32_t s = config.min_vp_size_log2;
    while (s < max_s &&
           sizing.WorkingSetBytes(Vid{1} << (s + 1), avg_degree,
                                  SamplePolicy::kDS) <= config.cache.l2_bytes) {
      ++s;
    }
    s = std::min(s, max_s);
    choices[g] = {s, false};
    total_vps += CeilDiv(gend - gbegin, Vid{1} << s);
  }
  // Enforce the fan-out cap by coarsening the lowest-degree (trailing) groups.
  for (uint32_t g = num_groups; g-- > 0 && total_vps > config.max_partitions;) {
    Vid gbegin = g * group_size;
    Vid gend = std::min<Vid>(gbegin + group_size, n);
    uint32_t max_s = Log2Ceil(std::max<Vid>(gend - gbegin, 1));
    while (choices[g].vp_size_log2 < max_s && total_vps > config.max_partitions) {
      uint64_t before = CeilDiv(gend - gbegin, Vid{1} << choices[g].vp_size_log2);
      ++choices[g].vp_size_log2;
      uint64_t after = CeilDiv(gend - gbegin, Vid{1} << choices[g].vp_size_log2);
      total_vps -= before - after;
    }
  }

  PlanBuilder builder(graph, gsl);
  auto policy_of = [&](Vid begin, Vid end) {
    double avg_degree = static_cast<double>(EdgeSpan(graph, begin, end)) /
                        static_cast<double>(end - begin);
    return (avg_degree >= 32.0 || density < 0.5) ? SamplePolicy::kPS
                                                 : SamplePolicy::kDS;
  };
  return builder.Assemble(choices, policy_of, config.cache,
                          config.threads_sharing_l3);
}

void PartitionPlan::CheckValid() const {
  FM_CHECK(!vps_.empty());
  FM_CHECK(vps_.front().begin == 0);
  FM_CHECK(vps_.back().end == num_vertices_);
  for (size_t i = 1; i < vps_.size(); ++i) {
    FM_CHECK_MSG(vps_[i].begin == vps_[i - 1].end, "VPs must tile the vertex array");
  }
  uint32_t bins = 0;
  uint32_t vp_index = 0;
  for (const PartitionGroup& g : groups_) {
    FM_CHECK(g.vp_base == vp_index);
    FM_CHECK(g.outer_bin_base == bins);
    vp_index += g.vp_count;
    bins += g.internal_shuffle ? 1 : g.vp_count;
    FM_CHECK(vps_[g.vp_base].begin == g.begin);
    FM_CHECK(vps_[g.vp_base + g.vp_count - 1].end == g.end);
  }
  FM_CHECK(vp_index == vps_.size());
  FM_CHECK(bins == num_outer_bins_);
  // Arithmetic lookup agrees with the ranges.
  for (uint32_t i = 0; i < num_vps(); ++i) {
    FM_CHECK(VpOf(vps_[i].begin) == i);
    FM_CHECK(VpOf(vps_[i].end - 1) == i);
  }
}

std::string PartitionPlan::Describe() const {
  std::ostringstream out;
  out << "plan: |V|=" << num_vertices_ << " groups=" << groups_.size()
      << " vps=" << vps_.size() << " outer_bins=" << num_outer_bins_ << "\n";
  for (size_t g = 0; g < groups_.size(); ++g) {
    const PartitionGroup& grp = groups_[g];
    uint32_t ps = 0;
    for (uint32_t i = 0; i < grp.vp_count; ++i) {
      if (vps_[grp.vp_base + i].policy == SamplePolicy::kPS) {
        ++ps;
      }
    }
    out << "  group " << g << ": v[" << grp.begin << "," << grp.end << ") vp_size=2^"
        << grp.vp_size_log2 << " vps=" << grp.vp_count << " (PS=" << ps
        << " DS=" << (grp.vp_count - ps) << ")"
        << (grp.internal_shuffle ? " internal-shuffle" : "") << "\n";
  }
  return out.str();
}

// -- shuffle backend planning -------------------------------------------------

const char* ShuffleBackendName(ShuffleBackendKind kind) {
  switch (kind) {
    case ShuffleBackendKind::kAuto:
      return "auto";
    case ShuffleBackendKind::kDirect:
      return "direct";
    case ShuffleBackendKind::kBinned:
      return "binned";
  }
  return "unknown";
}

bool ParseShuffleBackendName(const std::string& name,
                             ShuffleBackendKind* kind) {
  if (name == "auto") {
    *kind = ShuffleBackendKind::kAuto;
  } else if (name == "direct") {
    *kind = ShuffleBackendKind::kDirect;
  } else if (name == "binned") {
    *kind = ShuffleBackendKind::kBinned;
  } else {
    return false;
  }
  return true;
}

std::string ShufflePlan::Describe() const {
  std::ostringstream out;
  out << "shuffle-plan: bins=" << num_bins()
      << " buffer_records=" << buffer_records
      << " expected_walkers=" << expected_walkers
      << " recommended=" << ShuffleBackendName(recommended);
  return out.str();
}

ShufflePlan BuildShufflePlan(const PartitionPlan& plan, const CsrGraph& graph,
                             Wid expected_walkers, const CacheInfo& cache,
                             uint32_t num_workers) {
  ShufflePlan sp;
  sp.expected_walkers = expected_walkers;
  const uint32_t num_vps = plan.num_vps();
  FM_CHECK(num_vps > 0);

  // Expected walkers per VP scale with its edge span (walkers land on vertices
  // proportionally to degree once the walk mixes — same density model as the
  // MCKP costing).
  const double density =
      static_cast<double>(expected_walkers) /
      static_cast<double>(std::max<Eid>(graph.num_edges(), 1));

  // A bin's pass-2 working set is its record segment (streamed) plus its SW
  // destination span (resident): ~2 Vids per walker. Target half the private
  // L2 so the sampled-aux variant (4 Vids per walker) still fits whole.
  const uint64_t target_bytes =
      std::max<uint64_t>(cache.l2_bytes / 2, 4 * kCacheLineBytes);
  const double bytes_per_walker = 4.0 * sizeof(Vid);

  sp.bin_first_vp.clear();
  sp.bin_first_vp.push_back(0);
  double acc_walkers = 0;
  for (uint32_t vp = 0; vp < num_vps; ++vp) {
    const Eid span_begin = plan.vp(vp).edge_begin;
    const Eid span_end =
        vp + 1 < num_vps ? plan.vp(vp + 1).edge_begin : graph.num_edges();
    const double vp_walkers =
        density * static_cast<double>(span_end - span_begin);
    if (acc_walkers > 0 &&
        (acc_walkers + vp_walkers) * bytes_per_walker >
            static_cast<double>(target_bytes)) {
      sp.bin_first_vp.push_back(vp);
      acc_walkers = 0;
    }
    acc_walkers += vp_walkers;
  }
  sp.bin_first_vp.push_back(num_vps);

  // Write-combining buffers: every worker keeps one buffer per bin, so cap
  // the aggregate footprint (walker + aux streams) at a quarter of the LLC —
  // past that the buffers themselves start fighting the arrays they exist to
  // protect.
  sp.buffer_records = 2 * kCacheLineBytes / sizeof(Vid);  // 32 records
  const uint32_t min_records = kCacheLineBytes / sizeof(Vid);
  const uint64_t workers = std::max<uint32_t>(num_workers, 1);
  while (sp.buffer_records > min_records &&
         workers * (sp.num_bins() + 1) * sp.buffer_records * 2 * sizeof(Vid) >
             cache.l3_bytes / 4) {
    sp.buffer_records = min_records;
  }

  // Crossover: binned pays an extra pass over the record arena, so it only
  // wins once the direct path actually thrashes — the walker array must
  // exceed the LLC (otherwise everything is resident anyway) and the per-VP
  // destination cursors + open lines must spill the private L2 (the regime
  // the two-level internal shuffle was built for).
  const uint64_t walker_bytes = expected_walkers * sizeof(Vid);
  const uint64_t fanout_bytes = static_cast<uint64_t>(num_vps + 1) *
                                (cache.line_bytes + sizeof(Wid));
  const bool walkers_exceed_llc = walker_bytes > cache.l3_bytes;
  const bool fanout_spills_l2 =
      plan.has_internal_shuffle() || fanout_bytes > cache.l2_bytes / 2;
  sp.recommended = walkers_exceed_llc && fanout_spills_l2 && sp.num_bins() > 1
                       ? ShuffleBackendKind::kBinned
                       : ShuffleBackendKind::kDirect;
  return sp;
}

}  // namespace fm
