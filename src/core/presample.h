// Pre-sampled edge buffers (§4.2 "Pre-sampling (PS)").
//
// For partitions under the PS policy, every vertex v owns a buffer of d(v) edge
// samples. The thread processing the VP refills a vertex's buffer in one batched pass
// (random reads confined to v's adjacency list — cache resident — plus one sequential
// write stream) and co-located walkers then consume samples sequentially, so each
// fetched cache line of samples serves up to 16 walkers instead of one.
//
// Buffers for the PS partitions are packed into a single array laid out exactly like
// the CSR edge array ("this buffer occupies exactly the same space as v's adjacency
// list"), indexed by the same CSR offsets shifted by the partition's base.
#ifndef SRC_CORE_PRESAMPLE_H_
#define SRC_CORE_PRESAMPLE_H_

#include <vector>

#include "src/core/partition_plan.h"
#include "src/graph/csr_graph.h"
#include "src/sampling/vertex_alias.h"
#include "src/util/aligned_buffer.h"
#include "src/util/sync.h"
#include "src/util/types.h"

namespace fm {

class PresampleBuffers {
 public:
  // Allocates buffers for every PS partition in `plan`. Buffers start empty (first
  // use triggers a refill).
  PresampleBuffers(const CsrGraph& graph, const PartitionPlan& plan);

  bool enabled() const { return !samples_.empty(); }
  uint64_t total_samples() const { return samples_.size(); }

  // Returns the next pre-sampled out-edge of `v`, which must belong to the PS
  // partition with plan index `vp_index`. Refills when exhausted. Hook-instrumented.
  // `alias` != nullptr draws weighted samples (weights baked in at refill time —
  // consumers stay oblivious, which is the beauty of pre-sampling: any static
  // transition distribution costs the same at consumption).
  template <typename Rng, typename Hook>
  FM_HOT_PATH Vid Next(const CsrGraph& graph, uint32_t vp_index,
                       const VertexPartition& vp, Vid v,
                       const VertexAliasTables* alias, Rng& rng, Hook& hook) {
    hook.Load(graph.offsets().data() + v, 2 * sizeof(Eid));
    Eid base = vp_sample_base_[vp_index] + (graph.edge_begin(v) - vp.edge_begin);
    Degree deg = static_cast<Degree>(graph.edge_end(v) - graph.edge_begin(v));
    if (deg == 0) {
      return v;  // dead end: walker stays in place
    }
    hook.Load(&cursor_[v], sizeof(Degree));
    Degree cur = cursor_[v];
    if (cur >= deg) {
      Refill(graph, v, base, deg, alias, rng, hook);
      cur = 0;
    }
    hook.Load(&samples_[base + cur], sizeof(Vid));
    Vid next = samples_[base + cur];
    cursor_[v] = cur + 1;
    hook.Store(&cursor_[v], sizeof(Degree));
    return next;
  }

  // Resets every buffer to empty (used between episodes so the sample streams stay
  // independent).
  void ResetAll();

 private:
  template <typename Rng, typename Hook>
  FM_HOT_PATH void Refill(const CsrGraph& graph, Vid v, Eid base, Degree deg,
                          const VertexAliasTables* alias, Rng& rng,
                          Hook& hook) {
    // Production step: d(v) dice throws against v's adjacency list (random reads in
    // one cache-resident list) streamed into the buffer (§4.2). Weighted graphs
    // draw through the per-vertex alias table instead of uniformly.
    const Vid* adj = graph.edges().data() + graph.edge_begin(v);
    for (Degree i = 0; i < deg; ++i) {
      Degree pick = alias != nullptr
                        ? alias->SampleIndex(graph, v, rng, hook)
                        : static_cast<Degree>(rng.NextBounded(deg));
      hook.Load(adj + pick, sizeof(Vid));
      samples_[base + i] = adj[pick];
      hook.Store(&samples_[base + i], sizeof(Vid));
    }
  }

  // Packed sample storage for all PS partitions.
  AlignedBuffer<Vid> samples_;
  // Consumption cursor per vertex; cursor_[v] == degree(v) means "empty, refill".
  std::vector<Degree> cursor_;
  // Base offset of each PS partition's region in samples_ (by plan VP index;
  // undefined for DS partitions).
  std::vector<Eid> vp_sample_base_;
};

}  // namespace fm

#endif  // SRC_CORE_PRESAMPLE_H_
