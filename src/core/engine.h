// FlashMobEngine — the paper's primary contribution assembled (§3, §4).
//
// The engine is a thin pipeline orchestrator over three layers:
//   walker_state.h   episode buffers, sizing, placement, row rotation
//   step_kernel.h    uniform per-VP kernel dispatch over the §4.2 kernels
//   walk_observer.h  streaming sinks fed inside the parallel stages
//
// Per walk iteration:
//   shuffle  : Scatter W_i (walker order) into SW (partition order)        [§4.3]
//   sample   : one task per VP moves its walkers one step, in place        [§4.2]
//   reverse  : Gather replays the scatter to produce W_{i+1} (walker order)[§4.3]
//
// The W_i rows double as the full path history; walkers are split into episodes
// sized to the DRAM budget (§5.1). The partition plan comes from the MCKP DP (§4.4)
// unless overridden (the Fig 9 ablations inject uniform/manual plans).
// Visit counts accumulate in per-worker shards inside the placement and sample
// tasks (no serial per-step pass) and merge once per episode.
#ifndef SRC_CORE_ENGINE_H_
#define SRC_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cachesim/hierarchy.h"
#include "src/core/cost_model.h"
#include "src/core/interleave.h"
#include "src/core/partition_plan.h"
#include "src/core/path_set.h"
#include "src/core/walk_spec.h"
#include "src/graph/csr_graph.h"
#include "src/sampling/vertex_alias.h"
#include "src/util/perf_counters.h"
#include "src/util/thread_pool.h"

namespace fm {

class ProgressReporter;
class WalkObserver;

struct StageTimes {
  double sample_s = 0;
  double shuffle_s = 0;
  double other_s = 0;
  double Total() const { return sample_s + shuffle_s + other_s; }
};

// Structured per-step stage record (EngineOptions::record_step_stats): one per
// (episode, step) with per-stage seconds and the per-VP walker distribution —
// the granular view the run-level StageTimes aggregates away.
struct StepStageRecord {
  uint64_t episode = 0;
  uint32_t step = 0;
  double scatter_s = 0;
  double sample_s = 0;
  double gather_s = 0;          // 0 in identity-free mode (no reverse shuffle)
  // Shuffle-backend pass breakdown of scatter_s/gather_s (ShuffleOpStats):
  // pass 1 is the count(+bin) pass, pass 2 the scatter / replay; flushed_lines
  // counts the binned backend's full-cache-line buffer flushes (0 for direct).
  double scatter_pass1_s = 0;
  double scatter_pass2_s = 0;
  double gather_pass1_s = 0;
  double gather_pass2_s = 0;
  uint64_t flushed_lines = 0;
  Wid live_walkers = 0;         // walkers the sample stage moved this step
  std::vector<Wid> vp_walkers;  // walkers per VP chunk this step
  // Hardware-counter deltas per stage, summed over all participating threads
  // (EngineOptions::collect_counters; all-zero under the noop backend).
  CounterSample scatter_counters;
  CounterSample sample_counters;
  CounterSample gather_counters;
};

// Run-total hardware-counter deltas per pipeline stage
// (EngineOptions::collect_counters).
struct StageCounters {
  CounterSample scatter;
  CounterSample sample;
  CounterSample gather;
  CounterSample Total() const {
    CounterSample t = scatter;
    t += sample;
    t += gather;
    return t;
  }
};

struct WalkStats {
  uint64_t total_steps = 0;  // walker-steps executed
  StageTimes times;
  uint32_t episodes = 0;
  // Mean episode size in walkers per edge (the density the plan is sized for).
  double walker_density = 0;

  // Walker-steps served by each VP (Fig 10b's weighting), indexed by plan VP.
  std::vector<uint64_t> vp_walker_steps;

  // Per-step stage records; empty unless EngineOptions::record_step_stats.
  std::vector<StepStageRecord> step_records;

  // Run-total stage counters and the backend that produced them: "perf" when
  // hardware counters were live, "noop" when perf_event_open was unavailable
  // (container, perf_event_paranoid), "" when collection was off.
  StageCounters counters;
  std::string perf_backend;

  // Name of the shuffle backend that ran ("direct"/"binned"; "" for engines
  // without a shuffle stage). kAuto is resolved before the first step, so
  // this always names a concrete backend.
  std::string shuffle_backend;

  // Step-interleaving (src/core/interleave.h): the concrete ring depth the
  // sample stage ran with (1 = sequential; auto is resolved before the first
  // step), whether it came from the cache-geometry model, and the software
  // prefetches issued by request type across the whole run.
  uint32_t interleave_depth = 1;
  bool interleave_auto = false;
  InterleaveStats prefetch;

  // Simulated-cache counter deltas attributed to the shuffle stage (scatter +
  // gather replays); only populated by RunInstrumented.
  CacheCounters sim_shuffle;

  double PerStepNs() const {
    return total_steps == 0 ? 0 : times.Total() * 1e9 / static_cast<double>(total_steps);
  }
};

struct WalkResult {
  PathSet paths;                        // empty unless spec.keep_paths
  std::vector<uint64_t> visit_counts;   // per vertex (including start positions)
  WalkStats stats;
};

struct EngineOptions {
  PartitionPlan::Config plan;
  // Cost model for the planner; nullptr = AnalyticCostModel over plan.cache.
  const CostModel* cost_model = nullptr;
  // Budget for walker state; bounds walkers per episode. 0 = FM_DRAM_MB env
  // (default 4096 MB).
  uint64_t dram_budget_bytes = 0;
  ThreadPool* pool = nullptr;  // nullptr = ThreadPool::Global()
  // Accumulate per-vertex visit counts via an internal sharded observer (the
  // accumulation rides inside the parallel stages; benches measuring pure walk
  // speed turn it off to also skip the per-episode merge).
  bool count_visits = true;
  // Record a StepStageRecord per (episode, step) in WalkStats::step_records.
  bool record_step_stats = false;
  // Measure hardware counters (cycles, LLC/L1D/dTLB misses, ...) per stage via
  // perf_event_open over every pool thread. Degrades to a no-op backend
  // (WalkStats::perf_backend == "noop") where the syscall is unavailable —
  // never a failure. Adds a few syscalls per stage boundary; leave off for
  // pure speed benchmarking.
  bool collect_counters = false;
  // Shuffle backend selection (--shuffle=direct|binned|auto). kAuto defers to
  // the ShufflePlan recommendation computed next to the partition plan.
  ShuffleBackendKind shuffle_backend = ShuffleBackendKind::kAuto;
  // Sample-stage ring size (--interleave=auto|N): in-flight walkers per worker
  // with software prefetch between them. kInterleaveDepthAuto (0) resolves
  // from plan.cache geometry (BuildInterleavePlan); 1 disables interleaving.
  // Walks are bit-identical at every depth — per-walker RNG streams make the
  // knob a pure performance choice. The same resolved depth also drives the
  // shuffle backends' scatter/gather prefetch look-ahead.
  uint32_t interleave_depth = kInterleaveDepthAuto;
  // Optional live heartbeat (src/util/trace.h). Driven from the engine's
  // per-step barrier on the calling thread — no extra thread, one call per
  // step. Must outlive Run.
  ProgressReporter* progress = nullptr;
};

class FlashMobEngine {
 public:
  // `graph` must outlive the engine and be degree-sorted descending (see
  // DegreeSort()); aborts otherwise.
  explicit FlashMobEngine(const CsrGraph& graph, EngineOptions options = {});
  ~FlashMobEngine();

  // Replaces the auto-built plan (ablations). Must tile the engine's graph.
  void SetPlan(PartitionPlan plan);

  // The plan used by the last Run (or the injected one).
  const PartitionPlan& plan() const;

  WalkResult Run(const WalkSpec& spec);

  // Streaming variant: each observer's chunk callbacks fire inside the
  // parallel placement / sample / (optionally) gather stages — see
  // walk_observer.h for the exact contract. Observers must outlive the call.
  WalkResult Run(const WalkSpec& spec,
                 const std::vector<WalkObserver*>& observers);

  // Single-threaded run feeding every sample-stage access (and a streaming model of
  // the shuffle passes) through `sim` (Table 5 / Fig 1b). Workloads should be small;
  // simulation is ~100x slower than the real walk.
  WalkResult RunInstrumented(const WalkSpec& spec, CacheHierarchy* sim);
  WalkResult RunInstrumented(const WalkSpec& spec, CacheHierarchy* sim,
                             const std::vector<WalkObserver*>& observers);

  // Walkers per episode for a given spec (exposed for the NUMA modes / tests).
  Wid EpisodeWalkers(const WalkSpec& spec) const;

  const CsrGraph& graph() const { return graph_; }

 private:
  template <typename Hook>
  WalkResult RunImpl(const WalkSpec& spec, Hook& hook, bool single_thread,
                     const std::vector<WalkObserver*>& observers);

  void EnsurePlan(const WalkSpec& spec, Wid episode_walkers);

  const CsrGraph& graph_;
  EngineOptions options_;
  std::unique_ptr<CostModel> default_model_;
  std::optional<PartitionPlan> plan_;
  bool plan_injected_ = false;
  // Built on first weighted Run; reused after (the classical alias pre-processing).
  std::unique_ptr<VertexAliasTables> alias_tables_;
};

}  // namespace fm

#endif  // SRC_CORE_ENGINE_H_
