#include "src/core/shuffle.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <sstream>

#include "src/core/interleave.h"
#include "src/util/logging.h"
#include "src/util/sync.h"
#include "src/util/telemetry.h"
#include "src/util/timer.h"
#include "src/util/trace.h"

// Streaming (non-temporal) stores for the binned backend's full-line buffer
// flushes. Disabled under sanitizers: TSan/ASan/MSan cannot see through the
// intrinsics, and the plain-memcpy fallback exercises the identical protocol
// with visible stores.
#if defined(__SSE2__)
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FM_SHUFFLE_STREAM 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer) || \
    __has_feature(memory_sanitizer)
#define FM_SHUFFLE_STREAM 0
#else
#define FM_SHUFFLE_STREAM 1
#endif
#else
#define FM_SHUFFLE_STREAM 1
#endif
#else
#define FM_SHUFFLE_STREAM 0
#endif

#if FM_SHUFFLE_STREAM
#include <emmintrin.h>
#endif

namespace fm {
namespace {

constexpr uint32_t kVidsPerLine =
    static_cast<uint32_t>(kCacheLineBytes / sizeof(Vid));

// Chunk boundaries: chunk c of n over k chunks.
inline Wid ChunkBegin(Wid n, uint32_t chunks, uint32_t c) {
  // div: one quotient + remainder per chunk boundary (O(threads) per pass, not
  // per walker); `chunks` is the runtime thread count, so no shift folding.
  return n / chunks * c + std::min<Wid>(c, n % chunks);
}

// Destination bin of one walker value: its vertex partition, or the trailing
// dead bin for terminated walkers.
FM_HOT_PATH inline uint32_t BinOfWalker(const PartitionPlan* plan,
                                        uint32_t num_vps, Vid value) {
  return value == kInvalidVid ? num_vps : plan->VpOf(value);
}

// Pass-1 kernel: per-chunk destination counts (sequential read of W; counter
// arrays stay cache-resident — the L2-derived fan-out constraint of §4.3).
FM_HOT_PATH void CountChunkScan(const PartitionPlan* plan, uint32_t num_vps,
                                const Vid* w, Wid begin, Wid end, Wid* counts) {
  for (Wid j = begin; j < end; ++j) {
    ++counts[BinOfWalker(plan, num_vps, w[j])];
  }
}

// Pass-2 kernel (direct path): counting scatter of one chunk of W into SW.
// `lookahead` > 0 prefetches walker j+k's destination while writing walker
// j's: the per-bin cursors advance sequentially, so the line behind the
// *current* cursor is (or immediately precedes) the true target line — a pure
// hint, the layout is identical either way. Returns the prefetches issued.
FM_HOT_PATH uint64_t ScatterChunkScan(const PartitionPlan* plan,
                                      uint32_t num_vps, const Vid* w,
                                      const Vid* aux, Wid begin, Wid end,
                                      Wid* offs, const Wid* vp_offsets, Vid* sw,
                                      Vid* sw_aux, uint32_t lookahead) {
  uint64_t issued = 0;
  for (Wid j = begin; j < end; ++j) {
    if (lookahead != 0 && j + lookahead < end) {
      PrefetchWrite(sw + offs[BinOfWalker(plan, num_vps, w[j + lookahead])]);
      ++issued;
    }
    uint32_t bin = BinOfWalker(plan, num_vps, w[j]);
    Wid p = offs[bin]++;
    FM_DCHECK_LT(p, vp_offsets[bin + 1]);
    sw[p] = w[j];
    if (aux != nullptr) {
      sw_aux[p] = aux[j];
    }
  }
  return issued;
}

// Outer-pass kernel (two-level path): scatter one chunk of W by outer bin into
// the intermediate array.
FM_HOT_PATH void OuterScatterChunkScan(const PartitionPlan* plan,
                                       uint32_t num_bins, const Vid* w,
                                       const Vid* aux, Wid begin, Wid end,
                                       Wid* cursor, Wid scattered_n, Vid* inter,
                                       Vid* inter_aux) {
  for (Wid j = begin; j < end; ++j) {
    Vid v = w[j];
    uint32_t b = (v == kInvalidVid) ? num_bins : plan->OuterBinOf(v);
    Wid p = cursor[b]++;
    FM_DCHECK_LT(p, scattered_n);
    inter[p] = v;
    if (aux != nullptr) {
      inter_aux[p] = aux[j];
    }
  }
}

// Inner-pass kernel (two-level path): stable in-bin counting scatter by VP.
// Scanning the intermediate chunk in order preserves (chunk, scan) order per
// VP, matching the direct layout.
FM_HOT_PATH void InnerScatterGroupScan(const PartitionPlan* plan,
                                       uint32_t vp_base, uint32_t vp_count,
                                       Wid begin, Wid end, Wid* offs,
                                       const Wid* vp_offsets, const Vid* inter,
                                       const Vid* inter_aux, Vid* sw,
                                       Vid* sw_aux) {
  for (Wid j = begin; j < end; ++j) {
    FM_DCHECK_GE(plan->VpOf(inter[j]), vp_base);
    uint32_t vp = plan->VpOf(inter[j]) - vp_base;
    FM_DCHECK_LT(vp, vp_count);
    Wid p = offs[vp]++;
    FM_DCHECK_LT(p, vp_offsets[vp_base + vp + 1]);
    sw[p] = inter[j];
    if (inter_aux != nullptr) {
      sw_aux[p] = inter_aux[j];
    }
  }
}

// Gather kernel: replay one chunk's counting offsets, pulling each walker's
// post-step value out of SW back into walker order. `consumed` is the debug
// bijectivity witness (null in release builds).
FM_HOT_PATH uint64_t GatherChunkScan(const PartitionPlan* plan,
                                     uint32_t num_vps, const Vid* w_prev,
                                     Wid begin, Wid end, Wid* offs, Wid n,
                                     const Vid* sw, const Vid* sw_aux,
                                     Vid* w_next, Vid* aux_next,
                                     [[maybe_unused]] uint8_t* consumed,
                                     uint32_t lookahead) {
  uint64_t issued = 0;
  for (Wid j = begin; j < end; ++j) {
    if (lookahead != 0 && j + lookahead < end) {
      // Same cursor-line approximation as the scatter look-ahead, but a read:
      // the replay pulls sw[p] back into walker order.
      PrefetchRead(sw +
                   offs[BinOfWalker(plan, num_vps, w_prev[j + lookahead])]);
      ++issued;
    }
    Wid p = offs[BinOfWalker(plan, num_vps, w_prev[j])]++;
    FM_DCHECK_LT(p, n);
#ifndef NDEBUG
    FM_DCHECK_MSG(consumed[p] == 0, "SW slot " << p << " replayed twice");
    consumed[p] = 1;
#endif
    w_next[j] = sw[p];
    if (sw_aux != nullptr) {
      aux_next[j] = sw_aux[p];
    }
  }
  return issued;
}

// -- binned-backend kernels ---------------------------------------------------

// Flushes `count` Vids (whole cache lines, both pointers line-aligned) from a
// write-combining buffer into the record arena. With SSE2 this bypasses the
// cache entirely (non-temporal stores) — the arena is written once and read
// once, so caching it would only evict the walker arrays.
FM_HOT_PATH inline void StreamLines(Vid* dst, const Vid* src, uint32_t count) {
#if FM_SHUFFLE_STREAM
  __m128i* d = reinterpret_cast<__m128i*>(dst);
  const __m128i* s = reinterpret_cast<const __m128i*>(src);
  const uint32_t vecs = count >> 2;  // 4 Vids per 16-byte store
  for (uint32_t i = 0; i < vecs; ++i) {
    _mm_stream_si128(d + i, _mm_load_si128(s + i));
  }
#else
  std::memcpy(dst, src, count * sizeof(Vid));
#endif
}

// Orders the chunk's non-temporal stores before the ParallelFor join releases
// the segment regions to pass-2 readers.
FM_HOT_PATH inline void StreamFence() {
#if FM_SHUFFLE_STREAM
  _mm_sfence();
#endif
}

// Binned pass-1 kernel: scan one chunk of W in order, appending each walker
// (and optionally its aux attribute) to its destination bin's write-combining
// buffer; full buffers flush to the (chunk, bin) arena region as whole cache
// lines. The scan order of appends within a (chunk, bin) region is exactly
// the W-scan order, which pass 2 relies on.
FM_HOT_PATH void BinChunkScan(const PartitionPlan* plan,
                              const uint32_t* vp_to_bin, uint32_t num_vps,
                              const Vid* w, const Vid* aux, Wid begin, Wid end,
                              Vid* bufs, Vid* aux_bufs, uint32_t cap,
                              uint32_t num_bins_total, uint32_t* fill,
                              Wid* cursor, Vid* records, Vid* aux_records) {
  for (Wid j = begin; j < end; ++j) {
    const Vid v = w[j];
    const uint32_t b = vp_to_bin[BinOfWalker(plan, num_vps, v)];
    Vid* buf = bufs + static_cast<size_t>(b) * cap;
    uint32_t f = fill[b];
    buf[f] = v;
    if (aux != nullptr) {
      aux_bufs[static_cast<size_t>(b) * cap + f] = aux[j];
    }
    if (++f == cap) {
      StreamLines(records + cursor[b], buf, cap);
      if (aux != nullptr) {
        StreamLines(aux_records + cursor[b],
                    aux_bufs + static_cast<size_t>(b) * cap, cap);
      }
      cursor[b] += cap;
      f = 0;
    }
    fill[b] = f;
  }
  // Drain: each (chunk, bin) region's unaligned tail is written exactly once,
  // with plain stores, after all its full-line flushes.
  for (uint32_t b = 0; b < num_bins_total; ++b) {
    const uint32_t f = fill[b];
    if (f != 0) {
      std::memcpy(records + cursor[b], bufs + static_cast<size_t>(b) * cap,
                  f * sizeof(Vid));
      if (aux != nullptr) {
        std::memcpy(aux_records + cursor[b],
                    aux_bufs + static_cast<size_t>(b) * cap, f * sizeof(Vid));
      }
      cursor[b] += f;
      fill[b] = 0;
    }
  }
  StreamFence();
}

// Binned pass-2 kernel: counting scatter of one cache-resident (chunk, bin)
// record segment into its SW range. Records are in W-scan order, and `offs`
// starts from the same per-(chunk, vp) table the direct path uses, so the
// resulting layout is bit-identical to the direct scatter.
FM_HOT_PATH uint64_t SegmentScatterScan(const PartitionPlan* plan,
                                        uint32_t num_vps, uint32_t vp_lo,
                                        const Vid* rec, const Vid* aux_rec,
                                        Wid len, Wid* offs,
                                        const Wid* vp_offsets, Vid* sw,
                                        Vid* sw_aux, uint32_t lookahead) {
  uint64_t issued = 0;
  for (Wid i = 0; i < len; ++i) {
    if (lookahead != 0 && i + lookahead < len) {
      PrefetchWrite(
          sw + offs[BinOfWalker(plan, num_vps, rec[i + lookahead]) - vp_lo]);
      ++issued;
    }
    const Vid v = rec[i];
    const uint32_t vp = BinOfWalker(plan, num_vps, v);
    FM_DCHECK_GE(vp, vp_lo);
    Wid p = offs[vp - vp_lo]++;
    FM_DCHECK_LT(p, vp_offsets[vp + 1]);
    sw[p] = v;
    if (aux_rec != nullptr) {
      sw_aux[p] = aux_rec[i];
    }
  }
  return issued;
}

// Binned gather phase A: replay one (chunk, bin) segment's counting offsets
// against the (sample-updated) SW and stage each walker's new value next to
// its record slot. All SW reads stay inside the bin's cache-resident span.
FM_HOT_PATH uint64_t GatherSegmentScan(const PartitionPlan* plan,
                                       uint32_t num_vps, uint32_t vp_lo,
                                       const Vid* rec, Wid len, Wid* offs,
                                       Wid n, const Vid* sw, const Vid* sw_aux,
                                       Vid* values, Vid* aux_values,
                                       [[maybe_unused]] uint8_t* consumed,
                                       uint32_t lookahead) {
  uint64_t issued = 0;
  for (Wid i = 0; i < len; ++i) {
    if (lookahead != 0 && i + lookahead < len) {
      PrefetchRead(
          sw + offs[BinOfWalker(plan, num_vps, rec[i + lookahead]) - vp_lo]);
      ++issued;
    }
    const uint32_t vp = BinOfWalker(plan, num_vps, rec[i]);
    FM_DCHECK_GE(vp, vp_lo);
    Wid p = offs[vp - vp_lo]++;
    FM_DCHECK_LT(p, n);
#ifndef NDEBUG
    FM_DCHECK_MSG(consumed[p] == 0, "SW slot " << p << " replayed twice");
    consumed[p] = 1;
#endif
    values[i] = sw[p];
    if (sw_aux != nullptr) {
      aux_values[i] = sw_aux[p];
    }
  }
  return issued;
}

// Binned gather phase B: re-scan one chunk of W_prev in order, consuming each
// walker's staged value from its bin's region cursor — the same append order
// pass 1 produced, so walker j gets exactly its own SW slot's value.
FM_HOT_PATH uint64_t GatherMergeScan(const PartitionPlan* plan,
                                     const uint32_t* vp_to_bin,
                                     uint32_t num_vps, const Vid* w_prev,
                                     Wid begin, Wid end, Wid* cursor,
                                     const Vid* values, const Vid* aux_values,
                                     Vid* w_next, Vid* aux_next,
                                     uint32_t lookahead) {
  uint64_t issued = 0;
  for (Wid j = begin; j < end; ++j) {
    if (lookahead != 0 && j + lookahead < end) {
      PrefetchRead(
          values +
          cursor[vp_to_bin[BinOfWalker(plan, num_vps, w_prev[j + lookahead])]]);
      ++issued;
    }
    const uint32_t b = vp_to_bin[BinOfWalker(plan, num_vps, w_prev[j])];
    const Wid p = cursor[b]++;
    w_next[j] = values[p];
    if (aux_values != nullptr) {
      aux_next[j] = aux_values[p];
    }
  }
  return issued;
}

}  // namespace

// -- ShuffleBackend (shared counting state) -----------------------------------

ShuffleBackend::ShuffleBackend(const PartitionPlan* plan, ThreadPool* pool)
    : plan_(plan), pool_(pool), num_vps_(plan->num_vps()) {
  num_chunks_ = pool_->thread_count();
  starts_.resize(static_cast<size_t>(num_chunks_) * (num_vps_ + 1));
  vp_offsets_.resize(num_vps_ + 2);
}

void ShuffleBackend::CountAndPrefix(const Vid* w, Wid n) {
  size_t row = num_vps_ + 1;
  std::fill(starts_.begin(), starts_.end(), 0);
  pool_->ParallelFor(num_chunks_, [&](uint64_t c, uint32_t) {
    Wid begin = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c));
    Wid end = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c) + 1);
    TraceSpan span("shuffle", "count_chunk");
    span.Arg("chunk", c);
    span.Arg("walkers", end - begin);
    CountChunkScan(plan_, num_vps_, w, begin, end, &starts_[c * row]);
  });
  // Prefix over (vp-major, chunk-minor): the SW order within a partition is (chunk,
  // scan), which Gather replays deterministically.
  Wid acc = 0;
  for (uint32_t vp = 0; vp <= num_vps_; ++vp) {
    vp_offsets_[vp] = acc;
    for (uint32_t c = 0; c < num_chunks_; ++c) {
      Wid count = starts_[c * row + vp];
      starts_[c * row + vp] = acc;
      acc += count;
    }
  }
  vp_offsets_[num_vps_ + 1] = acc;
  FM_CHECK(acc == n);
  // Offset monotonicity: the prefix walk must leave both tables non-decreasing,
  // and every (chunk, vp) start inside its vp's chunk — the invariant that makes
  // the scatter/gather replay a bijection.
  for (uint32_t vp = 0; vp <= num_vps_; ++vp) {
    FM_DCHECK_LE(vp_offsets_[vp], vp_offsets_[vp + 1]);
    for (uint32_t c = 0; c < num_chunks_; ++c) {
      FM_DCHECK_GE(starts_[c * row + vp], vp_offsets_[vp]);
      FM_DCHECK_LE(starts_[c * row + vp], vp_offsets_[vp + 1]);
      if (c + 1 < num_chunks_) {
        FM_DCHECK_LE(starts_[c * row + vp], starts_[(c + 1) * row + vp]);
      }
    }
  }
  scattered_n_ = n;
}

// -- direct backend -----------------------------------------------------------

namespace {

// The historical counting-scatter path (plus the §4.4 two-level escalation):
// the bit-exact oracle every other backend must match.
class DirectShuffleBackend : public ShuffleBackend {
 public:
  using ShuffleBackend::ShuffleBackend;

  void Scatter(const Vid* w, const Vid* aux, Wid n, Vid* sw,
               Vid* sw_aux) override {
    Timer timer;
    CountAndPrefix(w, n);
    scatter_stats_.pass1_s = timer.Lap();
    uint64_t issued = 0;
    if (plan_->has_internal_shuffle()) {
      // Two-level escalation: no look-ahead (the outer pass streams and the
      // inner pass is already cache-resident per group).
      ScatterTwoLevel(w, aux, n, sw, sw_aux);
    } else {
      issued = ScatterDirect(w, aux, n, sw, sw_aux);
    }
    scatter_stats_.pass2_s = timer.Lap();
    scatter_stats_.flushed_lines = 0;
    scatter_stats_.prefetch_issues = issued;
  }

  [[nodiscard]] Status Gather(const Vid* w_prev, Wid n, const Vid* sw,
                              Vid* w_next, const Vid* sw_aux,
                              Vid* aux_next) override {
    if (n != scattered_n_) {
      std::ostringstream msg;
      msg << "Gather must replay the exact Scatter input: got " << n
          << " walkers, scattered " << scattered_n_;
      return Status::FailedPrecondition(msg.str());
    }
    Timer timer;
    size_t row = num_vps_ + 1;
#ifndef NDEBUG
    // Bijectivity witness: every SW slot must be consumed exactly once. Distinct
    // slots mean the writes below are race-free iff the replay is a permutation; a
    // corrupted replay trips the check (or TSan, which reports it first).
    std::vector<uint8_t> consumed(n, 0);
#endif
    std::atomic<uint64_t> issued{0};
    pool_->ParallelFor(num_chunks_, [&](uint64_t c, uint32_t) {
      Wid begin = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c));
      Wid end = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c) + 1);
      TraceSpan span("shuffle", "gather_chunk");
      span.Arg("chunk", c);
      span.Arg("walkers", end - begin);
      std::vector<Wid> offs(starts_.begin() + c * row,
                            starts_.begin() + (c + 1) * row);
#ifndef NDEBUG
      uint8_t* consumed_ptr = consumed.data();
#else
      uint8_t* consumed_ptr = nullptr;
#endif
      const uint64_t chunk_issued =
          GatherChunkScan(plan_, num_vps_, w_prev, begin, end, offs.data(), n,
                          sw, sw_aux, w_next, aux_next, consumed_ptr,
                          prefetch_lookahead_);
      // relaxed: independent per-chunk counter folds; the ParallelFor join
      // publishes the total.
      issued.fetch_add(chunk_issued, std::memory_order_relaxed);
    });
    gather_stats_.pass1_s = 0;
    gather_stats_.pass2_s = timer.Lap();
    // relaxed: read after the ParallelFor join; no concurrent writers remain.
    gather_stats_.prefetch_issues = issued.load(std::memory_order_relaxed);
    return Status::Ok();
  }

  void SimulateScatter(const Vid* w, const Vid* aux, Wid n, const Vid* sw,
                       const Vid* sw_aux,
                       const MemAccessFn& access) const override;
  void SimulateGather(const Vid* w_prev, Wid n, const Vid* sw,
                      const Vid* sw_aux, const Vid* w_next,
                      const Vid* aux_next,
                      const MemAccessFn& access) const override;

  ShuffleBackendKind kind() const override {
    return ShuffleBackendKind::kDirect;
  }

  // Test hook: force the two-level path regardless of the plan.
  void ScatterTwoLevelAlways(const Vid* w, const Vid* aux, Wid n, Vid* sw,
                             Vid* sw_aux) {
    CountAndPrefix(w, n);
    ScatterTwoLevel(w, aux, n, sw, sw_aux);
  }

 private:
  uint64_t ScatterDirect(const Vid* w, const Vid* aux, Wid n, Vid* sw,
                         Vid* sw_aux) {
    size_t row = num_vps_ + 1;
    std::atomic<uint64_t> issued{0};
    pool_->ParallelFor(num_chunks_, [&](uint64_t c, uint32_t) {
      Wid begin = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c));
      Wid end = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c) + 1);
      TraceSpan span("shuffle", "scatter_chunk");
      span.Arg("chunk", c);
      span.Arg("walkers", end - begin);
      // Working copy so starts_ stays intact for Gather's replay.
      std::vector<Wid> offs(starts_.begin() + c * row,
                            starts_.begin() + (c + 1) * row);
      const uint64_t chunk_issued =
          ScatterChunkScan(plan_, num_vps_, w, aux, begin, end, offs.data(),
                           vp_offsets_.data(), sw, sw_aux,
                           prefetch_lookahead_);
      // relaxed: independent per-chunk counter folds; the ParallelFor join
      // publishes the total.
      issued.fetch_add(chunk_issued, std::memory_order_relaxed);
    });
    // relaxed: read after the ParallelFor join; no concurrent writers remain.
    return issued.load(std::memory_order_relaxed);
  }

  void ScatterTwoLevel(const Vid* w, const Vid* aux, Wid n, Vid* sw,
                       Vid* sw_aux) {
    // Outer pass: scatter by outer bin into the intermediate array. Outer-bin chunk
    // starts derive from VP-granularity starts because each bin covers a contiguous
    // VP range.
    inter_.resize(n);
    if (aux != nullptr) {
      inter_aux_.resize(n);
    }
    size_t row = num_vps_ + 1;
    uint32_t num_bins = plan_->num_outer_bins();

    // bin_first_vp[b] = plan VP index starting bin b; dead bin maps past the end.
    std::vector<uint32_t> bin_first_vp(num_bins + 1);
    for (const PartitionGroup& g : plan_->groups()) {
      if (g.internal_shuffle) {
        bin_first_vp[g.outer_bin_base] = g.vp_base;
      } else {
        for (uint32_t i = 0; i < g.vp_count; ++i) {
          bin_first_vp[g.outer_bin_base + i] = g.vp_base + i;
        }
      }
    }
    bin_first_vp[num_bins] = num_vps_;  // dead bin

    pool_->ParallelFor(num_chunks_, [&](uint64_t c, uint32_t) {
      Wid begin = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c));
      Wid end = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c) + 1);
      TraceSpan span("shuffle", "scatter_outer_chunk");
      span.Arg("chunk", c);
      span.Arg("walkers", end - begin);
      // Per-(chunk, bin) start = bin base + walkers of earlier chunks in this bin.
      // Earlier chunks' contribution per bin = sum over member VPs of
      // (starts_[c][vp] - vp_offsets_[vp]), since starts_[c][vp] already accumulates
      // earlier chunks at VP granularity.
      std::vector<Wid> cursor(num_bins + 1);
      for (uint32_t b = 0; b <= num_bins; ++b) {
        uint32_t vp_lo = bin_first_vp[b];
        uint32_t vp_hi = (b == num_bins) ? num_vps_ + 1 : bin_first_vp[b + 1];
        Wid bin_base = vp_offsets_[vp_lo];
        Wid earlier = 0;
        for (uint32_t vp = vp_lo; vp < vp_hi; ++vp) {
          earlier += starts_[c * row + vp] - vp_offsets_[vp];
        }
        cursor[b] = bin_base + earlier;
      }
      OuterScatterChunkScan(plan_, num_bins, w, aux, begin, end, cursor.data(),
                            scattered_n_, inter_.data(),
                            aux != nullptr ? inter_aux_.data() : nullptr);
    });

    // Inner pass: internal-shuffle bins get a counting scatter from the intermediate
    // chunk into SW; single-VP bins copy through. Parallel over groups.
    const auto& groups = plan_->groups();
    pool_->ParallelFor(groups.size() + 1, [&](uint64_t gi, uint32_t) {
      TraceSpan span("shuffle", "scatter_inner_group");
      span.Arg("group", gi);
      if (gi == groups.size()) {
        // Dead bin: copy through.
        Wid begin = vp_offsets_[num_vps_];
        Wid end = vp_offsets_[num_vps_ + 1];
        if (end > begin) {
          std::memcpy(sw + begin, inter_.data() + begin,
                      (end - begin) * sizeof(Vid));
          if (aux != nullptr) {
            std::memcpy(sw_aux + begin, inter_aux_.data() + begin,
                        (end - begin) * sizeof(Vid));
          }
        }
        return;
      }
      const PartitionGroup& g = groups[gi];
      Wid begin = vp_offsets_[g.vp_base];
      Wid end = vp_offsets_[g.vp_base + g.vp_count];
      if (end == begin) {
        return;
      }
      if (!g.internal_shuffle) {
        std::memcpy(sw + begin, inter_.data() + begin,
                    (end - begin) * sizeof(Vid));
        if (aux != nullptr) {
          std::memcpy(sw_aux + begin, inter_aux_.data() + begin,
                      (end - begin) * sizeof(Vid));
        }
        return;
      }
      std::vector<Wid> offs(g.vp_count);
      for (uint32_t i = 0; i < g.vp_count; ++i) {
        offs[i] = vp_offsets_[g.vp_base + i];
      }
      InnerScatterGroupScan(plan_, g.vp_base, g.vp_count, begin, end,
                            offs.data(), vp_offsets_.data(), inter_.data(),
                            aux != nullptr ? inter_aux_.data() : nullptr, sw,
                            sw_aux);
    });
  }

  // Scratch for the two-level path.
  std::vector<Vid> inter_;
  std::vector<Vid> inter_aux_;
};

void DirectShuffleBackend::SimulateScatter(const Vid* w, const Vid* aux, Wid n,
                                           const Vid* sw, const Vid* sw_aux,
                                           const MemAccessFn& access) const {
  FM_CHECK_MSG(n == scattered_n_, "simulate after the matching Scatter");
  const size_t row = num_vps_ + 1;
  // Count pass: sequential W read plus one resident counter bump per walker
  // (the scratch row stands in for the real per-chunk counter block).
  std::vector<Wid> scratch(row);
  for (uint32_t c = 0; c < num_chunks_; ++c) {
    const Wid begin = ChunkBegin(n, num_chunks_, c);
    const Wid end = ChunkBegin(n, num_chunks_, c + 1);
    for (Wid j = begin; j < end; ++j) {
      access(&w[j], sizeof(Vid));
      access(&scratch[BinOfWalker(plan_, num_vps_, w[j])], sizeof(Wid));
    }
  }
  if (!plan_->has_internal_shuffle()) {
    for (uint32_t c = 0; c < num_chunks_; ++c) {
      const Wid begin = ChunkBegin(n, num_chunks_, c);
      const Wid end = ChunkBegin(n, num_chunks_, c + 1);
      std::vector<Wid> offs(starts_.begin() + c * row,
                            starts_.begin() + (c + 1) * row);
      for (Wid j = begin; j < end; ++j) {
        access(&w[j], sizeof(Vid));
        const uint32_t bin = BinOfWalker(plan_, num_vps_, w[j]);
        const Wid p = offs[bin]++;
        access(&offs[bin], sizeof(Wid));
        access(&sw[p], sizeof(Vid));
        if (aux != nullptr) {
          access(&aux[j], sizeof(Vid));
          access(&sw_aux[p], sizeof(Vid));
        }
      }
    }
    return;
  }
  // Two-level replay: outer scatter into inter_, then per-group inner pass.
  // inter_ holds the real outer-pass output of the last Scatter, so the inner
  // replay reads genuine vertex values.
  FM_CHECK(inter_.size() >= n);
  for (uint32_t c = 0; c < num_chunks_; ++c) {
    const Wid begin = ChunkBegin(n, num_chunks_, c);
    const Wid end = ChunkBegin(n, num_chunks_, c + 1);
    std::vector<Wid> cursor(plan_->num_outer_bins() + 1);
    for (Wid j = begin; j < end; ++j) {
      access(&w[j], sizeof(Vid));
      const Vid v = w[j];
      const uint32_t b = (v == kInvalidVid) ? plan_->num_outer_bins()
                                            : plan_->OuterBinOf(v);
      access(&cursor[b], sizeof(Wid));
      // Position within inter_ is immaterial for the model: one streaming
      // write per walker into the bin's region.
      access(&inter_[j], sizeof(Vid));
      if (aux != nullptr) {
        access(&aux[j], sizeof(Vid));
        access(&inter_aux_[j], sizeof(Vid));
      }
    }
  }
  for (const PartitionGroup& g : plan_->groups()) {
    const Wid begin = vp_offsets_[g.vp_base];
    const Wid end = vp_offsets_[g.vp_base + g.vp_count];
    std::vector<Wid> offs(g.vp_count + 1);
    for (uint32_t i = 0; i < g.vp_count; ++i) {
      offs[i] = vp_offsets_[g.vp_base + i];
    }
    for (Wid j = begin; j < end; ++j) {
      access(&inter_[j], sizeof(Vid));
      if (g.internal_shuffle) {
        const uint32_t vp = plan_->VpOf(inter_[j]) - g.vp_base;
        const Wid p = offs[vp]++;
        access(&offs[vp], sizeof(Wid));
        access(&sw[p], sizeof(Vid));
      } else {
        access(&sw[j], sizeof(Vid));
      }
      if (aux != nullptr) {
        access(&inter_aux_[j], sizeof(Vid));
        access(&sw_aux[j], sizeof(Vid));
      }
    }
  }
  // Dead bin copy-through.
  for (Wid j = vp_offsets_[num_vps_]; j < vp_offsets_[num_vps_ + 1]; ++j) {
    access(&inter_[j], sizeof(Vid));
    access(&sw[j], sizeof(Vid));
  }
}

void DirectShuffleBackend::SimulateGather(const Vid* w_prev, Wid n,
                                          const Vid* sw, const Vid* sw_aux,
                                          const Vid* w_next,
                                          const Vid* aux_next,
                                          const MemAccessFn& access) const {
  FM_CHECK_MSG(n == scattered_n_, "simulate after the matching Scatter");
  const size_t row = num_vps_ + 1;
  for (uint32_t c = 0; c < num_chunks_; ++c) {
    const Wid begin = ChunkBegin(n, num_chunks_, c);
    const Wid end = ChunkBegin(n, num_chunks_, c + 1);
    std::vector<Wid> offs(starts_.begin() + c * row,
                          starts_.begin() + (c + 1) * row);
    for (Wid j = begin; j < end; ++j) {
      access(&w_prev[j], sizeof(Vid));
      const uint32_t bin = BinOfWalker(plan_, num_vps_, w_prev[j]);
      const Wid p = offs[bin]++;
      access(&offs[bin], sizeof(Wid));
      access(&sw[p], sizeof(Vid));
      access(&w_next[j], sizeof(Vid));
      if (sw_aux != nullptr) {
        access(&sw_aux[p], sizeof(Vid));
        access(&aux_next[j], sizeof(Vid));
      }
    }
  }
}

// -- binned backend -----------------------------------------------------------

// Propagation-blocking backend: pass 1 radix-bins walkers into per-chunk
// arena segments through per-(worker, bin) write-combining buffers, pass 2
// scatters each cache-resident segment into SW. Bins cover contiguous VP
// ranges (ShufflePlan), so re-deriving a record's VP inside its segment is
// the same two-shift arithmetic as everywhere else.
class BinnedShuffleBackend : public ShuffleBackend {
 public:
  BinnedShuffleBackend(const PartitionPlan* plan, ThreadPool* pool,
                       const ShufflePlan& sp)
      : ShuffleBackend(plan, pool), bin_first_vp_(sp.bin_first_vp) {
    FM_CHECK_MSG(!bin_first_vp_.empty() && bin_first_vp_.front() == 0 &&
                     bin_first_vp_.back() == num_vps_,
                 "ShufflePlan bins must tile the plan's VPs");
    for (size_t b = 1; b < bin_first_vp_.size(); ++b) {
      FM_CHECK(bin_first_vp_[b - 1] < bin_first_vp_[b]);
    }
    num_bins_ = static_cast<uint32_t>(bin_first_vp_.size() - 1);
    // Buffer capacity: whole cache lines, at least one.
    buffer_records_ = std::max(
        kVidsPerLine, sp.buffer_records / kVidsPerLine * kVidsPerLine);
    vp_to_bin_.resize(num_vps_ + 1);
    for (uint32_t b = 0; b < num_bins_; ++b) {
      for (uint32_t vp = bin_first_vp_[b]; vp < bin_first_vp_[b + 1]; ++vp) {
        vp_to_bin_[vp] = b;
      }
    }
    vp_to_bin_[num_vps_] = num_bins_;  // trailing dead bin
    const size_t bstride = num_bins_ + 1;
    // Per-worker buffer blocks are whole cache lines, so workers never share
    // a line; the fill rows are padded to a line for the same reason.
    buffers_.Allocate(static_cast<size_t>(num_chunks_) * bstride *
                      buffer_records_);
    aux_buffers_.Allocate(static_cast<size_t>(num_chunks_) * bstride *
                          buffer_records_);
    fill_stride_ = (bstride + kVidsPerLine - 1) & ~size_t{kVidsPerLine - 1};
    fills_.resize(static_cast<size_t>(num_chunks_) * fill_stride_);
    region_start_.resize(static_cast<size_t>(num_chunks_) * bstride + 1);
    region_len_.resize(static_cast<size_t>(num_chunks_) * bstride);
  }

  void AttachArena(ShuffleArena* arena) override { arena_ = arena; }

  void Scatter(const Vid* w, const Vid* aux, Wid n, Vid* sw,
               Vid* sw_aux) override {
    FM_CHECK_MSG(arena_ != nullptr,
                 "binned shuffle requires AttachArena() before Scatter");
    Timer timer;
    have_aux_ = aux != nullptr;
    CountAndPrefix(w, n);
    PrepareRegions();
    records_ = arena_vids_ > 0 ? arena_->EnsureRecords(arena_vids_) : nullptr;
    aux_records_ = (aux != nullptr && arena_vids_ > 0)
                       ? arena_->EnsureAuxRecords(arena_vids_)
                       : nullptr;

    const size_t bstride = num_bins_ + 1;
    pool_->ParallelFor(num_chunks_, [&](uint64_t c, uint32_t worker) {
      const Wid begin = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c));
      const Wid end = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c) + 1);
      TraceSpan span("shuffle", "bin_chunk");
      span.Arg("chunk", c);
      span.Arg("walkers", end - begin);
      uint32_t* fill = &fills_[worker * fill_stride_];
      std::fill(fill, fill + bstride, 0u);
      std::vector<Wid> cursor(region_start_.begin() + c * bstride,
                              region_start_.begin() + (c + 1) * bstride + 1);
      Vid* bufs =
          buffers_.data() + static_cast<size_t>(worker) * bstride *
                                buffer_records_;
      Vid* aux_bufs =
          aux != nullptr ? aux_buffers_.data() + static_cast<size_t>(worker) *
                                                     bstride * buffer_records_
                         : nullptr;
      BinChunkScan(plan_, vp_to_bin_.data(), num_vps_, w, aux, begin, end,
                   bufs, aux_bufs, buffer_records_,
                   static_cast<uint32_t>(bstride), fill, cursor.data(),
                   records_, aux_records_);
    });
    scatter_stats_.pass1_s = timer.Lap();

    std::atomic<uint64_t> issued{0};
    pool_->ParallelFor(bstride, [&](uint64_t b, uint32_t) {
      TraceSpan span("shuffle", "segment_scatter");
      span.Arg("bin", b);
      const uint64_t bin_issued = ScatterBin(static_cast<uint32_t>(b), sw,
                                             sw_aux);
      // relaxed: independent per-bin counter folds; the ParallelFor join
      // publishes the total.
      issued.fetch_add(bin_issued, std::memory_order_relaxed);
    });
    scatter_stats_.pass2_s = timer.Lap();
    scatter_stats_.flushed_lines = pending_flushed_lines_;
    // relaxed: read after the ParallelFor join; no concurrent writers remain.
    scatter_stats_.prefetch_issues = issued.load(std::memory_order_relaxed);
  }

  [[nodiscard]] Status Gather(const Vid* w_prev, Wid n, const Vid* sw,
                              Vid* w_next, const Vid* sw_aux,
                              Vid* aux_next) override {
    if (n != scattered_n_) {
      std::ostringstream msg;
      msg << "Gather must replay the exact Scatter input: got " << n
          << " walkers, scattered " << scattered_n_;
      return Status::FailedPrecondition(msg.str());
    }
    Timer timer;
    values_ = arena_vids_ > 0 ? arena_->EnsureValues(arena_vids_) : nullptr;
    aux_values_ = (sw_aux != nullptr && arena_vids_ > 0)
                      ? arena_->EnsureAuxValues(arena_vids_)
                      : nullptr;
#ifndef NDEBUG
    std::vector<uint8_t> consumed(n, 0);
    uint8_t* consumed_ptr = consumed.data();
#else
    uint8_t* consumed_ptr = nullptr;
#endif
    const size_t bstride = num_bins_ + 1;
    std::atomic<uint64_t> issued{0};
    // Phase A, parallel over bins: replay each segment's counting offsets and
    // stage the sampled values record-adjacent. SW reads stay in the bin's
    // cache-resident span; writes go to disjoint regions.
    pool_->ParallelFor(bstride, [&](uint64_t b, uint32_t) {
      TraceSpan span("shuffle", "gather_segment");
      span.Arg("bin", b);
      const uint64_t bin_issued =
          GatherBin(static_cast<uint32_t>(b), n, sw, sw_aux, consumed_ptr);
      // relaxed: independent per-bin counter folds; the ParallelFor join
      // publishes the total.
      issued.fetch_add(bin_issued, std::memory_order_relaxed);
    });
    gather_stats_.pass1_s = timer.Lap();

    // Phase B, parallel over chunks: re-scan W_prev in order, consuming each
    // bin's staged values sequentially — the append order of pass 1.
    pool_->ParallelFor(num_chunks_, [&](uint64_t c, uint32_t) {
      const Wid begin = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c));
      const Wid end = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c) + 1);
      TraceSpan span("shuffle", "gather_merge");
      span.Arg("chunk", c);
      span.Arg("walkers", end - begin);
      std::vector<Wid> cursor(region_start_.begin() + c * bstride,
                              region_start_.begin() + (c + 1) * bstride + 1);
      const uint64_t chunk_issued =
          GatherMergeScan(plan_, vp_to_bin_.data(), num_vps_, w_prev, begin,
                          end, cursor.data(), values_, aux_values_, w_next,
                          aux_next, prefetch_lookahead_);
      // relaxed: independent per-chunk counter folds; the ParallelFor join
      // publishes the total.
      issued.fetch_add(chunk_issued, std::memory_order_relaxed);
    });
    gather_stats_.pass2_s = timer.Lap();
    // relaxed: read after the ParallelFor join; no concurrent writers remain.
    gather_stats_.prefetch_issues = issued.load(std::memory_order_relaxed);
    return Status::Ok();
  }

  void SimulateScatter(const Vid* w, const Vid* aux, Wid n, const Vid* sw,
                       const Vid* sw_aux,
                       const MemAccessFn& access) const override {
    FM_CHECK_MSG(n == scattered_n_, "simulate after the matching Scatter");
    const size_t bstride = num_bins_ + 1;
    // Pass 1: sequential W read, one write-combining slot touch per walker;
    // full-line flushes are non-temporal and bypass the hierarchy (that is
    // the point of the protocol), so they contribute no accesses.
    std::vector<uint32_t> fill(bstride, 0);
    for (uint32_t c = 0; c < num_chunks_; ++c) {
      const Wid begin = ChunkBegin(n, num_chunks_, c);
      const Wid end = ChunkBegin(n, num_chunks_, c + 1);
      std::fill(fill.begin(), fill.end(), 0u);
      for (Wid j = begin; j < end; ++j) {
        access(&w[j], sizeof(Vid));
        const uint32_t b = vp_to_bin_[BinOfWalker(plan_, num_vps_, w[j])];
        uint32_t f = fill[b];
        access(&buffers_.data()[(static_cast<size_t>(c) * bstride +
                                 static_cast<size_t>(b)) *
                                    buffer_records_ +
                                f],
               sizeof(Vid));
        if (aux != nullptr) {
          access(&aux[j], sizeof(Vid));
        }
        fill[b] = (f + 1 == buffer_records_) ? 0 : f + 1;
      }
    }
    // Pass 2: stream each segment's records back (they were written around
    // the cache, so these are cold reads) and scatter into the resident SW
    // span.
    for (uint32_t b = 0; b <= num_bins_; ++b) {
      const uint32_t vp_lo = b == num_bins_ ? num_vps_ : bin_first_vp_[b];
      for (uint32_t c = 0; c < num_chunks_; ++c) {
        const Wid rbegin = region_start_[c * bstride + b];
        const Wid len = region_len_[c * bstride + b];
        std::vector<Wid> offs = SegmentOffsets(b, c);
        for (Wid i = 0; i < len; ++i) {
          access(&records_[rbegin + i], sizeof(Vid));
          const uint32_t vp = BinOfWalker(plan_, num_vps_, records_[rbegin + i]);
          const Wid p = offs[vp - vp_lo]++;
          access(&offs[vp - vp_lo], sizeof(Wid));
          access(&sw[p], sizeof(Vid));
          if (aux != nullptr) {
            access(&aux_records_[rbegin + i], sizeof(Vid));
            access(&sw_aux[p], sizeof(Vid));
          }
        }
      }
    }
  }

  void SimulateGather(const Vid* w_prev, Wid n, const Vid* sw,
                      const Vid* sw_aux, const Vid* w_next,
                      const Vid* aux_next,
                      const MemAccessFn& access) const override {
    FM_CHECK_MSG(n == scattered_n_, "simulate after the matching Scatter");
    const size_t bstride = num_bins_ + 1;
    // Phase A: per-segment record re-read, resident SW fetch, staged-value
    // write.
    for (uint32_t b = 0; b <= num_bins_; ++b) {
      const uint32_t vp_lo = b == num_bins_ ? num_vps_ : bin_first_vp_[b];
      for (uint32_t c = 0; c < num_chunks_; ++c) {
        const Wid rbegin = region_start_[c * bstride + b];
        const Wid len = region_len_[c * bstride + b];
        std::vector<Wid> offs = SegmentOffsets(b, c);
        for (Wid i = 0; i < len; ++i) {
          access(&records_[rbegin + i], sizeof(Vid));
          const uint32_t vp = BinOfWalker(plan_, num_vps_, records_[rbegin + i]);
          const Wid p = offs[vp - vp_lo]++;
          access(&offs[vp - vp_lo], sizeof(Wid));
          access(&sw[p], sizeof(Vid));
          access(&values_[rbegin + i], sizeof(Vid));
          if (sw_aux != nullptr) {
            access(&sw_aux[p], sizeof(Vid));
          }
        }
      }
    }
    // Phase B: walker-order merge.
    std::vector<Wid> cursor(bstride);
    for (uint32_t c = 0; c < num_chunks_; ++c) {
      const Wid begin = ChunkBegin(n, num_chunks_, c);
      const Wid end = ChunkBegin(n, num_chunks_, c + 1);
      for (uint32_t b = 0; b < bstride; ++b) {
        cursor[b] = region_start_[c * bstride + b];
      }
      for (Wid j = begin; j < end; ++j) {
        access(&w_prev[j], sizeof(Vid));
        const uint32_t b = vp_to_bin_[BinOfWalker(plan_, num_vps_, w_prev[j])];
        const Wid p = cursor[b]++;
        access(&cursor[b], sizeof(Wid));
        access(&values_[p], sizeof(Vid));
        access(&w_next[j], sizeof(Vid));
        if (aux_next != nullptr) {
          access(&aux_next[j], sizeof(Vid));
        }
      }
    }
  }

  ShuffleBackendKind kind() const override {
    return ShuffleBackendKind::kBinned;
  }

 private:
  // Per-(chunk, bin) arena regions: contiguous in chunk-major order, each
  // rounded up to whole cache lines so every region start is line-aligned and
  // full-buffer flushes never straddle a region boundary.
  void PrepareRegions() {
    const size_t bstride = num_bins_ + 1;
    Wid total = 0;
    uint64_t full_flushes = 0;
    for (uint32_t c = 0; c < num_chunks_; ++c) {
      for (uint32_t b = 0; b <= num_bins_; ++b) {
        const uint32_t vp_lo = b == num_bins_ ? num_vps_ : bin_first_vp_[b];
        const uint32_t vp_hi =
            b == num_bins_ ? num_vps_ + 1 : bin_first_vp_[b + 1];
        Wid len = 0;
        for (uint32_t vp = vp_lo; vp < vp_hi; ++vp) {
          len += ChunkVpCount(c, vp);
        }
        region_start_[c * bstride + b] = total;
        region_len_[c * bstride + b] = len;
        full_flushes += len / buffer_records_;
        total += (len + kVidsPerLine - 1) & ~static_cast<Wid>(kVidsPerLine - 1);
      }
    }
    region_start_.back() = total;
    arena_vids_ = total;
    pending_flushed_lines_ =
        full_flushes * (buffer_records_ / kVidsPerLine) * (have_aux_ ? 2 : 1);
  }

  // Counting-scatter offsets of bin b's member VPs for chunk c, straight from
  // the shared per-(chunk, vp) table — the direct path's exact offsets.
  std::vector<Wid> SegmentOffsets(uint32_t b, uint32_t c) const {
    const size_t row = num_vps_ + 1;
    const uint32_t vp_lo = b == num_bins_ ? num_vps_ : bin_first_vp_[b];
    const uint32_t vp_hi = b == num_bins_ ? num_vps_ + 1 : bin_first_vp_[b + 1];
    std::vector<Wid> offs(vp_hi - vp_lo);
    for (uint32_t i = 0; i < vp_hi - vp_lo; ++i) {
      offs[i] = starts_[c * row + vp_lo + i];
    }
    return offs;
  }

  uint64_t ScatterBin(uint32_t b, Vid* sw, Vid* sw_aux) {
    const size_t bstride = num_bins_ + 1;
    const uint32_t vp_lo = b == num_bins_ ? num_vps_ : bin_first_vp_[b];
    uint64_t issued = 0;
    for (uint32_t c = 0; c < num_chunks_; ++c) {
      const Wid rbegin = region_start_[c * bstride + b];
      const Wid len = region_len_[c * bstride + b];
      if (len == 0) {
        continue;
      }
      std::vector<Wid> offs = SegmentOffsets(b, c);
      issued += SegmentScatterScan(plan_, num_vps_, vp_lo, records_ + rbegin,
                                   have_aux_ ? aux_records_ + rbegin : nullptr,
                                   len, offs.data(), vp_offsets_.data(), sw,
                                   sw_aux, prefetch_lookahead_);
    }
    return issued;
  }

  uint64_t GatherBin(uint32_t b, Wid n, const Vid* sw, const Vid* sw_aux,
                     uint8_t* consumed) {
    const size_t bstride = num_bins_ + 1;
    const uint32_t vp_lo = b == num_bins_ ? num_vps_ : bin_first_vp_[b];
    uint64_t issued = 0;
    for (uint32_t c = 0; c < num_chunks_; ++c) {
      const Wid rbegin = region_start_[c * bstride + b];
      const Wid len = region_len_[c * bstride + b];
      if (len == 0) {
        continue;
      }
      std::vector<Wid> offs = SegmentOffsets(b, c);
      issued += GatherSegmentScan(
          plan_, num_vps_, vp_lo, records_ + rbegin, len, offs.data(), n, sw,
          sw_aux, values_ + rbegin,
          aux_values_ != nullptr ? aux_values_ + rbegin : nullptr, consumed,
          prefetch_lookahead_);
    }
    return issued;
  }

  std::vector<uint32_t> bin_first_vp_;
  uint32_t num_bins_ = 0;
  uint32_t buffer_records_ = 0;
  std::vector<uint32_t> vp_to_bin_;

  // Per-(worker, bin) write-combining buffers (walker + aux streams) and
  // their fill counts; reset at the start of every chunk scan.
  AlignedBuffer<Vid> buffers_;
  AlignedBuffer<Vid> aux_buffers_;
  size_t fill_stride_ = 0;
  std::vector<uint32_t> fills_;

  // Per-(chunk, bin) arena regions of the last Scatter; Gather replays them.
  std::vector<Wid> region_start_;
  std::vector<Wid> region_len_;
  Wid arena_vids_ = 0;
  uint64_t pending_flushed_lines_ = 0;
  bool have_aux_ = false;

  ShuffleArena* arena_ = nullptr;
  Vid* records_ = nullptr;
  Vid* aux_records_ = nullptr;
  Vid* values_ = nullptr;
  Vid* aux_values_ = nullptr;
};

std::unique_ptr<ShuffleBackend> MakeBackend(const PartitionPlan* plan,
                                            ThreadPool* pool,
                                            const ShuffleConfig& config) {
  ShuffleBackendKind kind = config.kind;
  if (kind == ShuffleBackendKind::kAuto) {
    kind = config.shuffle_plan != nullptr ? config.shuffle_plan->recommended
                                          : ShuffleBackendKind::kDirect;
  }
  std::unique_ptr<ShuffleBackend> backend;
  if (kind == ShuffleBackendKind::kBinned) {
    FM_CHECK_MSG(config.shuffle_plan != nullptr,
                 "binned shuffle requires a ShufflePlan");
    backend = std::make_unique<BinnedShuffleBackend>(plan, pool,
                                                     *config.shuffle_plan);
  } else {
    backend = std::make_unique<DirectShuffleBackend>(plan, pool);
  }
  backend->set_prefetch_lookahead(config.prefetch_lookahead);
  return backend;
}

}  // namespace

// -- Shuffler facade ----------------------------------------------------------

Shuffler::Shuffler(const PartitionPlan* plan, ThreadPool* pool)
    : Shuffler(plan, pool, ShuffleConfig{}) {}

Shuffler::Shuffler(const PartitionPlan* plan, ThreadPool* pool,
                   const ShuffleConfig& config)
    : backend_(MakeBackend(plan, pool, config)) {}

Shuffler::~Shuffler() = default;

namespace {

// Shuffle-stage telemetry, published once per Scatter/Gather op (never inside
// the scan loops). Instruments are process-wide so one lookup serves every
// Shuffler; deliberately leaked references into the leaked registry.
struct ShuffleTelemetry {
  telemetry::Counter& pass1_ns;
  telemetry::Counter& pass2_ns;
  telemetry::Counter& flushed_lines;
  telemetry::Counter& prefetch_issues;
  telemetry::Counter& scatter_ops;
  telemetry::Counter& gather_ops;

  static ShuffleTelemetry& Get() {
    auto& reg = telemetry::TelemetryRegistry::Get();
    static ShuffleTelemetry tm{
        reg.CounterRef("fm.shuffle.pass1_ns_total"),
        reg.CounterRef("fm.shuffle.pass2_ns_total"),
        reg.CounterRef("fm.shuffle.flushed_lines_total"),
        reg.CounterRef("fm.shuffle.prefetch_issues_total"),
        reg.CounterRef("fm.shuffle.scatter_ops_total"),
        reg.CounterRef("fm.shuffle.gather_ops_total"),
    };
    return tm;
  }

  void Publish(const ShuffleOpStats& stats) {
    pass1_ns.Add(stats.pass1_s <= 0
                     ? 0
                     : static_cast<uint64_t>(stats.pass1_s * 1e9));
    pass2_ns.Add(stats.pass2_s <= 0
                     ? 0
                     : static_cast<uint64_t>(stats.pass2_s * 1e9));
    flushed_lines.Add(stats.flushed_lines);
    prefetch_issues.Add(stats.prefetch_issues);
  }
};

}  // namespace

void Shuffler::Scatter(const Vid* w, const Vid* aux, Wid n, Vid* sw,
                       Vid* sw_aux) {
  backend_->Scatter(w, aux, n, sw, sw_aux);
  ShuffleTelemetry& tm = ShuffleTelemetry::Get();
  tm.Publish(backend_->last_scatter_stats());
  tm.scatter_ops.Add(1);
}

Status Shuffler::Gather(const Vid* w_prev, Wid n, const Vid* sw, Vid* w_next,
                        const Vid* sw_aux, Vid* aux_next) {
  Status status = backend_->Gather(w_prev, n, sw, w_next, sw_aux, aux_next);
  if (status.ok()) {
    ShuffleTelemetry& tm = ShuffleTelemetry::Get();
    tm.Publish(backend_->last_gather_stats());
    tm.gather_ops.Add(1);
  }
  return status;
}

void Shuffler::ScatterTwoLevelForTest(const Vid* w, const Vid* aux, Wid n,
                                      Vid* sw, Vid* sw_aux) {
  auto* direct = dynamic_cast<DirectShuffleBackend*>(backend_.get());
  FM_CHECK_MSG(direct != nullptr,
               "ScatterTwoLevelForTest requires the direct backend");
  direct->ScatterTwoLevelAlways(w, aux, n, sw, sw_aux);
}

}  // namespace fm
