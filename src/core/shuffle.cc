#include "src/core/shuffle.h"

#include <algorithm>
#include <cstring>

#include "src/util/logging.h"
#include "src/util/sync.h"
#include "src/util/trace.h"

namespace fm {
namespace {

// Chunk boundaries: chunk c of n over k chunks.
inline Wid ChunkBegin(Wid n, uint32_t chunks, uint32_t c) {
  // div: one quotient + remainder per chunk boundary (O(threads) per pass, not
  // per walker); `chunks` is the runtime thread count, so no shift folding.
  return n / chunks * c + std::min<Wid>(c, n % chunks);
}

// Destination bin of one walker value: its vertex partition, or the trailing
// dead bin for terminated walkers.
FM_HOT_PATH inline uint32_t BinOfWalker(const PartitionPlan* plan,
                                        uint32_t num_vps, Vid value) {
  return value == kInvalidVid ? num_vps : plan->VpOf(value);
}

// Pass-1 kernel: per-chunk destination counts (sequential read of W; counter
// arrays stay cache-resident — the L2-derived fan-out constraint of §4.3).
FM_HOT_PATH void CountChunkScan(const PartitionPlan* plan, uint32_t num_vps,
                                const Vid* w, Wid begin, Wid end, Wid* counts) {
  for (Wid j = begin; j < end; ++j) {
    ++counts[BinOfWalker(plan, num_vps, w[j])];
  }
}

// Pass-2 kernel (direct path): counting scatter of one chunk of W into SW.
FM_HOT_PATH void ScatterChunkScan(const PartitionPlan* plan, uint32_t num_vps,
                                  const Vid* w, const Vid* aux, Wid begin,
                                  Wid end, Wid* offs, const Wid* vp_offsets,
                                  Vid* sw, Vid* sw_aux) {
  for (Wid j = begin; j < end; ++j) {
    uint32_t bin = BinOfWalker(plan, num_vps, w[j]);
    Wid p = offs[bin]++;
    FM_DCHECK_LT(p, vp_offsets[bin + 1]);
    sw[p] = w[j];
    if (aux != nullptr) {
      sw_aux[p] = aux[j];
    }
  }
}

// Outer-pass kernel (two-level path): scatter one chunk of W by outer bin into
// the intermediate array.
FM_HOT_PATH void OuterScatterChunkScan(const PartitionPlan* plan,
                                       uint32_t num_bins, const Vid* w,
                                       const Vid* aux, Wid begin, Wid end,
                                       Wid* cursor, Wid scattered_n, Vid* inter,
                                       Vid* inter_aux) {
  for (Wid j = begin; j < end; ++j) {
    Vid v = w[j];
    uint32_t b = (v == kInvalidVid) ? num_bins : plan->OuterBinOf(v);
    Wid p = cursor[b]++;
    FM_DCHECK_LT(p, scattered_n);
    inter[p] = v;
    if (aux != nullptr) {
      inter_aux[p] = aux[j];
    }
  }
}

// Inner-pass kernel (two-level path): stable in-bin counting scatter by VP.
// Scanning the intermediate chunk in order preserves (chunk, scan) order per
// VP, matching the direct layout.
FM_HOT_PATH void InnerScatterGroupScan(const PartitionPlan* plan,
                                       uint32_t vp_base, uint32_t vp_count,
                                       Wid begin, Wid end, Wid* offs,
                                       const Wid* vp_offsets, const Vid* inter,
                                       const Vid* inter_aux, Vid* sw,
                                       Vid* sw_aux) {
  for (Wid j = begin; j < end; ++j) {
    FM_DCHECK_GE(plan->VpOf(inter[j]), vp_base);
    uint32_t vp = plan->VpOf(inter[j]) - vp_base;
    FM_DCHECK_LT(vp, vp_count);
    Wid p = offs[vp]++;
    FM_DCHECK_LT(p, vp_offsets[vp_base + vp + 1]);
    sw[p] = inter[j];
    if (inter_aux != nullptr) {
      sw_aux[p] = inter_aux[j];
    }
  }
}

// Gather kernel: replay one chunk's counting offsets, pulling each walker's
// post-step value out of SW back into walker order. `consumed` is the debug
// bijectivity witness (null in release builds).
FM_HOT_PATH void GatherChunkScan(const PartitionPlan* plan, uint32_t num_vps,
                                 const Vid* w_prev, Wid begin, Wid end,
                                 Wid* offs, Wid n, const Vid* sw,
                                 const Vid* sw_aux, Vid* w_next, Vid* aux_next,
                                 [[maybe_unused]] uint8_t* consumed) {
  for (Wid j = begin; j < end; ++j) {
    Wid p = offs[BinOfWalker(plan, num_vps, w_prev[j])]++;
    FM_DCHECK_LT(p, n);
#ifndef NDEBUG
    FM_DCHECK_MSG(consumed[p] == 0, "SW slot " << p << " replayed twice");
    consumed[p] = 1;
#endif
    w_next[j] = sw[p];
    if (sw_aux != nullptr) {
      aux_next[j] = sw_aux[p];
    }
  }
}

}  // namespace

Shuffler::Shuffler(const PartitionPlan* plan, ThreadPool* pool)
    : plan_(plan), pool_(pool), num_vps_(plan->num_vps()) {
  num_chunks_ = pool_->thread_count();
  starts_.resize(static_cast<size_t>(num_chunks_) * (num_vps_ + 1));
  vp_offsets_.resize(num_vps_ + 2);
}

void Shuffler::CountAndPrefix(const Vid* w, Wid n) {
  size_t row = num_vps_ + 1;
  std::fill(starts_.begin(), starts_.end(), 0);
  pool_->ParallelFor(num_chunks_, [&](uint64_t c, uint32_t) {
    Wid begin = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c));
    Wid end = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c) + 1);
    TraceSpan span("shuffle", "count_chunk");
    span.Arg("chunk", c);
    span.Arg("walkers", end - begin);
    CountChunkScan(plan_, num_vps_, w, begin, end, &starts_[c * row]);
  });
  // Prefix over (vp-major, chunk-minor): the SW order within a partition is (chunk,
  // scan), which Gather replays deterministically.
  Wid acc = 0;
  for (uint32_t vp = 0; vp <= num_vps_; ++vp) {
    vp_offsets_[vp] = acc;
    for (uint32_t c = 0; c < num_chunks_; ++c) {
      Wid count = starts_[c * row + vp];
      starts_[c * row + vp] = acc;
      acc += count;
    }
  }
  vp_offsets_[num_vps_ + 1] = acc;
  FM_CHECK(acc == n);
  // Offset monotonicity: the prefix walk must leave both tables non-decreasing,
  // and every (chunk, vp) start inside its vp's chunk — the invariant that makes
  // the scatter/gather replay a bijection.
  for (uint32_t vp = 0; vp <= num_vps_; ++vp) {
    FM_DCHECK_LE(vp_offsets_[vp], vp_offsets_[vp + 1]);
    for (uint32_t c = 0; c < num_chunks_; ++c) {
      FM_DCHECK_GE(starts_[c * row + vp], vp_offsets_[vp]);
      FM_DCHECK_LE(starts_[c * row + vp], vp_offsets_[vp + 1]);
      if (c + 1 < num_chunks_) {
        FM_DCHECK_LE(starts_[c * row + vp], starts_[(c + 1) * row + vp]);
      }
    }
  }
  scattered_n_ = n;
}

void Shuffler::ScatterDirect(const Vid* w, const Vid* aux, Wid n, Vid* sw,
                             Vid* sw_aux) {
  size_t row = num_vps_ + 1;
  pool_->ParallelFor(num_chunks_, [&](uint64_t c, uint32_t) {
    Wid begin = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c));
    Wid end = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c) + 1);
    TraceSpan span("shuffle", "scatter_chunk");
    span.Arg("chunk", c);
    span.Arg("walkers", end - begin);
    // Working copy so starts_ stays intact for Gather's replay.
    std::vector<Wid> offs(starts_.begin() + c * row,
                          starts_.begin() + (c + 1) * row);
    ScatterChunkScan(plan_, num_vps_, w, aux, begin, end, offs.data(),
                     vp_offsets_.data(), sw, sw_aux);
  });
}

void Shuffler::ScatterTwoLevel(const Vid* w, const Vid* aux, Wid n, Vid* sw,
                               Vid* sw_aux) {
  // Outer pass: scatter by outer bin into the intermediate array. Outer-bin chunk
  // starts derive from VP-granularity starts because each bin covers a contiguous VP
  // range.
  inter_.resize(n);
  if (aux != nullptr) {
    inter_aux_.resize(n);
  }
  size_t row = num_vps_ + 1;
  uint32_t num_bins = plan_->num_outer_bins();

  // bin_first_vp[b] = plan VP index starting bin b; dead bin maps past the end.
  std::vector<uint32_t> bin_first_vp(num_bins + 1);
  for (const PartitionGroup& g : plan_->groups()) {
    if (g.internal_shuffle) {
      bin_first_vp[g.outer_bin_base] = g.vp_base;
    } else {
      for (uint32_t i = 0; i < g.vp_count; ++i) {
        bin_first_vp[g.outer_bin_base + i] = g.vp_base + i;
      }
    }
  }
  bin_first_vp[num_bins] = num_vps_;  // dead bin

  pool_->ParallelFor(num_chunks_, [&](uint64_t c, uint32_t) {
    Wid begin = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c));
    Wid end = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c) + 1);
    TraceSpan span("shuffle", "scatter_outer_chunk");
    span.Arg("chunk", c);
    span.Arg("walkers", end - begin);
    // Per-(chunk, bin) start = bin base + walkers of earlier chunks in this bin.
    // Earlier chunks' contribution per bin = sum over member VPs of
    // (starts_[c][vp] - vp_offsets_[vp]), since starts_[c][vp] already accumulates
    // earlier chunks at VP granularity.
    std::vector<Wid> cursor(num_bins + 1);
    for (uint32_t b = 0; b <= num_bins; ++b) {
      uint32_t vp_lo = bin_first_vp[b];
      uint32_t vp_hi = (b == num_bins) ? num_vps_ + 1 : bin_first_vp[b + 1];
      Wid bin_base = vp_offsets_[vp_lo];
      Wid earlier = 0;
      for (uint32_t vp = vp_lo; vp < vp_hi; ++vp) {
        earlier += starts_[c * row + vp] - vp_offsets_[vp];
      }
      cursor[b] = bin_base + earlier;
    }
    OuterScatterChunkScan(plan_, num_bins, w, aux, begin, end, cursor.data(),
                          scattered_n_, inter_.data(),
                          aux != nullptr ? inter_aux_.data() : nullptr);
  });

  // Inner pass: internal-shuffle bins get a counting scatter from the intermediate
  // chunk into SW; single-VP bins copy through. Parallel over groups.
  const auto& groups = plan_->groups();
  pool_->ParallelFor(groups.size() + 1, [&](uint64_t gi, uint32_t) {
    TraceSpan span("shuffle", "scatter_inner_group");
    span.Arg("group", gi);
    if (gi == groups.size()) {
      // Dead bin: copy through.
      Wid begin = vp_offsets_[num_vps_];
      Wid end = vp_offsets_[num_vps_ + 1];
      if (end > begin) {
        std::memcpy(sw + begin, inter_.data() + begin, (end - begin) * sizeof(Vid));
        if (aux != nullptr) {
          std::memcpy(sw_aux + begin, inter_aux_.data() + begin,
                      (end - begin) * sizeof(Vid));
        }
      }
      return;
    }
    const PartitionGroup& g = groups[gi];
    Wid begin = vp_offsets_[g.vp_base];
    Wid end = vp_offsets_[g.vp_base + g.vp_count];
    if (end == begin) {
      return;
    }
    if (!g.internal_shuffle) {
      std::memcpy(sw + begin, inter_.data() + begin, (end - begin) * sizeof(Vid));
      if (aux != nullptr) {
        std::memcpy(sw_aux + begin, inter_aux_.data() + begin,
                    (end - begin) * sizeof(Vid));
      }
      return;
    }
    std::vector<Wid> offs(g.vp_count);
    for (uint32_t i = 0; i < g.vp_count; ++i) {
      offs[i] = vp_offsets_[g.vp_base + i];
    }
    InnerScatterGroupScan(plan_, g.vp_base, g.vp_count, begin, end, offs.data(),
                          vp_offsets_.data(), inter_.data(),
                          aux != nullptr ? inter_aux_.data() : nullptr, sw,
                          sw_aux);
  });
}

void Shuffler::Scatter(const Vid* w, const Vid* aux, Wid n, Vid* sw, Vid* sw_aux) {
  CountAndPrefix(w, n);
  if (plan_->has_internal_shuffle()) {
    ScatterTwoLevel(w, aux, n, sw, sw_aux);
  } else {
    ScatterDirect(w, aux, n, sw, sw_aux);
  }
}

void Shuffler::ScatterTwoLevelForTest(const Vid* w, const Vid* aux, Wid n, Vid* sw,
                                      Vid* sw_aux) {
  CountAndPrefix(w, n);
  ScatterTwoLevel(w, aux, n, sw, sw_aux);
}

void Shuffler::Gather(const Vid* w_prev, Wid n, const Vid* sw, Vid* w_next,
                      const Vid* sw_aux, Vid* aux_next) const {
  FM_CHECK_MSG(n == scattered_n_, "Gather must replay the exact Scatter input");
  size_t row = num_vps_ + 1;
#ifndef NDEBUG
  // Bijectivity witness: every SW slot must be consumed exactly once. Distinct
  // slots mean the writes below are race-free iff the replay is a permutation; a
  // corrupted replay trips the check (or TSan, which reports it first).
  std::vector<uint8_t> consumed(n, 0);
#endif
  pool_->ParallelFor(num_chunks_, [&](uint64_t c, uint32_t) {
    Wid begin = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c));
    Wid end = ChunkBegin(n, num_chunks_, static_cast<uint32_t>(c) + 1);
    TraceSpan span("shuffle", "gather_chunk");
    span.Arg("chunk", c);
    span.Arg("walkers", end - begin);
    std::vector<Wid> offs(starts_.begin() + c * row,
                          starts_.begin() + (c + 1) * row);
#ifndef NDEBUG
    uint8_t* consumed_ptr = consumed.data();
#else
    uint8_t* consumed_ptr = nullptr;
#endif
    GatherChunkScan(plan_, num_vps_, w_prev, begin, end, offs.data(), n, sw,
                    sw_aux, w_next, aux_next, consumed_ptr);
  });
}

}  // namespace fm
