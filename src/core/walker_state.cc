#include "src/core/walker_state.h"

#include <algorithm>

#include "src/core/walk_observer.h"
#include "src/graph/csr_graph.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/telemetry.h"
#include "src/util/thread_pool.h"
#include "src/util/trace.h"

namespace fm {
namespace {

// Vertex owning cumulative-edge position `pos` (degree-proportional placement:
// "initially placed by uniformly sampling among all edges", §3).
inline Vid VertexOfEdgePos(std::span<const Eid> offsets, Eid pos) {
  auto it = std::upper_bound(offsets.begin(), offsets.end(), pos);
  return static_cast<Vid>((it - offsets.begin()) - 1);
}

}  // namespace

Wid EpisodeCapacity(const WalkSpec& spec, uint64_t dram_budget_bytes,
                    Vid num_vertices) {
  Wid total = spec.num_walkers != 0 ? spec.num_walkers : num_vertices;
  // Walker-state bytes per walker: all W_i rows when keeping paths, else the
  // rotating prev/cur/next triple; plus the SW scratch (and its aux for
  // node2vec).
  uint64_t per_walker =
      spec.keep_paths ? (static_cast<uint64_t>(spec.steps) + 3) * sizeof(Vid)
                      : 6 * sizeof(Vid);
  if (spec.algorithm == WalkAlgorithm::kNode2Vec) {
    per_walker += 2 * sizeof(Vid);
  }
  Wid cap = std::max<Wid>(dram_budget_bytes / per_walker, 1024);
  return std::min(total, cap);
}

WalkerState::WalkerState(const CsrGraph& graph, const WalkSpec& spec,
                         Wid walkers)
    : graph_(graph),
      spec_(spec),
      walkers_(walkers),
      node2vec_(spec.algorithm == WalkAlgorithm::kNode2Vec),
      identity_free_(!spec.track_identity) {
  if (spec_.keep_paths) {
    paths_ = PathSet(walkers_, spec_.steps);
    w_cur_ = paths_.Row(0).data();
  } else {
    rot_a_.resize(walkers_);
    rot_b_.resize(walkers_);
    if (node2vec_) {
      if (identity_free_) {
        // rot_b carries predecessors alongside rot_a; first step has none.
        std::fill(rot_b_.begin(), rot_b_.end(), kInvalidVid);
      } else {
        rot_c_.resize(walkers_);
      }
    }
    w_cur_ = rot_a_.data();
    free_buf_ = rot_b_.data();
    if (node2vec_ && !identity_free_) {
      free_buf2_ = rot_c_.data();
    }
  }
  sw_.resize(walkers_);
  if (node2vec_) {
    sw_prev_.resize(walkers_);
  }
}

const Vid* WalkerState::scatter_aux() const {
  if (!node2vec_) {
    return nullptr;
  }
  return identity_free_ ? rot_b_.data() : w_prev_;
}

void WalkerState::AfterScatter(const Vid* aux) {
  if (node2vec_ && aux == nullptr) {
    // First step of an identity-tracked node2vec episode: no predecessors yet;
    // the kernel treats kInvalidVid as "take a uniform first-order step".
    std::fill(sw_prev_.begin(), sw_prev_.end(), kInvalidVid);
  }
}

Vid* WalkerState::GatherTarget(uint32_t step) {
  return spec_.keep_paths ? paths_.Row(step + 1).data() : free_buf_;
}

void WalkerState::AdvanceTracked(uint32_t step) {
  Vid* w_next = GatherTarget(step);
  // Rotate rows: prev <- cur <- next; the oldest buffer becomes free.
  if (spec_.keep_paths) {
    w_prev_ = w_cur_;
    w_cur_ = w_next;
  } else if (node2vec_) {
    Vid* old_prev = w_prev_;
    w_prev_ = w_cur_;
    w_cur_ = w_next;
    free_buf_ = (old_prev != nullptr) ? old_prev : free_buf2_;
  } else {
    free_buf_ = w_cur_;
    w_cur_ = w_next;
  }
}

void WalkerState::AdvanceIdentityFree() {
  // No reverse shuffle ran: the sampled SW (and, for node2vec, the
  // kernel-updated predecessor stream) simply becomes the next walker array.
  std::swap(rot_a_, sw_);
  w_cur_ = rot_a_.data();
  if (node2vec_) {
    std::swap(rot_b_, sw_prev_);
  }
}

void WalkerState::Place(ThreadPool* pool, uint64_t episode, Wid base_walker,
                        std::span<WalkObserver* const> observers) {
  TraceSpan span("engine", "place");
  span.Arg("episode", episode);
  span.Arg("walkers", walkers_);
  // Placement is the episode's admission barrier: the gauge tracks the
  // walker population of the episode currently in flight.
  telemetry::TelemetryRegistry::Get()
      .GaugeRef("fm.engine.episode_walkers")
      .Set(static_cast<int64_t>(walkers_));
  const Vid n = graph_.num_vertices();
  const Eid m = graph_.num_edges();
  Vid* w_cur = w_cur_;
  auto notify = [&](uint64_t begin, uint64_t end, uint32_t worker) {
    std::span<const Vid> chunk(w_cur + begin, end - begin);
    for (WalkObserver* observer : observers) {
      observer->OnPlacementChunk(static_cast<Wid>(begin), chunk, worker);
    }
  };
  if (!spec_.start_vertices.empty()) {
    // Seeded placement: walker j (global index, consistent across episodes)
    // starts at start_vertices[j % size()].
    const auto& starts = spec_.start_vertices;
    pool->ParallelChunks(walkers_,
                         [&](uint64_t begin, uint64_t end, uint32_t worker) {
                           for (Wid j = begin; j < end; ++j) {
                             w_cur[j] = starts[(base_walker + j) % starts.size()];
                           }
                           notify(begin, end, worker);
                         });
    return;
  }
  // Degree-proportional initial placement ("uniformly sampling among all
  // edges", §3). Walker j draws a jittered edge position within its own 1/w
  // slice of the edge array; positions are monotone in j, so one sequential
  // sweep of the CSR offsets resolves every owner — O(1) per walker, no binary
  // searches. The aggregate marginal distribution over edges is exactly
  // uniform.
  //
  // Fixed-size blocks (not ParallelChunks) because the RNG stream is seeded by
  // the block's first walker index: thread-count-dependent chunk boundaries
  // would re-slice the streams and change every start vertex, breaking the
  // same-seed-same-walks determinism contract (tests/determinism_test.cc).
  constexpr uint64_t kPlaceBlock = 1 << 16;
  uint64_t num_blocks = (walkers_ + kPlaceBlock - 1) / kPlaceBlock;
  pool->ParallelFor(std::max<uint64_t>(num_blocks, 1), [&](uint64_t block,
                                                           uint32_t worker) {
    uint64_t begin = block * kPlaceBlock;
    uint64_t end = std::min<uint64_t>(begin + kPlaceBlock, walkers_);
    XorShiftRng rng(
        DeriveSeed(spec_.seed, 0x1A17ULL ^ (episode << 20) ^ begin));
    if (m == 0) {
      for (Wid j = begin; j < end; ++j) {
        w_cur[j] = static_cast<Vid>(rng.NextBounded(n));
      }
      notify(begin, end, worker);
      return;
    }
    double edges_per_walker =
        static_cast<double>(m) / static_cast<double>(walkers_);
    Eid pos0 = static_cast<Eid>(static_cast<double>(begin) * edges_per_walker);
    Vid v = VertexOfEdgePos(graph_.offsets(), std::min<Eid>(pos0, m - 1));
    const Eid* offsets = graph_.offsets().data();
    for (Wid j = begin; j < end; ++j) {
      Eid pos = static_cast<Eid>(
          (static_cast<double>(j) + rng.NextDouble()) * edges_per_walker);
      pos = std::min<Eid>(pos, m - 1);
      while (offsets[v + 1] <= pos) {
        ++v;
      }
      w_cur[j] = v;
    }
    notify(begin, end, worker);
  });
}

PathSet WalkerState::TakePaths() {
  FM_DCHECK(spec_.keep_paths);
  w_cur_ = nullptr;
  w_prev_ = nullptr;
  PathSet out = std::move(paths_);
  paths_ = PathSet();
  return out;
}

}  // namespace fm
