// Walk output container.
//
// The engine's per-iteration W_i arrays *are* the path history (§4.3): W_i[j] is
// walker j's location after step i. PathSet owns those arrays; transposing yields
// per-walker paths, and StreamEdges replays the sampled edges <W_i[j], W_i+1[j]> —
// the paper's two output modes.
#ifndef SRC_CORE_PATH_SET_H_
#define SRC_CORE_PATH_SET_H_

#include <functional>
#include <vector>

#include "src/util/types.h"

namespace fm {

class CsrGraph;

class PathSet {
 public:
  PathSet() = default;
  PathSet(Wid num_walkers, uint32_t steps);

  Wid num_walkers() const { return num_walkers_; }
  uint32_t steps() const { return steps_; }

  // Location of walker w after `step` steps (step 0 = start).
  Vid At(Wid w, uint32_t step) const { return rows_[step][w]; }
  Vid& At(Wid w, uint32_t step) { return rows_[step][w]; }

  // The full W_i row (walker-order array after step i).
  std::vector<Vid>& Row(uint32_t step) { return rows_[step]; }
  const std::vector<Vid>& Row(uint32_t step) const { return rows_[step]; }

  // Per-walker path (the transpose of the rows). Terminated walkers' paths stop at
  // the last live position.
  std::vector<Vid> Path(Wid w) const;

  // Visits per vertex across all stored positions (start counts as a visit).
  std::vector<uint64_t> VisitCounts(Vid num_vertices) const;

  // Calls fn(from, to) for every sampled edge, in walker-major order, skipping
  // terminated positions. This is the "stream the sampled edges to the GPU" mode.
  void StreamEdges(const std::function<void(Vid, Vid)>& fn) const;

  // True when every consecutive position pair is an edge of `graph` (dead-end
  // stay-in-place steps allowed when the vertex has no out-edges).
  bool ValidAgainst(const CsrGraph& graph) const;

  // True when both sets store exactly the same walk (same dimensions, every
  // position bit-identical) — the equality the determinism tests assert.
  bool SameAs(const PathSet& other) const {
    return num_walkers_ == other.num_walkers_ && steps_ == other.steps_ &&
           rows_ == other.rows_;
  }

  // Appends another PathSet with the same step count (episodes, §5.1).
  void Append(PathSet&& other);

 private:
  Wid num_walkers_ = 0;
  uint32_t steps_ = 0;
  std::vector<std::vector<Vid>> rows_;  // steps_ + 1 rows, each num_walkers_ long
};

}  // namespace fm

#endif  // SRC_CORE_PATH_SET_H_
