// Specification of a random walk workload.
#ifndef SRC_CORE_WALK_SPEC_H_
#define SRC_CORE_WALK_SPEC_H_

#include <cstdint>
#include <vector>

#include "src/sampling/rejection.h"
#include "src/util/types.h"

namespace fm {

enum class WalkAlgorithm {
  kDeepWalk,  // first-order, uniform transition probability (Perozzi et al. 2014)
  kNode2Vec,  // second-order, p/q interpolation between BFS and DFS (Grover 2016)
  // Metropolis-Hastings walk: propose a uniform neighbor u, accept with
  // min(1, d(v)/d(u)), else stay. Stationary distribution is uniform over
  // vertices (on undirected graphs) — the standard unbiased vertex-sampling walk
  // (degree-bias-free aggregate estimation).
  kMetropolisHastings,
};

struct WalkSpec {
  WalkAlgorithm algorithm = WalkAlgorithm::kDeepWalk;

  // Steps per walker. Evaluation tradition (§5.1): 80.
  uint32_t steps = 80;

  // Total walkers to launch; 0 means |V|. The engine splits them into episodes that
  // fit the DRAM budget (§5.1 "our number of walkers per episode is configured at
  // runtime based on DRAM capacity").
  Wid num_walkers = 0;

  Node2VecParams node2vec;

  // First-order transitions proportional to edge weights instead of uniform
  // (requires a weighted graph; §2.1's general transition-probability
  // specification). Sampling goes through per-vertex alias tables, both in PS
  // refills and DS draws. Not supported together with node2vec.
  bool use_edge_weights = false;

  uint64_t seed = 1;

  // Custom start vertices: walker j starts at start_vertices[j % size()]. Empty =
  // the paper's default placement (uniform over edges, i.e. degree-proportional).
  // Used by seeded workloads: personalized PageRank, GraphSage-style minibatch
  // neighborhood sampling.
  std::vector<Vid> start_vertices;

  // Retain full path history (all W_i arrays, §4.3 "Random walk paths output").
  // When false, only visit counts and final positions are kept — the mode used when
  // streaming sampled edges to a downstream consumer.
  bool keep_paths = true;

  // Stochastic termination: probability of a walker exiting after each step (§2.1
  // "walkers exiting with a fixed probability at each step"). Terminated walkers park
  // in a dead bin skipped by the sample stage.
  double stop_probability = 0.0;

  // Track walker identity across steps (§4.3's reverse shuffle). When false — only
  // allowed with keep_paths == false — the engine skips the Gather pass entirely
  // and treats the sampled SW array as the next step's walker array. Walkers become
  // anonymous (per-walker paths are meaningless) but every aggregate — visit
  // counts, edge samples, stationary distribution — is unchanged, and one of the
  // three streaming passes per step disappears. An extension beyond the paper,
  // ablated in bench/ablation_design.
  bool track_identity = true;
};

}  // namespace fm

#endif  // SRC_CORE_WALK_SPEC_H_
