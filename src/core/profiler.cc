#include "src/core/profiler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "src/core/presample.h"
#include "src/core/sample_stage.h"
#include "src/core/shuffle.h"
#include "src/gen/uniform_degree.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace fm {

double MeasureSamplePointNs(Vid vp_vertices, Degree degree, double density,
                            SamplePolicy policy, uint64_t seed,
                            uint32_t min_iterations) {
  FM_CHECK(vp_vertices > 0 && degree > 0);
  // Targets stay inside the VP so walkers never leave and every iteration exercises
  // the same working set (the Fig 6 setup).
  CsrGraph graph = GenerateUniformDegreeGraph(vp_vertices, degree, seed,
                                              /*target_universe=*/vp_vertices);
  PartitionPlan plan = PartitionPlan::BuildUniform(graph, 1, policy);
  PresampleBuffers presample(graph, plan);

  uint64_t edges = static_cast<uint64_t>(vp_vertices) * degree;
  Wid walkers = std::max<Wid>(static_cast<Wid>(density * static_cast<double>(edges)),
                              1024);
  std::vector<Vid> sw(walkers);
  XorShiftRng init_rng(DeriveSeed(seed, 0x11D7));
  for (Wid j = 0; j < walkers; ++j) {
    sw[j] = static_cast<Vid>(init_rng.NextBounded(vp_vertices));
  }

  NullMemHook hook;
  const VertexPartition& vp = plan.vp(0);
  // Warm-up iteration populates PS buffers, then measure enough iterations to
  // cover timer resolution.
  const uint64_t chunk_seed = DeriveSeed(seed, 0x5A17);
  SampleVpFirstOrder(graph, 0, vp, &presample, sw.data(), walkers, 0.0, nullptr,
                     chunk_seed, hook);
  uint32_t iterations = min_iterations;
  // Target ~20M walker-steps per measurement, bounded for huge VPs.
  uint64_t target_steps = 20'000'000;
  iterations = std::max<uint32_t>(
      iterations,
      static_cast<uint32_t>(std::min<uint64_t>(64, target_steps / walkers + 1)));
  // In the engine, a VP's working set is evicted between its visits by the shuffle
  // passes and the other ~2000 VPs, so each iteration starts cold unless the
  // density amortizes the refetch. Emulate that by sweeping a 2xL3 buffer between
  // timed iterations; without this, the profile overstates cache residency and the
  // planner over-commits to PS.
  static std::vector<uint64_t> flush(
      2 * PaperCacheInfo().l3_bytes / sizeof(uint64_t), 1);
  double timed_ns = 0;
  uint64_t sink = 0;
  for (uint32_t it = 0; it < iterations; ++it) {
    for (size_t i = 0; i < flush.size(); i += 8) {
      sink += flush[i];
    }
    Timer timer;
    SampleVpFirstOrder(graph, 0, vp, &presample, sw.data(), walkers, 0.0,
                       nullptr, DeriveSeed(chunk_seed, it + 1), hook);
    timed_ns += timer.ElapsedNanos();
  }
  if (sink == 0xDEADBEEF) {
    std::fprintf(stderr, "unreachable\n");
  }
  return timed_ns / (static_cast<double>(iterations) * static_cast<double>(walkers));
}

double MeasureShuffleNsPerWalker(uint64_t seed) {
  // Representative setup: 1M walkers over a 256k-vertex uniform graph cut into 1024
  // partitions (single-level).
  const Vid n = 1 << 18;
  const Wid walkers = 1 << 20;
  CsrGraph graph = GenerateUniformDegreeGraph(n, 4, seed);
  PartitionPlan plan = PartitionPlan::BuildUniform(graph, 1024, SamplePolicy::kDS);
  Shuffler shuffler(&plan, &ThreadPool::Global());

  std::vector<Vid> w(walkers);
  std::vector<Vid> sw(walkers);
  std::vector<Vid> w_next(walkers);
  XorShiftRng rng(DeriveSeed(seed, 0x5FFL));
  for (Wid j = 0; j < walkers; ++j) {
    w[j] = static_cast<Vid>(rng.NextBounded(n));
  }
  shuffler.Scatter(w.data(), nullptr, walkers, sw.data(), nullptr);  // warm-up
  Timer timer;
  const uint32_t iterations = 5;
  for (uint32_t it = 0; it < iterations; ++it) {
    shuffler.Scatter(w.data(), nullptr, walkers, sw.data(), nullptr);
    const Status st = shuffler.Gather(w.data(), walkers, sw.data(),
                                      w_next.data(), nullptr, nullptr);
    FM_CHECK_MSG(st.ok(), st.message());
  }
  return timer.ElapsedNanos() / (static_cast<double>(iterations) * walkers);
}

CalibratedCostModel::CalibratedCostModel(const CacheInfo& cache,
                                         uint32_t threads_sharing_l3)
    : analytic_(cache, LatencyModel{}, threads_sharing_l3) {}

CalibratedCostModel CalibratedCostModel::Calibrate(const CacheInfo& cache,
                                                   uint32_t threads_sharing_l3) {
  CalibratedCostModel model(cache, threads_sharing_l3);
  const Degree degree = 16;
  const double density = 1.0;
  for (int p = 0; p < 2; ++p) {
    SamplePolicy policy = p == 0 ? SamplePolicy::kPS : SamplePolicy::kDS;
    for (uint8_t level = 1; level <= 4; ++level) {
      // Pick the vertex count whose working set half-fills the level (x4 for DRAM).
      uint64_t budget = level == 4 ? cache.l3_bytes * 4
                                   : cache.LevelBytes(level) / 2;
      uint64_t per_vertex = policy == SamplePolicy::kPS
                                ? (4 + kCacheLineBytes)
                                : (static_cast<uint64_t>(degree) * 4 + 8);
      Vid vertices =
          static_cast<Vid>(std::clamp<uint64_t>(budget / per_vertex, 64, 8u << 20));
      double measured = MeasureSamplePointNs(vertices, degree, density, policy);
      double analytic = model.analytic_.SampleNsPerStep(vertices, degree, density,
                                                        policy);
      model.factors_[p][level - 1] =
          analytic > 0 ? std::clamp(measured / analytic, 0.05, 20.0) : 1.0;
    }
  }
  model.shuffle_ns_ = MeasureShuffleNsPerWalker();
  return model;
}

CalibratedCostModel CalibratedCostModel::LoadOrCalibrate(
    const std::string& path, const CacheInfo& cache, uint32_t threads_sharing_l3) {
  CalibratedCostModel model(cache, threads_sharing_l3);
  if (model.LoadFromFile(path)) {
    return model;
  }
  FM_LOG(kInfo) << "profile " << path << " missing/corrupt; calibrating";
  model = Calibrate(cache, threads_sharing_l3);
  if (!model.SaveToFile(path)) {
    FM_LOG(kWarn) << "could not save profile to " << path;
  }
  return model;
}

double CalibratedCostModel::SampleNsPerStep(uint64_t vp_vertices, double avg_degree,
                                            double density,
                                            SamplePolicy policy) const {
  uint8_t level = analytic_.LevelFor(
      analytic_.WorkingSetBytes(vp_vertices, avg_degree, policy));
  return analytic_.SampleNsPerStep(vp_vertices, avg_degree, density, policy) *
         factors_[policy == SamplePolicy::kPS ? 0 : 1][level - 1];
}

bool CalibratedCostModel::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out.precision(17);
  out << "fmprofile-v1\n";
  for (int p = 0; p < 2; ++p) {
    for (int l = 0; l < 4; ++l) {
      out << factors_[p][l] << (l == 3 ? '\n' : ' ');
    }
  }
  out << shuffle_ns_ << "\n";
  return static_cast<bool>(out);
}

bool CalibratedCostModel::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string magic;
  if (!(in >> magic) || magic != "fmprofile-v1") {
    return false;
  }
  double factors[2][4];
  double shuffle_ns = 0;
  for (auto& row : factors) {
    for (double& f : row) {
      if (!(in >> f) || !(f > 0) || !std::isfinite(f)) {
        return false;
      }
    }
  }
  if (!(in >> shuffle_ns) || !(shuffle_ns > 0) || !std::isfinite(shuffle_ns)) {
    return false;
  }
  std::copy(&factors[0][0], &factors[0][0] + 8, &factors_[0][0]);
  shuffle_ns_ = shuffle_ns;
  return true;
}

}  // namespace fm
