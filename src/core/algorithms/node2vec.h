// node2vec workload helpers and the exact transition distribution (Grover &
// Leskovec, KDD 2016).
//
// The engine samples node2vec transitions by rejection (sampling/rejection.h,
// sample_stage.h); this module provides the exact normalized distribution for
// statistical validation, plus the conventional WalkSpec (10 rounds x 40 steps,
// §2.1/§5.1).
#ifndef SRC_CORE_ALGORITHMS_NODE2VEC_H_
#define SRC_CORE_ALGORITHMS_NODE2VEC_H_

#include <vector>

#include "src/core/walk_spec.h"
#include "src/graph/csr_graph.h"

namespace fm {

inline WalkSpec Node2VecSpec(Vid num_vertices, double p, double q,
                             uint32_t steps = 40, uint32_t rounds = 10,
                             uint64_t seed = 1) {
  WalkSpec spec;
  spec.algorithm = WalkAlgorithm::kNode2Vec;
  spec.steps = steps;
  spec.num_walkers = static_cast<Wid>(rounds) * num_vertices;
  spec.node2vec = {p, q};
  spec.seed = seed;
  return spec;
}

// Exact normalized probability of each out-neighbor of `cur` given predecessor
// `prev` (aligned with graph.neighbors(cur)); the rejection sampler must match this
// distribution (tests).
std::vector<double> Node2VecTransitionProbs(const CsrGraph& graph, Vid cur,
                                            Vid prev, const Node2VecParams& params);

}  // namespace fm

#endif  // SRC_CORE_ALGORITHMS_NODE2VEC_H_
