#include "src/core/algorithms/node2vec.h"

#include "src/sampling/rejection.h"

namespace fm {

std::vector<double> Node2VecTransitionProbs(const CsrGraph& graph, Vid cur,
                                            Vid prev,
                                            const Node2VecParams& params) {
  auto nbrs = graph.neighbors(cur);
  std::vector<double> probs(nbrs.size());
  double total = 0;
  for (size_t i = 0; i < nbrs.size(); ++i) {
    probs[i] = Node2VecWeight(graph, prev, nbrs[i], params);
    total += probs[i];
  }
  for (double& p : probs) {
    p /= total;
  }
  return probs;
}

}  // namespace fm
