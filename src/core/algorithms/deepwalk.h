// DeepWalk workload helpers (Perozzi et al., KDD 2014).
//
// DeepWalk is a first-order uniform random walk; the paper's evaluation tradition
// (§5.1) launches 10 episodes of |V| walkers, 80 steps each. These helpers build the
// corresponding WalkSpec.
#ifndef SRC_CORE_ALGORITHMS_DEEPWALK_H_
#define SRC_CORE_ALGORITHMS_DEEPWALK_H_

#include "src/core/walk_spec.h"

namespace fm {

// The common-practice configuration: `rounds`*|V| walkers of `steps` steps.
inline WalkSpec DeepWalkSpec(Vid num_vertices, uint32_t steps = 80,
                             uint32_t rounds = 10, uint64_t seed = 1) {
  WalkSpec spec;
  spec.algorithm = WalkAlgorithm::kDeepWalk;
  spec.steps = steps;
  spec.num_walkers = static_cast<Wid>(rounds) * num_vertices;
  spec.seed = seed;
  return spec;
}

}  // namespace fm

#endif  // SRC_CORE_ALGORITHMS_DEEPWALK_H_
