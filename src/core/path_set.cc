#include "src/core/path_set.h"

#include "src/graph/csr_graph.h"
#include "src/util/logging.h"

namespace fm {

PathSet::PathSet(Wid num_walkers, uint32_t steps)
    : num_walkers_(num_walkers), steps_(steps) {
  rows_.resize(steps + 1);
  for (auto& row : rows_) {
    row.resize(num_walkers);
  }
}

std::vector<Vid> PathSet::Path(Wid w) const {
  std::vector<Vid> path;
  path.reserve(steps_ + 1);
  for (uint32_t s = 0; s <= steps_; ++s) {
    Vid v = rows_[s][w];
    if (v == kInvalidVid) {
      break;
    }
    path.push_back(v);
  }
  return path;
}

std::vector<uint64_t> PathSet::VisitCounts(Vid num_vertices) const {
  std::vector<uint64_t> counts(num_vertices, 0);
  for (const auto& row : rows_) {
    for (Vid v : row) {
      if (v != kInvalidVid) {
        ++counts[v];
      }
    }
  }
  return counts;
}

void PathSet::StreamEdges(const std::function<void(Vid, Vid)>& fn) const {
  for (Wid w = 0; w < num_walkers_; ++w) {
    for (uint32_t s = 0; s < steps_; ++s) {
      Vid from = rows_[s][w];
      Vid to = rows_[s + 1][w];
      if (from == kInvalidVid || to == kInvalidVid) {
        break;
      }
      fn(from, to);
    }
  }
}

bool PathSet::ValidAgainst(const CsrGraph& graph) const {
  for (Wid w = 0; w < num_walkers_; ++w) {
    for (uint32_t s = 0; s < steps_; ++s) {
      Vid from = rows_[s][w];
      Vid to = rows_[s + 1][w];
      if (from == kInvalidVid) {
        break;
      }
      if (to == kInvalidVid) {
        continue;  // terminated this step
      }
      if (from >= graph.num_vertices() || to >= graph.num_vertices()) {
        return false;
      }
      if (graph.degree(from) == 0) {
        if (to != from) {
          return false;  // dead ends stay in place
        }
        continue;
      }
      if (!graph.HasEdge(from, to)) {
        return false;
      }
    }
  }
  return true;
}

void PathSet::Append(PathSet&& other) {
  if (num_walkers_ == 0) {
    *this = std::move(other);
    return;
  }
  FM_CHECK_MSG(other.steps_ == steps_, "episode step counts differ");
  for (uint32_t s = 0; s <= steps_; ++s) {
    rows_[s].insert(rows_[s].end(), other.rows_[s].begin(), other.rows_[s].end());
  }
  num_walkers_ += other.num_walkers_;
}

}  // namespace fm
