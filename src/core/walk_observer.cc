#include "src/core/walk_observer.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/util/logging.h"
#include "src/util/telemetry.h"
#include "src/util/thread_pool.h"
#include "src/util/trace.h"

namespace fm {

ShardedVisitCounter::ShardedVisitCounter(Vid num_vertices)
    : num_vertices_(num_vertices), counts_(num_vertices, 0) {}

void ShardedVisitCounter::OnRunBegin(const WalkRunInfo& info) {
  pool_ = info.pool;
  FM_CHECK_MSG(info.num_vertices == num_vertices_,
               "ShardedVisitCounter sized for a different graph");
  if (shards_.size() < info.num_workers) {
    shards_.resize(info.num_workers);
  }
  for (auto& shard : shards_) {
    shard.assign(num_vertices_, 0);
  }
}

void ShardedVisitCounter::Accumulate(std::span<const Vid> positions,
                                     uint32_t worker) {
  FM_DCHECK_LT(worker, shards_.size());
  uint64_t* shard = shards_[worker].data();
  for (Vid v : positions) {
    if (v != kInvalidVid) {
      ++shard[v];
    }
  }
}

void ShardedVisitCounter::OnPlacementChunk(Wid /*begin*/,
                                           std::span<const Vid> positions,
                                           uint32_t worker) {
  Accumulate(positions, worker);
}

void ShardedVisitCounter::OnSampleChunk(uint32_t /*step*/, uint32_t /*vp*/,
                                        std::span<const Vid> positions,
                                        uint32_t worker) {
  Accumulate(positions, worker);
}

void ShardedVisitCounter::MergeShards(ThreadPool* pool) {
  auto merge_range = [&](uint64_t begin, uint64_t end) {
    uint64_t* out = counts_.data();
    for (const auto& shard : shards_) {
      const uint64_t* in = shard.data();
      for (uint64_t v = begin; v < end; ++v) {
        out[v] += in[v];
      }
    }
    for (auto& shard : shards_) {
      std::memset(shard.data() + begin, 0, (end - begin) * sizeof(uint64_t));
    }
  };
  if (pool == nullptr || num_vertices_ == 0) {
    merge_range(0, num_vertices_);
    return;
  }
  pool->ParallelChunks(num_vertices_,
                       [&](uint64_t begin, uint64_t end, uint32_t) {
                         merge_range(begin, end);
                       });
}

void ShardedVisitCounter::OnEpisodeEnd(uint64_t episode) {
  TraceSpan span("observer", "merge_visit_shards");
  span.Arg("episode", episode);
  span.Arg("vertices", num_vertices_);
  const uint64_t begin_ns = TraceNowNs();
  MergeShards(pool_);
  // Episode barrier (not per-chunk): one histogram sample per merge.
  telemetry::TelemetryRegistry::Get()
      .HistogramRef("fm.observer.merge_ns")
      .Observe(TraceNowNs() - begin_ns);
}

std::vector<uint64_t> ShardedVisitCounter::TakeCounts() {
  std::vector<uint64_t> out = std::move(counts_);
  counts_.assign(num_vertices_, 0);
  return out;
}

void PathSetSink::OnRunBegin(const WalkRunInfo& info) { steps_ = info.steps; }

void PathSetSink::OnEpisodeBegin(uint64_t /*episode*/, Wid walkers,
                                 Wid /*base_walker*/) {
  episode_paths_ = PathSet(walkers, steps_);
}

void PathSetSink::OnPlacementChunk(Wid begin, std::span<const Vid> positions,
                                   uint32_t /*worker*/) {
  std::copy(positions.begin(), positions.end(),
            episode_paths_.Row(0).begin() + begin);
}

void PathSetSink::OnWalkerChunk(uint32_t step, Wid begin,
                                std::span<const Vid> positions,
                                uint32_t /*worker*/) {
  std::copy(positions.begin(), positions.end(),
            episode_paths_.Row(step + 1).begin() + begin);
}

void PathSetSink::OnEpisodeEnd(uint64_t episode) {
  TraceSpan span("observer", "append_paths");
  span.Arg("episode", episode);
  paths_.Append(std::move(episode_paths_));
  episode_paths_ = PathSet();
}

PathSet PathSetSink::TakePaths() {
  PathSet out = std::move(paths_);
  paths_ = PathSet();
  return out;
}

}  // namespace fm
