// Edge-sample stage kernels (§4.2).
//
// One task = one vertex partition + the contiguous chunk of the shuffled walker
// array SW holding all walkers currently inside it. The kernel scans the chunk once,
// replacing each walker's current VID with its sampled next stop in place
// ("bandwidth-aware in-place updates ... a single sequential scan, leaving most of
// the cache space to edge data").
//
// Kernels are templated on a memory hook (cachesim/mem_hook.h): NullMemHook
// compiles away; CacheSimHook drives the Table 5 / Fig 1b cache simulation.
#ifndef SRC_CORE_SAMPLE_STAGE_H_
#define SRC_CORE_SAMPLE_STAGE_H_

#include "src/cachesim/mem_hook.h"
#include "src/core/presample.h"
#include "src/graph/csr_graph.h"
#include "src/sampling/rejection.h"
#include "src/util/rng.h"
#include "src/util/sync.h"
#include "src/util/types.h"

namespace fm {

// Hook-instrumented binary search: does `v`'s sorted adjacency list contain `u`?
// (node2vec's connectivity check, §5.2.)
template <typename Hook>
FM_HOT_PATH bool HasEdgeHooked(const CsrGraph& graph, Vid v, Vid u,
                               Hook& hook) {
  hook.Load(graph.offsets().data() + v, 2 * sizeof(Eid));
  const Vid* edges = graph.edges().data();
  Eid lo = graph.edge_begin(v);
  Eid hi = graph.edge_end(v);
  while (lo < hi) {
    // div: /2 on an unsigned range compiles to a shift; spelled as division
    // for the standard binary-search midpoint idiom.
    Eid mid = lo + (hi - lo) / 2;
    hook.Load(edges + mid, sizeof(Vid));
    if (edges[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < graph.edge_end(v) && edges[lo] == u;
}

// First-order sampling (DeepWalk when `alias` is null, weighted transitions when
// it points at the graph's VertexAliasTables) over one VP's walker chunk.
// `walkers[0..count)` hold VIDs inside `vp`; each is overwritten with the next stop.
// `stop_probability` > 0 stochastically terminates walkers (they become
// kInvalidVid).
template <typename Rng, typename Hook>
FM_HOT_PATH void SampleVpFirstOrder(const CsrGraph& graph, uint32_t vp_index,
                        const VertexPartition& vp, PresampleBuffers* presample,
                        Vid* walkers, Wid count, double stop_probability,
                        const VertexAliasTables* alias, Rng& rng, Hook& hook) {
  const Vid* edges = graph.edges().data();
  const Eid* offsets = graph.offsets().data();
  for (Wid i = 0; i < count; ++i) {
    hook.Load(walkers + i, sizeof(Vid));
    Vid v = walkers[i];
    Vid next;
    if (vp.policy == SamplePolicy::kPS) {
      next = presample->Next(graph, vp_index, vp, v, alias, rng, hook);
    } else if (vp.uniform_degree && alias == nullptr) {
      // Regular-partition fast path: position by arithmetic, no offset lookup
      // (§4.2 "low-degree partitions allow simpler indexing").
      Degree deg = vp.degree;
      if (deg == 0) {
        next = v;
      } else {
        Eid base = vp.edge_begin + static_cast<Eid>(v - vp.begin) * deg;
        Eid pick = base + (deg == 1 ? 0 : rng.NextBounded(deg));
        hook.Load(edges + pick, sizeof(Vid));
        next = edges[pick];
      }
    } else {
      // General CSR direct sampling: one offset lookup + one edge read, both random
      // but confined to the VP's working set.
      hook.Load(offsets + v, 2 * sizeof(Eid));
      Eid begin = offsets[v];
      Degree deg = static_cast<Degree>(offsets[v + 1] - begin);
      if (deg == 0) {
        next = v;
      } else if (alias != nullptr) {
        // Weighted DS: one alias-table read + one edge read, both within the VP.
        Eid pick = begin + alias->SampleIndex(graph, v, rng, hook);
        hook.Load(edges + pick, sizeof(Vid));
        next = edges[pick];
      } else {
        Eid pick = begin + rng.NextBounded(deg);
        hook.Load(edges + pick, sizeof(Vid));
        next = edges[pick];
      }
    }
    if (stop_probability > 0 && rng.NextDouble() < stop_probability) {
      next = kInvalidVid;
    }
    walkers[i] = next;
    hook.Store(walkers + i, sizeof(Vid));
  }
}

// Metropolis-Hastings sampling over one VP's walker chunk: propose a uniform
// neighbor, accept with min(1, d(v)/d(u)). The acceptance check reads the
// candidate's degree, which may live outside the VP — the same (milder) locality
// leak node2vec's connectivity check has.
template <typename Rng, typename Hook>
FM_HOT_PATH void SampleVpMetropolis(const CsrGraph& graph, Vid* walkers,
                                    Wid count, double stop_probability,
                                    Rng& rng, Hook& hook) {
  const Vid* edges = graph.edges().data();
  const Eid* offsets = graph.offsets().data();
  for (Wid i = 0; i < count; ++i) {
    hook.Load(walkers + i, sizeof(Vid));
    Vid v = walkers[i];
    hook.Load(offsets + v, 2 * sizeof(Eid));
    Eid begin = offsets[v];
    Degree deg = static_cast<Degree>(offsets[v + 1] - begin);
    Vid next = v;
    if (deg > 0) {
      Eid pick = begin + rng.NextBounded(deg);
      hook.Load(edges + pick, sizeof(Vid));
      Vid candidate = edges[pick];
      hook.Load(offsets + candidate, 2 * sizeof(Eid));
      Degree cand_deg =
          static_cast<Degree>(offsets[candidate + 1] - offsets[candidate]);
      // Accept with min(1, d(v)/d(u)); rejection means the walker stays put.
      if (cand_deg <= deg ||
          rng.NextDouble() * static_cast<double>(cand_deg) <
              static_cast<double>(deg)) {
        next = candidate;
      }
    }
    if (stop_probability > 0 && rng.NextDouble() < stop_probability) {
      next = kInvalidVid;
    }
    walkers[i] = next;
    hook.Store(walkers + i, sizeof(Vid));
  }
}

// Second-order node2vec sampling over one VP's walker chunk. `prevs` carries each
// walker's predecessor (kInvalidVid for the first step => uniform first-order step).
// On return, walkers[i] holds the next stop. When `update_prevs` is set, prevs[i]
// is overwritten with the pre-step location (identity-free mode); otherwise the
// engine re-derives predecessors from the path rows.
template <typename Rng, typename Hook>
FM_HOT_PATH void SampleVpNode2Vec(const CsrGraph& graph,
                                  const VertexPartition& /*vp*/,
                                  const Node2VecParams& params, Vid* walkers,
                                  Vid* prevs, Wid count,
                                  double stop_probability, bool update_prevs,
                                  Rng& rng, Hook& hook) {
  const Vid* edges = graph.edges().data();
  const Eid* offsets = graph.offsets().data();
  // div: the reciprocals of p and q are computed once per chunk, hoisted out
  // of the per-walker loop.
  double bound = std::max({1.0, 1.0 / params.p, 1.0 / params.q});
  for (Wid i = 0; i < count; ++i) {
    hook.Load(walkers + i, sizeof(Vid));
    hook.Load(prevs + i, sizeof(Vid));
    Vid cur = walkers[i];
    Vid prev = prevs[i];
    hook.Load(offsets + cur, 2 * sizeof(Eid));
    Eid begin = offsets[cur];
    Degree deg = static_cast<Degree>(offsets[cur + 1] - begin);
    Vid next;
    if (deg == 0) {
      next = cur;
    } else if (prev == kInvalidVid) {
      Eid pick = begin + rng.NextBounded(deg);
      hook.Load(edges + pick, sizeof(Vid));
      next = edges[pick];
    } else {
      // KnightKing-style rejection (sampling/rejection.h), hook-instrumented. The
      // connectivity checks randomly touch prev's adjacency list, which may live
      // outside this VP — the locality loss §5.2 cites for node2vec's smaller
      // speedup.
      while (true) {
        Eid pick = begin + rng.NextBounded(deg);
        hook.Load(edges + pick, sizeof(Vid));
        Vid candidate = edges[pick];
        double w;
        if (candidate == prev) {
          // div: node2vec bias weights 1/p and 1/q; p and q are runtime
          // parameters, so the quotients cannot fold to shifts. They hit only
          // the rejection branch, not every edge read.
          w = 1.0 / params.p;
        } else if (HasEdgeHooked(graph, prev, candidate, hook)) {
          w = 1.0;
        } else {
          // div: see the 1/p justification above.
          w = 1.0 / params.q;
        }
        if (rng.NextDouble() * bound < w) {
          next = candidate;
          break;
        }
      }
    }
    if (stop_probability > 0 && rng.NextDouble() < stop_probability) {
      next = kInvalidVid;
    }
    if (update_prevs) {
      prevs[i] = cur;
      hook.Store(prevs + i, sizeof(Vid));
    }
    walkers[i] = next;
    hook.Store(walkers + i, sizeof(Vid));
  }
}

}  // namespace fm

#endif  // SRC_CORE_SAMPLE_STAGE_H_
