// Edge-sample stage kernels (§4.2).
//
// One task = one vertex partition + the contiguous chunk of the shuffled walker
// array SW holding all walkers currently inside it. The kernel scans the chunk once,
// replacing each walker's current VID with its sampled next stop in place
// ("bandwidth-aware in-place updates ... a single sequential scan, leaving most of
// the cache space to edge data").
//
// RNG-indexing invariant: every walker draws from its own stream, seeded from
// (chunk_seed, walker-index-within-chunk) — see src/core/interleave.h. That
// makes each walker's draw sequence independent of processing order, so the
// sequential kernels below and their ring-interleaved counterparts (the
// *Interleaved variants, which overlap G walkers with software prefetch)
// produce bit-identical walks at every interleave depth and thread count. The
// sequential kernels double as the oracle the interleave tests compare
// against.
//
// Kernels are templated on a memory hook (cachesim/mem_hook.h): NullMemHook
// compiles away; CacheSimHook drives the Table 5 / Fig 1b cache simulation.
#ifndef SRC_CORE_SAMPLE_STAGE_H_
#define SRC_CORE_SAMPLE_STAGE_H_

#include "src/cachesim/mem_hook.h"
#include "src/core/interleave.h"
#include "src/core/presample.h"
#include "src/graph/csr_graph.h"
#include "src/sampling/rejection.h"
#include "src/util/rng.h"
#include "src/util/sync.h"
#include "src/util/types.h"

namespace fm {

// Hook-instrumented binary search: does `v`'s sorted adjacency list contain `u`?
// (node2vec's connectivity check, §5.2.)
template <typename Hook>
FM_HOT_PATH bool HasEdgeHooked(const CsrGraph& graph, Vid v, Vid u,
                               Hook& hook) {
  hook.Load(graph.offsets().data() + v, 2 * sizeof(Eid));
  const Vid* edges = graph.edges().data();
  Eid lo = graph.edge_begin(v);
  Eid hi = graph.edge_end(v);
  while (lo < hi) {
    // div: /2 on an unsigned range compiles to a shift; spelled as division
    // for the standard binary-search midpoint idiom.
    Eid mid = lo + (hi - lo) / 2;
    hook.Load(edges + mid, sizeof(Vid));
    if (edges[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < graph.edge_end(v) && edges[lo] == u;
}

// First-order sampling (DeepWalk when `alias` is null, weighted transitions when
// it points at the graph's VertexAliasTables) over one VP's walker chunk.
// `walkers[0..count)` hold VIDs inside `vp`; each is overwritten with the next stop.
// `stop_probability` > 0 stochastically terminates walkers (they become
// kInvalidVid). Walker i draws from XorShiftRng(WalkerSeed(chunk_seed, i)).
template <typename Hook, typename Rng = XorShiftRng>
FM_HOT_PATH void SampleVpFirstOrder(const CsrGraph& graph, uint32_t vp_index,
                        const VertexPartition& vp, PresampleBuffers* presample,
                        Vid* walkers, Wid count, double stop_probability,
                        const VertexAliasTables* alias, uint64_t chunk_seed,
                        Hook& hook) {
  const Vid* edges = graph.edges().data();
  const Eid* offsets = graph.offsets().data();
  for (Wid i = 0; i < count; ++i) {
    hook.Load(walkers + i, sizeof(Vid));
    Vid v = walkers[i];
    Rng rng(WalkerSeed(chunk_seed, i));
    Vid next;
    if (vp.policy == SamplePolicy::kPS) {
      next = presample->Next(graph, vp_index, vp, v, alias, rng, hook);
    } else if (vp.uniform_degree && alias == nullptr) {
      // Regular-partition fast path: position by arithmetic, no offset lookup
      // (§4.2 "low-degree partitions allow simpler indexing").
      Degree deg = vp.degree;
      if (deg == 0) {
        next = v;
      } else {
        Eid base = vp.edge_begin + static_cast<Eid>(v - vp.begin) * deg;
        Eid pick = base + (deg == 1 ? 0 : rng.NextBounded(deg));
        hook.Load(edges + pick, sizeof(Vid));
        next = edges[pick];
      }
    } else {
      // General CSR direct sampling: one offset lookup + one edge read, both random
      // but confined to the VP's working set.
      hook.Load(offsets + v, 2 * sizeof(Eid));
      Eid begin = offsets[v];
      Degree deg = static_cast<Degree>(offsets[v + 1] - begin);
      if (deg == 0) {
        next = v;
      } else if (alias != nullptr) {
        // Weighted DS: one alias-table read + one edge read, both within the VP.
        Eid pick = begin + alias->SampleIndex(graph, v, rng, hook);
        hook.Load(edges + pick, sizeof(Vid));
        next = edges[pick];
      } else {
        Eid pick = begin + rng.NextBounded(deg);
        hook.Load(edges + pick, sizeof(Vid));
        next = edges[pick];
      }
    }
    if (stop_probability > 0 && rng.NextDouble() < stop_probability) {
      next = kInvalidVid;
    }
    walkers[i] = next;
    hook.Store(walkers + i, sizeof(Vid));
  }
}

// Ring ops for first-order sampling (src/core/interleave.h driver). Stage
// machine per walker: prefetch the CSR offset pair at Init, the alias row (if
// weighted) after the degree is known, the picked edge cell last. PS chunks
// complete entirely at Init — pre-sampled consumption is already a sequential
// buffer scan (that is the whole point of PS), and its per-vertex cursors are
// the order-sensitive state the Init ordering guarantee exists for.
template <typename Rng, typename Hook>
struct FirstOrderRing {
  const CsrGraph& graph;
  uint32_t vp_index;
  const VertexPartition& vp;
  PresampleBuffers* presample;
  Vid* walkers;
  double stop_probability;
  const VertexAliasTables* alias;
  uint64_t chunk_seed;
  Hook& hook;
  InterleaveStats stats;

  FirstOrderRing(const CsrGraph& graph_in, uint32_t vp_index_in,
                 const VertexPartition& vp_in, PresampleBuffers* presample_in,
                 Vid* walkers_in, double stop_probability_in,
                 const VertexAliasTables* alias_in, uint64_t chunk_seed_in,
                 Hook& hook_in)
      : graph(graph_in),
        vp_index(vp_index_in),
        vp(vp_in),
        presample(presample_in),
        walkers(walkers_in),
        stop_probability(stop_probability_in),
        alias(alias_in),
        chunk_seed(chunk_seed_in),
        hook(hook_in) {}

  enum : uint8_t { kStageOffsets, kStageAlias, kStageEdge };
  struct Slot {
    Rng rng{0};  // re-seeded per walker at Init
    Wid i = 0;
    Vid v = 0;
    Eid begin = 0;
    Eid pick = 0;
    Degree deg = 0;
    uint8_t stage = kStageOffsets;
  };
  Slot slots[kMaxInterleaveDepth];

  FM_HOT_PATH bool Finish(Slot& s, Vid next) {
    if (stop_probability > 0 && s.rng.NextDouble() < stop_probability) {
      next = kInvalidVid;
    }
    walkers[s.i] = next;
    hook.Store(walkers + s.i, sizeof(Vid));
    return false;
  }

  FM_HOT_PATH bool Init(uint32_t slot, Wid i) {
    Slot& s = slots[slot];
    s.i = i;
    hook.Load(walkers + i, sizeof(Vid));
    s.v = walkers[i];
    s.rng.Seed(WalkerSeed(chunk_seed, i));
    if (vp.policy == SamplePolicy::kPS) {
      return Finish(
          s, presample->Next(graph, vp_index, vp, s.v, alias, s.rng, hook));
    }
    if (vp.uniform_degree && alias == nullptr) {
      // Fast path: the edge address is pure arithmetic, so the one prefetch
      // that matters (the edge cell) can issue immediately at Init.
      Degree deg = vp.degree;
      if (deg == 0) {
        return Finish(s, s.v);
      }
      Eid base = vp.edge_begin + static_cast<Eid>(s.v - vp.begin) * deg;
      s.pick = base + (deg == 1 ? 0 : s.rng.NextBounded(deg));
      PrefetchRead(graph.edges().data() + s.pick);
      ++stats.edges;
      s.stage = kStageEdge;
      return true;
    }
    PrefetchRead(graph.offsets().data() + s.v);
    ++stats.offsets;
    s.stage = kStageOffsets;
    return true;
  }

  FM_HOT_PATH bool Advance(uint32_t slot) {
    Slot& s = slots[slot];
    const Vid* edges = graph.edges().data();
    const Eid* offsets = graph.offsets().data();
    switch (s.stage) {
      case kStageOffsets: {
        hook.Load(offsets + s.v, 2 * sizeof(Eid));
        s.begin = offsets[s.v];
        s.deg = static_cast<Degree>(offsets[s.v + 1] - s.begin);
        if (s.deg == 0) {
          return Finish(s, s.v);
        }
        if (alias != nullptr) {
          s.pick = alias->PickSlot(s.begin, s.deg, s.rng);
          PrefetchRead(alias->RowAddr(s.pick));
          ++stats.alias;
          s.stage = kStageAlias;
          return true;
        }
        s.pick = s.begin + s.rng.NextBounded(s.deg);
        PrefetchRead(edges + s.pick);
        ++stats.edges;
        s.stage = kStageEdge;
        return true;
      }
      case kStageAlias: {
        Degree idx = alias->ResolveSlot(s.begin, s.pick, s.rng, hook);
        s.pick = s.begin + idx;
        PrefetchRead(edges + s.pick);
        ++stats.edges;
        s.stage = kStageEdge;
        return true;
      }
      default: {
        hook.Load(edges + s.pick, sizeof(Vid));
        return Finish(s, edges[s.pick]);
      }
    }
  }
};

// Interleaved counterpart of SampleVpFirstOrder: same draws per walker, same
// results at every depth; `depth` <= 1 runs the plain sequential loop.
template <typename Hook, typename Rng = XorShiftRng>
FM_HOT_PATH void SampleVpFirstOrderInterleaved(
    const CsrGraph& graph, uint32_t vp_index, const VertexPartition& vp,
    PresampleBuffers* presample, Vid* walkers, Wid count,
    double stop_probability, const VertexAliasTables* alias,
    uint64_t chunk_seed, uint32_t depth, Hook& hook,
    InterleaveStats* stats = nullptr) {
  FirstOrderRing<Rng, Hook> ring{graph,    vp_index,         vp,
                                 presample, walkers,          stop_probability,
                                 alias,     chunk_seed,       hook};
  RunInterleavedRing(depth, count, ring);
  if (stats != nullptr) {
    *stats += ring.stats;
  }
}

// Metropolis-Hastings sampling over one VP's walker chunk: propose a uniform
// neighbor, accept with min(1, d(v)/d(u)). The acceptance check reads the
// candidate's degree, which may live outside the VP — the same (milder) locality
// leak node2vec's connectivity check has.
template <typename Hook, typename Rng = XorShiftRng>
FM_HOT_PATH void SampleVpMetropolis(const CsrGraph& graph, Vid* walkers,
                                    Wid count, double stop_probability,
                                    uint64_t chunk_seed, Hook& hook) {
  const Vid* edges = graph.edges().data();
  const Eid* offsets = graph.offsets().data();
  for (Wid i = 0; i < count; ++i) {
    hook.Load(walkers + i, sizeof(Vid));
    Vid v = walkers[i];
    Rng rng(WalkerSeed(chunk_seed, i));
    hook.Load(offsets + v, 2 * sizeof(Eid));
    Eid begin = offsets[v];
    Degree deg = static_cast<Degree>(offsets[v + 1] - begin);
    Vid next = v;
    if (deg > 0) {
      Eid pick = begin + rng.NextBounded(deg);
      hook.Load(edges + pick, sizeof(Vid));
      Vid candidate = edges[pick];
      hook.Load(offsets + candidate, 2 * sizeof(Eid));
      Degree cand_deg =
          static_cast<Degree>(offsets[candidate + 1] - offsets[candidate]);
      // Accept with min(1, d(v)/d(u)); rejection means the walker stays put.
      if (cand_deg <= deg ||
          rng.NextDouble() * static_cast<double>(cand_deg) <
              static_cast<double>(deg)) {
        next = candidate;
      }
    }
    if (stop_probability > 0 && rng.NextDouble() < stop_probability) {
      next = kInvalidVid;
    }
    walkers[i] = next;
    hook.Store(walkers + i, sizeof(Vid));
  }
}

// Ring ops for Metropolis-Hastings: offsets -> proposed edge -> candidate's
// offset pair (the degree read that may leave the VP — exactly the access
// prefetching helps most).
template <typename Rng, typename Hook>
struct MetropolisRing {
  const CsrGraph& graph;
  Vid* walkers;
  double stop_probability;
  uint64_t chunk_seed;
  Hook& hook;
  InterleaveStats stats;

  MetropolisRing(const CsrGraph& graph_in, Vid* walkers_in,
                 double stop_probability_in, uint64_t chunk_seed_in,
                 Hook& hook_in)
      : graph(graph_in),
        walkers(walkers_in),
        stop_probability(stop_probability_in),
        chunk_seed(chunk_seed_in),
        hook(hook_in) {}

  enum : uint8_t { kStageOffsets, kStageEdge, kStageCandDeg };
  struct Slot {
    Rng rng{0};  // re-seeded per walker at Init
    Wid i = 0;
    Vid v = 0;
    Vid candidate = 0;
    Eid begin = 0;
    Eid pick = 0;
    Degree deg = 0;
    uint8_t stage = kStageOffsets;
  };
  Slot slots[kMaxInterleaveDepth];

  FM_HOT_PATH bool Finish(Slot& s, Vid next) {
    if (stop_probability > 0 && s.rng.NextDouble() < stop_probability) {
      next = kInvalidVid;
    }
    walkers[s.i] = next;
    hook.Store(walkers + s.i, sizeof(Vid));
    return false;
  }

  FM_HOT_PATH bool Init(uint32_t slot, Wid i) {
    Slot& s = slots[slot];
    s.i = i;
    hook.Load(walkers + i, sizeof(Vid));
    s.v = walkers[i];
    s.rng.Seed(WalkerSeed(chunk_seed, i));
    PrefetchRead(graph.offsets().data() + s.v);
    ++stats.offsets;
    s.stage = kStageOffsets;
    return true;
  }

  FM_HOT_PATH bool Advance(uint32_t slot) {
    Slot& s = slots[slot];
    const Vid* edges = graph.edges().data();
    const Eid* offsets = graph.offsets().data();
    switch (s.stage) {
      case kStageOffsets: {
        hook.Load(offsets + s.v, 2 * sizeof(Eid));
        s.begin = offsets[s.v];
        s.deg = static_cast<Degree>(offsets[s.v + 1] - s.begin);
        if (s.deg == 0) {
          return Finish(s, s.v);
        }
        s.pick = s.begin + s.rng.NextBounded(s.deg);
        PrefetchRead(edges + s.pick);
        ++stats.edges;
        s.stage = kStageEdge;
        return true;
      }
      case kStageEdge: {
        hook.Load(edges + s.pick, sizeof(Vid));
        s.candidate = edges[s.pick];
        PrefetchRead(offsets + s.candidate);
        ++stats.offsets;
        s.stage = kStageCandDeg;
        return true;
      }
      default: {
        hook.Load(offsets + s.candidate, 2 * sizeof(Eid));
        Degree cand_deg = static_cast<Degree>(offsets[s.candidate + 1] -
                                              offsets[s.candidate]);
        Vid next = s.v;
        if (cand_deg <= s.deg ||
            s.rng.NextDouble() * static_cast<double>(cand_deg) <
                static_cast<double>(s.deg)) {
          next = s.candidate;
        }
        return Finish(s, next);
      }
    }
  }
};

template <typename Hook, typename Rng = XorShiftRng>
FM_HOT_PATH void SampleVpMetropolisInterleaved(
    const CsrGraph& graph, Vid* walkers, Wid count, double stop_probability,
    uint64_t chunk_seed, uint32_t depth, Hook& hook,
    InterleaveStats* stats = nullptr) {
  MetropolisRing<Rng, Hook> ring{graph, walkers, stop_probability, chunk_seed,
                                 hook};
  RunInterleavedRing(depth, count, ring);
  if (stats != nullptr) {
    *stats += ring.stats;
  }
}

// Second-order node2vec sampling over one VP's walker chunk. `prevs` carries each
// walker's predecessor (kInvalidVid for the first step => uniform first-order step).
// On return, walkers[i] holds the next stop. When `update_prevs` is set, prevs[i]
// is overwritten with the pre-step location (identity-free mode); otherwise the
// engine re-derives predecessors from the path rows.
template <typename Hook, typename Rng = XorShiftRng>
FM_HOT_PATH void SampleVpNode2Vec(const CsrGraph& graph,
                                  const VertexPartition& /*vp*/,
                                  const Node2VecParams& params, Vid* walkers,
                                  Vid* prevs, Wid count,
                                  double stop_probability, bool update_prevs,
                                  uint64_t chunk_seed, Hook& hook) {
  const Vid* edges = graph.edges().data();
  const Eid* offsets = graph.offsets().data();
  // div: the reciprocals of p and q are computed once per chunk, hoisted out
  // of the per-walker loop.
  double bound = std::max({1.0, 1.0 / params.p, 1.0 / params.q});
  for (Wid i = 0; i < count; ++i) {
    hook.Load(walkers + i, sizeof(Vid));
    hook.Load(prevs + i, sizeof(Vid));
    Vid cur = walkers[i];
    Vid prev = prevs[i];
    Rng rng(WalkerSeed(chunk_seed, i));
    hook.Load(offsets + cur, 2 * sizeof(Eid));
    Eid begin = offsets[cur];
    Degree deg = static_cast<Degree>(offsets[cur + 1] - begin);
    Vid next;
    if (deg == 0) {
      next = cur;
    } else if (prev == kInvalidVid) {
      Eid pick = begin + rng.NextBounded(deg);
      hook.Load(edges + pick, sizeof(Vid));
      next = edges[pick];
    } else {
      // KnightKing-style rejection (sampling/rejection.h), hook-instrumented. The
      // connectivity checks randomly touch prev's adjacency list, which may live
      // outside this VP — the locality loss §5.2 cites for node2vec's smaller
      // speedup.
      while (true) {
        Eid pick = begin + rng.NextBounded(deg);
        hook.Load(edges + pick, sizeof(Vid));
        Vid candidate = edges[pick];
        double w;
        if (candidate == prev) {
          // div: node2vec bias weights 1/p and 1/q; p and q are runtime
          // parameters, so the quotients cannot fold to shifts. They hit only
          // the rejection branch, not every edge read.
          w = 1.0 / params.p;
        } else if (HasEdgeHooked(graph, prev, candidate, hook)) {
          w = 1.0;
        } else {
          // div: see the 1/p justification above.
          w = 1.0 / params.q;
        }
        if (rng.NextDouble() * bound < w) {
          next = candidate;
          break;
        }
      }
    }
    if (stop_probability > 0 && rng.NextDouble() < stop_probability) {
      next = kInvalidVid;
    }
    if (update_prevs) {
      prevs[i] = cur;
      hook.Store(prevs + i, sizeof(Vid));
    }
    walkers[i] = next;
    hook.Store(walkers + i, sizeof(Vid));
  }
}

// Ring ops for node2vec: offsets -> candidate edge, then the rejection loop
// runs inline with a re-prefetch per retry (each rejected candidate picks a
// fresh edge cell, so the next retry's read gets its own distance). The
// connectivity binary search stays inline — its probe addresses are
// data-dependent at every level, which prefetching cannot help.
template <typename Rng, typename Hook>
struct Node2VecRing {
  const CsrGraph& graph;
  const Node2VecParams& params;
  Vid* walkers;
  Vid* prevs;
  double stop_probability;
  bool update_prevs;
  uint64_t chunk_seed;
  double bound;
  Hook& hook;
  InterleaveStats stats;

  Node2VecRing(const CsrGraph& graph_in, const Node2VecParams& params_in,
               Vid* walkers_in, Vid* prevs_in, double stop_probability_in,
               bool update_prevs_in, uint64_t chunk_seed_in, double bound_in,
               Hook& hook_in)
      : graph(graph_in),
        params(params_in),
        walkers(walkers_in),
        prevs(prevs_in),
        stop_probability(stop_probability_in),
        update_prevs(update_prevs_in),
        chunk_seed(chunk_seed_in),
        bound(bound_in),
        hook(hook_in) {}

  enum : uint8_t { kStageOffsets, kStageFirstEdge, kStageCandidate };
  struct Slot {
    Rng rng{0};  // re-seeded per walker at Init
    Wid i = 0;
    Vid cur = 0;
    Vid prev = 0;
    Eid begin = 0;
    Eid pick = 0;
    Degree deg = 0;
    uint8_t stage = kStageOffsets;
  };
  Slot slots[kMaxInterleaveDepth];

  FM_HOT_PATH bool Finish(Slot& s, Vid next) {
    if (stop_probability > 0 && s.rng.NextDouble() < stop_probability) {
      next = kInvalidVid;
    }
    if (update_prevs) {
      prevs[s.i] = s.cur;
      hook.Store(prevs + s.i, sizeof(Vid));
    }
    walkers[s.i] = next;
    hook.Store(walkers + s.i, sizeof(Vid));
    return false;
  }

  FM_HOT_PATH bool Init(uint32_t slot, Wid i) {
    Slot& s = slots[slot];
    s.i = i;
    hook.Load(walkers + i, sizeof(Vid));
    hook.Load(prevs + i, sizeof(Vid));
    s.cur = walkers[i];
    s.prev = prevs[i];
    s.rng.Seed(WalkerSeed(chunk_seed, i));
    PrefetchRead(graph.offsets().data() + s.cur);
    ++stats.offsets;
    s.stage = kStageOffsets;
    return true;
  }

  FM_HOT_PATH bool Advance(uint32_t slot) {
    Slot& s = slots[slot];
    const Vid* edges = graph.edges().data();
    const Eid* offsets = graph.offsets().data();
    switch (s.stage) {
      case kStageOffsets: {
        hook.Load(offsets + s.cur, 2 * sizeof(Eid));
        s.begin = offsets[s.cur];
        s.deg = static_cast<Degree>(offsets[s.cur + 1] - s.begin);
        if (s.deg == 0) {
          return Finish(s, s.cur);
        }
        s.pick = s.begin + s.rng.NextBounded(s.deg);
        PrefetchRead(edges + s.pick);
        ++stats.edges;
        s.stage = s.prev == kInvalidVid ? kStageFirstEdge : kStageCandidate;
        return true;
      }
      case kStageFirstEdge: {
        hook.Load(edges + s.pick, sizeof(Vid));
        return Finish(s, edges[s.pick]);
      }
      default: {
        hook.Load(edges + s.pick, sizeof(Vid));
        Vid candidate = edges[s.pick];
        double w;
        if (candidate == s.prev) {
          // div: node2vec bias weights 1/p and 1/q; see the sequential kernel.
          w = 1.0 / params.p;
        } else if (HasEdgeHooked(graph, s.prev, candidate, hook)) {
          w = 1.0;
        } else {
          // div: see the 1/p justification above.
          w = 1.0 / params.q;
        }
        if (s.rng.NextDouble() * bound < w) {
          return Finish(s, candidate);
        }
        s.pick = s.begin + s.rng.NextBounded(s.deg);
        PrefetchRead(edges + s.pick);
        ++stats.edges;
        return true;
      }
    }
  }
};

template <typename Hook, typename Rng = XorShiftRng>
FM_HOT_PATH void SampleVpNode2VecInterleaved(
    const CsrGraph& graph, const VertexPartition& /*vp*/,
    const Node2VecParams& params, Vid* walkers, Vid* prevs, Wid count,
    double stop_probability, bool update_prevs, uint64_t chunk_seed,
    uint32_t depth, Hook& hook, InterleaveStats* stats = nullptr) {
  // div: reciprocal bound hoisted once per chunk, as in the sequential kernel.
  double bound = std::max({1.0, 1.0 / params.p, 1.0 / params.q});
  Node2VecRing<Rng, Hook> ring{graph,          params,     walkers, prevs,
                               stop_probability, update_prevs, chunk_seed,
                               bound,          hook};
  RunInterleavedRing(depth, count, ring);
  if (stats != nullptr) {
    *stats += ring.stats;
  }
}

}  // namespace fm

#endif  // SRC_CORE_SAMPLE_STAGE_H_
