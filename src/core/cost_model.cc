#include "src/core/cost_model.h"

#include <algorithm>
#include <cmath>

namespace fm {

uint64_t AnalyticCostModel::WorkingSetBytes(uint64_t vp_vertices, double avg_degree,
                                            SamplePolicy policy) const {
  if (policy == SamplePolicy::kPS) {
    // Per vertex: a 4-byte consumption cursor plus one active cache line of
    // pre-sampled edges. The refill pass touches a single adjacency list at a time,
    // which does not scale with the VP and is excluded.
    return vp_vertices * (4 + kCacheLineBytes);
  }
  // DS randomly hits any edge of any member vertex: all edges (4B targets) plus the
  // CSR offsets (8B) must stay resident.
  return static_cast<uint64_t>(static_cast<double>(vp_vertices) * avg_degree * 4.0) +
         vp_vertices * 8;
}

uint8_t AnalyticCostModel::LevelFor(uint64_t bytes) const {
  if (bytes <= cache_.l1_bytes) {
    return 1;
  }
  if (bytes <= cache_.l2_bytes) {
    return 2;
  }
  if (bytes <= cache_.l3_bytes / std::max(1u, threads_sharing_l3_)) {
    return 3;
  }
  return 4;
}

double AnalyticCostModel::EffectiveRandomNs(uint64_t bytes) const {
  // Uniform random accesses over a working set of `bytes`: the fraction that lands
  // in the largest level still fitting is capacity/bytes; the remainder costs the
  // next level. L3 capacity is the per-thread share (threads run disjoint tasks).
  double l3_share = static_cast<double>(cache_.l3_bytes) /
                    std::max(1u, threads_sharing_l3_);
  const double caps[3] = {static_cast<double>(cache_.l1_bytes),
                          static_cast<double>(cache_.l2_bytes), l3_share};
  const double lats[4] = {latency_.l1_ns, latency_.l2_ns, latency_.l3_ns,
                          latency_.dram_ns};
  double b = static_cast<double>(std::max<uint64_t>(bytes, 1));
  for (int level = 0; level < 3; ++level) {
    if (b <= caps[level]) {
      return lats[level];
    }
  }
  // Larger than every cache: mix of L3 hits (share) and DRAM.
  double p_l3 = caps[2] / b;
  return p_l3 * lats[2] + (1.0 - p_l3) * lats[3];
}

double AnalyticCostModel::SampleNsPerStep(uint64_t vp_vertices, double avg_degree,
                                          double density,
                                          SamplePolicy policy) const {
  avg_degree = std::max(avg_degree, 1.0);
  density = std::max(density, 1e-3);
  double edges = static_cast<double>(vp_vertices) * avg_degree;

  // Walker state: one sequential read + one in-place sequential write per step
  // (common to both policies; Table 3 first rows).
  double walker_io = 2.0 * latency_.seq_ns;

  uint64_t ws = WorkingSetBytes(vp_vertices, avg_degree, policy);
  // First-touch (compulsory) misses of the working set, amortized over all samples
  // the task serves: density * edges walker-steps per iteration.
  double first_touch = (static_cast<double>(ws) / kCacheLineBytes) *
                       latency_.dram_ns / (density * edges + 1.0);

  if (policy == SamplePolicy::kDS) {
    // One random read into the VP's edge data; CSR needs the degree/offset lookup
    // first (a second dependent access), which uniform-degree partitions skip — the
    // planner costs the general case and the engine harvests the regular case, so a
    // middle factor is used here.
    double lookup_factor = 1.3;
    return EffectiveRandomNs(ws) * lookup_factor + walker_io + first_touch;
  }

  // PS: per consumed sample, one random "seek" into the cursor array, plus the
  // pro-rata share of streaming one cache line of pre-sampled edges. Line
  // utilization grows with the expected co-located walkers per vertex
  // (density * degree), capping at the 16 samples a 64B line holds (§4.2: "higher
  // degree vertices attract more walkers, bringing higher utilization of
  // sequentially read cache lines").
  double seek = EffectiveRandomNs(vp_vertices * 4);
  double line_lat = EffectiveRandomNs(ws);
  double utilization =
      std::clamp(density * avg_degree, 1.0, static_cast<double>(kCacheLineBytes) / 4);
  double line = line_lat / utilization;
  // Refill: production of one sample = one random read within a single (cached)
  // adjacency list + one sequential buffer write (§4.2 "Pre-sampling").
  double refill = latency_.l2_ns + latency_.seq_ns;
  return seek + line + refill + walker_io + first_touch;
}

}  // namespace fm
