// Uniform step-kernel dispatch — the engine's kernel layer (§4.2).
//
// Binds one run's algorithm choice and kernel inputs (graph, spec, plan,
// pre-sample buffers, alias tables) once, so the engine's per-VP sample task is
// a single SampleVp() call instead of an inline algorithm ladder. Templated on
// the memory hook like the kernels themselves: NullMemHook compiles the
// dispatch down to the bare kernel; CacheSimHook drives the cache simulation.
#ifndef SRC_CORE_STEP_KERNEL_H_
#define SRC_CORE_STEP_KERNEL_H_

#include "src/core/partition_plan.h"
#include "src/core/presample.h"
#include "src/core/sample_stage.h"
#include "src/core/walk_spec.h"
#include "src/graph/csr_graph.h"
#include "src/sampling/vertex_alias.h"
#include "src/util/rng.h"
#include "src/util/sync.h"

namespace fm {

template <typename Hook>
class StepKernel {
 public:
  StepKernel(const CsrGraph& graph, const WalkSpec& spec,
             const PartitionPlan& plan, PresampleBuffers* presample,
             const VertexAliasTables* alias)
      : graph_(graph),
        spec_(spec),
        plan_(plan),
        presample_(presample),
        alias_(alias) {}

  // Moves `vp_index`'s walker chunk one step in place. `prevs` is the
  // predecessor stream chunk (node2vec only; ignored otherwise). Walker i of
  // the chunk draws from its own stream seeded by (chunk_seed, i), so the
  // result is independent of `depth` (the sample-stage interleave ring size;
  // <= 1 runs the plain sequential kernels, which are the bit-exact oracle for
  // the ring variants). `stats`, when non-null, accumulates the ring's
  // prefetch-issue counts.
  FM_HOT_PATH void SampleVp(uint32_t vp_index, Vid* walkers, Vid* prevs,
                            Wid count, double stop_probability,
                            uint64_t chunk_seed, uint32_t depth, Hook& hook,
                            InterleaveStats* stats = nullptr) const {
    const VertexPartition& vp = plan_.vp(vp_index);
    switch (spec_.algorithm) {
      case WalkAlgorithm::kNode2Vec:
        if (depth <= 1) {
          SampleVpNode2Vec(graph_, vp, spec_.node2vec, walkers, prevs, count,
                           stop_probability,
                           /*update_prevs=*/!spec_.track_identity, chunk_seed,
                           hook);
        } else {
          SampleVpNode2VecInterleaved(
              graph_, vp, spec_.node2vec, walkers, prevs, count,
              stop_probability, /*update_prevs=*/!spec_.track_identity,
              chunk_seed, depth, hook, stats);
        }
        break;
      case WalkAlgorithm::kMetropolisHastings:
        if (depth <= 1) {
          SampleVpMetropolis(graph_, walkers, count, stop_probability,
                             chunk_seed, hook);
        } else {
          SampleVpMetropolisInterleaved(graph_, walkers, count,
                                        stop_probability, chunk_seed, depth,
                                        hook, stats);
        }
        break;
      case WalkAlgorithm::kDeepWalk:
        if (depth <= 1) {
          SampleVpFirstOrder(graph_, vp_index, vp, presample_, walkers, count,
                             stop_probability, alias_, chunk_seed, hook);
        } else {
          SampleVpFirstOrderInterleaved(graph_, vp_index, vp, presample_,
                                        walkers, count, stop_probability,
                                        alias_, chunk_seed, depth, hook, stats);
        }
        break;
    }
  }

 private:
  const CsrGraph& graph_;
  const WalkSpec& spec_;
  const PartitionPlan& plan_;
  PresampleBuffers* presample_;
  const VertexAliasTables* alias_;
};

}  // namespace fm

#endif  // SRC_CORE_STEP_KERNEL_H_
