// Episode walker storage, sizing, and initial placement — the engine's buffer
// layer (§3 initial placement, §4.3 walker-state rows, §5.1 episode sizing).
//
// A WalkerState owns one episode's walker arrays and the rotation discipline
// over them:
//   keep_paths      the PathSet rows *are* the W_i arrays (zero-copy history);
//   rotating mode   three rows (prev / cur / next gather target) plus the SW
//                   scratch, with the node2vec predecessor stream riding along.
// The engine only ever asks for the current row, the scatter aux stream, and
// the next gather target; which physical buffer backs each is this class's
// business. Placement (degree-proportional or seeded round-robin) runs on the
// pool and feeds WalkObserver::OnPlacementChunk inside the parallel loop.
#ifndef SRC_CORE_WALKER_STATE_H_
#define SRC_CORE_WALKER_STATE_H_

#include <span>
#include <vector>

#include "src/core/path_set.h"
#include "src/core/shuffle.h"
#include "src/core/walk_spec.h"
#include "src/util/types.h"

namespace fm {

class CsrGraph;
class ThreadPool;
class WalkObserver;

// Walkers per episode under `dram_budget_bytes` (§5.1 "configured at runtime
// based on DRAM capacity"): bounded by per-walker state bytes, floored at 1024.
Wid EpisodeCapacity(const WalkSpec& spec, uint64_t dram_budget_bytes,
                    Vid num_vertices);

class WalkerState {
 public:
  // `graph` and `spec` must outlive the state. `walkers` is this episode's
  // size (<= EpisodeCapacity).
  WalkerState(const CsrGraph& graph, const WalkSpec& spec, Wid walkers);

  Wid size() const { return walkers_; }

  // W_i, walker order.
  Vid* cur() { return w_cur_; }
  const Vid* cur() const { return w_cur_; }

  // Shuffle scratch (partition order after Scatter).
  Vid* sw() { return sw_.data(); }
  // Predecessor scratch (node2vec only; nullptr otherwise).
  Vid* sw_prev() { return sw_prev_.empty() ? nullptr : sw_prev_.data(); }

  // Predecessor source to carry through the next Scatter, or nullptr when the
  // step has none (non-node2vec walks, and the first tracked node2vec step).
  const Vid* scatter_aux() const;

  // Call right after Scatter with the aux pointer that was passed: fills the
  // predecessor scratch with kInvalidVid on the first tracked node2vec step
  // (the kernel's "take a uniform first-order step" marker).
  void AfterScatter(const Vid* aux);

  // Destination row for the reverse shuffle of `step` (the PathSet row in
  // keep_paths mode, the free rotation buffer otherwise). Call before Gather;
  // then AdvanceTracked(step) after it.
  Vid* GatherTarget(uint32_t step);

  // Rotate rows after a tracked-mode Gather into GatherTarget(step):
  // prev <- cur <- next, oldest buffer becomes the next free target.
  void AdvanceTracked(uint32_t step);

  // Identity-free step: the sampled SW (and predecessor stream) becomes the
  // next walker array; no Gather ran.
  void AdvanceIdentityFree();

  // Initial placement into cur(): seeded round-robin over
  // spec.start_vertices (walker j gets starts[(base_walker + j) % size]) when
  // non-empty — the caller must have range-validated them — else
  // degree-proportional ("uniformly sampling among all edges", §3).
  // Invokes OnPlacementChunk on each observer inside the parallel loop.
  void Place(ThreadPool* pool, uint64_t episode, Wid base_walker,
             std::span<WalkObserver* const> observers);

  // Moves the episode's path rows out (keep_paths mode only).
  PathSet TakePaths();

  // Scratch arena for the binned shuffle backend's record segments — owned
  // here with the rest of the episode's buffers, attached to the Shuffler by
  // the engine (Shuffler::AttachArena), unused by the direct backend.
  ShuffleArena* shuffle_arena() { return &shuffle_arena_; }

 private:
  const CsrGraph& graph_;
  const WalkSpec& spec_;
  Wid walkers_;
  bool node2vec_;
  bool identity_free_;

  PathSet paths_;  // keep_paths mode: rows double as the W_i arrays
  std::vector<Vid> rot_a_, rot_b_, rot_c_;
  std::vector<Vid> sw_;
  std::vector<Vid> sw_prev_;
  ShuffleArena shuffle_arena_;

  Vid* w_cur_ = nullptr;
  Vid* w_prev_ = nullptr;    // W_{i-1} (node2vec predecessor source)
  Vid* free_buf_ = nullptr;  // receives the next gather
  Vid* free_buf2_ = nullptr;
};

}  // namespace fm

#endif  // SRC_CORE_WALKER_STATE_H_
