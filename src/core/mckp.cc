#include "src/core/mckp.h"

#include <algorithm>
#include <limits>

#include "src/util/logging.h"

namespace fm {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

MckpSolution SolveMckp(const std::vector<std::vector<MckpItem>>& classes,
                       uint32_t weight_limit) {
  MckpSolution solution;
  size_t num_classes = classes.size();
  if (num_classes == 0) {
    solution.feasible = true;
    return solution;
  }
  for (const auto& cls : classes) {
    FM_CHECK_MSG(!cls.empty(), "MCKP class must be non-empty");
  }

  // dp[c][w] = min cost choosing one item from each of classes 0..c with total weight
  // exactly <= w handled by taking min over w at the end; we use "total weight == w"
  // semantics to allow exact choice reconstruction, with an extra scan for <=.
  // Layout: (num_classes + 1) rows of (weight_limit + 1), row 0 = empty prefix.
  size_t width = static_cast<size_t>(weight_limit) + 1;
  std::vector<double> prev(width, kInf);
  std::vector<double> cur(width, kInf);
  // choice[c * width + w] = item picked for class c when prefix weight is exactly w.
  std::vector<uint32_t> choice(num_classes * width, ~uint32_t{0});
  prev[0] = 0;

  for (size_t c = 0; c < num_classes; ++c) {
    std::fill(cur.begin(), cur.end(), kInf);
    for (uint32_t w = 0; w <= weight_limit; ++w) {
      if (prev[w] == kInf) {
        continue;
      }
      for (uint32_t i = 0; i < classes[c].size(); ++i) {
        const MckpItem& item = classes[c][i];
        uint64_t nw = static_cast<uint64_t>(w) + item.weight;
        if (nw > weight_limit) {
          continue;
        }
        double cost = prev[w] + item.cost;
        if (cost < cur[nw]) {
          cur[nw] = cost;
          choice[c * width + nw] = i;
        }
      }
    }
    std::swap(prev, cur);
  }

  // Best final weight.
  uint32_t best_w = 0;
  double best_cost = kInf;
  for (uint32_t w = 0; w <= weight_limit; ++w) {
    if (prev[w] < best_cost) {
      best_cost = prev[w];
      best_w = w;
    }
  }
  if (best_cost == kInf) {
    return solution;  // infeasible
  }

  solution.feasible = true;
  solution.total_cost = best_cost;
  solution.total_weight = best_w;
  solution.chosen.resize(num_classes);
  // Walk the choice table backwards. The stored choice at (c, w) is valid for *some*
  // optimal path; to reconstruct reliably we recompute predecessor weights.
  uint32_t w = best_w;
  for (size_t c = num_classes; c-- > 0;) {
    uint32_t item = choice[c * width + w];
    FM_CHECK_MSG(item != ~uint32_t{0}, "MCKP reconstruction failed");
    solution.chosen[c] = item;
    w -= classes[c][item].weight;
  }
  return solution;
}

namespace {

void BruteForceRecurse(const std::vector<std::vector<MckpItem>>& classes, size_t c,
                       double cost, uint32_t weight, uint32_t weight_limit,
                       std::vector<uint32_t>& picks, MckpSolution& best) {
  if (weight > weight_limit) {
    return;
  }
  if (c == classes.size()) {
    if (!best.feasible || cost < best.total_cost) {
      best.feasible = true;
      best.total_cost = cost;
      best.total_weight = weight;
      best.chosen = picks;
    }
    return;
  }
  for (uint32_t i = 0; i < classes[c].size(); ++i) {
    picks[c] = i;
    BruteForceRecurse(classes, c + 1, cost + classes[c][i].cost,
                      weight + classes[c][i].weight, weight_limit, picks, best);
  }
}

}  // namespace

MckpSolution SolveMckpBruteForce(const std::vector<std::vector<MckpItem>>& classes,
                                 uint32_t weight_limit) {
  MckpSolution best;
  std::vector<uint32_t> picks(classes.size());
  BruteForceRecurse(classes, 0, 0, 0, weight_limit, picks, best);
  if (classes.empty()) {
    best.feasible = true;
  }
  return best;
}

}  // namespace fm
