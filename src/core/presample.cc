#include "src/core/presample.h"

#include "src/util/logging.h"

namespace fm {

PresampleBuffers::PresampleBuffers(const CsrGraph& graph,
                                   const PartitionPlan& plan) {
  uint64_t total = 0;
  vp_sample_base_.assign(plan.num_vps(), 0);
  for (uint32_t i = 0; i < plan.num_vps(); ++i) {
    const VertexPartition& vp = plan.vp(i);
    if (vp.policy != SamplePolicy::kPS) {
      continue;
    }
    vp_sample_base_[i] = total;
    total += graph.edge_end(vp.end - 1) - vp.edge_begin;
  }
  if (total == 0) {
    return;
  }
  samples_.Allocate(total);
  cursor_.resize(graph.num_vertices());
  ResetAll();
  // cursor_[v] must start at degree(v) ("empty") for PS vertices; ResetAll handles
  // all vertices uniformly which is harmless for DS vertices (never consulted).
}

void PresampleBuffers::ResetAll() {
  // Mark every buffer exhausted so the next Next() refills it. Degree lookups are
  // avoided by using the saturating sentinel: the maximum Degree value is >= any
  // real degree.
  for (auto& c : cursor_) {
    c = ~Degree{0};
  }
}

}  // namespace fm
