#include "src/core/presample.h"

#include "src/util/logging.h"
#include "src/util/trace.h"

namespace fm {

PresampleBuffers::PresampleBuffers(const CsrGraph& graph,
                                   const PartitionPlan& plan) {
  TraceSpan span("presample", "build_buffers");
  uint64_t total = 0;
  vp_sample_base_.assign(plan.num_vps(), 0);
  for (uint32_t i = 0; i < plan.num_vps(); ++i) {
    const VertexPartition& vp = plan.vp(i);
    if (vp.policy != SamplePolicy::kPS) {
      continue;
    }
    // Buffer layout invariants: the VP covers a non-empty vertex range whose CSR
    // slice starts at its recorded edge_begin — a mismatch would alias sample
    // buffers between partitions.
    FM_DCHECK_LT(vp.begin, vp.end);
    FM_DCHECK_EQ(vp.edge_begin, graph.edge_begin(vp.begin));
    FM_DCHECK_LE(vp.edge_begin, graph.edge_end(vp.end - 1));
    vp_sample_base_[i] = total;
    total += graph.edge_end(vp.end - 1) - vp.edge_begin;
  }
  span.Arg("samples", total);
  if (total == 0) {
    return;
  }
  samples_.Allocate(total);
  cursor_.resize(graph.num_vertices());
  ResetAll();
  // cursor_[v] must start at degree(v) ("empty") for PS vertices; ResetAll handles
  // all vertices uniformly which is harmless for DS vertices (never consulted).
}

void PresampleBuffers::ResetAll() {
  // Mark every buffer exhausted so the next Next() refills it. Degree lookups are
  // avoided by using the saturating sentinel: the maximum Degree value is >= any
  // real degree.
  for (auto& c : cursor_) {
    c = ~Degree{0};
  }
}

}  // namespace fm
