// Multiple-Choice Knapsack Problem solver (§4.4).
//
// FlashMob maps vertex partitioning to MCKP: one class per vertex group, one item
// per candidate (VP size, policy) combination, item weight = number of partitions the
// choice creates, weight limit P = shuffle fan-out that keeps the outer shuffle's
// bins in L2. MCKP is NP-complete but admits a pseudo-polynomial dynamic program of
// time O(C·P·I) and space O(C·P) (Dudzinski & Walukiewicz 1987; Kellerer et al.
// 2004), which is what this module implements — with C, P, I << |V| the solve is
// sub-millisecond (the paper reports 0.01s on its largest graph).
//
// This solver *minimizes* total cost (the paper maximizes profit = negative cost;
// the formulations are equivalent).
#ifndef SRC_CORE_MCKP_H_
#define SRC_CORE_MCKP_H_

#include <cstdint>
#include <vector>

namespace fm {

struct MckpItem {
  double cost = 0;      // to minimize
  uint32_t weight = 0;  // resource consumption; total must stay <= limit
};

struct MckpSolution {
  bool feasible = false;
  double total_cost = 0;
  uint32_t total_weight = 0;
  // chosen[c] = index of the item selected from class c.
  std::vector<uint32_t> chosen;
};

// Picks exactly one item per class minimizing total cost subject to
// sum(weight) <= weight_limit. Classes must be non-empty. Exact DP.
MckpSolution SolveMckp(const std::vector<std::vector<MckpItem>>& classes,
                       uint32_t weight_limit);

// Exponential-time exhaustive solver for cross-validation in tests.
MckpSolution SolveMckpBruteForce(const std::vector<std::vector<MckpItem>>& classes,
                                 uint32_t weight_limit);

}  // namespace fm

#endif  // SRC_CORE_MCKP_H_
