#include "src/core/numa.h"

#include <algorithm>

#include "src/util/logging.h"

namespace fm {

NumaRunResult RunNumaWalk(const CsrGraph& graph, const WalkSpec& spec,
                          NumaMode mode, const SocketTopology& topology,
                          const EngineOptions& base_options) {
  FM_CHECK(topology.sockets >= 1);
  uint64_t total_dram =
      static_cast<uint64_t>(topology.sockets) * topology.dram_per_socket_bytes;
  uint64_t csr = graph.CsrBytes();

  NumaRunResult result;
  EngineOptions options = base_options;
  WalkSpec run_spec = spec;
  Wid total_walkers =
      spec.num_walkers != 0 ? spec.num_walkers : graph.num_vertices();

  if (mode == NumaMode::kPartitioned) {
    // One graph copy; everything else is walker budget spread over all sockets.
    FM_CHECK_MSG(total_dram > csr, "graph exceeds the topology's total DRAM");
    options.dram_budget_bytes = total_dram - csr;
    result.remote_stream_fraction =
        topology.sockets > 1
            ? static_cast<double>(topology.sockets - 1) / topology.sockets
            : 0.0;
    FlashMobEngine engine(graph, options);
    result.walkers_per_episode = engine.EpisodeWalkers(run_spec);
    WalkResult run = engine.Run(run_spec);
    result.per_step_ns = run.stats.PerStepNs();
    result.walker_density = run.stats.walker_density;
    result.stats = std::move(run.stats);
    return result;
  }

  // Replicated: each socket holds its own graph (and pre-sample buffers, which the
  // engine sizes like the CSR edge array for PS partitions — approximate with one
  // extra edge-array copy) and runs an independent instance over a 1/sockets share
  // of the walkers.
  uint64_t per_socket_graph = csr + graph.num_edges() * sizeof(Vid) / 2;
  FM_CHECK_MSG(topology.dram_per_socket_bytes > per_socket_graph,
               "graph replica exceeds per-socket DRAM");
  options.dram_budget_bytes = topology.dram_per_socket_bytes - per_socket_graph;
  run_spec.num_walkers = std::max<Wid>(total_walkers / topology.sockets, 1);

  FlashMobEngine engine(graph, options);
  result.walkers_per_episode = engine.EpisodeWalkers(run_spec);
  WalkResult run = engine.Run(run_spec);
  // All sockets run concurrently and independently; per-step time is the instance's
  // own, total throughput scales by `sockets`.
  result.per_step_ns = run.stats.PerStepNs();
  result.walker_density = run.stats.walker_density;
  result.remote_stream_fraction = 0.0;
  result.stats = std::move(run.stats);
  return result;
}

}  // namespace fm
