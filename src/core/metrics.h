// MetricsExport — serializes run metadata, per-stage hardware counters, and
// derived rates (IPC, LLC miss ratio, misses/step) to JSON.
//
// Two schemas, both stable and versioned (DESIGN.md "Observability"):
//
//   fm-metrics-v1          one walk run: meta + run totals (including the
//                          resolved interleave depth and per-stage software-
//                          prefetch issue counts) + per-stage counter totals +
//                          per-VP-cache-class attribution + one entry per
//                          (episode, step). Emitted by
//                          `fmwalk --metrics-json=FILE`.
//   fm-bench-trajectory-v1 named scalar series from a bench binary (the
//                          BENCH_*.json trajectory files), optionally with
//                          counter samples attached per series.
//
// Every document carries `"backend"`: "perf" when hardware counters were live,
// "noop" when perf_event_open was unavailable (the degradation contract: same
// schema, zero counters, exit 0), or "off" when collection wasn't requested.
#ifndef SRC_CORE_METRICS_H_
#define SRC_CORE_METRICS_H_

#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/partition_plan.h"
#include "src/util/perf_counters.h"

namespace fm {

// Caller-provided run identity recorded verbatim in the JSON.
struct MetricsMeta {
  std::string tool;       // "fmwalk", "fig1_highlight", ...
  std::string graph;      // input path or generator description
  std::string algorithm;  // "deepwalk" | "node2vec" | "mh"
  uint64_t seed = 0;
  uint32_t threads = 0;
};

// Walker-step attribution per VP cache class: how much of the sample stage's
// work ran against L1/L2/L3/DRAM-resident working sets (the per-VP-size-class
// view; stage counters cannot be split per VP because VP tasks run
// concurrently, but the walker-step shares weight them exactly).
struct VpClassMetrics {
  uint8_t cache_level = 0;  // 1..4 (4 = DRAM)
  uint32_t vps = 0;
  uint64_t walker_steps = 0;
  double walker_step_share = 0;
};

// Aggregates WalkStats::vp_walker_steps by the plan's VP cache levels.
// `plan` may be null (returns empty).
std::vector<VpClassMetrics> AggregateVpClasses(const PartitionPlan* plan,
                                               const WalkStats& stats);

// fm-metrics-v1 document for one run. `plan` may be null (vp_classes omitted).
std::string WalkMetricsJson(const MetricsMeta& meta, const WalkStats& stats,
                            const PartitionPlan* plan);

// Writes WalkMetricsJson to `path`; false on IO failure.
bool WriteWalkMetricsJson(const std::string& path, const MetricsMeta& meta,
                          const WalkStats& stats, const PartitionPlan* plan);

// Accumulates a bench binary's result series and writes the
// fm-bench-trajectory-v1 document (the BENCH_*.json format).
class BenchTrajectory {
 public:
  explicit BenchTrajectory(std::string bench) : bench_(std::move(bench)) {}

  // backend of the counter samples attached below; defaults to "off".
  void set_backend(std::string backend) { backend_ = std::move(backend); }
  const std::string& backend() const { return backend_; }

  // One scalar observation: series ("fig1a.deepwalk"), point label
  // ("FlashMob/YT"), value, unit ("ns/step").
  void Add(const std::string& series, const std::string& point, double value,
           const std::string& unit);

  // Attach a counter sample to a series (e.g. the run-total sample-stage
  // counters of one engine/graph combination).
  void AddCounters(const std::string& series, const CounterSample& sample);

  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

 private:
  struct Point {
    std::string series;
    std::string point;
    double value;
    std::string unit;
  };
  struct CounterPoint {
    std::string series;
    CounterSample sample;
  };
  std::string bench_;
  std::string backend_ = "off";
  std::vector<Point> points_;
  std::vector<CounterPoint> counters_;
};

}  // namespace fm

#endif  // SRC_CORE_METRICS_H_
