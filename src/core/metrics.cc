#include "src/core/metrics.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/util/json.h"

namespace fm {
namespace {

// Minimal JSON emission. The schema only needs objects, arrays, strings, and
// numbers; string escaping (the metadata may carry arbitrary file paths) is
// the shared RFC 8259 implementation in src/util/json.h, the same one the
// trace exporter uses.
void AppendEscaped(std::string* out, const std::string& s) {
  json::AppendQuoted(out, s);
}

std::string NumberToJson(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendCounterObject(std::string* out, const CounterSample& c) {
  *out += '{';
  for (int i = 0; i < kNumPerfCounters; ++i) {
    if (i != 0) {
      *out += ',';
    }
    AppendEscaped(out, PerfCounterName(i));
    *out += ':';
    *out += std::to_string(c.values[i]);
  }
  *out += '}';
}

void AppendKey(std::string* out, const char* key) {
  AppendEscaped(out, key);
  *out += ':';
}

}  // namespace

std::vector<VpClassMetrics> AggregateVpClasses(const PartitionPlan* plan,
                                               const WalkStats& stats) {
  std::vector<VpClassMetrics> classes;
  if (plan == nullptr ||
      stats.vp_walker_steps.size() != plan->num_vps()) {
    return classes;
  }
  std::array<VpClassMetrics, 4> by_level{};
  uint64_t total = 0;
  for (uint32_t i = 0; i < plan->num_vps(); ++i) {
    uint8_t level = plan->vp(i).cache_level;
    if (level < 1 || level > 4) {
      level = 4;
    }
    VpClassMetrics& cls = by_level[level - 1];
    cls.cache_level = level;
    ++cls.vps;
    cls.walker_steps += stats.vp_walker_steps[i];
    total += stats.vp_walker_steps[i];
  }
  for (const VpClassMetrics& cls : by_level) {
    if (cls.vps == 0) {
      continue;
    }
    VpClassMetrics out = cls;
    out.walker_step_share =
        total == 0 ? 0.0
                   : static_cast<double>(cls.walker_steps) /
                         static_cast<double>(total);
    classes.push_back(out);
  }
  return classes;
}

std::string WalkMetricsJson(const MetricsMeta& meta, const WalkStats& stats,
                            const PartitionPlan* plan) {
  const std::string backend =
      stats.perf_backend.empty() ? "off" : stats.perf_backend;
  const double steps = static_cast<double>(
      stats.total_steps == 0 ? 1 : stats.total_steps);
  const CounterSample total = stats.counters.Total();

  std::string out;
  out.reserve(4096 + stats.step_records.size() * 512);
  out += '{';
  AppendKey(&out, "schema");
  out += "\"fm-metrics-v1\",";
  AppendKey(&out, "backend");
  AppendEscaped(&out, backend);
  out += ',';
  AppendKey(&out, "tool");
  AppendEscaped(&out, meta.tool);
  out += ',';
  AppendKey(&out, "graph");
  AppendEscaped(&out, meta.graph);
  out += ',';
  AppendKey(&out, "algorithm");
  AppendEscaped(&out, meta.algorithm);
  out += ',';
  AppendKey(&out, "seed");
  out += std::to_string(meta.seed);
  out += ',';
  AppendKey(&out, "threads");
  out += std::to_string(meta.threads);
  out += ',';

  // Run totals in wall-clock terms.
  AppendKey(&out, "run");
  out += '{';
  AppendKey(&out, "total_steps");
  out += std::to_string(stats.total_steps);
  out += ',';
  AppendKey(&out, "episodes");
  out += std::to_string(stats.episodes);
  out += ',';
  AppendKey(&out, "walker_density");
  out += NumberToJson(stats.walker_density);
  out += ',';
  AppendKey(&out, "shuffle_backend");
  AppendEscaped(&out, stats.shuffle_backend);
  out += ',';
  AppendKey(&out, "per_step_ns");
  out += NumberToJson(stats.PerStepNs());
  out += ',';
  // Step-interleaving: the ring depth the sample stage ran with and the
  // software prefetches issued per request type (src/core/interleave.h).
  AppendKey(&out, "interleave");
  out += '{';
  AppendKey(&out, "depth");
  out += std::to_string(stats.interleave_depth);
  out += ',';
  AppendKey(&out, "auto");
  out += stats.interleave_auto ? "true" : "false";
  out += ',';
  AppendKey(&out, "prefetch");
  out += '{';
  AppendKey(&out, "offsets");
  out += std::to_string(stats.prefetch.offsets);
  out += ',';
  AppendKey(&out, "alias");
  out += std::to_string(stats.prefetch.alias);
  out += ',';
  AppendKey(&out, "edges");
  out += std::to_string(stats.prefetch.edges);
  out += ',';
  AppendKey(&out, "shuffle");
  out += std::to_string(stats.prefetch.shuffle);
  out += ',';
  AppendKey(&out, "total");
  out += std::to_string(stats.prefetch.Total());
  out += "}},";
  AppendKey(&out, "seconds");
  out += '{';
  AppendKey(&out, "sample");
  out += NumberToJson(stats.times.sample_s);
  out += ',';
  AppendKey(&out, "shuffle");
  out += NumberToJson(stats.times.shuffle_s);
  out += ',';
  AppendKey(&out, "other");
  out += NumberToJson(stats.times.other_s);
  out += "}},";

  // Run-total counters per stage + derived rates.
  AppendKey(&out, "counters");
  out += '{';
  AppendKey(&out, "scatter");
  AppendCounterObject(&out, stats.counters.scatter);
  out += ',';
  AppendKey(&out, "sample");
  AppendCounterObject(&out, stats.counters.sample);
  out += ',';
  AppendKey(&out, "gather");
  AppendCounterObject(&out, stats.counters.gather);
  out += ',';
  AppendKey(&out, "derived");
  out += '{';
  AppendKey(&out, "ipc");
  out += NumberToJson(total.Ipc());
  out += ',';
  AppendKey(&out, "llc_miss_ratio");
  out += NumberToJson(total.LlcMissRatio());
  out += ',';
  AppendKey(&out, "cycles_per_step");
  out += NumberToJson(static_cast<double>(total.cycles()) / steps);
  out += ',';
  AppendKey(&out, "llc_misses_per_step");
  out += NumberToJson(static_cast<double>(total.llc_misses()) / steps);
  out += ',';
  AppendKey(&out, "l1d_misses_per_step");
  out += NumberToJson(static_cast<double>(total.l1d_misses()) / steps);
  out += "}},";

  // Sample-stage attribution per VP cache class.
  AppendKey(&out, "vp_classes");
  out += '[';
  bool first = true;
  for (const VpClassMetrics& cls : AggregateVpClasses(plan, stats)) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '{';
    AppendKey(&out, "cache_level");
    out += std::to_string(cls.cache_level);
    out += ',';
    AppendKey(&out, "vps");
    out += std::to_string(cls.vps);
    out += ',';
    AppendKey(&out, "walker_steps");
    out += std::to_string(cls.walker_steps);
    out += ',';
    AppendKey(&out, "walker_step_share");
    out += NumberToJson(cls.walker_step_share);
    out += '}';
  }
  out += "],";

  // One entry per (episode, step) when step records were kept.
  AppendKey(&out, "steps");
  out += '[';
  first = true;
  for (const StepStageRecord& rec : stats.step_records) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '{';
    AppendKey(&out, "episode");
    out += std::to_string(rec.episode);
    out += ',';
    AppendKey(&out, "step");
    out += std::to_string(rec.step);
    out += ',';
    AppendKey(&out, "scatter_s");
    out += NumberToJson(rec.scatter_s);
    out += ',';
    AppendKey(&out, "sample_s");
    out += NumberToJson(rec.sample_s);
    out += ',';
    AppendKey(&out, "gather_s");
    out += NumberToJson(rec.gather_s);
    out += ',';
    AppendKey(&out, "scatter_pass1_s");
    out += NumberToJson(rec.scatter_pass1_s);
    out += ',';
    AppendKey(&out, "scatter_pass2_s");
    out += NumberToJson(rec.scatter_pass2_s);
    out += ',';
    AppendKey(&out, "gather_pass1_s");
    out += NumberToJson(rec.gather_pass1_s);
    out += ',';
    AppendKey(&out, "gather_pass2_s");
    out += NumberToJson(rec.gather_pass2_s);
    out += ',';
    AppendKey(&out, "flushed_lines");
    out += std::to_string(rec.flushed_lines);
    out += ',';
    AppendKey(&out, "live_walkers");
    out += std::to_string(rec.live_walkers);
    out += ',';
    AppendKey(&out, "counters");
    out += '{';
    AppendKey(&out, "scatter");
    AppendCounterObject(&out, rec.scatter_counters);
    out += ',';
    AppendKey(&out, "sample");
    AppendCounterObject(&out, rec.sample_counters);
    out += ',';
    AppendKey(&out, "gather");
    AppendCounterObject(&out, rec.gather_counters);
    out += "}}";
  }
  out += "]}";
  return out;
}

bool WriteWalkMetricsJson(const std::string& path, const MetricsMeta& meta,
                          const WalkStats& stats, const PartitionPlan* plan) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << WalkMetricsJson(meta, stats, plan) << '\n';
  return static_cast<bool>(out);
}

void BenchTrajectory::Add(const std::string& series, const std::string& point,
                          double value, const std::string& unit) {
  points_.push_back(Point{series, point, value, unit});
}

void BenchTrajectory::AddCounters(const std::string& series,
                                  const CounterSample& sample) {
  counters_.push_back(CounterPoint{series, sample});
}

std::string BenchTrajectory::ToJson() const {
  std::string out;
  out += '{';
  AppendKey(&out, "schema");
  out += "\"fm-bench-trajectory-v1\",";
  AppendKey(&out, "bench");
  AppendEscaped(&out, bench_);
  out += ',';
  AppendKey(&out, "backend");
  AppendEscaped(&out, backend_);
  out += ',';
  AppendKey(&out, "points");
  out += '[';
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    const Point& p = points_[i];
    out += '{';
    AppendKey(&out, "series");
    AppendEscaped(&out, p.series);
    out += ',';
    AppendKey(&out, "point");
    AppendEscaped(&out, p.point);
    out += ',';
    AppendKey(&out, "value");
    out += NumberToJson(p.value);
    out += ',';
    AppendKey(&out, "unit");
    AppendEscaped(&out, p.unit);
    out += '}';
  }
  out += "],";
  AppendKey(&out, "counters");
  out += '[';
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += '{';
    AppendKey(&out, "series");
    AppendEscaped(&out, counters_[i].series);
    out += ',';
    AppendKey(&out, "sample");
    AppendCounterObject(&out, counters_[i].sample);
    out += '}';
  }
  out += "]}";
  return out;
}

bool BenchTrajectory::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToJson() << '\n';
  return static_cast<bool>(out);
}

}  // namespace fm
