#include "src/core/engine.h"

#include <algorithm>
#include <cstring>

#include "src/core/sample_stage.h"
#include "src/core/shuffle.h"
#include "src/graph/degree_sort.h"
#include "src/util/env.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace fm {
namespace {

// Vertex owning cumulative-edge position `pos` (degree-proportional placement:
// "initially placed by uniformly sampling among all edges", §3).
inline Vid VertexOfEdgePos(std::span<const Eid> offsets, Eid pos) {
  auto it = std::upper_bound(offsets.begin(), offsets.end(), pos);
  return static_cast<Vid>((it - offsets.begin()) - 1);
}

// Streaming-pass model for the shuffle stage under instrumentation: every cache
// line of the array is touched exactly once per pass, which is the shuffle's actual
// behaviour (sequential read of W; per-bin sequential write streams into SW whose
// lines are each written once). See engine.h / DESIGN.md §3.
void TouchStreaming(CacheHierarchy* sim, const void* data, size_t bytes) {
  uint64_t addr = reinterpret_cast<uint64_t>(data);
  for (uint64_t off = 0; off < bytes; off += kCacheLineBytes) {
    sim->Access(addr + off, 1);
  }
}

}  // namespace

FlashMobEngine::FlashMobEngine(const CsrGraph& graph, EngineOptions options)
    : graph_(graph), options_(options) {
  FM_CHECK_MSG(graph.num_vertices() > 0, "empty graph");
  FM_CHECK_MSG(IsDegreeSorted(graph),
               "FlashMobEngine requires a degree-sorted graph (use DegreeSort)");
  if (options_.pool == nullptr) {
    options_.pool = &ThreadPool::Global();
  }
  if (options_.plan.threads_sharing_l3 == 0) {
    options_.plan.threads_sharing_l3 = options_.pool->thread_count();
  }
  if (options_.cost_model == nullptr) {
    default_model_ = std::make_unique<AnalyticCostModel>(
        options_.plan.cache, LatencyModel{}, options_.plan.threads_sharing_l3);
    options_.cost_model = default_model_.get();
  }
  if (options_.dram_budget_bytes == 0) {
    options_.dram_budget_bytes =
        static_cast<uint64_t>(EnvInt64("FM_DRAM_MB", 4096)) * 1024 * 1024;
  }
}

FlashMobEngine::~FlashMobEngine() = default;

void FlashMobEngine::SetPlan(PartitionPlan plan) {
  FM_CHECK_MSG(plan.num_vertices() == graph_.num_vertices(),
               "injected plan does not tile this graph");
  plan_ = std::move(plan);
  plan_injected_ = true;
}

const PartitionPlan& FlashMobEngine::plan() const {
  FM_CHECK_MSG(plan_.has_value(), "no plan yet: call Run first or SetPlan");
  return *plan_;
}

Wid FlashMobEngine::EpisodeWalkers(const WalkSpec& spec) const {
  Wid total = spec.num_walkers != 0 ? spec.num_walkers : graph_.num_vertices();
  // Walker-state bytes per walker: all W_i rows when keeping paths, else the
  // rotating prev/cur/next triple; plus the SW scratch (and its aux for node2vec).
  uint64_t per_walker =
      spec.keep_paths ? (static_cast<uint64_t>(spec.steps) + 3) * sizeof(Vid)
                      : 6 * sizeof(Vid);
  if (spec.algorithm == WalkAlgorithm::kNode2Vec) {
    per_walker += 2 * sizeof(Vid);
  }
  Wid cap = std::max<Wid>(options_.dram_budget_bytes / per_walker, 1024);
  return std::min(total, cap);
}

void FlashMobEngine::EnsurePlan(const WalkSpec& spec, Wid episode_walkers) {
  if (plan_injected_ || plan_.has_value()) {
    return;
  }
  plan_ = PartitionPlan::BuildOptimized(graph_, episode_walkers,
                                        *options_.cost_model, options_.plan);
  (void)spec;
}

WalkResult FlashMobEngine::Run(const WalkSpec& spec) {
  NullMemHook hook;
  return RunImpl(spec, hook, /*single_thread=*/false);
}

WalkResult FlashMobEngine::RunInstrumented(const WalkSpec& spec,
                                           CacheHierarchy* sim) {
  CacheSimHook hook(sim);
  return RunImpl(spec, hook, /*single_thread=*/true);
}

template <typename Hook>
WalkResult FlashMobEngine::RunImpl(const WalkSpec& spec, Hook& hook,
                                   bool single_thread) {
  const Vid n = graph_.num_vertices();
  const Eid m = graph_.num_edges();
  const bool node2vec = spec.algorithm == WalkAlgorithm::kNode2Vec;
  FM_CHECK_MSG(spec.track_identity || !spec.keep_paths,
               "keep_paths requires track_identity (paths are per-walker)");
  FM_CHECK_MSG(!spec.use_edge_weights || graph_.weighted(),
               "use_edge_weights requires a weighted graph");
  FM_CHECK_MSG(!(spec.use_edge_weights &&
                 spec.algorithm != WalkAlgorithm::kDeepWalk),
               "edge weights are only supported for first-order uniform walks");
  if (spec.use_edge_weights && alias_tables_ == nullptr) {
    alias_tables_ = std::make_unique<VertexAliasTables>(graph_);
  }
  const VertexAliasTables* alias =
      spec.use_edge_weights ? alias_tables_.get() : nullptr;
  // Identity-free extension: drop the reverse shuffle; SW becomes the next W.
  const bool identity_free = !spec.track_identity;

  ThreadPool single_pool(1);
  ThreadPool* pool = single_thread ? &single_pool : options_.pool;

  Wid total_walkers = spec.num_walkers != 0 ? spec.num_walkers : n;
  Wid episode_cap = EpisodeWalkers(spec);

  WalkResult result;
  if (options_.count_visits) {
    result.visit_counts.assign(n, 0);
  }

  // Plan construction is pre-processing (excluded from walk-time accounting, as the
  // paper excludes its 0.04%-0.7% pre-processing overhead from per-step times).
  EnsurePlan(spec, std::min(total_walkers, episode_cap));

  Timer other_timer;
  Shuffler shuffler(&*plan_, pool);
  PresampleBuffers presample(graph_, *plan_);
  const uint32_t num_vps = plan_->num_vps();
  result.stats.vp_walker_steps.assign(num_vps, 0);
  result.stats.walker_density =
      static_cast<double>(std::min(total_walkers, episode_cap)) /
      std::max<double>(1.0, static_cast<double>(m));
  result.stats.times.other_s += other_timer.Elapsed();

  Wid remaining = total_walkers;
  uint64_t episode = 0;
  while (remaining > 0) {
    Wid w = std::min(remaining, episode_cap);
    remaining -= w;

    other_timer.Start();
    // Episode walker storage. With keep_paths the PathSet rows are the W_i arrays;
    // otherwise three rotating rows.
    PathSet paths(spec.keep_paths ? w : 0, spec.keep_paths ? spec.steps : 0);
    std::vector<Vid> rot_a, rot_b, rot_c;
    if (!spec.keep_paths) {
      rot_a.resize(w);
      rot_b.resize(w);
      if (node2vec) {
        if (identity_free) {
          // rot_b carries predecessors alongside rot_a; first step has none.
          std::fill(rot_b.begin(), rot_b.end(), kInvalidVid);
        } else {
          rot_c.resize(w);
        }
      }
    }
    std::vector<Vid> sw(w);
    std::vector<Vid> sw_prev(node2vec ? w : 0);

    Vid* w_cur = spec.keep_paths ? paths.Row(0).data() : rot_a.data();
    if (!spec.start_vertices.empty()) {
      // Seeded placement: walker j (global index, consistent across episodes)
      // starts at start_vertices[j % size()].
      const Wid base = total_walkers - (remaining + w);
      const auto& starts = spec.start_vertices;
      for (Vid v : starts) {
        FM_CHECK_MSG(v < n, "start vertex out of range");
      }
      pool->ParallelChunks(w, [&](uint64_t begin, uint64_t end, uint32_t) {
        for (Wid j = begin; j < end; ++j) {
          w_cur[j] = starts[(base + j) % starts.size()];
        }
      });
    } else {
    // Degree-proportional initial placement ("uniformly sampling among all edges",
    // §3). Walker j draws a jittered edge position within its own 1/w slice of the
    // edge array; positions are monotone in j, so one sequential sweep of the CSR
    // offsets resolves every owner — O(1) per walker, no binary searches. The
    // aggregate marginal distribution over edges is exactly uniform.
    pool->ParallelChunks(w, [&](uint64_t begin, uint64_t end, uint32_t) {
      XorShiftRng rng(DeriveSeed(spec.seed, 0x1A17ULL ^ (episode << 20) ^ begin));
      if (m == 0) {
        for (Wid j = begin; j < end; ++j) {
          w_cur[j] = static_cast<Vid>(rng.NextBounded(n));
        }
        return;
      }
      double edges_per_walker = static_cast<double>(m) / static_cast<double>(w);
      Eid pos0 = static_cast<Eid>(static_cast<double>(begin) * edges_per_walker);
      Vid v = VertexOfEdgePos(graph_.offsets(), std::min<Eid>(pos0, m - 1));
      const Eid* offsets = graph_.offsets().data();
      for (Wid j = begin; j < end; ++j) {
        Eid pos = static_cast<Eid>(
            (static_cast<double>(j) + rng.NextDouble()) * edges_per_walker);
        pos = std::min<Eid>(pos, m - 1);
        while (offsets[v + 1] <= pos) {
          ++v;
        }
        w_cur[j] = v;
      }
    });
    }
    if constexpr (Hook::kEnabled) {
      TouchStreaming(hook.sim(), w_cur, w * sizeof(Vid));
    }
    if (options_.count_visits && !spec.keep_paths) {
      for (Wid j = 0; j < w; ++j) {
        ++result.visit_counts[w_cur[j]];
      }
    }
    // Note: pre-sample buffers deliberately persist across episodes — leftover
    // samples are still i.i.d. draws, and discarding them would waste the refill
    // work (they start empty via the constructor).
    result.stats.times.other_s += other_timer.Elapsed();

    Vid* w_prev = nullptr;  // W_{i-1} (node2vec predecessor source)
    // Rotation targets when rows are not kept: `free_buf` receives the next gather;
    // after the step the oldest row becomes free.
    Vid* free_buf = spec.keep_paths ? nullptr : rot_b.data();
    Vid* free_buf2 = (!spec.keep_paths && node2vec) ? rot_c.data() : nullptr;
    for (uint32_t step = 0; step < spec.steps; ++step) {
      // ---- shuffle: W_i -> SW --------------------------------------------------
      Timer shuffle_timer;
      const Vid* aux =
          node2vec ? (identity_free ? rot_b.data() : w_prev) : nullptr;
      shuffler.Scatter(w_cur, aux, w, sw.data(),
                       aux != nullptr ? sw_prev.data() : nullptr);
      // Walker-count conservation: the scatter must account for every walker
      // (live ones in VP chunks, dead ones in the trailing bin) — losing or
      // duplicating one here silently corrupts identity for the whole episode.
      FM_DCHECK_EQ(shuffler.vp_offsets().back(), w);
      FM_DCHECK_EQ(
          static_cast<Wid>(std::count(w_cur, w_cur + w, kInvalidVid)),
          shuffler.dead_count());
      if (node2vec && aux == nullptr) {
        // First step of an identity-tracked node2vec episode: no predecessors yet;
        // the kernel treats kInvalidVid as "take a uniform first-order step".
        std::fill(sw_prev.begin(), sw_prev.end(), kInvalidVid);
      }
      if constexpr (Hook::kEnabled) {
        // Two passes over W (count + scatter), one over SW; aux doubles both.
        CacheHierarchy* sim = hook.sim();
        TouchStreaming(sim, w_cur, w * sizeof(Vid));
        TouchStreaming(sim, w_cur, w * sizeof(Vid));
        TouchStreaming(sim, sw.data(), w * sizeof(Vid));
      }
      result.stats.times.shuffle_s += shuffle_timer.Elapsed();

      // ---- sample: one task per VP --------------------------------------------
      Timer sample_timer;
      const auto& vp_offsets = shuffler.vp_offsets();
      pool->ParallelFor(num_vps, [&](uint64_t vp_i, uint32_t) {
        Wid begin = vp_offsets[vp_i];
        Wid end = vp_offsets[vp_i + 1];
        if (begin == end) {
          return;
        }
        XorShiftRng rng(DeriveSeed(
            spec.seed, 0x5A3FULL ^ (episode << 44) ^
                           (static_cast<uint64_t>(step) << 24) ^ vp_i));
        const VertexPartition& vp = plan_->vp(static_cast<uint32_t>(vp_i));
        if (node2vec) {
          SampleVpNode2Vec(graph_, vp, spec.node2vec, sw.data() + begin,
                           sw_prev.data() + begin, end - begin,
                           spec.stop_probability, identity_free, rng, hook);
        } else if (spec.algorithm == WalkAlgorithm::kMetropolisHastings) {
          SampleVpMetropolis(graph_, sw.data() + begin, end - begin,
                             spec.stop_probability, rng, hook);
        } else {
          SampleVpFirstOrder(graph_, static_cast<uint32_t>(vp_i), vp, &presample,
                             sw.data() + begin, end - begin,
                             spec.stop_probability, alias, rng, hook);
        }
        result.stats.vp_walker_steps[vp_i] += end - begin;
      });
      result.stats.total_steps += vp_offsets[num_vps] - vp_offsets[0];
      result.stats.times.sample_s += sample_timer.Elapsed();

      if (identity_free) {
        // Extension: no reverse shuffle. The sampled SW (and, for node2vec, the
        // kernel-updated predecessor stream) simply becomes the next walker array;
        // identity is lost but every aggregate statistic is preserved.
        other_timer.Start();
        if (options_.count_visits) {
          for (Vid v : sw) {
            if (v != kInvalidVid) {
              ++result.visit_counts[v];
            }
          }
        }
        std::swap(rot_a, sw);
        w_cur = rot_a.data();
        if (node2vec) {
          std::swap(rot_b, sw_prev);
        }
        result.stats.times.other_s += other_timer.Elapsed();
        continue;
      }

      // ---- reverse shuffle: SW -> W_{i+1} --------------------------------------
      shuffle_timer.Start();
      Vid* w_next = spec.keep_paths ? paths.Row(step + 1).data() : free_buf;
      shuffler.Gather(w_cur, w, sw.data(), w_next, nullptr, nullptr);
      // Dead-walker monotonicity: the gather delivers every walker the scatter
      // parked dead, plus any the sample stage just killed — the dead population
      // can only grow (a dead walker never resurrects).
      FM_DCHECK_GE(
          static_cast<Wid>(std::count(w_next, w_next + w, kInvalidVid)),
          shuffler.dead_count());
      if constexpr (Hook::kEnabled) {
        CacheHierarchy* sim = hook.sim();
        TouchStreaming(sim, w_cur, w * sizeof(Vid));
        TouchStreaming(sim, sw.data(), w * sizeof(Vid));
        TouchStreaming(sim, w_next, w * sizeof(Vid));
      }
      result.stats.times.shuffle_s += shuffle_timer.Elapsed();

      other_timer.Start();
      if (options_.count_visits && !spec.keep_paths) {
        for (Wid j = 0; j < w; ++j) {
          if (w_next[j] != kInvalidVid) {
            ++result.visit_counts[w_next[j]];
          }
        }
      }
      // Rotate rows: prev <- cur <- next; the oldest buffer becomes free.
      if (spec.keep_paths) {
        w_prev = w_cur;
        w_cur = w_next;
      } else if (node2vec) {
        Vid* old_prev = w_prev;
        w_prev = w_cur;
        w_cur = w_next;
        free_buf = (old_prev != nullptr) ? old_prev : free_buf2;
      } else {
        free_buf = w_cur;
        w_cur = w_next;
      }
      result.stats.times.other_s += other_timer.Elapsed();
    }

    other_timer.Start();
    if (spec.keep_paths) {
      if (options_.count_visits) {
        for (uint32_t s = 0; s <= spec.steps; ++s) {
          for (Vid v : paths.Row(s)) {
            if (v != kInvalidVid) {
              ++result.visit_counts[v];
            }
          }
        }
      }
      result.paths.Append(std::move(paths));
    }
    ++result.stats.episodes;
    result.stats.times.other_s += other_timer.Elapsed();
    ++episode;
  }
  return result;
}

}  // namespace fm
