#include "src/core/engine.h"

#include <algorithm>
#include <optional>

#include "src/core/shuffle.h"
#include "src/core/step_kernel.h"
#include "src/core/walk_observer.h"
#include "src/core/walker_state.h"
#include "src/graph/degree_sort.h"
#include "src/util/env.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/telemetry.h"
#include "src/util/timer.h"
#include "src/util/trace.h"

namespace fm {
namespace {

// Streaming-pass model for placement under instrumentation: every cache line
// of the array is touched exactly once. (The shuffle stage itself is no longer
// modeled this way — each backend replays its real access pattern through
// Shuffler::SimulateScatter/SimulateGather.)
void TouchStreaming(CacheHierarchy* sim, const void* data, size_t bytes) {
  uint64_t addr = reinterpret_cast<uint64_t>(data);
  for (uint64_t off = 0; off < bytes; off += kCacheLineBytes) {
    sim->Access(addr + off, 1);
  }
}

// Folds (after - before) of the sim counters into *acc — the shuffle-stage
// attribution WalkStats::sim_shuffle reports for instrumented runs.
void AccumulateSimDelta(const CacheCounters& before, const CacheCounters& after,
                        CacheCounters* acc) {
  acc->accesses += after.accesses - before.accesses;
  for (int i = 0; i < 4; ++i) {
    acc->hits[i] += after.hits[i] - before.hits[i];
  }
  for (int i = 0; i < 3; ++i) {
    acc->misses[i] += after.misses[i] - before.misses[i];
  }
  acc->dram_lines += after.dram_lines - before.dram_lines;
}

uint64_t SecondsToNs(double s) {
  return s <= 0 ? 0 : static_cast<uint64_t>(s * 1e9);
}

// Cached telemetry instruments for the engine's stage barriers. Looked up once
// per Run (registry lookups take a mutex); published only from the calling
// thread at barrier points, from the same Timer reads and counters that feed
// WalkStats — so fm-metrics-v1 output is bit-identical with telemetry wired.
struct EngineTelemetry {
  telemetry::Counter& walker_steps;
  telemetry::Counter& episodes;
  telemetry::Counter& scatter_ns;
  telemetry::Counter& sample_ns;
  telemetry::Counter& gather_ns;
  telemetry::Gauge& live_walkers;
  telemetry::Histogram& step_ns;

  static EngineTelemetry Make() {
    auto& reg = telemetry::TelemetryRegistry::Get();
    return EngineTelemetry{
        reg.CounterRef("fm.engine.walker_steps_total"),
        reg.CounterRef("fm.engine.episodes_total"),
        reg.CounterRef("fm.engine.scatter_ns_total"),
        reg.CounterRef("fm.engine.sample_ns_total"),
        reg.CounterRef("fm.engine.gather_ns_total"),
        reg.GaugeRef("fm.engine.live_walkers"),
        reg.HistogramRef("fm.engine.step_ns"),
    };
  }
};

}  // namespace

FlashMobEngine::FlashMobEngine(const CsrGraph& graph, EngineOptions options)
    : graph_(graph), options_(options) {
  FM_CHECK_MSG(graph.num_vertices() > 0, "empty graph");
  FM_CHECK_MSG(IsDegreeSorted(graph),
               "FlashMobEngine requires a degree-sorted graph (use DegreeSort)");
  if (options_.pool == nullptr) {
    options_.pool = &ThreadPool::Global();
  }
  if (options_.plan.threads_sharing_l3 == 0) {
    options_.plan.threads_sharing_l3 = options_.pool->thread_count();
  }
  if (options_.cost_model == nullptr) {
    default_model_ = std::make_unique<AnalyticCostModel>(
        options_.plan.cache, LatencyModel{}, options_.plan.threads_sharing_l3);
    options_.cost_model = default_model_.get();
  }
  if (options_.dram_budget_bytes == 0) {
    options_.dram_budget_bytes =
        static_cast<uint64_t>(EnvInt64("FM_DRAM_MB", 4096)) * 1024 * 1024;
  }
}

FlashMobEngine::~FlashMobEngine() = default;

void FlashMobEngine::SetPlan(PartitionPlan plan) {
  FM_CHECK_MSG(plan.num_vertices() == graph_.num_vertices(),
               "injected plan does not tile this graph");
  plan_ = std::move(plan);
  plan_injected_ = true;
}

const PartitionPlan& FlashMobEngine::plan() const {
  FM_CHECK_MSG(plan_.has_value(), "no plan yet: call Run first or SetPlan");
  return *plan_;
}

Wid FlashMobEngine::EpisodeWalkers(const WalkSpec& spec) const {
  return EpisodeCapacity(spec, options_.dram_budget_bytes,
                         graph_.num_vertices());
}

void FlashMobEngine::EnsurePlan(const WalkSpec& spec, Wid episode_walkers) {
  if (plan_injected_ || plan_.has_value()) {
    return;
  }
  plan_ = PartitionPlan::BuildOptimized(graph_, episode_walkers,
                                        *options_.cost_model, options_.plan);
  (void)spec;
}

WalkResult FlashMobEngine::Run(const WalkSpec& spec) {
  return Run(spec, {});
}

WalkResult FlashMobEngine::Run(const WalkSpec& spec,
                               const std::vector<WalkObserver*>& observers) {
  NullMemHook hook;
  return RunImpl(spec, hook, /*single_thread=*/false, observers);
}

WalkResult FlashMobEngine::RunInstrumented(const WalkSpec& spec,
                                           CacheHierarchy* sim) {
  return RunInstrumented(spec, sim, {});
}

WalkResult FlashMobEngine::RunInstrumented(
    const WalkSpec& spec, CacheHierarchy* sim,
    const std::vector<WalkObserver*>& observers) {
  CacheSimHook hook(sim);
  return RunImpl(spec, hook, /*single_thread=*/true, observers);
}

template <typename Hook>
WalkResult FlashMobEngine::RunImpl(
    const WalkSpec& spec, Hook& hook, bool single_thread,
    const std::vector<WalkObserver*>& observers) {
  const Vid n = graph_.num_vertices();
  const Eid m = graph_.num_edges();
  FM_CHECK_MSG(spec.track_identity || !spec.keep_paths,
               "keep_paths requires track_identity (paths are per-walker)");
  FM_CHECK_MSG(!spec.use_edge_weights || graph_.weighted(),
               "use_edge_weights requires a weighted graph");
  FM_CHECK_MSG(!(spec.use_edge_weights &&
                 spec.algorithm != WalkAlgorithm::kDeepWalk),
               "edge weights are only supported for first-order uniform walks");
  for (Vid v : spec.start_vertices) {
    FM_CHECK_MSG(v < n, "start vertex out of range");
  }
  if (spec.use_edge_weights && alias_tables_ == nullptr) {
    alias_tables_ = std::make_unique<VertexAliasTables>(graph_);
  }
  const VertexAliasTables* alias =
      spec.use_edge_weights ? alias_tables_.get() : nullptr;
  // Identity-free extension: drop the reverse shuffle; SW becomes the next W.
  const bool identity_free = !spec.track_identity;

  ThreadPool single_pool(1);
  ThreadPool* pool = single_thread ? &single_pool : options_.pool;

  Wid total_walkers = spec.num_walkers != 0 ? spec.num_walkers : n;
  Wid episode_cap = EpisodeWalkers(spec);

  WalkResult result;

  // Sink list = caller's observers plus the engine's own visit counter; the
  // counting rides inside the same parallel stages as any external sink.
  std::vector<WalkObserver*> sinks(observers.begin(), observers.end());
  std::optional<ShardedVisitCounter> counter;
  if (options_.count_visits) {
    counter.emplace(n);
    sinks.push_back(&*counter);
  }
  std::vector<WalkObserver*> walker_sinks;
  for (WalkObserver* sink : sinks) {
    if (sink->WantsWalkerChunks()) {
      walker_sinks.push_back(sink);
    }
  }
  FM_CHECK_MSG(walker_sinks.empty() || spec.track_identity,
               "walker-order observers require track_identity");

  // Plan construction is pre-processing (excluded from walk-time accounting, as the
  // paper excludes its 0.04%-0.7% pre-processing overhead from per-step times).
  EnsurePlan(spec, std::min(total_walkers, episode_cap));

  // Per-stage hardware counters: one group per pool thread, read at the stage
  // barriers (stages are barrier-synchronized, so the delta between reads is
  // exactly the stage's work across all threads). Opens lazily per Run so the
  // monitor covers this run's pool, including the single-threaded variant.
  std::optional<StagePerfMonitor> perf;
  if (options_.collect_counters) {
    perf.emplace(pool->WorkerSystemTids());
    result.stats.perf_backend = perf->backend();
  }
  CounterSample perf_cursor;
  if (perf.has_value()) {
    perf_cursor = perf->ReadTotal();
  }
  // Advances the cursor and returns the counter delta since the last call.
  auto perf_delta = [&]() -> CounterSample {
    if (!perf.has_value()) {
      return {};
    }
    CounterSample now = perf->ReadTotal();
    CounterSample delta = now - perf_cursor;
    perf_cursor = now;
    return delta;
  };

  EngineTelemetry tm = EngineTelemetry::Make();

  Timer other_timer;
  // Shuffle backend: geometry and the auto recommendation come from the
  // ShufflePlan computed against the same cache model as the partition plan.
  const ShufflePlan shuffle_plan =
      BuildShufflePlan(*plan_, graph_, std::min(total_walkers, episode_cap),
                       options_.plan.cache, pool->thread_count());
  // Sample-stage interleave depth: resolved once per Run against the same
  // cache geometry (auto = fill-buffer model). The cache simulation models the
  // demand-access pattern only — prefetch hints are not simulated — so
  // instrumented runs pin the ring to depth 1 to keep sim results comparable.
  const InterleavePlan interleave_plan =
      BuildInterleavePlan(options_.interleave_depth, options_.plan.cache);
  const uint32_t ring_depth = Hook::kEnabled ? 1 : interleave_plan.depth;
  result.stats.interleave_depth = ring_depth;
  result.stats.interleave_auto = interleave_plan.from_auto;
  ShuffleConfig shuffle_config;
  shuffle_config.kind = options_.shuffle_backend;
  shuffle_config.shuffle_plan = &shuffle_plan;
  // The shuffle's scatter/gather destination prefetch rides the same knob:
  // depth 1 (sequential sampling) also turns the look-ahead off.
  shuffle_config.prefetch_lookahead = ring_depth <= 1 ? 0 : ring_depth;
  Shuffler shuffler(&*plan_, pool, shuffle_config);
  result.stats.shuffle_backend = shuffler.backend_name();
  // Per-worker prefetch-issue shards, folded once per VP task (never inside
  // the ring) and merged into WalkStats at the end of the run.
  std::vector<InterleaveStats> prefetch_shards(pool->thread_count());
  PresampleBuffers presample(graph_, *plan_);
  StepKernel<Hook> kernel(graph_, spec, *plan_, &presample, alias);
  const uint32_t num_vps = plan_->num_vps();
  result.stats.vp_walker_steps.assign(num_vps, 0);
  const uint64_t num_episodes =
      (total_walkers + episode_cap - 1) / std::max<Wid>(episode_cap, 1);
  result.stats.walker_density =
      (static_cast<double>(total_walkers) /
       static_cast<double>(std::max<uint64_t>(num_episodes, 1))) /
      std::max<double>(1.0, static_cast<double>(m));

  WalkRunInfo run_info;
  run_info.num_vertices = n;
  run_info.steps = spec.steps;
  run_info.total_walkers = total_walkers;
  run_info.num_workers = pool->thread_count();
  run_info.num_vps = num_vps;
  run_info.pool = pool;
  for (WalkObserver* sink : sinks) {
    sink->OnRunBegin(run_info);
  }
  if (options_.progress != nullptr) {
    options_.progress->OnRunBegin(num_episodes, spec.steps, total_walkers);
  }
  result.stats.times.other_s += other_timer.Elapsed();

  Wid remaining = total_walkers;
  uint64_t episode = 0;
  while (remaining > 0) {
    Wid w = std::min(remaining, episode_cap);
    const Wid base_walker = total_walkers - remaining;
    remaining -= w;

    TraceSpan episode_span("engine", "episode");
    episode_span.Arg("episode", episode);
    episode_span.Arg("walkers", w);

    // ---- place: walker storage + initial positions ---------------------------
    other_timer.Start();
    WalkerState state(graph_, spec, w);
    shuffler.AttachArena(state.shuffle_arena());
    for (WalkObserver* sink : sinks) {
      sink->OnEpisodeBegin(episode, w, base_walker);
    }
    state.Place(pool, episode, base_walker, sinks);
    if constexpr (Hook::kEnabled) {
      TouchStreaming(hook.sim(), state.cur(), w * sizeof(Vid));
    }
    // Note: pre-sample buffers deliberately persist across episodes — leftover
    // samples are still i.i.d. draws, and discarding them would waste the refill
    // work (they start empty via the constructor).
    result.stats.times.other_s += other_timer.Elapsed();

    for (uint32_t step = 0; step < spec.steps; ++step) {
      // ---- shuffle: W_i -> SW --------------------------------------------------
      if (perf.has_value()) {
        perf_delta();  // drop inter-stage work from the scatter attribution
      }
      double scatter_s = 0;
      {
        TraceSpan span("engine", "scatter");
        span.Arg("step", step);
        span.Arg("walkers", w);
        Timer shuffle_timer;
        const Vid* aux = state.scatter_aux();
        shuffler.Scatter(state.cur(), aux, w, state.sw(),
                         aux != nullptr ? state.sw_prev() : nullptr);
        // Walker-count conservation: the scatter must account for every walker
        // (live ones in VP chunks, dead ones in the trailing bin) — losing or
        // duplicating one here silently corrupts identity for the whole
        // episode.
        FM_DCHECK_EQ(shuffler.vp_offsets().back(), w);
        FM_DCHECK_EQ(
            static_cast<Wid>(std::count(state.cur(), state.cur() + w,
                                        kInvalidVid)),
            shuffler.dead_count());
        state.AfterScatter(aux);
        if constexpr (Hook::kEnabled) {
          // Replay the backend's real access pattern (count pass, buffer
          // appends / direct scatter, SW writes) through the hierarchy.
          CacheHierarchy* sim = hook.sim();
          const CacheCounters before = sim->counters();
          shuffler.SimulateScatter(
              state.cur(), aux, w, state.sw(),
              aux != nullptr ? state.sw_prev() : nullptr,
              [sim](const void* p, uint32_t bytes) {
                sim->Access(reinterpret_cast<uint64_t>(p), bytes);
              });
          AccumulateSimDelta(before, sim->counters(),
                             &result.stats.sim_shuffle);
        }
        scatter_s = shuffle_timer.Elapsed();
      }
      result.stats.times.shuffle_s += scatter_s;
      result.stats.prefetch.shuffle +=
          shuffler.last_scatter_stats().prefetch_issues;
      tm.scatter_ns.Add(SecondsToNs(scatter_s));
      const CounterSample scatter_counters = perf_delta();
      result.stats.counters.scatter += scatter_counters;

      // ---- sample: one task per VP --------------------------------------------
      const auto& vp_offsets = shuffler.vp_offsets();
      const Wid live_walkers = vp_offsets[num_vps] - vp_offsets[0];
      double sample_s = 0;
      {
        TraceSpan span("engine", "sample");
        span.Arg("step", step);
        span.Arg("live", live_walkers);
        Timer sample_timer;
        Vid* sw = state.sw();
        Vid* sw_prev = state.sw_prev();
        pool->ParallelFor(num_vps, [&](uint64_t vp_i, uint32_t worker) {
          Wid begin = vp_offsets[vp_i];
          Wid end = vp_offsets[vp_i + 1];
          if (begin == end) {
            return;
          }
          TraceSpan vp_span("engine.vp", "sample_vp");
          vp_span.Arg("step", step);
          vp_span.Arg("vp", vp_i);
          vp_span.Arg("walkers", end - begin);
          const uint64_t chunk_seed = DeriveSeed(
              spec.seed, 0x5A3FULL ^ (episode << 44) ^
                             (static_cast<uint64_t>(step) << 24) ^ vp_i);
          kernel.SampleVp(static_cast<uint32_t>(vp_i), sw + begin,
                          sw_prev != nullptr ? sw_prev + begin : nullptr,
                          end - begin, spec.stop_probability, chunk_seed,
                          ring_depth, hook, &prefetch_shards[worker]);
          std::span<const Vid> chunk(sw + begin, end - begin);
          for (WalkObserver* sink : sinks) {
            sink->OnSampleChunk(step, static_cast<uint32_t>(vp_i), chunk,
                                worker);
          }
          result.stats.vp_walker_steps[vp_i] += end - begin;
        });
        sample_s = sample_timer.Elapsed();
      }
      result.stats.total_steps += live_walkers;
      result.stats.times.sample_s += sample_s;
      tm.walker_steps.Add(live_walkers);
      tm.live_walkers.Set(static_cast<int64_t>(live_walkers));
      tm.sample_ns.Add(SecondsToNs(sample_s));
      const CounterSample sample_counters = perf_delta();
      result.stats.counters.sample += sample_counters;

      double gather_s = 0;
      CounterSample gather_counters;
      if (identity_free) {
        // Extension: no reverse shuffle. The sampled SW (and, for node2vec, the
        // kernel-updated predecessor stream) simply becomes the next walker array;
        // identity is lost but every aggregate statistic is preserved.
        other_timer.Start();
        state.AdvanceIdentityFree();
        result.stats.times.other_s += other_timer.Elapsed();
      } else {
        // ---- reverse shuffle: SW -> W_{i+1} ------------------------------------
        Vid* w_next = nullptr;
        {
          TraceSpan span("engine", "gather");
          span.Arg("step", step);
          span.Arg("live", live_walkers);
          Timer gather_timer;
          w_next = state.GatherTarget(step);
          const Status gather_status = shuffler.Gather(
              state.cur(), w, state.sw(), w_next, nullptr, nullptr);
          FM_CHECK_MSG(gather_status.ok(), gather_status.message().c_str());
          // Dead-walker monotonicity: the gather delivers every walker the
          // scatter parked dead, plus any the sample stage just killed — the
          // dead population can only grow (a dead walker never resurrects).
          FM_DCHECK_GE(
              static_cast<Wid>(std::count(w_next, w_next + w, kInvalidVid)),
              shuffler.dead_count());
          if constexpr (Hook::kEnabled) {
            CacheHierarchy* sim = hook.sim();
            const CacheCounters before = sim->counters();
            shuffler.SimulateGather(state.cur(), w, state.sw(), nullptr,
                                    w_next, nullptr,
                                    [sim](const void* p, uint32_t bytes) {
                                      sim->Access(
                                          reinterpret_cast<uint64_t>(p), bytes);
                                    });
            AccumulateSimDelta(before, sim->counters(),
                               &result.stats.sim_shuffle);
          }
          gather_s = gather_timer.Elapsed();
        }
        result.stats.times.shuffle_s += gather_s;
        result.stats.prefetch.shuffle +=
            shuffler.last_gather_stats().prefetch_issues;
        tm.gather_ns.Add(SecondsToNs(gather_s));
        gather_counters = perf_delta();
        result.stats.counters.gather += gather_counters;

        other_timer.Start();
        if (!walker_sinks.empty()) {
          // Extra walker-order pass for sinks that asked for it.
          pool->ParallelChunks(
              w, [&](uint64_t begin, uint64_t end, uint32_t worker) {
                std::span<const Vid> chunk(w_next + begin, end - begin);
                for (WalkObserver* sink : walker_sinks) {
                  sink->OnWalkerChunk(step, static_cast<Wid>(begin), chunk,
                                      worker);
                }
              });
        }
        state.AdvanceTracked(step);
        result.stats.times.other_s += other_timer.Elapsed();
      }

      if (options_.record_step_stats) {
        StepStageRecord rec;
        rec.episode = episode;
        rec.step = step;
        rec.scatter_s = scatter_s;
        rec.sample_s = sample_s;
        rec.gather_s = gather_s;
        const ShuffleOpStats& sstats = shuffler.last_scatter_stats();
        rec.scatter_pass1_s = sstats.pass1_s;
        rec.scatter_pass2_s = sstats.pass2_s;
        rec.flushed_lines = sstats.flushed_lines;
        if (!identity_free) {
          const ShuffleOpStats& gstats = shuffler.last_gather_stats();
          rec.gather_pass1_s = gstats.pass1_s;
          rec.gather_pass2_s = gstats.pass2_s;
        }
        rec.live_walkers = live_walkers;
        rec.vp_walkers.resize(num_vps);
        for (uint32_t i = 0; i < num_vps; ++i) {
          rec.vp_walkers[i] = vp_offsets[i + 1] - vp_offsets[i];
        }
        rec.scatter_counters = scatter_counters;
        rec.sample_counters = sample_counters;
        rec.gather_counters = gather_counters;
        result.stats.step_records.push_back(std::move(rec));
      }
      tm.step_ns.Observe(SecondsToNs(scatter_s + sample_s + gather_s));
      // Heartbeat: every stage above is barrier-synchronized, so this point is
      // a consistent end-of-step snapshot on the calling thread.
      if (options_.progress != nullptr) {
        options_.progress->OnStep(episode, step, live_walkers, live_walkers);
      }
    }

    other_timer.Start();
    if (spec.keep_paths) {
      result.paths.Append(state.TakePaths());
    }
    for (WalkObserver* sink : sinks) {
      sink->OnEpisodeEnd(episode);
    }
    ++result.stats.episodes;
    tm.episodes.Add(1);
    result.stats.times.other_s += other_timer.Elapsed();
    ++episode;
  }

  other_timer.Start();
  for (const InterleaveStats& shard : prefetch_shards) {
    result.stats.prefetch += shard;
  }
  // Interleave prefetch counters: per-worker shards were already folded into
  // WalkStats above; publish the identical run totals so the JSONL tail agrees
  // with fm-metrics-v1 to the digit.
  {
    auto& reg = telemetry::TelemetryRegistry::Get();
    reg.CounterRef("fm.interleave.prefetch_offsets_total")
        .Add(result.stats.prefetch.offsets);
    reg.CounterRef("fm.interleave.prefetch_alias_total")
        .Add(result.stats.prefetch.alias);
    reg.CounterRef("fm.interleave.prefetch_edges_total")
        .Add(result.stats.prefetch.edges);
    reg.CounterRef("fm.interleave.prefetch_shuffle_total")
        .Add(result.stats.prefetch.shuffle);
  }
  tm.live_walkers.Set(0);  // every walker is retired once the loop exits
  for (WalkObserver* sink : sinks) {
    sink->OnRunEnd();
  }
  if (counter.has_value()) {
    result.visit_counts = counter->TakeCounts();
  }
  if (options_.progress != nullptr) {
    options_.progress->OnRunEnd();
  }
  result.stats.times.other_s += other_timer.Elapsed();
  return result;
}

}  // namespace fm
