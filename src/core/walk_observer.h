// Streaming WalkObserver sinks — the engine's consumer-facing layer.
//
// Observers receive walker positions *inside* the engine's parallel stages, as
// they are produced, instead of scanning materialized outputs afterwards:
//
//   OnPlacementChunk  inside the parallel placement loop (walker order, row 0)
//   OnSampleChunk     inside the per-VP sample tasks, right after the kernel
//                     (partition order, post-step positions, fresh kills are
//                     kInvalidVid; the dead bin is never delivered)
//   OnWalkerChunk     after the reverse shuffle, in walker order (only for
//                     observers that return WantsWalkerChunks() — costs one
//                     extra parallel pass per step and requires track_identity)
//
// Thread-safety contract: the chunk callbacks above run concurrently on worker
// threads; a single callback invocation only ever covers a range no other
// concurrent invocation covers, and `worker` < WalkRunInfo::num_workers is a
// stable shard key (ParallelChunks pins chunk i to worker i; sample tasks are
// dynamically scheduled, so per-worker state must be order-independent).
// OnRunBegin / OnEpisodeBegin / OnEpisodeEnd / OnRunEnd are serial and
// happen-before / happen-after all parallel callbacks of their scope; episode
// merges belong in OnEpisodeEnd. See DESIGN.md "Engine layering".
#ifndef SRC_CORE_WALK_OBSERVER_H_
#define SRC_CORE_WALK_OBSERVER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/path_set.h"
#include "src/util/types.h"

namespace fm {

class ThreadPool;

// Immutable per-run facts handed to every observer before the first episode.
// `pool` stays valid for the whole run but may only be used from the serial
// callbacks (it is the engine's own pool — never submit to it from inside a
// parallel chunk callback).
struct WalkRunInfo {
  Vid num_vertices = 0;
  uint32_t steps = 0;
  Wid total_walkers = 0;
  uint32_t num_workers = 1;  // shard-array size for per-thread accumulation
  uint32_t num_vps = 0;
  ThreadPool* pool = nullptr;
};

class WalkObserver {
 public:
  virtual ~WalkObserver() = default;

  // Serial, once per Run, before any episode.
  virtual void OnRunBegin(const WalkRunInfo& info) { (void)info; }

  // Serial, before the episode's parallel placement. `base_walker` is the
  // global index of the episode's first walker (chunk callbacks report
  // episode-local offsets; add base_walker for run-global walker ids).
  virtual void OnEpisodeBegin(uint64_t episode, Wid walkers, Wid base_walker) {
    (void)episode;
    (void)walkers;
    (void)base_walker;
  }

  // Parallel. positions[i] is the start vertex of episode-local walker
  // begin + i (never kInvalidVid).
  virtual void OnPlacementChunk(Wid begin, std::span<const Vid> positions,
                                uint32_t worker) {
    (void)begin;
    (void)positions;
    (void)worker;
  }

  // Parallel, inside the sample stage, after the kernel moved `vp`'s walker
  // chunk one step. positions are the post-step locations in partition order
  // (kInvalidVid = terminated on this step). Walkers already dead before the
  // step are not delivered. `step` is 0-based; positions correspond to path
  // row step + 1.
  virtual void OnSampleChunk(uint32_t step, uint32_t vp,
                             std::span<const Vid> positions, uint32_t worker) {
    (void)step;
    (void)vp;
    (void)positions;
    (void)worker;
  }

  // Opt-in to OnWalkerChunk. Forces one extra parallel pass per step and is
  // only legal when spec.track_identity is set (the engine aborts otherwise).
  virtual bool WantsWalkerChunks() const { return false; }

  // Parallel. positions[i] is episode-local walker begin + i's location after
  // `step` (kInvalidVid once the walker has terminated).
  virtual void OnWalkerChunk(uint32_t step, Wid begin,
                             std::span<const Vid> positions, uint32_t worker) {
    (void)step;
    (void)begin;
    (void)positions;
    (void)worker;
  }

  // Serial merge points.
  virtual void OnEpisodeEnd(uint64_t episode) { (void)episode; }
  virtual void OnRunEnd() {}
};

// Per-vertex visit counting with per-worker shards, merged once per episode on
// the engine's pool. Replaces the engine's former serial O(walkers) counting
// loops: every addition happens inside the placement / sample tasks that
// produced the position, and uint64 addition is order-independent, so the
// merged counts are bit-identical to the old serial accumulation. Memory cost
// is num_workers x |V| x 8 bytes for the shards (fine at this repo's scale;
// revisit with cache-partitioned shards if |V| x threads outgrows DRAM).
class ShardedVisitCounter : public WalkObserver {
 public:
  explicit ShardedVisitCounter(Vid num_vertices);

  void OnRunBegin(const WalkRunInfo& info) override;
  void OnPlacementChunk(Wid begin, std::span<const Vid> positions,
                        uint32_t worker) override;
  void OnSampleChunk(uint32_t step, uint32_t vp, std::span<const Vid> positions,
                     uint32_t worker) override;
  void OnEpisodeEnd(uint64_t episode) override;

  // Merged counts; valid after the run (counts accumulate across runs until
  // TakeCounts()).
  const std::vector<uint64_t>& counts() const { return counts_; }
  std::vector<uint64_t> TakeCounts();

  // Exposed for stress tests: merge all shards into counts() immediately
  // (serially when `pool` is null).
  void MergeShards(ThreadPool* pool);

 private:
  void Accumulate(std::span<const Vid> positions, uint32_t worker);

  Vid num_vertices_;
  ThreadPool* pool_ = nullptr;
  std::vector<uint64_t> counts_;
  std::vector<std::vector<uint64_t>> shards_;  // one per worker
};

// Full path capture as a plain observer: reconstructs the PathSet a
// keep_paths run would produce (bit-identical rows) from the placement and
// walker-order streams, without the engine materializing rows itself. Lets
// consumers combine path capture with keep_paths == false engines, or tee
// paths alongside other sinks. Requires track_identity.
class PathSetSink : public WalkObserver {
 public:
  PathSetSink() = default;

  void OnRunBegin(const WalkRunInfo& info) override;
  void OnEpisodeBegin(uint64_t episode, Wid walkers, Wid base_walker) override;
  void OnPlacementChunk(Wid begin, std::span<const Vid> positions,
                        uint32_t worker) override;
  bool WantsWalkerChunks() const override { return true; }
  void OnWalkerChunk(uint32_t step, Wid begin, std::span<const Vid> positions,
                     uint32_t worker) override;
  void OnEpisodeEnd(uint64_t episode) override;

  const PathSet& paths() const { return paths_; }
  PathSet TakePaths();

 private:
  uint32_t steps_ = 0;
  PathSet paths_;          // completed episodes
  PathSet episode_paths_;  // episode under construction
};

}  // namespace fm

#endif  // SRC_CORE_WALK_OBSERVER_H_
