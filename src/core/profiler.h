// Offline profiling and the calibrated cost model (§4.4 "Offline profiling for
// profit calculation").
//
// The paper's key insight: sampling cost depends only on (VP size, degree, density,
// policy) and the machine — not on graph topology — so microbenchmark curves taken
// once on synthetic uniform-degree VPs (the Figure 6 experiment) can price every
// candidate partition of every future graph. Here the measured points calibrate the
// analytic skeleton with per-(policy, cache-level) correction factors; the result is
// persisted to a small profile file and reused across runs and graphs.
#ifndef SRC_CORE_PROFILER_H_
#define SRC_CORE_PROFILER_H_

#include <string>

#include "src/core/cost_model.h"

namespace fm {

// Measures the real per-walker-step cost of the sample-stage kernel on a synthetic
// VP: `vp_vertices` vertices of exactly `degree` out-edges (targets uniform within
// the VP), walker count = density * edges. This is one data point of Figure 6.
double MeasureSamplePointNs(Vid vp_vertices, Degree degree, double density,
                            SamplePolicy policy, uint64_t seed = 7,
                            uint32_t min_iterations = 3);

// Measures the shuffle cost per walker per level (Scatter + Gather over a
// representative uniform plan).
double MeasureShuffleNsPerWalker(uint64_t seed = 7);

class CalibratedCostModel : public CostModel {
 public:
  // Runs the calibration microbenchmarks (a dozen seconds-scale points: one VP per
  // (policy, cache level) at degree 16, density 1).
  static CalibratedCostModel Calibrate(const CacheInfo& cache,
                                       uint32_t threads_sharing_l3 = 1);

  // Loads a previously saved profile; falls back to Calibrate() + save when the
  // file is missing or corrupt (the corruption fallback is a tested failure path).
  static CalibratedCostModel LoadOrCalibrate(const std::string& path,
                                             const CacheInfo& cache,
                                             uint32_t threads_sharing_l3 = 1);

  double SampleNsPerStep(uint64_t vp_vertices, double avg_degree, double density,
                         SamplePolicy policy) const override;
  double ShuffleNsPerWalker() const override { return shuffle_ns_; }

  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

  double factor(SamplePolicy policy, uint8_t level) const {
    return factors_[policy == SamplePolicy::kPS ? 0 : 1][level - 1];
  }

 private:
  explicit CalibratedCostModel(const CacheInfo& cache, uint32_t threads_sharing_l3);

  AnalyticCostModel analytic_;
  // Correction factor measured/analytic per policy (PS, DS) and level (L1..DRAM).
  double factors_[2][4] = {{1, 1, 1, 1}, {1, 1, 1, 1}};
  double shuffle_ns_ = 3.0;
};

}  // namespace fm

#endif  // SRC_CORE_PROFILER_H_
