// Step-interleaving ring executor with software prefetch (ROADMAP item 2; the
// ThunderRW-style latency-hiding arc, PAPERS.md).
//
// FlashMob's sorting pipeline makes the *shuffle* sequential, but the sample
// stage still chases one random vertex at a time: whenever a VP spills cache,
// every offset/edge read is a dependent DRAM miss. The fix is classic memory-
// level parallelism: each worker keeps a ring of G in-flight walkers, issues a
// software prefetch for walker i+k's next cell (its CSR offset pair, alias-
// table row, or adjacency span — stage-typed requests) while finishing walker
// i, and completes each sample when its slot comes back around. With G chosen
// against the core's fill-buffer budget, the G independent misses overlap and
// the stage runs at bandwidth instead of latency.
//
// Determinism invariant (the whole reason this file can exist): every walker
// draws from its own RNG stream, indexed by the walker's position inside its
// chunk — never by ring slot. Slot assignment varies with depth (early deaths
// free slots out of order), walker index does not, so walks are bit-identical
// across interleave depths and thread counts. Order-sensitive work (the PS
// buffers' per-vertex cursors) runs at slot-*init* time, which the driver
// performs in strictly increasing walker order at every depth.
#ifndef SRC_CORE_INTERLEAVE_H_
#define SRC_CORE_INTERLEAVE_H_

#include <cstdint>
#include <string>

#include "src/util/cache_info.h"
#include "src/util/rng.h"
#include "src/util/sync.h"
#include "src/util/types.h"

namespace fm {

// Hard ceiling on the ring size. Slot state is ~48 bytes, so 64 slots keep the
// whole ring inside a handful of L1 lines; deeper rings only add prefetch-to-
// use distance without adding memory-level parallelism (the core's fill
// buffers saturate far earlier).
inline constexpr uint32_t kMaxInterleaveDepth = 64;

// EngineOptions::interleave_depth sentinel: resolve from cache geometry.
inline constexpr uint32_t kInterleaveDepthAuto = 0;

// Per-core demand-miss capacity (line fill buffers): 10 on every Intel core
// from Sandy Bridge through Ice Lake, 12+ on recent AMD. The auto model only
// needs the order of magnitude.
inline constexpr uint32_t kLineFillBuffers = 10;

// Software-prefetch issue counts by request type, accumulated per kernel call
// and surfaced through WalkStats / fm-metrics-v1. Counting happens in local
// (stack) instances and is folded in once per chunk, so the hot loops never
// touch shared memory for bookkeeping.
struct InterleaveStats {
  uint64_t offsets = 0;  // CSR offset pairs (the walker's VP cell)
  uint64_t alias = 0;    // alias-table rows (weighted draws)
  uint64_t edges = 0;    // adjacency cells (the sampled edge span)
  uint64_t shuffle = 0;  // scatter/gather destination cursor lines

  uint64_t Total() const { return offsets + alias + edges + shuffle; }

  InterleaveStats& operator+=(const InterleaveStats& o) {
    offsets += o.offsets;
    alias += o.alias;
    edges += o.edges;
    shuffle += o.shuffle;
    return *this;
  }
};

// Read prefetch with full temporal locality — the fetched line is consumed
// within G slots. A hint only: issuing (or skipping) a prefetch never changes
// an architectural result, which is what lets the oracle suite demand bitwise
// equality across depths.
FM_HOT_PATH inline void PrefetchRead(const void* p) {
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
}

// Write prefetch (requests the line in exclusive state, saving the RFO when
// the store lands): the shuffle scatter's destination look-ahead.
FM_HOT_PATH inline void PrefetchWrite(void* p) {
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
}

// Per-walker RNG stream: walker `i` of a chunk seeded with `chunk_seed` always
// draws from this stream, at every interleave depth and thread count. The
// chunk seed itself is already (episode, step, vp)-indexed by the engine.
inline uint64_t WalkerSeed(uint64_t chunk_seed, Wid i) {
  return DeriveSeed(chunk_seed, i);
}

// Resolved interleave configuration, built once per Run next to the
// ShufflePlan and reported through WalkStats (fm-metrics-v1 `interleave`).
struct InterleavePlan {
  uint32_t depth = 1;        // concrete ring size; 1 = sequential
  uint32_t requested = 0;    // the knob value (0 = auto)
  bool from_auto = false;    // depth came from the cache-geometry model

  std::string Describe() const {
    return "interleave depth=" + std::to_string(depth) +
           (from_auto ? " (auto: fill-buffer bound)" : " (pinned)");
  }
};

// Depth model (mirrors BuildShufflePlan's role for the shuffle): the ring
// cannot usefully keep more lines in flight than the core has fill buffers,
// so start from that budget minus two buffers reserved for the sequential SW
// stream the kernel reads/writes alongside. The ring's own slot state must
// stay L1-resident next to that stream; with ~64B slots this only binds on
// exotic tiny-L1 configs, but the guard keeps the model honest. The result is
// rounded down to a power of two so depth sweeps {1,4,8,16} bracket it.
inline InterleavePlan BuildInterleavePlan(uint32_t requested,
                                          const CacheInfo& cache) {
  InterleavePlan plan;
  plan.requested = requested;
  if (requested != 0) {
    plan.depth = requested < kMaxInterleaveDepth ? requested
                                                 : kMaxInterleaveDepth;
    return plan;
  }
  plan.from_auto = true;
  uint32_t depth = kLineFillBuffers - 2;
  const uint32_t slot_budget_bytes = 64;  // conservative per-slot ring state
  uint32_t l1_cap = static_cast<uint32_t>(
      cache.l1_bytes / (4 * static_cast<uint64_t>(slot_budget_bytes)));
  if (l1_cap > 0 && depth > l1_cap) {
    depth = l1_cap;
  }
  uint32_t pow2 = 1;
  while (pow2 * 2 <= depth) {
    pow2 *= 2;
  }
  plan.depth = pow2;
  return plan;
}

// Parses the --interleave / FM_INTERLEAVE knob: "auto" or a depth in
// [1, kMaxInterleaveDepth]. Returns false (leaving *depth untouched) on
// anything else so callers can fail loudly.
inline bool ParseInterleaveDepth(const std::string& name, uint32_t* depth) {
  if (name == "auto") {
    *depth = kInterleaveDepthAuto;
    return true;
  }
  if (name.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : name) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > kMaxInterleaveDepth) {
      return false;
    }
  }
  if (value == 0) {
    return false;
  }
  *depth = static_cast<uint32_t>(value);
  return true;
}

// Runs `count` walkers through a ring of `depth` in-flight slots.
//
// Ops contract:
//   bool Init(uint32_t slot, Wid i)   claim walker i into `slot`: perform the
//                                     order-sensitive work (RNG seeding, PS
//                                     pops) and issue the first prefetch.
//                                     Returns false when the walker completed
//                                     immediately (PS draw, instant death).
//   bool Advance(uint32_t slot)       run the slot's next pipeline stage (the
//                                     prefetched line is now near). Returns
//                                     false when the walker is done.
//
// The driver calls Init in strictly increasing walker order at every depth
// (`next` is claimed monotonically, whichever slot frees first), which is the
// hook order-sensitive state relies on. Advance calls rotate round-robin so
// each slot's prefetch has `depth - 1` other slots' work as distance. A depth
// of 0 or 1 degenerates to the plain sequential loop — same Ops, same draw
// order, zero ring overhead — which doubles as the oracle path the interleave
// tests compare against.
template <typename Ops>
FM_HOT_PATH void RunInterleavedRing(uint32_t depth, Wid count, Ops& ops) {
  if (depth <= 1) {
    for (Wid i = 0; i < count; ++i) {
      if (ops.Init(0, i)) {
        while (ops.Advance(0)) {
        }
      }
    }
    return;
  }
  if (depth > kMaxInterleaveDepth) {
    depth = kMaxInterleaveDepth;
  }
  bool occupied[kMaxInterleaveDepth] = {false};
  uint32_t live = 0;
  Wid next = 0;
  // Prime the ring; a walker that completes at Init hands its slot straight to
  // the next one (tail episodes smaller than the ring just leave slots empty).
  for (uint32_t slot = 0; slot < depth && next < count;) {
    if (ops.Init(slot, next++)) {
      occupied[slot] = true;
      ++live;
      ++slot;
    }
  }
  uint32_t slot = 0;
  while (live > 0) {
    if (occupied[slot]) {
      if (!ops.Advance(slot)) {
        occupied[slot] = false;
        --live;
        while (next < count) {
          if (ops.Init(slot, next++)) {
            occupied[slot] = true;
            ++live;
            break;
          }
        }
      }
    }
    ++slot;
    if (slot == depth) {
      slot = 0;
    }
  }
}

}  // namespace fm

#endif  // SRC_CORE_INTERLEAVE_H_
