// Sampling cost models feeding the MCKP planner (§4.4 "Offline profiling for profit
// calculation").
//
// The planner asks one question: "what is the per-walker-step sampling cost of a VP
// with V vertices, average degree d, walker density rho, under policy PS or DS?"
// Two answers are provided:
//
//  - AnalyticCostModel: closed-form estimate from the Table 1 latency ladder and the
//    Table 3 access-pattern inventory. Deterministic — used by unit tests and as the
//    fallback when no profile exists.
//  - CalibratedCostModel (profiler.h): the analytic skeleton scaled by measured
//    correction factors from running the real sample kernels on synthetic
//    uniform-degree VPs — the paper's machine-dependent, graph-independent offline
//    profiling, reusable across graphs.
#ifndef SRC_CORE_COST_MODEL_H_
#define SRC_CORE_COST_MODEL_H_

#include <cstdint>

#include "src/cachesim/latency_model.h"
#include "src/core/partition_plan.h"
#include "src/util/cache_info.h"

namespace fm {

class CostModel {
 public:
  virtual ~CostModel() = default;

  // ns of sample-stage work per walker-step for a VP of `vp_vertices` vertices with
  // the given average degree, at `density` walkers per edge.
  virtual double SampleNsPerStep(uint64_t vp_vertices, double avg_degree,
                                 double density, SamplePolicy policy) const = 0;

  // ns per walker per level of shuffle (two streaming passes; §4.3).
  virtual double ShuffleNsPerWalker() const { return 3.0; }
};

class AnalyticCostModel : public CostModel {
 public:
  explicit AnalyticCostModel(const CacheInfo& cache = PaperCacheInfo(),
                             const LatencyModel& latency = LatencyModel{},
                             uint32_t threads_sharing_l3 = 1)
      : cache_(cache), latency_(latency), threads_sharing_l3_(threads_sharing_l3) {}

  double SampleNsPerStep(uint64_t vp_vertices, double avg_degree, double density,
                         SamplePolicy policy) const override;

  // Effective random-read latency over a working set of `bytes` (hierarchy
  // interpolation; exposed for tests and the calibration fit).
  double EffectiveRandomNs(uint64_t bytes) const;

  // Cache level (1..4) whose per-core share fits `bytes`.
  uint8_t LevelFor(uint64_t bytes) const;

  // Working-set sizes per policy (§4.2 "Memory access patterns and partition
  // sizing": PS keeps per-vertex cursors plus one active line per vertex; DS must
  // fit all edges of the VP).
  uint64_t WorkingSetBytes(uint64_t vp_vertices, double avg_degree,
                           SamplePolicy policy) const;

  const CacheInfo& cache() const { return cache_; }
  const LatencyModel& latency() const { return latency_; }

 private:
  CacheInfo cache_;
  LatencyModel latency_;
  uint32_t threads_sharing_l3_;
};

}  // namespace fm

#endif  // SRC_CORE_COST_MODEL_H_
