#include "src/graph/csr_graph.h"

#include <algorithm>

#include "src/util/logging.h"

namespace fm {

CsrGraph::CsrGraph(std::vector<Eid> offsets, std::vector<Vid> edges)
    : CsrGraph(std::move(offsets), std::move(edges), {}) {}

CsrGraph::CsrGraph(std::vector<Eid> offsets, std::vector<Vid> edges,
                   std::vector<float> weights)
    : offsets_(std::move(offsets)),
      edges_(std::move(edges)),
      weights_(std::move(weights)) {
  FM_CHECK_MSG(!offsets_.empty(), "CSR offsets must have at least one entry");
  FM_CHECK_MSG(offsets_.back() == edges_.size(),
               "CSR offsets/edges size mismatch: " << offsets_.back() << " vs "
                                                   << edges_.size());
  FM_CHECK_MSG(weights_.empty() || weights_.size() == edges_.size(),
               "CSR weights/edges size mismatch");
  offsets_view_ = offsets_;
  edges_view_ = edges_;
  weights_view_ = weights_;
#ifndef NDEBUG
  // Full O(V+E) well-formedness (monotone offsets, in-range targets) on every
  // construction in checking builds; release callers invoke CheckValid explicitly
  // where the input is untrusted (deserialization).
  CheckValid();
#endif
}

CsrGraph::CsrGraph(std::shared_ptr<MappedFile> mapping,
                   std::span<const Eid> offsets, std::span<const Vid> edges,
                   std::span<const float> weights)
    : mapping_(std::move(mapping)),
      offsets_view_(offsets),
      edges_view_(edges),
      weights_view_(weights) {
  FM_CHECK(mapping_ != nullptr && mapping_->valid());
  FM_CHECK_MSG(!offsets_view_.empty(), "CSR offsets must have at least one entry");
  FM_CHECK_MSG(offsets_view_.back() == edges_view_.size(),
               "CSR offsets/edges size mismatch");
  FM_CHECK_MSG(weights_view_.empty() || weights_view_.size() == edges_view_.size(),
               "CSR weights/edges size mismatch");
}

CsrGraph& CsrGraph::operator=(const CsrGraph& other) {
  if (this == &other) {
    return *this;
  }
  offsets_ = other.offsets_;
  edges_ = other.edges_;
  weights_ = other.weights_;
  mapping_ = other.mapping_;
  if (mapping_ != nullptr) {
    offsets_view_ = other.offsets_view_;
    edges_view_ = other.edges_view_;
    weights_view_ = other.weights_view_;
  } else {
    offsets_view_ = offsets_;
    edges_view_ = edges_;
    weights_view_ = weights_;
  }
  return *this;
}

CsrGraph& CsrGraph::operator=(CsrGraph&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  offsets_ = std::move(other.offsets_);
  edges_ = std::move(other.edges_);
  weights_ = std::move(other.weights_);
  mapping_ = std::move(other.mapping_);
  if (mapping_ != nullptr) {
    offsets_view_ = other.offsets_view_;
    edges_view_ = other.edges_view_;
    weights_view_ = other.weights_view_;
  } else {
    offsets_view_ = offsets_;
    edges_view_ = edges_;
    weights_view_ = weights_;
  }
  other.offsets_view_ = {};
  other.edges_view_ = {};
  other.weights_view_ = {};
  return *this;
}

bool CsrGraph::HasEdge(Vid v, Vid u) const {
  auto nbrs = neighbors(v);
  return std::binary_search(nbrs.begin(), nbrs.end(), u);
}

bool CsrGraph::AdjacencySorted() const {
  for (Vid v = 0; v < num_vertices(); ++v) {
    auto nbrs = neighbors(v);
    if (!std::is_sorted(nbrs.begin(), nbrs.end())) {
      return false;
    }
  }
  return true;
}

Degree CsrGraph::MaxDegree() const {
  Degree max_deg = 0;
  for (Vid v = 0; v < num_vertices(); ++v) {
    max_deg = std::max(max_deg, degree(v));
  }
  return max_deg;
}

void CsrGraph::CheckValid() const {
  FM_CHECK(!offsets_view_.empty());
  FM_CHECK(offsets_view_.front() == 0);
  for (size_t i = 1; i < offsets_view_.size(); ++i) {
    FM_CHECK_MSG(offsets_view_[i] >= offsets_view_[i - 1],
                 "offsets not monotone at " << i);
  }
  FM_CHECK(offsets_view_.back() == edges_view_.size());
  Vid n = num_vertices();
  for (Vid target : edges_view_) {
    FM_CHECK_MSG(target < n, "edge target out of range: " << target);
  }
}

bool Identical(const CsrGraph& a, const CsrGraph& b) {
  return std::ranges::equal(a.offsets(), b.offsets()) &&
         std::ranges::equal(a.edges(), b.edges()) &&
         std::ranges::equal(a.weights(), b.weights());
}

}  // namespace fm
