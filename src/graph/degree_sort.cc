#include "src/graph/degree_sort.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/trace.h"

namespace fm {

DegreeSortedGraph DegreeSort(const CsrGraph& graph) {
  TraceSpan span("graph", "degree_sort");
  Vid n = graph.num_vertices();
  span.Arg("vertices", n);
  span.Arg("edges", graph.num_edges());
  DegreeSortedGraph result;
  result.new_to_old.resize(n);
  result.old_to_new.resize(n);
  if (n == 0) {
    result.graph = CsrGraph({0}, {});
    return result;
  }

  // Counting sort on degree, descending. `counts[d]` first holds the number of
  // vertices of degree d, then (after a suffix-style prefix pass in descending degree
  // order) the first output slot for that degree. Stability (original VID order within
  // equal degree) follows from the forward scatter scan.
  Degree max_deg = graph.MaxDegree();
  std::vector<Eid> counts(static_cast<size_t>(max_deg) + 2, 0);
  for (Vid v = 0; v < n; ++v) {
    ++counts[graph.degree(v)];
  }
  Eid slot = 0;
  for (size_t d = max_deg + 1; d-- > 0;) {
    Eid c = counts[d];
    counts[d] = slot;
    slot += c;
  }
  for (Vid v = 0; v < n; ++v) {
    Vid pos = static_cast<Vid>(counts[graph.degree(v)]++);
    result.new_to_old[pos] = v;
    result.old_to_new[v] = pos;
  }

  // Rebuild the CSR under the new labels, carrying edge weights through the
  // relabelling and the per-list re-sort.
  std::vector<Eid> offsets(static_cast<size_t>(n) + 1, 0);
  for (Vid nv = 0; nv < n; ++nv) {
    offsets[nv + 1] = offsets[nv] + graph.degree(result.new_to_old[nv]);
  }
  std::vector<Vid> edges(offsets.back());
  std::vector<float> weights(graph.weighted() ? offsets.back() : 0);
  for (Vid nv = 0; nv < n; ++nv) {
    Vid old_v = result.new_to_old[nv];
    Eid write = offsets[nv];
    auto nbrs = graph.neighbors(old_v);
    if (!graph.weighted()) {
      for (Vid old_target : nbrs) {
        edges[write++] = result.old_to_new[old_target];
      }
      std::sort(edges.begin() + offsets[nv], edges.begin() + write);
      continue;
    }
    auto wts = graph.neighbor_weights(old_v);
    std::vector<std::pair<Vid, float>> pairs(nbrs.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      pairs[i] = {result.old_to_new[nbrs[i]], wts[i]};
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [target, weight] : pairs) {
      edges[write] = target;
      weights[write] = weight;
      ++write;
    }
  }
  result.graph = CsrGraph(std::move(offsets), std::move(edges), std::move(weights));
  return result;
}

bool IsDegreeSorted(const CsrGraph& graph) {
  for (Vid v = 1; v < graph.num_vertices(); ++v) {
    if (graph.degree(v) > graph.degree(v - 1)) {
      return false;
    }
  }
  return true;
}

}  // namespace fm
