// Graph transposition (edge reversal).
//
// Substrate for backward-walk applications: SimRank's meeting-time formulation
// walks *in-edges* (apps/simrank.h), and reverse reachability / PPR-to-target
// queries need the transpose too. Weights are carried with their edges.
#ifndef SRC_GRAPH_TRANSPOSE_H_
#define SRC_GRAPH_TRANSPOSE_H_

#include "src/graph/csr_graph.h"

namespace fm {

// Returns the reverse graph: edge (u, v) becomes (v, u). O(|V| + |E|).
CsrGraph Transpose(const CsrGraph& graph);

}  // namespace fm

#endif  // SRC_GRAPH_TRANSPOSE_H_
