// Mutable edge accumulator that produces an immutable CsrGraph.
//
// Handles the pre-processing steps the paper applies to its datasets (Table 4 note:
// "0-degree vertices removed"): optional symmetrization, self-loop / duplicate
// removal, and compaction of vertices with no edges. Edges may carry transition
// weights (§2.1's general transition-probability specification); duplicate removal
// sums the weights of collapsed parallel edges.
#ifndef SRC_GRAPH_GRAPH_BUILDER_H_
#define SRC_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "src/graph/csr_graph.h"
#include "src/util/types.h"

namespace fm {

struct BuildOptions {
  bool undirected = false;          // add both (u,v) and (v,u)
  bool remove_self_loops = false;
  bool remove_duplicate_edges = false;
  bool remove_zero_degree = false;  // compact away vertices with no in/out edges
};

class GraphBuilder {
 public:
  // `num_vertices` == 0 lets the builder infer |V| = max endpoint + 1.
  explicit GraphBuilder(Vid num_vertices = 0)
      : num_vertices_(num_vertices), fixed_count_(num_vertices != 0) {}

  // Adds a directed edge. Throws std::invalid_argument if an endpoint exceeds a
  // caller-fixed vertex count or the weight is not positive. The graph is weighted
  // iff any added weight differs from 1.0.
  void AddEdge(Vid from, Vid to, float weight = 1.0f);

  size_t edge_count() const { return sources_.size(); }

  // Consumes the accumulated edges and builds the CSR (adjacency lists sorted
  // ascending, weights permuted alongside). When options.remove_zero_degree is set
  // and `removed_to_original` is non-null, it receives the compacted-ID ->
  // original-ID mapping.
  CsrGraph Build(const BuildOptions& options = {},
                 std::vector<Vid>* removed_to_original = nullptr);

 private:
  Vid num_vertices_;
  bool fixed_count_ = false;
  bool weighted_ = false;
  std::vector<Vid> sources_;
  std::vector<Vid> targets_;
  std::vector<float> weights_;
};

}  // namespace fm

#endif  // SRC_GRAPH_GRAPH_BUILDER_H_
