#include "src/graph/transpose.h"

#include <algorithm>

namespace fm {

CsrGraph Transpose(const CsrGraph& graph) {
  Vid n = graph.num_vertices();
  std::vector<Eid> offsets(static_cast<size_t>(n) + 1, 0);
  for (Vid target : graph.edges()) {
    ++offsets[target + 1];
  }
  for (Vid v = 0; v < n; ++v) {
    offsets[v + 1] += offsets[v];
  }
  std::vector<Vid> edges(graph.num_edges());
  std::vector<float> weights(graph.weighted() ? graph.num_edges() : 0);
  std::vector<Eid> cursor(offsets.begin(), offsets.end() - 1);
  for (Vid v = 0; v < n; ++v) {
    auto nbrs = graph.neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      Eid slot = cursor[nbrs[i]]++;
      edges[slot] = v;
      if (graph.weighted()) {
        weights[slot] = graph.neighbor_weights(v)[i];
      }
    }
  }
  // Sources were scanned in ascending order, so each reversed adjacency list is
  // already sorted; weighted lists inherit the same order.
  return CsrGraph(std::move(offsets), std::move(edges), std::move(weights));
}

}  // namespace fm
