#include "src/graph/edge_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fm {
namespace {

constexpr uint64_t kCsrMagic = 0x464D435352303031ULL;          // "FMCSR001"
constexpr uint64_t kCsrWeightedMagic = 0x464D435352303032ULL;  // "FMCSR002"

void ThrowIo(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

}  // namespace

CsrGraph LoadEdgeListText(const std::string& path, const BuildOptions& options) {
  std::ifstream in(path);
  if (!in) {
    ThrowIo("cannot open edge list", path);
  }
  GraphBuilder builder;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') {
      continue;
    }
    std::istringstream ls(line);
    uint64_t u = 0;
    uint64_t v = 0;
    if (!(ls >> u >> v)) {
      throw std::runtime_error("malformed edge at " + path + ":" +
                               std::to_string(line_no));
    }
    if (u > kInvalidVid - 1 || v > kInvalidVid - 1) {
      throw std::runtime_error("vertex id exceeds 32-bit range at " + path + ":" +
                               std::to_string(line_no));
    }
    double weight = 1.0;  // optional third column: edge weight
    if ((ls >> weight) && !(weight > 0)) {
      throw std::runtime_error("non-positive edge weight at " + path + ":" +
                               std::to_string(line_no));
    }
    builder.AddEdge(static_cast<Vid>(u), static_cast<Vid>(v),
                    static_cast<float>(weight));
  }
  return builder.Build(options);
}

void SaveEdgeListText(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    ThrowIo("cannot open for writing", path);
  }
  out << "# flashmob edge list |V|=" << graph.num_vertices()
      << " |E|=" << graph.num_edges() << (graph.weighted() ? " weighted" : "")
      << "\n";
  for (Vid v = 0; v < graph.num_vertices(); ++v) {
    auto nbrs = graph.neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      out << v << ' ' << nbrs[i];
      if (graph.weighted()) {
        out << ' ' << graph.neighbor_weights(v)[i];
      }
      out << '\n';
    }
  }
  if (!out) {
    ThrowIo("write failed", path);
  }
}

void SaveCsrBinary(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    ThrowIo("cannot open for writing", path);
  }
  uint64_t header[3] = {graph.weighted() ? kCsrWeightedMagic : kCsrMagic,
                        graph.num_vertices(), graph.num_edges()};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(graph.offsets().data()),
            static_cast<std::streamsize>(graph.offsets().size() * sizeof(Eid)));
  out.write(reinterpret_cast<const char*>(graph.edges().data()),
            static_cast<std::streamsize>(graph.edges().size() * sizeof(Vid)));
  if (graph.weighted()) {
    out.write(reinterpret_cast<const char*>(graph.weights().data()),
              static_cast<std::streamsize>(graph.weights().size() * sizeof(float)));
  }
  if (!out) {
    ThrowIo("write failed", path);
  }
}

CsrGraph LoadCsrBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ThrowIo("cannot open CSR file", path);
  }
  uint64_t header[3] = {0, 0, 0};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in || (header[0] != kCsrMagic && header[0] != kCsrWeightedMagic)) {
    ThrowIo("bad CSR magic", path);
  }
  bool weighted = header[0] == kCsrWeightedMagic;
  uint64_t num_vertices = header[1];
  uint64_t num_edges = header[2];
  std::vector<Eid> offsets(num_vertices + 1);
  std::vector<Vid> edges(num_edges);
  std::vector<float> weights(weighted ? num_edges : 0);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(Eid)));
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(edges.size() * sizeof(Vid)));
  if (weighted) {
    in.read(reinterpret_cast<char*>(weights.data()),
            static_cast<std::streamsize>(weights.size() * sizeof(float)));
  }
  if (!in) {
    ThrowIo("truncated CSR file", path);
  }
  CsrGraph graph(std::move(offsets), std::move(edges), std::move(weights));
  graph.CheckValid();
  return graph;
}

CsrGraph LoadCsrBinaryMapped(const std::string& path) {
  auto mapping = std::make_shared<MappedFile>(path);
  // Layout (SaveCsrBinary): 3 x uint64 header, then offsets, then edges. The
  // 24-byte header keeps the 8-byte offsets naturally aligned; edges (4-byte) are
  // aligned at any multiple of 8.
  const auto* base = static_cast<const uint8_t*>(mapping->data());
  if (mapping->size() < 3 * sizeof(uint64_t)) {
    ThrowIo("CSR file too small", path);
  }
  uint64_t header[3];
  std::memcpy(header, base, sizeof(header));
  if (header[0] != kCsrMagic && header[0] != kCsrWeightedMagic) {
    ThrowIo("bad CSR magic", path);
  }
  bool weighted = header[0] == kCsrWeightedMagic;
  uint64_t num_vertices = header[1];
  uint64_t num_edges = header[2];
  size_t offsets_bytes = (num_vertices + 1) * sizeof(Eid);
  size_t edges_bytes = num_edges * sizeof(Vid);
  size_t weights_bytes = weighted ? num_edges * sizeof(float) : 0;
  if (mapping->size() < sizeof(header) + offsets_bytes + edges_bytes + weights_bytes) {
    ThrowIo("truncated CSR file", path);
  }
  std::span<const Eid> offsets(
      reinterpret_cast<const Eid*>(base + sizeof(header)), num_vertices + 1);
  std::span<const Vid> edges(
      reinterpret_cast<const Vid*>(base + sizeof(header) + offsets_bytes),
      num_edges);
  std::span<const float> weights;
  if (weighted) {
    weights = std::span<const float>(
        reinterpret_cast<const float*>(base + sizeof(header) + offsets_bytes +
                                       edges_bytes),
        num_edges);
  }
  CsrGraph graph(std::move(mapping), offsets, edges, weights);
  graph.CheckValid();
  return graph;
}

}  // namespace fm
