#include "src/graph/edge_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/util/logging.h"
#include "src/util/trace.h"

namespace fm {
namespace {

constexpr uint64_t kCsrMagic = 0x464D435352303031ULL;          // "FMCSR001"
constexpr uint64_t kCsrWeightedMagic = 0x464D435352303032ULL;  // "FMCSR002"
constexpr size_t kCsrHeaderBytes = 3 * sizeof(uint64_t);

void ThrowIo(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

// Safe unaligned read: memcpy compiles to a plain load on every target we care
// about but is defined behavior regardless of the source pointer's alignment.
template <typename T>
T LoadScalar(const uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

// Validated CSR container header. Every field is checked against the actual
// file size *before* any allocation sized from it, so a corrupt or truncated
// file is rejected with a clean error instead of crashing or over-allocating.
struct CsrHeader {
  bool weighted = false;
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  size_t offsets_bytes = 0;
  size_t edges_bytes = 0;
  size_t weights_bytes = 0;
};

CsrHeader ParseCsrHeader(const uint8_t* raw, uint64_t file_size,
                         const std::string& path) {
  if (file_size < kCsrHeaderBytes) {
    ThrowIo("CSR file too small", path);
  }
  CsrHeader h;
  uint64_t magic = LoadScalar<uint64_t>(raw);
  h.num_vertices = LoadScalar<uint64_t>(raw + 8);
  h.num_edges = LoadScalar<uint64_t>(raw + 16);
  if (magic != kCsrMagic && magic != kCsrWeightedMagic) {
    ThrowIo("bad CSR magic/version", path);
  }
  h.weighted = magic == kCsrWeightedMagic;
  // Vertex ids must fit Vid with the kInvalidVid sentinel left free.
  if (h.num_vertices > static_cast<uint64_t>(kInvalidVid)) {
    ThrowIo("CSR header vertex count exceeds 32-bit id range", path);
  }
  uint64_t payload = file_size - kCsrHeaderBytes;
  // (num_vertices + 1) * 8 cannot overflow after the Vid-range check above.
  uint64_t offsets_bytes = (h.num_vertices + 1) * sizeof(Eid);
  if (offsets_bytes > payload) {
    ThrowIo("truncated CSR file (offsets)", path);
  }
  uint64_t remaining = payload - offsets_bytes;
  uint64_t per_edge = sizeof(Vid) + (h.weighted ? sizeof(float) : 0);
  // Overflow-safe: bound num_edges by what the file could possibly hold before
  // computing byte sizes from it.
  if (h.num_edges > remaining / per_edge ||
      h.num_edges * per_edge != remaining) {
    ThrowIo("CSR header counts do not match file size", path);
  }
  h.offsets_bytes = static_cast<size_t>(offsets_bytes);
  h.edges_bytes = static_cast<size_t>(h.num_edges * sizeof(Vid));
  h.weights_bytes =
      h.weighted ? static_cast<size_t>(h.num_edges * sizeof(float)) : 0;
  return h;
}

// Alignment-checked zero-copy view into a mapped file section. The container
// layout guarantees natural alignment (24-byte header, 8-byte offsets, 4-byte
// edges/weights); the FM_CHECK makes that assumption explicit so the cast
// below can never be an unaligned access.
template <typename T>
std::span<const T> MappedSpan(const uint8_t* base, size_t byte_offset,
                              size_t count) {
  const uint8_t* p = base + byte_offset;
  FM_CHECK_MSG(reinterpret_cast<uintptr_t>(p) % alignof(T) == 0,
               "misaligned CSR section at byte offset " << byte_offset);
  return {reinterpret_cast<const T*>(p), count};
}

}  // namespace

CsrGraph LoadEdgeListText(const std::string& path, const BuildOptions& options) {
  FM_TRACE_SPAN("graph", "load_edge_list");
  std::ifstream in(path);
  if (!in) {
    ThrowIo("cannot open edge list", path);
  }
  GraphBuilder builder;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') {
      continue;
    }
    std::istringstream ls(line);
    uint64_t u = 0;
    uint64_t v = 0;
    if (!(ls >> u >> v)) {
      throw std::runtime_error("malformed edge at " + path + ":" +
                               std::to_string(line_no));
    }
    if (u > kInvalidVid - 1 || v > kInvalidVid - 1) {
      throw std::runtime_error("vertex id exceeds 32-bit range at " + path + ":" +
                               std::to_string(line_no));
    }
    double weight = 1.0;  // optional third column: edge weight
    if ((ls >> weight) && !(weight > 0)) {
      throw std::runtime_error("non-positive edge weight at " + path + ":" +
                               std::to_string(line_no));
    }
    builder.AddEdge(static_cast<Vid>(u), static_cast<Vid>(v),
                    static_cast<float>(weight));
  }
  return builder.Build(options);
}

void SaveEdgeListText(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    ThrowIo("cannot open for writing", path);
  }
  out << "# flashmob edge list |V|=" << graph.num_vertices()
      << " |E|=" << graph.num_edges() << (graph.weighted() ? " weighted" : "")
      << "\n";
  for (Vid v = 0; v < graph.num_vertices(); ++v) {
    auto nbrs = graph.neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      out << v << ' ' << nbrs[i];
      if (graph.weighted()) {
        out << ' ' << graph.neighbor_weights(v)[i];
      }
      out << '\n';
    }
  }
  if (!out) {
    ThrowIo("write failed", path);
  }
}

void SaveCsrBinary(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    ThrowIo("cannot open for writing", path);
  }
  uint64_t header[3] = {graph.weighted() ? kCsrWeightedMagic : kCsrMagic,
                        graph.num_vertices(), graph.num_edges()};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(graph.offsets().data()),
            static_cast<std::streamsize>(graph.offsets().size() * sizeof(Eid)));
  out.write(reinterpret_cast<const char*>(graph.edges().data()),
            static_cast<std::streamsize>(graph.edges().size() * sizeof(Vid)));
  if (graph.weighted()) {
    out.write(reinterpret_cast<const char*>(graph.weights().data()),
              static_cast<std::streamsize>(graph.weights().size() * sizeof(float)));
  }
  if (!out) {
    ThrowIo("write failed", path);
  }
}

CsrGraph LoadCsrBinary(const std::string& path) {
  FM_TRACE_SPAN("graph", "load_csr");
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    ThrowIo("cannot open CSR file", path);
  }
  uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0);
  uint8_t raw[kCsrHeaderBytes];
  if (file_size < sizeof(raw) ||
      !in.read(reinterpret_cast<char*>(raw), sizeof(raw))) {
    ThrowIo("CSR file too small", path);
  }
  CsrHeader h = ParseCsrHeader(raw, file_size, path);
  std::vector<Eid> offsets(h.num_vertices + 1);
  std::vector<Vid> edges(h.num_edges);
  std::vector<float> weights(h.weighted ? h.num_edges : 0);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(h.offsets_bytes));
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(h.edges_bytes));
  if (h.weighted) {
    in.read(reinterpret_cast<char*>(weights.data()),
            static_cast<std::streamsize>(h.weights_bytes));
  }
  if (!in) {
    ThrowIo("truncated CSR file", path);
  }
  CsrGraph graph(std::move(offsets), std::move(edges), std::move(weights));
  graph.CheckValid();
  return graph;
}

CsrGraph LoadCsrBinaryMapped(const std::string& path) {
  FM_TRACE_SPAN("graph", "load_csr_mmap");
  auto mapping = std::make_shared<MappedFile>(path);
  // Layout (SaveCsrBinary): 3 x uint64 header, then offsets, then edges, then
  // optional weights. The 24-byte header keeps the 8-byte offsets naturally
  // aligned; edges/weights (4-byte) follow at multiples of 4. ParseCsrHeader
  // validates every count against the mapping size before any span is formed.
  const auto* base = static_cast<const uint8_t*>(mapping->data());
  CsrHeader h = ParseCsrHeader(base, mapping->size(), path);
  std::span<const Eid> offsets =
      MappedSpan<Eid>(base, kCsrHeaderBytes, h.num_vertices + 1);
  std::span<const Vid> edges =
      MappedSpan<Vid>(base, kCsrHeaderBytes + h.offsets_bytes, h.num_edges);
  std::span<const float> weights;
  if (h.weighted) {
    weights = MappedSpan<float>(
        base, kCsrHeaderBytes + h.offsets_bytes + h.edges_bytes, h.num_edges);
  }
  CsrGraph graph(std::move(mapping), offsets, edges, weights);
  graph.CheckValid();
  return graph;
}

}  // namespace fm
