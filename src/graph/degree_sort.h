// Degree-descending vertex reordering (§4.1 "Vertex ordering").
//
// FlashMob arranges vertices in descending degree order so that contiguous vertex
// partitions group similar-degree (and similarly-popular) vertices. Sorting uses an
// O(|V| + maxdeg) counting sort, matching the paper's pre-processing (§5.2: "sorting
// vertices by their degree on YH ... takes 7.7 seconds using the O(|V|)-complexity
// counting sort").
#ifndef SRC_GRAPH_DEGREE_SORT_H_
#define SRC_GRAPH_DEGREE_SORT_H_

#include <vector>

#include "src/graph/csr_graph.h"

namespace fm {

struct DegreeSortedGraph {
  CsrGraph graph;                // relabelled: VID 0 has the highest degree
  std::vector<Vid> new_to_old;   // sorted VID -> original VID
  std::vector<Vid> old_to_new;   // original VID -> sorted VID
};

// Stable counting sort by descending out-degree; adjacency targets are relabelled and
// re-sorted ascending.
DegreeSortedGraph DegreeSort(const CsrGraph& graph);

// True when degrees are non-increasing in VID order (the engine's input contract).
bool IsDegreeSorted(const CsrGraph& graph);

}  // namespace fm

#endif  // SRC_GRAPH_DEGREE_SORT_H_
