#include "src/graph/graph_builder.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/util/logging.h"

namespace fm {

void GraphBuilder::AddEdge(Vid from, Vid to, float weight) {
  if (fixed_count_) {
    if (from >= num_vertices_ || to >= num_vertices_) {
      throw std::invalid_argument("GraphBuilder: edge endpoint out of range");
    }
  } else {
    num_vertices_ = std::max({num_vertices_, from + 1, to + 1});
  }
  if (!(weight > 0)) {
    throw std::invalid_argument("GraphBuilder: edge weight must be positive");
  }
  weighted_ |= weight != 1.0f;
  sources_.push_back(from);
  targets_.push_back(to);
  weights_.push_back(weight);
}

CsrGraph GraphBuilder::Build(const BuildOptions& options,
                             std::vector<Vid>* removed_to_original) {
  if (options.undirected) {
    size_t original = sources_.size();
    sources_.reserve(original * 2);
    targets_.reserve(original * 2);
    weights_.reserve(original * 2);
    for (size_t i = 0; i < original; ++i) {
      sources_.push_back(targets_[i]);
      targets_.push_back(sources_[i]);
      weights_.push_back(weights_[i]);
    }
  }

  Vid n = num_vertices_;
  std::vector<Vid> relabel;  // original -> compacted, kInvalidVid if removed
  if (options.remove_zero_degree) {
    std::vector<uint8_t> touched(n, 0);
    for (size_t i = 0; i < sources_.size(); ++i) {
      if (options.remove_self_loops && sources_[i] == targets_[i]) {
        continue;
      }
      touched[sources_[i]] = 1;
      touched[targets_[i]] = 1;
    }
    relabel.assign(n, kInvalidVid);
    Vid next = 0;
    std::vector<Vid> new_to_old;
    for (Vid v = 0; v < n; ++v) {
      if (touched[v]) {
        relabel[v] = next++;
        new_to_old.push_back(v);
      }
    }
    n = next;
    if (removed_to_original != nullptr) {
      *removed_to_original = std::move(new_to_old);
    }
  } else if (removed_to_original != nullptr) {
    removed_to_original->resize(n);
    std::iota(removed_to_original->begin(), removed_to_original->end(), 0);
  }

  // Counting sort by source vertex: degree count, prefix sum, scatter.
  std::vector<Eid> offsets(static_cast<size_t>(n) + 1, 0);
  auto map_id = [&](Vid v) { return relabel.empty() ? v : relabel[v]; };
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (options.remove_self_loops && sources_[i] == targets_[i]) {
      continue;
    }
    ++offsets[map_id(sources_[i]) + 1];
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }
  std::vector<Vid> edges(offsets.back());
  std::vector<float> edge_weights(weighted_ ? offsets.back() : 0);
  std::vector<Eid> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (options.remove_self_loops && sources_[i] == targets_[i]) {
      continue;
    }
    Eid slot = cursor[map_id(sources_[i])]++;
    edges[slot] = map_id(targets_[i]);
    if (weighted_) {
      edge_weights[slot] = weights_[i];
    }
  }

  // Sort adjacency lists (enables binary-search connectivity checks), carrying
  // weights through the permutation, and optionally deduplicate (weights of
  // collapsed parallel edges are summed, preserving transition probabilities).
  auto sort_range = [&](Eid begin, Eid end) {
    if (!weighted_) {
      std::sort(edges.begin() + begin, edges.begin() + end);
      return;
    }
    std::vector<std::pair<Vid, float>> pairs(end - begin);
    for (Eid i = begin; i < end; ++i) {
      pairs[i - begin] = {edges[i], edge_weights[i]};
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (Eid i = begin; i < end; ++i) {
      edges[i] = pairs[i - begin].first;
      edge_weights[i] = pairs[i - begin].second;
    }
  };

  std::vector<Eid> final_offsets = offsets;
  if (options.remove_duplicate_edges) {
    std::vector<Vid> deduped;
    std::vector<float> deduped_weights;
    deduped.reserve(edges.size());
    Eid write = 0;
    for (Vid v = 0; v < n; ++v) {
      Eid begin = offsets[v];
      Eid end = offsets[v + 1];
      sort_range(begin, end);
      final_offsets[v] = write;
      for (Eid i = begin; i < end;) {
        Eid run_end = i + 1;
        float weight_sum = weighted_ ? edge_weights[i] : 0.0f;
        while (run_end < end && edges[run_end] == edges[i]) {
          if (weighted_) {
            weight_sum += edge_weights[run_end];
          }
          ++run_end;
        }
        deduped.push_back(edges[i]);
        if (weighted_) {
          deduped_weights.push_back(weight_sum);
        }
        ++write;
        i = run_end;
      }
    }
    final_offsets[n] = write;
    edges = std::move(deduped);
    edge_weights = std::move(deduped_weights);
  } else {
    for (Vid v = 0; v < n; ++v) {
      sort_range(offsets[v], offsets[v + 1]);
    }
  }

  sources_.clear();
  sources_.shrink_to_fit();
  targets_.clear();
  targets_.shrink_to_fit();
  weights_.clear();
  weights_.shrink_to_fit();
  return CsrGraph(std::move(final_offsets), std::move(edges),
                  std::move(edge_weights));
}

}  // namespace fm
