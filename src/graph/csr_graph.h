// Compressed Sparse Row graph representation.
//
// The canonical immutable graph object of the library. FlashMob requires (§4.1) the
// vertices to be ordered by descending degree; `CsrGraph` itself is ordering-agnostic
// and `DegreeSort()` (degree_sort.h) produces the sorted/relabelled instance the
// engine consumes. Adjacency lists are kept sorted ascending so that the node2vec
// connectivity check (§5.2) can use binary search.
//
// Storage is either owned (built in memory) or borrowed from a read-only file
// mapping (LoadCsrBinaryMapped in edge_io.h) — the out-of-core mode where the OS
// page cache streams partitions from disk, the paper's future-work direction.
#ifndef SRC_GRAPH_CSR_GRAPH_H_
#define SRC_GRAPH_CSR_GRAPH_H_

#include <memory>
#include <span>
#include <vector>

#include "src/util/logging.h"
#include "src/util/mmap_file.h"
#include "src/util/types.h"

namespace fm {

class CsrGraph {
 public:
  CsrGraph() = default;

  // Takes ownership of a prebuilt CSR. offsets.size() must be num_vertices + 1 and
  // offsets.back() == edges.size(). Used by GraphBuilder and the generators.
  CsrGraph(std::vector<Eid> offsets, std::vector<Vid> edges);

  // Weighted variant: weights.size() must equal edges.size() (or be empty for an
  // unweighted graph). weights[i] is the transition weight of edges[i] (§2.1's
  // general "transition probability specification").
  CsrGraph(std::vector<Eid> offsets, std::vector<Vid> edges,
           std::vector<float> weights);

  // Borrows the arrays from `mapping` (shared so copies of the graph stay valid).
  // Used by LoadCsrBinaryMapped; the spans must point into the mapping. `weights`
  // may be empty (unweighted file).
  CsrGraph(std::shared_ptr<MappedFile> mapping, std::span<const Eid> offsets,
           std::span<const Vid> edges, std::span<const float> weights = {});

  Vid num_vertices() const {
    return static_cast<Vid>(offsets_view_.empty() ? 0 : offsets_view_.size() - 1);
  }
  Eid num_edges() const { return static_cast<Eid>(edges_view_.size()); }

  Degree degree(Vid v) const {
    FM_DCHECK_LT(v, num_vertices());
    return static_cast<Degree>(offsets_view_[v + 1] - offsets_view_[v]);
  }

  Eid edge_begin(Vid v) const {
    FM_DCHECK_LT(v, num_vertices());
    return offsets_view_[v];
  }
  Eid edge_end(Vid v) const {
    FM_DCHECK_LT(v, num_vertices());
    return offsets_view_[v + 1];
  }

  std::span<const Vid> neighbors(Vid v) const {
    FM_DCHECK_LT(v, num_vertices());
    return edges_view_.subspan(offsets_view_[v],
                               offsets_view_[v + 1] - offsets_view_[v]);
  }

  std::span<const Eid> offsets() const { return offsets_view_; }
  std::span<const Vid> edges() const { return edges_view_; }

  // Edge weights aligned with edges(); empty for unweighted graphs.
  bool weighted() const { return !weights_view_.empty(); }
  std::span<const float> weights() const { return weights_view_; }
  std::span<const float> neighbor_weights(Vid v) const {
    FM_DCHECK_LT(v, num_vertices());
    return weights_view_.subspan(offsets_view_[v],
                                 offsets_view_[v + 1] - offsets_view_[v]);
  }

  // True when the graph borrows its arrays from a file mapping.
  bool memory_mapped() const { return mapping_ != nullptr; }

  // True when v's (sorted) adjacency list contains u. O(log degree(v)).
  bool HasEdge(Vid v, Vid u) const;

  // True when every adjacency list is sorted ascending (required by HasEdge).
  bool AdjacencySorted() const;

  // Maximum out-degree over all vertices (0 for an empty graph).
  Degree MaxDegree() const;

  // Bytes of the CSR arrays (the "CSR Size" column of Table 4).
  uint64_t CsrBytes() const {
    return offsets_view_.size() * sizeof(Eid) + edges_view_.size() * sizeof(Vid);
  }

  // Internal consistency: monotone offsets, edge targets in range. Aborts on
  // violation (programmer error); used by tests and after deserialization.
  void CheckValid() const;

 private:
  // Owned storage (empty when memory-mapped).
  std::vector<Eid> offsets_;
  std::vector<Vid> edges_;
  std::vector<float> weights_;
  // Keeps a borrowed mapping alive across copies of the graph.
  std::shared_ptr<MappedFile> mapping_;
  // Views over whichever storage backs the graph.
  std::span<const Eid> offsets_view_;
  std::span<const Vid> edges_view_;
  std::span<const float> weights_view_;

 public:
  // Copy/move must re-point the views at the destination's own vectors.
  CsrGraph(const CsrGraph& other) { *this = other; }
  CsrGraph& operator=(const CsrGraph& other);
  CsrGraph(CsrGraph&& other) noexcept { *this = std::move(other); }
  CsrGraph& operator=(CsrGraph&& other) noexcept;
};

// Structural equality (same offsets and edge arrays).
bool Identical(const CsrGraph& a, const CsrGraph& b);

}  // namespace fm

#endif  // SRC_GRAPH_CSR_GRAPH_H_
