// Edge-list and CSR file input/output.
//
// Two formats:
//  - Text edge lists ("u v" per line, '#' or '%' comment lines), the format the
//    public SNAP / LAW datasets ship in.
//  - A binary CSR container (magic + counts + offsets + edges) for fast reload of
//    generated stand-in graphs.
#ifndef SRC_GRAPH_EDGE_IO_H_
#define SRC_GRAPH_EDGE_IO_H_

#include <string>

#include "src/graph/csr_graph.h"
#include "src/graph/graph_builder.h"

namespace fm {

// Parses a text edge list into a graph. Throws std::runtime_error on I/O failure or
// malformed lines.
CsrGraph LoadEdgeListText(const std::string& path, const BuildOptions& options = {});

// Writes "u v" lines. Throws std::runtime_error on I/O failure.
void SaveEdgeListText(const CsrGraph& graph, const std::string& path);

// Binary CSR round trip. Throws std::runtime_error on I/O failure or a corrupt file.
void SaveCsrBinary(const CsrGraph& graph, const std::string& path);
CsrGraph LoadCsrBinary(const std::string& path);

// Memory-maps a binary CSR file instead of copying it into RAM: the returned graph
// borrows its arrays from the read-only mapping, so the OS page cache streams
// partitions from disk on demand — the out-of-core walk mode (§5.4/§7 future work;
// see examples/out_of_core_walk.cpp). Throws std::runtime_error on failure.
CsrGraph LoadCsrBinaryMapped(const std::string& path);

}  // namespace fm

#endif  // SRC_GRAPH_EDGE_IO_H_
