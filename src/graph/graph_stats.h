// Degree-percentile bucket statistics (Table 2 of the paper).
//
// Vertices are grouped by degree-rank percentile (<1%, 1–5%, 5–25%, 25–100%); per
// bucket we report the average degree, share of total edges, and — when visit counts
// from a walk are supplied — share of walker visits. These statistics motivate the
// whole FlashMob design (§3: "the higher-degree vertices attract most of the
// traffic").
#ifndef SRC_GRAPH_GRAPH_STATS_H_
#define SRC_GRAPH_GRAPH_STATS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/graph/csr_graph.h"

namespace fm {

inline constexpr size_t kDegreeBuckets = 4;
// Upper percentile bound (exclusive of the previous bound) of each bucket.
inline constexpr std::array<double, kDegreeBuckets> kBucketPercentiles = {1.0, 5.0,
                                                                          25.0, 100.0};

struct DegreeBucketStats {
  std::array<double, kDegreeBuckets> avg_degree = {};
  std::array<double, kDegreeBuckets> edge_share = {};    // fraction of |E|
  std::array<double, kDegreeBuckets> visit_share = {};   // fraction of walker visits
  std::array<Vid, kDegreeBuckets> vertex_count = {};
};

// `graph` must be degree-sorted (descending); bucket membership is by VID rank.
// `visit_counts` is optional (empty => visit_share stays zero); when present it must
// have one entry per vertex.
DegreeBucketStats ComputeDegreeBucketStats(const CsrGraph& graph,
                                           const std::vector<uint64_t>& visit_counts = {});

// Fraction of vertices with degree exactly d (for the §4.2 "degree 1 / degree 2"
// observations that motivate direct sampling).
double FractionWithDegree(const CsrGraph& graph, Degree d);

}  // namespace fm

#endif  // SRC_GRAPH_GRAPH_STATS_H_
