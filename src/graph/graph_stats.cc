#include "src/graph/graph_stats.h"

#include <algorithm>

#include "src/graph/degree_sort.h"
#include "src/util/logging.h"

namespace fm {

DegreeBucketStats ComputeDegreeBucketStats(const CsrGraph& graph,
                                           const std::vector<uint64_t>& visit_counts) {
  FM_CHECK_MSG(IsDegreeSorted(graph),
               "ComputeDegreeBucketStats requires a degree-sorted graph");
  FM_CHECK(visit_counts.empty() || visit_counts.size() == graph.num_vertices());

  DegreeBucketStats stats;
  Vid n = graph.num_vertices();
  if (n == 0) {
    return stats;
  }

  uint64_t total_visits = 0;
  for (uint64_t c : visit_counts) {
    total_visits += c;
  }

  Vid begin = 0;
  for (size_t b = 0; b < kDegreeBuckets; ++b) {
    Vid end = (b + 1 == kDegreeBuckets)
                  ? n
                  : static_cast<Vid>(static_cast<double>(n) *
                                     kBucketPercentiles[b] / 100.0);
    end = std::max(end, begin);  // tiny graphs: keep buckets non-overlapping
    uint64_t edges = 0;
    uint64_t visits = 0;
    for (Vid v = begin; v < end; ++v) {
      edges += graph.degree(v);
      if (!visit_counts.empty()) {
        visits += visit_counts[v];
      }
    }
    stats.vertex_count[b] = end - begin;
    stats.avg_degree[b] =
        (end > begin) ? static_cast<double>(edges) / (end - begin) : 0.0;
    stats.edge_share[b] =
        graph.num_edges() > 0
            ? static_cast<double>(edges) / static_cast<double>(graph.num_edges())
            : 0.0;
    stats.visit_share[b] =
        total_visits > 0
            ? static_cast<double>(visits) / static_cast<double>(total_visits)
            : 0.0;
    begin = end;
  }
  return stats;
}

double FractionWithDegree(const CsrGraph& graph, Degree d) {
  Vid n = graph.num_vertices();
  if (n == 0) {
    return 0.0;
  }
  Vid count = 0;
  for (Vid v = 0; v < n; ++v) {
    if (graph.degree(v) == d) {
      ++count;
    }
  }
  return static_cast<double>(count) / static_cast<double>(n);
}

}  // namespace fm
