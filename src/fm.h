// Umbrella header: the FlashMob public API.
//
// Typical use (see examples/quickstart.cpp):
//
//   fm::GraphBuilder builder;
//   ... AddEdge ...
//   fm::CsrGraph raw = builder.Build({.undirected = true});
//   fm::DegreeSortedGraph sorted = fm::DegreeSort(raw);
//   fm::FlashMobEngine engine(sorted.graph);
//   fm::WalkResult result = engine.Run(fm::DeepWalkSpec(sorted.graph.num_vertices()));
//   // result.paths holds the walks (IDs relabelled; sorted.new_to_old maps back).
#ifndef SRC_FM_H_
#define SRC_FM_H_

#include "src/apps/embedding_corpus.h"
#include "src/apps/pagerank.h"
#include "src/apps/simrank.h"
#include "src/apps/aggregate.h"
#include "src/baseline/graphvite_engine.h"
#include "src/baseline/knightking_engine.h"
#include "src/core/algorithms/deepwalk.h"
#include "src/core/algorithms/node2vec.h"
#include "src/core/engine.h"
#include "src/core/metrics.h"
#include "src/core/numa.h"
#include "src/core/profiler.h"
#include "src/gen/dataset_registry.h"
#include "src/gen/powerlaw_graph.h"
#include "src/gen/rmat.h"
#include "src/gen/toy_graphs.h"
#include "src/gen/uniform_degree.h"
#include "src/graph/degree_sort.h"
#include "src/graph/edge_io.h"
#include "src/graph/graph_builder.h"
#include "src/graph/graph_stats.h"
#include "src/graph/transpose.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/telemetry.h"
#include "src/util/timer.h"
#include "src/util/trace.h"

#endif  // SRC_FM_H_
