// Shared single-step kernels for the baseline engines (§2.2).
//
// Baselines reproduce the memory behaviour of prior systems: every step randomly
// accesses the *whole graph* (offset lookup + edge read anywhere in the CSR), with
// no partitioning, batching, or walker coordination.
#ifndef SRC_BASELINE_COMMON_H_
#define SRC_BASELINE_COMMON_H_

#include <algorithm>

#include "src/core/sample_stage.h"  // HasEdgeHooked
#include "src/graph/csr_graph.h"
#include "src/sampling/rejection.h"
#include "src/sampling/vertex_alias.h"
#include "src/util/sync.h"
#include "src/util/types.h"

namespace fm {

template <typename Rng, typename Hook>
FM_HOT_PATH Vid BaselineStepFirstOrder(const CsrGraph& graph, Vid v,
                                       const VertexAliasTables* alias,
                                       Rng& rng, Hook& hook) {
  hook.Load(graph.offsets().data() + v, 2 * sizeof(Eid));
  Eid begin = graph.edge_begin(v);
  Degree deg = static_cast<Degree>(graph.edge_end(v) - begin);
  if (deg == 0) {
    return v;
  }
  Eid pick = begin + (alias != nullptr
                          ? alias->SampleIndex(graph, v, rng, hook)
                          : static_cast<Degree>(rng.NextBounded(deg)));
  hook.Load(graph.edges().data() + pick, sizeof(Vid));
  return graph.edges()[pick];
}

template <typename Rng, typename Hook>
FM_HOT_PATH Vid BaselineStepNode2Vec(const CsrGraph& graph, Vid cur, Vid prev,
                                     const Node2VecParams& params, Rng& rng,
                                     Hook& hook) {
  hook.Load(graph.offsets().data() + cur, 2 * sizeof(Eid));
  Eid begin = graph.edge_begin(cur);
  Degree deg = static_cast<Degree>(graph.edge_end(cur) - begin);
  if (deg == 0) {
    return cur;
  }
  if (prev == kInvalidVid) {
    Eid pick = begin + rng.NextBounded(deg);
    hook.Load(graph.edges().data() + pick, sizeof(Vid));
    return graph.edges()[pick];
  }
  // div: reciprocals of the runtime p/q parameters, hoisted out of the
  // rejection loop.
  double bound = std::max({1.0, 1.0 / params.p, 1.0 / params.q});
  while (true) {
    Eid pick = begin + rng.NextBounded(deg);
    hook.Load(graph.edges().data() + pick, sizeof(Vid));
    Vid candidate = graph.edges()[pick];
    double w;
    if (candidate == prev) {
      // div: node2vec bias weights 1/p and 1/q; runtime parameters, cannot
      // fold to shifts, and they hit only the rejection branch.
      w = 1.0 / params.p;
    } else if (HasEdgeHooked(graph, prev, candidate, hook)) {
      w = 1.0;
    } else {
      // div: see the 1/p justification above.
      w = 1.0 / params.q;
    }
    if (rng.NextDouble() * bound < w) {
      return candidate;
    }
  }
}

}  // namespace fm

#endif  // SRC_BASELINE_COMMON_H_
