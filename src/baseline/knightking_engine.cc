#include "src/baseline/knightking_engine.h"

#include <algorithm>
#include <memory>

#include "src/baseline/common.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace fm {
namespace {

inline Vid VertexOfEdgePos(std::span<const Eid> offsets, Eid pos) {
  auto it = std::upper_bound(offsets.begin(), offsets.end(), pos);
  return static_cast<Vid>((it - offsets.begin()) - 1);
}

}  // namespace

KnightKingEngine::KnightKingEngine(const CsrGraph& graph, BaselineOptions options)
    : graph_(graph), options_(options) {
  FM_CHECK(graph.num_vertices() > 0);
  if (options_.pool == nullptr) {
    options_.pool = &ThreadPool::Global();
  }
}

WalkResult KnightKingEngine::Run(const WalkSpec& spec) {
  NullMemHook hook;
  if (options_.use_mersenne) {
    return RunImpl<MersenneRng>(spec, hook, false);
  }
  return RunImpl<XorShiftRng>(spec, hook, false);
}

WalkResult KnightKingEngine::RunInstrumented(const WalkSpec& spec,
                                             CacheHierarchy* sim) {
  CacheSimHook hook(sim);
  if (options_.use_mersenne) {
    return RunImpl<MersenneRng>(spec, hook, true);
  }
  return RunImpl<XorShiftRng>(spec, hook, true);
}

template <typename Rng, typename Hook>
WalkResult KnightKingEngine::RunImpl(const WalkSpec& spec, Hook& hook,
                                     bool single_thread) {
  const Vid n = graph_.num_vertices();
  const Eid m = graph_.num_edges();
  const bool node2vec = spec.algorithm == WalkAlgorithm::kNode2Vec;
  FM_CHECK_MSG(!spec.use_edge_weights || graph_.weighted(),
               "use_edge_weights requires a weighted graph");
  FM_CHECK_MSG(!(spec.use_edge_weights && node2vec),
               "weighted node2vec is not supported");
  std::unique_ptr<VertexAliasTables> alias_storage;
  if (spec.use_edge_weights) {
    alias_storage = std::make_unique<VertexAliasTables>(graph_);
  }
  const VertexAliasTables* alias = alias_storage.get();
  Wid walkers = spec.num_walkers != 0 ? spec.num_walkers : n;

  ThreadPool single_pool(1);
  ThreadPool* pool = single_thread ? &single_pool : options_.pool;

  WalkResult result;
  result.stats.walker_density =
      static_cast<double>(walkers) / std::max<double>(1.0, static_cast<double>(m));
  result.stats.episodes = 1;
  if (options_.count_visits) {
    result.visit_counts.assign(n, 0);  // fmlint:allow(visit-counts-mut) baseline engine fills its own result
  }

  // Walkers advance in lockstep rounds, each processed one by one within its
  // thread's contiguous range ("all (active) walkers take turns to each sample and
  // follow one edge", §1). Paths are rows just like FlashMob's output format.
  PathSet paths(walkers, spec.steps);
  pool->ParallelChunks(walkers, [&](uint64_t begin, uint64_t end, uint32_t) {
    Rng rng(DeriveSeed(spec.seed, 0xBA5E ^ begin));
    Vid* row = paths.Row(0).data();
    for (Wid j = begin; j < end; ++j) {
      row[j] = (m > 0) ? VertexOfEdgePos(graph_.offsets(), rng.NextBounded(m))
                       : static_cast<Vid>(rng.NextBounded(n));
    }
  });

  Timer walk_timer;
  for (uint32_t step = 0; step < spec.steps; ++step) {
    const Vid* cur = paths.Row(step).data();
    const Vid* prev = step > 0 ? paths.Row(step - 1).data() : nullptr;
    Vid* next = paths.Row(step + 1).data();
    pool->ParallelChunks(walkers, [&](uint64_t begin, uint64_t end, uint32_t) {
      Rng rng(DeriveSeed(spec.seed,
                         0x55EFULL ^ (static_cast<uint64_t>(step) << 32) ^ begin));
      for (Wid j = begin; j < end; ++j) {
        Vid v = cur[j];
        if (v == kInvalidVid) {
          next[j] = kInvalidVid;
          continue;
        }
        hook.Load(cur + j, sizeof(Vid));
        Vid nxt;
        if (node2vec) {
          Vid pv = prev != nullptr ? prev[j] : kInvalidVid;
          nxt = BaselineStepNode2Vec(graph_, v, pv, spec.node2vec, rng, hook);
        } else {
          nxt = BaselineStepFirstOrder(graph_, v, alias, rng, hook);
        }
        if (spec.stop_probability > 0 &&
            rng.NextDouble() < spec.stop_probability) {
          nxt = kInvalidVid;
        }
        next[j] = nxt;
        hook.Store(next + j, sizeof(Vid));
      }
    });
    result.stats.total_steps += walkers;
  }
  result.stats.times.sample_s = walk_timer.Elapsed();

  if (options_.count_visits) {
    result.visit_counts = paths.VisitCounts(n);  // fmlint:allow(visit-counts-mut) baseline engine fills its own result
  }
  if (spec.keep_paths) {
    result.paths = std::move(paths);
  }
  return result;
}

}  // namespace fm
