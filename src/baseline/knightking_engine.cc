#include "src/baseline/knightking_engine.h"

#include <algorithm>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/baseline/common.h"
#include "src/core/interleave.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace fm {
namespace {

inline Vid VertexOfEdgePos(std::span<const Eid> offsets, Eid pos) {
  auto it = std::upper_bound(offsets.begin(), offsets.end(), pos);
  return static_cast<Vid>((it - offsets.begin()) - 1);
}

// Ring ops mirroring BaselineStepFirstOrder + the stop draw, draw-for-draw:
// offsets -> (alias row when weighted) -> edge cell. Walkers map ring index i
// to global index base + i, and each seeds its own stream from the *global*
// index, so results are independent of both interleave depth and chunking.
// Dead walkers complete at Init without consuming draws, exactly like the
// sequential loop's skip.
template <typename Rng, typename Hook>
struct BaselineFirstOrderRing {
  const CsrGraph& graph;
  const VertexAliasTables* alias;
  const Vid* cur;
  Vid* next;
  double stop_probability;
  uint64_t step_seed;
  Wid base;
  Hook& hook;
  InterleaveStats stats;

  BaselineFirstOrderRing(const CsrGraph& graph_in,
                         const VertexAliasTables* alias_in, const Vid* cur_in,
                         Vid* next_in, double stop_probability_in,
                         uint64_t step_seed_in, Wid base_in, Hook& hook_in)
      : graph(graph_in),
        alias(alias_in),
        cur(cur_in),
        next(next_in),
        stop_probability(stop_probability_in),
        step_seed(step_seed_in),
        base(base_in),
        hook(hook_in) {}

  enum : uint8_t { kStageOffsets, kStageAlias, kStageEdge };
  struct Slot {
    Rng rng{0};  // re-seeded per walker at Init
    Wid j = 0;
    Vid v = 0;
    Eid begin = 0;
    Eid pick = 0;
    Degree deg = 0;
    uint8_t stage = kStageOffsets;
  };
  Slot slots[kMaxInterleaveDepth];

  FM_HOT_PATH bool Finish(Slot& s, Vid nxt) {
    if (stop_probability > 0 && s.rng.NextDouble() < stop_probability) {
      nxt = kInvalidVid;
    }
    next[s.j] = nxt;
    hook.Store(next + s.j, sizeof(Vid));
    return false;
  }

  FM_HOT_PATH bool Init(uint32_t slot, Wid i) {
    Slot& s = slots[slot];
    s.j = base + i;
    s.v = cur[s.j];
    if (s.v == kInvalidVid) {
      next[s.j] = kInvalidVid;
      return false;
    }
    hook.Load(cur + s.j, sizeof(Vid));
    s.rng.Seed(WalkerSeed(step_seed, s.j));
    PrefetchRead(graph.offsets().data() + s.v);
    ++stats.offsets;
    s.stage = kStageOffsets;
    return true;
  }

  FM_HOT_PATH bool Advance(uint32_t slot) {
    Slot& s = slots[slot];
    const Vid* edges = graph.edges().data();
    switch (s.stage) {
      case kStageOffsets: {
        hook.Load(graph.offsets().data() + s.v, 2 * sizeof(Eid));
        s.begin = graph.edge_begin(s.v);
        s.deg = static_cast<Degree>(graph.edge_end(s.v) - s.begin);
        if (s.deg == 0) {
          return Finish(s, s.v);
        }
        if (alias != nullptr) {
          s.pick = alias->PickSlot(s.begin, s.deg, s.rng);
          PrefetchRead(alias->RowAddr(s.pick));
          ++stats.alias;
          s.stage = kStageAlias;
          return true;
        }
        s.pick = s.begin + s.rng.NextBounded(s.deg);
        PrefetchRead(edges + s.pick);
        ++stats.edges;
        s.stage = kStageEdge;
        return true;
      }
      case kStageAlias: {
        Degree idx = alias->ResolveSlot(s.begin, s.pick, s.rng, hook);
        s.pick = s.begin + idx;
        PrefetchRead(edges + s.pick);
        ++stats.edges;
        s.stage = kStageEdge;
        return true;
      }
      default: {
        hook.Load(edges + s.pick, sizeof(Vid));
        return Finish(s, edges[s.pick]);
      }
    }
  }
};

// Ring ops mirroring BaselineStepNode2Vec + the stop draw. The rejection loop
// re-draws a candidate edge per retry with a fresh prefetch, so every retry's
// edge read gets its own ring-lap of distance; the connectivity binary search
// stays inline (data-dependent probes, unprefetchable).
template <typename Rng, typename Hook>
struct BaselineNode2VecRing {
  const CsrGraph& graph;
  const Node2VecParams& params;
  const Vid* cur;
  const Vid* prev;
  Vid* next;
  double stop_probability;
  uint64_t step_seed;
  Wid base;
  double bound;
  Hook& hook;
  InterleaveStats stats;

  BaselineNode2VecRing(const CsrGraph& graph_in,
                       const Node2VecParams& params_in, const Vid* cur_in,
                       const Vid* prev_in, Vid* next_in,
                       double stop_probability_in, uint64_t step_seed_in,
                       Wid base_in, double bound_in, Hook& hook_in)
      : graph(graph_in),
        params(params_in),
        cur(cur_in),
        prev(prev_in),
        next(next_in),
        stop_probability(stop_probability_in),
        step_seed(step_seed_in),
        base(base_in),
        bound(bound_in),
        hook(hook_in) {}

  enum : uint8_t { kStageOffsets, kStageFirstEdge, kStageCandidate };
  struct Slot {
    Rng rng{0};  // re-seeded per walker at Init
    Wid j = 0;
    Vid v = 0;
    Vid pv = 0;
    Eid begin = 0;
    Eid pick = 0;
    Degree deg = 0;
    uint8_t stage = kStageOffsets;
  };
  Slot slots[kMaxInterleaveDepth];

  FM_HOT_PATH bool Finish(Slot& s, Vid nxt) {
    if (stop_probability > 0 && s.rng.NextDouble() < stop_probability) {
      nxt = kInvalidVid;
    }
    next[s.j] = nxt;
    hook.Store(next + s.j, sizeof(Vid));
    return false;
  }

  FM_HOT_PATH bool Init(uint32_t slot, Wid i) {
    Slot& s = slots[slot];
    s.j = base + i;
    s.v = cur[s.j];
    if (s.v == kInvalidVid) {
      next[s.j] = kInvalidVid;
      return false;
    }
    hook.Load(cur + s.j, sizeof(Vid));
    s.pv = prev != nullptr ? prev[s.j] : kInvalidVid;
    s.rng.Seed(WalkerSeed(step_seed, s.j));
    PrefetchRead(graph.offsets().data() + s.v);
    ++stats.offsets;
    s.stage = kStageOffsets;
    return true;
  }

  FM_HOT_PATH bool Advance(uint32_t slot) {
    Slot& s = slots[slot];
    const Vid* edges = graph.edges().data();
    switch (s.stage) {
      case kStageOffsets: {
        hook.Load(graph.offsets().data() + s.v, 2 * sizeof(Eid));
        s.begin = graph.edge_begin(s.v);
        s.deg = static_cast<Degree>(graph.edge_end(s.v) - s.begin);
        if (s.deg == 0) {
          return Finish(s, s.v);
        }
        s.pick = s.begin + s.rng.NextBounded(s.deg);
        PrefetchRead(edges + s.pick);
        ++stats.edges;
        s.stage = s.pv == kInvalidVid ? kStageFirstEdge : kStageCandidate;
        return true;
      }
      case kStageFirstEdge: {
        hook.Load(edges + s.pick, sizeof(Vid));
        return Finish(s, edges[s.pick]);
      }
      default: {
        hook.Load(edges + s.pick, sizeof(Vid));
        Vid candidate = edges[s.pick];
        double w;
        if (candidate == s.pv) {
          // div: node2vec bias weights 1/p and 1/q; runtime parameters, cannot
          // fold to shifts, and they hit only the rejection branch.
          w = 1.0 / params.p;
        } else if (HasEdgeHooked(graph, s.pv, candidate, hook)) {
          w = 1.0;
        } else {
          // div: see the 1/p justification above.
          w = 1.0 / params.q;
        }
        if (s.rng.NextDouble() * bound < w) {
          return Finish(s, candidate);
        }
        s.pick = s.begin + s.rng.NextBounded(s.deg);
        PrefetchRead(edges + s.pick);
        ++stats.edges;
        return true;
      }
    }
  }
};

}  // namespace

KnightKingEngine::KnightKingEngine(const CsrGraph& graph, BaselineOptions options)
    : graph_(graph), options_(options) {
  FM_CHECK(graph.num_vertices() > 0);
  if (options_.pool == nullptr) {
    options_.pool = &ThreadPool::Global();
  }
}

WalkResult KnightKingEngine::Run(const WalkSpec& spec) {
  NullMemHook hook;
  if (options_.use_mersenne) {
    return RunImpl<MersenneRng>(spec, hook, false);
  }
  return RunImpl<XorShiftRng>(spec, hook, false);
}

WalkResult KnightKingEngine::RunInstrumented(const WalkSpec& spec,
                                             CacheHierarchy* sim) {
  CacheSimHook hook(sim);
  if (options_.use_mersenne) {
    return RunImpl<MersenneRng>(spec, hook, true);
  }
  return RunImpl<XorShiftRng>(spec, hook, true);
}

template <typename Rng, typename Hook>
WalkResult KnightKingEngine::RunImpl(const WalkSpec& spec, Hook& hook,
                                     bool single_thread) {
  const Vid n = graph_.num_vertices();
  const Eid m = graph_.num_edges();
  const bool node2vec = spec.algorithm == WalkAlgorithm::kNode2Vec;
  FM_CHECK_MSG(!spec.use_edge_weights || graph_.weighted(),
               "use_edge_weights requires a weighted graph");
  FM_CHECK_MSG(!(spec.use_edge_weights && node2vec),
               "weighted node2vec is not supported");
  std::unique_ptr<VertexAliasTables> alias_storage;
  if (spec.use_edge_weights) {
    alias_storage = std::make_unique<VertexAliasTables>(graph_);
  }
  const VertexAliasTables* alias = alias_storage.get();
  Wid walkers = spec.num_walkers != 0 ? spec.num_walkers : n;

  ThreadPool single_pool(1);
  ThreadPool* pool = single_thread ? &single_pool : options_.pool;

  // The ring executor only runs on the per-walker-seeded xorshift path, and
  // never under the cache simulator (prefetch hints are not simulated, so the
  // sim must see the sequential access stream).
  constexpr bool kPerWalkerStreams = std::is_same_v<Rng, XorShiftRng>;
  const uint32_t depth =
      (kPerWalkerStreams && !Hook::kEnabled)
          ? std::min(std::max(options_.interleave_depth, 1u),
                     kMaxInterleaveDepth)
          : 1;

  WalkResult result;
  result.stats.walker_density =
      static_cast<double>(walkers) / std::max<double>(1.0, static_cast<double>(m));
  result.stats.episodes = 1;
  result.stats.interleave_depth = depth;
  if (options_.count_visits) {
    result.visit_counts.assign(n, 0);  // fmlint:allow(visit-counts-mut) baseline engine fills its own result
  }

  // Walkers advance in lockstep rounds, each processed one by one within its
  // thread's contiguous range ("all (active) walkers take turns to each sample and
  // follow one edge", §1). Paths are rows just like FlashMob's output format.
  PathSet paths(walkers, spec.steps);
  pool->ParallelChunks(walkers, [&](uint64_t begin, uint64_t end, uint32_t) {
    Rng rng(DeriveSeed(spec.seed, 0xBA5E ^ begin));
    Vid* row = paths.Row(0).data();
    for (Wid j = begin; j < end; ++j) {
      row[j] = (m > 0) ? VertexOfEdgePos(graph_.offsets(), rng.NextBounded(m))
                       : static_cast<Vid>(rng.NextBounded(n));
    }
  });

  std::vector<InterleaveStats> prefetch_shards(pool->thread_count());
  Timer walk_timer;
  for (uint32_t step = 0; step < spec.steps; ++step) {
    const Vid* cur = paths.Row(step).data();
    const Vid* prev = step > 0 ? paths.Row(step - 1).data() : nullptr;
    Vid* next = paths.Row(step + 1).data();
    const uint64_t step_seed =
        DeriveSeed(spec.seed, 0x55EFULL ^ (static_cast<uint64_t>(step) << 32));
    pool->ParallelChunks(
        walkers, [&](uint64_t begin, uint64_t end, uint32_t worker) {
          if constexpr (kPerWalkerStreams) {
            // One RNG stream per (step, global walker): walks do not depend on
            // the chunking or on the ring depth.
            if (node2vec) {
              // div: reciprocal bound hoisted once per chunk, as in
              // BaselineStepNode2Vec.
              double bound =
                  std::max({1.0, 1.0 / spec.node2vec.p, 1.0 / spec.node2vec.q});
              BaselineNode2VecRing<Rng, Hook> ring{
                  graph_, spec.node2vec,         cur,
                  prev,   next,                  spec.stop_probability,
                  step_seed, static_cast<Wid>(begin), bound,
                  hook};
              RunInterleavedRing(depth, static_cast<Wid>(end - begin), ring);
              prefetch_shards[worker] += ring.stats;
            } else {
              BaselineFirstOrderRing<Rng, Hook> ring{
                  graph_,    alias,
                  cur,       next,
                  spec.stop_probability, step_seed,
                  static_cast<Wid>(begin), hook};
              RunInterleavedRing(depth, static_cast<Wid>(end - begin), ring);
              prefetch_shards[worker] += ring.stats;
            }
            return;
          }
          Rng rng(DeriveSeed(
              spec.seed,
              0x55EFULL ^ (static_cast<uint64_t>(step) << 32) ^ begin));
          for (Wid j = begin; j < end; ++j) {
            Vid v = cur[j];
            if (v == kInvalidVid) {
              next[j] = kInvalidVid;
              continue;
            }
            hook.Load(cur + j, sizeof(Vid));
            Vid nxt;
            if (node2vec) {
              Vid pv = prev != nullptr ? prev[j] : kInvalidVid;
              nxt = BaselineStepNode2Vec(graph_, v, pv, spec.node2vec, rng, hook);
            } else {
              nxt = BaselineStepFirstOrder(graph_, v, alias, rng, hook);
            }
            if (spec.stop_probability > 0 &&
                rng.NextDouble() < spec.stop_probability) {
              nxt = kInvalidVid;
            }
            next[j] = nxt;
            hook.Store(next + j, sizeof(Vid));
          }
        });
    result.stats.total_steps += walkers;
  }
  result.stats.times.sample_s = walk_timer.Elapsed();
  for (const InterleaveStats& shard : prefetch_shards) {
    result.stats.prefetch += shard;
  }

  if (options_.count_visits) {
    result.visit_counts = paths.VisitCounts(n);  // fmlint:allow(visit-counts-mut) baseline engine fills its own result
  }
  if (spec.keep_paths) {
    result.paths = std::move(paths);
  }
  return result;
}

}  // namespace fm
