#include "src/baseline/graphvite_engine.h"

#include <algorithm>
#include <memory>

#include "src/baseline/common.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace fm {
namespace {

inline Vid VertexOfEdgePos(std::span<const Eid> offsets, Eid pos) {
  auto it = std::upper_bound(offsets.begin(), offsets.end(), pos);
  return static_cast<Vid>((it - offsets.begin()) - 1);
}

}  // namespace

GraphViteEngine::GraphViteEngine(const CsrGraph& graph, BaselineOptions options)
    : graph_(graph), options_(options) {
  FM_CHECK(graph.num_vertices() > 0);
  if (options_.pool == nullptr) {
    options_.pool = &ThreadPool::Global();
  }
}

WalkResult GraphViteEngine::Run(const WalkSpec& spec) {
  NullMemHook hook;
  if (options_.use_mersenne) {
    return RunImpl<MersenneRng>(spec, hook, false);
  }
  return RunImpl<XorShiftRng>(spec, hook, false);
}

WalkResult GraphViteEngine::RunInstrumented(const WalkSpec& spec,
                                            CacheHierarchy* sim) {
  CacheSimHook hook(sim);
  if (options_.use_mersenne) {
    return RunImpl<MersenneRng>(spec, hook, true);
  }
  return RunImpl<XorShiftRng>(spec, hook, true);
}

template <typename Rng, typename Hook>
WalkResult GraphViteEngine::RunImpl(const WalkSpec& spec, Hook& hook,
                                    bool single_thread) {
  const Vid n = graph_.num_vertices();
  const Eid m = graph_.num_edges();
  const bool node2vec = spec.algorithm == WalkAlgorithm::kNode2Vec;
  FM_CHECK_MSG(!spec.use_edge_weights || graph_.weighted(),
               "use_edge_weights requires a weighted graph");
  FM_CHECK_MSG(!(spec.use_edge_weights && node2vec),
               "weighted node2vec is not supported");
  std::unique_ptr<VertexAliasTables> alias_storage;
  if (spec.use_edge_weights) {
    alias_storage = std::make_unique<VertexAliasTables>(graph_);
  }
  const VertexAliasTables* alias = alias_storage.get();
  Wid walkers = spec.num_walkers != 0 ? spec.num_walkers : n;

  ThreadPool single_pool(1);
  ThreadPool* pool = single_thread ? &single_pool : options_.pool;

  WalkResult result;
  result.stats.walker_density =
      static_cast<double>(walkers) / std::max<double>(1.0, static_cast<double>(m));
  result.stats.episodes = 1;

  PathSet paths(walkers, spec.steps);
  Timer walk_timer;
  // One walker's whole path at a time: every transition depends on the previous
  // one — a graph-wide pointer chase.
  pool->ParallelChunks(walkers, [&](uint64_t begin, uint64_t end, uint32_t) {
    Rng rng(DeriveSeed(spec.seed, 0x6E17ULL ^ begin));
    for (Wid j = begin; j < end; ++j) {
      Vid v = (m > 0) ? VertexOfEdgePos(graph_.offsets(), rng.NextBounded(m))
                      : static_cast<Vid>(rng.NextBounded(n));
      paths.At(j, 0) = v;
      Vid prev = kInvalidVid;
      for (uint32_t step = 0; step < spec.steps; ++step) {
        Vid nxt;
        if (v == kInvalidVid) {
          nxt = kInvalidVid;
        } else if (node2vec) {
          nxt = BaselineStepNode2Vec(graph_, v, prev, spec.node2vec, rng, hook);
        } else {
          nxt = BaselineStepFirstOrder(graph_, v, alias, rng, hook);
        }
        if (nxt != kInvalidVid && spec.stop_probability > 0 &&
            rng.NextDouble() < spec.stop_probability) {
          nxt = kInvalidVid;
        }
        paths.At(j, step + 1) = nxt;
        hook.Store(&paths.At(j, step + 1), sizeof(Vid));
        prev = v;
        v = nxt;
      }
    }
  });
  result.stats.total_steps = static_cast<uint64_t>(walkers) * spec.steps;
  result.stats.times.sample_s = walk_timer.Elapsed();

  if (options_.count_visits) {
    result.visit_counts = paths.VisitCounts(n);  // fmlint:allow(visit-counts-mut) baseline engine fills its own result
  }
  if (spec.keep_paths) {
    result.paths = std::move(paths);
  }
  return result;
}

}  // namespace fm
