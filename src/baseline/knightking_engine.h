// KnightKing-like walker-centric baseline (Yang et al., SOSP 2019; §2.2, §5.1).
//
// The state-of-the-art comparison system: walkers advance in lockstep rounds, each
// sampling one edge with random whole-graph accesses; no partitioning or batching.
// Per §5.2 it uses the Mersenne Twister RNG (switchable to xorshift* to re-run the
// paper's 4-9% RNG ablation). Single-node mode of the original distributed engine.
#ifndef SRC_BASELINE_KNIGHTKING_ENGINE_H_
#define SRC_BASELINE_KNIGHTKING_ENGINE_H_

#include "src/cachesim/hierarchy.h"
#include "src/core/engine.h"  // WalkResult / WalkStats
#include "src/graph/csr_graph.h"
#include "src/util/thread_pool.h"

namespace fm {

struct BaselineOptions {
  ThreadPool* pool = nullptr;    // nullptr = global
  bool use_mersenne = true;      // KnightKing's RNG (§5.2); false = xorshift*
  bool count_visits = true;
  // Step-interleaving ring depth (src/core/interleave.h), honored on the
  // xorshift path only: that path seeds one RNG stream per walker, which makes
  // walks bit-identical at every depth. The Mersenne path keeps the historical
  // per-chunk stream (re-seeding a 2.5 KB mt19937_64 state per walker would
  // dominate the step) and always runs sequentially. 1 disables.
  uint32_t interleave_depth = 1;
};

class KnightKingEngine {
 public:
  explicit KnightKingEngine(const CsrGraph& graph, BaselineOptions options = {});

  WalkResult Run(const WalkSpec& spec);

  // Single-threaded run with every access fed through `sim` (Table 5 / Fig 1b).
  WalkResult RunInstrumented(const WalkSpec& spec, CacheHierarchy* sim);

 private:
  template <typename Rng, typename Hook>
  WalkResult RunImpl(const WalkSpec& spec, Hook& hook, bool single_thread);

  const CsrGraph& graph_;
  BaselineOptions options_;
};

}  // namespace fm

#endif  // SRC_BASELINE_KNIGHTKING_ENGINE_H_
