// GraphVite-like path-per-walker baseline (Zhu et al., WWW 2019; §2.2).
//
// The CPU random-walk component of the CPU-GPU hybrid embedding system: it
// "finishes one walker's entire path before starting another", creating a dependent
// pointer-chasing access chain across the whole graph — the most cache-hostile
// pattern in Table 3's inventory.
#ifndef SRC_BASELINE_GRAPHVITE_ENGINE_H_
#define SRC_BASELINE_GRAPHVITE_ENGINE_H_

#include "src/baseline/knightking_engine.h"  // BaselineOptions

namespace fm {

class GraphViteEngine {
 public:
  explicit GraphViteEngine(const CsrGraph& graph, BaselineOptions options = {});

  WalkResult Run(const WalkSpec& spec);
  WalkResult RunInstrumented(const WalkSpec& spec, CacheHierarchy* sim);

 private:
  template <typename Rng, typename Hook>
  WalkResult RunImpl(const WalkSpec& spec, Hook& hook, bool single_thread);

  const CsrGraph& graph_;
  BaselineOptions options_;
};

}  // namespace fm

#endif  // SRC_BASELINE_GRAPHVITE_ENGINE_H_
