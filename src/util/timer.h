// Monotonic wall-clock timing helpers.
#ifndef SRC_UTIL_TIMER_H_
#define SRC_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fm {

// Stopwatch over the steady clock. Accumulates across Start/Stop pairs.
class Timer {
 public:
  Timer() { Start(); }

  void Start() { start_ = Clock::now(); }

  // Returns the elapsed time of the current lap and folds it into the total.
  double Stop() {
    double lap = Elapsed();
    total_ += lap;
    return lap;
  }

  // Seconds since the last Start().
  double Elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedNanos() const { return Elapsed() * 1e9; }
  double TotalSeconds() const { return total_; }
  void Reset() {
    total_ = 0;
    Start();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  double total_ = 0;
};

}  // namespace fm

#endif  // SRC_UTIL_TIMER_H_
