// Monotonic wall-clock timing helpers.
#ifndef SRC_UTIL_TIMER_H_
#define SRC_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fm {

// Stopwatch over the steady clock. Accumulates across Start/Stop pairs.
class Timer {
 public:
  Timer() { Start(); }

  void Start() { start_ = Clock::now(); }

  // Returns the elapsed seconds of the current lap, folds them into the
  // total, and restarts the lap — consecutive Lap() calls therefore partition
  // wall time contiguously and TotalSeconds() is exactly the sum of the
  // returned laps (tests/timer_test.cc).
  double Lap() {
    double lap = Elapsed();
    total_ += lap;
    Start();
    return lap;
  }

  // Seconds since the last Start().
  double Elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedNanos() const { return Elapsed() * 1e9; }
  double TotalSeconds() const { return total_; }
  void Reset() {
    total_ = 0;
    Start();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  double total_ = 0;
};

}  // namespace fm

#endif  // SRC_UTIL_TIMER_H_
