// Cache hierarchy geometry of the machine FlashMob runs on.
//
// The partition planner (§4.4) needs the capacities of each cache level to size
// vertex partitions; the cache simulator needs the full geometry. Sizes are read from
// sysfs when available and fall back to the paper's test platform (Xeon Gold 6126:
// 32KB L1d, 1MB L2 per core, 19.75MB shared L3, exclusive LLC — §5.1).
#ifndef SRC_UTIL_CACHE_INFO_H_
#define SRC_UTIL_CACHE_INFO_H_

#include <cstdint>

namespace fm {

struct CacheInfo {
  uint64_t l1_bytes = 32 * 1024;
  uint64_t l2_bytes = 1024 * 1024;
  uint64_t l3_bytes = 19ull * 1024 * 1024 + 768 * 1024;  // 19.75 MB
  uint32_t l1_ways = 8;
  uint32_t l2_ways = 16;
  uint32_t l3_ways = 11;
  uint32_t line_bytes = 64;
  bool l3_exclusive = true;  // Skylake-SP non-inclusive LLC (§2.3)

  // Capacity of cache level 1/2/3; level 4 means "DRAM" and returns a large value.
  uint64_t LevelBytes(uint32_t level) const;
};

// Geometry detected from /sys/devices/system/cpu (fields missing there keep the
// paper-platform defaults). FM_L1_KB / FM_L2_KB / FM_L3_KB env vars override.
const CacheInfo& DetectCacheInfo();

// The paper's test platform, for deterministic tests and the cache simulator default.
CacheInfo PaperCacheInfo();

}  // namespace fm

#endif  // SRC_UTIL_CACHE_INFO_H_
