#include "src/util/perf_counters.h"

#include <cstring>
#include <utility>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace fm {

namespace {

const char* const kCounterNames[kNumPerfCounters] = {
    "cycles", "instructions", "llc_loads", "llc_misses", "l1d_misses",
    "dtlb_misses"};

PerfEventOpenFn g_open_override = nullptr;

#if defined(__linux__)
// The one place in the repo allowed to issue the raw syscall (fmlint rule
// `perf-syscall`): everything else goes through PerfCounterGroup.
long RealPerfEventOpen(void* attr, int32_t pid, int32_t cpu, int32_t group_fd,
                       unsigned long flags) {
  return syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags);
}

long InvokePerfEventOpen(void* attr, int32_t pid, int32_t cpu, int32_t group_fd,
                         unsigned long flags) {
  PerfEventOpenFn fn = g_open_override;
  return fn != nullptr ? fn(attr, pid, cpu, group_fd, flags)
                       : RealPerfEventOpen(attr, pid, cpu, group_fd, flags);
}

uint64_t HwCacheConfig(uint64_t cache, uint64_t op, uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

// (type, config) per PerfCounterId slot.
struct EventSpec {
  uint32_t type;
  uint64_t config;
};

EventSpec EventForSlot(int slot) {
  switch (static_cast<PerfCounterId>(slot)) {
    case PerfCounterId::kCycles:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
    case PerfCounterId::kInstructions:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS};
    case PerfCounterId::kLlcLoads:
      return {PERF_TYPE_HW_CACHE,
              HwCacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                            PERF_COUNT_HW_CACHE_RESULT_ACCESS)};
    case PerfCounterId::kLlcMisses:
      return {PERF_TYPE_HW_CACHE,
              HwCacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                            PERF_COUNT_HW_CACHE_RESULT_MISS)};
    case PerfCounterId::kL1dMisses:
      return {PERF_TYPE_HW_CACHE,
              HwCacheConfig(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                            PERF_COUNT_HW_CACHE_RESULT_MISS)};
    case PerfCounterId::kDtlbMisses:
      return {PERF_TYPE_HW_CACHE,
              HwCacheConfig(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
                            PERF_COUNT_HW_CACHE_RESULT_MISS)};
  }
  return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
}
#else
long InvokePerfEventOpen(void* attr, int32_t pid, int32_t cpu, int32_t group_fd,
                         unsigned long flags) {
  PerfEventOpenFn fn = g_open_override;
  if (fn != nullptr) {
    return fn(attr, pid, cpu, group_fd, flags);
  }
  return -1;  // no perf_event_open outside Linux: permanent noop backend
}
#endif

}  // namespace

const char* PerfCounterName(int index) {
  return index >= 0 && index < kNumPerfCounters ? kCounterNames[index]
                                                : "unknown";
}

double CounterSample::Ipc() const {
  return cycles() == 0 ? 0.0
                       : static_cast<double>(instructions()) /
                             static_cast<double>(cycles());
}

double CounterSample::LlcMissRatio() const {
  return llc_loads() == 0 ? 0.0
                          : static_cast<double>(llc_misses()) /
                                static_cast<double>(llc_loads());
}

bool CounterSample::AllZero() const {
  for (uint64_t v : values) {
    if (v != 0) {
      return false;
    }
  }
  return true;
}

CounterSample& CounterSample::operator+=(const CounterSample& other) {
  for (int i = 0; i < kNumPerfCounters; ++i) {
    values[i] += other.values[i];
  }
  return *this;
}

CounterSample operator-(const CounterSample& a, const CounterSample& b) {
  CounterSample out;
  for (int i = 0; i < kNumPerfCounters; ++i) {
    out.values[i] = a.values[i] >= b.values[i] ? a.values[i] - b.values[i] : 0;
  }
  return out;
}

void SetPerfEventOpenForTest(PerfEventOpenFn fn) { g_open_override = fn; }

PerfCounterGroup::~PerfCounterGroup() {
#if defined(__linux__)
  for (int fd : fds_) {
    if (fd >= 0) {
      close(fd);
    }
  }
#endif
}

PerfCounterGroup::PerfCounterGroup(PerfCounterGroup&& other) noexcept {
  std::memcpy(fds_, other.fds_, sizeof(fds_));
  num_open_ = other.num_open_;
  for (int& fd : other.fds_) {
    fd = -1;
  }
  other.num_open_ = 0;
}

PerfCounterGroup& PerfCounterGroup::operator=(PerfCounterGroup&& other) noexcept {
  if (this != &other) {
    this->~PerfCounterGroup();
    std::memcpy(fds_, other.fds_, sizeof(fds_));
    num_open_ = other.num_open_;
    for (int& fd : other.fds_) {
      fd = -1;
    }
    other.num_open_ = 0;
  }
  return *this;
}

PerfCounterGroup PerfCounterGroup::OpenForThread(int32_t tid) {
  PerfCounterGroup group;
#if defined(__linux__)
  for (int slot = 0; slot < kNumPerfCounters; ++slot) {
    EventSpec spec = EventForSlot(slot);
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = spec.type;
    attr.config = spec.config;
    // Counting (not sampling); start immediately; user space only so the open
    // succeeds up to perf_event_paranoid == 2.
    attr.disabled = 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format =
        PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
    long fd = InvokePerfEventOpen(&attr, tid, /*cpu=*/-1, /*group_fd=*/-1,
                                  /*flags=*/0);
    if (fd < 0) {
      // EACCES/EPERM (paranoid), ENOSYS/ENODEV (no PMU, seccomp), ENOENT
      // (event unsupported on this microarchitecture): skip this event. The
      // group stays usable with whatever subset opened.
      continue;
    }
    group.fds_[slot] = static_cast<int>(fd);
    ++group.num_open_;
  }
#else
  (void)tid;
#endif
  return group;
}

CounterSample PerfCounterGroup::Read() const {
  CounterSample sample;
#if defined(__linux__)
  for (int slot = 0; slot < kNumPerfCounters; ++slot) {
    if (fds_[slot] < 0) {
      continue;
    }
    // read_format: value, time_enabled, time_running.
    uint64_t buf[3] = {0, 0, 0};
    ssize_t got = read(fds_[slot], buf, sizeof(buf));
    if (got < static_cast<ssize_t>(sizeof(buf))) {
      continue;
    }
    uint64_t value = buf[0];
    // Scale for multiplexing: the PMU only ran this event time_running out of
    // time_enabled ns; extrapolate linearly (the standard perf convention).
    if (buf[2] != 0 && buf[2] < buf[1]) {
      value = static_cast<uint64_t>(static_cast<double>(value) *
                                    (static_cast<double>(buf[1]) /
                                     static_cast<double>(buf[2])));
    }
    sample.values[slot] = value;
  }
#endif
  return sample;
}

StagePerfMonitor::StagePerfMonitor(const std::vector<int32_t>& worker_tids) {
  groups_.reserve(worker_tids.size() + 1);
  groups_.push_back(PerfCounterGroup::OpenForThread(0));  // coordinator
  for (int32_t tid : worker_tids) {
    groups_.push_back(PerfCounterGroup::OpenForThread(tid));
  }
  for (const PerfCounterGroup& g : groups_) {
    if (g.active()) {
      active_ = true;
      break;
    }
  }
  if (!active_) {
    groups_.clear();  // pure noop: reads cost nothing
  }
}

CounterSample StagePerfMonitor::ReadTotal() const {
  CounterSample total;
  for (const PerfCounterGroup& g : groups_) {
    total += g.Read();
  }
  return total;
}

}  // namespace fm
