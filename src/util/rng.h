// Pseudo-random number generators used by the walk engines.
//
// FlashMob uses the xorshift* family (§5.2: "FlashMob adopts the simpler xorshift*
// algorithm, reducing related computation time by more than 5x" relative to
// KnightKing's Mersenne Twister). Both generators are provided so the baselines can
// reproduce the paper's computational profile, and so the MT-vs-xorshift ablation in
// §5.2 (a 4-9% effect on KnightKing) can be re-run.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>
#include <random>

namespace fm {

// splitmix64 (Steele et al.); used to expand a single seed into well-mixed state for
// the other generators. Passes BigCrush when used as a generator itself.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// xorshift1024* is overkill for sampling; the paper cites Marsaglia's xorshift with a
// multiplicative finalizer (xorshift64*). Period 2^64 - 1, three shifts + one multiply
// per draw — the cheap generator FlashMob's compute budget is built around.
class XorShiftRng {
 public:
  explicit XorShiftRng(uint64_t seed = 0x853C49E6748FEA9BULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t s = seed;
    state_ = SplitMix64(s);
    if (state_ == 0) {
      state_ = 0x9E3779B97F4A7C15ULL;  // xorshift state must be nonzero
    }
  }

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  // Uniform integer in [0, bound). Uses the widening-multiply trick (Lemire) to avoid
  // the modulo; the bias is < 2^-32 for the bounds used here (vertex degrees), which
  // is far below the statistical noise of any walk.
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }
  uint64_t operator()() { return Next(); }

 private:
  uint64_t state_;
};

// Mersenne Twister wrapper with the same interface; the RNG KnightKing uses (§5.2).
class MersenneRng {
 public:
  explicit MersenneRng(uint64_t seed = 0x853C49E6748FEA9BULL) : gen_(seed) {}

  void Seed(uint64_t seed) { gen_.seed(seed); }
  uint64_t Next() { return gen_(); }
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }
  uint64_t operator()() { return Next(); }

 private:
  std::mt19937_64 gen_;
};

// Derives an independent per-thread / per-task seed from a base seed.
uint64_t DeriveSeed(uint64_t base, uint64_t stream);

}  // namespace fm

#endif  // SRC_UTIL_RNG_H_
