#include "src/util/cache_info.h"

#include <fstream>
#include <string>

#include "src/util/env.h"
#include "src/util/logging.h"

namespace fm {
namespace {

// Parses sysfs cache size strings like "32K" / "1024K" / "20M"; returns 0 on failure.
uint64_t ParseSizeString(const std::string& s) {
  if (s.empty()) {
    return 0;
  }
  size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(s, &pos);
  } catch (...) {
    return 0;
  }
  uint64_t mult = 1;
  if (pos < s.size()) {
    char suffix = s[pos];
    if (suffix == 'K' || suffix == 'k') {
      mult = 1024;
    } else if (suffix == 'M' || suffix == 'm') {
      mult = 1024 * 1024;
    }
  }
  return value * mult;
}

std::string ReadSysfsLine(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in && std::getline(in, line)) {
    return line;
  }
  return "";
}

CacheInfo Detect() {
  CacheInfo info;  // paper-platform defaults
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/";
  // Scan indices 0..4; pick the data/unified cache at each level.
  for (int idx = 0; idx < 5; ++idx) {
    std::string dir = base + "index" + std::to_string(idx) + "/";
    std::string type = ReadSysfsLine(dir + "type");
    if (type.empty() || type == "Instruction") {
      continue;
    }
    std::string level = ReadSysfsLine(dir + "level");
    uint64_t size = ParseSizeString(ReadSysfsLine(dir + "size"));
    uint64_t ways = ParseSizeString(ReadSysfsLine(dir + "ways_of_associativity"));
    if (size == 0) {
      continue;
    }
    if (level == "1") {
      info.l1_bytes = size;
      if (ways) info.l1_ways = static_cast<uint32_t>(ways);
    } else if (level == "2") {
      info.l2_bytes = size;
      if (ways) info.l2_ways = static_cast<uint32_t>(ways);
    } else if (level == "3") {
      info.l3_bytes = size;
      if (ways) info.l3_ways = static_cast<uint32_t>(ways);
    }
  }
  info.l1_bytes = static_cast<uint64_t>(EnvInt64("FM_L1_KB", static_cast<int64_t>(info.l1_bytes / 1024))) * 1024;
  info.l2_bytes = static_cast<uint64_t>(EnvInt64("FM_L2_KB", static_cast<int64_t>(info.l2_bytes / 1024))) * 1024;
  info.l3_bytes = static_cast<uint64_t>(EnvInt64("FM_L3_KB", static_cast<int64_t>(info.l3_bytes / 1024))) * 1024;
  FM_LOG(kDebug) << "cache info: L1=" << info.l1_bytes << " L2=" << info.l2_bytes
                 << " L3=" << info.l3_bytes;
  return info;
}

}  // namespace

uint64_t CacheInfo::LevelBytes(uint32_t level) const {
  switch (level) {
    case 1:
      return l1_bytes;
    case 2:
      return l2_bytes;
    case 3:
      return l3_bytes;
    default:
      return ~uint64_t{0};
  }
}

const CacheInfo& DetectCacheInfo() {
  static CacheInfo info = Detect();
  return info;
}

CacheInfo PaperCacheInfo() { return CacheInfo{}; }

}  // namespace fm
