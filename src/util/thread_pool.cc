#include "src/util/thread_pool.h"

#include <algorithm>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "src/util/env.h"
#include "src/util/logging.h"
#include "src/util/telemetry.h"
#include "src/util/trace.h"

namespace fm {
namespace {

// Pool telemetry, published on the calling thread around each ParallelFor —
// outside the job mutex, so no lock nesting with ThreadPool::mutex_. The
// inflight gauge is the classic queue-depth signal: task count of the job in
// flight, zero when the pool is idle.
struct PoolTelemetry {
  telemetry::Counter& jobs;
  telemetry::Histogram& job_ns;
  telemetry::Gauge& inflight;

  static PoolTelemetry& Get() {
    auto& reg = telemetry::TelemetryRegistry::Get();
    static PoolTelemetry tm{
        reg.CounterRef("fm.threadpool.jobs_total"),
        reg.HistogramRef("fm.threadpool.job_ns"),
        reg.GaugeRef("fm.threadpool.inflight_tasks"),
    };
    return tm;
  }
};

}  // namespace

ThreadPool::ThreadPool(uint32_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) {
      threads = 1;
    }
  }
  // The calling thread acts as worker 0; spawn the rest.
  workers_.reserve(threads - 1);
  worker_tids_.assign(threads - 1, 0);
  for (uint32_t i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  wake_cv_.NotifyAll();
  for (auto& t : workers_) {
    t.join();
  }
}

void ThreadPool::WorkerLoop(uint32_t worker_index) {
#if defined(__linux__)
  worker_tids_[worker_index - 1] = static_cast<int32_t>(syscall(SYS_gettid));
#endif
  // Register the trace-export display name before any span can run on this
  // thread (worker 0 is the pool's calling thread and keeps its own name).
  Tracer::SetThisThreadName("fm-worker-" + std::to_string(worker_index));
  tids_registered_.fetch_add(1, std::memory_order_release);
  uint64_t seen_epoch = 0;
  while (true) {
    // Snapshot the job under the lock; the job body itself runs without it.
    const std::function<void(uint64_t, uint32_t)>* job = nullptr;
    uint64_t tasks = 0;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && job_epoch_ == seen_epoch) {
        wake_cv_.Wait(mutex_);
      }
      if (shutdown_) {
        return;
      }
      seen_epoch = job_epoch_;
      job = job_;
      tasks = job_tasks_;
    }
    RunJob(*job, tasks, worker_index);
    {
      MutexLock lock(mutex_);
      if (--workers_running_ == 0) {
        done_cv_.NotifyAll();
      }
    }
  }
}

void ThreadPool::RunJob(const std::function<void(uint64_t, uint32_t)>& job,
                        uint64_t tasks, uint32_t worker_index) {
  while (true) {
    // relaxed: pure fetch-add task dispenser; the claimed index carries no
    // payload, and completion ordering is provided by the done_cv_ handshake.
    uint64_t t = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (t >= tasks) {
      return;
    }
    job(t, worker_index);
  }
}

void ThreadPool::ParallelFor(uint64_t tasks,
                             const std::function<void(uint64_t, uint32_t)>& body) {
  if (tasks == 0) {
    return;
  }
  PoolTelemetry& tm = PoolTelemetry::Get();
  tm.inflight.Set(static_cast<int64_t>(tasks));
  const uint64_t job_begin_ns = TraceNowNs();
  if (workers_.empty() || tasks == 1) {
    for (uint64_t t = 0; t < tasks; ++t) {
      body(t, 0);
    }
    tm.jobs.Add(1);
    tm.job_ns.Observe(TraceNowNs() - job_begin_ns);
    tm.inflight.Set(0);
    return;
  }
  {
    MutexLock lock(mutex_);
    FM_CHECK_MSG(job_ == nullptr, "ParallelFor is not reentrant");
    job_ = &body;
    job_tasks_ = tasks;
    // relaxed: the reset is ordered by the epoch bump below, whose mutex
    // release/acquire pair publishes it before any worker's fetch_add.
    next_task_.store(0, std::memory_order_relaxed);
    workers_running_ = static_cast<uint32_t>(workers_.size());
    ++job_epoch_;
  }
  wake_cv_.NotifyAll();
  RunJob(body, tasks, 0);
  {
    MutexLock lock(mutex_);
    while (workers_running_ != 0) {
      done_cv_.Wait(mutex_);
    }
    job_ = nullptr;
  }
  tm.jobs.Add(1);
  tm.job_ns.Observe(TraceNowNs() - job_begin_ns);
  tm.inflight.Set(0);
}

void ThreadPool::ParallelChunks(
    uint64_t n, const std::function<void(uint64_t, uint64_t, uint32_t)>& body) {
  uint32_t workers = thread_count();
  uint64_t chunk = n / workers;
  uint64_t rem = n % workers;
  ParallelFor(workers, [&](uint64_t w, uint32_t worker_index) {
    uint64_t begin = w * chunk + std::min<uint64_t>(w, rem);
    uint64_t end = begin + chunk + (w < rem ? 1 : 0);
    if (begin < end) {
      body(begin, end, worker_index);
    }
  });
}

std::vector<int32_t> ThreadPool::WorkerSystemTids() const {
#if defined(__linux__)
  // Workers register before their first wait; spin until all have (startup is
  // microseconds, and this is only called once per monitored run).
  while (tids_registered_.load(std::memory_order_acquire) < workers_.size()) {
    std::this_thread::yield();
  }
  return worker_tids_;
#else
  return {};
#endif
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(
      static_cast<uint32_t>(EnvInt64("FM_THREADS", 0)));
  return pool;
}

}  // namespace fm
