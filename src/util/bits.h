// Small bit-manipulation helpers.
#ifndef SRC_UTIL_BITS_H_
#define SRC_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace fm {

inline bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Smallest power of two >= x (x must be >= 1).
inline uint64_t NextPowerOfTwo(uint64_t x) { return std::bit_ceil(x); }

// Largest power of two <= x (x must be >= 1).
inline uint64_t PrevPowerOfTwo(uint64_t x) { return std::bit_floor(x); }

// floor(log2(x)) for x >= 1.
inline uint32_t Log2Floor(uint64_t x) {
  return 63u - static_cast<uint32_t>(std::countl_zero(x));
}

// ceil(log2(x)) for x >= 1.
inline uint32_t Log2Ceil(uint64_t x) {
  return x <= 1 ? 0 : Log2Floor(x - 1) + 1;
}

// ceil(a / b) for b > 0.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

// Rounds x up to the next multiple of `align` (align must be a power of two).
inline uint64_t AlignUp(uint64_t x, uint64_t align) {
  return (x + align - 1) & ~(align - 1);
}

}  // namespace fm

#endif  // SRC_UTIL_BITS_H_
