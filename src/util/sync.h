// Annotated synchronization primitives: the only sanctioned mutex/condvar
// types in the tree (enforced by the fmlint raw-mutex rule).
//
// fm::Mutex, fm::CondVar, and fm::MutexLock wrap the std primitives and carry
// Clang Thread Safety Analysis attributes, so lock discipline is checked at
// compile time under Clang (-Werror=thread-safety; see CMakeLists.txt) and
// degrades to zero-cost no-ops on GCC/MSVC. Annotate the state a mutex
// protects with FM_GUARDED_BY(mu_) and functions that expect the lock held
// with FM_REQUIRES(mu_); the analysis then proves every access happens under
// the right lock on every path — a static complement to the TSan build, which
// only sees the schedules a given run happens to execute.
//
// Conventions (DESIGN.md §7e):
//   - Every mutex member names what it protects in a comment, and every
//     protected field carries FM_GUARDED_BY.
//   - Lock with fm::MutexLock (RAII); bare Lock()/Unlock() calls are banned by
//     the fmlint manual-lock rule.
//   - Condition waits loop on the predicate around CondVar::Wait, which
//     requires the mutex held (FM_REQUIRES) and returns with it held.
//   - State intentionally accessed without the mutex (atomics, single-writer
//     protocols) stays unannotated with a comment explaining the protocol.
#ifndef SRC_UTIL_SYNC_H_
#define SRC_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

// Thread Safety Analysis attribute macros, after the Clang documentation's
// reference mutex.h. No-ops unless compiling with Clang (the analysis and the
// attributes both exist only there).
#if defined(__clang__) && !defined(SWIG)
#define FM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FM_THREAD_ANNOTATION_(x)
#endif

#define FM_CAPABILITY(x) FM_THREAD_ANNOTATION_(capability(x))
#define FM_SCOPED_CAPABILITY FM_THREAD_ANNOTATION_(scoped_lockable)
#define FM_GUARDED_BY(x) FM_THREAD_ANNOTATION_(guarded_by(x))
#define FM_PT_GUARDED_BY(x) FM_THREAD_ANNOTATION_(pt_guarded_by(x))
#define FM_ACQUIRE(...) FM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define FM_RELEASE(...) FM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define FM_TRY_ACQUIRE(...) \
  FM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define FM_REQUIRES(...) FM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define FM_EXCLUDES(...) FM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define FM_ACQUIRED_BEFORE(...) \
  FM_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define FM_ACQUIRED_AFTER(...) \
  FM_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define FM_RETURN_CAPABILITY(x) FM_THREAD_ANNOTATION_(lock_returned(x))
#define FM_NO_THREAD_SAFETY_ANALYSIS \
  FM_THREAD_ANNOTATION_(no_thread_safety_analysis)

// Marks a function as hot-path code: the per-element kernels whose cache
// residency the whole design rests on (step/sample kernels, shuffle
// scatter/gather scans, presample refill, alias-table draws). The fmlint
// hot-path-* rules enforce, over the function and everything it transitively
// calls, that there is no heap allocation, no mutex acquisition, no blocking
// syscall/IO, and no unjustified per-element division (see DESIGN.md §7f).
// Under Clang this also leaves an `annotate` attribute in the IR for tooling;
// on GCC it compiles to nothing, so -Werror builds are unaffected.
#define FM_HOT_PATH FM_THREAD_ANNOTATION_(annotate("fm_hot_path"))

// Canonical global lock order (enforced statically by the fmlint lock-order
// rule, which builds the acquired-before graph from MutexLock nesting and
// FM_REQUIRES/FM_ACQUIRE sites propagated through the call graph):
//
//   1. Application/observer locks (e.g. PairMeetingObserver::mu_ in
//      src/apps/simrank.cc) — outermost; taken while no service lock is held.
//   2. Utility service locks: Tracer::mutex_ (src/util/trace.cc),
//      ThreadPool::mutex_ (src/util/thread_pool.cc),
//      TelemetryRegistry::mutex_ and TelemetrySnapshotWriter::mutex_
//      (src/util/telemetry.{h,cc}), and the telemetry SlotPool mutex. These
//      are leaves with respect to each other — no code path may hold two of
//      them at once (the snapshot writer drops its stop-flag lock before
//      taking the registry lock to snapshot).
//   3. g_log_mutex (src/util/logging.cc) — the global leaf; logging may be
//      called from anywhere, so it must never acquire another lock.
//
// New locks slot into this list (top of the file that defines them) before
// any code nests them; the lock-order gate in CI fails on any cycle.

namespace fm {

// Plain mutual-exclusion capability. Prefer MutexLock over calling
// Lock/Unlock directly (the manual-lock lint rule enforces this); the methods
// exist for the RAII guard and for rare structured-release patterns.
class FM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FM_ACQUIRE() { mu_.lock(); }
  void Unlock() FM_RELEASE() { mu_.unlock(); }
  bool TryLock() FM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII scoped lock over fm::Mutex (the scoped_lockable pattern: construction
// acquires, destruction releases, and the analysis tracks the region).
class FM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FM_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() FM_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to fm::Mutex. Wait requires the mutex held and
// returns with it held (it is released for the duration of the block, like
// std::condition_variable::wait, but the capability stays with the caller for
// analysis purposes — the predicate re-check loop makes this sound). Notify
// does not require the mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) FM_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the wait, then hand ownership
    // back so the caller's MutexLock (or scope) remains the releaser.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Timed wait: releases the mutex for up to timeout_ms milliseconds, then
  // reacquires it. Returns false on timeout, true if notified (spurious
  // wakeups also return true — callers loop on their predicate either way).
  bool WaitFor(Mutex& mu, uint32_t timeout_ms) FM_REQUIRES(mu) {
    // Same adopt-and-release dance as Wait: the caller's MutexLock stays the
    // releaser for analysis purposes.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fm

#endif  // SRC_UTIL_SYNC_H_
