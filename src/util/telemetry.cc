#include "src/util/telemetry.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "src/util/json.h"
#include "src/util/logging.h"
#include "src/util/trace.h"

namespace fm {
namespace telemetry {
namespace {

// Exclusive shard slots, leased per thread and recycled at thread exit so the
// fixed slot array survives any number of short-lived pools (tests construct
// and join hundreds). Deliberately leaked: thread_local lease destructors run
// at thread exit, which for pool workers can be during static destruction —
// after a function-local static would already be gone.
class SlotPool {
 public:
  static SlotPool& Get() {
    static SlotPool* pool = std::make_unique<SlotPool>().release();
    return *pool;
  }

  uint32_t Acquire() {
    MutexLock lock(mutex_);
    if (free_.empty()) {
      return kOverflowSlot;
    }
    uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }

  void Release(uint32_t slot) {
    if (slot == kOverflowSlot) {
      return;
    }
    MutexLock lock(mutex_);
    free_.push_back(slot);
  }

  SlotPool() {
    free_.reserve(kOverflowSlot);
    // LIFO order: low slot numbers are handed out first, so snapshots of a
    // lightly threaded process fold mostly-zero tails.
    for (uint32_t slot = kOverflowSlot; slot > 0; --slot) {
      free_.push_back(slot - 1);
    }
  }

 private:
  // mutex_ protects the free-slot list (leaf lock: Acquire/Release call
  // nothing while holding it).
  Mutex mutex_;
  std::vector<uint32_t> free_ FM_GUARDED_BY(mutex_);
};

struct SlotLease {
  uint32_t slot = SlotPool::Get().Acquire();
  ~SlotLease() { SlotPool::Get().Release(slot); }
};

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += '0';
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

// Prometheus metric name: dots become underscores (the exposition grammar has
// no dots); everything else in fm.<module>.<metric> is already legal.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.') {
      c = '_';
    }
  }
  return out;
}

// Inclusive upper bound of log2 bucket b (values with bit_width == b).
uint64_t BucketUpper(uint32_t b) {
  return b >= 64 ? UINT64_MAX : (uint64_t{1} << b) - 1;
}

}  // namespace

uint32_t ThisThreadSlot() {
  thread_local SlotLease lease;
  return lease.slot;
}

bool IsValidMetricName(const std::string& name) {
  size_t pos = 0;
  int segments = 0;
  while (true) {
    size_t dot = name.find('.', pos);
    size_t end = dot == std::string::npos ? name.size() : dot;
    if (end == pos) {
      return false;  // empty segment (leading/trailing/double dot)
    }
    for (size_t i = pos; i < end; ++i) {
      char c = name[i];
      bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
      if (!ok) {
        return false;
      }
    }
    if (segments == 0 && name.compare(pos, end - pos, "fm") != 0) {
      return false;
    }
    ++segments;
    if (dot == std::string::npos) {
      break;
    }
    pos = dot + 1;
  }
  return segments >= 3;
}

void Counter::ResetForTest() {
  for (Cell& cell : cells_) {
    // relaxed: test-only reset; callers guarantee no concurrent writers.
    cell.v.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::string name)
    : name_(std::move(name)), shards_(kShards) {}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.name = name_;
  for (const Shard& shard : shards_) {
    for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
      // relaxed: fold of single-writer cells; snapshots tolerate in-flight
      // samples.
      snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    // relaxed: see above.
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.buckets) {
    snap.count += c;
  }
  return snap;
}

void Histogram::ResetForTest() {
  for (Shard& shard : shards_) {
    for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
      // relaxed: test-only reset; callers guarantee no concurrent writers.
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
    // relaxed: test-only reset, same no concurrent writers guarantee as the
    // bucket stores above.
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) {
    return 0.0;
  }
  if (p < 0.0) {
    p = 0.0;
  }
  if (p > 100.0) {
    p = 100.0;
  }
  // Same rank convention as stats::Percentile: rank p spans the order
  // statistics [0, count-1] with linear interpolation.
  const double rank = p / 100.0 * static_cast<double>(count - 1);
  uint64_t seen = 0;
  for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
    const uint64_t c = buckets[b];
    if (c == 0) {
      continue;
    }
    if (rank < static_cast<double>(seen + c) ||
        seen + c == count /* last non-empty bucket */) {
      if (b == 0) {
        return 0.0;
      }
      const double lo = std::exp2(static_cast<double>(b - 1));
      const double hi = std::exp2(static_cast<double>(b)) - 1.0;
      double frac = (rank - static_cast<double>(seen)) / static_cast<double>(c);
      if (frac < 0.0) {
        frac = 0.0;
      }
      if (frac > 1.0) {
        frac = 1.0;
      }
      return lo + frac * (hi - lo);
    }
    seen += c;
  }
  return 0.0;  // unreachable: count > 0 means some bucket is non-empty
}

TelemetryRegistry& TelemetryRegistry::Get() {
  // Leaked for static-destruction safety: instruments may be touched from
  // thread_local destructors and static teardown (same pattern as SlotPool).
  static TelemetryRegistry* registry =
      std::make_unique<TelemetryRegistry>().release();
  return *registry;
}

Counter& TelemetryRegistry::CounterRef(const std::string& name) {
  FM_CHECK_MSG(IsValidMetricName(name),
               "telemetry metric names must be fm.<module>.<metric>");
  MutexLock lock(mutex_);
  FM_CHECK_MSG(gauges_.count(name) == 0 && histograms_.count(name) == 0,
               "metric name already registered as another instrument type");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>(name)).first;
  }
  return *it->second;
}

Gauge& TelemetryRegistry::GaugeRef(const std::string& name) {
  FM_CHECK_MSG(IsValidMetricName(name),
               "telemetry metric names must be fm.<module>.<metric>");
  MutexLock lock(mutex_);
  FM_CHECK_MSG(counters_.count(name) == 0 && histograms_.count(name) == 0,
               "metric name already registered as another instrument type");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>(name)).first;
  }
  return *it->second;
}

Histogram& TelemetryRegistry::HistogramRef(const std::string& name) {
  FM_CHECK_MSG(IsValidMetricName(name),
               "telemetry metric names must be fm.<module>.<metric>");
  MutexLock lock(mutex_);
  FM_CHECK_MSG(counters_.count(name) == 0 && gauges_.count(name) == 0,
               "metric name already registered as another instrument type");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(name)).first;
  }
  return *it->second;
}

RegistrySnapshot TelemetryRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back(histogram->Snapshot());
  }
  return snap;
}

std::string TelemetryRegistry::RenderPrometheus() const {
  const RegistrySnapshot snap = Snapshot();
  std::string out;
  out.reserve(256 * (snap.counters.size() + snap.gauges.size()) +
              2048 * snap.histograms.size());
  for (const auto& c : snap.counters) {
    const std::string name = PrometheusName(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + ' ' + std::to_string(c.value) + '\n';
  }
  for (const auto& g : snap.gauges) {
    const std::string name = PrometheusName(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ' + std::to_string(g.value) + '\n';
  }
  for (const auto& h : snap.histograms) {
    const std::string name = PrometheusName(h.name);
    out += "# TYPE " + name + " histogram\n";
    uint32_t last = 0;
    for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] != 0) {
        last = b;
      }
    }
    uint64_t cumulative = 0;
    for (uint32_t b = 0; b <= last; ++b) {
      cumulative += h.buckets[b];
      out += name + "_bucket{le=\"" + std::to_string(BucketUpper(b)) + "\"} " +
             std::to_string(cumulative) + '\n';
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + '\n';
    out += name + "_sum " + std::to_string(h.sum) + '\n';
    out += name + "_count " + std::to_string(h.count) + '\n';
  }
  return out;
}

std::string TelemetryRegistry::RenderJsonLine(uint64_t t_ns) const {
  const RegistrySnapshot snap = Snapshot();
  std::string out;
  out.reserve(128 + 64 * (snap.counters.size() + snap.gauges.size()) +
              512 * snap.histograms.size());
  out += "{\"schema\":\"fm-telemetry-v1\",\"t_ns\":";
  out += std::to_string(t_ns);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (!first) {
      out += ',';
    }
    first = false;
    json::AppendQuoted(&out, c.name);
    out += ':';
    out += std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : snap.gauges) {
    if (!first) {
      out += ',';
    }
    first = false;
    json::AppendQuoted(&out, g.name);
    out += ':';
    out += std::to_string(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) {
      out += ',';
    }
    first = false;
    json::AppendQuoted(&out, h.name);
    out += ":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += ",\"p50\":";
    AppendDouble(&out, h.Percentile(50));
    out += ",\"p90\":";
    AppendDouble(&out, h.Percentile(90));
    out += ",\"p99\":";
    AppendDouble(&out, h.Percentile(99));
    out += ",\"p999\":";
    AppendDouble(&out, h.Percentile(99.9));
    out += ",\"buckets\":{";
    bool first_bucket = true;
    for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) {
        continue;
      }
      if (!first_bucket) {
        out += ',';
      }
      first_bucket = false;
      out += '"';
      out += std::to_string(b);
      out += "\":";
      out += std::to_string(h.buckets[b]);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

void TelemetryRegistry::ResetForTest() {
  MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->ResetForTest();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->ResetForTest();
  }
}

TelemetrySnapshotWriter::TelemetrySnapshotWriter(std::string path,
                                                uint32_t interval_ms)
    : path_(std::move(path)), interval_ms_(interval_ms == 0 ? 1 : interval_ms) {}

TelemetrySnapshotWriter::~TelemetrySnapshotWriter() { Stop(); }

bool TelemetrySnapshotWriter::Start() {
  if (thread_.joinable() || stopped_) {
    return out_ != nullptr;
  }
  out_ = std::fopen(path_.c_str(), "w");
  if (out_ == nullptr) {
    return false;
  }
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void TelemetrySnapshotWriter::Stop() {
  if (stopped_) {
    return;
  }
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) {
    thread_.join();
  }
  if (out_ != nullptr) {
    // Final cumulative snapshot: the last line of the file always reflects
    // end-of-run values (the counter-equality contract with fm-metrics-v1).
    WriteLine();
    std::fclose(out_);
    out_ = nullptr;
  }
  stopped_ = true;
}

void TelemetrySnapshotWriter::Loop() {
  while (true) {
    {
      MutexLock lock(mutex_);
      if (!stop_) {
        cv_.WaitFor(mutex_, interval_ms_);
      }
      if (stop_) {
        return;  // the final line is written by Stop, after the join
      }
    }
    // Outside the lock: snapshotting takes the registry mutex and the write
    // hits the filesystem; neither belongs under the stop-flag leaf lock.
    WriteLine();
  }
}

void TelemetrySnapshotWriter::WriteLine() {
  const std::string line = TelemetryRegistry::Get().RenderJsonLine(TraceNowNs());
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fputc('\n', out_);
  std::fflush(out_);
  // relaxed: monotonic progress indicator; readers tolerate staleness.
  lines_written_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace telemetry
}  // namespace fm
