// Environment-variable based configuration knobs for benches and examples.
//
// Every bench binary runs at CI-friendly sizes by default; these knobs scale the
// workloads up on a large machine without recompiling (see DESIGN.md §4).
#ifndef SRC_UTIL_ENV_H_
#define SRC_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace fm {

// Returns the value of environment variable `name` parsed as an integer, or
// `fallback` if unset or unparsable.
int64_t EnvInt64(const char* name, int64_t fallback);

// Returns the value of environment variable `name` parsed as a double, or `fallback`.
double EnvDouble(const char* name, double fallback);

// Returns the value of environment variable `name`, or `fallback` if unset.
std::string EnvString(const char* name, const std::string& fallback);

}  // namespace fm

#endif  // SRC_UTIL_ENV_H_
