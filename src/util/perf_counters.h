// Hardware performance counters via perf_event_open — the observability
// substrate behind the per-stage cache-miss attribution (paper Table 1 / Fig 7:
// per-step speed is governed by LLC/L2 miss rates, so this reproduction must
// *measure* them, not only model them in the software cache simulator).
//
// Design points:
//   - Six counters per measured thread: cycles, instructions, LLC loads, LLC
//     load misses, L1D load misses, dTLB load misses. Each event is opened as
//     its own leader (no strict group) with TIME_ENABLED/TIME_RUNNING read
//     format, so kernel multiplexing degrades to scaled estimates instead of
//     an all-or-nothing scheduling failure.
//   - Graceful degradation is a hard contract: when the syscall is unavailable
//     (ENOSYS, seccomp'd container) or forbidden (EACCES/EPERM under
//     perf_event_paranoid), every constructor succeeds and yields an inactive
//     object whose reads are all-zero; the backend reports "noop". Opening
//     counters NEVER aborts a run.
//   - The raw syscall is confined to src/util/perf_counters.cc (fmlint rule
//     `perf-syscall`); tests inject failures through SetPerfEventOpenForTest.
#ifndef SRC_UTIL_PERF_COUNTERS_H_
#define SRC_UTIL_PERF_COUNTERS_H_

#include <cstdint>
#include <vector>

namespace fm {

inline constexpr int kNumPerfCounters = 6;

enum class PerfCounterId : int {
  kCycles = 0,
  kInstructions = 1,
  kLlcLoads = 2,
  kLlcMisses = 3,
  kL1dMisses = 4,
  kDtlbMisses = 5,
};

// Stable snake_case name used as the JSON key ("cycles", "llc_misses", ...).
const char* PerfCounterName(int index);

// One snapshot (or delta) of the six counters. Multiplexed events are scaled
// by time_enabled/time_running at read, so values are estimates when the PMU
// was oversubscribed.
struct CounterSample {
  uint64_t values[kNumPerfCounters] = {};

  uint64_t cycles() const { return values[0]; }
  uint64_t instructions() const { return values[1]; }
  uint64_t llc_loads() const { return values[2]; }
  uint64_t llc_misses() const { return values[3]; }
  uint64_t l1d_misses() const { return values[4]; }
  uint64_t dtlb_misses() const { return values[5]; }

  // Derived rates; 0 when the denominator is 0 (noop backend or unsupported
  // event) so consumers never divide by zero.
  double Ipc() const;
  double LlcMissRatio() const;

  bool AllZero() const;

  CounterSample& operator+=(const CounterSample& other);
  // Saturating per-slot difference (counters are monotone; saturation guards
  // against multiplex-scaling jitter producing a small negative delta).
  friend CounterSample operator-(const CounterSample& a, const CounterSample& b);
};

// Test shim mirroring the raw syscall: `attr` points at a perf_event_attr.
// Return a negative value and set errno to simulate open failures (EACCES,
// ENOSYS, ...). Pass nullptr to restore the real syscall. Not thread-safe
// against concurrent opens — set it in test setup only.
using PerfEventOpenFn = long (*)(void* attr, int32_t pid, int32_t cpu,
                                 int32_t group_fd, unsigned long flags);
void SetPerfEventOpenForTest(PerfEventOpenFn fn);

// RAII bundle of the six counters for one thread. Counting starts at open;
// callers attribute work by subtracting Read() snapshots.
class PerfCounterGroup {
 public:
  PerfCounterGroup() = default;  // inactive: Read() returns zeros
  ~PerfCounterGroup();

  PerfCounterGroup(PerfCounterGroup&& other) noexcept;
  PerfCounterGroup& operator=(PerfCounterGroup&& other) noexcept;
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  // Opens the counters for `tid` (0 = calling thread). Threads of the current
  // process are always permissible targets when perf is available at all.
  // Returns an inactive group when nothing could be opened.
  static PerfCounterGroup OpenForThread(int32_t tid);

  // True when at least one event is being counted.
  bool active() const { return num_open_ > 0; }
  int num_open() const { return num_open_; }

  // Current counts (scaled for multiplexing). Zeros when inactive; individual
  // events that failed to open stay zero.
  CounterSample Read() const;

 private:
  int fds_[kNumPerfCounters] = {-1, -1, -1, -1, -1, -1};
  int num_open_ = 0;
};

// Aggregated monitor over the coordinating thread plus a set of worker
// threads (ThreadPool::WorkerSystemTids). The engine reads the total at stage
// boundaries; because every stage is barrier-synchronized, the delta across a
// stage is exactly the stage's work summed over all participating threads.
class StagePerfMonitor {
 public:
  explicit StagePerfMonitor(const std::vector<int32_t>& worker_tids);

  bool active() const { return active_; }
  const char* backend() const { return active_ ? "perf" : "noop"; }

  // Sum of all per-thread groups' current counts.
  CounterSample ReadTotal() const;

 private:
  std::vector<PerfCounterGroup> groups_;
  bool active_ = false;
};

}  // namespace fm

#endif  // SRC_UTIL_PERF_COUNTERS_H_
