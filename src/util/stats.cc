#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/logging.h"

namespace fm {

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0;
  }
  double sum = 0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0;
  }
  double m = Mean(values);
  double acc = 0;
  for (double v : values) {
    acc += (v - m) * (v - m);
  }
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double Percentile(std::vector<double> values, double p) {
  FM_CHECK(!values.empty());
  FM_CHECK(p >= 0 && p <= 100);
  std::sort(values.begin(), values.end());
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

double ChiSquareStatistic(const std::vector<uint64_t>& observed,
                          const std::vector<double>& expected) {
  FM_CHECK(observed.size() == expected.size());
  double stat = 0;
  for (size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] < 1e-12) {
      if (observed[i] != 0) {
        return std::numeric_limits<double>::infinity();
      }
      continue;
    }
    double diff = static_cast<double>(observed[i]) - expected[i];
    stat += diff * diff / expected[i];
  }
  return stat;
}

double ChiSquareCriticalValue(uint32_t dof, double significance) {
  FM_CHECK(dof >= 1);
  FM_CHECK(significance > 0 && significance < 1);
  // Wilson–Hilferty: chi2_q(k) ~= k * (1 - 2/(9k) + z_q * sqrt(2/(9k)))^3 where z_q is
  // the standard normal quantile at (1 - significance). Invert the normal CDF with the
  // Beasley–Springer–Moro rational approximation (sufficient accuracy for tests).
  double p = 1.0 - significance;
  // Moro's inverse normal approximation.
  static const double a[4] = {2.50662823884, -18.61500062529, 41.39119773534,
                              -25.44106049637};
  static const double b[4] = {-8.47351093090, 23.08336743743, -21.06224101826,
                              3.13082909833};
  static const double c[9] = {0.3374754822726147, 0.9761690190917186,
                              0.1607979714918209, 0.0276438810333863,
                              0.0038405729373609, 0.0003951896511919,
                              0.0000321767881768, 0.0000002888167364,
                              0.0000003960315187};
  double y = p - 0.5;
  double z;
  if (std::fabs(y) < 0.42) {
    double r = y * y;
    z = y * (((a[3] * r + a[2]) * r + a[1]) * r + a[0]) /
        ((((b[3] * r + b[2]) * r + b[1]) * r + b[0]) * r + 1.0);
  } else {
    double r = (y > 0) ? 1.0 - p : p;
    r = std::log(-std::log(r));
    double acc = c[8];
    for (int i = 7; i >= 0; --i) {
      acc = acc * r + c[i];
    }
    z = (y > 0) ? acc : -acc;
  }
  double k = static_cast<double>(dof);
  double term = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * term * term * term;
}

bool ChiSquareTestPasses(const std::vector<uint64_t>& observed,
                         const std::vector<double>& expected,
                         double significance) {
  // Degrees of freedom: buckets with nonzero expectation, minus one.
  uint32_t buckets = 0;
  for (double e : expected) {
    if (e >= 1e-12) {
      ++buckets;
    }
  }
  if (buckets < 2) {
    return true;
  }
  double stat = ChiSquareStatistic(observed, expected);
  return stat <= ChiSquareCriticalValue(buckets - 1, significance);
}

}  // namespace fm
