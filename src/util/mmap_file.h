// Read-only memory-mapped file (RAII).
//
// Substrate for the out-of-core walk mode (the paper's §5.4/§7 future-work
// direction: "extending FlashMob to walk disk-resident graphs" — its streaming
// design needs only ~5 GB/s of sequential I/O at full speed). A CsrGraph can borrow
// its arrays directly from a mapping (edge_io.h LoadCsrBinaryMapped), letting the
// OS page cache stream partitions from disk on demand.
#ifndef SRC_UTIL_MMAP_FILE_H_
#define SRC_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <string>

namespace fm {

class MappedFile {
 public:
  MappedFile() = default;

  // Maps `path` read-only; throws std::runtime_error on failure.
  explicit MappedFile(const std::string& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  ~MappedFile();

  const void* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

  // madvise hints for the expected access pattern.
  void AdviseSequential() const;
  void AdviseRandom() const;

 private:
  void Unmap();

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace fm

#endif  // SRC_UTIL_MMAP_FILE_H_
