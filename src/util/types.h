// Core scalar types shared across the FlashMob library.
#ifndef SRC_UTIL_TYPES_H_
#define SRC_UTIL_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace fm {

// Vertex identifier. The paper keeps walker state compact (bare VIDs, §4.3) so the
// walker arrays are half the size of explicit <walker, vertex> pairs; 32 bits covers
// every graph in the evaluation (largest: YahooWeb, 720M vertices).
using Vid = uint32_t;

// Edge index into a CSR edge array. The paper's largest graph has 6.64B edges, which
// overflows 32 bits, so edge offsets are 64-bit.
using Eid = uint64_t;

// Walker index. Up to 10|V| walkers are launched in total (§5.1).
using Wid = uint64_t;

// Degree of a vertex.
using Degree = uint32_t;

inline constexpr Vid kInvalidVid = ~Vid{0};

// Cache line size assumed throughout for alignment and for the cache simulator.
inline constexpr size_t kCacheLineBytes = 64;

}  // namespace fm

#endif  // SRC_UTIL_TYPES_H_
