// Minimal logging / check macros.
//
// FM_CHECK is used for programmer-error invariants (aborts with a message); functions
// that can fail on user input return status-like values or throw std::invalid_argument
// instead — see GraphBuilder.
//
// FM_DCHECK* are debug-only invariants: active whenever NDEBUG is not defined
// (Debug and sanitizer builds), compiled out — argument expressions unevaluated —
// in Release. Policy: FM_CHECK for cheap, always-worth-it preconditions at module
// boundaries; FM_DCHECK for per-element hot-path invariants (shuffle offsets,
// walker conservation, CSR well-formedness) whose cost is only acceptable in
// checking builds.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace fm {

enum class LogLevel { kDebug, kInfo, kWarn, kError };

// Global minimum level; messages below it are discarded. Default: kInfo
// (FM_LOG_LEVEL=debug lowers it).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Writes one formatted line to stderr ("[fm I] message").
void LogMessage(LogLevel level, const std::string& message);

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

namespace internal {
// Stream collector so call sites can write FM_LOG(kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace fm

#define FM_LOG(level) ::fm::internal::LogLine(::fm::LogLevel::level)

#define FM_CHECK(expr)                                                 \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::fm::CheckFailed(__FILE__, __LINE__, #expr, "");                \
    }                                                                  \
  } while (0)

#define FM_CHECK_MSG(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream fm_check_stream_;                             \
      fm_check_stream_ << msg;                                         \
      ::fm::CheckFailed(__FILE__, __LINE__, #expr,                     \
                        fm_check_stream_.str());                       \
    }                                                                  \
  } while (0)

#ifndef NDEBUG
#define FM_DCHECK(expr) FM_CHECK(expr)
#define FM_DCHECK_MSG(expr, msg) FM_CHECK_MSG(expr, msg)
#else
// Compiled out: the expression is not evaluated, but sizeof keeps its operands
// "used" so checking builds and release builds warn identically.
#define FM_DCHECK(expr) \
  do {                  \
    (void)sizeof(expr); \
  } while (0)
#define FM_DCHECK_MSG(expr, msg) \
  do {                           \
    (void)sizeof(expr);          \
  } while (0)
#endif

// Binary-comparison forms report both operand values on failure.
#define FM_DCHECK_OP_(op, a, b)                                              \
  FM_DCHECK_MSG((a)op(b), #a " " #op " " #b " failed: " << (a) << " vs "     \
                                                        << (b))
#define FM_DCHECK_EQ(a, b) FM_DCHECK_OP_(==, a, b)
#define FM_DCHECK_NE(a, b) FM_DCHECK_OP_(!=, a, b)
#define FM_DCHECK_LT(a, b) FM_DCHECK_OP_(<, a, b)
#define FM_DCHECK_LE(a, b) FM_DCHECK_OP_(<=, a, b)
#define FM_DCHECK_GT(a, b) FM_DCHECK_OP_(>, a, b)
#define FM_DCHECK_GE(a, b) FM_DCHECK_OP_(>=, a, b)

#endif  // SRC_UTIL_LOGGING_H_
