// Minimal logging / check macros.
//
// FM_CHECK is used for programmer-error invariants (aborts with a message); functions
// that can fail on user input return status-like values or throw std::invalid_argument
// instead — see GraphBuilder.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace fm {

enum class LogLevel { kDebug, kInfo, kWarn, kError };

// Global minimum level; messages below it are discarded. Default: kInfo
// (FM_LOG_LEVEL=debug lowers it).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Writes one formatted line to stderr ("[fm I] message").
void LogMessage(LogLevel level, const std::string& message);

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

namespace internal {
// Stream collector so call sites can write FM_LOG(kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace fm

#define FM_LOG(level) ::fm::internal::LogLine(::fm::LogLevel::level)

#define FM_CHECK(expr)                                                 \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::fm::CheckFailed(__FILE__, __LINE__, #expr, "");                \
    }                                                                  \
  } while (0)

#define FM_CHECK_MSG(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream fm_check_stream_;                             \
      fm_check_stream_ << msg;                                         \
      ::fm::CheckFailed(__FILE__, __LINE__, #expr,                     \
                        fm_check_stream_.str());                       \
    }                                                                  \
  } while (0)

#endif  // SRC_UTIL_LOGGING_H_
