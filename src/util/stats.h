// Statistics helpers used by tests (distribution checks) and benches (reporting).
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace fm {

double Mean(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

// p in [0, 100]; linear interpolation between order statistics. Sorts a copy.
//
// Boundary with telemetry: Percentile is for one-shot analytics — a sample
// set you already hold in a vector, read once, exact answer (distribution
// oracles, example programs). Metrics that accumulate across a run (step
// latencies, job times, merge times) belong in a telemetry::Histogram, whose
// log2-bucketed percentiles are approximate but O(1) per sample, shared with
// every exporter, and never require buffering the series. If a telemetry
// histogram for the quantity exists, query it instead of rebuilding the
// series here — two aggregations of the same signal will eventually disagree.
double Percentile(std::vector<double> values, double p);

// Pearson chi-square statistic for observed counts against expected counts.
// Buckets with expected < 1e-12 must have observed == 0 (else returns +inf).
double ChiSquareStatistic(const std::vector<uint64_t>& observed,
                          const std::vector<double>& expected);

// Conservative upper quantile of the chi-square distribution used to accept/reject in
// sampler tests: returns an approximate critical value at the given significance for
// `dof` degrees of freedom (Wilson–Hilferty approximation).
double ChiSquareCriticalValue(uint32_t dof, double significance);

// Convenience: true when observed counts are consistent with the expected
// distribution at the given significance level.
bool ChiSquareTestPasses(const std::vector<uint64_t>& observed,
                         const std::vector<double>& expected,
                         double significance = 0.001);

}  // namespace fm

#endif  // SRC_UTIL_STATS_H_
