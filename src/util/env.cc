#include "src/util/env.h"

#include <cstdlib>

namespace fm {

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::string EnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

}  // namespace fm
