#include "src/util/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <fstream>

#include "src/util/json.h"
#include "src/util/telemetry.h"

namespace fm {
namespace {

// Pending name for threads that announce themselves before tracing is enabled
// (ThreadPool workers name themselves at startup); applied when the thread
// registers its ring.
thread_local std::string t_pending_name;

struct ThreadSlot {
  TraceRingBuffer* buf = nullptr;
  uint64_t epoch = 0;
};
thread_local ThreadSlot t_slot;

void AppendMicros(std::string* out, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  *out += buf;
}

}  // namespace

uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<bool> Tracer::enabled_flag_{false};

TraceRingBuffer::TraceRingBuffer(uint32_t tid, std::string thread_name,
                                 size_t capacity)
    : events_(std::max<size_t>(capacity, 1)),
      tid_(tid),
      thread_name_(std::move(thread_name)) {}

Tracer& Tracer::Get() {
  static Tracer tracer;
  return tracer;
}

void Tracer::Enable(size_t events_per_thread) {
  MutexLock lock(mutex_);
  capacity_ = std::max<size_t>(events_per_thread, 1);
  // relaxed: enabling mid-span is inherently approximate; a thread's first
  // record is ordered by the mutex_ ring-registration handshake.
  enabled_flag_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() {
  // relaxed: storing false is idempotent, so concurrent Disables are
  // commutative; in-flight spans may still complete their push (see
  // enabled()).
  enabled_flag_.store(false, std::memory_order_relaxed);
}

void Tracer::Reset() {
  MutexLock lock(mutex_);
  // relaxed: Reset requires no live spans by contract, and the flag flip is
  // ordered by the epoch bump below (release), which invalidates cached ring
  // pointers.
  enabled_flag_.store(false, std::memory_order_relaxed);
  buffers_.clear();
  capacity_ = kDefaultCapacity;
  // Invalidate every thread's cached ring pointer.
  epoch_.fetch_add(1, std::memory_order_release);
}

TraceRingBuffer* Tracer::CurrentBuffer() {
  if (!enabled()) {
    return nullptr;
  }
  uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (t_slot.epoch == epoch) {
    return t_slot.buf;
  }
  MutexLock lock(mutex_);
  uint32_t tid = static_cast<uint32_t>(buffers_.size());
  std::string name = t_pending_name.empty()
                         ? "thread-" + std::to_string(tid)
                         : t_pending_name;
  buffers_.push_back(
      std::make_unique<TraceRingBuffer>(tid, std::move(name), capacity_));
  t_slot.buf = buffers_.back().get();
  t_slot.epoch = epoch;
  return t_slot.buf;
}

void Tracer::SetThisThreadName(const std::string& name) {
  t_pending_name = name;
  Tracer& tracer = Get();
  uint64_t epoch = tracer.epoch_.load(std::memory_order_acquire);
  if (t_slot.epoch == epoch && t_slot.buf != nullptr) {
    MutexLock lock(tracer.mutex_);
    t_slot.buf->set_thread_name(name);
  }
}

uint64_t Tracer::TotalEvents() const {
  MutexLock lock(mutex_);
  uint64_t total = 0;
  for (const auto& buf : buffers_) {
    total += buf->pushed();
  }
  return total;
}

uint64_t Tracer::TotalDropped() const {
  MutexLock lock(mutex_);
  uint64_t total = 0;
  for (const auto& buf : buffers_) {
    total += buf->dropped();
  }
  return total;
}

std::string Tracer::ExportJson() const {
  MutexLock lock(mutex_);
  // Rebase timestamps so the trace starts at ts=0 (Perfetto renders absolute
  // steady-clock epochs far off-screen otherwise).
  uint64_t base_ns = UINT64_MAX;
  for (const auto& buf : buffers_) {
    buf->ForEach([&](const TraceEvent& e) {
      base_ns = std::min(base_ns, e.start_ns);
    });
  }
  if (base_ns == UINT64_MAX) {
    base_ns = 0;
  }

  std::string out;
  out.reserve(1024 + 160 * static_cast<size_t>(TotalEventsLocked()));
  out += "{\"traceEvents\":[\n";
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"fm\"}}";
  for (const auto& buf : buffers_) {
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(buf->tid());
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    json::AppendQuoted(&out, buf->thread_name());
    out += "}}";
  }
  uint64_t events = 0;
  uint64_t dropped = 0;
  for (const auto& buf : buffers_) {
    dropped += buf->dropped();
    buf->ForEach([&](const TraceEvent& e) {
      ++events;
      out += ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":";
      out += std::to_string(buf->tid());
      out += ",\"cat\":";
      json::AppendQuoted(&out, e.category != nullptr ? e.category : "");
      out += ",\"name\":";
      json::AppendQuoted(&out, e.name != nullptr ? e.name : "");
      out += ",\"ts\":";
      AppendMicros(&out, e.start_ns - base_ns);
      out += ",\"dur\":";
      AppendMicros(&out, e.dur_ns);
      if (e.num_args > 0) {
        out += ",\"args\":{";
        for (uint32_t i = 0; i < e.num_args; ++i) {
          if (i != 0) {
            out += ',';
          }
          json::AppendQuoted(&out, e.arg_names[i] != nullptr ? e.arg_names[i]
                                                             : "");
          out += ':';
          out += std::to_string(e.arg_values[i]);
        }
        out += '}';
      }
      out += '}';
    });
  }
  out += "\n],\n\"displayTimeUnit\":\"ns\",\n\"otherData\":{";
  out += "\"exported_events\":" + std::to_string(events);
  out += ",\"dropped_events\":" + std::to_string(dropped);
  out += ",\"threads\":" + std::to_string(buffers_.size());
  out += "}}\n";
  return out;
}

uint64_t Tracer::TotalEventsLocked() const {
  uint64_t total = 0;
  for (const auto& buf : buffers_) {
    total += std::min<uint64_t>(buf->pushed(), buf->capacity());
  }
  return total;
}

bool Tracer::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ExportJson();
  return static_cast<bool>(out);
}

void TraceSpan::Init(const char* category, const char* name) {
  buf_ = Tracer::Get().CurrentBuffer();
  if (buf_ == nullptr) {
    return;
  }
  category_ = category;
  name_ = name;
  start_ns_ = TraceNowNs();
}

void TraceSpan::Finish() {
  TraceEvent event;
  event.category = category_;
  event.name = name_;
  event.start_ns = start_ns_;
  event.dur_ns = TraceNowNs() - start_ns_;
  event.num_args = num_args_;
  for (uint32_t i = 0; i < num_args_; ++i) {
    event.arg_names[i] = arg_names_[i];
    event.arg_values[i] = arg_values_[i];
  }
  buf_->Push(event);
}

ProgressReporter::ProgressReporter(double interval_s, std::FILE* out)
    : interval_s_(interval_s), out_(out != nullptr ? out : stderr) {}

void ProgressReporter::OnRunBegin(uint64_t total_episodes,
                                  uint32_t steps_per_episode,
                                  uint64_t total_walkers) {
  // Single source of truth with the JSONL exporter: progress reads the same
  // registry cells the engine publishes at its stage barriers.
  auto& registry = telemetry::TelemetryRegistry::Get();
  steps_counter_ = &registry.CounterRef("fm.engine.walker_steps_total");
  live_gauge_ = &registry.GaugeRef("fm.engine.live_walkers");
  steps_base_ = steps_counter_->Value();
  total_episodes_ = total_episodes;
  steps_per_episode_ = steps_per_episode;
  total_walkers_ = total_walkers;
  walker_steps_done_ = 0;
  ticks_done_ = 0;
  lines_printed_ = 0;
  start_ns_ = TraceNowNs();
  last_print_ns_ = start_ns_;
}

void ProgressReporter::OnStep(uint64_t episode, uint32_t step,
                              uint64_t live_walkers,
                              uint64_t walker_steps_delta) {
  ++ticks_done_;
  if (steps_counter_ != nullptr) {
    // Registry-backed: identical to what a concurrent JSONL snapshot reports.
    walker_steps_done_ = steps_counter_->Value() - steps_base_;
  } else {
    // Direct-drive fallback (OnStep without OnRunBegin — tests only).
    walker_steps_done_ += walker_steps_delta;
  }
  uint64_t now = TraceNowNs();
  if (static_cast<double>(now - last_print_ns_) < interval_s_ * 1e9) {
    return;
  }
  last_print_ns_ = now;
  const uint64_t live =
      live_gauge_ != nullptr ? static_cast<uint64_t>(live_gauge_->Value())
                             : live_walkers;
  PrintLine(episode, step, live, /*final_line=*/false);
}

void ProgressReporter::OnRunEnd() {
  PrintLine(total_episodes_ > 0 ? total_episodes_ - 1 : 0,
            steps_per_episode_ > 0 ? steps_per_episode_ - 1 : 0,
            /*live_walkers=*/0, /*final_line=*/true);
}

void ProgressReporter::PrintLine(uint64_t episode, uint32_t step,
                                 uint64_t live_walkers, bool final_line) {
  double elapsed_s =
      static_cast<double>(TraceNowNs() - start_ns_) / 1e9;
  double rate = elapsed_s > 0
                    ? static_cast<double>(walker_steps_done_) / elapsed_s
                    : 0;
  uint64_t dropped = Tracer::Get().TotalDropped();
  if (final_line) {
    std::fprintf(out_,
                 "[fm] done: %" PRIu64 " walker-steps in %.1fs "
                 "(%.2fM steps/s), dropped spans %" PRIu64 "\n",
                 walker_steps_done_, elapsed_s, rate / 1e6, dropped);
  } else {
    uint64_t total_ticks =
        total_episodes_ * static_cast<uint64_t>(steps_per_episode_);
    double frac = total_ticks > 0 ? static_cast<double>(ticks_done_) /
                                        static_cast<double>(total_ticks)
                                  : 0;
    double eta_s = frac > 0 ? elapsed_s * (1.0 - frac) / frac : 0;
    std::fprintf(out_,
                 "[fm] ep %" PRIu64 "/%" PRIu64 " step %u/%u live %" PRIu64
                 " %.2fM steps/s ETA %.0fs dropped %" PRIu64 "\n",
                 episode + 1, total_episodes_, step + 1, steps_per_episode_,
                 live_walkers, rate / 1e6, eta_s, dropped);
  }
  std::fflush(out_);
  ++lines_printed_;
}

}  // namespace fm
