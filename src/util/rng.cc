#include "src/util/rng.h"

namespace fm {

uint64_t DeriveSeed(uint64_t base, uint64_t stream) {
  // Mix the stream index through splitmix64 twice so that consecutive stream indices
  // produce decorrelated seeds.
  uint64_t s = base ^ (stream * 0xA24BAED4963EE407ULL);
  (void)SplitMix64(s);
  return SplitMix64(s);
}

}  // namespace fm
