// Shared minimal JSON support: RFC 8259 string escaping used by every JSON
// emitter in the tree (fm-metrics-v1, fm-bench-trajectory-v1, the trace
// exporter), plus the recursive-descent parser the tests and `fmtrace` use to
// read those documents back. One escaping implementation means a path with
// quotes or control characters cannot round-trip correctly in one schema and
// corrupt another.
#ifndef SRC_UTIL_JSON_H_
#define SRC_UTIL_JSON_H_

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fm {
namespace json {

// Appends `s` escaped per RFC 8259 (no surrounding quotes): `"` `\` become
// \" \\, and control characters become \n \r \t or \u00XX.
void AppendEscaped(std::string* out, std::string_view s);

// Appends `s` as a complete JSON string token: quotes plus escaping.
void AppendQuoted(std::string* out, std::string_view s);

// Returns the escaped body of `s` (no surrounding quotes).
std::string JsonEscape(std::string_view s);

// Parsed JSON value. Supports the full grammar the emitters produce: objects,
// arrays, strings (with escapes), numbers, true/false/null.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool Has(const std::string& key) const {
    return type == Type::kObject && object.count(key) > 0;
  }
  const Value& At(const std::string& key) const {
    if (!Has(key)) {
      throw std::runtime_error("missing key: " + key);
    }
    return object.at(key);
  }
  double Num(const std::string& key) const { return At(key).number; }
  const std::string& Str(const std::string& key) const { return At(key).str; }
};

// Parses `text` as a single JSON document. Throws std::runtime_error with a
// byte position on malformed input, so a serialization bug fails loudly
// instead of passing vacuously.
Value ParseJson(const std::string& text);

}  // namespace json
}  // namespace fm

#endif  // SRC_UTIL_JSON_H_
