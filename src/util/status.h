// Minimal structured error value for module-boundary failures that must not
// abort even in release builds (the FM_CHECK family is for invariants the
// caller cannot trigger; Status is for contract violations a caller can).
#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace fm {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kFailedPrecondition = 2,
};

class Status {
 public:
  Status() = default;  // ok

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace fm

#endif  // SRC_UTIL_STATUS_H_
