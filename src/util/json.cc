#include "src/util/json.h"

#include <cctype>
#include <cstdio>

namespace fm {
namespace json {

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendQuoted(std::string* out, std::string_view s) {
  out->push_back('"');
  AppendEscaped(out, s);
  out->push_back('"');
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  AppendEscaped(&out, s);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value Parse() {
    Value v = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing content");
    }
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    throw std::runtime_error("json error at byte " + std::to_string(pos_) +
                             ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) {
      Fail("unexpected end");
    }
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(std::string("expected '") + c + "' got '" + Peek() + "'");
    }
    ++pos_;
  }

  bool Consume(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value ParseValue() {
    SkipWs();
    char c = Peek();
    Value v;
    if (c == '{') {
      v.type = Value::Type::kObject;
      ++pos_;
      SkipWs();
      if (Peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        SkipWs();
        std::string key = ParseString();
        SkipWs();
        Expect(':');
        v.object[key] = ParseValue();
        SkipWs();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        Expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.type = Value::Type::kArray;
      ++pos_;
      SkipWs();
      if (Peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.array.push_back(ParseValue());
        SkipWs();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        Expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.type = Value::Type::kString;
      v.str = ParseString();
      return v;
    }
    if (Consume("true")) {
      v.type = Value::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (Consume("false")) {
      v.type = Value::Type::kBool;
      v.boolean = false;
      return v;
    }
    if (Consume("null")) {
      return v;
    }
    v.type = Value::Type::kNumber;
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) {
      Fail("not a value");
    }
    v.number = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("dangling escape");
      }
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("short \\u escape");
          }
          unsigned code = std::stoul(text_.substr(pos_, 4), nullptr, 16);
          pos_ += 4;
          // The emitters only \u-escape control characters (< 0x20).
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          Fail("bad escape");
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Value ParseJson(const std::string& text) { return Parser(text).Parse(); }

}  // namespace json
}  // namespace fm
