#include "src/util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace fm {

MappedFile::MappedFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("MappedFile: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("MappedFile: fstat failed for " + path);
  }
  size_ = static_cast<size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    throw std::runtime_error("MappedFile: empty file " + path);
  }
  data_ = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (data_ == MAP_FAILED) {
    data_ = nullptr;
    throw std::runtime_error("MappedFile: mmap failed for " + path + ": " +
                             std::strerror(errno));
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Unmap();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() { Unmap(); }

void MappedFile::Unmap() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

void MappedFile::AdviseSequential() const {
  if (data_ != nullptr) {
    ::madvise(data_, size_, MADV_SEQUENTIAL);
  }
}

void MappedFile::AdviseRandom() const {
  if (data_ != nullptr) {
    ::madvise(data_, size_, MADV_RANDOM);
  }
}

}  // namespace fm
