// Unified telemetry: a process-wide metric registry with three instrument
// types — monotonic counters, gauges, and log2-bucketed histograms — plus two
// exporters (Prometheus text exposition and append-only JSONL time-series
// snapshots) and a background snapshot thread.
//
// Design (DESIGN.md §7g):
//   - Counters and histograms are backed by per-thread shards (the
//     ShardedVisitCounter pattern): each thread leases a shard slot on first
//     update and its increments are a single relaxed store to a cache-line-
//     padded cell it alone writes. A snapshot folds the shards with relaxed
//     loads — counts may lag by an in-flight increment but are never torn,
//     which is exactly the freshness a live exporter needs. When more threads
//     are alive than there are slots, the spares share one overflow shard
//     updated with atomic RMW so no increment is ever lost.
//   - Gauges are last-write-wins level signals (live walkers, queue depth) set
//     at stage barriers; a single relaxed atomic cell is the honest encoding —
//     sharding a "current value" has no meaning.
//   - Histograms bucket by log2 (std::bit_width — no division, per the
//     hot-path-div discipline): bucket b holds values with bit_width(v) == b,
//     i.e. [2^(b-1), 2^b). Percentile queries interpolate linearly inside the
//     bucket, so p50/p90/p99/p999 carry at most one power-of-two of error.
//   - Registration is static-init-safe (Meyers-singleton registry, instrument
//     storage never moves) and names must follow the `fm.<module>.<metric>`
//     convention — checked at registration so a typo fails the first run, not
//     a dashboard query months later.
//   - The engine publishes at stage barriers from values it already measured
//     (the same Timer reads and per-worker shard folds that feed WalkStats),
//     so fm-metrics-v1 output is bit-identical with telemetry wired and the
//     hot loops never touch a shared cell (enforced by the fmlint
//     telemetry-hot-path rule).
//
// Lookup (`CounterRef` etc.) takes the registry mutex — call it at setup /
// stage boundaries and cache the reference; never in a hot loop.
#ifndef SRC_UTIL_TELEMETRY_H_
#define SRC_UTIL_TELEMETRY_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/util/sync.h"

namespace fm {
namespace telemetry {

// Shard slots for counters/histograms. Slots [0, kShards-1) are leased
// exclusively (one live thread each, recycled at thread exit); the last slot
// is the shared overflow shard for threads beyond that, updated with RMW.
inline constexpr uint32_t kShards = 128;
inline constexpr uint32_t kOverflowSlot = kShards - 1;

// Histogram buckets: bucket b holds values with std::bit_width(v) == b, so
// bucket 0 is exactly {0} and bucket 64 covers values >= 2^63.
inline constexpr uint32_t kHistogramBuckets = 65;

// The calling thread's shard slot (leased on first call, released when the
// thread exits, kOverflowSlot when all exclusive slots are taken).
uint32_t ThisThreadSlot();

// `fm.<module>.<metric>`: at least three dot-separated segments, the first
// exactly "fm", the rest non-empty [a-z0-9_]. Exposed so tests can cover the
// convention without death tests.
bool IsValidMetricName(const std::string& name);

// Monotonic counter. Add() from any thread; Value() folds the shards.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    const uint32_t slot = ThisThreadSlot();
    std::atomic<uint64_t>& cell = cells_[slot].v;
    if (slot == kOverflowSlot) {
      // relaxed: the overflow shard is shared, so the increment must be an
      // RMW; folds only need an eventually-complete sum, not ordering.
      cell.fetch_add(delta, std::memory_order_relaxed);
      return;
    }
    // relaxed: this cell is written only by the slot's leased owner thread
    // (single-writer protocol); snapshot folds tolerate reading a value that
    // is one in-flight increment stale.
    const uint64_t cur = cell.load(std::memory_order_relaxed);
    // relaxed: same single-writer cell as the load above.
    cell.store(cur + delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      // relaxed: fold of independently-written shards; a snapshot is allowed
      // to lag in-flight increments.
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }

  // Zeroes every shard. Test-only: concurrent Add() calls may be lost.
  void ResetForTest();

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::string name_;
  std::array<Cell, kShards> cells_;
};

// Last-write-wins level signal, set at stage barriers (never in hot loops —
// the fmlint telemetry-hot-path rule bans shared metric stores there).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) {
    // relaxed: a gauge is a level signal; readers only want some recent
    // value, and anything the engine itself needs is ordered by the stage
    // barriers that surround Set.
    value_.store(value, std::memory_order_relaxed);
  }

  int64_t Value() const {
    // relaxed: see Set.
    return value_.load(std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<int64_t> value_{0};
};

// Folded view of one histogram, with percentile queries. `buckets[b]` counts
// values with bit_width == b; Percentile interpolates linearly inside the
// bucket, clamping the answer to the bucket's value range.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  // p in [0, 100]. Returns 0 for an empty histogram.
  double Percentile(double p) const;
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

// Log2-bucketed histogram of non-negative samples (latencies in ns, sizes).
class Histogram {
 public:
  explicit Histogram(std::string name);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value) {
    const uint32_t bucket = static_cast<uint32_t>(std::bit_width(value));
    const uint32_t slot = ThisThreadSlot();
    Shard& shard = shards_[slot];
    if (slot == kOverflowSlot) {
      // relaxed: shared overflow shard — RMW so no sample is lost; folds
      // need completeness, not ordering.
      shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
      // relaxed: same shared-overflow RMW protocol as the bucket above.
      shard.sum.fetch_add(value, std::memory_order_relaxed);
      return;
    }
    // relaxed: single-writer cells (the slot's leased owner); snapshot folds
    // tolerate an in-flight sample's worth of staleness.
    const uint64_t b = shard.buckets[bucket].load(std::memory_order_relaxed);
    // relaxed: same single-writer bucket cell as the load above.
    shard.buckets[bucket].store(b + 1, std::memory_order_relaxed);
    // relaxed: single-writer sum cell, same protocol as the bucket.
    const uint64_t s = shard.sum.load(std::memory_order_relaxed);
    // relaxed: same single-writer sum cell as the load above.
    shard.sum.store(s + value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  const std::string& name() const { return name_; }

  // Zeroes every shard. Test-only: concurrent Observe() calls may be lost.
  void ResetForTest();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  std::string name_;
  std::vector<Shard> shards_;  // kShards entries, sized once in the ctor
};

// Point-in-time fold of every registered instrument.
struct RegistrySnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };
  std::vector<CounterValue> counters;      // sorted by name
  std::vector<GaugeValue> gauges;          // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name
};

// Process-wide instrument registry. Instruments are created on first lookup
// and live for the process (references stay valid forever); lookups are
// mutex-guarded, so cache the reference outside hot code.
class TelemetryRegistry {
 public:
  // Use Get(); the constructor is public only so the leaked process-wide
  // singleton can be built with std::make_unique.
  TelemetryRegistry() = default;
  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  static TelemetryRegistry& Get();

  // Aborts on a name that violates the fm.<module>.<metric> convention or is
  // already registered as a different instrument type.
  Counter& CounterRef(const std::string& name);
  Gauge& GaugeRef(const std::string& name);
  Histogram& HistogramRef(const std::string& name);

  RegistrySnapshot Snapshot() const;

  // Prometheus text exposition format v0.0.4: counters/gauges with their
  // TYPE lines, histograms as cumulative le-buckets + _sum + _count. Metric
  // names have '.' mapped to '_' (Prometheus has no dots).
  std::string RenderPrometheus() const;

  // One fm-telemetry-v1 JSONL line (no trailing newline): cumulative counter
  // and gauge values plus histogram counts/sums/buckets and p50/p90/p99/p999.
  std::string RenderJsonLine(uint64_t t_ns) const;

  // Zeroes counters and histograms (gauges keep their level). Test-only.
  void ResetForTest();

 private:
  // mutex_ protects the instrument maps (registration and iteration); the
  // instrument cells themselves are relaxed atomics and deliberately
  // unguarded (single-writer shards, see the class comments).
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      FM_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ FM_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      FM_GUARDED_BY(mutex_);
};

// Background snapshot thread: appends one fm-telemetry-v1 JSONL line every
// interval while running, plus a final line on Stop() — so the last record of
// the file always holds the end-of-run cumulative values (the cli_test / CI
// contract: they must equal fm-metrics-v1's counters exactly).
class TelemetrySnapshotWriter {
 public:
  // Does not open or start anything; call Start().
  TelemetrySnapshotWriter(std::string path, uint32_t interval_ms);
  ~TelemetrySnapshotWriter();  // calls Stop()

  TelemetrySnapshotWriter(const TelemetrySnapshotWriter&) = delete;
  TelemetrySnapshotWriter& operator=(const TelemetrySnapshotWriter&) = delete;

  // Opens the file (truncating) and starts the snapshot thread. False if the
  // file cannot be opened. Idempotent once started.
  bool Start();

  // Stops the thread, writes the final snapshot line, flushes, and closes.
  // Idempotent; also run by the destructor.
  void Stop();

  bool started() const { return thread_.joinable() || stopped_; }
  // Lines written so far (including the final line after Stop).
  uint64_t lines_written() const {
    // relaxed: progress indicator for tests/tools; staleness is fine.
    return lines_written_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void WriteLine();

  std::string path_;
  uint32_t interval_ms_;
  std::FILE* out_ = nullptr;  // written by the loop thread, then (after the
                              // join in Stop) by the stopping thread
  std::thread thread_;
  bool stopped_ = false;
  std::atomic<uint64_t> lines_written_{0};

  // mutex_ protects the stop flag for the timed-wait handshake with the
  // snapshot thread (leaf lock: never held while writing or snapshotting).
  Mutex mutex_;
  CondVar cv_;
  bool stop_ FM_GUARDED_BY(mutex_) = false;
};

}  // namespace telemetry
}  // namespace fm

#endif  // SRC_UTIL_TELEMETRY_H_
