// Fixed-size thread pool with a blocking ParallelFor.
//
// FlashMob's sample and shuffle stages both decompose into independent tasks over
// disjoint array regions (§4.3: "threads work on disjoint array areas, simplifying
// synchronization and eliminating the needs for locks"), so a simple static/dynamic
// chunked parallel-for is all the engine needs.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fm {

class ThreadPool {
 public:
  // `threads` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(uint32_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t thread_count() const { return static_cast<uint32_t>(workers_.size()) + 1; }

  // Runs body(task_index, worker_index) for task_index in [0, tasks), distributing
  // tasks dynamically (atomic counter). Blocks until all tasks complete. The calling
  // thread participates as worker 0. Not reentrant.
  void ParallelFor(uint64_t tasks,
                   const std::function<void(uint64_t, uint32_t)>& body);

  // Convenience: splits [0, n) into one contiguous chunk per worker and runs
  // body(begin, end, worker_index) on each. Chunks differ in size by at most one.
  void ParallelChunks(
      uint64_t n,
      const std::function<void(uint64_t, uint64_t, uint32_t)>& body);

  // Returns the global pool (FM_THREADS env var, default hardware concurrency).
  static ThreadPool& Global();

  // Kernel thread ids of the spawned workers (the calling thread, which
  // participates as worker 0, is not included — measure it as tid 0 yourself).
  // Blocks briefly until every worker has registered its tid at startup.
  // Linux-only; returns an empty vector elsewhere. Used by StagePerfMonitor to
  // open per-thread hardware counter groups (src/util/perf_counters.h).
  std::vector<int32_t> WorkerSystemTids() const;

 private:
  void WorkerLoop(uint32_t worker_index);
  void RunCurrentJob(uint32_t worker_index);

  std::vector<std::thread> workers_;
  std::vector<int32_t> worker_tids_;            // slot i-1 for worker i
  std::atomic<uint32_t> tids_registered_{0};
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;

  // Current job state (guarded by mutex_ for the control fields; next_task_ is the
  // hot path and is atomic).
  const std::function<void(uint64_t, uint32_t)>* job_ = nullptr;
  uint64_t job_tasks_ = 0;
  uint64_t job_epoch_ = 0;
  std::atomic<uint64_t> next_task_{0};
  uint32_t workers_running_ = 0;
  bool shutdown_ = false;
};

}  // namespace fm

#endif  // SRC_UTIL_THREAD_POOL_H_
