// Fixed-size thread pool with a blocking ParallelFor.
//
// FlashMob's sample and shuffle stages both decompose into independent tasks over
// disjoint array regions (§4.3: "threads work on disjoint array areas, simplifying
// synchronization and eliminating the needs for locks"), so a simple static/dynamic
// chunked parallel-for is all the engine needs.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/sync.h"

namespace fm {

class ThreadPool {
 public:
  // `threads` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(uint32_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t thread_count() const { return static_cast<uint32_t>(workers_.size()) + 1; }

  // Runs body(task_index, worker_index) for task_index in [0, tasks), distributing
  // tasks dynamically (atomic counter). Blocks until all tasks complete. The calling
  // thread participates as worker 0. Not reentrant.
  void ParallelFor(uint64_t tasks,
                   const std::function<void(uint64_t, uint32_t)>& body);

  // Convenience: splits [0, n) into one contiguous chunk per worker and runs
  // body(begin, end, worker_index) on each. Chunks differ in size by at most one.
  void ParallelChunks(
      uint64_t n,
      const std::function<void(uint64_t, uint64_t, uint32_t)>& body);

  // Returns the global pool (FM_THREADS env var, default hardware concurrency).
  static ThreadPool& Global();

  // Kernel thread ids of the spawned workers (the calling thread, which
  // participates as worker 0, is not included — measure it as tid 0 yourself).
  // Blocks briefly until every worker has registered its tid at startup.
  // Linux-only; returns an empty vector elsewhere. Used by StagePerfMonitor to
  // open per-thread hardware counter groups (src/util/perf_counters.h).
  std::vector<int32_t> WorkerSystemTids() const;

 private:
  void WorkerLoop(uint32_t worker_index);
  // Pulls tasks off next_task_ until the job is drained. The job pointer and
  // task count are snapshots taken under mutex_ by the caller, so this runs
  // entirely lock-free.
  void RunJob(const std::function<void(uint64_t, uint32_t)>& job,
              uint64_t tasks, uint32_t worker_index);

  std::vector<std::thread> workers_;
  // Slot i-1 for worker i. Single-writer protocol, not mutex-guarded: each
  // worker writes only its own slot before the tids_registered_ release
  // increment, and WorkerSystemTids reads only after the matching acquire.
  std::vector<int32_t> worker_tids_;
  std::atomic<uint32_t> tids_registered_{0};

  // mutex_ protects the job handshake: publication of a new job (epoch bump),
  // the workers-running completion count, and shutdown.
  Mutex mutex_;
  CondVar wake_cv_;
  CondVar done_cv_;
  const std::function<void(uint64_t, uint32_t)>* job_ FM_GUARDED_BY(mutex_) =
      nullptr;
  uint64_t job_tasks_ FM_GUARDED_BY(mutex_) = 0;
  uint64_t job_epoch_ FM_GUARDED_BY(mutex_) = 0;
  uint32_t workers_running_ FM_GUARDED_BY(mutex_) = 0;
  bool shutdown_ FM_GUARDED_BY(mutex_) = false;
  // Hot-path task cursor; deliberately outside the mutex.
  std::atomic<uint64_t> next_task_{0};
};

}  // namespace fm

#endif  // SRC_UTIL_THREAD_POOL_H_
