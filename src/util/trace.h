// Structured span tracing with per-thread lock-free ring buffers, plus the
// step-barrier progress heartbeat.
//
// Design (DESIGN.md §7d):
//   - Always compiled, off by default. `FM_TRACE_SPAN(cat, name)` costs one
//     relaxed atomic load when tracing is disabled; no allocation, no locking,
//     no clock read.
//   - When enabled, each thread records into its own fixed-capacity ring
//     buffer (registered lazily on first span, one mutex acquisition per
//     thread lifetime). The hot path is a monotonic-clock read plus a plain
//     array store; on overflow the ring drops the oldest event and counts it —
//     tracing can never block or slow the pipeline by more than the ring.
//   - Export writes Chrome trace-event / Perfetto-compatible JSON ("X"
//     complete events with pid/tid, "M" thread-name metadata) that loads
//     directly in ui.perfetto.dev or chrome://tracing. Export must only run
//     while no spans are being recorded (after the run's barriers / joins);
//     the live-readable parts (event and dropped counts) are relaxed atomics.
//
// The ProgressReporter heartbeat is driven from the engine's existing
// per-step barrier (EngineOptions::progress) so it needs no extra thread: the
// main thread calls OnStep after each gather and the reporter prints at most
// once per interval.
#ifndef SRC_UTIL_TRACE_H_
#define SRC_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/util/sync.h"

namespace fm {

// One recorded span. Category/name/arg keys must be string literals (or
// otherwise outlive the tracer); events store the pointers, not copies.
struct TraceEvent {
  static constexpr uint32_t kMaxArgs = 3;
  const char* category = nullptr;
  const char* name = nullptr;
  uint64_t start_ns = 0;  // steady-clock ns (absolute; exporter rebases)
  uint64_t dur_ns = 0;
  uint32_t num_args = 0;
  const char* arg_names[kMaxArgs] = {nullptr, nullptr, nullptr};
  uint64_t arg_values[kMaxArgs] = {0, 0, 0};
};

// Per-thread fixed-capacity ring. Single writer (the owning thread); the
// counters are relaxed atomics so the heartbeat can read totals live. Event
// payloads are only read at export time, after writers have quiesced.
class TraceRingBuffer {
 public:
  TraceRingBuffer(uint32_t tid, std::string thread_name, size_t capacity);

  void Push(const TraceEvent& event) {
    // relaxed: head_ is single-writer (the owning thread); concurrent readers
    // only consume the counter value, and event payloads are read post-quiesce.
    uint64_t h = head_.load(std::memory_order_relaxed);
    events_[h % events_.size()] = event;
    // relaxed: same single-writer counter as the load above; the export path
    // runs after writers quiesce.
    head_.store(h + 1, std::memory_order_relaxed);
  }

  // Total events ever pushed / dropped (ring overwrote them before export).
  // relaxed: live heartbeat reads tolerate a stale count.
  uint64_t pushed() const { return head_.load(std::memory_order_relaxed); }
  uint64_t dropped() const {
    uint64_t h = pushed();
    return h > events_.size() ? h - events_.size() : 0;
  }
  size_t capacity() const { return events_.size(); }
  uint32_t tid() const { return tid_; }
  const std::string& thread_name() const { return thread_name_; }
  void set_thread_name(std::string name) { thread_name_ = std::move(name); }

  // Visits surviving events oldest-first. Caller must ensure the owning
  // thread is not concurrently pushing (post-run export contract).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    // relaxed: export-only path; the owning thread has quiesced by contract.
    uint64_t h = head_.load(std::memory_order_relaxed);
    uint64_t begin = h > events_.size() ? h - events_.size() : 0;
    for (uint64_t i = begin; i < h; ++i) {
      fn(events_[i % events_.size()]);
    }
  }

 private:
  std::vector<TraceEvent> events_;
  std::atomic<uint64_t> head_{0};
  uint32_t tid_;
  std::string thread_name_;
};

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 16;  // events per thread

  static Tracer& Get();

  // Starts recording. Threads register their ring (of `events_per_thread`
  // capacity) lazily on their first span. Idempotent; capacity applies to
  // rings created after the call.
  void Enable(size_t events_per_thread = kDefaultCapacity);

  // Stops recording new spans. Buffers are retained for export.
  void Disable();

  // Drops all buffers and thread registrations and disables recording. Only
  // safe when no span is alive anywhere (tests; between runs).
  void Reset();

  static bool enabled() {
    // relaxed: a stale read only delays span capture by one event; ring
    // registration (the racy part) re-checks under the registry mutex.
    return enabled_flag_.load(std::memory_order_relaxed);
  }

  // The calling thread's ring, registering it if needed. nullptr if disabled.
  TraceRingBuffer* CurrentBuffer();

  // Names the calling thread in exported traces. Effective retroactively if
  // the thread already has a ring, and remembered for rings created later
  // (ThreadPool workers name themselves at startup, usually before Enable).
  static void SetThisThreadName(const std::string& name);

  // Live totals across all registered rings (relaxed reads; safe concurrent
  // with writers).
  uint64_t TotalEvents() const;
  uint64_t TotalDropped() const;

  // Chrome trace-event JSON: {"traceEvents":[...M+X events...],
  // "displayTimeUnit":"ns", "otherData":{...}}. ts/dur are microseconds
  // rebased so the earliest event starts at 0. Writers must be quiescent.
  std::string ExportJson() const;
  bool WriteJson(const std::string& path) const;

 private:
  Tracer() = default;

  // Surviving (exportable) event count.
  uint64_t TotalEventsLocked() const FM_REQUIRES(mutex_);

  friend class TraceSpan;

  static std::atomic<bool> enabled_flag_;

  // mutex_ protects the ring registry: the buffer list, the capacity applied
  // to newly registered rings, and retroactive thread renames. Ring *contents*
  // are single-writer and not guarded (see TraceRingBuffer).
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<TraceRingBuffer>> buffers_ FM_GUARDED_BY(mutex_);
  size_t capacity_ FM_GUARDED_BY(mutex_) = kDefaultCapacity;
  // Bumped by Reset so threads drop their cached ring pointer.
  std::atomic<uint64_t> epoch_{1};
};

// Steady-clock nanoseconds (the one sanctioned raw-clock site besides
// Timer/perf_counters; see the fmlint raw-clock rule).
uint64_t TraceNowNs();

// RAII span: records a complete event covering its lifetime on the calling
// thread's ring. When tracing is disabled, construction is a relaxed load and
// destruction a null check.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name) {
    if (Tracer::enabled()) {
      Init(category, name);
    }
  }
  ~TraceSpan() {
    if (buf_ != nullptr) {
      Finish();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attaches a numeric arg (up to TraceEvent::kMaxArgs; extras are ignored).
  // `key` must be a string literal.
  void Arg(const char* key, uint64_t value) {
    if (buf_ != nullptr && num_args_ < TraceEvent::kMaxArgs) {
      arg_names_[num_args_] = key;
      arg_values_[num_args_] = value;
      ++num_args_;
    }
  }

 private:
  void Init(const char* category, const char* name);
  void Finish();

  TraceRingBuffer* buf_ = nullptr;
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint32_t num_args_ = 0;
  const char* arg_names_[TraceEvent::kMaxArgs] = {nullptr, nullptr, nullptr};
  uint64_t arg_values_[TraceEvent::kMaxArgs] = {0, 0, 0};
};

#define FM_TRACE_CONCAT2(a, b) a##b
#define FM_TRACE_CONCAT(a, b) FM_TRACE_CONCAT2(a, b)
// Anonymous scope span; use a named `TraceSpan span(...)` when attaching args.
#define FM_TRACE_SPAN(category, name) \
  ::fm::TraceSpan FM_TRACE_CONCAT(fm_trace_span_, __LINE__)(category, name)

namespace telemetry {
class Counter;
class Gauge;
}  // namespace telemetry

// Step-barrier progress heartbeat (opt-in via EngineOptions::progress /
// `fmwalk --progress[=SECONDS]`). The engine's main thread calls OnStep after
// every per-step barrier; the reporter prints at most once per interval:
// episode/step position, live walkers, walker-steps/sec, ETA from the step
// fraction, and the tracer's dropped-span count. interval_s == 0 prints every
// step (tests, very long steps).
//
// Throughput and live-walker values are read from the telemetry registry
// (fm.engine.walker_steps_total / fm.engine.live_walkers), the same cells the
// JSONL exporter snapshots — so --progress and --telemetry-jsonl can never
// disagree about how far a run has gotten.
class ProgressReporter {
 public:
  explicit ProgressReporter(double interval_s = 10.0, std::FILE* out = nullptr);

  void OnRunBegin(uint64_t total_episodes, uint32_t steps_per_episode,
                  uint64_t total_walkers);
  void OnStep(uint64_t episode, uint32_t step, uint64_t live_walkers,
              uint64_t walker_steps_delta);
  void OnRunEnd();

  uint64_t lines_printed() const { return lines_printed_; }

 private:
  void PrintLine(uint64_t episode, uint32_t step, uint64_t live_walkers,
                 bool final_line);

  double interval_s_;
  std::FILE* out_;  // defaults to stderr
  // Registry cells cached at OnRunBegin (lookups are mutex-guarded); the
  // counter is cumulative across runs, so progress is measured against the
  // base value captured when this run began.
  telemetry::Counter* steps_counter_ = nullptr;
  telemetry::Gauge* live_gauge_ = nullptr;
  uint64_t steps_base_ = 0;
  uint64_t total_episodes_ = 0;
  uint32_t steps_per_episode_ = 0;
  uint64_t total_walkers_ = 0;
  uint64_t walker_steps_done_ = 0;
  uint64_t ticks_done_ = 0;
  uint64_t start_ns_ = 0;
  uint64_t last_print_ns_ = 0;
  uint64_t lines_printed_ = 0;
};

}  // namespace fm

#endif  // SRC_UTIL_TRACE_H_
