#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "src/util/env.h"
#include "src/util/sync.h"

namespace fm {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::once_flag g_init_once;
// Serializes sink writes so concurrent log lines never interleave.
Mutex g_log_mutex;

char LevelChar(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarn:
      return 'W';
    case LogLevel::kError:
      return 'E';
  }
  return '?';
}

void InitFromEnv() {
  std::string level = EnvString("FM_LOG_LEVEL", "info");
  if (level == "debug") {
    g_level = LogLevel::kDebug;
  } else if (level == "warn") {
    g_level = LogLevel::kWarn;
  } else if (level == "error") {
    g_level = LogLevel::kError;
  }
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() {
  std::call_once(g_init_once, InitFromEnv);
  return g_level.load();
}

void LogMessage(LogLevel level, const std::string& message) {
  if (level < GetLogLevel()) {
    return;
  }
  MutexLock lock(g_log_mutex);
  std::fprintf(stderr, "[fm %c] %s\n", LevelChar(level), message.c_str());
}

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "[fm F] %s:%d: check failed: %s %s\n", file, line, expr,
               message.c_str());
  std::abort();
}

}  // namespace fm
