// Cache-line aligned, default-uninitialized buffer.
//
// The walker arrays and pre-sample buffers are written before they are read, so
// value-initializing them (as std::vector does) would double the first-touch traffic.
// Alignment to the cache line keeps per-partition walker chunks from false sharing
// across shuffle threads (§4.3 "FlashMob aligns per-partition walker data to cache
// lines to avoid false sharing").
#ifndef SRC_UTIL_ALIGNED_BUFFER_H_
#define SRC_UTIL_ALIGNED_BUFFER_H_

#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "src/util/types.h"

namespace fm {

template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(size_t count) { Allocate(count); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { Free(); }

  // (Re)allocates for `count` elements; contents are uninitialized.
  void Allocate(size_t count) {
    Free();
    size_ = count;
    if (count == 0) {
      return;
    }
    size_t bytes = count * sizeof(T);
    bytes = (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
    data_ = static_cast<T*>(std::aligned_alloc(kCacheLineBytes, bytes));
    if (data_ == nullptr) {
      throw std::bad_alloc();
    }
  }

  void FillZero() {
    if (data_ != nullptr) {
      std::memset(data_, 0, size_ * sizeof(T));
    }
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void Free() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace fm

#endif  // SRC_UTIL_ALIGNED_BUFFER_H_
