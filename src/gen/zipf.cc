#include "src/gen/zipf.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/logging.h"

namespace fm {

std::vector<Degree> ZipfDegreeSequence(const ZipfDegreeConfig& config) {
  FM_CHECK(config.num_vertices > 0);
  FM_CHECK(config.avg_degree > 0);
  FM_CHECK(config.alpha >= 0);
  Vid n = config.num_vertices;

  // Unnormalized weights w_i = (i + 1)^-alpha, scaled so that the mean hits
  // avg_degree. Clamping to [min, max] changes the mean, so rescale iteratively (the
  // fixed point converges in a handful of rounds for any realistic parameters).
  std::vector<double> weights(n);
  double weight_sum = 0;
  for (Vid i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i) + 1.0, -config.alpha);
    weight_sum += weights[i];
  }
  double target_total = config.avg_degree * static_cast<double>(n);
  double scale = target_total / weight_sum;

  std::vector<Degree> degrees(n);
  double max_cap = config.max_degree == 0
                       ? std::numeric_limits<double>::max()
                       : static_cast<double>(config.max_degree);
  for (int round = 0; round < 16; ++round) {
    double total = 0;
    for (Vid i = 0; i < n; ++i) {
      double d = std::clamp(weights[i] * scale,
                            static_cast<double>(config.min_degree), max_cap);
      degrees[i] = static_cast<Degree>(std::llround(d));
      if (degrees[i] < config.min_degree) {
        degrees[i] = config.min_degree;
      }
      total += degrees[i];
    }
    double mean = total / static_cast<double>(n);
    if (std::fabs(mean - config.avg_degree) < 0.5) {
      break;
    }
    scale *= config.avg_degree / mean;
  }
  // The clamp preserves descending order since weights are descending.
  return degrees;
}

double TopShare(const std::vector<Degree>& degrees, double fraction) {
  if (degrees.empty()) {
    return 0;
  }
  size_t k = static_cast<size_t>(std::ceil(fraction * static_cast<double>(degrees.size())));
  k = std::max<size_t>(k, 1);
  uint64_t top = 0;
  uint64_t total = 0;
  for (size_t i = 0; i < degrees.size(); ++i) {
    total += degrees[i];
    if (i < k) {
      top += degrees[i];
    }
  }
  return total == 0 ? 0 : static_cast<double>(top) / static_cast<double>(total);
}

}  // namespace fm
