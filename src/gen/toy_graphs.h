// Cache-sized toy graphs for the Figure 1 highlight experiment.
//
// Figure 1 runs KnightKing on "toy graphs sized to fit the data footprint entirely
// into the L1, L2, and L3 capacities" to show how per-step time degrades as working
// sets fall out of each level; FlashMob's large-graph speed is then compared to those
// ceilings. These helpers size a random regular graph so its CSR footprint lands just
// under a byte budget.
#ifndef SRC_GEN_TOY_GRAPHS_H_
#define SRC_GEN_TOY_GRAPHS_H_

#include <cstdint>

#include "src/graph/csr_graph.h"

namespace fm {

// Number of vertices of a degree-`degree` regular graph whose CSR arrays fit in
// `budget_bytes` (at least 2 vertices).
Vid ToyGraphVertexCount(uint64_t budget_bytes, Degree degree);

// A random `degree`-regular graph whose CSR footprint is <= budget_bytes.
CsrGraph GenerateCacheSizedGraph(uint64_t budget_bytes, Degree degree, uint64_t seed);

}  // namespace fm

#endif  // SRC_GEN_TOY_GRAPHS_H_
