// Uniform-degree graph generator.
//
// Two roles:
//  1. The synthetic vertex partitions of Figure 6 ("synthetic VPs possessing a
//     uniform degree, ranging from 1024 to 16") that calibrate the PS/DS cost model.
//  2. Regular random graphs for tests (every vertex identical, so analytic
//     stationary distributions are exact).
#ifndef SRC_GEN_UNIFORM_DEGREE_H_
#define SRC_GEN_UNIFORM_DEGREE_H_

#include <cstdint>

#include "src/graph/csr_graph.h"

namespace fm {

// Every one of `num_vertices` vertices has exactly `degree` out-edges, each target
// uniform over [0, target_universe) (target_universe == 0 means the graph itself).
// Adjacency lists are sorted.
CsrGraph GenerateUniformDegreeGraph(Vid num_vertices, Degree degree, uint64_t seed,
                                    Vid target_universe = 0);

}  // namespace fm

#endif  // SRC_GEN_UNIFORM_DEGREE_H_
