#include "src/gen/toy_graphs.h"

#include <algorithm>

#include "src/gen/uniform_degree.h"
#include "src/util/logging.h"

namespace fm {

Vid ToyGraphVertexCount(uint64_t budget_bytes, Degree degree) {
  // CSR bytes = (|V| + 1) * sizeof(Eid) + |V| * degree * sizeof(Vid).
  uint64_t per_vertex = sizeof(Eid) + static_cast<uint64_t>(degree) * sizeof(Vid);
  uint64_t v = budget_bytes > sizeof(Eid) ? (budget_bytes - sizeof(Eid)) / per_vertex
                                          : 0;
  return static_cast<Vid>(std::max<uint64_t>(v, 2));
}

CsrGraph GenerateCacheSizedGraph(uint64_t budget_bytes, Degree degree,
                                 uint64_t seed) {
  Vid n = ToyGraphVertexCount(budget_bytes, degree);
  CsrGraph graph = GenerateUniformDegreeGraph(n, degree, seed);
  FM_CHECK_MSG(graph.CsrBytes() <= budget_bytes || n == 2,
               "toy graph exceeded its byte budget");
  return graph;
}

}  // namespace fm
