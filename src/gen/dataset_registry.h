// Registry of the five evaluation-graph stand-ins (Table 4 substitution).
//
// The paper evaluates on YouTube (YT), Twitter (TW), Friendster (FS), UK-Union (UK)
// and YahooWeb (YH) — up to 6.64B edges / 58 GB of CSR, which neither fits this
// reproduction box nor is fully redistributable. Each stand-in is a synthetic graph
// whose degree-distribution *shape* is fitted to Table 2 (per-bucket average degree
// and edge share) and whose average degree matches Table 4, scaled down by default
// and scalable via FM_SCALE. UK additionally gets a locality bias to model its larger
// diameter (§5.2's explanation of the UK outlier). See DESIGN.md §3.
#ifndef SRC_GEN_DATASET_REGISTRY_H_
#define SRC_GEN_DATASET_REGISTRY_H_

#include <string>
#include <vector>

#include "src/gen/powerlaw_graph.h"
#include "src/graph/csr_graph.h"

namespace fm {

struct DatasetSpec {
  std::string name;           // "YT", "TW", ...
  std::string full_name;      // "YouTube", ...
  // Paper-reported full-size statistics (Table 4), for reference output.
  uint64_t paper_vertices;
  uint64_t paper_edges;
  double paper_csr_gb;
  // Stand-in generation parameters at FM_SCALE=1.
  PowerLawConfig gen;
};

// All five stand-ins in the paper's order: YT, TW, FS, UK, YH.
const std::vector<DatasetSpec>& AllDatasets();

// Lookup by short name; throws std::invalid_argument for unknown names.
const DatasetSpec& DatasetByName(const std::string& name);

// Generates (or loads from the FM_DATASET_CACHE directory, default
// ".dataset_cache/") the stand-in at the given scale multiplier on |V|.
// scale <= 0 uses FM_SCALE (default 1.0).
CsrGraph LoadDataset(const DatasetSpec& spec, double scale = 0.0);

}  // namespace fm

#endif  // SRC_GEN_DATASET_REGISTRY_H_
