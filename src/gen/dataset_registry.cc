#include "src/gen/dataset_registry.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "src/graph/edge_io.h"
#include "src/util/env.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace fm {
namespace {

// Zipf exponents are fitted to Table 2's top-1% edge share s via s ~= 0.01^(1-alpha)
// (the closed form for rank-Zipf mass): YT 39.0% -> 0.80, TW 49.1% -> 0.845,
// FS 18.7% -> 0.64, UK 46.4% -> 0.833, YH 46.5% -> 0.834. Average degrees come from
// Table 4 (|E| / |V|). Default |V| values keep the whole 5-graph suite generating and
// walking in seconds on a small CI box; FM_SCALE multiplies them.
std::vector<DatasetSpec> BuildRegistry() {
  std::vector<DatasetSpec> specs;
  auto add = [&](const char* name, const char* full, uint64_t pv, uint64_t pe,
                 double gb, Vid v, double avg_deg, double alpha, double locality) {
    DatasetSpec spec;
    spec.name = name;
    spec.full_name = full;
    spec.paper_vertices = pv;
    spec.paper_edges = pe;
    spec.paper_csr_gb = gb;
    spec.gen.degrees.num_vertices = v;
    spec.gen.degrees.avg_degree = avg_deg;
    spec.gen.degrees.alpha = alpha;
    spec.gen.degrees.min_degree = 1;
    spec.gen.degrees.max_degree = static_cast<Degree>(v / 16);
    spec.gen.locality = locality;
    spec.gen.seed = 0xF1A5ULL ^ static_cast<uint64_t>(specs.size() + 1);
    specs.push_back(spec);
  };
  // Default |V| keeps the big four well past any LLC (so the baselines pay DRAM
  // latencies, as they do at the paper's scale) while the whole suite still
  // generates and walks in minutes on a small box. YT stays small — it is the
  // paper's cache-friendly outlier.
  //    name  full          paper|V|      paper|E|        GB     |V|      avgd  alpha loc
  add("YT", "YouTube",      1140000ULL,   4950000ULL,     0.0496, 570000,  4.34, 0.80, 0.0);
  add("TW", "Twitter",      41650000ULL,  1470000000ULL,  11.4,   1200000, 35.3, 0.845, 0.0);
  add("FS", "Friendster",   65610000ULL,  1810000000ULL,  14.2,   1440000, 27.6, 0.64, 0.0);
  add("UK", "UK-Union",     131810000ULL, 5510000000ULL,  42.5,   1600000, 41.8, 0.833, 0.5);
  add("YH", "YahooWeb",     720240000ULL, 6640000000ULL,  57.5,   4000000, 9.22, 0.834, 0.3);
  return specs;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec> specs = BuildRegistry();
  return specs;
}

const DatasetSpec& DatasetByName(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.name == name || spec.full_name == name) {
      return spec;
    }
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

CsrGraph LoadDataset(const DatasetSpec& spec, double scale) {
  if (scale <= 0) {
    scale = EnvDouble("FM_SCALE", 1.0);
  }
  PowerLawConfig config = spec.gen;
  config.degrees.num_vertices =
      static_cast<Vid>(static_cast<double>(config.degrees.num_vertices) * scale);
  config.degrees.num_vertices = std::max<Vid>(config.degrees.num_vertices, 64);
  config.degrees.max_degree =
      static_cast<Degree>(config.degrees.num_vertices / 16);

  std::string cache_dir = EnvString("FM_DATASET_CACHE", ".dataset_cache");
  std::filesystem::path path =
      std::filesystem::path(cache_dir) /
      (spec.name + "_" + std::to_string(config.degrees.num_vertices) + ".csr");
  if (std::filesystem::exists(path)) {
    try {
      return LoadCsrBinary(path.string());
    } catch (const std::exception& e) {
      FM_LOG(kWarn) << "dataset cache corrupt (" << e.what() << "), regenerating";
    }
  }
  Timer timer;
  CsrGraph graph = GeneratePowerLawGraph(config);
  FM_LOG(kInfo) << spec.name << " stand-in generated: |V|=" << graph.num_vertices()
                << " |E|=" << graph.num_edges() << " in " << timer.Elapsed() << "s";
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  if (!ec) {
    try {
      SaveCsrBinary(graph, path.string());
    } catch (const std::exception& e) {
      FM_LOG(kWarn) << "could not cache dataset: " << e.what();
    }
  }
  return graph;
}

}  // namespace fm
