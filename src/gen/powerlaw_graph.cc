#include "src/gen/powerlaw_graph.h"

#include <algorithm>
#include <numeric>

#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace fm {
namespace {

// Finds the vertex owning cumulative-degree position `pos` via binary search on the
// exclusive prefix-sum array.
inline Vid OwnerOf(const std::vector<Eid>& prefix, Eid pos) {
  auto it = std::upper_bound(prefix.begin(), prefix.end(), pos);
  return static_cast<Vid>((it - prefix.begin()) - 1);
}

}  // namespace

CsrGraph GeneratePowerLawGraph(const PowerLawConfig& config) {
  std::vector<Degree> degrees = ZipfDegreeSequence(config.degrees);
  Vid n = config.degrees.num_vertices;

  std::vector<Eid> offsets(static_cast<size_t>(n) + 1, 0);
  for (Vid v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + degrees[v];
  }
  Eid total_edges = offsets[n];
  std::vector<Vid> edges(total_edges);
  std::vector<float> weights(config.random_weights ? total_edges : 0);

  // Degree-proportional target sampling: a uniform position in [0, total_edges) maps
  // to a vertex with probability proportional to its degree.
  ThreadPool& pool = ThreadPool::Global();
  pool.ParallelChunks(n, [&](uint64_t begin, uint64_t end, uint32_t worker) {
    XorShiftRng rng(DeriveSeed(config.seed, 0x50574C00ULL + worker));
    for (Vid v = static_cast<Vid>(begin); v < static_cast<Vid>(end); ++v) {
      Eid out = offsets[v];
      for (Degree d = 0; d < degrees[v]; ++d) {
        Vid target;
        int attempts = 0;
        do {
          if (config.locality > 0 && rng.NextDouble() < config.locality) {
            // Nearby-rank target: uniform window centred on v.
            uint64_t window = std::min<uint64_t>(config.locality_window, n);
            uint64_t lo = (v > window / 2) ? v - window / 2 : 0;
            if (lo + window > n) {
              lo = n - window;
            }
            target = static_cast<Vid>(lo + rng.NextBounded(window));
          } else {
            target = OwnerOf(offsets, rng.NextBounded(total_edges));
          }
        } while (target == v && n > 1 && ++attempts < 8);
        if (config.random_weights) {
          weights[out] = 0.5f + 8.0f * static_cast<float>(rng.NextDouble());
        }
        edges[out++] = target;
      }
      if (config.random_weights) {
        // Sort (target, weight) pairs together.
        Eid begin = offsets[v];
        Eid end = offsets[v + 1];
        std::vector<std::pair<Vid, float>> pairs(end - begin);
        for (Eid i = begin; i < end; ++i) {
          pairs[i - begin] = {edges[i], weights[i]};
        }
        std::sort(pairs.begin(), pairs.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (Eid i = begin; i < end; ++i) {
          edges[i] = pairs[i - begin].first;
          weights[i] = pairs[i - begin].second;
        }
      } else {
        std::sort(edges.begin() + offsets[v], edges.begin() + offsets[v + 1]);
      }
    }
  });

  if (!config.shuffle_labels) {
    return CsrGraph(std::move(offsets), std::move(edges), std::move(weights));
  }
  FM_CHECK_MSG(!config.random_weights,
               "shuffle_labels + random_weights not supported together");

  // Random relabelling (Fisher–Yates) to exercise callers' DegreeSort path.
  std::vector<Vid> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  XorShiftRng rng(DeriveSeed(config.seed, 0x5045524DULL));
  for (Vid i = n; i-- > 1;) {
    Vid j = static_cast<Vid>(rng.NextBounded(i + 1));
    std::swap(perm[i], perm[j]);
  }
  std::vector<Eid> new_offsets(static_cast<size_t>(n) + 1, 0);
  for (Vid v = 0; v < n; ++v) {
    new_offsets[perm[v] + 1] = degrees[v];
  }
  for (Vid v = 0; v < n; ++v) {
    new_offsets[v + 1] += new_offsets[v];
  }
  std::vector<Vid> new_edges(total_edges);
  for (Vid v = 0; v < n; ++v) {
    Eid write = new_offsets[perm[v]];
    for (Vid t : std::span<const Vid>(edges.data() + offsets[v], degrees[v])) {
      new_edges[write++] = perm[t];
    }
    std::sort(new_edges.begin() + new_offsets[perm[v]], new_edges.begin() + write);
  }
  return CsrGraph(std::move(new_offsets), std::move(new_edges));
}

}  // namespace fm
