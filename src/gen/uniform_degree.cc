#include "src/gen/uniform_degree.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace fm {

CsrGraph GenerateUniformDegreeGraph(Vid num_vertices, Degree degree, uint64_t seed,
                                    Vid target_universe) {
  FM_CHECK(num_vertices > 0);
  if (target_universe == 0) {
    target_universe = num_vertices;
  }
  std::vector<Eid> offsets(static_cast<size_t>(num_vertices) + 1);
  for (Vid v = 0; v <= num_vertices; ++v) {
    offsets[v] = static_cast<Eid>(v) * degree;
  }
  std::vector<Vid> edges(offsets.back());
  ThreadPool::Global().ParallelChunks(
      num_vertices, [&](uint64_t begin, uint64_t end, uint32_t worker) {
        XorShiftRng rng(DeriveSeed(seed, 0x554E4900ULL + worker));
        for (Vid v = static_cast<Vid>(begin); v < static_cast<Vid>(end); ++v) {
          Eid out = offsets[v];
          for (Degree i = 0; i < degree; ++i) {
            edges[out + i] = static_cast<Vid>(rng.NextBounded(target_universe));
          }
          std::sort(edges.begin() + out, edges.begin() + out + degree);
        }
      });
  return CsrGraph(std::move(offsets), std::move(edges));
}

}  // namespace fm
