// Power-law graph generator (configuration-model style).
//
// Produces the degree-skewed stand-ins for the paper's social/web graphs. Out-degrees
// follow a rank-Zipf sequence (zipf.h); edge targets are drawn degree-proportionally
// so in-degree skew matches out-degree skew — this reproduces Table 2's key property
// that a degree group's share of walker visits tracks its share of edges.
//
// A `locality` parameter biases a fraction of the targets toward nearby vertex IDs,
// modelling the web graphs' stronger locality (§5.2 explains FlashMob's smaller UK
// speedup by UK's larger diameter / lower walker mobility).
#ifndef SRC_GEN_POWERLAW_GRAPH_H_
#define SRC_GEN_POWERLAW_GRAPH_H_

#include <cstdint>

#include "src/gen/zipf.h"
#include "src/graph/csr_graph.h"

namespace fm {

struct PowerLawConfig {
  ZipfDegreeConfig degrees;
  uint64_t seed = 1;
  // Fraction of targets drawn from a window of nearby ranks instead of globally.
  double locality = 0.0;
  Vid locality_window = 4096;
  // When true, vertex labels are randomly permuted after generation so callers must
  // run DegreeSort themselves (exercises the real pre-processing path).
  bool shuffle_labels = false;
  // When true, edges carry random weights in [0.5, 8.5) (weighted-walk workloads).
  bool random_weights = false;
};

// Generates the graph; every vertex has out-degree >= degrees.min_degree (>= 1 keeps
// walkers alive). Self-loops are avoided where possible; duplicate targets may occur
// (as in real crawls with multi-edges collapsed or not — the walk semantics only see
// transition probabilities, which duplicates merely re-weight).
CsrGraph GeneratePowerLawGraph(const PowerLawConfig& config);

}  // namespace fm

#endif  // SRC_GEN_POWERLAW_GRAPH_H_
