// R-MAT (Recursive MATrix) graph generator (Chakrabarti et al., 2004).
//
// A second, independently-shaped source of skewed graphs for tests and ablations;
// Graph500-style parameters (a=0.57, b=0.19, c=0.19, d=0.05) produce heavy-tailed
// in/out degrees without the rank-Zipf construction used by the stand-ins, guarding
// the engine against over-fitting to one generator.
#ifndef SRC_GEN_RMAT_H_
#define SRC_GEN_RMAT_H_

#include <cstdint>

#include "src/graph/csr_graph.h"
#include "src/graph/graph_builder.h"

namespace fm {

struct RmatConfig {
  uint32_t scale = 16;        // |V| = 2^scale
  uint32_t edge_factor = 16;  // |E| = edge_factor * |V|
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;            // d = 1 - a - b - c
  uint64_t seed = 1;
  BuildOptions build;         // applied when materializing the CSR
};

CsrGraph GenerateRmatGraph(const RmatConfig& config);

}  // namespace fm

#endif  // SRC_GEN_RMAT_H_
