#include "src/gen/rmat.h"

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace fm {

CsrGraph GenerateRmatGraph(const RmatConfig& config) {
  FM_CHECK(config.scale >= 1 && config.scale <= 31);
  double d = 1.0 - config.a - config.b - config.c;
  FM_CHECK_MSG(d >= 0, "RMAT quadrant probabilities exceed 1");

  Vid n = Vid{1} << config.scale;
  uint64_t m = static_cast<uint64_t>(config.edge_factor) * n;
  XorShiftRng rng(DeriveSeed(config.seed, 0x524D4154ULL));

  GraphBuilder builder(n);
  for (uint64_t e = 0; e < m; ++e) {
    Vid row = 0;
    Vid col = 0;
    for (uint32_t bit = 0; bit < config.scale; ++bit) {
      double r = rng.NextDouble();
      // Quadrant choice with slight per-level noise, as in the original paper, to
      // avoid exact self-similarity artifacts.
      double na = config.a * (0.95 + 0.1 * rng.NextDouble());
      double nb = config.b * (0.95 + 0.1 * rng.NextDouble());
      double nc = config.c * (0.95 + 0.1 * rng.NextDouble());
      double nd = d * (0.95 + 0.1 * rng.NextDouble());
      double norm = na + nb + nc + nd;
      na /= norm;
      nb /= norm;
      nc /= norm;
      r *= 1.0;
      row <<= 1;
      col <<= 1;
      if (r < na) {
        // top-left
      } else if (r < na + nb) {
        col |= 1;
      } else if (r < na + nb + nc) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    builder.AddEdge(row, col);
  }
  return builder.Build(config.build);
}

}  // namespace fm
