// Zipf-like degree sequence generation.
//
// The five evaluation graphs are not redistributable at full size (Table 4: up to
// 6.64B edges / 58 GB CSR), so the stand-ins (dataset_registry.h) draw their degree
// sequences from a rank-Zipf law d(rank) ~ rank^-alpha fitted to Table 2's per-bucket
// degree/edge shares. The engine's behaviour is driven by degree skew, which this
// preserves (see DESIGN.md §3).
#ifndef SRC_GEN_ZIPF_H_
#define SRC_GEN_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/util/types.h"

namespace fm {

struct ZipfDegreeConfig {
  Vid num_vertices = 0;
  double avg_degree = 8.0;   // target mean; the sequence is scaled to hit it
  double alpha = 0.8;        // skew exponent (0 = uniform, ~0.85 = Twitter-like)
  Degree min_degree = 1;
  Degree max_degree = 0;     // 0 = no cap
};

// Returns a descending degree sequence of length num_vertices whose mean is within
// one unit of avg_degree (subject to min/max clamping).
std::vector<Degree> ZipfDegreeSequence(const ZipfDegreeConfig& config);

// Share of the degree mass held by the top `fraction` of ranks (diagnostic used by
// tests to verify the fit against Table 2).
double TopShare(const std::vector<Degree>& degrees, double fraction);

}  // namespace fm

#endif  // SRC_GEN_ZIPF_H_
