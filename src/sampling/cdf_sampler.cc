#include "src/sampling/cdf_sampler.h"

#include <stdexcept>

namespace fm {

void CdfSampler::Build(const std::vector<double>& weights) {
  if (weights.empty()) {
    throw std::invalid_argument("CdfSampler: empty weight vector");
  }
  cdf_.resize(weights.size());
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0) {
      throw std::invalid_argument("CdfSampler: negative weight");
    }
    acc += weights[i];
    cdf_[i] = acc;
  }
  if (acc <= 0) {
    throw std::invalid_argument("CdfSampler: all weights zero");
  }
}

}  // namespace fm
