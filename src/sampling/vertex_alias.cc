#include "src/sampling/vertex_alias.h"

#include "src/util/logging.h"
#include "src/util/thread_pool.h"

namespace fm {

VertexAliasTables::VertexAliasTables(const CsrGraph& graph) {
  FM_CHECK_MSG(graph.weighted(), "VertexAliasTables requires a weighted graph");
  Eid m = graph.num_edges();
  prob_.resize(m);
  alias_.resize(m);

  ThreadPool::Global().ParallelChunks(
      graph.num_vertices(), [&](uint64_t begin, uint64_t end, uint32_t) {
        // Vose's algorithm per adjacency list (see sampling/alias_table.cc for the
        // standalone variant); scratch reused across the chunk's vertices.
        std::vector<double> scaled;
        std::vector<uint32_t> small;
        std::vector<uint32_t> large;
        for (Vid v = static_cast<Vid>(begin); v < static_cast<Vid>(end); ++v) {
          Eid base = graph.edge_begin(v);
          Degree deg = graph.degree(v);
          if (deg == 0) {
            continue;
          }
          auto weights = graph.neighbor_weights(v);
          double total = 0;
          for (float w : weights) {
            FM_CHECK_MSG(w > 0, "edge weights must be positive");
            total += w;
          }
          scaled.resize(deg);
          small.clear();
          large.clear();
          for (Degree i = 0; i < deg; ++i) {
            scaled[i] = static_cast<double>(weights[i]) * deg / total;
            (scaled[i] < 1.0 ? small : large).push_back(i);
            prob_[base + i] = 1.0f;
            alias_[base + i] = i;
          }
          while (!small.empty() && !large.empty()) {
            uint32_t s = small.back();
            small.pop_back();
            uint32_t l = large.back();
            large.pop_back();
            prob_[base + s] = static_cast<float>(scaled[s]);
            alias_[base + s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            (scaled[l] < 1.0 ? small : large).push_back(l);
          }
        }
      });
}

}  // namespace fm
