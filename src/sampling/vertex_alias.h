// Per-vertex alias tables for O(1) weighted edge sampling across a whole graph.
//
// The classical pre-processing approach to weighted transition sampling (§6 cites
// Walker's alias table among the techniques prior systems build on; KnightKing uses
// alias-based sampling for static distributions). One flat (probability, alias)
// pair per edge, indexed by the same CSR offsets as the edge array — so a weighted
// draw costs exactly one extra random read within the same locality footprint the
// engine already manages per VP.
#ifndef SRC_SAMPLING_VERTEX_ALIAS_H_
#define SRC_SAMPLING_VERTEX_ALIAS_H_

#include <cstdint>
#include <vector>

#include "src/graph/csr_graph.h"
#include "src/util/sync.h"
#include "src/util/types.h"

namespace fm {

class VertexAliasTables {
 public:
  // Builds tables for every vertex of `graph` (which must be weighted); O(|E|).
  explicit VertexAliasTables(const CsrGraph& graph);

  // Draws a neighbor index of v (0..degree-1) with probability proportional to its
  // edge weight. v must have degree >= 1.
  template <typename Rng, typename Hook>
  FM_HOT_PATH Degree SampleIndex(const CsrGraph& graph, Vid v, Rng& rng,
                                 Hook& hook) const {
    Eid begin = graph.edge_begin(v);
    Degree deg = static_cast<Degree>(graph.edge_end(v) - begin);
    Degree slot = static_cast<Degree>(rng.NextBounded(deg));
    hook.Load(&prob_[begin + slot], sizeof(float) + sizeof(uint32_t));
    return rng.NextDouble() < prob_[begin + slot] ? slot : alias_[begin + slot];
  }

  // Two-phase variant of SampleIndex for the interleaved ring kernels
  // (src/core/interleave.h): PickSlot makes the first draw and returns the
  // absolute table index so the caller can prefetch RowAddr(index), and
  // ResolveSlot makes the second draw against the (now near) row. Calling
  // PickSlot + ResolveSlot consumes the RNG exactly like one SampleIndex
  // call — the split must stay draw-for-draw identical or interleaved and
  // sequential walks diverge.
  template <typename Rng>
  FM_HOT_PATH Eid PickSlot(Eid edge_begin, Degree deg, Rng& rng) const {
    return edge_begin + rng.NextBounded(deg);
  }

  const void* RowAddr(Eid index) const { return &prob_[index]; }

  template <typename Rng, typename Hook>
  FM_HOT_PATH Degree ResolveSlot(Eid edge_begin, Eid index, Rng& rng,
                                 Hook& hook) const {
    hook.Load(&prob_[index], sizeof(float) + sizeof(uint32_t));
    return rng.NextDouble() < prob_[index]
               ? static_cast<Degree>(index - edge_begin)
               : alias_[index];
  }

  // Convenience: the sampled neighbor itself.
  template <typename Rng, typename Hook>
  FM_HOT_PATH Vid SampleNeighbor(const CsrGraph& graph, Vid v, Rng& rng,
                                 Hook& hook) const {
    Eid begin = graph.edge_begin(v);
    Eid pick = begin + SampleIndex(graph, v, rng, hook);
    hook.Load(graph.edges().data() + pick, sizeof(Vid));
    return graph.edges()[pick];
  }

  uint64_t table_bytes() const {
    return prob_.size() * (sizeof(float) + sizeof(uint32_t));
  }

 private:
  // Flat arrays parallel to the CSR edge array.
  std::vector<float> prob_;
  std::vector<uint32_t> alias_;  // neighbor index within the same adjacency list
};

}  // namespace fm

#endif  // SRC_SAMPLING_VERTEX_ALIAS_H_
