// Inverse-transform sampling over a cumulative distribution (Devroye 2006).
//
// O(log n) per draw via binary search on the prefix-sum array; the classical
// alternative to the alias table (§6). Used for degree-proportional walker seeding
// ("initially placed by uniformly sampling among all edges", §3) and as a test oracle
// for the alias table.
#ifndef SRC_SAMPLING_CDF_SAMPLER_H_
#define SRC_SAMPLING_CDF_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fm {

class CdfSampler {
 public:
  CdfSampler() = default;
  explicit CdfSampler(const std::vector<double>& weights) { Build(weights); }

  // Throws std::invalid_argument on empty/negative/all-zero weights.
  void Build(const std::vector<double>& weights);

  size_t size() const { return cdf_.size(); }

  template <typename Rng>
  uint32_t Sample(Rng& rng) const {
    double u = rng.NextDouble() * cdf_.back();
    // Branch-free-ish binary search (lower_bound semantics).
    uint32_t lo = 0;
    uint32_t hi = static_cast<uint32_t>(cdf_.size());
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      if (cdf_[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < cdf_.size() ? lo : static_cast<uint32_t>(cdf_.size() - 1);
  }

  double Probability(uint32_t i) const {
    double prev = i == 0 ? 0.0 : cdf_[i - 1];
    return (cdf_[i] - prev) / cdf_.back();
  }

 private:
  std::vector<double> cdf_;  // inclusive prefix sums
};

}  // namespace fm

#endif  // SRC_SAMPLING_CDF_SAMPLER_H_
