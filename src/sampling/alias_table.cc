#include "src/sampling/alias_table.h"

#include <stdexcept>
#include <vector>

#include "src/util/logging.h"

namespace fm {

void AliasTable::Build(const std::vector<double>& weights) {
  size_t n = weights.size();
  if (n == 0) {
    throw std::invalid_argument("AliasTable: empty weight vector");
  }
  double total = 0;
  for (double w : weights) {
    if (w < 0) {
      throw std::invalid_argument("AliasTable: negative weight");
    }
    total += w;
  }
  if (total <= 0) {
    throw std::invalid_argument("AliasTable: all weights zero");
  }

  prob_.assign(n, 1.0);
  alias_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    alias_[i] = static_cast<uint32_t>(i);
  }

  // Vose's algorithm: scale weights to mean 1, split into under/over-full stacks and
  // pair them off.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are numerically-1.0 slots.
  for (uint32_t i : small) {
    prob_[i] = 1.0;
  }
  for (uint32_t i : large) {
    prob_[i] = 1.0;
  }
  // Post-conditions Vose's pairing must leave behind: every slot probability is a
  // valid Bernoulli parameter and every alias points into the table — an
  // out-of-range alias turns Sample() into an out-of-bounds read.
  for (size_t i = 0; i < n; ++i) {
    FM_DCHECK_GE(prob_[i], 0.0);
    FM_DCHECK_LE(prob_[i], 1.0);
    FM_DCHECK_LT(alias_[i], n);
  }
}

double AliasTable::Probability(uint32_t i) const {
  double n = static_cast<double>(prob_.size());
  double p = prob_[i] / n;
  for (size_t slot = 0; slot < prob_.size(); ++slot) {
    if (alias_[slot] == i && slot != i) {
      p += (1.0 - prob_[slot]) / n;
    }
  }
  return p;
}

}  // namespace fm
