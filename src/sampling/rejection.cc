#include "src/sampling/rejection.h"

namespace fm {

double Node2VecWeight(const CsrGraph& graph, Vid prev, Vid candidate,
                      const Node2VecParams& params) {
  if (candidate == prev) {
    // div: node2vec bias weights 1/p and 1/q; p and q are runtime parameters,
    // so the quotients cannot fold to shifts.
    return 1.0 / params.p;
  }
  // dist(prev, candidate) == 1 iff prev has an edge to candidate; binary search on
  // prev's sorted adjacency list.
  if (graph.HasEdge(prev, candidate)) {
    return 1.0;
  }
  // div: see the 1/p justification above.
  return 1.0 / params.q;
}

}  // namespace fm
