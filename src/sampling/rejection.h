// Second-order (node2vec) edge sampling via rejection (KnightKing-style, §6).
//
// node2vec's transition weight out of `cur` with predecessor `prev` toward candidate
// x is 1/p when x == prev, 1 when x is a neighbor of prev, and 1/q otherwise (Grover
// & Leskovec 2016). Computing the full weight vector per step is O(degree); rejection
// sampling instead proposes a uniform neighbor and accepts with weight/bound, keeping
// the amortized per-step cost O(1) plus one connectivity check — the access pattern
// §5.2 describes ("a connectivity check between a walker's sampled destination and
// its previous stop").
#ifndef SRC_SAMPLING_REJECTION_H_
#define SRC_SAMPLING_REJECTION_H_

#include <algorithm>

#include "src/graph/csr_graph.h"
#include "src/util/sync.h"
#include "src/util/types.h"

namespace fm {

struct Node2VecParams {
  double p = 1.0;  // return parameter
  double q = 1.0;  // in-out parameter
};

// Unnormalized node2vec weight of stepping cur -> candidate given predecessor prev.
FM_HOT_PATH double Node2VecWeight(const CsrGraph& graph, Vid prev,
                                  Vid candidate, const Node2VecParams& params);

// Draws the next vertex. `cur` must have degree >= 1. The loop terminates with
// probability 1 (acceptance ratio >= min-weight / max-weight > 0).
template <typename Rng>
FM_HOT_PATH Vid SampleNode2VecRejection(const CsrGraph& graph, Vid cur,
                                        Vid prev, const Node2VecParams& params,
                                        Rng& rng) {
  auto nbrs = graph.neighbors(cur);
  // div: reciprocals of the runtime p/q parameters, computed once per draw and
  // hoisted out of the rejection loop.
  double bound = std::max({1.0, 1.0 / params.p, 1.0 / params.q});
  while (true) {
    Vid candidate = nbrs[rng.NextBounded(nbrs.size())];
    double w = Node2VecWeight(graph, prev, candidate, params);
    if (rng.NextDouble() * bound < w) {
      return candidate;
    }
  }
}

}  // namespace fm

#endif  // SRC_SAMPLING_REJECTION_H_
