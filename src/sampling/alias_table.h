// Alias method for O(1) sampling from a discrete distribution (Walker 1977, Vose's
// stable construction).
//
// Classical pre-processing technique for fast edge sampling (§6 "Related Work");
// used here by the weighted first-order walks and by the KnightKing-like baseline.
#ifndef SRC_SAMPLING_ALIAS_TABLE_H_
#define SRC_SAMPLING_ALIAS_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/sync.h"

namespace fm {

class AliasTable {
 public:
  AliasTable() = default;

  // Builds from non-negative weights; at least one weight must be positive.
  // Throws std::invalid_argument otherwise.
  explicit AliasTable(const std::vector<double>& weights) { Build(weights); }

  void Build(const std::vector<double>& weights);

  size_t size() const { return prob_.size(); }

  // Draws an index with probability weight[i] / sum(weights). `rng` must expose
  // NextBounded(uint64_t) and NextDouble().
  template <typename Rng>
  FM_HOT_PATH uint32_t Sample(Rng& rng) const {
    uint32_t slot = static_cast<uint32_t>(rng.NextBounded(prob_.size()));
    return rng.NextDouble() < prob_[slot] ? slot : alias_[slot];
  }

  // Exact sampling probability of index i (for tests).
  double Probability(uint32_t i) const;

 private:
  std::vector<double> prob_;    // acceptance threshold per slot
  std::vector<uint32_t> alias_;
};

}  // namespace fm

#endif  // SRC_SAMPLING_ALIAS_TABLE_H_
