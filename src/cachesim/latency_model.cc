#include "src/cachesim/latency_model.h"

#include "src/util/logging.h"

namespace fm {

double LatencyModel::LatencyOf(HitLevel level) const {
  switch (level) {
    case HitLevel::kL1:
      return l1_ns;
    case HitLevel::kL2:
      return l2_ns;
    case HitLevel::kL3:
      return l3_ns;
    case HitLevel::kDram:
      return dram_ns;
  }
  return dram_ns;
}

double LatencyModel::TotalNs(const CacheCounters& counters) const {
  return static_cast<double>(counters.hits[0]) * l1_ns +
         static_cast<double>(counters.hits[1]) * l2_ns +
         static_cast<double>(counters.hits[2]) * l3_ns +
         static_cast<double>(counters.hits[3]) * dram_ns;
}

double LatencyModel::BoundNs(const CacheCounters& counters, int level) const {
  FM_CHECK(level >= 0 && level <= 3);
  const double lat[4] = {l1_ns, l2_ns, l3_ns, dram_ns};
  return static_cast<double>(counters.hits[level]) * lat[level];
}

}  // namespace fm
