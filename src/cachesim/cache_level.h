// One set-associative, LRU cache level of the software cache simulator.
#ifndef SRC_CACHESIM_CACHE_LEVEL_H_
#define SRC_CACHESIM_CACHE_LEVEL_H_

#include <cstdint>
#include <vector>

namespace fm {

struct CacheLevelConfig {
  uint64_t size_bytes = 32 * 1024;
  uint32_t ways = 8;
  uint32_t line_bytes = 64;
};

class CacheLevel {
 public:
  explicit CacheLevel(const CacheLevelConfig& config);

  // True if the line containing `line_id` (byte address / line size) is present;
  // touches LRU state on hit.
  bool Lookup(uint64_t line_id);

  // Inserts the line, evicting the LRU way if the set is full. Returns true and sets
  // *evicted when an eviction happened.
  bool Insert(uint64_t line_id, uint64_t* evicted);

  // Removes the line if present (used by the exclusive-LLC policy when promoting a
  // line from L3 back to L2). Returns true if the line was present.
  bool Invalidate(uint64_t line_id);

  bool Contains(uint64_t line_id) const;

  void Clear();

  uint32_t sets() const { return sets_; }
  uint32_t ways() const { return ways_; }
  uint64_t size_bytes() const { return static_cast<uint64_t>(sets_) * ways_ * line_bytes_; }
  uint64_t resident_lines() const;

 private:
  struct Way {
    uint64_t tag = 0;
    uint64_t stamp = 0;  // LRU timestamp; 0 = invalid
  };

  uint32_t SetIndex(uint64_t line_id) const { return static_cast<uint32_t>(line_id & (sets_ - 1)); }

  uint32_t sets_;
  uint32_t ways_;
  uint32_t line_bytes_;
  uint64_t clock_ = 0;
  std::vector<Way> entries_;  // sets_ * ways_, set-major
};

}  // namespace fm

#endif  // SRC_CACHESIM_CACHE_LEVEL_H_
