// Three-level cache hierarchy simulator with inclusive and exclusive LLC policies.
//
// Substitutes for the perf/VTune measurements of Table 5 and Figure 1b (DESIGN.md
// §3): engines run with a CacheSimHook that feeds every logical load/store through
// this model, yielding per-level hit/miss counts per walker step.
//
// The exclusive policy models the Skylake-SP design the paper builds on (§2.3):
// "cache misses will bring data directly into L2 and not L3, with the latter used to
// hold data evicted from L2". The inclusive policy models the older Broadwell design
// for the architectural ablation.
#ifndef SRC_CACHESIM_HIERARCHY_H_
#define SRC_CACHESIM_HIERARCHY_H_

#include <cstdint>

#include "src/cachesim/cache_level.h"
#include "src/util/cache_info.h"

namespace fm {

// Which level serviced an access. Values 1..3 are cache levels; kDram means all
// levels missed.
enum class HitLevel : uint8_t { kL1 = 1, kL2 = 2, kL3 = 3, kDram = 4 };

struct CacheCounters {
  uint64_t accesses = 0;
  uint64_t hits[4] = {0, 0, 0, 0};    // [0]=L1 .. [2]=L3, [3]=DRAM "hits" (=L3 misses)
  uint64_t misses[3] = {0, 0, 0};     // per cache level
  uint64_t dram_lines = 0;            // lines transferred from DRAM

  uint64_t DramBytes(uint32_t line_bytes = 64) const { return dram_lines * line_bytes; }
  void Reset() { *this = CacheCounters{}; }
  void Add(const CacheCounters& other);
};

class CacheHierarchy {
 public:
  // Builds L1/L2/L3 from the geometry; `info.l3_exclusive` selects the LLC policy.
  explicit CacheHierarchy(const CacheInfo& info = PaperCacheInfo());

  // Simulates one access of `bytes` bytes at `addr`; multi-line accesses touch each
  // covered line. Returns the level that serviced the *first* line.
  HitLevel Access(uint64_t addr, uint32_t bytes);

  HitLevel AccessLine(uint64_t line_id);

  const CacheCounters& counters() const { return counters_; }
  void ResetCounters() { counters_.Reset(); }
  void ClearContents();

  uint32_t line_bytes() const { return line_bytes_; }
  bool exclusive_llc() const { return exclusive_; }

  // Structural invariant of the exclusive policy: a line never resides in both L2
  // and L3 (checked by tests).
  bool L2L3Disjoint(uint64_t line_id) const {
    return !(l2_.Contains(line_id) && l3_.Contains(line_id));
  }

 private:
  uint32_t line_bytes_;
  bool exclusive_;
  CacheLevel l1_;
  CacheLevel l2_;
  CacheLevel l3_;
  CacheCounters counters_;
};

}  // namespace fm

#endif  // SRC_CACHESIM_HIERARCHY_H_
