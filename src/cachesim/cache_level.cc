#include "src/cachesim/cache_level.h"

#include "src/util/bits.h"
#include "src/util/logging.h"

namespace fm {

CacheLevel::CacheLevel(const CacheLevelConfig& config)
    : ways_(config.ways), line_bytes_(config.line_bytes) {
  FM_CHECK(config.ways >= 1);
  FM_CHECK(IsPowerOfTwo(config.line_bytes));
  uint64_t lines = config.size_bytes / config.line_bytes;
  uint64_t sets = lines / config.ways;
  // Round the set count down to a power of two so the index mask works; real caches
  // (e.g. the 19.75MB / 11-way LLC) have non-power-of-two capacity via the way count,
  // which we preserve exactly.
  sets = sets == 0 ? 1 : PrevPowerOfTwo(sets);
  sets_ = static_cast<uint32_t>(sets);
  entries_.assign(static_cast<size_t>(sets_) * ways_, Way{});
}

bool CacheLevel::Lookup(uint64_t line_id) {
  Way* set = &entries_[static_cast<size_t>(SetIndex(line_id)) * ways_];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set[w].stamp != 0 && set[w].tag == line_id) {
      set[w].stamp = ++clock_;
      return true;
    }
  }
  return false;
}

bool CacheLevel::Insert(uint64_t line_id, uint64_t* evicted) {
  Way* set = &entries_[static_cast<size_t>(SetIndex(line_id)) * ways_];
  uint32_t victim = 0;
  uint64_t oldest = ~uint64_t{0};
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set[w].stamp != 0 && set[w].tag == line_id) {
      set[w].stamp = ++clock_;  // already present; refresh
      return false;
    }
    if (set[w].stamp < oldest) {
      oldest = set[w].stamp;
      victim = w;
    }
  }
  bool evicting = set[victim].stamp != 0;
  if (evicting && evicted != nullptr) {
    *evicted = set[victim].tag;
  }
  set[victim].tag = line_id;
  set[victim].stamp = ++clock_;
  return evicting;
}

bool CacheLevel::Invalidate(uint64_t line_id) {
  Way* set = &entries_[static_cast<size_t>(SetIndex(line_id)) * ways_];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set[w].stamp != 0 && set[w].tag == line_id) {
      set[w].stamp = 0;
      return true;
    }
  }
  return false;
}

bool CacheLevel::Contains(uint64_t line_id) const {
  const Way* set = &entries_[static_cast<size_t>(SetIndex(line_id)) * ways_];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set[w].stamp != 0 && set[w].tag == line_id) {
      return true;
    }
  }
  return false;
}

void CacheLevel::Clear() {
  for (Way& w : entries_) {
    w = Way{};
  }
  clock_ = 0;
}

uint64_t CacheLevel::resident_lines() const {
  uint64_t count = 0;
  for (const Way& w : entries_) {
    if (w.stamp != 0) {
      ++count;
    }
  }
  return count;
}

}  // namespace fm
