// Latency model mapping cache simulator outcomes to time estimates.
//
// Default latencies are the paper's Table 1 measurements on the Xeon Gold 6126
// (random-read column — the pattern cache misses in the walk actually follow); they
// can be replaced by the values measured on the current machine by the Table 1
// microbenchmark (mem/membench.h). Used to derive the "bound time" rows of Table 5
// from simulated hit counts.
#ifndef SRC_CACHESIM_LATENCY_MODEL_H_
#define SRC_CACHESIM_LATENCY_MODEL_H_

#include "src/cachesim/hierarchy.h"

namespace fm {

struct LatencyModel {
  // ns per access serviced at each location (Table 1 "Random read" row).
  double l1_ns = 0.77;
  double l2_ns = 0.95;
  double l3_ns = 2.60;
  double dram_ns = 18.35;
  // Sequential-read ns per access (Table 1 first row), for streaming estimates.
  double seq_ns = 0.44;

  double LatencyOf(HitLevel level) const;

  // Estimated total data-access time for a set of counters, in ns.
  double TotalNs(const CacheCounters& counters) const;

  // Time attributable to each hierarchy level (the Table 5 "bound" decomposition):
  // accesses serviced at a level cost that level's latency; level index 0..3 =
  // L1/L2/L3/DRAM.
  double BoundNs(const CacheCounters& counters, int level) const;
};

// Table 1 reference values (the paper's measurements) for all nine pattern/level
// combinations, used by the Table 1 bench for side-by-side reporting.
struct Table1Reference {
  // [pattern][location]: pattern 0=sequential, 1=random, 2=pointer-chase;
  // location 0=L1, 1=L2, 2=L3, 3=local DRAM, 4=remote DRAM.
  static constexpr double kNs[3][5] = {
      {0.42, 0.41, 0.44, 0.76, 1.51},
      {0.77, 0.95, 2.60, 18.35, 24.35},
      {1.69, 5.26, 19.26, 116.90, 194.26},
  };
};

}  // namespace fm

#endif  // SRC_CACHESIM_LATENCY_MODEL_H_
