#include "src/cachesim/hierarchy.h"

namespace fm {

void CacheCounters::Add(const CacheCounters& other) {
  accesses += other.accesses;
  for (int i = 0; i < 4; ++i) {
    hits[i] += other.hits[i];
  }
  for (int i = 0; i < 3; ++i) {
    misses[i] += other.misses[i];
  }
  dram_lines += other.dram_lines;
}

CacheHierarchy::CacheHierarchy(const CacheInfo& info)
    : line_bytes_(info.line_bytes),
      exclusive_(info.l3_exclusive),
      l1_({info.l1_bytes, info.l1_ways, info.line_bytes}),
      l2_({info.l2_bytes, info.l2_ways, info.line_bytes}),
      l3_({info.l3_bytes, info.l3_ways, info.line_bytes}) {}

HitLevel CacheHierarchy::AccessLine(uint64_t line_id) {
  ++counters_.accesses;
  if (l1_.Lookup(line_id)) {
    ++counters_.hits[0];
    return HitLevel::kL1;
  }
  ++counters_.misses[0];

  if (l2_.Lookup(line_id)) {
    ++counters_.hits[1];
    // Fill upward into L1; the L1 victim is silently dropped (L1 is inclusive in L2
    // on both microarchitectures for clean lines; dirty writeback traffic is not
    // modelled).
    l1_.Insert(line_id, nullptr);
    return HitLevel::kL2;
  }
  ++counters_.misses[1];

  if (l3_.Lookup(line_id)) {
    ++counters_.hits[2];
    if (exclusive_) {
      // Promotion removes the line from the LLC; the L2 victim moves down into it.
      l3_.Invalidate(line_id);
      uint64_t victim = 0;
      if (l2_.Insert(line_id, &victim)) {
        l3_.Insert(victim, nullptr);
      }
    } else {
      l2_.Insert(line_id, nullptr);
    }
    l1_.Insert(line_id, nullptr);
    return HitLevel::kL3;
  }
  ++counters_.misses[2];
  ++counters_.hits[3];
  ++counters_.dram_lines;

  if (exclusive_) {
    // Skylake-style: DRAM fills go straight to L2 (+L1); L3 only receives L2 victims.
    uint64_t victim = 0;
    if (l2_.Insert(line_id, &victim)) {
      uint64_t l3_victim = 0;
      l3_.Insert(victim, &l3_victim);
    }
  } else {
    // Inclusive: fill every level.
    l3_.Insert(line_id, nullptr);
    l2_.Insert(line_id, nullptr);
  }
  l1_.Insert(line_id, nullptr);
  return HitLevel::kDram;
}

HitLevel CacheHierarchy::Access(uint64_t addr, uint32_t bytes) {
  uint64_t first_line = addr / line_bytes_;
  uint64_t last_line = (addr + (bytes == 0 ? 0 : bytes - 1)) / line_bytes_;
  HitLevel first = AccessLine(first_line);
  for (uint64_t line = first_line + 1; line <= last_line; ++line) {
    AccessLine(line);
  }
  return first;
}

void CacheHierarchy::ClearContents() {
  l1_.Clear();
  l2_.Clear();
  l3_.Clear();
}

}  // namespace fm
