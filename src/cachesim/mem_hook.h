// Memory-access hooks for instrumenting the walk kernels.
//
// The sample/shuffle kernels and the baseline steppers are templated on a hook type;
// `NullMemHook` compiles to nothing (the production path), while `CacheSimHook`
// routes every logical load/store through the cache simulator for the Table 5 /
// Figure 1b experiments. The hook records *data* accesses only — instruction fetch
// and stack traffic are negligible for these kernels and are not modelled.
#ifndef SRC_CACHESIM_MEM_HOOK_H_
#define SRC_CACHESIM_MEM_HOOK_H_

#include <cstdint>

#include "src/cachesim/hierarchy.h"

namespace fm {

struct NullMemHook {
  static constexpr bool kEnabled = false;
  void Load(const void*, uint32_t) {}
  void Store(const void*, uint32_t) {}
};

class CacheSimHook {
 public:
  static constexpr bool kEnabled = true;

  explicit CacheSimHook(CacheHierarchy* sim) : sim_(sim) {}

  void Load(const void* addr, uint32_t bytes) {
    sim_->Access(reinterpret_cast<uint64_t>(addr), bytes);
  }
  void Store(const void* addr, uint32_t bytes) {
    sim_->Access(reinterpret_cast<uint64_t>(addr), bytes);
  }

  CacheHierarchy* sim() const { return sim_; }

 private:
  CacheHierarchy* sim_;
};

}  // namespace fm

#endif  // SRC_CACHESIM_MEM_HOOK_H_
