// Aggregate estimation over graphs by random-walk sampling (§1: "aggregate
// estimation" is a classic random-walk application; Bar-Yossef et al. 2000,
// Katzir et al. 2011).
//
// A stationary random walk on an undirected-ish graph visits v with probability
// proportional to d(v). Importance reweighting by 1/d(v) turns those biased
// samples into unbiased vertex-level estimators:
//   - average degree:  harmonic-mean correction  E_stat[1/d]^-1 = |E|/|V| avg
//   - vertex count:    birthday-paradox collision counting on weighted samples
// These estimators only need walk *samples*, not graph sweeps — the workload
// pattern FlashMob accelerates.
#ifndef SRC_APPS_AGGREGATE_H_
#define SRC_APPS_AGGREGATE_H_

#include <cstdint>

#include "src/graph/csr_graph.h"

namespace fm {

struct AggregateOptions {
  uint32_t walkers = 2000;
  uint32_t steps = 64;       // walk length before samples are drawn
  uint32_t burn_in = 16;     // discard the first steps while mixing
  uint64_t seed = 1;
};

// Estimates the average degree |E| / |V| from stationary walk samples.
double EstimateAverageDegree(const CsrGraph& graph,
                             const AggregateOptions& options = {});

// Estimates |V| via degree-corrected collision counting (Katzir et al.).
double EstimateVertexCount(const CsrGraph& graph,
                           const AggregateOptions& options = {});

}  // namespace fm

#endif  // SRC_APPS_AGGREGATE_H_
