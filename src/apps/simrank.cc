#include "src/apps/simrank.h"

#include <algorithm>
#include <cmath>

#include "src/core/engine.h"
#include "src/core/walk_observer.h"
#include "src/graph/degree_sort.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/sync.h"
#include "src/util/thread_pool.h"

namespace fm {
namespace {

// One coupled backward-walk sample: returns c^T for the meeting time T, or 0.
double OneSample(const CsrGraph& reverse, Vid a, Vid b,
                 const SimRankOptions& options, XorShiftRng& rng) {
  if (a == b) {
    return 1.0;
  }
  double contribution = options.decay;
  for (uint32_t step = 0; step < options.max_steps; ++step) {
    Degree da = reverse.degree(a);
    Degree db = reverse.degree(b);
    if (da == 0 || db == 0) {
      return 0.0;  // a walk with no in-neighbors can never meet
    }
    a = reverse.neighbors(a)[rng.NextBounded(da)];
    b = reverse.neighbors(b)[rng.NextBounded(db)];
    if (a == b) {
      return contribution;
    }
    contribution *= options.decay;
  }
  return 0.0;  // truncated: treat as never meeting (bias < c^max_steps)
}

// Resolves coupled-walk meetings from the engine's streaming walker rows.
// Walkers 2q and 2q + 1 form coupled pair q; both run as ordinary engine
// walkers, and this observer replays OneSample's resolution rules on each
// walker-order row: meet at row t => contribution decay^t; a degree-0 position
// kills the pair (the engine's stay-put dead ends must not be allowed to
// "meet" later); truncation => 0.
//
// Rows arrive as parallel chunks. A pair fully inside a chunk resolves
// in-chunk: chunk boundaries are fixed for the whole run (ParallelChunks
// chunking is deterministic and each row pass is a barrier), so pair state has
// exactly one writer and row order is preserved. A pair straddling a chunk (or
// episode) boundary is buffered under a mutex and replayed in row order at run
// end — both halves always get buffered, because the partner walker is the
// leading element of the next chunk.
class PairMeetingObserver : public WalkObserver {
 public:
  PairMeetingObserver(const CsrGraph& graph, uint64_t num_coupled)
      : graph_(graph), state_(num_coupled, kOpen), met_row_(num_coupled, 0) {}

  bool WantsWalkerChunks() const override { return true; }

  void OnEpisodeBegin(uint64_t /*episode*/, Wid /*walkers*/,
                      Wid base_walker) override {
    base_walker_ = base_walker;
  }

  void OnPlacementChunk(Wid begin, std::span<const Vid> positions,
                        uint32_t /*worker*/) override {
    ProcessRow(0, base_walker_ + begin, positions);
  }

  void OnWalkerChunk(uint32_t step, Wid begin, std::span<const Vid> positions,
                     uint32_t /*worker*/) override {
    ProcessRow(step + 1, base_walker_ + begin, positions);
  }

  void OnRunEnd() override {
    // The engine's final barrier means no OnWalkerChunk writer is live here,
    // but take the lock anyway: the replay is O(boundary) and uncontended, and
    // it keeps every boundary_ access provably under mu_ (thread-safety
    // analysis flagged this replay as the one unlocked access).
    MutexLock lock(mu_);
    std::sort(boundary_.begin(), boundary_.end(), [](const Half& x, const Half& y) {
      return x.row != y.row ? x.row < y.row : x.walker < y.walker;
    });
    FM_CHECK(boundary_.size() % 2 == 0);
    for (size_t i = 0; i < boundary_.size(); i += 2) {
      const Half& a = boundary_[i];
      const Half& b = boundary_[i + 1];
      FM_CHECK(a.row == b.row && b.walker == a.walker + 1);
      Resolve(a.row, a.walker / 2, a.pos, b.pos);
    }
    boundary_.clear();
  }

  bool Met(uint64_t q) const { return state_[q] == kMet; }
  uint32_t MetRow(uint64_t q) const { return met_row_[q]; }

 private:
  enum State : uint8_t { kOpen, kMet, kDead };

  struct Half {
    uint32_t row;
    Wid walker;  // run-global walker id
    Vid pos;
  };

  void ProcessRow(uint32_t row, Wid gbegin, std::span<const Vid> positions) {
    if (positions.empty()) {
      return;
    }
    Wid gend = gbegin + positions.size();
    Wid j = gbegin;
    if (j % 2 == 1) {
      BufferHalf(row, j, positions[0]);
      ++j;
    }
    for (; j + 1 < gend; j += 2) {
      Resolve(row, j / 2, positions[j - gbegin], positions[j + 1 - gbegin]);
    }
    if (j < gend) {
      BufferHalf(row, j, positions[j - gbegin]);
    }
  }

  void BufferHalf(uint32_t row, Wid walker, Vid pos) {
    MutexLock lock(mu_);
    boundary_.push_back({row, walker, pos});
  }

  void Resolve(uint32_t row, uint64_t q, Vid a, Vid b) {
    if (state_[q] != kOpen) {
      return;
    }
    if (a == kInvalidVid || b == kInvalidVid) {
      state_[q] = kDead;  // a terminated walk can never meet
      return;
    }
    if (a == b) {
      state_[q] = kMet;
      met_row_[q] = row;
      return;
    }
    if (graph_.degree(a) == 0 || graph_.degree(b) == 0) {
      state_[q] = kDead;
    }
  }

  const CsrGraph& graph_;
  Wid base_walker_ = 0;
  std::vector<uint8_t> state_;
  std::vector<uint32_t> met_row_;
  // mu_ protects the boundary-straddling pair halves buffered by any worker.
  Mutex mu_;
  std::vector<Half> boundary_ FM_GUARDED_BY(mu_);
};

}  // namespace

double EstimateSimRank(const CsrGraph& reverse, Vid a, Vid b,
                       const SimRankOptions& options) {
  FM_CHECK(a < reverse.num_vertices() && b < reverse.num_vertices());
  FM_CHECK(options.decay > 0 && options.decay < 1);
  if (a == b) {
    return 1.0;
  }
  double total = 0;
  XorShiftRng rng(DeriveSeed(options.seed, (static_cast<uint64_t>(a) << 32) ^ b));
  for (uint32_t s = 0; s < options.samples; ++s) {
    total += OneSample(reverse, a, b, options, rng);
  }
  return total / options.samples;
}

std::vector<double> EstimateSimRankBatch(
    const CsrGraph& reverse, const std::vector<std::pair<Vid, Vid>>& pairs,
    const SimRankOptions& options) {
  std::vector<double> result(pairs.size());
  ThreadPool::Global().ParallelFor(pairs.size(), [&](uint64_t i, uint32_t) {
    result[i] = EstimateSimRank(reverse, pairs[i].first, pairs[i].second, options);
  });
  return result;
}

std::vector<double> EstimateSimRankBatchWalked(
    const CsrGraph& reverse, const std::vector<std::pair<Vid, Vid>>& pairs,
    const SimRankOptions& options) {
  FM_CHECK(options.decay > 0 && options.decay < 1);
  const Vid n = reverse.num_vertices();
  for (const auto& [a, b] : pairs) {
    FM_CHECK(a < n && b < n);
  }
  std::vector<double> result(pairs.size(), 0.0);
  if (pairs.empty()) {
    return result;
  }

  // One engine run carries every sample of every pair: coupled pair
  // q = rep * |pairs| + p starts walkers 2q (at a) and 2q + 1 (at b). The
  // engine wants a degree-sorted graph, so queries map through the relabeling
  // (degrees — all the meeting logic needs — are preserved).
  DegreeSortedGraph sorted = DegreeSort(reverse);
  const uint64_t num_pairs = pairs.size();
  const uint64_t num_coupled = num_pairs * options.samples;

  WalkSpec spec;
  spec.steps = options.max_steps;
  spec.num_walkers = static_cast<Wid>(2 * num_coupled);
  spec.seed = options.seed;
  spec.keep_paths = false;
  spec.stop_probability = 0.0;
  spec.start_vertices.reserve(2 * num_coupled);
  for (uint32_t rep = 0; rep < options.samples; ++rep) {
    for (const auto& [a, b] : pairs) {
      spec.start_vertices.push_back(sorted.old_to_new[a]);
      spec.start_vertices.push_back(sorted.old_to_new[b]);
    }
  }

  EngineOptions engine_options;
  engine_options.count_visits = false;
  FlashMobEngine engine(sorted.graph, engine_options);
  PairMeetingObserver observer(sorted.graph, num_coupled);
  engine.Run(spec, {&observer});

  // Repeated product, matching OneSample's contribution accumulation exactly.
  std::vector<double> decay_pow(static_cast<size_t>(options.max_steps) + 1);
  decay_pow[0] = 1.0;
  for (uint32_t t = 1; t <= options.max_steps; ++t) {
    decay_pow[t] = decay_pow[t - 1] * options.decay;
  }
  for (uint64_t q = 0; q < num_coupled; ++q) {
    if (observer.Met(q)) {
      result[q % num_pairs] += decay_pow[observer.MetRow(q)];
    }
  }
  for (double& r : result) {
    r /= static_cast<double>(options.samples);
  }
  return result;
}

std::vector<std::vector<double>> ExactSimRank(const CsrGraph& graph, double decay,
                                              uint32_t iterations) {
  Vid n = graph.num_vertices();
  FM_CHECK_MSG(n <= 2048, "ExactSimRank is O(V^2); test oracle only");
  CsrGraph reverse = [&] {
    // Local transpose to avoid a header dependency loop.
    std::vector<Eid> offsets(static_cast<size_t>(n) + 1, 0);
    for (Vid t : graph.edges()) {
      ++offsets[t + 1];
    }
    for (Vid v = 0; v < n; ++v) {
      offsets[v + 1] += offsets[v];
    }
    std::vector<Vid> edges(graph.num_edges());
    std::vector<Eid> cursor(offsets.begin(), offsets.end() - 1);
    for (Vid v = 0; v < n; ++v) {
      for (Vid t : graph.neighbors(v)) {
        edges[cursor[t]++] = v;
      }
    }
    return CsrGraph(std::move(offsets), std::move(edges));
  }();

  std::vector<std::vector<double>> s(n, std::vector<double>(n, 0.0));
  for (Vid v = 0; v < n; ++v) {
    s[v][v] = 1.0;
  }
  std::vector<std::vector<double>> next = s;
  for (uint32_t it = 0; it < iterations; ++it) {
    for (Vid a = 0; a < n; ++a) {
      auto ia = reverse.neighbors(a);
      for (Vid b = 0; b < n; ++b) {
        if (a == b) {
          next[a][b] = 1.0;
          continue;
        }
        auto ib = reverse.neighbors(b);
        if (ia.empty() || ib.empty()) {
          next[a][b] = 0.0;
          continue;
        }
        double acc = 0;
        for (Vid u : ia) {
          for (Vid v : ib) {
            acc += s[u][v];
          }
        }
        next[a][b] = decay * acc /
                     (static_cast<double>(ia.size()) * static_cast<double>(ib.size()));
      }
    }
    s.swap(next);
  }
  return s;
}

}  // namespace fm
