#include "src/apps/simrank.h"

#include <cmath>

#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace fm {
namespace {

// One coupled backward-walk sample: returns c^T for the meeting time T, or 0.
double OneSample(const CsrGraph& reverse, Vid a, Vid b,
                 const SimRankOptions& options, XorShiftRng& rng) {
  if (a == b) {
    return 1.0;
  }
  double contribution = options.decay;
  for (uint32_t step = 0; step < options.max_steps; ++step) {
    Degree da = reverse.degree(a);
    Degree db = reverse.degree(b);
    if (da == 0 || db == 0) {
      return 0.0;  // a walk with no in-neighbors can never meet
    }
    a = reverse.neighbors(a)[rng.NextBounded(da)];
    b = reverse.neighbors(b)[rng.NextBounded(db)];
    if (a == b) {
      return contribution;
    }
    contribution *= options.decay;
  }
  return 0.0;  // truncated: treat as never meeting (bias < c^max_steps)
}

}  // namespace

double EstimateSimRank(const CsrGraph& reverse, Vid a, Vid b,
                       const SimRankOptions& options) {
  FM_CHECK(a < reverse.num_vertices() && b < reverse.num_vertices());
  FM_CHECK(options.decay > 0 && options.decay < 1);
  if (a == b) {
    return 1.0;
  }
  double total = 0;
  XorShiftRng rng(DeriveSeed(options.seed, (static_cast<uint64_t>(a) << 32) ^ b));
  for (uint32_t s = 0; s < options.samples; ++s) {
    total += OneSample(reverse, a, b, options, rng);
  }
  return total / options.samples;
}

std::vector<double> EstimateSimRankBatch(
    const CsrGraph& reverse, const std::vector<std::pair<Vid, Vid>>& pairs,
    const SimRankOptions& options) {
  std::vector<double> result(pairs.size());
  ThreadPool::Global().ParallelFor(pairs.size(), [&](uint64_t i, uint32_t) {
    result[i] = EstimateSimRank(reverse, pairs[i].first, pairs[i].second, options);
  });
  return result;
}

std::vector<std::vector<double>> ExactSimRank(const CsrGraph& graph, double decay,
                                              uint32_t iterations) {
  Vid n = graph.num_vertices();
  FM_CHECK_MSG(n <= 2048, "ExactSimRank is O(V^2); test oracle only");
  CsrGraph reverse = [&] {
    // Local transpose to avoid a header dependency loop.
    std::vector<Eid> offsets(static_cast<size_t>(n) + 1, 0);
    for (Vid t : graph.edges()) {
      ++offsets[t + 1];
    }
    for (Vid v = 0; v < n; ++v) {
      offsets[v + 1] += offsets[v];
    }
    std::vector<Vid> edges(graph.num_edges());
    std::vector<Eid> cursor(offsets.begin(), offsets.end() - 1);
    for (Vid v = 0; v < n; ++v) {
      for (Vid t : graph.neighbors(v)) {
        edges[cursor[t]++] = v;
      }
    }
    return CsrGraph(std::move(offsets), std::move(edges));
  }();

  std::vector<std::vector<double>> s(n, std::vector<double>(n, 0.0));
  for (Vid v = 0; v < n; ++v) {
    s[v][v] = 1.0;
  }
  std::vector<std::vector<double>> next = s;
  for (uint32_t it = 0; it < iterations; ++it) {
    for (Vid a = 0; a < n; ++a) {
      auto ia = reverse.neighbors(a);
      for (Vid b = 0; b < n; ++b) {
        if (a == b) {
          next[a][b] = 1.0;
          continue;
        }
        auto ib = reverse.neighbors(b);
        if (ia.empty() || ib.empty()) {
          next[a][b] = 0.0;
          continue;
        }
        double acc = 0;
        for (Vid u : ia) {
          for (Vid v : ib) {
            acc += s[u][v];
          }
        }
        next[a][b] = decay * acc /
                     (static_cast<double>(ia.size()) * static_cast<double>(ib.size()));
      }
    }
    s.swap(next);
  }
  return s;
}

}  // namespace fm
