#include "src/apps/pagerank.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/core/walk_observer.h"
#include "src/util/logging.h"

namespace fm {

std::vector<double> EstimatePageRank(const CsrGraph& graph,
                                     const PageRankOptions& options) {
  FM_CHECK(options.damping > 0 && options.damping < 1);
  Vid n = graph.num_vertices();

  WalkSpec spec;
  spec.steps = options.max_steps;
  spec.num_walkers = static_cast<Wid>(options.walkers_per_vertex) * n;
  spec.stop_probability = 1.0 - options.damping;
  spec.seed = options.seed;
  spec.keep_paths = false;
  spec.use_edge_weights = graph.weighted();
  if (options.personalization.empty()) {
    // Global PageRank restarts uniformly over vertices.
    spec.start_vertices.resize(n);
    std::iota(spec.start_vertices.begin(), spec.start_vertices.end(), 0);
  } else {
    spec.start_vertices = options.personalization;
  }

  // Stream counts through an external sharded observer (the engine's built-in
  // counting stays off): the estimator only ever needs the histogram, and the
  // accumulation rides inside the parallel sample stages.
  EngineOptions engine_options;
  engine_options.count_visits = false;
  FlashMobEngine engine(graph, engine_options);
  ShardedVisitCounter counter(n);
  engine.Run(spec, {&counter});
  std::vector<uint64_t> visit_counts = counter.TakeCounts();

  uint64_t total = 0;
  for (uint64_t c : visit_counts) {
    total += c;
  }
  std::vector<double> rank(n, 0.0);
  if (total == 0) {
    return rank;
  }
  for (Vid v = 0; v < n; ++v) {
    rank[v] = static_cast<double>(visit_counts[v]) /
              static_cast<double>(total);
  }
  return rank;
}

std::vector<double> PowerIterationPageRank(const CsrGraph& graph,
                                           const PageRankOptions& options,
                                           uint32_t iterations) {
  Vid n = graph.num_vertices();
  std::vector<double> restart(n, 0.0);
  if (options.personalization.empty()) {
    std::fill(restart.begin(), restart.end(), 1.0 / n);
  } else {
    double share = 1.0 / static_cast<double>(options.personalization.size());
    for (Vid v : options.personalization) {
      restart[v] += share;
    }
  }

  double d = options.damping;
  std::vector<double> rank = restart;
  std::vector<double> next(n);
  for (uint32_t it = 0; it < iterations; ++it) {
    for (Vid v = 0; v < n; ++v) {
      next[v] = (1.0 - d) * restart[v];
    }
    for (Vid v = 0; v < n; ++v) {
      if (rank[v] == 0.0) {
        continue;
      }
      double mass = d * rank[v];
      Degree deg = graph.degree(v);
      if (deg == 0) {
        next[v] += mass;  // dead ends hold their mass (walker stay-put semantics)
        continue;
      }
      auto nbrs = graph.neighbors(v);
      if (graph.weighted()) {
        auto wts = graph.neighbor_weights(v);
        double total_w = 0;
        for (float w : wts) {
          total_w += w;
        }
        for (size_t i = 0; i < nbrs.size(); ++i) {
          next[nbrs[i]] += mass * wts[i] / total_w;
        }
      } else {
        double share = mass / deg;
        for (Vid u : nbrs) {
          next[u] += share;
        }
      }
    }
    rank.swap(next);
  }
  return rank;
}

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  FM_CHECK(a.size() == b.size());
  double acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += std::fabs(a[i] - b[i]);
  }
  return acc;
}

}  // namespace fm
