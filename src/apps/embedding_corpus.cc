#include "src/apps/embedding_corpus.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "src/util/logging.h"

namespace fm {
namespace {

inline Vid MapId(const CorpusOptions& options, Vid v) {
  return options.id_map != nullptr ? (*options.id_map)[v] : v;
}

}  // namespace

uint64_t ForEachSkipGramPair(const PathSet& paths, const CorpusOptions& options,
                             const std::function<void(Vid, Vid)>& fn) {
  FM_CHECK(options.window >= 1);
  uint64_t count = 0;
  for (Wid w = 0; w < paths.num_walkers(); ++w) {
    auto path = paths.Path(w);  // stops at termination
    for (size_t i = 0; i < path.size(); ++i) {
      size_t lo = i > options.window ? i - options.window : 0;
      size_t hi = std::min(path.size(), i + options.window + 1);
      for (size_t j = lo; j < hi; ++j) {
        if (j == i) {
          continue;
        }
        fn(MapId(options, path[i]), MapId(options, path[j]));
        ++count;
      }
    }
  }
  return count;
}

uint64_t WriteSkipGramPairs(const PathSet& paths, const CorpusOptions& options,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open corpus output: " + path);
  }
  std::vector<uint32_t> buffer;
  buffer.reserve(1 << 16);
  uint64_t count = ForEachSkipGramPair(paths, options, [&](Vid a, Vid b) {
    buffer.push_back(a);
    buffer.push_back(b);
    if (buffer.size() >= (1 << 16)) {
      out.write(reinterpret_cast<const char*>(buffer.data()),
                static_cast<std::streamsize>(buffer.size() * 4));
      buffer.clear();
    }
  });
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size() * 4));
  if (!out) {
    throw std::runtime_error("corpus write failed: " + path);
  }
  return count;
}

std::vector<uint64_t> CorpusTokenCounts(const PathSet& paths, Vid num_vertices,
                                        const CorpusOptions& options) {
  std::vector<uint64_t> counts(num_vertices, 0);
  for (Wid w = 0; w < paths.num_walkers(); ++w) {
    for (uint32_t s = 0; s <= paths.steps(); ++s) {
      Vid v = paths.At(w, s);
      if (v == kInvalidVid) {
        break;
      }
      ++counts[MapId(options, v)];
    }
  }
  return counts;
}

std::vector<uint64_t> MapTokenCounts(const std::vector<uint64_t>& visit_counts,
                                     Vid num_vertices,
                                     const CorpusOptions& options) {
  std::vector<uint64_t> counts(num_vertices, 0);
  for (Vid v = 0; v < static_cast<Vid>(visit_counts.size()); ++v) {
    if (visit_counts[v] != 0) {
      counts[MapId(options, v)] += visit_counts[v];
    }
  }
  return counts;
}

}  // namespace fm
