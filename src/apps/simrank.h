// SimRank estimation by coupled backward random walks (Jeh & Widom 2002; the paper
// cites SimRank as a classic random-walk acceleration target, §1/§6).
//
// s(a, b) = E[ c^T ] where T is the first meeting time of two independent random
// walks on the *reverse* graph started at a and b (s = 0 if they never meet).
// The Monte-Carlo estimator runs `samples` coupled walk pairs of length
// `max_steps`; the exact comparator runs the naive O(|V|^2) iteration (small
// graphs / tests only).
#ifndef SRC_APPS_SIMRANK_H_
#define SRC_APPS_SIMRANK_H_

#include <vector>

#include "src/graph/csr_graph.h"
#include "src/util/types.h"

namespace fm {

struct SimRankOptions {
  double decay = 0.6;       // the usual C constant
  uint32_t max_steps = 11;  // c^11 < 0.004: truncation error is negligible
  uint32_t samples = 10000;
  uint64_t seed = 1;
};

// MC estimate of s(a, b). `reverse` must be Transpose(graph) (passed in so callers
// amortize the transpose across queries).
double EstimateSimRank(const CsrGraph& reverse, Vid a, Vid b,
                       const SimRankOptions& options = {});

// Batch variant: one entry per query pair.
std::vector<double> EstimateSimRankBatch(
    const CsrGraph& reverse, const std::vector<std::pair<Vid, Vid>>& pairs,
    const SimRankOptions& options = {});

// Exact fixed-point iteration over all pairs; O(iterations * |E|^2 / |V|) time and
// O(|V|^2) memory — test oracle for small graphs.
std::vector<std::vector<double>> ExactSimRank(const CsrGraph& graph,
                                              double decay = 0.6,
                                              uint32_t iterations = 12);

}  // namespace fm

#endif  // SRC_APPS_SIMRANK_H_
