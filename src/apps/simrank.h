// SimRank estimation by coupled backward random walks (Jeh & Widom 2002; the paper
// cites SimRank as a classic random-walk acceleration target, §1/§6).
//
// s(a, b) = E[ c^T ] where T is the first meeting time of two independent random
// walks on the *reverse* graph started at a and b (s = 0 if they never meet).
// The Monte-Carlo estimator runs `samples` coupled walk pairs of length
// `max_steps`; the exact comparator runs the naive O(|V|^2) iteration (small
// graphs / tests only).
#ifndef SRC_APPS_SIMRANK_H_
#define SRC_APPS_SIMRANK_H_

#include <vector>

#include "src/graph/csr_graph.h"
#include "src/util/types.h"

namespace fm {

struct SimRankOptions {
  double decay = 0.6;       // the usual C constant
  uint32_t max_steps = 11;  // c^11 < 0.004: truncation error is negligible
  uint32_t samples = 10000;
  uint64_t seed = 1;
};

// MC estimate of s(a, b). `reverse` must be Transpose(graph) (passed in so callers
// amortize the transpose across queries).
double EstimateSimRank(const CsrGraph& reverse, Vid a, Vid b,
                       const SimRankOptions& options = {});

// Batch variant: one entry per query pair.
std::vector<double> EstimateSimRankBatch(
    const CsrGraph& reverse, const std::vector<std::pair<Vid, Vid>>& pairs,
    const SimRankOptions& options = {});

// Engine-backed batch variant: runs every sample of every pair as coupled
// FlashMobEngine walkers over the (degree-sorted) reverse graph and resolves
// first-meeting times with a streaming WalkObserver — the cache-efficient path
// for large query batches. Same estimator semantics as EstimateSimRankBatch
// (meeting after step t contributes decay^t; degree-0 positions and truncation
// contribute 0), but a different sample stream, so estimates agree only
// statistically.
std::vector<double> EstimateSimRankBatchWalked(
    const CsrGraph& reverse, const std::vector<std::pair<Vid, Vid>>& pairs,
    const SimRankOptions& options = {});

// Exact fixed-point iteration over all pairs; O(iterations * |E|^2 / |V|) time and
// O(|V|^2) memory — test oracle for small graphs.
std::vector<std::vector<double>> ExactSimRank(const CsrGraph& graph,
                                              double decay = 0.6,
                                              uint32_t iterations = 12);

}  // namespace fm

#endif  // SRC_APPS_SIMRANK_H_
