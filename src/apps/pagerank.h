// PageRank estimation by Monte-Carlo random walks (§1 lists PageRank among the
// classic random-walk workloads).
//
// The Monte-Carlo formulation (Avrachenkov et al., 2007): launch walkers that
// terminate with probability (1 - damping) per step; normalized visit counts
// converge to PageRank. Personalization restricts the start distribution to a seed
// set. Dead ends hold their mass in place (the engine's stay-put semantics); the
// exact power-iteration comparator uses matching semantics so the two agree.
#ifndef SRC_APPS_PAGERANK_H_
#define SRC_APPS_PAGERANK_H_

#include <vector>

#include "src/core/engine.h"

namespace fm {

struct PageRankOptions {
  double damping = 0.85;        // continuation probability
  Wid walkers_per_vertex = 10;  // MC sample budget
  uint32_t max_steps = 64;      // cap on walk length (survival beyond is ~d^64)
  uint64_t seed = 1;
  // Empty = global PageRank (uniform-over-vertices restart); otherwise
  // personalized on these seeds.
  std::vector<Vid> personalization;
};

// MC estimate via FlashMobEngine; returns a probability vector over vertices.
std::vector<double> EstimatePageRank(const CsrGraph& graph,
                                     const PageRankOptions& options = {});

// Exact comparator by power iteration with the same dead-end semantics.
std::vector<double> PowerIterationPageRank(const CsrGraph& graph,
                                           const PageRankOptions& options = {},
                                           uint32_t iterations = 60);

// L1 distance between two distributions (convergence metric for tests).
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace fm

#endif  // SRC_APPS_PAGERANK_H_
