// Skip-gram training-pair corpus generation from walk output — the node-embedding
// front end (§1, §2.1): DeepWalk/node2vec walks become word2vec-style sentences,
// and (center, context) pairs within a window feed the embedding trainer.
#ifndef SRC_APPS_EMBEDDING_CORPUS_H_
#define SRC_APPS_EMBEDDING_CORPUS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/path_set.h"

namespace fm {

struct CorpusOptions {
  uint32_t window = 5;  // +- context window along the walk
  // Optional relabelling applied to emitted vertex IDs (DegreeSort's new_to_old).
  const std::vector<Vid>* id_map = nullptr;
};

// Calls fn(center, context) for every skip-gram pair; returns the pair count.
// Terminated path suffixes are skipped.
uint64_t ForEachSkipGramPair(const PathSet& paths, const CorpusOptions& options,
                             const std::function<void(Vid, Vid)>& fn);

// Writes pairs as consecutive uint32 pairs to a binary file; returns the count.
// Throws std::runtime_error on I/O failure.
uint64_t WriteSkipGramPairs(const PathSet& paths, const CorpusOptions& options,
                            const std::string& path);

// Token frequency of the corpus (per vertex, after id_map) — what a trainer's
// negative-sampling table is built from.
std::vector<uint64_t> CorpusTokenCounts(const PathSet& paths, Vid num_vertices,
                                        const CorpusOptions& options = {});

// Same token frequencies from engine visit counts (e.g. a streaming
// ShardedVisitCounter) instead of materialized paths: visit counts index the
// walk graph's IDs; the result indexes post-id_map IDs. Token counts for a
// walk equal CorpusTokenCounts over its paths — a terminated walker is
// kInvalidVid for every later step, which neither tally includes.
std::vector<uint64_t> MapTokenCounts(const std::vector<uint64_t>& visit_counts,
                                     Vid num_vertices,
                                     const CorpusOptions& options = {});

}  // namespace fm

#endif  // SRC_APPS_EMBEDDING_CORPUS_H_
