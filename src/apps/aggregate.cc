#include "src/apps/aggregate.h"

#include <unordered_map>
#include <vector>

#include "src/core/engine.h"
#include "src/core/walk_observer.h"
#include "src/util/logging.h"

namespace fm {
namespace {

// Streams the strided post-burn-in positions out of the sample stage, so the
// estimators never materialize paths (keep_paths stays off). Chunks land in
// slots keyed by (sampled step, VP) — exactly one sample task writes each slot —
// and slots merge in fixed order at episode end, so the collected sample
// sequence is deterministic even though the sample tasks are dynamically
// scheduled across workers.
class StationarySampleObserver : public WalkObserver {
 public:
  StationarySampleObserver(uint32_t burn_in, uint32_t stride, uint32_t steps) {
    for (uint32_t s = burn_in; s <= steps; s += stride) {
      if (s == 0) {
        want_row0_ = true;
      } else {
        // Path position s is produced by kernel step s - 1.
        step_to_row_[s - 1] = num_rows_++;
      }
    }
  }

  void OnRunBegin(const WalkRunInfo& info) override {
    num_vps_ = info.num_vps;
    slots_.assign(static_cast<size_t>(num_rows_) * num_vps_, {});
  }

  void OnEpisodeBegin(uint64_t /*episode*/, Wid walkers,
                      Wid /*base_walker*/) override {
    if (want_row0_) {
      row0_.assign(walkers, kInvalidVid);
    }
  }

  void OnPlacementChunk(Wid begin, std::span<const Vid> positions,
                        uint32_t /*worker*/) override {
    if (want_row0_) {
      std::copy(positions.begin(), positions.end(), row0_.begin() + begin);
    }
  }

  void OnSampleChunk(uint32_t step, uint32_t vp, std::span<const Vid> positions,
                     uint32_t /*worker*/) override {
    auto it = step_to_row_.find(step);
    if (it == step_to_row_.end()) {
      return;
    }
    auto& slot = slots_[static_cast<size_t>(it->second) * num_vps_ + vp];
    for (Vid v : positions) {
      if (v != kInvalidVid) {
        slot.push_back(v);
      }
    }
  }

  void OnEpisodeEnd(uint64_t /*episode*/) override {
    if (want_row0_) {
      samples_.insert(samples_.end(), row0_.begin(), row0_.end());
      row0_.clear();
    }
    for (auto& slot : slots_) {
      samples_.insert(samples_.end(), slot.begin(), slot.end());
      slot.clear();
    }
  }

  std::vector<Vid> TakeSamples() { return std::move(samples_); }

 private:
  bool want_row0_ = false;
  uint32_t num_rows_ = 0;
  uint32_t num_vps_ = 0;
  std::unordered_map<uint32_t, uint32_t> step_to_row_;
  std::vector<std::vector<Vid>> slots_;  // (row, vp) sample buckets
  std::vector<Vid> row0_;
  std::vector<Vid> samples_;
};

// Stationary samples: walker positions after burn-in, strided to reduce serial
// correlation. Walkers seed uniform-over-edges (the engine default), which IS the
// stationary distribution pi(v) ~ d(v) of an undirected walk, so burn-in mostly
// guards against directed-graph drift.
std::vector<Vid> DrawStationarySamples(const CsrGraph& graph,
                                       const AggregateOptions& options) {
  FM_CHECK(options.steps > options.burn_in);
  WalkSpec spec;
  spec.steps = options.steps;
  spec.num_walkers = options.walkers;
  spec.seed = options.seed;
  spec.keep_paths = false;
  EngineOptions engine_options;
  engine_options.count_visits = false;
  FlashMobEngine engine(graph, engine_options);
  StationarySampleObserver sampler(options.burn_in, /*stride=*/8,
                                   options.steps);
  engine.Run(spec, {&sampler});
  return sampler.TakeSamples();
}

}  // namespace

double EstimateAverageDegree(const CsrGraph& graph,
                             const AggregateOptions& options) {
  std::vector<Vid> samples = DrawStationarySamples(graph, options);
  FM_CHECK(!samples.empty());
  // Stationary samples are degree-biased; the harmonic-mean correction
  // (E_pi[1/d])^-1 recovers the true mean degree.
  double inv_sum = 0;
  for (Vid v : samples) {
    Degree d = graph.degree(v);
    inv_sum += d > 0 ? 1.0 / d : 1.0;
  }
  return static_cast<double>(samples.size()) / inv_sum;
}

double EstimateVertexCount(const CsrGraph& graph,
                           const AggregateOptions& options) {
  std::vector<Vid> samples = DrawStationarySamples(graph, options);
  FM_CHECK(samples.size() >= 2);
  // Katzir et al.: n ~= (sum d_i)(sum 1/d_i) / (2 * collision pairs).
  double d_sum = 0;
  double inv_sum = 0;
  std::unordered_map<Vid, uint64_t> counts;
  for (Vid v : samples) {
    Degree d = graph.degree(v);
    double dd = d > 0 ? d : 1.0;
    d_sum += dd;
    inv_sum += 1.0 / dd;
    ++counts[v];
  }
  double collisions = 0;
  for (const auto& [v, c] : counts) {
    collisions += 0.5 * static_cast<double>(c) * static_cast<double>(c - 1);
  }
  if (collisions == 0) {
    return 0;  // not enough samples to observe a collision: no estimate
  }
  return d_sum * inv_sum / (2.0 * collisions);
}

}  // namespace fm
