#include "src/apps/aggregate.h"

#include <unordered_map>
#include <vector>

#include "src/core/engine.h"
#include "src/util/logging.h"

namespace fm {
namespace {

// Stationary samples: walker positions after burn-in, strided to reduce serial
// correlation. Walkers seed uniform-over-edges (the engine default), which IS the
// stationary distribution pi(v) ~ d(v) of an undirected walk, so burn-in mostly
// guards against directed-graph drift.
std::vector<Vid> DrawStationarySamples(const CsrGraph& graph,
                                       const AggregateOptions& options) {
  FM_CHECK(options.steps > options.burn_in);
  WalkSpec spec;
  spec.steps = options.steps;
  spec.num_walkers = options.walkers;
  spec.seed = options.seed;
  FlashMobEngine engine(graph);
  WalkResult result = engine.Run(spec);

  std::vector<Vid> samples;
  const uint32_t stride = 8;
  for (Wid w = 0; w < result.paths.num_walkers(); ++w) {
    for (uint32_t s = options.burn_in; s <= options.steps; s += stride) {
      Vid v = result.paths.At(w, s);
      if (v != kInvalidVid) {
        samples.push_back(v);
      }
    }
  }
  return samples;
}

}  // namespace

double EstimateAverageDegree(const CsrGraph& graph,
                             const AggregateOptions& options) {
  std::vector<Vid> samples = DrawStationarySamples(graph, options);
  FM_CHECK(!samples.empty());
  // Stationary samples are degree-biased; the harmonic-mean correction
  // (E_pi[1/d])^-1 recovers the true mean degree.
  double inv_sum = 0;
  for (Vid v : samples) {
    Degree d = graph.degree(v);
    inv_sum += d > 0 ? 1.0 / d : 1.0;
  }
  return static_cast<double>(samples.size()) / inv_sum;
}

double EstimateVertexCount(const CsrGraph& graph,
                           const AggregateOptions& options) {
  std::vector<Vid> samples = DrawStationarySamples(graph, options);
  FM_CHECK(samples.size() >= 2);
  // Katzir et al.: n ~= (sum d_i)(sum 1/d_i) / (2 * collision pairs).
  double d_sum = 0;
  double inv_sum = 0;
  std::unordered_map<Vid, uint64_t> counts;
  for (Vid v : samples) {
    Degree d = graph.degree(v);
    double dd = d > 0 ? d : 1.0;
    d_sum += dd;
    inv_sum += 1.0 / dd;
    ++counts[v];
  }
  double collisions = 0;
  for (const auto& [v, c] : counts) {
    collisions += 0.5 * static_cast<double>(c) * static_cast<double>(c - 1);
  }
  if (collisions == 0) {
    return 0;  // not enough samples to observe a collision: no estimate
  }
  return d_sum * inv_sum / (2.0 * collisions);
}

}  // namespace fm
