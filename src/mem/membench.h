// Memory-hierarchy load-latency microbenchmarks (Table 1).
//
// Measures ns/load for the three access patterns the paper contrasts (§2.3):
//   - sequential read  : streaming scan, hardware prefetch friendly
//   - random read      : independent random-indexed loads (throughput-limited)
//   - pointer chasing  : dependent loads along a random permutation cycle
//                        (latency-limited; the pattern existing walk engines incur)
// over working sets sized to sit in L1 / L2 / L3 / DRAM. These curves justify
// FlashMob's whole design: the sequential-vs-random gap grows ~24x at DRAM, and
// pointer-chasing inside L3 is slower than random DRAM reads.
#ifndef SRC_MEM_MEMBENCH_H_
#define SRC_MEM_MEMBENCH_H_

#include <cstdint>

#include "src/util/cache_info.h"
#include "src/util/perf_counters.h"

namespace fm {

enum class AccessPattern { kSequential = 0, kRandom = 1, kPointerChase = 2 };

struct MemBenchConfig {
  uint64_t min_total_accesses = 1 << 22;  // per measurement
  uint64_t seed = 42;
};

// ns per load for `pattern` over a working set of `working_set_bytes`.
double MeasureLoadLatencyNs(AccessPattern pattern, uint64_t working_set_bytes,
                            const MemBenchConfig& config = {});

struct MemLatencyTable {
  // [pattern][level]: level 0..3 = L1/L2/L3/DRAM working sets.
  double ns[3][4];
  uint64_t working_set_bytes[4];
};

// Runs the full 3x4 grid. Working sets: L1/2, L2/2, L3/2 and 8x L3 (comfortably
// inside/outside each level).
MemLatencyTable MeasureMemLatencyTable(const CacheInfo& info,
                                       const MemBenchConfig& config = {});

// Latency measurement plus hardware counters attributed to exactly the timed
// access loop (buffer setup and the warm-up pass are excluded). The Table 1
// reproduction uses this to report *measured* LLC-miss rates next to the
// timings; `counters_active` is false (and counters all-zero) under the noop
// perf backend.
struct MemAccessProfile {
  double ns_per_access = 0;
  uint64_t accesses = 0;
  CounterSample counters;
  bool counters_active = false;
};

MemAccessProfile MeasureLoadLatencyProfile(AccessPattern pattern,
                                           uint64_t working_set_bytes,
                                           const MemBenchConfig& config = {});

}  // namespace fm

#endif  // SRC_MEM_MEMBENCH_H_
