#include "src/mem/membench.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/util/aligned_buffer.h"
#include "src/util/bits.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace fm {
namespace {

// Keeps the compiler from discarding the measured loads.
volatile uint64_t g_sink;

// Counter bracketing for exactly one timed loop: the helpers snapshot the
// (possibly inactive) group right before and after their access loop, so chain
// setup and index-stream generation stay outside the attribution window.
struct CounterBracket {
  explicit CounterBracket(const PerfCounterGroup* group, CounterSample* out)
      : group_(group), out_(out) {
    if (group_ != nullptr) {
      before_ = group_->Read();
    }
  }
  void Close() {
    if (group_ != nullptr && out_ != nullptr) {
      *out_ = group_->Read() - before_;
    }
  }
  const PerfCounterGroup* group_;
  CounterSample* out_;
  CounterSample before_;
};

double MeasureSequential(uint64_t* data, uint64_t words, uint64_t passes,
                         const PerfCounterGroup* group = nullptr,
                         CounterSample* delta = nullptr) {
  uint64_t sum = 0;
  CounterBracket bracket(group, delta);
  Timer timer;
  for (uint64_t p = 0; p < passes; ++p) {
    for (uint64_t i = 0; i < words; ++i) {
      sum += data[i];
    }
  }
  double ns = timer.ElapsedNanos();
  bracket.Close();
  g_sink = sum;
  return ns / static_cast<double>(words * passes);
}

double MeasureRandom(uint64_t* data, uint64_t words, uint64_t accesses,
                     uint64_t seed, const PerfCounterGroup* group = nullptr,
                     CounterSample* delta = nullptr) {
  // Independent random loads: the index stream comes from a xorshift generator whose
  // cost (~1ns) is amortized by issuing 4 loads per draw from disjoint quarters.
  FM_CHECK(IsPowerOfTwo(words));
  uint64_t quarter = words / 4;
  uint64_t mask = quarter - 1;
  XorShiftRng rng(seed);
  uint64_t sum = 0;
  CounterBracket bracket(group, delta);
  Timer timer;
  for (uint64_t i = 0; i < accesses / 4; ++i) {
    uint64_t r = rng.Next();
    sum += data[(r & mask)];
    sum += data[quarter + ((r >> 16) & mask)];
    sum += data[2 * quarter + ((r >> 32) & mask)];
    sum += data[3 * quarter + ((r >> 48) & mask)];
  }
  double ns = timer.ElapsedNanos();
  bracket.Close();
  g_sink = sum;
  return ns / static_cast<double>(accesses / 4 * 4);
}

double MeasurePointerChase(uint64_t* data, uint64_t words, uint64_t accesses,
                           uint64_t seed, const PerfCounterGroup* group = nullptr,
                           CounterSample* delta = nullptr) {
  // Build a single random cycle (Sattolo's algorithm) so each load depends on the
  // previous one; stride granularity is one cache line (8 words) to defeat spatial
  // locality within the chain.
  uint64_t nodes = words / 8;
  std::vector<uint64_t> order(nodes);
  std::iota(order.begin(), order.end(), 0);
  XorShiftRng rng(seed);
  for (uint64_t i = nodes - 1; i > 0; --i) {
    uint64_t j = rng.NextBounded(i);  // Sattolo: j < i, yields one full cycle
    std::swap(order[i], order[j]);
  }
  for (uint64_t i = 0; i < nodes; ++i) {
    data[order[i] * 8] = order[(i + 1) % nodes] * 8;
  }
  uint64_t pos = order[0] * 8;
  CounterBracket bracket(group, delta);
  Timer timer;
  for (uint64_t i = 0; i < accesses; ++i) {
    pos = data[pos];
  }
  double ns = timer.ElapsedNanos();
  bracket.Close();
  g_sink = pos;
  return ns / static_cast<double>(accesses);
}

}  // namespace

namespace {

// Shared measurement core: sets up the buffer, runs a warm-up pass, then times
// the real pass. When `profile` is non-null, a per-thread counter group brackets
// only the timed pass, so the counter deltas attribute to exactly the measured
// accesses.
double RunMeasurement(AccessPattern pattern, uint64_t working_set_bytes,
                      const MemBenchConfig& config, MemAccessProfile* profile) {
  uint64_t words = PrevPowerOfTwo(std::max<uint64_t>(working_set_bytes / 8, 64));
  AlignedBuffer<uint64_t> buffer(words);
  XorShiftRng rng(config.seed);
  for (uint64_t i = 0; i < words; ++i) {
    buffer[i] = rng.Next() & 0xFFFF;
  }
  uint64_t accesses = std::max<uint64_t>(config.min_total_accesses, words);

  PerfCounterGroup counters;
  const PerfCounterGroup* group = nullptr;
  CounterSample delta;
  CounterSample* delta_out = nullptr;
  if (profile != nullptr) {
    counters = PerfCounterGroup::OpenForThread(0);
    group = &counters;
    delta_out = &delta;
  }

  double ns = 0;
  uint64_t measured_accesses = 0;
  switch (pattern) {
    case AccessPattern::kSequential: {
      uint64_t passes = std::max<uint64_t>(1, accesses / words);
      // Warm-up pass, then measure.
      MeasureSequential(buffer.data(), words, 1);
      ns = MeasureSequential(buffer.data(), words, passes, group, delta_out);
      measured_accesses = words * passes;
      break;
    }
    case AccessPattern::kRandom:
      MeasureRandom(buffer.data(), words, words, config.seed);
      ns = MeasureRandom(buffer.data(), words, accesses, config.seed + 1, group,
                         delta_out);
      measured_accesses = accesses / 4 * 4;
      break;
    case AccessPattern::kPointerChase: {
      // Dependent loads are ~10-100x slower; cap the chain length to bound runtime.
      uint64_t chase = std::max<uint64_t>(words / 8, std::min<uint64_t>(accesses / 8, 1 << 22));
      ns = MeasurePointerChase(buffer.data(), words, chase, config.seed, group,
                               delta_out);
      measured_accesses = chase;
      break;
    }
  }
  if (profile != nullptr) {
    profile->ns_per_access = ns;
    profile->accesses = measured_accesses;
    profile->counters = delta;
    profile->counters_active = counters.active();
  }
  return ns;
}

}  // namespace

double MeasureLoadLatencyNs(AccessPattern pattern, uint64_t working_set_bytes,
                            const MemBenchConfig& config) {
  return RunMeasurement(pattern, working_set_bytes, config, nullptr);
}

MemAccessProfile MeasureLoadLatencyProfile(AccessPattern pattern,
                                           uint64_t working_set_bytes,
                                           const MemBenchConfig& config) {
  MemAccessProfile profile;
  RunMeasurement(pattern, working_set_bytes, config, &profile);
  return profile;
}

MemLatencyTable MeasureMemLatencyTable(const CacheInfo& info,
                                       const MemBenchConfig& config) {
  MemLatencyTable table{};
  table.working_set_bytes[0] = info.l1_bytes / 2;
  table.working_set_bytes[1] = info.l2_bytes / 2;
  table.working_set_bytes[2] = info.l3_bytes / 2;
  table.working_set_bytes[3] = info.l3_bytes * 8;
  for (int p = 0; p < 3; ++p) {
    for (int l = 0; l < 4; ++l) {
      table.ns[p][l] = MeasureLoadLatencyNs(static_cast<AccessPattern>(p),
                                            table.working_set_bytes[l], config);
    }
  }
  return table;
}

}  // namespace fm
