// fmmon — live view over fm-telemetry-v1 JSONL snapshot files.
//
// Usage:
//   fmmon out.jsonl             follow the file (top-like): print a
//                               per-interval summary for every new snapshot —
//                               counter rates over the interval, gauge levels,
//                               histogram percentiles
//   fmmon --summary out.jsonl   one-shot: read the whole file and summarize
//                               the run from the final cumulative snapshot
//   fmmon --exit-on-eof ...     follow mode, but stop at end-of-file instead
//                               of polling for growth (tests, post-mortems)
//
// The input is what `fmwalk --telemetry-jsonl=F` (or any bench binary with the
// same flag) appends: one JSON object per line with cumulative counters, gauge
// levels, and histogram buckets/percentiles. The final line of a completed run
// always holds the end-of-run values, so `--summary` on a finished file agrees
// exactly with the run's fm-metrics-v1 output.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/util/json.h"

namespace {

using fm::json::ParseJson;
using fm::json::Value;

struct Options {
  std::string path;
  bool summary = false;
  bool exit_on_eof = false;
};

int Usage(const char* self) {
  std::fprintf(stderr,
               "usage: %s [--summary] [--exit-on-eof] telemetry.jsonl\n"
               "  --summary      one-shot report from the final snapshot\n"
               "  --exit-on-eof  follow mode, but stop at end of file\n",
               self);
  return 2;
}

// One parsed snapshot line, flattened into plain maps for easy deltas.
struct Snapshot {
  double t_ns = 0;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Value> histograms;  // name -> histogram object
  bool ok = false;
};

Snapshot ParseSnapshot(const std::string& line) {
  Snapshot snap;
  Value doc;
  try {
    doc = ParseJson(line);
  } catch (const std::exception&) {
    return snap;  // partially written tail line — skip it
  }
  if (!doc.Has("schema") || doc.Str("schema") != "fm-telemetry-v1") {
    return snap;
  }
  snap.t_ns = doc.Num("t_ns");
  for (const auto& [name, v] : doc.At("counters").object) {
    snap.counters[name] = v.number;
  }
  for (const auto& [name, v] : doc.At("gauges").object) {
    snap.gauges[name] = v.number;
  }
  for (const auto& [name, v] : doc.At("histograms").object) {
    snap.histograms[name] = v;
  }
  snap.ok = true;
  return snap;
}

void PrintHistogram(const std::string& name, const Value& h) {
  std::printf("  %-42s count %12.0f  mean %10.0f  p50 %10.0f  p90 %10.0f  "
              "p99 %10.0f  p999 %10.0f\n",
              name.c_str(), h.Num("count"),
              h.Num("count") > 0 ? h.Num("sum") / h.Num("count") : 0.0,
              h.Num("p50"), h.Num("p90"), h.Num("p99"), h.Num("p999"));
}

// Per-interval view: counter deltas as rates over the wall-clock interval,
// gauges as levels, histograms as their (cumulative) percentiles.
void PrintInterval(const Snapshot& prev, const Snapshot& cur) {
  const double dt_s = prev.ok ? (cur.t_ns - prev.t_ns) / 1e9 : 0;
  std::printf("== snapshot t=%.3fs%s\n", cur.t_ns / 1e9,
              prev.ok ? "" : " (first)");
  if (!cur.counters.empty()) {
    std::printf(" counters%s:\n", dt_s > 0 ? " (delta/s over interval)" : "");
    for (const auto& [name, value] : cur.counters) {
      if (dt_s > 0) {
        auto it = prev.counters.find(name);
        const double base = it != prev.counters.end() ? it->second : 0;
        std::printf("  %-42s %16.0f  (%12.0f /s)\n", name.c_str(), value,
                    (value - base) / dt_s);
      } else {
        std::printf("  %-42s %16.0f\n", name.c_str(), value);
      }
    }
  }
  if (!cur.gauges.empty()) {
    std::printf(" gauges:\n");
    for (const auto& [name, value] : cur.gauges) {
      std::printf("  %-42s %16.0f\n", name.c_str(), value);
    }
  }
  if (!cur.histograms.empty()) {
    std::printf(" histograms (cumulative):\n");
    for (const auto& [name, h] : cur.histograms) {
      PrintHistogram(name, h);
    }
  }
  std::fflush(stdout);
}

int Summarize(const Options& opts) {
  std::ifstream in(opts.path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", opts.path.c_str());
    return 1;
  }
  Snapshot first;
  Snapshot last;
  uint64_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    Snapshot snap = ParseSnapshot(line);
    if (!snap.ok) {
      continue;
    }
    if (!first.ok) {
      first = snap;
    }
    last = snap;
    ++lines;
  }
  if (!last.ok) {
    std::fprintf(stderr, "error: no fm-telemetry-v1 snapshots in %s\n",
                 opts.path.c_str());
    return 1;
  }
  const double span_s = (last.t_ns - first.t_ns) / 1e9;
  std::printf("%s: %llu snapshots spanning %.3fs\n", opts.path.c_str(),
              static_cast<unsigned long long>(lines), span_s);
  std::printf("counters (final cumulative%s):\n",
              span_s > 0 ? ", mean rate over the file span" : "");
  for (const auto& [name, value] : last.counters) {
    if (span_s > 0) {
      auto it = first.counters.find(name);
      const double base = it != first.counters.end() ? it->second : 0;
      std::printf("  %-42s %16.0f  (%12.0f /s)\n", name.c_str(), value,
                  (value - base) / span_s);
    } else {
      std::printf("  %-42s %16.0f\n", name.c_str(), value);
    }
  }
  std::printf("gauges (final):\n");
  for (const auto& [name, value] : last.gauges) {
    std::printf("  %-42s %16.0f\n", name.c_str(), value);
  }
  std::printf("histograms (final):\n");
  for (const auto& [name, h] : last.histograms) {
    PrintHistogram(name, h);
  }
  return 0;
}

int Follow(const Options& opts) {
  std::ifstream in(opts.path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", opts.path.c_str());
    return 1;
  }
  Snapshot prev;
  std::string line;
  while (true) {
    if (std::getline(in, line)) {
      if (line.empty()) {
        continue;
      }
      Snapshot snap = ParseSnapshot(line);
      if (!snap.ok) {
        continue;
      }
      PrintInterval(prev, snap);
      prev = snap;
      continue;
    }
    if (opts.exit_on_eof) {
      return prev.ok ? 0 : 1;
    }
    // Writer may still be appending: clear the EOF latch and poll.
    in.clear();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--summary") == 0) {
      opts.summary = true;
    } else if (std::strcmp(argv[i], "--exit-on-eof") == 0) {
      opts.exit_on_eof = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return Usage(argv[0]);
    } else if (opts.path.empty()) {
      opts.path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (opts.path.empty()) {
    return Usage(argv[0]);
  }
  return opts.summary ? Summarize(opts) : Follow(opts);
}
