#include "tools/fmlint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/util/timer.h"

namespace fmlint {
namespace {

namespace fs = std::filesystem;

bool IsRuleNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
}

struct Directive {
  enum Kind { kAllow, kDisable, kEnable };
  Kind kind;
  size_t line;  // 1-based
  std::string rule;
};

// Extracts every well-formed suppression directive from a raw line. Malformed
// candidates (rule name with characters outside [a-z0-9-], or no closing
// paren) are ignored as ordinary comment text — that is what keeps prose like
// "fmlint:allow(<rule>)" in documentation from registering.
void ParseDirectives(const std::string& raw_line, size_t line_no,
                     std::vector<Directive>* out) {
  static constexpr struct {
    const char* needle;
    Directive::Kind kind;
  } kForms[] = {
      {"fmlint:allow(", Directive::kAllow},
      {"fmlint:disable(", Directive::kDisable},
      {"fmlint:enable(", Directive::kEnable},
  };
  for (const auto& form : kForms) {
    size_t pos = 0;
    size_t needle_len = std::string_view(form.needle).size();
    while ((pos = raw_line.find(form.needle, pos)) != std::string::npos) {
      size_t name_begin = pos + needle_len;
      size_t name_end = name_begin;
      while (name_end < raw_line.size() && IsRuleNameChar(raw_line[name_end])) {
        ++name_end;
      }
      pos = name_end;
      if (name_end == name_begin || name_end >= raw_line.size() ||
          raw_line[name_end] != ')') {
        continue;
      }
      out->push_back({form.kind, line_no,
                      raw_line.substr(name_begin, name_end - name_begin)});
    }
  }
}

struct Allow {
  size_t line;
  std::string rule;
  bool used = false;
};

struct Block {
  std::string rule;
  size_t begin;  // disable-directive line
  size_t end;    // enable-directive line or last line (inclusive)
  bool used = false;
};

// Per-file suppression table built from directives, consulted after all rules
// have run.
struct SuppressionTable {
  std::string rel_path;
  std::vector<Allow> allows;
  std::vector<Block> blocks;

  bool Suppress(const Diagnostic& diag) {
    for (Allow& a : allows) {
      if (a.line == diag.line && a.rule == diag.rule) {
        a.used = true;
        return true;
      }
    }
    for (Block& b : blocks) {
      if (b.rule == diag.rule && diag.line >= b.begin && diag.line <= b.end) {
        b.used = true;
        return true;
      }
    }
    return false;
  }
};

class VectorSink : public DiagSink {
 public:
  void Add(Diagnostic diag) override { diags_.push_back(std::move(diag)); }
  std::vector<Diagnostic>& diags() { return diags_; }

 private:
  std::vector<Diagnostic> diags_;
};

void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace

void Rule::Finish(DiagSink& /*sink*/) {}

std::string StripCommentsAndStrings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          // Raw string literal? The identifier run immediately before the
          // quote must be exactly a raw-string prefix (R, uR, u8R, UR, LR);
          // anything longer (FooR"...") is an ordinary adjacent identifier.
          size_t p = i;
          while (p > 0 && (std::isalnum(static_cast<unsigned char>(
                               text[p - 1])) ||
                           text[p - 1] == '_')) {
            --p;
          }
          std::string prefix = text.substr(p, i - p);
          bool is_raw = prefix == "R" || prefix == "uR" || prefix == "u8R" ||
                        prefix == "UR" || prefix == "LR";
          size_t open_paren = is_raw ? text.find('(', i + 1) : std::string::npos;
          if (is_raw && open_paren != std::string::npos &&
              open_paren - (i + 1) <= 16) {
            // Blank the already-emitted prefix (out tracks text 1:1), keep a
            // plain quoted-empty shape, and blank the contents — delimiters
            // included — preserving newlines so line structure survives.
            for (size_t k = p; k < i; ++k) {
              out[k] = ' ';
            }
            std::string term = ")" + text.substr(i + 1, open_paren - (i + 1)) +
                               "\"";
            size_t end = text.find(term, open_paren + 1);
            size_t stop =
                end == std::string::npos ? text.size() : end + term.size();
            out += '"';
            size_t last = end == std::string::npos ? text.size() : stop - 1;
            for (size_t k = i + 1; k < last; ++k) {
              out += text[k] == '\n' ? '\n' : ' ';
            }
            if (end != std::string::npos) {
              out += '"';
            }
            i = stop - 1;
          } else {
            state = State::kString;
            out += '"';
          }
        } else if (c == '\'') {
          state = State::kChar;
          out += '\'';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out += '"';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += '\'';
        } else {
          out += ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    lines.push_back(cur);
  }
  return lines;
}

SourceFile PrepareSource(std::string rel_path, const std::string& text) {
  SourceFile file;
  file.is_header = rel_path.size() >= 2 &&
                   rel_path.compare(rel_path.size() - 2, 2, ".h") == 0;
  file.rel_path = std::move(rel_path);
  file.raw = SplitLines(text);
  file.code = SplitLines(StripCommentsAndStrings(text));
  // Stripping never changes line structure; keep the invariant hard.
  file.code.resize(file.raw.size());
  return file;
}

Engine::Engine(std::vector<std::unique_ptr<Rule>> rules)
    : rules_(std::move(rules)) {}

std::vector<Diagnostic> Engine::Lint(
    const std::vector<std::pair<std::string, std::string>>& files) {
  VectorSink sink;
  std::vector<SuppressionTable> tables;
  std::vector<Diagnostic> bad_directives;
  files_linted_ = 0;
  timings_.clear();
  timings_.reserve(rules_.size());
  for (const auto& rule : rules_) {
    timings_.push_back({std::string(rule->name()), 0.0});
  }

  for (const auto& [rel_path, text] : files) {
    SourceFile file = PrepareSource(rel_path, text);
    ++files_linted_;

    // Build this file's suppression table from its raw lines.
    SuppressionTable table;
    table.rel_path = file.rel_path;
    std::vector<Directive> directives;
    for (size_t i = 0; i < file.raw.size(); ++i) {
      ParseDirectives(file.raw[i], i + 1, &directives);
    }
    for (const Directive& d : directives) {
      bool known = std::any_of(
          rules_.begin(), rules_.end(),
          [&](const std::unique_ptr<Rule>& r) { return r->name() == d.rule; });
      if (!known) {
        bad_directives.push_back(
            {file.rel_path, d.line, "bad-suppression",
             "suppression names unknown rule '" + d.rule + "'", ""});
        continue;
      }
      switch (d.kind) {
        case Directive::kAllow:
          table.allows.push_back({d.line, d.rule});
          break;
        case Directive::kDisable:
          table.blocks.push_back({d.rule, d.line, file.raw.size(), false});
          break;
        case Directive::kEnable: {
          // Close the innermost still-open block for this rule.
          Block* open = nullptr;
          for (Block& b : table.blocks) {
            if (b.rule == d.rule && b.end == file.raw.size() &&
                b.begin <= d.line) {
              open = &b;
            }
          }
          if (open == nullptr) {
            bad_directives.push_back(
                {file.rel_path, d.line, "bad-suppression",
                 "enable without an open disable block for '" + d.rule + "'",
                 ""});
          } else {
            open->end = d.line;
          }
          break;
        }
      }
    }
    tables.push_back(std::move(table));

    for (size_t r = 0; r < rules_.size(); ++r) {
      fm::Timer timer;
      rules_[r]->CheckFile(file, sink);
      timings_[r].seconds += timer.Elapsed();
    }
  }
  for (size_t r = 0; r < rules_.size(); ++r) {
    fm::Timer timer;
    rules_[r]->Finish(sink);
    timings_[r].seconds += timer.Elapsed();
  }

  // Apply suppressions, then report the ones that caught nothing.
  std::vector<Diagnostic> result;
  for (Diagnostic& diag : sink.diags()) {
    auto table = std::find_if(
        tables.begin(), tables.end(),
        [&](const SuppressionTable& t) { return t.rel_path == diag.file; });
    if (table != tables.end() && table->Suppress(diag)) {
      continue;
    }
    result.push_back(std::move(diag));
  }
  for (SuppressionTable& table : tables) {
    for (const Allow& a : table.allows) {
      if (!a.used) {
        result.push_back({table.rel_path, a.line, "unused-suppression",
                          "allow(" + a.rule + ") suppressed nothing; remove it",
                          ""});
      }
    }
    for (const Block& b : table.blocks) {
      if (!b.used) {
        result.push_back({table.rel_path, b.begin, "unused-suppression",
                          "disable(" + b.rule +
                              ") block suppressed nothing; remove it",
                          ""});
      }
    }
  }
  result.insert(result.end(), bad_directives.begin(), bad_directives.end());

  std::sort(result.begin(), result.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) {
                return a.file < b.file;
              }
              if (a.line != b.line) {
                return a.line < b.line;
              }
              return a.rule < b.rule;
            });
  return result;
}

std::vector<Diagnostic> Engine::LintTree(const std::string& root) {
  static constexpr const char* kDirs[] = {"src", "tests", "bench", "tools",
                                          "examples"};
  fs::path root_path(root);
  std::vector<std::string> paths;
  for (const char* dir : kDirs) {
    fs::path sub = root_path / dir;
    if (!fs::is_directory(sub)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(sub)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      fs::path ext = entry.path().extension();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") {
        continue;
      }
      std::string rel = fs::relative(entry.path(), root_path).generic_string();
      // Fixture snippets violate rules on purpose; the self-tests lint them
      // through Engine::Lint with pretend paths instead.
      if (rel.rfind("tests/fmlint_fixtures/", 0) == 0) {
        continue;
      }
      paths.push_back(std::move(rel));
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<std::pair<std::string, std::string>> files;
  std::vector<Diagnostic> io_errors;
  for (std::string& rel : paths) {
    std::ifstream in(root_path / rel, std::ios::binary);
    std::ostringstream buf;
    if (!in || !(buf << in.rdbuf())) {
      io_errors.push_back({rel, 0, "io", "cannot read file", ""});
      continue;
    }
    files.emplace_back(std::move(rel), buf.str());
  }
  std::vector<Diagnostic> result = Lint(files);
  result.insert(result.end(), io_errors.begin(), io_errors.end());
  return result;
}

namespace {

// Fixed-point milliseconds with 3 decimals; avoids iostream float formatting.
std::string MillisString(double seconds) {
  double ms = seconds * 1000.0;
  if (ms < 0) {
    ms = 0;
  }
  auto micros = static_cast<unsigned long long>(ms * 1000.0 + 0.5);
  std::string frac = std::to_string(micros % 1000);
  while (frac.size() < 3) {
    frac.insert(frac.begin(), '0');
  }
  return std::to_string(micros / 1000) + "." + frac;
}

}  // namespace

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diags,
                              size_t files_linted,
                              const std::vector<RuleTiming>* timings) {
  std::string out;
  out += "{\"schema\":\"fmlint-v2\",\"files\":";
  out += std::to_string(files_linted);
  out += ",\"violations\":";
  out += std::to_string(diags.size());
  out += ",\"diagnostics\":[";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i != 0) {
      out += ',';
    }
    out += "\n{\"file\":";
    AppendJsonString(&out, d.file);
    out += ",\"line\":";
    out += std::to_string(d.line);
    out += ",\"rule\":";
    AppendJsonString(&out, d.rule);
    out += ",\"message\":";
    AppendJsonString(&out, d.message);
    if (!d.fixit.empty()) {
      out += ",\"fixit\":";
      AppendJsonString(&out, d.fixit);
    }
    out += '}';
  }
  out += "\n]";
  if (timings != nullptr) {
    out += ",\"timings\":{";
    double total = 0;
    for (size_t i = 0; i < timings->size(); ++i) {
      const RuleTiming& t = (*timings)[i];
      total += t.seconds;
      if (i != 0) {
        out += ',';
      }
      out += '\n';
      AppendJsonString(&out, t.rule);
      out += ':';
      out += MillisString(t.seconds);
    }
    if (!timings->empty()) {
      out += ",\n";
    }
    out += "\"total_ms\":";
    out += MillisString(total);
    out += '}';
  }
  out += "}\n";
  return out;
}

std::string DiagnosticsToSarif(
    const std::vector<Diagnostic>& diags,
    const std::vector<std::unique_ptr<Rule>>& rules) {
  std::string out;
  out +=
      "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"fmlint\",\"informationUri\":"
      "\"tools/fmlint\",\"rules\":[";
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += "\n{\"id\":";
    AppendJsonString(&out, std::string(rules[i]->name()));
    out += ",\"shortDescription\":{\"text\":";
    AppendJsonString(&out, std::string(rules[i]->description()));
    out += "}}";
  }
  out += "\n]}},\"results\":[";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i != 0) {
      out += ',';
    }
    out += "\n{\"ruleId\":";
    AppendJsonString(&out, d.rule);
    out += ",\"level\":\"error\",\"message\":{\"text\":";
    AppendJsonString(&out, d.message);
    out += "},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
           "{\"uri\":";
    AppendJsonString(&out, d.file);
    out += ",\"uriBaseId\":\"SRCROOT\"},\"region\":{\"startLine\":";
    out += std::to_string(d.line == 0 ? 1 : d.line);
    out += "}}}]}";
  }
  out += "\n]}]}\n";
  return out;
}

}  // namespace fmlint
