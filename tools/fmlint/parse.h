// fmlint v3 front end — a preprocessing-aware tokenizer and a lightweight
// function/scope parser over prepared SourceFiles.
//
// This is deliberately not a C++ parser. It recovers exactly the structure the
// whole-program analyses (tools/fmlint/analysis.h) need and nothing more:
//
//   - which functions a file defines (with Class::Name qualification from both
//     out-of-line definitions and the enclosing class/namespace scope stack),
//   - each function's body as a token stream with line numbers,
//   - call sites inside each body (qualified where spelled so),
//   - scoped lock acquisitions (`fm::MutexLock lock(mu_)`) with the set of
//     locks already held at the acquisition and at every call site, tracked
//     through brace scopes so RAII release is modelled,
//   - the FM_HOT_PATH / FM_REQUIRES / FM_ACQUIRE markers attached to a
//     declaration or definition.
//
// Preprocessor awareness means directive lines (and their backslash
// continuations) are excluded from the token stream, so `#define X {` cannot
// desynchronize brace tracking and include paths never read as division.
// Comments and string contents are already blanked by PrepareSource; the
// tokenizer sees pure code with original line/column structure.
#ifndef TOOLS_FMLINT_PARSE_H_
#define TOOLS_FMLINT_PARSE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tools/fmlint/lint.h"

namespace fmlint {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind;
  std::string text;  // `operator` merges its symbol: "operator()", "operator<<"
  size_t line = 0;   // 1-based
  size_t col = 0;    // 0-based byte offset in the line
};

// Tokenizes the prepared (comment/string-blanked) code lines. Lines belonging
// to preprocessor directives are skipped entirely.
std::vector<Token> Tokenize(const SourceFile& file);

// A function call observed inside a body. `name` keeps the spelled
// qualification ("Tracer::Get", "Refill"); `held_locks` is the ordered list of
// scoped locks live at the call site.
struct CallSite {
  std::string name;
  size_t line = 0;
  std::vector<std::string> held_locks;
};

// A scoped lock acquisition (`MutexLock guard(expr)`). `lock` is the
// normalized lock name (see NormalizeLockName); `held_before` the locks
// already live in this function when it was taken.
struct LockSite {
  std::string lock;
  size_t line = 0;
  std::vector<std::string> held_before;
};

// A local object construction `Type var(args)` / `Type var{args}` inside a
// body. `type` is the unqualified base type name ("MutexLock", "vector").
struct DeclSite {
  std::string type;
  std::string var;
  size_t line = 0;
};

// A formal parameter of a function definition, as much of it as the data-flow
// layer needs: the name (entry-state key / summary index) and whether it is a
// pointer (`T*` / `T* const`), which seeds pointer provenance.
struct ParamInfo {
  std::string name;
  bool is_pointer = false;
};

struct FunctionInfo {
  std::string name;       // simple name: "SampleVp", "operator()", "~Mutex"
  std::string qualified;  // scope-qualified: "StepKernel::SampleVp"
  std::string file;       // repo-relative path of the definition
  size_t line = 0;        // line of the opening brace's statement start
  bool hot = false;       // FM_HOT_PATH on the definition (or merged decl)
  bool declaration_only = false;  // prototype with markers, no body here
  // Lock names from FM_REQUIRES(...): caller-held for the whole body.
  std::vector<std::string> requires_locks;
  // Lock names from FM_ACQUIRE(...): this function takes them itself.
  std::vector<std::string> acquires_locks;
  // Formal parameters of the definition, in order (tools/fmlint/dataflow.h
  // tracks the first eight).
  std::vector<ParamInfo> params;
  std::vector<CallSite> calls;
  std::vector<LockSite> locks;
  std::vector<DeclSite> decls;
  std::vector<Token> body;  // tokens strictly inside the outermost braces
};

// Parses every function definition (and marker-carrying declaration) in the
// file. Never fails: unparseable regions simply contribute nothing.
std::vector<FunctionInfo> ParseFunctions(const SourceFile& file);

// Lock-name normalization: strips `this->`, whitespace, and a leading object
// designator (`tracer.mutex_` -> `mutex_`), then prefixes the enclosing class
// when the bare name looks like a member (trailing underscore) so the same
// mutex spells identically across its class's methods.
std::string NormalizeLockName(const std::string& expr,
                              const std::string& enclosing_class);

}  // namespace fmlint

#endif  // TOOLS_FMLINT_PARSE_H_
