// The fmlint rule catalog. Each rule documents its rationale next to its
// implementation in rules.cc; DESIGN.md §7e carries the overview table.
//
//   include-guard     headers use #ifndef/#define SRC_PATH_TO_FILE_H_ guards
//                     derived from the repo-relative path.
//   banned-rng        no ad-hoc RNG outside src/util/rng.* — all randomness
//                     flows through the seeded, splittable generators.
//   naked-new         no `new` expressions; ownership lives in containers and
//                     smart pointers.
//   reinterpret-arith no reinterpret_cast to a pointer type whose operand does
//                     byte-pointer arithmetic; memcpy the value out instead.
//   visit-counts-mut  no direct mutation of a WalkResult's visit_counts
//                     outside src/core/.
//   raw-clock         no direct clock reads outside timer.h / trace.cc /
//                     perf_counters.cc.
//   perf-syscall      no direct perf_event_open use outside perf_counters.cc.
//   raw-mutex         no std::mutex / std::lock_guard / std::condition_variable
//                     (or friends) outside src/util/sync.h — concurrency goes
//                     through the thread-safety-annotated fm::Mutex family.
//   relaxed-order     every std::memory_order_relaxed needs an adjacent
//                     `// relaxed:` justification comment.
//   manual-lock       no .lock()/.unlock() calls outside src/util/sync.h —
//                     RAII guards (fm::MutexLock) only.
//   include-cycle     the project #include graph must stay acyclic (whole-tree
//                     DFS over quoted includes).
//
// The whole-program rules (layer-dag, header-discipline, lock-order,
// hot-path-alloc/lock/io/div) live in tools/fmlint/analysis.h on top of the
// parser (parse.h) and call graph (callgraph.h).
#ifndef TOOLS_FMLINT_RULES_H_
#define TOOLS_FMLINT_RULES_H_

#include <memory>
#include <vector>

#include "tools/fmlint/lint.h"

namespace fmlint {

std::unique_ptr<Rule> MakeIncludeGuardRule();
std::unique_ptr<Rule> MakeBannedRngRule();
std::unique_ptr<Rule> MakeNakedNewRule();
std::unique_ptr<Rule> MakeReinterpretArithRule();
std::unique_ptr<Rule> MakeVisitCountsMutRule();
std::unique_ptr<Rule> MakeRawClockRule();
std::unique_ptr<Rule> MakePerfSyscallRule();
std::unique_ptr<Rule> MakeRawMutexRule();
std::unique_ptr<Rule> MakeRelaxedOrderRule();
std::unique_ptr<Rule> MakeManualLockRule();
std::unique_ptr<Rule> MakeIncludeCycleRule();

}  // namespace fmlint

#endif  // TOOLS_FMLINT_RULES_H_
