// fmlint v4 data-flow layer — per-function CFGs, a small provenance/taint
// lattice, and interprocedural function summaries over the parse.h token
// stream and the callgraph.h symbol index.
//
// The lattice is a bitmask per tracked variable. Low bits are value sources
// the rules care about; bits 16+ mark "this value flows from parameter i
// unchanged enough to matter", which is what lets summaries substitute caller
// argument provenance at call sites (DeriveSeed-style mixers preserve the
// WalkerSeed bit through helper functions, and a header-reading helper in one
// TU taints its caller's allocation size in another).
//
// Merge policy mirrors the call graph's deliberate under-approximation:
//
//   - "bad" bits (thread id, slot index, pointer, clock, untrusted input)
//     merge with AND across paths and returns — a finding is reported only
//     when every path carries the bad source, so ambiguous control flow can
//     hide a bug but can never invent one and the whole-repo zero-findings
//     gate stays meaningful.
//   - the WalkerSeed bit and the parameter-passthrough bits merge with OR —
//     the positive obligation (seeds must trace to WalkerSeed) gets the
//     benefit of the doubt on any path that satisfies it.
//
// Calls resolve through WholeProgram::Resolve; ambiguous or unknown callees
// contribute nothing (their result provenance is empty), again
// under-approximating. Lambda bodies are treated as opaque single statements:
// calls inside them are still observed (for the relaxed-publication scan) but
// their local state is not modelled.
#ifndef TOOLS_FMLINT_DATAFLOW_H_
#define TOOLS_FMLINT_DATAFLOW_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tools/fmlint/callgraph.h"
#include "tools/fmlint/parse.h"

namespace fmlint {

using Provenance = uint32_t;

// Value sources. kProvWalkerSeed is the one "good" bit (the rng rule demands
// it); the others are forbidden seed sources / the taint bit.
constexpr Provenance kProvWalkerSeed = 1u << 0;  // WalkerSeed(chunk_seed, i)
constexpr Provenance kProvThreadId = 1u << 1;    // thread ids / pool sizes
constexpr Provenance kProvSlotIndex = 1u << 2;   // ring-slot / lane indices
constexpr Provenance kProvPointer = 1u << 3;     // addresses, .data(), new
constexpr Provenance kProvClock = 1u << 4;       // wall/TSC time
constexpr Provenance kProvUntrusted = 1u << 5;   // file-header bytes, unchecked

constexpr Provenance kProvBadSeedMask =
    kProvThreadId | kProvSlotIndex | kProvPointer | kProvClock |
    kProvUntrusted;

// Parameter-passthrough bits: value derives from parameter i of the enclosing
// function. Only the first kMaxTrackedParams parameters are tracked.
constexpr int kMaxTrackedParams = 8;
constexpr Provenance ParamBit(int i) { return 1u << (16 + i); }
constexpr Provenance kProvParamMask = 0xFFu << 16;

// Human name for a single bad bit ("thread id", "ring-slot index", ...).
const char* ProvenanceSourceName(Provenance bit);

// A call observed inside a statement. Unlike parse.h's CallSite this keeps
// the receiver chain and the argument token ranges, and it also catches
// template calls (`LoadScalar<uint64_t>(p)`).
struct StmtCall {
  std::string name;      // final component ("Seed", "store", "LoadScalar")
  std::string receiver;  // spelled receiver chain ("s.rng", "slot_"); "" free
  size_t line = 0;
  std::vector<std::vector<Token>> args;  // top-level-comma-split argument toks
};

// One statement, pre-digested for the transfer function.
struct Statement {
  size_t line = 0;
  std::vector<Token> tokens;  // the full statement, for ad-hoc scans
  std::string def;            // assigned/declared base variable; "" if none
  bool weak_def = false;      // member/array/compound write: union with old
  bool is_decl = false;
  std::string decl_type;      // base type name for declarations; "" otherwise
  std::string deref_write;    // `*p = ...`: the pointer written through
  bool is_return = false;
  std::vector<Token> value;   // rhs / init args / returned expression
  std::vector<StmtCall> calls;
};

struct BasicBlock {
  enum class Cond { kNone, kIf, kLoop, kSwitch };
  Cond cond = Cond::kNone;
  std::vector<Token> cond_tokens;  // condition/selector expression
  size_t cond_line = 0;
  std::vector<Statement> stmts;
  std::vector<size_t> succs;
};

// entry has no statements; every `return`/`throw`/fall-off edge reaches exit.
struct Cfg {
  std::vector<BasicBlock> blocks;
  size_t entry = 0;
  size_t exit = 0;
};

// Builds the CFG for one parsed function body (if/else, while, do, for —
// including range-for — switch/case, break, continue, early return/throw).
Cfg BuildCfg(const FunctionInfo& fn);

// What a call site learns about a callee without looking inside it again.
struct FunctionSummary {
  // Provenance of the returned value; ParamBits refer to the callee's own
  // parameters and are substituted with argument provenance at the call.
  Provenance returns = 0;
  // Provenance written through pointer/reference parameter i (`*p = ...`).
  Provenance writes_param[kMaxTrackedParams] = {};
};

// Variable name -> provenance. Keys are base names: `h.num_vertices` tracks
// under `h` (struct granularity), `a[i]` under `a` (element granularity).
using VarState = std::map<std::string, Provenance>;

// The shared analysis: CFGs for every definition in the WholeProgram plus
// interprocedural summaries computed to a fixpoint. Valid while the
// WholeProgram it was built from is analyzed.
class DataFlow {
 public:
  explicit DataFlow(const WholeProgram& wp);

  const Cfg& cfg(size_t fn_index) const { return cfgs_[fn_index]; }
  const FunctionSummary& summary(size_t fn_index) const {
    return summaries_[fn_index];
  }

  // Provenance of an expression under a state. Array subscript contents do
  // not flow into the value (indexing an array with a slot does not make the
  // element slot-derived); call results come from summaries or the intrinsic
  // table (WalkerSeed, LoadScalar, clock/thread sources).
  Provenance Eval(const std::vector<Token>& toks, const VarState& state) const;

  // Runs the converged forward pass over one function and streams every
  // reachable statement (with the state *before* it) and every condition
  // block (with its incoming state) to the callbacks.
  void Visit(
      size_t fn_index,
      const std::function<void(const Statement&, const VarState&)>& on_stmt,
      const std::function<void(const BasicBlock&, const VarState&)>& on_cond)
      const;

 private:
  VarState EntryState(const FunctionInfo& fn) const;
  void TransferStatement(const Statement& stmt, const FunctionInfo& fn,
                         VarState* state, FunctionSummary* summary) const;
  void ApplyCondition(const BasicBlock& block, VarState* state) const;
  // One whole-function pass; returns the per-block in-states.
  std::vector<VarState> Converge(size_t fn_index,
                                 FunctionSummary* summary) const;

  const WholeProgram& wp_;
  std::vector<Cfg> cfgs_;
  std::vector<FunctionSummary> summaries_;
};

// Shares one DataFlow among the rules that need it, with the same
// consumer-counted lifecycle as WholeProgram so an Engine can lint twice.
class DataFlowCache {
 public:
  explicit DataFlowCache(int consumers) : consumers_(consumers) {}

  // `wp` must be analyzed; builds on first call, reuses after.
  DataFlow& Ensure(const WholeProgram& wp);
  void Release();

 private:
  int consumers_;
  int releases_ = 0;
  std::unique_ptr<DataFlow> df_;
};

}  // namespace fmlint

#endif  // TOOLS_FMLINT_DATAFLOW_H_
