#include "tools/fmlint/analysis.h"

#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <utility>

namespace fmlint {
namespace {

// --- shared helpers ----------------------------------------------------------

struct Include {
  std::string path;  // as written inside the quotes (repo-relative by policy)
  size_t line;       // 1-based
};

// Quoted project includes; the path is recovered from the raw line because
// string contents are blanked in prepared code.
std::vector<Include> QuotedIncludes(const SourceFile& file) {
  static const std::regex include_re(R"(^\s*#\s*include\s*\")");
  std::vector<Include> out;
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (!std::regex_search(file.code[i], include_re)) {
      continue;
    }
    size_t open = file.raw[i].find('"');
    if (open == std::string::npos) {
      continue;
    }
    size_t close = file.raw[i].find('"', open + 1);
    if (close == std::string::npos) {
      continue;
    }
    out.push_back({file.raw[i].substr(open + 1, close - open - 1), i + 1});
  }
  return out;
}

// --- layer-dag ---------------------------------------------------------------

// The layer manifest. Higher ranks may include lower ranks; same-module is
// always fine; same-rank cross-module edges need an explicit allowance below.
// src/fm.h (the umbrella header) sits between the src layers and the
// tool/bench layer: it may include everything in src/, and only non-src code
// may include it (header-discipline enforces the latter).
struct Module {
  std::string name;
  int rank;
};

Module ModuleOf(const std::string& path) {
  static constexpr struct {
    const char* prefix;
    int rank;
  } kLayers[] = {
      {"src/util/", 0},     {"src/graph/", 10},   {"src/gen/", 10},
      {"src/sampling/", 10}, {"src/mem/", 10},    {"src/core/", 20},
      {"src/cachesim/", 20}, {"src/apps/", 30},   {"src/baseline/", 30},
      {"bench/", 40},        {"tools/", 40},      {"examples/", 40},
      {"tests/", 50},
  };
  if (path == "src/fm.h") {
    return {"src/fm.h", 35};
  }
  for (const auto& layer : kLayers) {
    if (path.rfind(layer.prefix, 0) == 0) {
      std::string name(layer.prefix);
      name.pop_back();  // drop trailing '/'
      return {std::move(name), layer.rank};
    }
  }
  return {"", -1};  // not part of the manifest (external / unknown)
}

// Sibling edges sanctioned inside a band.
bool AllowedSameRank(const std::string& from, const std::string& to) {
  static constexpr struct {
    const char* from;
    const char* to;
  } kAllowed[] = {
      {"src/gen", "src/graph"},
      {"src/sampling", "src/graph"},
      {"src/core", "src/cachesim"},
  };
  for (const auto& edge : kAllowed) {
    if (from == edge.from && to == edge.to) {
      return true;
    }
  }
  return false;
}

class LayerDagRule : public Rule {
 public:
  std::string_view name() const override { return "layer-dag"; }
  std::string_view description() const override {
    return "#include edges must follow the layer manifest: util -> "
           "graph/gen/sampling/mem -> core/cachesim -> apps/baseline -> "
           "bench/tools -> tests";
  }

  void CheckFile(const SourceFile& file, DiagSink& sink) override {
    Module from = ModuleOf(file.rel_path);
    if (from.rank < 0) {
      return;
    }
    for (const Include& inc : QuotedIncludes(file)) {
      Module to = ModuleOf(inc.path);
      if (to.rank < 0 || from.name == to.name) {
        continue;
      }
      bool ok = to.rank < from.rank ||
                (to.rank == from.rank && AllowedSameRank(from.name, to.name));
      if (!ok) {
        sink.Add({file.rel_path, inc.line, std::string(name()),
                  "layer violation: " + from.name + " may not include " +
                      to.name + " (" + inc.path +
                      "); dependencies flow util -> graph/gen/sampling/mem -> "
                      "core/cachesim -> apps/baseline -> bench/tools -> tests",
                  "move the shared code down a layer or invert the "
                  "dependency"});
      }
    }
  }
};

// --- header-discipline -------------------------------------------------------

class HeaderDisciplineRule : public Rule {
 public:
  std::string_view name() const override { return "header-discipline"; }
  std::string_view description() const override {
    return "no including .cc files; src/<dir>/internal/ headers are private "
           "to their directory; the src/fm.h umbrella is never included from "
           "src/";
  }

  void CheckFile(const SourceFile& file, DiagSink& sink) override {
    for (const Include& inc : QuotedIncludes(file)) {
      if (inc.path.size() > 3 &&
          inc.path.compare(inc.path.size() - 3, 3, ".cc") == 0) {
        sink.Add({file.rel_path, inc.line, std::string(name()),
                  "never #include an implementation file (" + inc.path + ")",
                  "link the object file or extract a header"});
        continue;
      }
      // src/<d>/internal/... is private to src/<d>/.
      static const std::regex internal_re(R"(^(src/[^/]+/)internal/)");
      std::smatch m;
      if (std::regex_search(inc.path, m, internal_re) &&
          file.rel_path.rfind(m[1].str(), 0) != 0) {
        sink.Add({file.rel_path, inc.line, std::string(name()),
                  "private header " + inc.path + " is internal to " +
                      m[1].str() + " and may not be included from " +
                      file.rel_path,
                  "use the public header of that module"});
        continue;
      }
      if (inc.path == "src/fm.h" && file.rel_path.rfind("src/", 0) == 0) {
        sink.Add({file.rel_path, inc.line, std::string(name()),
                  "the src/fm.h umbrella is for external consumers; inside "
                  "src/ include the specific headers",
                  "include the specific src/<module> headers"});
      }
    }
  }
};

// --- whole-program rule base -------------------------------------------------

class WholeProgramRule : public Rule {
 public:
  explicit WholeProgramRule(std::shared_ptr<WholeProgram> wp)
      : wp_(std::move(wp)) {}

  void CheckFile(const SourceFile& file, DiagSink& /*sink*/) override {
    wp_->AddFile(file);
  }

  void Finish(DiagSink& sink) override {
    wp_->EnsureAnalyzed();
    Report(sink);
    wp_->Release();
  }

 protected:
  virtual void Report(DiagSink& sink) = 0;

  std::shared_ptr<WholeProgram> wp_;
};

// --- lock-order --------------------------------------------------------------

class LockOrderRule : public WholeProgramRule {
 public:
  using WholeProgramRule::WholeProgramRule;

  std::string_view name() const override { return "lock-order"; }
  std::string_view description() const override {
    return "the lock acquired-before graph (MutexLock nesting + FM_REQUIRES/"
           "FM_ACQUIRE through the call graph) must stay acyclic";
  }

 protected:
  void Report(DiagSink& sink) override {
    for (const auto& cycle : wp_->lock_cycles()) {
      std::string order;
      std::string detail;
      for (const WholeProgram::LockEdge& e : cycle) {
        order += e.from + " -> ";
        detail += "; " + e.from + " -> " + e.to + " (" + e.note + " at " +
                  e.file + ":" + std::to_string(e.line) + ")";
      }
      const WholeProgram::LockEdge& first = cycle.front();
      sink.Add({first.file, first.line, std::string(name()),
                "potential deadlock: lock-order cycle " + order +
                    cycle.front().from + detail,
                "pick one global order for these locks (see the canonical "
                "order in src/util/sync.h) and acquire in that order "
                "everywhere"});
    }
  }
};

// --- hot-path family ---------------------------------------------------------

// Base for the hot-path rules: iterates the hot closure and lets subclasses
// scan each function, deduplicating per line.
class HotPathRule : public WholeProgramRule {
 public:
  using WholeProgramRule::WholeProgramRule;

 protected:
  void Report(DiagSink& sink) override {
    reported_.clear();
    const std::vector<FunctionInfo>& fns = wp_->functions();
    for (size_t i = 0; i < fns.size(); ++i) {
      if (wp_->IsHot(i)) {
        ScanHot(fns[i], wp_->HotChain(i), sink);
      }
    }
  }

  virtual void ScanHot(const FunctionInfo& fn, const std::string& chain,
                       DiagSink& sink) = 0;

  void AddOnce(const std::string& file, size_t line, const std::string& what,
               const std::string& chain, const char* fixit, DiagSink& sink) {
    if (!reported_.emplace(file, line).second) {
      return;
    }
    sink.Add({file, line, std::string(name()),
              what + " [hot path: " + chain + "]", fixit});
  }

 private:
  std::set<std::pair<std::string, size_t>> reported_;
};

class HotPathAllocRule : public HotPathRule {
 public:
  using HotPathRule::HotPathRule;

  std::string_view name() const override { return "hot-path-alloc"; }
  std::string_view description() const override {
    return "no heap allocation inside FM_HOT_PATH functions or anything they "
           "transitively call";
  }

 protected:
  void ScanHot(const FunctionInfo& fn, const std::string& chain,
               DiagSink& sink) override {
    static const std::set<std::string> kAllocFns = {
        "malloc",      "calloc",          "realloc",    "free",
        "aligned_alloc", "posix_memalign", "strdup",     "make_unique",
        "make_shared"};
    static const std::set<std::string> kContainers = {
        "vector",        "string",       "deque",         "map",
        "unordered_map", "set",          "unordered_set", "list",
        "multimap",      "basic_string", "stringstream",  "ostringstream",
        "istringstream"};
    static const std::set<std::string> kGrowth = {
        "push_back", "emplace_back", "emplace", "resize",
        "reserve",   "insert",       "append",  "assign"};

    for (size_t i = 0; i < fn.body.size(); ++i) {
      const Token& t = fn.body[i];
      if (t.kind != Token::Kind::kIdent) {
        continue;
      }
      if (t.text == "new" || t.text == "delete") {
        AddOnce(fn.file, t.line, "'" + t.text + "' in hot path", chain,
                "preallocate outside the hot loop", sink);
        continue;
      }
      bool called = i + 1 < fn.body.size() && (fn.body[i + 1].text == "(" ||
                                               fn.body[i + 1].text == "<");
      if (called && kAllocFns.count(t.text) != 0) {
        AddOnce(fn.file, t.line, "heap allocation '" + t.text + "' in hot path",
                chain, "preallocate outside the hot loop", sink);
      }
    }
    for (const DeclSite& d : fn.decls) {
      if (kContainers.count(d.type) != 0) {
        AddOnce(fn.file, d.line,
                "allocating container '" + d.type + " " + d.var +
                    "' constructed in hot path",
                chain, "hoist the buffer out of the hot loop and reuse it",
                sink);
      }
    }
    for (const CallSite& c : fn.calls) {
      if (kGrowth.count(c.name) != 0) {
        AddOnce(fn.file, c.line,
                "container growth '" + c.name + "' in hot path", chain,
                "size the buffer up front; write through indices", sink);
      }
    }
  }
};

class HotPathLockRule : public HotPathRule {
 public:
  using HotPathRule::HotPathRule;

  std::string_view name() const override { return "hot-path-lock"; }
  std::string_view description() const override {
    return "no mutex acquisition inside the FM_HOT_PATH closure";
  }

 protected:
  void ScanHot(const FunctionInfo& fn, const std::string& chain,
               DiagSink& sink) override {
    for (const LockSite& site : fn.locks) {
      AddOnce(fn.file, site.line,
              "acquires lock '" + site.lock + "' in hot path", chain,
              "restructure so the hot loop works on thread-private state",
              sink);
    }
    static const std::set<std::string> kLockCalls = {"Lock", "TryLock", "lock",
                                                     "try_lock"};
    for (const CallSite& c : fn.calls) {
      if (kLockCalls.count(c.name) != 0) {
        AddOnce(fn.file, c.line, "lock call '" + c.name + "' in hot path",
                chain,
                "restructure so the hot loop works on thread-private state",
                sink);
      }
    }
    if (!fn.acquires_locks.empty()) {
      AddOnce(fn.file, fn.line,
              "FM_ACQUIRE-annotated function in hot path", chain,
              "hot code must not take locks; move the locking to the "
              "enclosing stage boundary",
              sink);
    }
  }
};

class HotPathIoRule : public HotPathRule {
 public:
  using HotPathRule::HotPathRule;

  std::string_view name() const override { return "hot-path-io"; }
  std::string_view description() const override {
    return "no blocking syscalls, I/O, or logging inside the FM_HOT_PATH "
           "closure";
  }

 protected:
  void ScanHot(const FunctionInfo& fn, const std::string& chain,
               DiagSink& sink) override {
    static const std::set<std::string> kIoCalls = {
        "printf",  "fprintf", "puts",      "fputs",     "fwrite",
        "fread",   "fopen",   "fclose",    "getline",   "scanf",
        "fscanf",  "open",    "read",      "write",     "pread",
        "pwrite",  "mmap",    "munmap",    "msync",     "fsync",
        "syscall", "sleep",   "usleep",    "nanosleep", "sleep_for",
        "sleep_until", "FM_LOG"};
    static const std::set<std::string> kStreams = {"ofstream", "ifstream",
                                                   "fstream"};
    static const std::set<std::string> kStreamObjs = {"cout", "cerr", "clog"};
    for (const CallSite& c : fn.calls) {
      if (kIoCalls.count(c.name) != 0) {
        AddOnce(fn.file, c.line,
                "blocking I/O or syscall '" + c.name + "' in hot path", chain,
                "buffer results and emit them outside the hot loop", sink);
      }
    }
    for (const DeclSite& d : fn.decls) {
      if (kStreams.count(d.type) != 0) {
        AddOnce(fn.file, d.line, "file stream opened in hot path", chain,
                "open files at stage boundaries, not per element", sink);
      }
    }
    for (const Token& t : fn.body) {
      if (t.kind == Token::Kind::kIdent && kStreamObjs.count(t.text) != 0) {
        AddOnce(fn.file, t.line, "console stream '" + t.text + "' in hot path",
                chain, "buffer results and emit them outside the hot loop",
                sink);
      }
    }
  }
};

class HotPathDivRule : public HotPathRule {
 public:
  using HotPathRule::HotPathRule;

  std::string_view name() const override { return "hot-path-div"; }
  std::string_view description() const override {
    return "per-element / or % inside the FM_HOT_PATH closure needs an "
           "adjacent `div:` justification comment";
  }

 protected:
  void ScanHot(const FunctionInfo& fn, const std::string& chain,
               DiagSink& sink) override {
    const SourceFile* file = wp_->file(fn.file);
    for (const Token& t : fn.body) {
      if (t.kind != Token::Kind::kPunct) {
        continue;
      }
      if (t.text != "/" && t.text != "%" && t.text != "/=" && t.text != "%=") {
        continue;
      }
      if (file != nullptr && Justified(*file, t.line)) {
        continue;
      }
      AddOnce(fn.file, t.line,
              "division '" + t.text + "' in hot path without a `div:` "
              "justification; hardware divide stalls the sample loop",
              chain,
              "// div: <why this cannot be a shift/mask or hoisted "
              "reciprocal>",
              sink);
    }
  }

 private:
  // Same shape as the relaxed-order justification: tag on the same line or in
  // the contiguous //-comment block immediately above.
  static bool Justified(const SourceFile& file, size_t line_1based) {
    static constexpr const char* kTag = "div:";
    if (line_1based == 0 || line_1based > file.raw.size()) {
      return false;
    }
    size_t i = line_1based - 1;
    if (file.raw[i].find(kTag) != std::string::npos) {
      return true;
    }
    for (size_t j = i; j > 0; --j) {
      const std::string& above = file.raw[j - 1];
      size_t first = above.find_first_not_of(" \t");
      if (first == std::string::npos || above.compare(first, 2, "//") != 0) {
        break;
      }
      if (above.find(kTag, first) != std::string::npos) {
        return true;
      }
    }
    return false;
  }
};

class TelemetryHotPathRule : public HotPathRule {
 public:
  using HotPathRule::HotPathRule;

  std::string_view name() const override { return "telemetry-hot-path"; }
  std::string_view description() const override {
    return "no shared-atomic RMW or mutex-guarded metric updates inside the "
           "FM_HOT_PATH closure; hot metric updates use per-thread telemetry "
           "shard stores";
  }

 protected:
  void ScanHot(const FunctionInfo& fn, const std::string& chain,
               DiagSink& sink) override {
    // Shared-cell RMWs ping-pong the cache line between workers — exactly the
    // contention the per-thread shard design (src/util/telemetry.h) exists to
    // avoid. Single-writer relaxed store/load pairs stay legal.
    static const std::set<std::string> kAtomicRmw = {
        "fetch_add",  "fetch_sub",
        "fetch_and",  "fetch_or",
        "fetch_xor",  "exchange",
        "compare_exchange_weak", "compare_exchange_strong"};
    // Registry lookups and renders take TelemetryRegistry::mutex_; cache the
    // instrument reference at setup instead.
    static const std::set<std::string> kRegistryCalls = {
        "CounterRef", "GaugeRef", "HistogramRef", "RenderPrometheus",
        "RenderJsonLine"};
    for (const CallSite& c : fn.calls) {
      if (kAtomicRmw.count(c.name) != 0) {
        AddOnce(fn.file, c.line,
                "shared-atomic RMW '" + c.name + "' in hot path", chain,
                "update a per-thread telemetry shard (telemetry::Counter::Add "
                "/ Histogram::Observe) and fold at the stage barrier",
                sink);
      } else if (kRegistryCalls.count(c.name) != 0) {
        AddOnce(fn.file, c.line,
                "mutex-guarded telemetry call '" + c.name + "' in hot path",
                chain,
                "look the instrument up at setup and cache the reference; hot "
                "code touches only its own shard",
                sink);
      }
    }
  }
};

// --- data-flow rule family ---------------------------------------------------

// Same-line + contiguous //-comment-block-above raw text, for justification
// lookups (the div:/taint:/relaxed: comment conventions all share this shape).
std::string NearbyCommentText(const SourceFile& file, size_t line_1based) {
  std::string out;
  if (line_1based == 0 || line_1based > file.raw.size()) {
    return out;
  }
  size_t i = line_1based - 1;
  out += file.raw[i];
  for (size_t j = i; j > 0; --j) {
    const std::string& above = file.raw[j - 1];
    size_t first = above.find_first_not_of(" \t");
    if (first == std::string::npos || above.compare(first, 2, "//") != 0) {
      break;
    }
    out += '\n';
    out += above;
  }
  return out;
}

std::string SimpleCallName(const std::string& name) {
  size_t pos = name.rfind("::");
  return pos == std::string::npos ? name : name.substr(pos + 2);
}

// Base for the three data-flow rules: WholeProgram feeding plus a shared
// DataFlow built once per lint run, with per-line dedup.
class DataFlowRule : public Rule {
 public:
  DataFlowRule(std::shared_ptr<WholeProgram> wp,
               std::shared_ptr<DataFlowCache> cache)
      : wp_(std::move(wp)), cache_(std::move(cache)) {}

  void CheckFile(const SourceFile& file, DiagSink& /*sink*/) override {
    wp_->AddFile(file);
  }

  void Finish(DiagSink& sink) override {
    wp_->EnsureAnalyzed();
    reported_.clear();
    Report(cache_->Ensure(*wp_), sink);
    cache_->Release();
    wp_->Release();
  }

 protected:
  virtual void Report(const DataFlow& df, DiagSink& sink) = 0;

  void AddOnce(const std::string& file, size_t line, const std::string& what,
               const std::string& fixit, DiagSink& sink) {
    if (!reported_.emplace(file, line).second) {
      return;
    }
    sink.Add({file, line, std::string(name()), what, fixit});
  }

  bool JustifiedBy(const std::string& rel_path, size_t line,
                   const char* tag) const {
    const SourceFile* file = wp_->file(rel_path);
    return file != nullptr &&
           NearbyCommentText(*file, line).find(tag) != std::string::npos;
  }

  std::shared_ptr<WholeProgram> wp_;
  std::shared_ptr<DataFlowCache> cache_;

 private:
  std::set<std::pair<std::string, size_t>> reported_;
};

// First forbidden source bit set in `prov`, or 0.
Provenance FirstBadBit(Provenance prov) {
  for (Provenance bit : {kProvThreadId, kProvSlotIndex, kProvPointer,
                         kProvClock, kProvUntrusted}) {
    if ((prov & bit) != 0) {
      return bit;
    }
  }
  return 0;
}

class RngStreamRule : public DataFlowRule {
 public:
  using DataFlowRule::DataFlowRule;

  std::string_view name() const override { return "rng-stream-discipline"; }
  std::string_view description() const override {
    return "RNG constructions and Seed() calls in the FM_HOT_PATH closure "
           "must trace their seed to WalkerSeed(chunk_seed, walker_index); "
           "thread-id/slot/pointer/clock-derived seeds break walk "
           "determinism";
  }

 protected:
  void Report(const DataFlow& df, DiagSink& sink) override {
    const std::vector<FunctionInfo>& fns = wp_->functions();
    for (size_t i = 0; i < fns.size(); ++i) {
      if (!wp_->IsHot(i)) {
        continue;
      }
      const FunctionInfo& fn = fns[i];
      const std::string& chain = wp_->HotChain(i);
      df.Visit(
          i,
          [&](const Statement& stmt, const VarState& state) {
            // `Rng rng(seed_expr)` — any type spelled ...Rng.
            bool rng_decl =
                stmt.is_decl && !stmt.decl_type.empty() &&
                (stmt.decl_type == "Rng" ||
                 (stmt.decl_type.size() > 3 &&
                  stmt.decl_type.compare(stmt.decl_type.size() - 3, 3,
                                         "Rng") == 0));
            if (rng_decl) {
              CheckSeed(df.Eval(stmt.value, state), fn, stmt.line,
                        "RNG construction", chain, sink);
            }
            for (const StmtCall& call : stmt.calls) {
              if (SimpleCallName(call.name) == "Seed" && !call.args.empty()) {
                CheckSeed(df.Eval(call.args[0], state), fn, call.line,
                          "Seed() call", chain, sink);
              }
            }
          },
          nullptr);
    }
  }

 private:
  void CheckSeed(Provenance prov, const FunctionInfo& fn, size_t line,
                 const char* what, const std::string& chain, DiagSink& sink) {
    Provenance bad = FirstBadBit(prov);
    if (bad != 0) {
      AddOnce(fn.file, line,
              std::string(what) + " seeded from " +
                  ProvenanceSourceName(bad) +
                  "; streams must be walker-indexed or walks change with "
                  "placement/pool size [hot path: " +
                  chain + "]",
              "seed with WalkerSeed(chunk_seed, walker_index) so each walker "
              "owns one deterministic stream",
              sink);
      return;
    }
    if ((prov & kProvWalkerSeed) == 0) {
      AddOnce(fn.file, line,
              std::string(what) + " whose seed does not trace to "
                  "WalkerSeed(chunk_seed, walker_index) provenance [hot "
                  "path: " +
                  chain + "]",
              "derive the seed from WalkerSeed(chunk_seed, walker_index) "
              "(src/core/interleave.h)",
              sink);
    }
  }
};

class UntrustedInputTaintRule : public DataFlowRule {
 public:
  using DataFlowRule::DataFlowRule;

  std::string_view name() const override { return "untrusted-input-taint"; }
  std::string_view description() const override {
    return "header-derived scalars (LoadScalar / MappedSpan) are tainted "
           "until bounds-checked; tainted allocation sizes, array indices, "
           "and loop bounds need a `taint:` justification";
  }

 protected:
  void Report(const DataFlow& df, DiagSink& sink) override {
    static const std::set<std::string> kAllocTypes = {"vector", "string",
                                                      "deque", "basic_string"};
    static const std::set<std::string> kSizeCalls = {
        "resize", "reserve", "malloc", "calloc", "realloc", "aligned_alloc"};
    const std::vector<FunctionInfo>& fns = wp_->functions();
    for (size_t i = 0; i < fns.size(); ++i) {
      const FunctionInfo& fn = fns[i];
      df.Visit(
          i,
          [&](const Statement& stmt, const VarState& state) {
            if (stmt.is_decl && kAllocTypes.count(stmt.decl_type) != 0 &&
                (df.Eval(stmt.value, state) & kProvUntrusted) != 0) {
              Finding(fn, stmt.line, "allocation size", sink);
            }
            for (const StmtCall& call : stmt.calls) {
              if (kSizeCalls.count(SimpleCallName(call.name)) == 0) {
                continue;
              }
              for (const auto& arg : call.args) {
                if ((df.Eval(arg, state) & kProvUntrusted) != 0) {
                  Finding(fn, call.line, "allocation size", sink);
                  break;
                }
              }
            }
            ScanBrackets(df, fn, stmt, state, sink);
          },
          [&](const BasicBlock& block, const VarState& state) {
            if (block.cond != BasicBlock::Cond::kLoop ||
                block.cond_tokens.empty()) {
              return;
            }
            if ((df.Eval(block.cond_tokens, state) & kProvUntrusted) != 0) {
              Finding(fn, block.cond_line, "loop bound", sink);
            }
          });
    }
  }

 private:
  // `new T[n]` and `a[i]` sinks: the bracketed expression itself.
  void ScanBrackets(const DataFlow& df, const FunctionInfo& fn,
                    const Statement& stmt, const VarState& state,
                    DiagSink& sink) {
    const std::vector<Token>& toks = stmt.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].text != "[") {
        continue;
      }
      bool indexes = i > 0 && (toks[i - 1].kind == Token::Kind::kIdent ||
                               toks[i - 1].text == "]" ||
                               toks[i - 1].text == ")");
      if (!indexes) {
        continue;  // lambda introducer / attribute
      }
      int depth = 0;
      std::vector<Token> inner;
      size_t j = i;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "[") {
          ++depth;
          if (depth == 1) {
            continue;
          }
        } else if (toks[j].text == "]" && --depth == 0) {
          break;
        }
        inner.push_back(toks[j]);
      }
      if (!inner.empty() &&
          (df.Eval(inner, state) & kProvUntrusted) != 0) {
        bool is_new = i >= 2 && toks[i - 2].text == "new";
        Finding(fn, toks[i].line,
                is_new ? "allocation size" : "array index", sink);
      }
      i = j;
    }
  }

  void Finding(const FunctionInfo& fn, size_t line, const char* sink_kind,
               DiagSink& sink) {
    if (JustifiedBy(fn.file, line, "taint:")) {
      return;
    }
    AddOnce(fn.file, line,
            std::string("untrusted header-derived value reaches ") +
                sink_kind + " without a bounds check; a corrupt file "
                "controls it",
            "compare it against the file size / an explicit bound first, or "
            "justify with `// taint: <why>`",
            sink);
  }
};

class RelaxedPublicationRule : public DataFlowRule {
 public:
  using DataFlowRule::DataFlowRule;

  std::string_view name() const override { return "relaxed-publication"; }
  std::string_view description() const override {
    return "a relaxed atomic store must state its discipline (single-writer "
           "/ no concurrent writers / ordered by / commutative) and must not "
           "publish pointer-derived values; loads pairing with a "
           "pointer-publishing relaxed store are flagged too";
  }

 protected:
  void Report(const DataFlow& df, DiagSink& sink) override {
    static const char* kDisciplines[] = {"single-writer",
                                         "no concurrent writers",
                                         "ordered by", "commutative"};
    const std::vector<FunctionInfo>& fns = wp_->functions();
    std::set<std::string> pointer_published;
    struct Load {
      std::string key;
      std::string file;
      size_t line;
    };
    std::vector<Load> loads;
    for (size_t i = 0; i < fns.size(); ++i) {
      const FunctionInfo& fn = fns[i];
      std::string enclosing;
      size_t cut = fn.qualified.rfind("::");
      if (cut != std::string::npos) {
        enclosing = fn.qualified.substr(0, cut);
      }
      df.Visit(
          i,
          [&](const Statement& stmt, const VarState& state) {
            for (const StmtCall& call : stmt.calls) {
              bool relaxed = false;
              for (const auto& arg : call.args) {
                for (const Token& t : arg) {
                  if (t.text == "memory_order_relaxed") {
                    relaxed = true;
                  }
                }
              }
              if (!relaxed) {
                continue;
              }
              std::string simple = SimpleCallName(call.name);
              std::string key =
                  NormalizeLockName(call.receiver, enclosing);
              if (simple == "load") {
                loads.push_back({std::move(key), fn.file, call.line});
                continue;
              }
              if (simple != "store" || call.args.empty()) {
                continue;  // fetch_add/fetch_sub are commutative by shape
              }
              Provenance prov = df.Eval(call.args[0], state);
              if ((prov & kProvPointer) != 0) {
                pointer_published.insert(key);
                AddOnce(fn.file, call.line,
                        "relaxed store publishes a pointer-derived value "
                        "through '" +
                            key + "'; a reader can dereference before the "
                            "pointee's writes are visible",
                        "publish with memory_order_release (and pair loads "
                        "with acquire)",
                        sink);
                continue;
              }
              bool disciplined = false;
              for (const char* marker : kDisciplines) {
                if (JustifiedBy(fn.file, call.line, marker)) {
                  disciplined = true;
                  break;
                }
              }
              if (!disciplined) {
                AddOnce(fn.file, call.line,
                        "relaxed store to '" + key +
                            "' without a stated discipline; say which "
                            "single-writer / ordering argument makes the "
                            "missing fence sound",
                        "extend the `relaxed:` comment with `single-writer`, "
                        "`no concurrent writers`, `ordered by <edge>`, or "
                        "`commutative`",
                        sink);
              }
            }
          },
          nullptr);
    }
    for (const Load& load : loads) {
      if (pointer_published.count(load.key) != 0) {
        AddOnce(load.file, load.line,
                "relaxed load of '" + load.key +
                    "' pairs with a relaxed store that publishes a pointer; "
                    "the consumer needs an acquire edge",
                "load with memory_order_acquire (the store side should be "
                "release)",
                sink);
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeLayerDagRule() {
  return std::make_unique<LayerDagRule>();
}
std::unique_ptr<Rule> MakeHeaderDisciplineRule() {
  return std::make_unique<HeaderDisciplineRule>();
}
std::unique_ptr<Rule> MakeLockOrderRule(std::shared_ptr<WholeProgram> wp) {
  return std::make_unique<LockOrderRule>(std::move(wp));
}
std::unique_ptr<Rule> MakeHotPathAllocRule(std::shared_ptr<WholeProgram> wp) {
  return std::make_unique<HotPathAllocRule>(std::move(wp));
}
std::unique_ptr<Rule> MakeHotPathLockRule(std::shared_ptr<WholeProgram> wp) {
  return std::make_unique<HotPathLockRule>(std::move(wp));
}
std::unique_ptr<Rule> MakeHotPathIoRule(std::shared_ptr<WholeProgram> wp) {
  return std::make_unique<HotPathIoRule>(std::move(wp));
}
std::unique_ptr<Rule> MakeHotPathDivRule(std::shared_ptr<WholeProgram> wp) {
  return std::make_unique<HotPathDivRule>(std::move(wp));
}
std::unique_ptr<Rule> MakeTelemetryHotPathRule(
    std::shared_ptr<WholeProgram> wp) {
  return std::make_unique<TelemetryHotPathRule>(std::move(wp));
}

std::unique_ptr<Rule> MakeRngStreamRule(std::shared_ptr<WholeProgram> wp,
                                        std::shared_ptr<DataFlowCache> cache) {
  return std::make_unique<RngStreamRule>(std::move(wp), std::move(cache));
}
std::unique_ptr<Rule> MakeUntrustedInputTaintRule(
    std::shared_ptr<WholeProgram> wp, std::shared_ptr<DataFlowCache> cache) {
  return std::make_unique<UntrustedInputTaintRule>(std::move(wp),
                                                   std::move(cache));
}
std::unique_ptr<Rule> MakeRelaxedPublicationRule(
    std::shared_ptr<WholeProgram> wp, std::shared_ptr<DataFlowCache> cache) {
  return std::make_unique<RelaxedPublicationRule>(std::move(wp),
                                                  std::move(cache));
}

std::vector<std::unique_ptr<Rule>> MakeWholeProgramRules() {
  auto wp = std::make_shared<WholeProgram>(9);
  auto cache = std::make_shared<DataFlowCache>(3);
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(MakeLockOrderRule(wp));
  rules.push_back(MakeHotPathAllocRule(wp));
  rules.push_back(MakeHotPathLockRule(wp));
  rules.push_back(MakeHotPathIoRule(wp));
  rules.push_back(MakeHotPathDivRule(wp));
  rules.push_back(MakeTelemetryHotPathRule(wp));
  rules.push_back(MakeRngStreamRule(wp, cache));
  rules.push_back(MakeUntrustedInputTaintRule(wp, cache));
  rules.push_back(MakeRelaxedPublicationRule(wp, cache));
  return rules;
}

}  // namespace fmlint
