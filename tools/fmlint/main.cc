// fmlint CLI — lints the repo tree with the default rule set.
//
// Usage: fmlint [--json] [--sarif] [--fix] [--list-rules] <repo-root>
//
// Default output is one `path:line: [rule] message` line per diagnostic on
// stderr (plus a `fixit:` line when the rule has a suggestion); --json writes
// a machine-readable fmlint-v2 document (with per-rule wall-clock timings) to
// stdout instead, and --sarif writes a SARIF 2.1.0 document for code-scanning
// upload. --fix applies the mechanical fix-it hints (include-guard, raw-mutex,
// raw-clock) in place and inserts `// taint: FIXME` justification stubs above
// untrusted-input-taint findings before linting. Exit status: 0 clean,
// 1 violations, 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "tools/fmlint/fix.h"
#include "tools/fmlint/lint.h"
#include "tools/fmlint/rules.h"

namespace {

constexpr char kUsage[] =
    "usage: fmlint [--json] [--sarif] [--fix] [--list-rules] <repo-root>\n";

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool sarif = false;
  bool list_rules = false;
  bool fix = false;
  const char* root = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--sarif") == 0) {
      sarif = true;
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      list_rules = true;
    } else if (std::strcmp(argv[i], "--fix") == 0) {
      fix = true;
    } else if (root == nullptr && argv[i][0] != '-') {
      root = argv[i];
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (json && sarif) {
    std::fprintf(stderr, "fmlint: --json and --sarif are mutually exclusive\n");
    return 2;
  }
  bool machine = json || sarif;

  fmlint::Engine engine(fmlint::BuildDefaultRules());
  if (list_rules) {
    for (const auto& rule : engine.rules()) {
      std::printf("%-18s %s\n", std::string(rule->name()).c_str(),
                  std::string(rule->description()).c_str());
    }
    return 0;
  }
  if (root == nullptr) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (!std::filesystem::is_directory(root)) {
    std::fprintf(stderr, "fmlint: not a directory: %s\n", root);
    return 2;
  }

  if (fix) {
    fmlint::FixResult fixed = fmlint::FixTree(root);
    if (!machine) {
      std::fprintf(stderr, "fmlint: applied %zu fix(es) in %zu file(s)\n",
                   fixed.edits, fixed.files_changed);
    }
  }

  std::vector<fmlint::Diagnostic> diags = engine.LintTree(root);
  if (json) {
    std::fputs(fmlint::DiagnosticsToJson(diags, engine.files_linted(),
                                         &engine.rule_timings())
                   .c_str(),
               stdout);
  } else if (sarif) {
    std::fputs(fmlint::DiagnosticsToSarif(diags, engine.rules()).c_str(),
               stdout);
  } else {
    for (const fmlint::Diagnostic& d : diags) {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", d.file.c_str(), d.line,
                   d.rule.c_str(), d.message.c_str());
      if (!d.fixit.empty()) {
        std::fprintf(stderr, "    fixit: %s\n", d.fixit.c_str());
      }
    }
  }
  for (const fmlint::Diagnostic& d : diags) {
    if (d.rule == "io") {
      return 2;
    }
  }
  if (!diags.empty()) {
    if (!machine) {
      std::fprintf(stderr, "fmlint: %zu violation(s) in %zu files\n",
                   diags.size(), engine.files_linted());
    }
    return 1;
  }
  if (!machine) {
    std::printf("fmlint: %zu files clean\n", engine.files_linted());
  }
  return 0;
}
