// fmlint v3 whole-program layer — cross-TU symbol index, call graph, hot-path
// closure, and lock-acquisition-order graph over parsed FunctionInfos.
//
// Shared by the lock-order and hot-path-* rules through one WholeProgram
// instance so the tree is parsed once per lint run. Lifecycle: every consumer
// rule feeds files in CheckFile (AddFile dedups by path), calls
// EnsureAnalyzed() + queries in Finish, then Release(); when the last
// registered consumer releases, all state clears so the same Engine can lint
// again (the self-tests rely on that).
//
// Call resolution is deliberately under-approximate: a qualified call
// ("Tracer::Get") resolves exactly; a simple name resolves only when the whole
// tree has exactly one definition of that name. Ambiguous names (overload
// sets, template-hook pairs like NullMemHook/CacheSimHook::Load) resolve to
// nothing — which is why every leaf kernel is marked FM_HOT_PATH directly
// rather than relying on closure alone.
#ifndef TOOLS_FMLINT_CALLGRAPH_H_
#define TOOLS_FMLINT_CALLGRAPH_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/fmlint/lint.h"
#include "tools/fmlint/parse.h"

namespace fmlint {

class WholeProgram {
 public:
  // `consumers` = number of rules sharing this instance; Release() from each
  // of them resets the state for the next lint run.
  explicit WholeProgram(int consumers);

  void AddFile(const SourceFile& file);
  void EnsureAnalyzed();
  void Release();

  // --- queries; valid between EnsureAnalyzed() and the final Release() ---

  // Function definitions (declaration-only marker entries already merged in
  // and removed).
  const std::vector<FunctionInfo>& functions() const { return functions_; }

  // Stored copy of a fed file, for justification-comment lookups.
  const SourceFile* file(const std::string& rel_path) const;

  // Definition indices a call name resolves to (empty when unknown or
  // ambiguous).
  std::vector<size_t> Resolve(const std::string& call_name) const;

  // Hot closure: indices of functions that are FM_HOT_PATH or transitively
  // called from one, and the qualified call chain from the nearest hot root
  // ("StepKernel::SampleVp -> SampleVpNode2Vec"; just the name for roots).
  bool IsHot(size_t fn_index) const;
  const std::string& HotChain(size_t fn_index) const;

  struct LockEdge {
    std::string from;  // lock held
    std::string to;    // lock acquired while holding `from`
    std::string file;
    size_t line = 0;
    std::string note;  // human context: which function / call produced it
  };
  // Deduplicated acquired-before edges.
  const std::vector<LockEdge>& lock_edges() const { return lock_edges_; }
  // Elementary cycles found in the lock graph, canonically rotated, as the
  // edge list around each cycle. Empty means the lock order is a DAG.
  const std::vector<std::vector<LockEdge>>& lock_cycles() const {
    return lock_cycles_;
  }

 private:
  void BuildIndex();
  void BuildHotClosure();
  void BuildLockGraph();
  const std::set<std::string>& AcquiredSet(size_t fn_index);

  int consumers_;
  int releases_ = 0;
  bool analyzed_ = false;

  std::map<std::string, SourceFile> files_;  // rel_path -> stored copy
  std::vector<FunctionInfo> functions_;      // definitions only, post-merge

  std::map<std::string, std::vector<size_t>> by_qualified_;
  std::map<std::string, std::set<std::string>> by_simple_;

  std::vector<std::string> hot_chain_;  // "" = not hot

  std::vector<std::set<std::string>> acquired_;  // memo for AcquiredSet
  std::vector<int> acquired_state_;              // 0 new / 1 on stack / 2 done

  std::vector<LockEdge> lock_edges_;
  std::vector<std::vector<LockEdge>> lock_cycles_;
};

}  // namespace fmlint

#endif  // TOOLS_FMLINT_CALLGRAPH_H_
