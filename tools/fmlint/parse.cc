#include "tools/fmlint/parse.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <string>

namespace fmlint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators the analyses care about. Merging them keeps the
// div rule from seeing `//`-free code like `a /= b` as two tokens and keeps
// `::` qualification walking simple. Longest match first.
constexpr const char* kMultiPunct[] = {
    "...", "->*", "<<=", ">>=", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++", "--",
};

// Control/expression keywords that look like calls when followed by `(`.
const std::set<std::string>& CallKeywords() {
  static const std::set<std::string> kws = {
      "if",       "for",      "while",    "switch",   "return", "sizeof",
      "alignof",  "catch",    "new",      "delete",   "throw",  "decltype",
      "noexcept", "int",      "char",     "bool",     "float",  "double",
      "void",     "auto",     "short",    "long",     "unsigned",
      "signed",   "typename", "constexpr"};
  return kws;
}

// Macro-like: all caps/digits/underscores with at least one underscore or
// length > 3 (FM_REQUIRES, TEST, FM_DCHECK_LT...). Such identifiers never name
// a function *definition* in this tree.
bool IsMacroLike(const std::string& s) {
  if (s.empty() || !std::isupper(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

bool IsPreprocessorLine(const std::string& line) {
  size_t first = line.find_first_not_of(" \t");
  return first != std::string::npos && line[first] == '#';
}

bool EndsWithContinuation(const std::string& line) {
  size_t last = line.find_last_not_of(" \t");
  return last != std::string::npos && line[last] == '\\';
}

}  // namespace

std::vector<Token> Tokenize(const SourceFile& file) {
  std::vector<Token> tokens;
  bool in_directive = false;
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    bool directive = in_directive || IsPreprocessorLine(line);
    in_directive = directive && EndsWithContinuation(line);
    if (directive) {
      continue;
    }
    size_t i = 0;
    while (i < line.size()) {
      char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (IsIdentStart(c)) {
        size_t begin = i;
        while (i < line.size() && IsIdentChar(line[i])) {
          ++i;
        }
        std::string text = line.substr(begin, i - begin);
        // Merge `operator` with its symbol so `operator()` is one name.
        if (text == "operator" && i < line.size()) {
          size_t j = i;
          while (j < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[j]))) {
            ++j;
          }
          static const std::string kOpChars = "+-*/%^&|~!<>=[](),";
          size_t k = j;
          while (k < line.size() && k - j < 3 &&
                 kOpChars.find(line[k]) != std::string::npos) {
            ++k;
          }
          if (k > j) {
            text += line.substr(j, k - j);
            i = k;
          }
        }
        tokens.push_back({Token::Kind::kIdent, std::move(text), li + 1, begin});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t begin = i;
        while (i < line.size() &&
               (IsIdentChar(line[i]) || line[i] == '.' || line[i] == '\'')) {
          ++i;
        }
        tokens.push_back({Token::Kind::kNumber, line.substr(begin, i - begin),
                          li + 1, begin});
        continue;
      }
      bool matched = false;
      for (const char* op : kMultiPunct) {
        size_t len = std::string_view(op).size();
        if (line.compare(i, len, op) == 0) {
          tokens.push_back({Token::Kind::kPunct, op, li + 1, i});
          i += len;
          matched = true;
          break;
        }
      }
      if (!matched) {
        tokens.push_back({Token::Kind::kPunct, std::string(1, c), li + 1, i});
        ++i;
      }
    }
  }
  return tokens;
}

std::string NormalizeLockName(const std::string& expr,
                              const std::string& enclosing_class) {
  // Tokenize the expression crudely on identifiers; keep `::` qualification,
  // drop an object designator before `.` / `->`.
  std::string cleaned;
  for (char c : expr) {
    if (!std::isspace(static_cast<unsigned char>(c))) {
      cleaned += c;
    }
  }
  // Take the component after the last `.` or `->`.
  size_t dot = cleaned.rfind('.');
  size_t arrow = cleaned.rfind("->");
  size_t cut = std::string::npos;
  if (dot != std::string::npos) {
    cut = dot + 1;
  }
  if (arrow != std::string::npos && (cut == std::string::npos || arrow + 2 > cut)) {
    cut = arrow + 2;
  }
  std::string name = cut == std::string::npos ? cleaned : cleaned.substr(cut);
  if (name.empty()) {
    return cleaned;
  }
  if (name.find("::") != std::string::npos) {
    return name;
  }
  // Member-style names (trailing underscore, the repo convention) qualify with
  // the enclosing class so `mutex_` means the same lock in every method.
  if (!enclosing_class.empty() && name.size() > 1 && name.back() == '_') {
    return enclosing_class + "::" + name;
  }
  return name;
}

namespace {

struct Scope {
  enum class Kind { kNamespace, kClass, kBlock };
  Kind kind;
  std::string name;  // class name for kClass
};

// Walks back from tokens[i] (an identifier) over `ident :: ident :: ...`,
// returning the full spelled chain and the index of its first token.
std::string QualifiedChainEndingAt(const std::vector<Token>& toks, size_t i,
                                   size_t* first_index) {
  std::string chain = toks[i].text;
  size_t begin = i;
  while (begin >= 2 && toks[begin - 1].text == "::" &&
         toks[begin - 2].kind == Token::Kind::kIdent) {
    chain = toks[begin - 2].text + "::" + chain;
    begin -= 2;
  }
  // A leading bare `::` (global qualification) is dropped.
  if (first_index != nullptr) {
    *first_index = begin;
  }
  return chain;
}

constexpr size_t kNpos = static_cast<size_t>(-1);

// Finds the function-name candidate in a statement prefix: the first `(` whose
// preceding token is a plain (non-macro-like, non-keyword) identifier chain.
// Returns the index of the name token, or kNpos.
size_t FindFunctionName(const std::vector<Token>& toks) {
  for (size_t i = 1; i < toks.size(); ++i) {
    if (toks[i].text != "(" || toks[i].kind != Token::Kind::kPunct) {
      continue;
    }
    const Token& prev = toks[i - 1];
    if (prev.kind != Token::Kind::kIdent) {
      continue;
    }
    std::string name = prev.text;
    bool dtor = i >= 2 && toks[i - 2].text == "~";
    if (!dtor && (IsMacroLike(name) || CallKeywords().count(name) != 0)) {
      continue;
    }
    return i - 1;
  }
  return kNpos;
}

bool ContainsKeywordAtAngleDepthZero(const std::vector<Token>& toks,
                                     const char* kw, size_t* index) {
  int angle = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::Kind::kPunct) {
      if (t.text == "<") {
        ++angle;
      } else if (t.text == ">") {
        angle = std::max(0, angle - 1);
      } else if (t.text == ">>") {
        angle = std::max(0, angle - 2);
      }
    } else if (angle == 0 && t.kind == Token::Kind::kIdent && t.text == kw) {
      if (index != nullptr) {
        *index = i;
      }
      return true;
    }
  }
  return false;
}

// Class-head name: the last plain identifier after the class/struct keyword,
// before a base-clause `:` or the end; macro-like identifiers (attribute
// macros such as FM_CAPABILITY) and their argument lists are skipped.
std::string ExtractClassName(const std::vector<Token>& toks, size_t class_kw) {
  std::string name;
  size_t i = class_kw + 1;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (t.kind == Token::Kind::kIdent) {
      if (IsMacroLike(t.text)) {
        ++i;
        if (i < toks.size() && toks[i].text == "(") {
          int depth = 0;
          while (i < toks.size()) {
            if (toks[i].text == "(") ++depth;
            if (toks[i].text == ")" && --depth == 0) break;
            ++i;
          }
          ++i;
        }
        continue;
      }
      name = t.text;
      ++i;
      continue;
    }
    if (t.text == ":") {
      break;  // base clause; the name precedes it
    }
    if (t.text == "<") {
      break;  // template specialization head; base name already captured
    }
    ++i;
  }
  return name;
}

bool HasTopLevelAssign(const std::vector<Token>& toks) {
  int depth = 0;
  for (const Token& t : toks) {
    if (t.kind != Token::Kind::kPunct) {
      continue;
    }
    if (t.text == "(" || t.text == "[" || t.text == "<") {
      ++depth;
    } else if (t.text == ")" || t.text == "]" || t.text == ">") {
      depth = std::max(0, depth - 1);
    } else if (depth == 0 && t.text == "=") {
      return true;
    }
  }
  return false;
}

// Collects FM_HOT_PATH / FM_REQUIRES(...) / FM_ACQUIRE(...) markers from a
// declaration prefix into `fn`.
void CollectMarkers(const std::vector<Token>& toks,
                    const std::string& enclosing_class, FunctionInfo* fn) {
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) {
      continue;
    }
    if (toks[i].text == "FM_HOT_PATH") {
      fn->hot = true;
      continue;
    }
    bool is_requires = toks[i].text == "FM_REQUIRES";
    if (!is_requires && toks[i].text != "FM_ACQUIRE") {
      continue;
    }
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") {
      continue;
    }
    std::vector<std::string>* dest =
        is_requires ? &fn->requires_locks : &fn->acquires_locks;
    // Split the argument list on top-level commas.
    size_t j = i + 1;
    int depth = 0;
    std::string arg;
    for (; j < toks.size(); ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") {
        if (++depth == 1) {
          continue;
        }
      }
      if (t == ")" && --depth == 0) {
        break;
      }
      if (t == "," && depth == 1) {
        if (!arg.empty()) {
          dest->push_back(NormalizeLockName(arg, enclosing_class));
        }
        arg.clear();
        continue;
      }
      arg += t;
    }
    if (!arg.empty()) {
      dest->push_back(NormalizeLockName(arg, enclosing_class));
    }
  }
}

// Extracts parameter names from the `( ... )` starting right after the
// function name at `name_idx`. Each top-level-comma fragment's parameter name
// is its last plain identifier before any default-value `=`; a `*` anywhere
// in the fragment marks a pointer. `void`, `...`, and nameless parameters
// contribute placeholder entries so positions stay aligned with call
// arguments.
std::vector<ParamInfo> ExtractParams(const std::vector<Token>& toks,
                                     size_t name_idx) {
  std::vector<ParamInfo> params;
  if (name_idx + 1 >= toks.size() || toks[name_idx + 1].text != "(") {
    return params;
  }
  int depth = 0;
  ParamInfo cur;
  std::string last_ident;
  bool defaulted = false;
  auto flush = [&]() {
    cur.name = defaulted || last_ident == "void" ? cur.name : last_ident;
    if (cur.name == "void") {
      cur.name.clear();
    }
    params.push_back(cur);
    cur = ParamInfo{};
    last_ident.clear();
    defaulted = false;
  };
  bool any = false;
  for (size_t i = name_idx + 1; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "(" || t == "[" || t == "{") {
      if (++depth == 1) {
        continue;
      }
    } else if (t == ")" || t == "]" || t == "}") {
      if (--depth == 0) {
        if (any || !last_ident.empty() || cur.is_pointer) {
          flush();
        }
        break;
      }
    }
    if (depth != 1) {
      continue;
    }
    if (t == ",") {
      flush();
      any = true;
      continue;
    }
    if (t == "=") {
      // Default value: the name has already been seen.
      cur.name = last_ident;
      defaulted = true;
      continue;
    }
    if (t == "*") {
      cur.is_pointer = true;
      continue;
    }
    if (toks[i].kind == Token::Kind::kIdent && !IsMacroLike(t) &&
        CallKeywords().count(t) == 0 && t != "const") {
      last_ident = t;
      any = true;
    }
  }
  // A lone nameless `void` parameter list collapses to nothing.
  if (params.size() == 1 && params[0].name.empty() && !params[0].is_pointer) {
    params.clear();
  }
  return params;
}

std::string JoinClassScopes(const std::vector<Scope>& scopes) {
  std::string joined;
  for (const Scope& s : scopes) {
    if (s.kind == Scope::Kind::kClass && !s.name.empty()) {
      if (!joined.empty()) {
        joined += "::";
      }
      joined += s.name;
    }
  }
  return joined;
}

// Names of RAII lock guard types (fm and std spellings; std ones are banned by
// raw-mutex tree-wide but fixtures and future code still analyze correctly).
bool IsLockGuardType(const std::string& base_type) {
  return base_type == "MutexLock" || base_type == "lock_guard" ||
         base_type == "unique_lock" || base_type == "scoped_lock" ||
         base_type == "shared_lock";
}

// Consumes a function body starting at the token after the opening brace.
// Returns the index just past the matching close brace.
size_t ParseBody(const std::vector<Token>& toks, size_t start,
                 const std::string& enclosing_class, FunctionInfo* fn) {
  int depth = 1;
  struct ActiveLock {
    std::string name;
    int depth;
  };
  std::vector<ActiveLock> lock_stack;
  auto held = [&]() {
    std::vector<std::string> out = fn->requires_locks;
    for (const ActiveLock& l : lock_stack) {
      out.push_back(l.name);
    }
    return out;
  };

  size_t i = start;
  while (i < toks.size() && depth > 0) {
    const Token& t = toks[i];
    if (t.kind == Token::Kind::kPunct) {
      if (t.text == "{") {
        ++depth;
      } else if (t.text == "}") {
        --depth;
        while (!lock_stack.empty() && lock_stack.back().depth > depth) {
          lock_stack.pop_back();
        }
        if (depth == 0) {
          ++i;
          break;
        }
      }
      fn->body.push_back(t);
      ++i;
      continue;
    }
    fn->body.push_back(t);
    // Identifier followed by `(`: a call, or a local declaration when an
    // identifier (type) directly precedes the name.
    if (t.kind == Token::Kind::kIdent && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      size_t chain_begin = kNpos;
      std::string chain = QualifiedChainEndingAt(toks, i, &chain_begin);
      const Token* before =
          chain_begin > start && chain_begin > 0 ? &toks[chain_begin - 1] : nullptr;
      bool is_decl = before != nullptr &&
                     (before->kind == Token::Kind::kIdent ||
                      before->text == ">" || before->text == ">>") &&
                     !IsMacroLike(before->text) &&
                     CallKeywords().count(before->text) == 0;
      if (is_decl) {
        // `Type var(args)`: recover the base type name.
        std::string base_type;
        if (before->kind == Token::Kind::kIdent) {
          base_type = before->text;
        } else {
          // Walk back over the template argument list to its base identifier.
          int angle = before->text == ">>" ? 2 : 1;
          size_t j = chain_begin - 1;
          while (j > 0 && angle > 0) {
            --j;
            const std::string& s = toks[j].text;
            if (s == ">") ++angle;
            if (s == ">>") angle += 2;
            if (s == "<") --angle;
          }
          if (j > 0 && toks[j - 1].kind == Token::Kind::kIdent) {
            base_type = toks[j - 1].text;
          }
        }
        if (IsLockGuardType(base_type)) {
          // Capture the constructor argument text.
          std::string arg;
          int pdepth = 0;
          for (size_t j = i + 1; j < toks.size(); ++j) {
            const std::string& s = toks[j].text;
            if (s == "(" && ++pdepth == 1) continue;
            if (s == ")" && --pdepth == 0) break;
            if (pdepth >= 1) {
              if (!arg.empty()) arg += ' ';
              arg += s;
            }
          }
          std::string lock = NormalizeLockName(arg, enclosing_class);
          fn->locks.push_back({lock, t.line, held()});
          lock_stack.push_back({std::move(lock), depth});
        } else if (!base_type.empty()) {
          fn->decls.push_back({base_type, t.text, t.line});
        }
      } else if (CallKeywords().count(t.text) == 0) {
        fn->calls.push_back({chain, t.line, held()});
      }
    }
    ++i;
  }
  return i;
}

}  // namespace

std::vector<FunctionInfo> ParseFunctions(const SourceFile& file) {
  std::vector<Token> toks = Tokenize(file);
  std::vector<FunctionInfo> functions;
  std::vector<Scope> scopes;
  std::vector<Token> pending;

  auto flush_declaration = [&]() {
    // A bodiless prototype only matters when it carries markers that must be
    // merged onto an out-of-line definition.
    bool has_marker = std::any_of(pending.begin(), pending.end(), [](const Token& t) {
      return t.kind == Token::Kind::kIdent &&
             (t.text == "FM_HOT_PATH" || t.text == "FM_REQUIRES" ||
              t.text == "FM_ACQUIRE");
    });
    if (!has_marker) {
      return;
    }
    size_t name_idx = FindFunctionName(pending);
    if (name_idx == kNpos) {
      return;
    }
    FunctionInfo fn;
    size_t chain_begin = kNpos;
    fn.qualified = QualifiedChainEndingAt(pending, name_idx, &chain_begin);
    fn.name = pending[name_idx].text;
    std::string cls = JoinClassScopes(scopes);
    if (fn.qualified.find("::") == std::string::npos && !cls.empty()) {
      fn.qualified = cls + "::" + fn.qualified;
    }
    fn.file = file.rel_path;
    fn.line = pending[name_idx].line;
    fn.declaration_only = true;
    CollectMarkers(pending, cls, &fn);
    functions.push_back(std::move(fn));
  };

  size_t i = 0;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (t.kind == Token::Kind::kPunct && t.text == ";") {
      flush_declaration();
      pending.clear();
      ++i;
      continue;
    }
    if (t.kind == Token::Kind::kPunct && t.text == "}") {
      if (!scopes.empty()) {
        scopes.pop_back();
      }
      pending.clear();
      ++i;
      continue;
    }
    if (t.kind == Token::Kind::kPunct && t.text == "{") {
      size_t kw_idx = 0;
      if (HasTopLevelAssign(pending)) {
        scopes.push_back({Scope::Kind::kBlock, ""});
      } else if (ContainsKeywordAtAngleDepthZero(pending, "namespace", &kw_idx)) {
        std::string name;
        if (kw_idx + 1 < pending.size() &&
            pending[kw_idx + 1].kind == Token::Kind::kIdent) {
          name = pending[kw_idx + 1].text;
        }
        scopes.push_back({Scope::Kind::kNamespace, std::move(name)});
      } else {
        size_t name_idx = FindFunctionName(pending);
        size_t class_kw = 0;
        bool has_class =
            ContainsKeywordAtAngleDepthZero(pending, "class", &class_kw) ||
            ContainsKeywordAtAngleDepthZero(pending, "struct", &class_kw) ||
            ContainsKeywordAtAngleDepthZero(pending, "union", &class_kw);
        if (name_idx != kNpos) {
          FunctionInfo fn;
          size_t chain_begin = kNpos;
          fn.qualified = QualifiedChainEndingAt(pending, name_idx, &chain_begin);
          fn.name = pending[name_idx].text;
          std::string cls = JoinClassScopes(scopes);
          std::string enclosing_class;
          if (fn.qualified.find("::") != std::string::npos) {
            enclosing_class = fn.qualified.substr(0, fn.qualified.rfind("::"));
          } else {
            enclosing_class = cls;
            if (!cls.empty()) {
              fn.qualified = cls + "::" + fn.qualified;
            }
          }
          fn.file = file.rel_path;
          fn.line = pending[name_idx].line;
          CollectMarkers(pending, enclosing_class, &fn);
          fn.params = ExtractParams(pending, name_idx);
          i = ParseBody(toks, i + 1, enclosing_class, &fn);
          functions.push_back(std::move(fn));
          pending.clear();
          continue;
        }
        if (has_class) {
          scopes.push_back(
              {Scope::Kind::kClass, ExtractClassName(pending, class_kw)});
        } else {
          scopes.push_back({Scope::Kind::kBlock, ""});
        }
      }
      pending.clear();
      ++i;
      continue;
    }
    pending.push_back(t);
    ++i;
  }
  return functions;
}

}  // namespace fmlint
