// fmlint v2 — repo-specific lint rules clang-tidy cannot express, as a small
// token-scanner rule engine.
//
// The engine owns file loading, comment/string stripping, the rule registry,
// suppression handling, and output formatting; rules (tools/fmlint/rules.h)
// only inspect prepared SourceFiles and emit Diagnostics. Everything is
// library code so the self-tests (tests/fmlint_test.cc) can lint in-memory
// fixture snippets through the exact production path.
//
// Suppression syntax (checked, not fire-and-forget):
//   fmlint:allow(<rule>)    in a comment: suppresses <rule> on that line only.
//   fmlint:disable(<rule>)  in a comment: suppresses <rule> from this line to
//                           the matching fmlint:enable(<rule>) or end of file.
//   fmlint:enable(<rule>)   closes the innermost open disable block for <rule>.
// A directive that suppresses nothing is itself an error (unused-suppression),
// so stale suppressions cannot accumulate; a directive naming an unknown rule
// or an enable with no open block is a bad-suppression error. Malformed
// directives (rule name not [a-z0-9-]) are ignored as plain comment text.
#ifndef TOOLS_FMLINT_LINT_H_
#define TOOLS_FMLINT_LINT_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fmlint {

struct Diagnostic {
  std::string file;   // repo-relative path
  size_t line = 0;    // 1-based
  std::string rule;
  std::string message;
  std::string fixit;  // optional suggested replacement / action; "" if none
};

// One source file prepared for rules: raw lines for comment-sensitive checks
// (suppressions, justification comments) and code lines with comment and
// string/char-literal contents blanked so keyword patterns only see real code.
struct SourceFile {
  std::string rel_path;          // repo-relative, '/'-separated
  std::vector<std::string> raw;
  std::vector<std::string> code;
  bool is_header = false;
};

class DiagSink {
 public:
  virtual ~DiagSink() = default;
  virtual void Add(Diagnostic diag) = 0;
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  // Called once per file, in scan order.
  virtual void CheckFile(const SourceFile& file, DiagSink& sink) = 0;
  // Called once after every file has been seen; whole-tree rules
  // (include-cycle) accumulate state in CheckFile and report here.
  virtual void Finish(DiagSink& sink);
};

// Replaces comments and string/char literal contents with spaces, preserving
// line structure.
std::string StripCommentsAndStrings(const std::string& text);

std::vector<std::string> SplitLines(const std::string& text);

// Builds a SourceFile (splitting, stripping, header detection) from raw text.
SourceFile PrepareSource(std::string rel_path, const std::string& text);

// Wall-clock seconds a rule spent across its CheckFile calls and Finish.
// Shared whole-program analyses (parse, call graph, data flow) are attributed
// to the rule whose Finish triggered them — the first consumer of each shared
// structure.
struct RuleTiming {
  std::string rule;
  double seconds = 0;
};

class Engine {
 public:
  explicit Engine(std::vector<std::unique_ptr<Rule>> rules);

  // Lints a set of (repo-relative path, content) pairs as one tree: runs every
  // rule, applies suppressions, and appends unused/bad-suppression errors.
  std::vector<Diagnostic> Lint(
      const std::vector<std::pair<std::string, std::string>>& files);

  // Reads and lints the standard source dirs (src, tests, bench, tools,
  // examples) under `root`, skipping tests/fmlint_fixtures (intentionally
  // rule-violating snippets). Unreadable files produce "io" diagnostics.
  std::vector<Diagnostic> LintTree(const std::string& root);

  size_t files_linted() const { return files_linted_; }
  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }
  // Per-rule wall-clock timings of the most recent Lint/LintTree call, in
  // registration order.
  const std::vector<RuleTiming>& rule_timings() const { return timings_; }

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
  size_t files_linted_ = 0;
  std::vector<RuleTiming> timings_;
};

// The registered rule set: the eleven per-line/per-tree rules
// (tools/fmlint/rules.cc) plus the eleven whole-program rules — layer-dag,
// header-discipline, lock-order, the hot-path family, telemetry-hot-path,
// and the data-flow trio rng-stream-discipline / untrusted-input-taint /
// relaxed-publication (tools/fmlint/analysis.cc).
std::vector<std::unique_ptr<Rule>> BuildDefaultRules();

// {"schema":"fmlint-v2","files":N,"violations":N,"diagnostics":[...]}.
// When `timings` is non-null a "timings" object (per-rule milliseconds plus
// "total_ms") is appended — additive, so fmlint-v2 consumers keep working.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diags,
                              size_t files_linted,
                              const std::vector<RuleTiming>* timings = nullptr);

// SARIF 2.1.0 document for code-scanning upload: one run, one result per
// diagnostic, rule metadata from the registry. Lines are clamped to >= 1
// (SARIF regions are 1-based; line-0 io diagnostics map to line 1).
std::string DiagnosticsToSarif(const std::vector<Diagnostic>& diags,
                               const std::vector<std::unique_ptr<Rule>>& rules);

}  // namespace fmlint

#endif  // TOOLS_FMLINT_LINT_H_
