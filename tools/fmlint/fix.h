// fmlint --fix: in-place application of the mechanical fix-it hints.
//
// Only rules whose fix is a pure textual substitution are auto-fixed:
//
//   include-guard  wrong guard token renamed to the path-derived one on the
//                  #ifndef / #define pair and the trailing #endif comment
//                  (a *missing* guard is reported but not inserted).
//   raw-mutex      std::lock_guard<std::mutex> / std::unique_lock<std::mutex>
//                  -> fm::MutexLock; std::condition_variable -> fm::CondVar;
//                  std::mutex -> fm::Mutex.
//   raw-clock      std::chrono::{steady,system,high_resolution}_clock::now()
//                  -> fm::TraceNowNs().
//
// Substitutions are located on the comment/string-blanked code lines and
// spliced into the raw lines at the same columns (PrepareSource guarantees
// they align), so matches inside comments or strings are never touched. Rule
// exemptions (src/util/sync.h, timer.h, ...) are honored, and any line
// carrying an fmlint: directive is left alone. Fixing runs to a fixpoint, so
// a second run is always a no-op (the idempotency test pins this).
#ifndef TOOLS_FMLINT_FIX_H_
#define TOOLS_FMLINT_FIX_H_

#include <cstddef>
#include <string>

namespace fmlint {

struct FixResult {
  size_t files_changed = 0;
  size_t edits = 0;
};

// Applies every mechanical fix to `text` (contents of `rel_path`), in place.
// Returns the number of edits applied (0 = unchanged).
size_t ApplyFixesToText(const std::string& rel_path, std::string* text);

// Walks the same directories as Engine::LintTree (skipping fixtures), fixing
// files on disk.
FixResult FixTree(const std::string& root);

}  // namespace fmlint

#endif  // TOOLS_FMLINT_FIX_H_
