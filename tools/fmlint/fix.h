// fmlint --fix: in-place application of the mechanical fix-it hints.
//
// Only rules whose fix is a pure textual substitution are auto-fixed:
//
//   include-guard  wrong guard token renamed to the path-derived one on the
//                  #ifndef / #define pair and the trailing #endif comment
//                  (a *missing* guard is reported but not inserted).
//   raw-mutex      std::lock_guard<std::mutex> / std::unique_lock<std::mutex>
//                  -> fm::MutexLock; std::condition_variable -> fm::CondVar;
//                  std::mutex -> fm::Mutex.
//   raw-clock      std::chrono::{steady,system,high_resolution}_clock::now()
//                  -> fm::TraceNowNs().
//
// Substitutions are located on the comment/string-blanked code lines and
// spliced into the raw lines at the same columns (PrepareSource guarantees
// they align), so matches inside comments or strings are never touched. Rule
// exemptions (src/util/sync.h, timer.h, ...) are honored, and any line
// carrying an fmlint: directive is left alone. Fixing runs to a fixpoint, so
// a second run is always a no-op (the idempotency test pins this).
//
// Beyond the textual substitutions, FixTree lints the tree once after the
// mechanical pass and inserts a `// taint: FIXME(fmlint --fix): ...`
// justification stub above every untrusted-input-taint finding, so a human
// can replace the FIXME with the real bound argument. A second run finds no
// taint diagnostics on those lines (the stub is the rule's escape hatch), so
// the whole --fix pipeline stays idempotent.
#ifndef TOOLS_FMLINT_FIX_H_
#define TOOLS_FMLINT_FIX_H_

#include <cstddef>
#include <string>
#include <vector>

namespace fmlint {

struct Diagnostic;

struct FixResult {
  size_t files_changed = 0;
  size_t edits = 0;
};

// Applies every mechanical fix to `text` (contents of `rel_path`), in place.
// Returns the number of edits applied (0 = unchanged).
size_t ApplyFixesToText(const std::string& rel_path, std::string* text);

// Inserts a `// taint: FIXME(fmlint --fix): <message>` stub line above each
// untrusted-input-taint diagnostic in `diags` that targets `rel_path`,
// matching the flagged line's indentation. Insertions are applied bottom-up
// so earlier diagnostics' line numbers stay valid. Returns insertions made.
size_t InsertTaintJustifications(const std::vector<Diagnostic>& diags,
                                 const std::string& rel_path,
                                 std::string* text);

// Walks the same directories as Engine::LintTree (skipping fixtures), fixing
// files on disk.
FixResult FixTree(const std::string& root);

}  // namespace fmlint

#endif  // TOOLS_FMLINT_FIX_H_
