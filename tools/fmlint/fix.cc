#include "tools/fmlint/fix.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <utility>
#include <vector>

#include "tools/fmlint/lint.h"

namespace fmlint {
namespace {

namespace fs = std::filesystem;

// Same path derivation as the include-guard rule.
std::string ExpectedGuardFor(const std::string& rel_path) {
  std::string guard;
  guard.reserve(rel_path.size() + 1);
  for (char c : rel_path) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

struct Substitution {
  const char* pattern;      // regex, matched against blanked code lines
  const char* replacement;  // literal splice
};

// Order matters: the guard types must be rewritten before bare std::mutex so
// `std::lock_guard<std::mutex>` doesn't decay into
// `std::lock_guard<fm::Mutex>`.
constexpr Substitution kMutexSubs[] = {
    {R"(std\s*::\s*lock_guard\s*<\s*std\s*::\s*mutex\s*>)", "fm::MutexLock"},
    {R"(std\s*::\s*unique_lock\s*<\s*std\s*::\s*mutex\s*>)", "fm::MutexLock"},
    {R"(std\s*::\s*condition_variable)", "fm::CondVar"},
    {R"(std\s*::\s*mutex\b)", "fm::Mutex"},
};

constexpr Substitution kClockSubs[] = {
    {R"(std\s*::\s*chrono\s*::\s*(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\(\s*\))",
     "fm::TraceNowNs()"},
};

bool MutexExempt(const std::string& rel_path) {
  return rel_path == "src/util/sync.h";
}

bool ClockExempt(const std::string& rel_path) {
  return rel_path == "src/util/timer.h" || rel_path == "src/util/trace.cc" ||
         rel_path == "src/util/perf_counters.cc";
}

// Applies one substitution pass over the file; matches are found on the code
// line and spliced into the raw line at the same columns. Lines carrying an
// fmlint: directive are never touched — a suppression means "leave this as
// is". Returns the number of edits.
size_t OnePass(const std::string& rel_path, std::vector<std::string>* raw) {
  std::string joined;
  for (const std::string& line : *raw) {
    joined += line;
    joined += '\n';
  }
  SourceFile file = PrepareSource(rel_path, joined);
  size_t edits = 0;

  auto apply = [&](const Substitution& sub) {
    const std::regex re(sub.pattern);
    for (size_t i = 0; i < file.code.size(); ++i) {
      if ((*raw)[i].find("fmlint:") != std::string::npos) {
        continue;
      }
      std::smatch m;
      if (!std::regex_search(file.code[i], m, re)) {
        continue;
      }
      // One match per line per pass; the fixpoint loop picks up the rest.
      size_t pos = static_cast<size_t>(m.position(0));
      (*raw)[i].replace(pos, static_cast<size_t>(m.length(0)),
                        sub.replacement);
      ++edits;
      // Raw and code lines have diverged on this line; stop this pattern's
      // pass here and let the next pass re-prepare.
      return;
    }
  };

  if (!MutexExempt(rel_path)) {
    for (const Substitution& sub : kMutexSubs) {
      apply(sub);
    }
  }
  if (!ClockExempt(rel_path)) {
    for (const Substitution& sub : kClockSubs) {
      apply(sub);
    }
  }

  // include-guard: rename a wrong guard token on the #ifndef/#define pair
  // (and the #endif trailer comment, which lives in raw).
  if (file.is_header && edits == 0) {
    std::string expected = ExpectedGuardFor(rel_path);
    static const std::regex ifndef_re(R"(^\s*#\s*ifndef\s+([A-Za-z0-9_]+))");
    static const std::regex define_re(R"(^\s*#\s*define\s+([A-Za-z0-9_]+))");
    for (size_t i = 0; i < file.code.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(file.code[i], m, ifndef_re)) {
        continue;
      }
      std::string actual = m[1].str();
      if (actual == expected) {
        break;
      }
      auto rename = [&](std::string* line) {
        size_t pos = line->find(actual);
        if (pos != std::string::npos) {
          line->replace(pos, actual.size(), expected);
          ++edits;
        }
      };
      rename(&(*raw)[i]);
      if (i + 1 < raw->size() &&
          std::regex_search(file.code[i + 1], m, define_re) &&
          m[1].str() == actual) {
        rename(&(*raw)[i + 1]);
      }
      for (size_t j = raw->size(); j > i + 1; --j) {
        if (file.code[j - 1].find("#endif") != std::string::npos) {
          rename(&(*raw)[j - 1]);
          break;
        }
      }
      break;
    }
  }
  return edits;
}

}  // namespace

size_t ApplyFixesToText(const std::string& rel_path, std::string* text) {
  std::vector<std::string> raw = SplitLines(*text);
  bool ends_with_newline = !text->empty() && text->back() == '\n';
  size_t total = 0;
  // Fixpoint with a generous bound; each pass applies at most one edit per
  // pattern, so the bound only guards against a pathological oscillation.
  for (int pass = 0; pass < 1000; ++pass) {
    size_t edits = OnePass(rel_path, &raw);
    if (edits == 0) {
      break;
    }
    total += edits;
  }
  if (total == 0) {
    return 0;
  }
  std::string out;
  for (size_t i = 0; i < raw.size(); ++i) {
    out += raw[i];
    if (i + 1 < raw.size() || ends_with_newline) {
      out += '\n';
    }
  }
  *text = std::move(out);
  return total;
}

size_t InsertTaintJustifications(const std::vector<Diagnostic>& diags,
                                 const std::string& rel_path,
                                 std::string* text) {
  // Collect target lines (1-based), dedup, sort descending so insertions
  // never shift a later target.
  std::vector<std::pair<size_t, const Diagnostic*>> targets;
  for (const Diagnostic& d : diags) {
    if (d.rule != "untrusted-input-taint" || d.file != rel_path ||
        d.line == 0) {
      continue;
    }
    bool seen = false;
    for (const auto& [line, diag] : targets) {
      if (line == d.line) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      targets.emplace_back(d.line, &d);
    }
  }
  std::sort(targets.begin(), targets.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (targets.empty()) {
    return 0;
  }

  std::vector<std::string> raw = SplitLines(*text);
  bool ends_with_newline = !text->empty() && text->back() == '\n';
  size_t inserted = 0;
  for (const auto& [line, diag] : targets) {
    if (line > raw.size()) {
      continue;
    }
    const std::string& flagged = raw[line - 1];
    std::string indent = flagged.substr(0, flagged.find_first_not_of(" \t"));
    if (indent.size() == flagged.size()) {
      indent.clear();  // blank line; no indentation to mirror
    }
    raw.insert(raw.begin() + static_cast<ptrdiff_t>(line - 1),
               indent + "// taint: FIXME(fmlint --fix): justify — " +
                   diag->message);
    ++inserted;
  }
  if (inserted == 0) {
    return 0;
  }
  std::string out;
  for (size_t i = 0; i < raw.size(); ++i) {
    out += raw[i];
    if (i + 1 < raw.size() || ends_with_newline) {
      out += '\n';
    }
  }
  *text = std::move(out);
  return inserted;
}

namespace {

// Shared tree walk: every lintable file under root, fixture snippets skipped.
std::vector<std::pair<fs::path, std::string>> LintableFiles(
    const fs::path& root_path) {
  static constexpr const char* kDirs[] = {"src", "tests", "bench", "tools",
                                          "examples"};
  std::vector<std::pair<fs::path, std::string>> out;
  for (const char* dir : kDirs) {
    fs::path sub = root_path / dir;
    if (!fs::is_directory(sub)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(sub)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      fs::path ext = entry.path().extension();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") {
        continue;
      }
      std::string rel = fs::relative(entry.path(), root_path).generic_string();
      if (rel.rfind("tests/fmlint_fixtures/", 0) == 0) {
        continue;
      }
      out.emplace_back(entry.path(), std::move(rel));
    }
  }
  return out;
}

}  // namespace

FixResult FixTree(const std::string& root) {
  FixResult result;
  fs::path root_path(root);
  for (const auto& [path, rel] : LintableFiles(root_path)) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    if (!in || !(buf << in.rdbuf())) {
      continue;
    }
    std::string text = buf.str();
    size_t edits = ApplyFixesToText(rel, &text);
    if (edits == 0) {
      continue;
    }
    std::ofstream outf(path, std::ios::binary | std::ios::trunc);
    outf << text;
    ++result.files_changed;
    result.edits += edits;
  }

  // Second stage: lint the (mechanically fixed) tree and drop taint
  // justification stubs above untrusted-input-taint findings.
  Engine engine(BuildDefaultRules());
  std::vector<Diagnostic> diags = engine.LintTree(root);
  std::vector<std::string> taint_files;
  for (const Diagnostic& d : diags) {
    if (d.rule == "untrusted-input-taint" &&
        std::find(taint_files.begin(), taint_files.end(), d.file) ==
            taint_files.end()) {
      taint_files.push_back(d.file);
    }
  }
  for (const std::string& rel : taint_files) {
    fs::path path = root_path / rel;
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    if (!in || !(buf << in.rdbuf())) {
      continue;
    }
    std::string text = buf.str();
    size_t edits = InsertTaintJustifications(diags, rel, &text);
    if (edits == 0) {
      continue;
    }
    std::ofstream outf(path, std::ios::binary | std::ios::trunc);
    outf << text;
    ++result.files_changed;
    result.edits += edits;
  }
  return result;
}

}  // namespace fmlint
