#include "tools/fmlint/fix.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <vector>

#include "tools/fmlint/lint.h"

namespace fmlint {
namespace {

namespace fs = std::filesystem;

// Same path derivation as the include-guard rule.
std::string ExpectedGuardFor(const std::string& rel_path) {
  std::string guard;
  guard.reserve(rel_path.size() + 1);
  for (char c : rel_path) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

struct Substitution {
  const char* pattern;      // regex, matched against blanked code lines
  const char* replacement;  // literal splice
};

// Order matters: the guard types must be rewritten before bare std::mutex so
// `std::lock_guard<std::mutex>` doesn't decay into
// `std::lock_guard<fm::Mutex>`.
constexpr Substitution kMutexSubs[] = {
    {R"(std\s*::\s*lock_guard\s*<\s*std\s*::\s*mutex\s*>)", "fm::MutexLock"},
    {R"(std\s*::\s*unique_lock\s*<\s*std\s*::\s*mutex\s*>)", "fm::MutexLock"},
    {R"(std\s*::\s*condition_variable)", "fm::CondVar"},
    {R"(std\s*::\s*mutex\b)", "fm::Mutex"},
};

constexpr Substitution kClockSubs[] = {
    {R"(std\s*::\s*chrono\s*::\s*(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\(\s*\))",
     "fm::TraceNowNs()"},
};

bool MutexExempt(const std::string& rel_path) {
  return rel_path == "src/util/sync.h";
}

bool ClockExempt(const std::string& rel_path) {
  return rel_path == "src/util/timer.h" || rel_path == "src/util/trace.cc" ||
         rel_path == "src/util/perf_counters.cc";
}

// Applies one substitution pass over the file; matches are found on the code
// line and spliced into the raw line at the same columns. Lines carrying an
// fmlint: directive are never touched — a suppression means "leave this as
// is". Returns the number of edits.
size_t OnePass(const std::string& rel_path, std::vector<std::string>* raw) {
  std::string joined;
  for (const std::string& line : *raw) {
    joined += line;
    joined += '\n';
  }
  SourceFile file = PrepareSource(rel_path, joined);
  size_t edits = 0;

  auto apply = [&](const Substitution& sub) {
    const std::regex re(sub.pattern);
    for (size_t i = 0; i < file.code.size(); ++i) {
      if ((*raw)[i].find("fmlint:") != std::string::npos) {
        continue;
      }
      std::smatch m;
      if (!std::regex_search(file.code[i], m, re)) {
        continue;
      }
      // One match per line per pass; the fixpoint loop picks up the rest.
      size_t pos = static_cast<size_t>(m.position(0));
      (*raw)[i].replace(pos, static_cast<size_t>(m.length(0)),
                        sub.replacement);
      ++edits;
      // Raw and code lines have diverged on this line; stop this pattern's
      // pass here and let the next pass re-prepare.
      return;
    }
  };

  if (!MutexExempt(rel_path)) {
    for (const Substitution& sub : kMutexSubs) {
      apply(sub);
    }
  }
  if (!ClockExempt(rel_path)) {
    for (const Substitution& sub : kClockSubs) {
      apply(sub);
    }
  }

  // include-guard: rename a wrong guard token on the #ifndef/#define pair
  // (and the #endif trailer comment, which lives in raw).
  if (file.is_header && edits == 0) {
    std::string expected = ExpectedGuardFor(rel_path);
    static const std::regex ifndef_re(R"(^\s*#\s*ifndef\s+([A-Za-z0-9_]+))");
    static const std::regex define_re(R"(^\s*#\s*define\s+([A-Za-z0-9_]+))");
    for (size_t i = 0; i < file.code.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(file.code[i], m, ifndef_re)) {
        continue;
      }
      std::string actual = m[1].str();
      if (actual == expected) {
        break;
      }
      auto rename = [&](std::string* line) {
        size_t pos = line->find(actual);
        if (pos != std::string::npos) {
          line->replace(pos, actual.size(), expected);
          ++edits;
        }
      };
      rename(&(*raw)[i]);
      if (i + 1 < raw->size() &&
          std::regex_search(file.code[i + 1], m, define_re) &&
          m[1].str() == actual) {
        rename(&(*raw)[i + 1]);
      }
      for (size_t j = raw->size(); j > i + 1; --j) {
        if (file.code[j - 1].find("#endif") != std::string::npos) {
          rename(&(*raw)[j - 1]);
          break;
        }
      }
      break;
    }
  }
  return edits;
}

}  // namespace

size_t ApplyFixesToText(const std::string& rel_path, std::string* text) {
  std::vector<std::string> raw = SplitLines(*text);
  bool ends_with_newline = !text->empty() && text->back() == '\n';
  size_t total = 0;
  // Fixpoint with a generous bound; each pass applies at most one edit per
  // pattern, so the bound only guards against a pathological oscillation.
  for (int pass = 0; pass < 1000; ++pass) {
    size_t edits = OnePass(rel_path, &raw);
    if (edits == 0) {
      break;
    }
    total += edits;
  }
  if (total == 0) {
    return 0;
  }
  std::string out;
  for (size_t i = 0; i < raw.size(); ++i) {
    out += raw[i];
    if (i + 1 < raw.size() || ends_with_newline) {
      out += '\n';
    }
  }
  *text = std::move(out);
  return total;
}

FixResult FixTree(const std::string& root) {
  static constexpr const char* kDirs[] = {"src", "tests", "bench", "tools",
                                          "examples"};
  FixResult result;
  fs::path root_path(root);
  for (const char* dir : kDirs) {
    fs::path sub = root_path / dir;
    if (!fs::is_directory(sub)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(sub)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      fs::path ext = entry.path().extension();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") {
        continue;
      }
      std::string rel = fs::relative(entry.path(), root_path).generic_string();
      if (rel.rfind("tests/fmlint_fixtures/", 0) == 0) {
        continue;
      }
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buf;
      if (!in || !(buf << in.rdbuf())) {
        continue;
      }
      std::string text = buf.str();
      size_t edits = ApplyFixesToText(rel, &text);
      if (edits == 0) {
        continue;
      }
      std::ofstream outf(entry.path(), std::ios::binary | std::ios::trunc);
      outf << text;
      ++result.files_changed;
      result.edits += edits;
    }
  }
  return result;
}

}  // namespace fmlint
