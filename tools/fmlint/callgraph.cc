#include "tools/fmlint/callgraph.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <utility>

namespace fmlint {

WholeProgram::WholeProgram(int consumers) : consumers_(consumers) {}

void WholeProgram::AddFile(const SourceFile& file) {
  files_.emplace(file.rel_path, file);
}

const SourceFile* WholeProgram::file(const std::string& rel_path) const {
  auto it = files_.find(rel_path);
  return it == files_.end() ? nullptr : &it->second;
}

void WholeProgram::Release() {
  if (++releases_ < consumers_) {
    return;
  }
  releases_ = 0;
  analyzed_ = false;
  files_.clear();
  functions_.clear();
  by_qualified_.clear();
  by_simple_.clear();
  hot_chain_.clear();
  acquired_.clear();
  acquired_state_.clear();
  lock_edges_.clear();
  lock_cycles_.clear();
}

void WholeProgram::EnsureAnalyzed() {
  if (analyzed_) {
    return;
  }
  analyzed_ = true;

  std::vector<FunctionInfo> declarations;
  for (const auto& [path, file] : files_) {
    for (FunctionInfo& fn : ParseFunctions(file)) {
      if (fn.declaration_only) {
        declarations.push_back(std::move(fn));
      } else {
        functions_.push_back(std::move(fn));
      }
    }
  }
  // Merge markers from prototypes onto same-qualified-name definitions, so
  // `FM_HOT_PATH void Refill();` in a header marks the out-of-line body.
  for (const FunctionInfo& decl : declarations) {
    for (FunctionInfo& def : functions_) {
      if (def.qualified != decl.qualified) {
        continue;
      }
      def.hot = def.hot || decl.hot;
      for (const std::string& l : decl.requires_locks) {
        if (std::find(def.requires_locks.begin(), def.requires_locks.end(),
                      l) == def.requires_locks.end()) {
          def.requires_locks.push_back(l);
        }
      }
      for (const std::string& l : decl.acquires_locks) {
        if (std::find(def.acquires_locks.begin(), def.acquires_locks.end(),
                      l) == def.acquires_locks.end()) {
          def.acquires_locks.push_back(l);
        }
      }
    }
  }

  BuildIndex();
  BuildHotClosure();
  BuildLockGraph();
}

void WholeProgram::BuildIndex() {
  for (size_t i = 0; i < functions_.size(); ++i) {
    by_qualified_[functions_[i].qualified].push_back(i);
    by_simple_[functions_[i].name].insert(functions_[i].qualified);
  }
}

std::vector<size_t> WholeProgram::Resolve(const std::string& call_name) const {
  if (call_name.find("::") != std::string::npos) {
    auto it = by_qualified_.find(call_name);
    if (it != by_qualified_.end()) {
      return it->second;
    }
    // Suffix match: a call spelled `Tracer::Get` matches the definition
    // qualified `Tracer::Get` exactly above, but `Outer::Inner::F` also
    // matches a call spelled `Inner::F`. Require uniqueness.
    const std::vector<size_t>* found = nullptr;
    std::string suffix = "::" + call_name;
    for (const auto& [qual, defs] : by_qualified_) {
      if (qual.size() > suffix.size() &&
          qual.compare(qual.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        if (found != nullptr) {
          return {};  // ambiguous
        }
        found = &defs;
      }
    }
    return found != nullptr ? *found : std::vector<size_t>{};
  }
  auto it = by_simple_.find(call_name);
  if (it == by_simple_.end() || it->second.size() != 1) {
    return {};  // unknown or ambiguous simple name
  }
  return by_qualified_.at(*it->second.begin());
}

bool WholeProgram::IsHot(size_t fn_index) const {
  return fn_index < hot_chain_.size() && !hot_chain_[fn_index].empty();
}

const std::string& WholeProgram::HotChain(size_t fn_index) const {
  static const std::string kEmpty;
  return fn_index < hot_chain_.size() ? hot_chain_[fn_index] : kEmpty;
}

void WholeProgram::BuildHotClosure() {
  hot_chain_.assign(functions_.size(), "");
  std::deque<size_t> queue;
  for (size_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i].hot) {
      hot_chain_[i] = functions_[i].qualified;
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    size_t f = queue.front();
    queue.pop_front();
    for (const CallSite& call : functions_[f].calls) {
      for (size_t target : Resolve(call.name)) {
        if (!hot_chain_[target].empty()) {
          continue;
        }
        hot_chain_[target] =
            hot_chain_[f] + " -> " + functions_[target].qualified;
        queue.push_back(target);
      }
    }
  }
}

const std::set<std::string>& WholeProgram::AcquiredSet(size_t fn_index) {
  if (acquired_state_[fn_index] != 0) {
    // On-stack (call cycle) returns the partial set; done returns the memo.
    return acquired_[fn_index];
  }
  acquired_state_[fn_index] = 1;
  std::set<std::string>& out = acquired_[fn_index];
  const FunctionInfo& fn = functions_[fn_index];
  out.insert(fn.acquires_locks.begin(), fn.acquires_locks.end());
  for (const LockSite& site : fn.locks) {
    out.insert(site.lock);
  }
  for (const CallSite& call : fn.calls) {
    for (size_t target : Resolve(call.name)) {
      if (acquired_state_[target] == 1) {
        continue;
      }
      const std::set<std::string>& sub = AcquiredSet(target);
      out.insert(sub.begin(), sub.end());
    }
  }
  acquired_state_[fn_index] = 2;
  return out;
}

void WholeProgram::BuildLockGraph() {
  acquired_.assign(functions_.size(), {});
  acquired_state_.assign(functions_.size(), 0);

  std::set<std::pair<std::string, std::string>> seen;
  auto add_edge = [&](LockEdge edge) {
    if (seen.emplace(edge.from, edge.to).second) {
      lock_edges_.push_back(std::move(edge));
    }
  };

  for (size_t i = 0; i < functions_.size(); ++i) {
    const FunctionInfo& fn = functions_[i];
    // Direct nesting: a scoped lock taken while others are live.
    for (const LockSite& site : fn.locks) {
      for (const std::string& held : site.held_before) {
        add_edge({held, site.lock, fn.file, site.line,
                  "MutexLock in " + fn.qualified});
      }
    }
    // FM_ACQUIRE while FM_REQUIRES: the annotated acquisition nests inside
    // the caller-held locks.
    for (const std::string& held : fn.requires_locks) {
      for (const std::string& acq : fn.acquires_locks) {
        add_edge({held, acq, fn.file, fn.line,
                  "FM_ACQUIRE in " + fn.qualified});
      }
    }
    // Propagation: calling, with locks held, a function that (transitively)
    // acquires more locks.
    for (const CallSite& call : fn.calls) {
      if (call.held_locks.empty()) {
        continue;
      }
      for (size_t target : Resolve(call.name)) {
        for (const std::string& acq : AcquiredSet(target)) {
          for (const std::string& held : call.held_locks) {
            add_edge({held, acq, fn.file, call.line,
                      "call to " + functions_[target].qualified + " from " +
                          fn.qualified});
          }
        }
      }
    }
  }

  // Cycle detection: DFS with colors; every back edge closes one elementary
  // cycle, reported once in canonical rotation (lexicographically smallest
  // lock first).
  std::map<std::string, std::vector<const LockEdge*>> adj;
  for (const LockEdge& e : lock_edges_) {
    adj[e.from].push_back(&e);
  }
  std::map<std::string, int> color;  // 0 white / 1 grey / 2 black
  std::vector<const LockEdge*> stack;
  std::set<std::string> reported;

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    for (const LockEdge* e : adj[node]) {
      int c = color[e->to];
      if (c == 1) {
        // Back edge: the cycle is the stack suffix starting where e->to was
        // entered, plus this edge.
        std::vector<const LockEdge*> cycle;
        for (size_t i = 0; i < stack.size(); ++i) {
          if (!cycle.empty() || stack[i]->from == e->to) {
            cycle.push_back(stack[i]);
          }
        }
        cycle.push_back(e);
        // Canonical rotation for dedup across DFS orders.
        size_t best = 0;
        for (size_t i = 1; i < cycle.size(); ++i) {
          if (cycle[i]->from < cycle[best]->from) {
            best = i;
          }
        }
        std::vector<LockEdge> rotated;
        std::string key;
        for (size_t i = 0; i < cycle.size(); ++i) {
          const LockEdge* edge = cycle[(best + i) % cycle.size()];
          rotated.push_back(*edge);
          key += edge->from + "->";
        }
        if (reported.insert(key).second) {
          lock_cycles_.push_back(std::move(rotated));
        }
        continue;
      }
      if (c == 0) {
        stack.push_back(e);
        dfs(e->to);
        stack.pop_back();
      }
    }
    color[node] = 2;
  };
  for (const LockEdge& e : lock_edges_) {
    if (color[e.from] == 0) {
      dfs(e.from);
    }
  }
}

}  // namespace fmlint
