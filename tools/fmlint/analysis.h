// fmlint v3 whole-program analysis rules (see rules.h for the per-line
// catalog; DESIGN.md §7f for the architecture contracts these enforce).
//
//   layer-dag          #include edges must follow the declared layer manifest:
//                      util -> graph/gen/sampling/mem -> core/cachesim ->
//                      apps/baseline -> bench/tools/examples -> tests, with
//                      the explicit sibling edges gen->graph, sampling->graph,
//                      core->cachesim.
//   header-discipline  no including .cc files; src/<d>/internal/ headers are
//                      private to src/<d>/; the src/fm.h umbrella is for
//                      external consumers only, never included from src/.
//   lock-order         the acquired-before graph over fm::MutexLock /
//                      FM_REQUIRES / FM_ACQUIRE sites, propagated through the
//                      call graph, must stay acyclic (deadlock freedom).
//   hot-path-alloc     no heap allocation inside FM_HOT_PATH functions or
//                      anything they transitively call.
//   hot-path-lock      no mutex acquisition inside the hot-path closure.
//   hot-path-io        no blocking syscalls, I/O, or logging inside the
//                      hot-path closure.
//   hot-path-div       per-element `/` or `%` inside the hot-path closure
//                      needs an adjacent `div:` justification comment.
//   telemetry-hot-path no shared-atomic RMW (fetch_add etc.) or mutex-guarded
//                      telemetry registry calls inside the hot-path closure;
//                      hot metric updates use per-thread shard stores.
//
// Data-flow-backed families (tools/fmlint/dataflow.h; DESIGN.md §7h):
//
//   rng-stream-discipline  every RNG construction / Seed() call inside the
//                      FM_HOT_PATH closure must trace its seed expression to
//                      WalkerSeed(chunk_seed, walker_index) provenance; seeds
//                      derived from thread ids, ring-slot indices, pointers,
//                      or clocks break walk determinism (the PR 3 placement
//                      bug shape) and are findings.
//   untrusted-input-taint  scalars loaded from file headers (LoadScalar /
//                      MappedSpan) stay tainted until compared against a
//                      bound; tainted allocation sizes, array indices, and
//                      loop bounds are findings unless an adjacent
//                      `// taint: <why>` comment justifies them.
//   relaxed-publication    a relaxed atomic store must state its discipline
//                      (single-writer / no concurrent writers / ordered by /
//                      commutative) in its `relaxed:` comment, must never
//                      publish a pointer-derived value, and relaxed loads of
//                      a variable with a pointer-publishing relaxed store are
//                      findings too.
#ifndef TOOLS_FMLINT_ANALYSIS_H_
#define TOOLS_FMLINT_ANALYSIS_H_

#include <memory>
#include <vector>

#include "tools/fmlint/callgraph.h"
#include "tools/fmlint/dataflow.h"
#include "tools/fmlint/lint.h"

namespace fmlint {

std::unique_ptr<Rule> MakeLayerDagRule();
std::unique_ptr<Rule> MakeHeaderDisciplineRule();

// The call-graph-backed rules share one WholeProgram; construct it with a
// consumer count matching how many of these you register.
std::unique_ptr<Rule> MakeLockOrderRule(std::shared_ptr<WholeProgram> wp);
std::unique_ptr<Rule> MakeHotPathAllocRule(std::shared_ptr<WholeProgram> wp);
std::unique_ptr<Rule> MakeHotPathLockRule(std::shared_ptr<WholeProgram> wp);
std::unique_ptr<Rule> MakeHotPathIoRule(std::shared_ptr<WholeProgram> wp);
std::unique_ptr<Rule> MakeHotPathDivRule(std::shared_ptr<WholeProgram> wp);
std::unique_ptr<Rule> MakeTelemetryHotPathRule(std::shared_ptr<WholeProgram> wp);

// The data-flow-backed rules additionally share one DataFlowCache (same
// consumer-counted lifecycle).
std::unique_ptr<Rule> MakeRngStreamRule(std::shared_ptr<WholeProgram> wp,
                                        std::shared_ptr<DataFlowCache> cache);
std::unique_ptr<Rule> MakeUntrustedInputTaintRule(
    std::shared_ptr<WholeProgram> wp, std::shared_ptr<DataFlowCache> cache);
std::unique_ptr<Rule> MakeRelaxedPublicationRule(
    std::shared_ptr<WholeProgram> wp, std::shared_ptr<DataFlowCache> cache);

// All nine call-graph-backed whole-program rules wired to a fresh shared
// WholeProgram (and, for the data-flow trio, a shared DataFlowCache).
std::vector<std::unique_ptr<Rule>> MakeWholeProgramRules();

}  // namespace fmlint

#endif  // TOOLS_FMLINT_ANALYSIS_H_
