#include "tools/fmlint/dataflow.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <optional>
#include <set>
#include <utility>

namespace fmlint {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);
constexpr Provenance kGoodMask = kProvWalkerSeed | kProvParamMask;

bool IsMacroLike(const std::string& s) {
  if (s.empty() || !std::isupper(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

// Keywords that read like calls / defs but are control flow or operators.
const std::set<std::string>& StmtKeywords() {
  static const std::set<std::string> kws = {
      "if",     "for",     "while",    "switch",   "return",   "sizeof",
      "alignof", "catch",  "new",      "delete",   "throw",    "decltype",
      "noexcept", "case",  "default",  "break",    "continue", "do",
      "else",   "goto",    "co_return"};
  return kws;
}

bool IsIdent(const Token& t) { return t.kind == Token::Kind::kIdent; }

// Index of the token matching the opener at `i` ("(" / "[" / "{"), or
// toks.size() when unbalanced.
size_t MatchingClose(const std::vector<Token>& toks, size_t i) {
  const std::string& open = toks[i].text;
  const char* close = open == "(" ? ")" : open == "[" ? "]" : "}";
  int depth = 0;
  for (size_t j = i; j < toks.size(); ++j) {
    if (toks[j].text == open) {
      ++depth;
    } else if (toks[j].text == close && --depth == 0) {
      return j;
    }
  }
  return toks.size();
}

std::vector<Token> Slice(const std::vector<Token>& toks, size_t begin,
                         size_t end) {
  std::vector<Token> out;
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    out.push_back(toks[i]);
  }
  return out;
}

// Splits [begin, end) on commas at nesting depth zero.
std::vector<std::vector<Token>> SplitTopCommas(const std::vector<Token>& toks,
                                               size_t begin, size_t end) {
  std::vector<std::vector<Token>> out;
  std::vector<Token> cur;
  int depth = 0;
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    const std::string& s = toks[i].text;
    if (s == "(" || s == "[" || s == "{") {
      ++depth;
    } else if (s == ")" || s == "]" || s == "}") {
      --depth;
    } else if (s == "," && depth == 0) {
      out.push_back(std::move(cur));
      cur.clear();
      continue;
    }
    cur.push_back(toks[i]);
  }
  if (!cur.empty()) {
    out.push_back(std::move(cur));
  }
  return out;
}

// `ident :: ident :: name` chain ending at `i`, and its first token index.
std::string QualifiedChainAt(const std::vector<Token>& toks, size_t i,
                             size_t* first_index) {
  std::string chain = toks[i].text;
  size_t begin = i;
  while (begin >= 2 && toks[begin - 1].text == "::" &&
         IsIdent(toks[begin - 2])) {
    chain = toks[begin - 2].text + "::" + chain;
    begin -= 2;
  }
  if (first_index != nullptr) {
    *first_index = begin;
  }
  return chain;
}

// Reconstructs the postfix receiver chain ending just before the call name at
// `name_idx` ("s.rng" for `s.rng.Seed(`); "" for a free call. `chain_begin`
// is name_idx's qualified-chain start.
std::string ReceiverChain(const std::vector<Token>& toks, size_t chain_begin) {
  std::string receiver;
  size_t j = chain_begin;
  while (j >= 1 && (toks[j - 1].text == "." || toks[j - 1].text == "->")) {
    size_t accessor = j - 1;
    size_t comp_begin = kNpos;
    if (accessor >= 1 &&
        (toks[accessor - 1].text == ")" || toks[accessor - 1].text == "]")) {
      // Walk back over the balanced group, then an optional leading ident.
      const std::string& close = toks[accessor - 1].text;
      const char* open = close == ")" ? "(" : "[";
      int depth = 0;
      size_t m = accessor - 1;
      while (true) {
        if (toks[m].text == close) {
          ++depth;
        } else if (toks[m].text == open && --depth == 0) {
          break;
        }
        if (m == 0) {
          break;
        }
        --m;
      }
      comp_begin = m;
      if (comp_begin >= 1 && IsIdent(toks[comp_begin - 1])) {
        --comp_begin;
      }
    } else if (accessor >= 1 && IsIdent(toks[accessor - 1])) {
      comp_begin = accessor - 1;
    }
    if (comp_begin == kNpos) {
      break;
    }
    std::string part;
    for (size_t m = comp_begin; m < accessor; ++m) {
      part += toks[m].text;
    }
    receiver = receiver.empty() ? part : part + "." + receiver;
    j = comp_begin;
  }
  return receiver;
}

// Finds calls in a token range: `name(`, `Class::name(`, and template calls
// `name<Args>(`. Nested calls each get their own entry.
std::vector<StmtCall> ExtractCalls(const std::vector<Token>& toks) {
  std::vector<StmtCall> calls;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i]) || StmtKeywords().count(toks[i].text) != 0) {
      continue;
    }
    size_t paren = kNpos;
    if (i + 1 < toks.size() && toks[i + 1].text == "(") {
      paren = i + 1;
    } else if (i + 1 < toks.size() && toks[i + 1].text == "<") {
      // Template call: a short, type-looking angle group directly followed by
      // `(`. Anything else (comparisons) fails the shape test.
      int angle = 0;
      for (size_t j = i + 1; j < toks.size() && j < i + 26; ++j) {
        const std::string& s = toks[j].text;
        if (s == "<") {
          ++angle;
        } else if (s == ">") {
          --angle;
        } else if (s == ">>") {
          angle -= 2;
        } else if (!(IsIdent(toks[j]) || toks[j].kind == Token::Kind::kNumber ||
                     s == "::" || s == "," || s == "*" || s == "&")) {
          break;
        }
        if (angle <= 0) {
          if (angle == 0 && j + 1 < toks.size() && toks[j + 1].text == "(") {
            paren = j + 1;
          }
          break;
        }
      }
    }
    if (paren == kNpos) {
      continue;
    }
    size_t chain_begin = kNpos;
    StmtCall call;
    call.name = QualifiedChainAt(toks, i, &chain_begin);
    call.receiver = ReceiverChain(toks, chain_begin);
    call.line = toks[i].line;
    size_t close = MatchingClose(toks, paren);
    call.args = SplitTopCommas(toks, paren + 1, close);
    calls.push_back(std::move(call));
  }
  return calls;
}

std::string SimpleName(const std::string& name) {
  size_t pos = name.rfind("::");
  return pos == std::string::npos ? name : name.substr(pos + 2);
}

// Walks back from `idx` (exclusive) over a template argument group to the
// base type identifier: `std::vector<Eid> offsets` -> "vector".
std::string TemplateBaseType(const std::vector<Token>& toks, size_t idx) {
  int angle = toks[idx].text == ">>" ? 2 : 1;
  size_t j = idx;
  while (j > 0 && angle > 0) {
    --j;
    const std::string& s = toks[j].text;
    if (s == ">") ++angle;
    if (s == ">>") angle += 2;
    if (s == "<") --angle;
  }
  if (j > 0 && IsIdent(toks[j - 1])) {
    return toks[j - 1].text;
  }
  return "";
}

const std::set<std::string>& CompoundAssigns() {
  static const std::set<std::string> ops = {"+=", "-=", "*=", "/=", "%=",
                                            "&=", "|=", "^=", "<<=", ">>="};
  return ops;
}

// Digests raw statement tokens into a Statement (def/value/calls).
Statement AnalyzeStatement(std::vector<Token> toks) {
  Statement st;
  st.line = toks.empty() ? 0 : toks.front().line;
  st.calls = ExtractCalls(toks);
  if (toks.empty()) {
    st.tokens = std::move(toks);
    return st;
  }
  if (toks.front().text == "return" || toks.front().text == "co_return" ||
      toks.front().text == "throw") {
    st.is_return = toks.front().text != "throw";
    st.value = Slice(toks, 1, toks.size());
    st.tokens = std::move(toks);
    return st;
  }
  // Assignment (plain or compound) at nesting depth zero.
  size_t assign = kNpos;
  bool compound = false;
  int depth = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& s = toks[i].text;
    if (s == "(" || s == "[" || s == "{") {
      ++depth;
    } else if (s == ")" || s == "]" || s == "}") {
      --depth;
    } else if (depth == 0 && toks[i].kind == Token::Kind::kPunct &&
               (s == "=" || CompoundAssigns().count(s) != 0)) {
      assign = i;
      compound = s != "=";
      break;
    }
  }
  if (assign != kNpos) {
    st.value = Slice(toks, assign + 1, toks.size());
    // `*p = ...` writes through p.
    if (toks.front().text == "*" && toks.size() > 1 && IsIdent(toks[1])) {
      st.deref_write = toks[1].text;
      st.tokens = std::move(toks);
      return st;
    }
    // Base of the last top-level identifier chain in the LHS.
    size_t base_idx = kNpos;
    int d = 0;
    for (size_t i = 0; i < assign; ++i) {
      const std::string& s = toks[i].text;
      if (s == "(" || s == "[" || s == "{") {
        ++d;
        continue;
      }
      if (s == ")" || s == "]" || s == "}") {
        --d;
        continue;
      }
      if (d != 0 || !IsIdent(toks[i]) || IsMacroLike(toks[i].text)) {
        continue;
      }
      bool chained = i > 0 && (toks[i - 1].text == "." ||
                               toks[i - 1].text == "->" ||
                               toks[i - 1].text == "::");
      if (!chained) {
        base_idx = i;
      }
    }
    if (base_idx != kNpos) {
      st.def = toks[base_idx].text;
      bool member = false;
      for (size_t i = base_idx + 1; i < assign; ++i) {
        if (toks[i].text == "." || toks[i].text == "->" ||
            toks[i].text == "[") {
          member = true;
        }
      }
      st.weak_def = member || compound;
      // Two identifier-ish tokens before the `=` mean a declaration.
      st.is_decl = base_idx > 0 && (IsIdent(toks[base_idx - 1]) ||
                                    toks[base_idx - 1].text == ">" ||
                                    toks[base_idx - 1].text == "&" ||
                                    toks[base_idx - 1].text == "*");
    }
    st.tokens = std::move(toks);
    return st;
  }
  // Direct-initialization declaration: `Type var(args)` / `Type var{args}`.
  depth = 0;
  for (size_t i = 1; i < toks.size(); ++i) {
    const std::string& s = toks[i].text;
    if (s == "(" || s == "[" || s == "{") {
      ++depth;
      continue;
    }
    if (s == ")" || s == "]" || s == "}") {
      --depth;
      continue;
    }
    if (depth != 0 || !IsIdent(toks[i]) || IsMacroLike(toks[i].text) ||
        StmtKeywords().count(toks[i].text) != 0) {
      continue;
    }
    if (i + 1 >= toks.size() ||
        (toks[i + 1].text != "(" && toks[i + 1].text != "{")) {
      continue;
    }
    const Token& before = toks[i - 1];
    bool type_before =
        (IsIdent(before) && !IsMacroLike(before.text) &&
         StmtKeywords().count(before.text) == 0 && before.text != "." &&
         before.text != "->") ||
        before.text == ">" || before.text == ">>" || before.text == "&" ||
        before.text == "*";
    if (!type_before) {
      continue;
    }
    st.def = toks[i].text;
    st.is_decl = true;
    if (IsIdent(before)) {
      st.decl_type = before.text;
    } else if (before.text == ">" || before.text == ">>") {
      st.decl_type = TemplateBaseType(toks, i - 1);
    } else if (i >= 2 && IsIdent(toks[i - 2])) {
      st.decl_type = toks[i - 2].text;
    }
    size_t open = i + 1;
    size_t close = MatchingClose(toks, open);
    st.value = Slice(toks, open + 1, close);
    break;
  }
  st.tokens = std::move(toks);
  return st;
}

// --- CFG construction --------------------------------------------------------

class CfgBuilder {
 public:
  explicit CfgBuilder(const std::vector<Token>& toks) : t_(toks) {
    cfg_.entry = NewBlock();
    cfg_.exit = NewBlock();
    cur_ = cfg_.entry;
  }

  Cfg Build() {
    ParseList(/*stop_at_close=*/false);
    Edge(cur_, cfg_.exit);
    return std::move(cfg_);
  }

 private:
  struct BreakCtx {
    size_t brk;
    size_t cont;  // kNpos inside switch
  };

  size_t NewBlock() {
    cfg_.blocks.emplace_back();
    return cfg_.blocks.size() - 1;
  }

  void Edge(size_t from, size_t to) { cfg_.blocks[from].succs.push_back(to); }

  bool AtEnd() const { return i_ >= t_.size(); }
  const std::string& Text() const { return t_[i_].text; }

  // Consumes `( ... )` and returns the inner tokens.
  std::vector<Token> ParenGroup() {
    if (AtEnd() || Text() != "(") {
      return {};
    }
    size_t close = MatchingClose(t_, i_);
    std::vector<Token> inner = Slice(t_, i_ + 1, close);
    i_ = std::min(close + 1, t_.size());
    return inner;
  }

  // Collects one plain statement: tokens until `;` at depth zero. Stops
  // before an unmatched `}` so list parsing can see it.
  std::vector<Token> PlainStatement() {
    std::vector<Token> out;
    int depth = 0;
    while (!AtEnd()) {
      const std::string& s = Text();
      if (depth == 0 && s == ";") {
        ++i_;
        break;
      }
      if (depth == 0 && s == "}") {
        break;
      }
      if (s == "(" || s == "[" || s == "{") {
        ++depth;
      } else if (s == ")" || s == "]" || s == "}") {
        --depth;
      }
      out.push_back(t_[i_]);
      ++i_;
    }
    return out;
  }

  void AddStatement(std::vector<Token> toks) {
    if (!toks.empty()) {
      cfg_.blocks[cur_].stmts.push_back(AnalyzeStatement(std::move(toks)));
    }
  }

  void ParseList(bool stop_at_close) {
    while (!AtEnd()) {
      if (Text() == "}") {
        if (stop_at_close) {
          ++i_;
        }
        return;
      }
      ParseStmt();
    }
  }

  size_t MakeCond(BasicBlock::Cond kind, std::vector<Token> cond) {
    size_t b = NewBlock();
    cfg_.blocks[b].cond = kind;
    cfg_.blocks[b].cond_line = cond.empty() ? 0 : cond.front().line;
    cfg_.blocks[b].cond_tokens = std::move(cond);
    return b;
  }

  void ParseStmt() {
    if (AtEnd()) {
      return;
    }
    const std::string& s = Text();
    if (s == "{") {
      ++i_;
      ParseList(/*stop_at_close=*/true);
      return;
    }
    if (s == ";") {
      ++i_;
      return;
    }
    if (s == "if") {
      ++i_;
      if (!AtEnd() && Text() == "constexpr") {
        ++i_;
      }
      size_t cond_b = MakeCond(BasicBlock::Cond::kIf, ParenGroup());
      Edge(cur_, cond_b);
      size_t then_b = NewBlock();
      Edge(cond_b, then_b);
      cur_ = then_b;
      ParseStmt();
      size_t then_end = cur_;
      size_t join = NewBlock();
      Edge(then_end, join);
      if (!AtEnd() && Text() == "else") {
        ++i_;
        size_t else_b = NewBlock();
        Edge(cond_b, else_b);
        cur_ = else_b;
        ParseStmt();
        Edge(cur_, join);
      } else {
        Edge(cond_b, join);
      }
      cur_ = join;
      return;
    }
    if (s == "while") {
      ++i_;
      size_t cond_b = MakeCond(BasicBlock::Cond::kLoop, ParenGroup());
      Edge(cur_, cond_b);
      size_t body = NewBlock();
      size_t after = NewBlock();
      Edge(cond_b, body);
      Edge(cond_b, after);
      breaks_.push_back({after, cond_b});
      cur_ = body;
      ParseStmt();
      Edge(cur_, cond_b);
      breaks_.pop_back();
      cur_ = after;
      return;
    }
    if (s == "do") {
      ++i_;
      size_t cond_b = MakeCond(BasicBlock::Cond::kLoop, {});
      size_t body = NewBlock();
      size_t after = NewBlock();
      Edge(cur_, body);
      breaks_.push_back({after, cond_b});
      cur_ = body;
      ParseStmt();
      Edge(cur_, cond_b);
      breaks_.pop_back();
      if (!AtEnd() && Text() == "while") {
        ++i_;
        std::vector<Token> cond = ParenGroup();
        cfg_.blocks[cond_b].cond_line = cond.empty() ? 0 : cond.front().line;
        cfg_.blocks[cond_b].cond_tokens = std::move(cond);
        if (!AtEnd() && Text() == ";") {
          ++i_;
        }
      }
      Edge(cond_b, body);
      Edge(cond_b, after);
      cur_ = after;
      return;
    }
    if (s == "for") {
      ++i_;
      std::vector<Token> head = ParenGroup();
      // Split on top-level `;` (classic) or `:` (range-for).
      std::vector<size_t> semis;
      size_t colon = kNpos;
      int depth = 0;
      for (size_t j = 0; j < head.size(); ++j) {
        const std::string& h = head[j].text;
        if (h == "(" || h == "[" || h == "{" || h == "<") {
          ++depth;
        } else if (h == ")" || h == "]" || h == "}" || h == ">") {
          --depth;
        } else if (depth == 0 && h == ";") {
          semis.push_back(j);
        } else if (depth == 0 && h == ":" && colon == kNpos) {
          colon = j;
        }
      }
      size_t cond_b;
      std::vector<Token> inc;
      if (semis.size() >= 2) {
        AddStatement(Slice(head, 0, semis[0]));
        cond_b =
            MakeCond(BasicBlock::Cond::kLoop, Slice(head, semis[0] + 1, semis[1]));
        inc = Slice(head, semis[1] + 1, head.size());
      } else if (colon != kNpos) {
        // Range-for: the loop variable derives from the range expression.
        cond_b = MakeCond(BasicBlock::Cond::kLoop,
                          Slice(head, colon + 1, head.size()));
        std::vector<Token> decl = Slice(head, 0, colon);
        std::string var;
        for (const Token& tok : decl) {
          if (IsIdent(tok) && !IsMacroLike(tok.text) &&
              StmtKeywords().count(tok.text) == 0) {
            var = tok.text;
          }
        }
        if (!var.empty()) {
          Statement st;
          st.line = decl.empty() ? 0 : decl.front().line;
          st.def = std::move(var);
          st.is_decl = true;
          st.value = Slice(head, colon + 1, head.size());
          st.tokens = std::move(decl);
          // Seed the loop variable inside the body entry below.
          pending_range_stmt_ = std::move(st);
        }
      } else {
        cond_b = MakeCond(BasicBlock::Cond::kLoop, std::move(head));
      }
      Edge(cur_, cond_b);
      size_t body = NewBlock();
      size_t after = NewBlock();
      Edge(cond_b, body);
      Edge(cond_b, after);
      breaks_.push_back({after, cond_b});
      cur_ = body;
      if (pending_range_stmt_.has_value()) {
        cfg_.blocks[cur_].stmts.push_back(std::move(*pending_range_stmt_));
        pending_range_stmt_.reset();
      }
      ParseStmt();
      AddStatement(std::move(inc));
      Edge(cur_, cond_b);
      breaks_.pop_back();
      cur_ = after;
      return;
    }
    if (s == "switch") {
      ++i_;
      size_t head = MakeCond(BasicBlock::Cond::kSwitch, ParenGroup());
      Edge(cur_, head);
      size_t after = NewBlock();
      Edge(head, after);  // no matching case / no default
      breaks_.push_back({after, kNpos});
      cur_ = head;
      if (!AtEnd() && Text() == "{") {
        ++i_;
        while (!AtEnd() && Text() != "}") {
          if (Text() == "case" || Text() == "default") {
            bool is_case = Text() == "case";
            ++i_;
            while (is_case && !AtEnd() && Text() != ":" && Text() != "}") {
              ++i_;  // case label expression
            }
            if (!AtEnd() && Text() == ":") {
              ++i_;
            }
            size_t blk = NewBlock();
            Edge(head, blk);
            Edge(cur_, blk);  // fallthrough (head duplicate is harmless)
            cur_ = blk;
            continue;
          }
          ParseStmt();
        }
        if (!AtEnd()) {
          ++i_;  // the switch's `}`
        }
      }
      Edge(cur_, after);
      breaks_.pop_back();
      cur_ = after;
      return;
    }
    if (s == "return" || s == "co_return" || s == "throw") {
      AddStatement(PlainStatement());
      Edge(cur_, cfg_.exit);
      cur_ = NewBlock();  // unreachable continuation
      return;
    }
    if (s == "break" || s == "continue") {
      size_t target = cfg_.exit;
      for (size_t j = breaks_.size(); j > 0; --j) {
        if (s == "break") {
          target = breaks_[j - 1].brk;
          break;
        }
        if (breaks_[j - 1].cont != kNpos) {
          target = breaks_[j - 1].cont;
          break;
        }
      }
      Edge(cur_, target);
      ++i_;
      if (!AtEnd() && Text() == ";") {
        ++i_;
      }
      cur_ = NewBlock();  // unreachable continuation
      return;
    }
    if (s == "else" || s == "case" || s == "default") {
      // Stray pieces (e.g. labels outside a parsed switch): skip the keyword
      // and, for labels, through the colon.
      ++i_;
      while (!AtEnd() && Text() != ":" && Text() != ";" && Text() != "}") {
        ++i_;
      }
      if (!AtEnd() && (Text() == ":" || Text() == ";")) {
        ++i_;
      }
      return;
    }
    AddStatement(PlainStatement());
  }

  const std::vector<Token>& t_;
  size_t i_ = 0;
  Cfg cfg_;
  size_t cur_ = 0;
  std::vector<BreakCtx> breaks_;
  std::optional<Statement> pending_range_stmt_;
};

// --- intrinsic provenance tables ---------------------------------------------

Provenance IntrinsicNameBits(const std::string& name) {
  static const std::set<std::string> kThreadNames = {
      "thread_index", "thread_idx", "thread_id",   "worker_id", "worker_index",
      "worker",       "tid",        "num_threads", "thread_count",
      "nthreads",     "n_threads",  "num_workers"};
  static const std::set<std::string> kSlotNames = {
      "slot", "slot_index", "slot_idx", "ring_slot", "slot_id", "lane",
      "lane_id"};
  if (kThreadNames.count(name) != 0) {
    return kProvThreadId;
  }
  if (kSlotNames.count(name) != 0) {
    return kProvSlotIndex;
  }
  return 0;
}

bool IsThreadSourceCall(const std::string& simple) {
  static const std::set<std::string> kCalls = {
      "hardware_concurrency", "get_id", "pthread_self", "gettid"};
  return kCalls.count(simple) != 0;
}

bool IsClockSourceCall(const std::string& simple) {
  static const std::set<std::string> kCalls = {
      "TraceNowNs", "now", "Now", "time", "clock_gettime", "rdtsc", "__rdtsc"};
  return kCalls.count(simple) != 0;
}

bool IsUntrustedSourceCall(const std::string& simple) {
  return simple == "LoadScalar" || simple == "MappedSpan";
}

bool IsPointerMethod(const std::string& simple) {
  return simple == "data" || simple == "get" || simple == "release";
}

bool IsCheckMacro(const std::string& simple) {
  return simple.rfind("FM_CHECK", 0) == 0 || simple.rfind("FM_DCHECK", 0) == 0;
}

// Copies `toks` with every `[ ... ]` group removed: subscript expressions
// index a value, they do not become part of it.
std::vector<Token> WithoutSubscripts(const std::vector<Token>& toks) {
  std::vector<Token> out;
  int depth = 0;
  for (const Token& t : toks) {
    if (t.text == "[") {
      ++depth;
      continue;
    }
    if (t.text == "]") {
      depth = std::max(0, depth - 1);
      continue;
    }
    if (depth == 0) {
      out.push_back(t);
    }
  }
  return out;
}

Provenance LookupVar(const VarState& state, const std::string& name) {
  auto it = state.find(name);
  Provenance p = it == state.end() ? 0 : it->second;
  return p | IntrinsicNameBits(name);
}

std::string ReceiverBase(const std::string& receiver) {
  size_t cut = receiver.find_first_of(".[");
  return cut == std::string::npos ? receiver : receiver.substr(0, cut);
}

// Mixed-direction merge of block in-states: good bits (WalkerSeed, param
// passthrough) union across predecessors; bad bits survive only when every
// predecessor agrees (must-analysis — see the header comment).
VarState MergeStates(const std::vector<const VarState*>& preds) {
  VarState out;
  if (preds.empty()) {
    return out;
  }
  if (preds.size() == 1) {
    return *preds[0];
  }
  std::set<std::string> keys;
  for (const VarState* s : preds) {
    for (const auto& [k, v] : *s) {
      keys.insert(k);
    }
  }
  for (const std::string& k : keys) {
    Provenance good = 0;
    Provenance bad = kProvBadSeedMask;
    bool in_all = true;
    for (const VarState* s : preds) {
      auto it = s->find(k);
      if (it == s->end()) {
        in_all = false;
        continue;
      }
      good |= it->second & kGoodMask;
      bad &= it->second;
    }
    out[k] = good | (in_all ? (bad & kProvBadSeedMask) : 0);
  }
  return out;
}

}  // namespace

const char* ProvenanceSourceName(Provenance bit) {
  switch (bit) {
    case kProvWalkerSeed:
      return "WalkerSeed";
    case kProvThreadId:
      return "a thread id / pool size";
    case kProvSlotIndex:
      return "a ring-slot index";
    case kProvPointer:
      return "a pointer value";
    case kProvClock:
      return "a clock reading";
    case kProvUntrusted:
      return "untrusted input";
    default:
      return "an unknown source";
  }
}

Cfg BuildCfg(const FunctionInfo& fn) { return CfgBuilder(fn.body).Build(); }

// --- DataFlow ----------------------------------------------------------------

DataFlow::DataFlow(const WholeProgram& wp) : wp_(wp) {
  const std::vector<FunctionInfo>& fns = wp.functions();
  cfgs_.reserve(fns.size());
  for (const FunctionInfo& fn : fns) {
    cfgs_.push_back(BuildCfg(fn));
  }
  summaries_.assign(fns.size(), FunctionSummary{});
  // Interprocedural fixpoint: rounds over all functions with the summaries
  // from the previous round. The call graph is shallow; a handful of rounds
  // always converges, and the cap keeps pathological inputs bounded.
  for (int round = 0; round < 6; ++round) {
    bool stable = true;
    for (size_t i = 0; i < fns.size(); ++i) {
      FunctionSummary s;
      Converge(i, &s);
      if (std::memcmp(&s, &summaries_[i], sizeof(s)) != 0) {
        summaries_[i] = s;
        stable = false;
      }
    }
    if (stable) {
      break;
    }
  }
}

VarState DataFlow::EntryState(const FunctionInfo& fn) const {
  VarState state;
  for (size_t i = 0; i < fn.params.size(); ++i) {
    const ParamInfo& p = fn.params[i];
    if (p.name.empty()) {
      continue;
    }
    Provenance prov = IntrinsicNameBits(p.name);
    if (p.is_pointer) {
      prov |= kProvPointer;
    }
    if (i < static_cast<size_t>(kMaxTrackedParams)) {
      prov |= ParamBit(static_cast<int>(i));
    }
    state[p.name] = prov;
  }
  return state;
}

Provenance DataFlow::Eval(const std::vector<Token>& toks,
                          const VarState& state) const {
  // Depth-guarded recursion through call arguments.
  struct Evaluator {
    const DataFlow& df;
    const VarState& state;

    Provenance Expr(const std::vector<Token>& raw, int depth) const {
      if (depth > 8) {
        return 0;
      }
      std::vector<Token> toks = WithoutSubscripts(raw);
      Provenance out = 0;
      std::vector<StmtCall> calls = ExtractCalls(toks);
      for (const StmtCall& call : calls) {
        out |= Call(call, depth);
      }
      for (size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind == Token::Kind::kPunct) {
          if (t.text == "&") {
            bool unary = i == 0 || (toks[i - 1].kind == Token::Kind::kPunct &&
                                    toks[i - 1].text != ")" &&
                                    toks[i - 1].text != "]") ||
                         toks[i - 1].text == "return";
            if (unary) {
              out |= kProvPointer;
            }
          }
          continue;
        }
        if (t.kind != Token::Kind::kIdent) {
          continue;
        }
        if (t.text == "new" || t.text == "reinterpret_cast") {
          out |= kProvPointer;
          continue;
        }
        if (t.text == "this") {
          bool deref = i + 1 < toks.size() && toks[i + 1].text == "->";
          if (!deref) {
            out |= kProvPointer;
          }
          continue;
        }
        // Skip member-chain tails, qualification pieces, call names, and
        // template heads; plain base identifiers look up the state.
        bool chained = i > 0 && (toks[i - 1].text == "." ||
                                 toks[i - 1].text == "->" ||
                                 toks[i - 1].text == "::");
        bool qualifies = i + 1 < toks.size() && toks[i + 1].text == "::";
        bool is_call_name =
            i + 1 < toks.size() &&
            (toks[i + 1].text == "(" || toks[i + 1].text == "<");
        if (chained || qualifies ||
            StmtKeywords().count(t.text) != 0) {
          continue;
        }
        if (is_call_name && toks[i + 1].text == "(") {
          continue;  // handled via Call()
        }
        if (is_call_name && toks[i + 1].text == "<") {
          // Could be a template call name or a comparison's LHS; the call
          // extractor decided. Either way include the state bits (harmless
          // for call names: their own provenance is the call result).
          if (ExtractedAsCall(calls, t)) {
            continue;
          }
        }
        out |= LookupVar(state, t.text);
      }
      return out;
    }

    static bool ExtractedAsCall(const std::vector<StmtCall>& calls,
                                const Token& t) {
      for (const StmtCall& c : calls) {
        if (c.line == t.line && SimpleName(c.name) == t.text) {
          return true;
        }
      }
      return false;
    }

    Provenance Call(const StmtCall& call, int depth) const {
      std::string simple = SimpleName(call.name);
      if (simple == "WalkerSeed") {
        Provenance p = kProvWalkerSeed;
        for (const auto& arg : call.args) {
          p |= Expr(arg, depth + 1);
        }
        return p;
      }
      if (simple == "DeriveSeed" || simple == "SplitMix64") {
        Provenance p = 0;
        for (const auto& arg : call.args) {
          p |= Expr(arg, depth + 1);
        }
        return p;
      }
      if (IsUntrustedSourceCall(simple)) {
        return kProvUntrusted;
      }
      if (IsThreadSourceCall(simple)) {
        return kProvThreadId;
      }
      if (IsClockSourceCall(simple)) {
        return kProvClock;
      }
      if (!call.receiver.empty()) {
        if (IsPointerMethod(simple)) {
          return kProvPointer;
        }
        if (simple == "load") {
          return LookupVar(state, ReceiverBase(call.receiver));
        }
      }
      std::vector<size_t> defs = df.wp_.Resolve(call.name);
      if (defs.size() != 1) {
        return 0;  // unknown or ambiguous: under-approximate
      }
      const FunctionSummary& cs = df.summaries_[defs[0]];
      Provenance out = cs.returns & ~kProvParamMask;
      for (int i = 0; i < kMaxTrackedParams; ++i) {
        if ((cs.returns & ParamBit(i)) != 0 &&
            static_cast<size_t>(i) < call.args.size()) {
          out |= Expr(call.args[i], depth + 1);
        }
      }
      return out;
    }
  };
  return Evaluator{*this, state}.Expr(toks, 0);
}

void DataFlow::TransferStatement(const Statement& stmt, const FunctionInfo& fn,
                                 VarState* state,
                                 FunctionSummary* summary) const {
  // Callee out-param writes and FM_CHECK-style sanitizers.
  for (const StmtCall& call : stmt.calls) {
    std::string simple = SimpleName(call.name);
    if (IsCheckMacro(simple)) {
      // A checked value is no longer untrusted, whatever the comparison; the
      // macro name encodes it (FM_CHECK_LT etc.).
      for (const Token& t : stmt.tokens) {
        if (t.kind == Token::Kind::kIdent) {
          auto it = state->find(t.text);
          if (it != state->end()) {
            it->second &= ~kProvUntrusted;
          }
        }
      }
      continue;
    }
    std::vector<size_t> defs = wp_.Resolve(call.name);
    if (defs.size() != 1) {
      continue;
    }
    const FunctionSummary& cs = summaries_[defs[0]];
    for (int i = 0; i < kMaxTrackedParams; ++i) {
      if (cs.writes_param[i] == 0 ||
          static_cast<size_t>(i) >= call.args.size()) {
        continue;
      }
      // The written-through argument must be a plain var or `&var`.
      const std::vector<Token>& arg = call.args[i];
      std::string target;
      if (arg.size() == 1 && IsIdent(arg[0])) {
        target = arg[0].text;
      } else if (arg.size() == 2 && arg[0].text == "&" && IsIdent(arg[1])) {
        target = arg[1].text;
      }
      if (target.empty()) {
        continue;
      }
      Provenance w = cs.writes_param[i] & ~kProvParamMask;
      for (int j = 0; j < kMaxTrackedParams; ++j) {
        if ((cs.writes_param[i] & ParamBit(j)) != 0 &&
            static_cast<size_t>(j) < call.args.size()) {
          w |= Eval(call.args[j], *state);
        }
      }
      (*state)[target] |= w;
    }
  }
  if (!stmt.deref_write.empty()) {
    Provenance prov = Eval(stmt.value, *state);
    for (size_t i = 0; i < fn.params.size() &&
                       i < static_cast<size_t>(kMaxTrackedParams);
         ++i) {
      if (fn.params[i].name == stmt.deref_write) {
        summary->writes_param[i] |= prov;
      }
    }
    return;
  }
  if (!stmt.def.empty()) {
    Provenance prov = Eval(stmt.value, *state);
    if (stmt.weak_def) {
      (*state)[stmt.def] |= prov;
    } else {
      (*state)[stmt.def] = prov;
    }
  }
}

void DataFlow::ApplyCondition(const BasicBlock& block, VarState* state) const {
  if (block.cond != BasicBlock::Cond::kIf) {
    return;  // loop conditions are bounds (sinks), not sanitizers
  }
  static const std::set<std::string> kCompare = {"<",  ">",  "<=",
                                                 ">=", "==", "!="};
  bool compares = false;
  for (const Token& t : block.cond_tokens) {
    if (t.kind == Token::Kind::kPunct && kCompare.count(t.text) != 0) {
      compares = true;
      break;
    }
  }
  if (!compares) {
    return;
  }
  // Any variable that took part in a comparison has been checked against
  // *something*; both branches continue with the taint cleared. Struct
  // granularity means comparing one field clears the whole struct — that is
  // the deliberate coarse side of the lattice.
  for (const Token& t : block.cond_tokens) {
    if (t.kind != Token::Kind::kIdent) {
      continue;
    }
    auto it = state->find(t.text);
    if (it != state->end()) {
      it->second &= ~kProvUntrusted;
    }
  }
}

std::vector<VarState> DataFlow::Converge(size_t fn_index,
                                         FunctionSummary* summary) const {
  const Cfg& cfg = cfgs_[fn_index];
  const FunctionInfo& fn = wp_.functions()[fn_index];
  size_t n = cfg.blocks.size();
  std::vector<std::vector<size_t>> preds(n);
  for (size_t b = 0; b < n; ++b) {
    for (size_t s : cfg.blocks[b].succs) {
      preds[s].push_back(b);
    }
  }
  std::vector<VarState> in(n);
  std::vector<VarState> out(n);
  std::vector<char> visited(n, 0);
  in[cfg.entry] = EntryState(fn);
  visited[cfg.entry] = 1;

  FunctionSummary local;
  struct ReturnAcc {
    bool any = false;
    Provenance bad_and = ~0u;
    Provenance good_or = 0;
  };
  for (int pass = 0; pass < 48; ++pass) {
    bool changed = false;
    local = FunctionSummary{};
    ReturnAcc ret;
    for (size_t b = 0; b < n; ++b) {
      if (b != cfg.entry) {
        std::vector<const VarState*> pred_states;
        for (size_t p : preds[b]) {
          if (visited[p]) {
            pred_states.push_back(&out[p]);
          }
        }
        if (pred_states.empty()) {
          continue;
        }
        visited[b] = 1;
        in[b] = MergeStates(pred_states);
      }
      VarState state = in[b];
      for (const Statement& stmt : cfg.blocks[b].stmts) {
        TransferStatement(stmt, fn, &state, &local);
        if (stmt.is_return) {
          Provenance p = Eval(stmt.value, state);
          ret.any = true;
          ret.bad_and &= p;
          ret.good_or |= p & kGoodMask;
        }
      }
      ApplyCondition(cfg.blocks[b], &state);
      if (state != out[b]) {
        out[b] = std::move(state);
        changed = true;
      }
    }
    local.returns =
        (ret.any ? (ret.bad_and & kProvBadSeedMask) : 0) | ret.good_or;
    if (!changed) {
      break;
    }
  }
  if (summary != nullptr) {
    *summary = local;
  }
  return in;
}

void DataFlow::Visit(
    size_t fn_index,
    const std::function<void(const Statement&, const VarState&)>& on_stmt,
    const std::function<void(const BasicBlock&, const VarState&)>& on_cond)
    const {
  const Cfg& cfg = cfgs_[fn_index];
  std::vector<VarState> in = Converge(fn_index, nullptr);
  // Re-derive reachability the same way Converge did: entry plus everything
  // with a reachable predecessor.
  std::vector<char> reach(cfg.blocks.size(), 0);
  reach[cfg.entry] = 1;
  bool grew = true;
  while (grew) {
    grew = false;
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
      if (!reach[b]) {
        continue;
      }
      for (size_t s : cfg.blocks[b].succs) {
        if (!reach[s]) {
          reach[s] = 1;
          grew = true;
        }
      }
    }
  }
  const FunctionInfo& fn = wp_.functions()[fn_index];
  FunctionSummary scratch;
  for (size_t b = 0; b < cfg.blocks.size(); ++b) {
    if (!reach[b]) {
      continue;
    }
    VarState state = in[b];
    if (on_cond && cfg.blocks[b].cond != BasicBlock::Cond::kNone) {
      on_cond(cfg.blocks[b], state);
    }
    for (const Statement& stmt : cfg.blocks[b].stmts) {
      if (on_stmt) {
        on_stmt(stmt, state);
      }
      TransferStatement(stmt, fn, &state, &scratch);
    }
  }
}

DataFlow& DataFlowCache::Ensure(const WholeProgram& wp) {
  if (!df_) {
    df_ = std::make_unique<DataFlow>(wp);
  }
  return *df_;
}

void DataFlowCache::Release() {
  if (++releases_ >= consumers_) {
    releases_ = 0;
    df_.reset();
  }
}

}  // namespace fmlint
