#include "tools/fmlint/rules.h"

#include <algorithm>

#include "tools/fmlint/analysis.h"
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <utility>

namespace fmlint {
namespace {

// Base for rules that scan code lines with a regex, with optional per-file
// exemptions. Subclasses provide the pattern, message, and fix-it hint.
class LineRegexRule : public Rule {
 public:
  LineRegexRule(const char* name, const char* description, const char* pattern,
                const char* message, const char* fixit)
      : name_(name),
        description_(description),
        re_(pattern),
        message_(message),
        fixit_(fixit) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }

  void CheckFile(const SourceFile& file, DiagSink& sink) override {
    if (Exempt(file.rel_path)) {
      return;
    }
    for (size_t i = 0; i < file.code.size(); ++i) {
      if (LineMatches(file.code[i])) {
        sink.Add({file.rel_path, i + 1, name_, message_, fixit_});
      }
    }
  }

 protected:
  virtual bool Exempt(const std::string& /*rel_path*/) const { return false; }
  virtual bool LineMatches(const std::string& code_line) const {
    return std::regex_search(code_line, re_);
  }

  const std::string name_;
  const std::string description_;
  const std::regex re_;
  const std::string message_;
  const std::string fixit_;
};

// --- include-guard -----------------------------------------------------------

std::string ExpectedGuard(const std::string& rel_path) {
  std::string guard;
  guard.reserve(rel_path.size() + 1);
  for (char c : rel_path) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

class IncludeGuardRule : public Rule {
 public:
  std::string_view name() const override { return "include-guard"; }
  std::string_view description() const override {
    return "headers carry #ifndef/#define guards derived from their "
           "repo-relative path";
  }

  void CheckFile(const SourceFile& file, DiagSink& sink) override {
    if (!file.is_header) {
      return;
    }
    std::string expected = ExpectedGuard(file.rel_path);
    std::smatch m;
    for (size_t i = 0; i < file.code.size(); ++i) {
      if (!std::regex_search(file.code[i], m, ifndef_re_)) {
        continue;
      }
      if (m[1] != expected) {
        sink.Add({file.rel_path, i + 1, std::string(name()),
                  "guard '" + m[1].str() + "' should be '" + expected + "'",
                  "#ifndef " + expected});
        return;
      }
      if (i + 1 >= file.code.size() ||
          !std::regex_search(file.code[i + 1], m, define_re_) ||
          m[1] != expected) {
        sink.Add({file.rel_path, i + 2, std::string(name()),
                  "#define " + expected + " must immediately follow the #ifndef",
                  "#define " + expected});
      }
      return;
    }
    sink.Add({file.rel_path, 1, std::string(name()),
              "missing include guard " + expected, "#ifndef " + expected});
  }

 private:
  const std::regex ifndef_re_{R"(^\s*#\s*ifndef\s+([A-Za-z0-9_]+))"};
  const std::regex define_re_{R"(^\s*#\s*define\s+([A-Za-z0-9_]+))"};
};

// --- simple line rules -------------------------------------------------------

class BannedRngRule : public LineRegexRule {
 public:
  BannedRngRule()
      : LineRegexRule(
            "banned-rng",
            "ad-hoc RNG is banned outside src/util/rng.* so walks stay "
            "seeded and reproducible",
            // Word-boundary guard on the left so identifiers like `operand(`
            // don't match.
            R"((^|[^A-Za-z0-9_])(std\s*::\s*)?(rand|srand|rand_r|random|drand48|erand48|lrand48)\s*\()"
            R"(|std\s*::\s*(mt19937|mt19937_64|minstd_rand0?|random_device|default_random_engine|ranlux\w*|knuth_b))",
            "use the generators in src/util/rng.h (seeded, splittable) "
            "instead of ad-hoc RNG",
            "fm::XorShiftRng rng(DeriveSeed(seed, salt))") {}

 protected:
  bool Exempt(const std::string& rel_path) const override {
    return rel_path == "src/util/rng.h" || rel_path == "src/util/rng.cc";
  }
};

class NakedNewRule : public LineRegexRule {
 public:
  NakedNewRule()
      : LineRegexRule("naked-new",
                      "no naked new expressions; ownership lives in "
                      "containers and smart pointers",
                      R"((^|[^A-Za-z0-9_.:>])new[\s(])",
                      "no naked new; use containers or std::make_unique",
                      "std::make_unique<T>(...)") {}

 protected:
  bool LineMatches(const std::string& code_line) const override {
    return LineRegexRule::LineMatches(code_line) &&
           code_line.find('#') == std::string::npos;
  }
};

class ReinterpretArithRule : public LineRegexRule {
 public:
  ReinterpretArithRule()
      : LineRegexRule(
            "reinterpret-arith",
            "no reinterpret_cast over byte-pointer arithmetic (unaligned/UB "
            "loads)",
            R"(reinterpret_cast\s*<[^>]*\*[^>]*>\s*\([^;]*\+)",
            "reinterpret_cast over byte arithmetic risks unaligned/UB loads; "
            "memcpy the value out or use an alignment-checked helper",
            "std::memcpy(&value, base + offset, sizeof(value))") {}
};

class VisitCountsMutRule : public LineRegexRule {
 public:
  VisitCountsMutRule()
      : LineRegexRule(
            "visit-counts-mut",
            "visit_counts is engine output; no mutation outside src/core/",
            // Member access only (`.visit_counts` / `->visit_counts`) so
            // locals named visit_counts don't trip it; flags assignment,
            // compound assignment, increment/decrement (either side), and
            // mutating container methods.
            R"((\+\+|--)[^;=]*(\.|->)\s*visit_counts)"
            R"(|(\.|->)\s*visit_counts\s*\.\s*(assign|resize|clear|push_back|emplace_back|swap)\s*\()"
            R"(|(\.|->)\s*visit_counts\s*(\[[^\]]*\]\s*)?(=[^=]|\+=|-=|\+\+|--))",
            "visit_counts is engine output; outside src/core/ read it or "
            "accumulate via a ShardedVisitCounter observer",
            "") {}

 protected:
  bool Exempt(const std::string& rel_path) const override {
    return rel_path.rfind("src/core/", 0) == 0;
  }
};

class RawClockRule : public LineRegexRule {
 public:
  RawClockRule()
      : LineRegexRule(
            "raw-clock",
            "no direct clock reads outside timer.h / trace.cc / "
            "perf_counters.cc; one monotonic clock keeps spans comparable",
            R"((steady_clock|system_clock|high_resolution_clock)\s*::\s*now)"
            R"(|(^|[^A-Za-z0-9_])(clock_gettime|gettimeofday)\s*\()",
            "raw clock reads fragment the timing story; use fm::Timer "
            "(src/util/timer.h) or fm::TraceNowNs (src/util/trace.h)",
            "fm::TraceNowNs()") {}

 protected:
  bool Exempt(const std::string& rel_path) const override {
    return rel_path == "src/util/timer.h" || rel_path == "src/util/trace.cc" ||
           rel_path == "src/util/perf_counters.cc";
  }
};

class PerfSyscallRule : public LineRegexRule {
 public:
  PerfSyscallRule()
      : LineRegexRule(
            "perf-syscall",
            "no direct perf_event_open use outside src/util/perf_counters.cc "
            "(graceful-degradation contract)",
            // Raw syscall, syscall number, or attr struct; PerfEventOpenFn
            // (the test shim typedef) deliberately does not match.
            R"((^|[^A-Za-z0-9_])(__NR_)?perf_event_open\s*[(,;])"
            R"(|(^|[^A-Za-z0-9_])__NR_perf_event_open(^|[^A-Za-z0-9_])?)"
            R"(|(^|[^A-Za-z0-9_])perf_event_attr([^A-Za-z0-9_]|$))",
            "direct perf_event_open use bypasses the degradation contract; "
            "go through PerfCounterGroup/StagePerfMonitor "
            "(src/util/perf_counters.h)",
            "") {}

 protected:
  bool Exempt(const std::string& rel_path) const override {
    return rel_path == "src/util/perf_counters.cc";
  }
};

// --- concurrency rules (PR: compile-time concurrency analysis) ---------------

class RawMutexRule : public LineRegexRule {
 public:
  RawMutexRule()
      : LineRegexRule(
            "raw-mutex",
            "std synchronization primitives are banned outside "
            "src/util/sync.h; fm::Mutex/CondVar/MutexLock carry the "
            "thread-safety annotations",
            R"(std\s*::\s*(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex)"
            R"(|shared_mutex|shared_timed_mutex|condition_variable(_any)?)"
            R"(|lock_guard|unique_lock|scoped_lock|shared_lock)([^A-Za-z0-9_]|$))",
            "raw std sync primitives carry no thread-safety annotations; use "
            "fm::Mutex / fm::CondVar / fm::MutexLock (src/util/sync.h)",
            "fm::MutexLock lock(mu_)") {}

 protected:
  bool Exempt(const std::string& rel_path) const override {
    return rel_path == "src/util/sync.h";
  }
};

class RelaxedOrderRule : public Rule {
 public:
  std::string_view name() const override { return "relaxed-order"; }
  std::string_view description() const override {
    return "every std::memory_order_relaxed needs an adjacent `relaxed:` "
           "justification comment";
  }

  void CheckFile(const SourceFile& file, DiagSink& sink) override {
    for (size_t i = 0; i < file.code.size(); ++i) {
      if (file.code[i].find("memory_order_relaxed") == std::string::npos) {
        continue;
      }
      // Accept the tag on the same line or anywhere in the contiguous
      // //-comment block immediately above (justifications often wrap).
      bool justified = file.raw[i].find(kTag) != std::string::npos;
      for (size_t j = i; !justified && j > 0; --j) {
        const std::string& above = file.raw[j - 1];
        size_t first = above.find_first_not_of(" \t");
        if (first == std::string::npos ||
            above.compare(first, 2, "//") != 0) {
          break;
        }
        justified = above.find(kTag, first) != std::string::npos;
      }
      if (!justified) {
        sink.Add({file.rel_path, i + 1, std::string(name()),
                  "memory_order_relaxed without a justification; say why no "
                  "ordering is needed",
                  "// relaxed: <why no synchronization edge is needed here>"});
      }
    }
  }

 private:
  static constexpr const char* kTag = "relaxed:";
};

class ManualLockRule : public LineRegexRule {
 public:
  ManualLockRule()
      : LineRegexRule(
            "manual-lock",
            "no manual .lock()/.unlock() calls; RAII guards only "
            "(exception-safe, analysis-visible)",
            // Catches both std (.lock) and fm (.Lock) spellings.
            R"((\.|->)\s*([Ll]ock|[Uu]nlock)\s*\(\s*\))",
            "manual lock()/unlock() calls leak on early return and hide from "
            "scope analysis; use fm::MutexLock",
            "fm::MutexLock lock(mu_)") {}

 protected:
  bool Exempt(const std::string& rel_path) const override {
    return rel_path == "src/util/sync.h";
  }
};

// Whole-tree rule: the quoted-#include graph must stay acyclic. Cycles make
// build order fragile and usually signal a layering inversion; the fix is an
// interface split, not a forward declaration band-aid.
class IncludeCycleRule : public Rule {
 public:
  std::string_view name() const override { return "include-cycle"; }
  std::string_view description() const override {
    return "the project #include graph must stay acyclic";
  }

  void CheckFile(const SourceFile& file, DiagSink& /*sink*/) override {
    seen_.insert(file.rel_path);
    static const std::regex include_re(R"(^\s*#\s*include\s*\")");
    for (size_t i = 0; i < file.code.size(); ++i) {
      if (!std::regex_search(file.code[i], include_re)) {
        continue;
      }
      // The include path itself was blanked with the string contents; recover
      // it from the raw line's quotes.
      size_t open = file.raw[i].find('"');
      if (open == std::string::npos) {
        continue;
      }
      size_t close = file.raw[i].find('"', open + 1);
      if (close == std::string::npos) {
        continue;
      }
      edges_[file.rel_path].push_back(
          {file.raw[i].substr(open + 1, close - open - 1), i + 1});
    }
  }

  void Finish(DiagSink& sink) override {
    // Depth-first search over project-internal edges; a back edge to a
    // vertex on the current stack is a cycle.
    std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
    std::vector<std::string> stack;
    std::set<std::string> reported;
    for (const auto& [from, _] : edges_) {
      if (color[from] == 0) {
        Dfs(from, &color, &stack, &reported, sink);
      }
    }
    edges_.clear();
    seen_.clear();
  }

 private:
  struct Edge {
    std::string to;
    size_t line;
  };

  void Dfs(const std::string& node, std::map<std::string, int>* color,
           std::vector<std::string>* stack, std::set<std::string>* reported,
           DiagSink& sink) {
    (*color)[node] = 1;
    stack->push_back(node);
    auto it = edges_.find(node);
    if (it != edges_.end()) {
      for (const Edge& edge : it->second) {
        if (seen_.count(edge.to) == 0) {
          continue;  // system header or file outside the linted set
        }
        int c = (*color)[edge.to];
        if (c == 0) {
          Dfs(edge.to, color, stack, reported, sink);
        } else if (c == 1) {
          ReportCycle(node, edge, *stack, reported, sink);
        }
      }
    }
    stack->pop_back();
    (*color)[node] = 2;
  }

  void ReportCycle(const std::string& node, const Edge& back_edge,
                   const std::vector<std::string>& stack,
                   std::set<std::string>* reported, DiagSink& sink) {
    auto begin = std::find(stack.begin(), stack.end(), back_edge.to);
    std::vector<std::string> cycle(begin, stack.end());
    // Canonical key: rotate so the lexicographically smallest member leads,
    // so each cycle is reported exactly once regardless of entry point.
    auto min_it = std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), min_it, cycle.end());
    std::string key;
    std::string path;
    for (const std::string& f : cycle) {
      key += f + "|";
      path += f + " -> ";
    }
    if (!reported->insert(key).second) {
      return;
    }
    sink.Add({node, back_edge.line, std::string(name()),
              "include cycle: " + path + cycle.front(),
              "split an interface header or move the shared type down a "
              "layer"});
  }

  std::map<std::string, std::vector<Edge>> edges_;
  std::set<std::string> seen_;
};

}  // namespace

std::unique_ptr<Rule> MakeIncludeGuardRule() {
  return std::make_unique<IncludeGuardRule>();
}
std::unique_ptr<Rule> MakeBannedRngRule() {
  return std::make_unique<BannedRngRule>();
}
std::unique_ptr<Rule> MakeNakedNewRule() {
  return std::make_unique<NakedNewRule>();
}
std::unique_ptr<Rule> MakeReinterpretArithRule() {
  return std::make_unique<ReinterpretArithRule>();
}
std::unique_ptr<Rule> MakeVisitCountsMutRule() {
  return std::make_unique<VisitCountsMutRule>();
}
std::unique_ptr<Rule> MakeRawClockRule() {
  return std::make_unique<RawClockRule>();
}
std::unique_ptr<Rule> MakePerfSyscallRule() {
  return std::make_unique<PerfSyscallRule>();
}
std::unique_ptr<Rule> MakeRawMutexRule() {
  return std::make_unique<RawMutexRule>();
}
std::unique_ptr<Rule> MakeRelaxedOrderRule() {
  return std::make_unique<RelaxedOrderRule>();
}
std::unique_ptr<Rule> MakeManualLockRule() {
  return std::make_unique<ManualLockRule>();
}
std::unique_ptr<Rule> MakeIncludeCycleRule() {
  return std::make_unique<IncludeCycleRule>();
}

std::vector<std::unique_ptr<Rule>> BuildDefaultRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(MakeIncludeGuardRule());
  rules.push_back(MakeBannedRngRule());
  rules.push_back(MakeNakedNewRule());
  rules.push_back(MakeReinterpretArithRule());
  rules.push_back(MakeVisitCountsMutRule());
  rules.push_back(MakeRawClockRule());
  rules.push_back(MakePerfSyscallRule());
  rules.push_back(MakeRawMutexRule());
  rules.push_back(MakeRelaxedOrderRule());
  rules.push_back(MakeManualLockRule());
  rules.push_back(MakeIncludeCycleRule());
  rules.push_back(MakeLayerDagRule());
  rules.push_back(MakeHeaderDisciplineRule());
  for (auto& rule : MakeWholeProgramRules()) {
    rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace fmlint
