// fmwalk — command-line front end for the FlashMob walk engine.
//
// Usage:
//   fmwalk --graph=edges.txt [options]
//   fmwalk --csr=graph.csr --mmap --algo=node2vec --p=0.25 --q=4 --out=paths.txt
//
// Options:
//   --graph=FILE      text edge list ("u v [w]" per line; '#'/'%' comments)
//   --csr=FILE        binary CSR (see SaveCsrBinary); --mmap walks it from disk
//   --undirected      symmetrize edges while loading
//   --algo=NAME       deepwalk (default) | node2vec | mh (Metropolis-Hastings:
//                     uniform stationary distribution for unbiased vertex sampling)
//   --steps=N         walk length                      (default 80)
//   --rounds=N        walkers = N * |V|                (default 10)
//   --walkers=N       explicit walker count (overrides --rounds)
//   --p=F --q=F       node2vec parameters              (default 1, 1)
//   --weighted        transition probability ~ edge weight (first-order only)
//   --stop=F          per-step stop probability (PPR-style termination)
//   --seed=N          RNG seed                         (default 1)
//   --out=FILE        write one walk per line (original vertex IDs)
//   --pairs=FILE      write sampled edges "u v" per line instead of full paths
//   --stats           print visit statistics by degree bucket (Table 2 style)
//   --profile         print a per-step stage breakdown (scatter/sample/gather
//                     seconds and the per-VP walker spread) from the engine's
//                     structured step records
//   --metrics-json=F  write the fm-metrics-v1 observability JSON to F: run
//                     metadata, per-stage hardware counters (perf_event_open;
//                     "backend": "noop" where unavailable), derived rates, and
//                     one entry per (episode, step)
//   --trace-json=F    record structured spans (graph load, plan solve, per-step
//                     scatter/sample/gather, per-VP sample chunks, shuffle
//                     chunks, observer merges) and write Chrome trace-event /
//                     Perfetto JSON to F — open it in ui.perfetto.dev or feed
//                     it to `fmtrace`
//   --telemetry-jsonl=F       append one fm-telemetry-v1 JSON line to F every
//                     interval while the walk runs (background snapshot
//                     thread), plus a final line with the end-of-run cumulative
//                     values; tail it live with `fmmon F` or summarize with
//                     `fmmon --summary F`
//   --telemetry-interval-ms=N snapshot interval for --telemetry-jsonl
//                     (default 1000)
//   --progress[=SEC]  live heartbeat to stderr every SEC seconds (default 10):
//                     episode/step position, live walkers, steps/sec, ETA, and
//                     the dropped-span count; driven from the engine's per-step
//                     barrier (no extra thread)
//   --threads=N       worker threads (default: all cores; or FM_THREADS)
//   --shuffle=K       shuffle backend: direct (two-pass counting), binned
//                     (propagation-blocking radix bins), or auto (default —
//                     the ShufflePlan picks per run)
//   --interleave=D    sample-stage ring depth: in-flight walkers per worker
//                     with software prefetch between them; "auto" (default)
//                     resolves from cache geometry, 1 disables. Walks are
//                     bit-identical at every depth
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/fm.h"

namespace {

using namespace fm;

struct Args {
  std::string graph_path;
  std::string csr_path;
  bool use_mmap = false;
  bool undirected = false;
  std::string algo = "deepwalk";
  uint32_t steps = 80;
  uint32_t rounds = 10;
  uint64_t walkers = 0;
  double p = 1.0;
  double q = 1.0;
  bool weighted = false;
  double stop = 0.0;
  uint64_t seed = 1;
  std::string out_path;
  std::string pairs_path;
  std::string metrics_path;
  std::string trace_path;
  std::string telemetry_path;
  uint32_t telemetry_interval_ms = 1000;
  bool progress = false;
  double progress_interval_s = 10.0;
  bool stats = false;
  bool profile = false;
  ShuffleBackendKind shuffle = ShuffleBackendKind::kAuto;
  uint32_t interleave = kInterleaveDepthAuto;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

int Usage(const char* self) {
  std::fprintf(stderr,
               "usage: %s --graph=edges.txt | --csr=graph.csr [--mmap] "
               "[--algo=deepwalk|node2vec]\n"
               "  [--steps=N] [--rounds=N] [--walkers=N] [--p=F] [--q=F] "
               "[--weighted] [--stop=F]\n"
               "  [--seed=N] [--out=paths.txt] [--pairs=pairs.txt] [--stats] "
               "[--profile] [--metrics-json=metrics.json]\n"
               "  [--trace-json=trace.json] [--telemetry-jsonl=out.jsonl] "
               "[--telemetry-interval-ms=N] [--progress[=SECONDS]]\n"
               "  [--shuffle=direct|binned|auto] [--interleave=auto|N]\n",
               self);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    const char* a = argv[i];
    if (ParseFlag(a, "--graph", &value)) {
      args.graph_path = value;
    } else if (ParseFlag(a, "--csr", &value)) {
      args.csr_path = value;
    } else if (std::strcmp(a, "--mmap") == 0) {
      args.use_mmap = true;
    } else if (std::strcmp(a, "--undirected") == 0) {
      args.undirected = true;
    } else if (ParseFlag(a, "--algo", &value)) {
      args.algo = value;
    } else if (ParseFlag(a, "--steps", &value)) {
      args.steps = static_cast<uint32_t>(std::stoul(value));
    } else if (ParseFlag(a, "--rounds", &value)) {
      args.rounds = static_cast<uint32_t>(std::stoul(value));
    } else if (ParseFlag(a, "--walkers", &value)) {
      args.walkers = std::stoull(value);
    } else if (ParseFlag(a, "--p", &value)) {
      args.p = std::stod(value);
    } else if (ParseFlag(a, "--q", &value)) {
      args.q = std::stod(value);
    } else if (std::strcmp(a, "--weighted") == 0) {
      args.weighted = true;
    } else if (ParseFlag(a, "--stop", &value)) {
      args.stop = std::stod(value);
    } else if (ParseFlag(a, "--seed", &value)) {
      args.seed = std::stoull(value);
    } else if (ParseFlag(a, "--out", &value)) {
      args.out_path = value;
    } else if (ParseFlag(a, "--pairs", &value)) {
      args.pairs_path = value;
    } else if (ParseFlag(a, "--metrics-json", &value)) {
      args.metrics_path = value;
    } else if (ParseFlag(a, "--trace-json", &value)) {
      args.trace_path = value;
    } else if (ParseFlag(a, "--telemetry-jsonl", &value)) {
      args.telemetry_path = value;
    } else if (ParseFlag(a, "--telemetry-interval-ms", &value)) {
      args.telemetry_interval_ms = static_cast<uint32_t>(std::stoul(value));
    } else if (std::strcmp(a, "--progress") == 0) {
      args.progress = true;
    } else if (ParseFlag(a, "--progress", &value)) {
      args.progress = true;
      args.progress_interval_s = std::stod(value);
    } else if (std::strcmp(a, "--stats") == 0) {
      args.stats = true;
    } else if (std::strcmp(a, "--profile") == 0) {
      args.profile = true;
    } else if (ParseFlag(a, "--shuffle", &value)) {
      if (!ParseShuffleBackendName(value, &args.shuffle)) {
        std::fprintf(stderr, "bad --shuffle value: %s\n", value.c_str());
        return Usage(argv[0]);
      }
    } else if (ParseFlag(a, "--interleave", &value)) {
      if (!ParseInterleaveDepth(value, &args.interleave)) {
        std::fprintf(stderr, "bad --interleave value: %s\n", value.c_str());
        return Usage(argv[0]);
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a);
      return Usage(argv[0]);
    }
  }
  if (args.graph_path.empty() == args.csr_path.empty()) {
    std::fprintf(stderr, "exactly one of --graph / --csr is required\n");
    return Usage(argv[0]);
  }
  if (args.algo != "deepwalk" && args.algo != "node2vec" && args.algo != "mh") {
    std::fprintf(stderr, "unknown --algo=%s\n", args.algo.c_str());
    return Usage(argv[0]);
  }

  try {
    // Tracing starts before the load so graph I/O, degree sort, and the plan
    // solve all land in the trace alongside the walk itself.
    if (!args.trace_path.empty()) {
      Tracer::SetThisThreadName("main");
      Tracer::Get().Enable();
    }

    // ---- load -----------------------------------------------------------------
    Timer load_timer;
    CsrGraph raw;
    if (!args.graph_path.empty()) {
      raw = LoadEdgeListText(args.graph_path,
                             {.undirected = args.undirected,
                              .remove_self_loops = true,
                              .remove_zero_degree = true});
    } else if (args.use_mmap) {
      raw = LoadCsrBinaryMapped(args.csr_path);
    } else {
      raw = LoadCsrBinary(args.csr_path);
    }
    std::fprintf(stderr, "loaded |V|=%u |E|=%llu%s%s in %.2fs\n",
                 raw.num_vertices(),
                 static_cast<unsigned long long>(raw.num_edges()),
                 raw.weighted() ? " weighted" : "",
                 raw.memory_mapped() ? " (memory-mapped)" : "",
                 load_timer.Elapsed());

    // ---- pre-process (degree sort) ---------------------------------------------
    Timer sort_timer;
    DegreeSortedGraph sorted = DegreeSort(raw);
    std::fprintf(stderr, "degree sort: %.2fs\n", sort_timer.Elapsed());

    // ---- walk -------------------------------------------------------------------
    WalkSpec spec;
    spec.algorithm = args.algo == "node2vec"
                         ? WalkAlgorithm::kNode2Vec
                         : (args.algo == "mh" ? WalkAlgorithm::kMetropolisHastings
                                              : WalkAlgorithm::kDeepWalk);
    spec.steps = args.steps;
    spec.num_walkers =
        args.walkers != 0
            ? args.walkers
            : static_cast<Wid>(args.rounds) * sorted.graph.num_vertices();
    spec.node2vec = {args.p, args.q};
    spec.use_edge_weights = args.weighted;
    spec.stop_probability = args.stop;
    spec.seed = args.seed;
    spec.keep_paths = !args.out_path.empty() || !args.pairs_path.empty();

    EngineOptions engine_options;
    engine_options.record_step_stats = args.profile || !args.metrics_path.empty();
    engine_options.collect_counters = !args.metrics_path.empty();
    engine_options.shuffle_backend = args.shuffle;
    engine_options.interleave_depth = args.interleave;
    ProgressReporter progress(args.progress_interval_s);
    if (args.progress) {
      engine_options.progress = &progress;
    }
    // Telemetry snapshots cover the walk itself; Stop() before the metrics
    // JSON is written, so the file's final line and fm-metrics-v1 both hold
    // the same end-of-run counter values.
    telemetry::TelemetrySnapshotWriter telemetry_writer(
        args.telemetry_path, args.telemetry_interval_ms);
    if (!args.telemetry_path.empty() && !telemetry_writer.Start()) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args.telemetry_path.c_str());
      return 1;
    }
    FlashMobEngine engine(sorted.graph, engine_options);
    WalkResult result = engine.Run(spec);
    telemetry_writer.Stop();
    if (!args.telemetry_path.empty()) {
      std::fprintf(stderr,
                   "wrote %llu telemetry snapshots to %s — summarize with: "
                   "fmmon --summary %s\n",
                   static_cast<unsigned long long>(
                       telemetry_writer.lines_written()),
                   args.telemetry_path.c_str(), args.telemetry_path.c_str());
    }
    if (!args.trace_path.empty()) {
      Tracer& tracer = Tracer::Get();
      tracer.Disable();
      if (!tracer.WriteJson(args.trace_path)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     args.trace_path.c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "wrote %llu spans (%llu dropped) to %s — open in "
                   "ui.perfetto.dev or run: fmtrace %s\n",
                   static_cast<unsigned long long>(tracer.TotalEvents()),
                   static_cast<unsigned long long>(tracer.TotalDropped()),
                   args.trace_path.c_str(), args.trace_path.c_str());
    }
    std::fprintf(stderr,
                 "walked %llu steps in %.2fs: %.1f ns/step "
                 "(sample %.2fs, shuffle %.2fs [%s], other %.2fs, "
                 "%u episodes)\n",
                 static_cast<unsigned long long>(result.stats.total_steps),
                 result.stats.times.Total(), result.stats.PerStepNs(),
                 result.stats.times.sample_s, result.stats.times.shuffle_s,
                 result.stats.shuffle_backend.c_str(),
                 result.stats.times.other_s, result.stats.episodes);
    // Per-step wall-time spread from the telemetry histogram the engine fills
    // at stage barriers — the same source every exporter reads, so this line
    // can never disagree with --telemetry-jsonl (stats::Percentile over an
    // ad-hoc vector of step times would be a second, divergent aggregation).
    {
      telemetry::HistogramSnapshot step_ns =
          telemetry::TelemetryRegistry::Get()
              .HistogramRef("fm.engine.step_ns")
              .Snapshot();
      if (step_ns.count > 0) {
        std::fprintf(stderr,
                     "per-step wall time: mean %.0f ns, p50 %.0f, p99 %.0f "
                     "(%llu steps, log2 buckets)\n",
                     step_ns.Mean(), step_ns.Percentile(50),
                     step_ns.Percentile(99),
                     static_cast<unsigned long long>(step_ns.count));
      }
    }

    // ---- output ------------------------------------------------------------------
    if (!args.metrics_path.empty()) {
      MetricsMeta meta;
      meta.tool = "fmwalk";
      meta.graph = !args.graph_path.empty() ? args.graph_path : args.csr_path;
      meta.algorithm = args.algo;
      meta.seed = args.seed;
      meta.threads = ThreadPool::Global().thread_count();
      if (!WriteWalkMetricsJson(args.metrics_path, meta, result.stats,
                                &engine.plan())) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     args.metrics_path.c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote metrics (backend=%s) to %s\n",
                   result.stats.perf_backend.empty()
                       ? "off"
                       : result.stats.perf_backend.c_str(),
                   args.metrics_path.c_str());
    }
    if (!args.out_path.empty()) {
      std::ofstream out(args.out_path);
      for (Wid w = 0; w < result.paths.num_walkers(); ++w) {
        auto path = result.paths.Path(w);
        for (size_t i = 0; i < path.size(); ++i) {
          out << (i == 0 ? "" : " ") << sorted.new_to_old[path[i]];
        }
        out << '\n';
      }
      std::fprintf(stderr, "wrote %llu walks to %s\n",
                   static_cast<unsigned long long>(result.paths.num_walkers()),
                   args.out_path.c_str());
    }
    if (!args.pairs_path.empty()) {
      std::ofstream out(args.pairs_path);
      uint64_t pairs = 0;
      result.paths.StreamEdges([&](Vid from, Vid to) {
        out << sorted.new_to_old[from] << ' ' << sorted.new_to_old[to] << '\n';
        ++pairs;
      });
      std::fprintf(stderr, "wrote %llu sampled edges to %s\n",
                   static_cast<unsigned long long>(pairs),
                   args.pairs_path.c_str());
    }
    if (args.profile) {
      std::printf("%3s %4s %10s %10s %10s %12s %12s %12s\n", "ep", "step",
                  "scatter_ms", "sample_ms", "gather_ms", "live", "min vp",
                  "max vp");
      for (const StepStageRecord& rec : result.stats.step_records) {
        Wid min_vp = 0;
        Wid max_vp = 0;
        if (!rec.vp_walkers.empty()) {
          auto [lo, hi] =
              std::minmax_element(rec.vp_walkers.begin(), rec.vp_walkers.end());
          min_vp = *lo;
          max_vp = *hi;
        }
        std::printf("%3llu %4u %10.3f %10.3f %10.3f %12llu %12llu %12llu\n",
                    static_cast<unsigned long long>(rec.episode), rec.step,
                    rec.scatter_s * 1e3, rec.sample_s * 1e3, rec.gather_s * 1e3,
                    static_cast<unsigned long long>(rec.live_walkers),
                    static_cast<unsigned long long>(min_vp),
                    static_cast<unsigned long long>(max_vp));
      }
    }
    if (args.stats) {
      DegreeBucketStats stats =
          ComputeDegreeBucketStats(sorted.graph, result.visit_counts);
      std::printf("%-10s %12s %10s %10s\n", "bucket", "avg degree", "edges%",
                  "visits%");
      const char* names[4] = {"<1%", "1-5%", "5-25%", "25-100%"};
      for (size_t b = 0; b < kDegreeBuckets; ++b) {
        std::printf("%-10s %12.1f %9.1f%% %9.1f%%\n", names[b],
                    stats.avg_degree[b], stats.edge_share[b] * 100,
                    stats.visit_share[b] * 100);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
