// fmlint — repo-specific lint rules clang-tidy cannot express.
//
// Usage: fmlint <repo-root>
//
// Scans src/, tests/, bench/, tools/, examples/ for *.h, *.cc, *.cpp and
// enforces:
//   include-guard     headers use #ifndef/#define SRC_PATH_TO_FILE_H_ guards
//                     derived from the repo-relative path.
//   banned-rng        no rand()/srand()/std::mt19937/std::random_device/...
//                     outside src/util/rng.* — all randomness flows through the
//                     seeded, splittable generators so walks stay reproducible.
//   naked-new         no `new` expressions; ownership lives in containers and
//                     smart pointers.
//   reinterpret-arith no reinterpret_cast to a pointer type whose operand does
//                     byte-pointer arithmetic (the unaligned-mmap-load pattern);
//                     use a memcpy-based safe read or an alignment-checked span
//                     helper instead.
//   visit-counts-mut  no direct mutation of a WalkResult's `visit_counts`
//                     member outside src/core/ — counts are produced by the
//                     engine's streaming sharded accumulation; consumers read
//                     them or run their own ShardedVisitCounter observer.
//   raw-clock         no direct steady_clock/system_clock/high_resolution_clock
//                     ::now(), clock_gettime, or gettimeofday outside
//                     src/util/timer.h, src/util/trace.cc, and
//                     src/util/perf_counters.cc — timing flows through Timer /
//                     TraceNowNs so spans and stage seconds come from one
//                     monotonic clock and stay mutually comparable.
//   perf-syscall      no direct perf_event_open use (the raw syscall, the
//                     __NR_perf_event_open number, or struct perf_event_attr)
//                     outside src/util/perf_counters.cc — all hardware-counter
//                     access goes through PerfCounterGroup/StagePerfMonitor so
//                     the graceful-degradation contract (noop backend instead
//                     of a hard failure) holds everywhere, and tests can
//                     intercept the one syscall site via
//                     SetPerfEventOpenForTest.
//
// Comments and string/char literals are stripped before matching. A rule is
// suppressed for one line by putting `fmlint:allow(rule-name)` in a comment on
// that line. Exit status: 0 clean, 1 violations, 2 usage/IO error.
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;  // repo-relative path
  size_t line = 0;   // 1-based
  std::string rule;
  std::string message;
};

// Replaces comments and string/char literal contents with spaces, preserving
// line structure, so keyword regexes only see real code.
std::string StripCommentsAndStrings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out += '"';
        } else if (c == '\'') {
          state = State::kChar;
          out += '\'';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out += '"';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += '\'';
        } else {
          out += ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    lines.push_back(cur);
  }
  return lines;
}

std::string ExpectedGuard(const std::string& rel_path) {
  std::string guard;
  guard.reserve(rel_path.size() + 1);
  for (char c : rel_path) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

bool Suppressed(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("fmlint:allow(" + rule + ")") != std::string::npos;
}

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  void LintFile(const fs::path& path) {
    std::string rel = fs::relative(path, root_).generic_string();
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      Report(rel, 0, "io", "cannot read file");
      return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    std::vector<std::string> raw = SplitLines(text);
    std::vector<std::string> code = SplitLines(StripCommentsAndStrings(text));
    ++files_;

    if (path.extension() == ".h") {
      CheckIncludeGuard(rel, code, raw);
    }
    bool rng_exempt = rel == "src/util/rng.h" || rel == "src/util/rng.cc";
    bool clock_exempt = rel == "src/util/timer.h" ||
                        rel == "src/util/trace.cc" ||
                        rel == "src/util/perf_counters.cc";
    for (size_t i = 0; i < code.size(); ++i) {
      const std::string& line = code[i];
      const std::string& orig = i < raw.size() ? raw[i] : line;
      if (!rng_exempt && std::regex_search(line, banned_rng_) &&
          !Suppressed(orig, "banned-rng")) {
        Report(rel, i + 1, "banned-rng",
               "use the generators in src/util/rng.h (seeded, splittable) "
               "instead of ad-hoc RNG");
      }
      if (std::regex_search(line, naked_new_) && line.find('#') == std::string::npos &&
          !Suppressed(orig, "naked-new")) {
        Report(rel, i + 1, "naked-new",
               "no naked new; use containers or std::make_unique");
      }
      if (std::regex_search(line, reinterpret_arith_) &&
          !Suppressed(orig, "reinterpret-arith")) {
        Report(rel, i + 1, "reinterpret-arith",
               "reinterpret_cast over byte arithmetic risks unaligned/UB loads; "
               "memcpy the value out or use an alignment-checked helper");
      }
      if (rel.rfind("src/core/", 0) != 0 &&
          std::regex_search(line, visit_counts_mut_) &&
          !Suppressed(orig, "visit-counts-mut")) {
        Report(rel, i + 1, "visit-counts-mut",
               "visit_counts is engine output; outside src/core/ read it or "
               "accumulate via a ShardedVisitCounter observer");
      }
      if (!clock_exempt && std::regex_search(line, raw_clock_) &&
          !Suppressed(orig, "raw-clock")) {
        Report(rel, i + 1, "raw-clock",
               "raw clock reads fragment the timing story; use fm::Timer "
               "(src/util/timer.h) or fm::TraceNowNs (src/util/trace.h)");
      }
      if (rel != "src/util/perf_counters.cc" &&
          std::regex_search(line, perf_syscall_) &&
          !Suppressed(orig, "perf-syscall")) {
        Report(rel, i + 1, "perf-syscall",
               "direct perf_event_open use bypasses the degradation contract; "
               "go through PerfCounterGroup/StagePerfMonitor "
               "(src/util/perf_counters.h)");
      }
    }
  }

  void CheckIncludeGuard(const std::string& rel,
                         const std::vector<std::string>& code,
                         const std::vector<std::string>& raw) {
    std::string expected = ExpectedGuard(rel);
    std::regex ifndef_re(R"(^\s*#\s*ifndef\s+([A-Za-z0-9_]+))");
    std::regex define_re(R"(^\s*#\s*define\s+([A-Za-z0-9_]+))");
    std::smatch m;
    for (size_t i = 0; i < code.size(); ++i) {
      if (!std::regex_search(code[i], m, ifndef_re)) {
        continue;
      }
      if (Suppressed(raw[i], "include-guard")) {
        return;
      }
      if (m[1] != expected) {
        Report(rel, i + 1, "include-guard",
               "guard '" + m[1].str() + "' should be '" + expected + "'");
        return;
      }
      if (i + 1 >= code.size() || !std::regex_search(code[i + 1], m, define_re) ||
          m[1] != expected) {
        Report(rel, i + 2, "include-guard",
               "#define " + expected + " must immediately follow the #ifndef");
      }
      return;
    }
    Report(rel, 1, "include-guard", "missing include guard " + expected);
  }

  void Report(const std::string& rel, size_t line, const std::string& rule,
              const std::string& message) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", rel.c_str(), line, rule.c_str(),
                 message.c_str());
    ++violations_;
  }

  int violations() const { return violations_; }
  int files() const { return files_; }

 private:
  fs::path root_;
  int violations_ = 0;
  int files_ = 0;
  // Word-boundary guard on the left so identifiers like `operand(` don't match.
  std::regex banned_rng_{
      R"((^|[^A-Za-z0-9_])(std\s*::\s*)?(rand|srand|rand_r|random|drand48|erand48|lrand48)\s*\()"
      R"(|std\s*::\s*(mt19937|mt19937_64|minstd_rand0?|random_device|default_random_engine|ranlux\w*|knuth_b))"};
  std::regex naked_new_{R"((^|[^A-Za-z0-9_.:>])new[\s(])"};
  std::regex reinterpret_arith_{
      R"(reinterpret_cast\s*<[^>]*\*[^>]*>\s*\([^;]*\+)"};
  // Member access only (`.visit_counts` / `->visit_counts`) so locals named
  // visit_counts don't trip it; flags assignment, compound assignment,
  // increment/decrement (either side), and mutating container methods.
  std::regex visit_counts_mut_{
      R"((\+\+|--)[^;=]*(\.|->)\s*visit_counts)"
      R"(|(\.|->)\s*visit_counts\s*\.\s*(assign|resize|clear|push_back|emplace_back|swap)\s*\()"
      R"(|(\.|->)\s*visit_counts\s*(\[[^\]]*\]\s*)?(=[^=]|\+=|-=|\+\+|--))"};
  // Any direct monotonic/wall clock read outside the sanctioned sites.
  std::regex raw_clock_{
      R"((steady_clock|system_clock|high_resolution_clock)\s*::\s*now)"
      R"(|(^|[^A-Za-z0-9_])(clock_gettime|gettimeofday)\s*\()"};
  // Raw syscall, syscall number, or attr struct; PerfEventOpenFn (the test
  // shim typedef) deliberately does not match.
  std::regex perf_syscall_{
      R"((^|[^A-Za-z0-9_])(__NR_)?perf_event_open\s*[(,;])"
      R"(|(^|[^A-Za-z0-9_])__NR_perf_event_open(^|[^A-Za-z0-9_])?)"
      R"(|(^|[^A-Za-z0-9_])perf_event_attr([^A-Za-z0-9_]|$))"};
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: fmlint <repo-root>\n");
    return 2;
  }
  fs::path root(argv[1]);
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "fmlint: not a directory: %s\n", argv[1]);
    return 2;
  }
  Linter linter(root);
  const char* kDirs[] = {"src", "tests", "bench", "tools", "examples"};
  for (const char* dir : kDirs) {
    fs::path sub = root / dir;
    if (!fs::is_directory(sub)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(sub)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      fs::path ext = entry.path().extension();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
        linter.LintFile(entry.path());
      }
    }
  }
  if (linter.violations() > 0) {
    std::fprintf(stderr, "fmlint: %d violation(s) in %d files\n",
                 linter.violations(), linter.files());
    return 1;
  }
  std::printf("fmlint: %d files clean\n", linter.files());
  return 0;
}
