#!/usr/bin/env python3
"""Run clang-tidy over the repo's compile database and fail on any diagnostic.

Invoked as a ctest test (lint_clang_tidy) when a clang-tidy binary is found at
configure time; the CI lint job runs it the same way. Only first-party
translation units (src/, tests/, tools/, bench/, examples/) are checked, and
the .clang-tidy config at the repo root governs the check set.
"""

import argparse
import json
import multiprocessing
import os
import subprocess
import sys


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--source-dir", required=True)
    parser.add_argument("--jobs", type=int, default=0)
    args = parser.parse_args()

    db_path = os.path.join(args.build_dir, "compile_commands.json")
    try:
        with open(db_path, encoding="utf-8") as f:
            database = json.load(f)
    except OSError as e:
        print(f"cannot read compile database: {e}", file=sys.stderr)
        return 2

    source_dir = os.path.realpath(args.source_dir)
    first_party = tuple(
        os.path.join(source_dir, d) + os.sep
        for d in ("src", "tests", "tools", "bench", "examples")
    )
    files = sorted(
        {
            os.path.realpath(entry["file"])
            for entry in database
            if os.path.realpath(entry["file"]).startswith(first_party)
        }
    )
    if not files:
        print("no first-party files in compile database", file=sys.stderr)
        return 2

    jobs = args.jobs or multiprocessing.cpu_count()
    failures = 0
    # Batch files per invocation; clang-tidy parallelism is per-process, so run
    # several processes with one file each, `jobs` at a time.
    running = []
    queue = list(files)

    def drain(block_all: bool) -> None:
        nonlocal failures
        while running and (block_all or len(running) >= jobs):
            proc, name = running.pop(0)
            out, _ = proc.communicate()
            text = out.decode(errors="replace")
            # clang-tidy exits nonzero on warnings-as-errors; also catch plain
            # warnings in case a config drops WarningsAsErrors.
            if proc.returncode != 0 or " warning:" in text or " error:" in text:
                failures += 1
                sys.stderr.write(f"== {name}\n{text}\n")

    while queue or running:
        if queue and len(running) < jobs:
            f = queue.pop(0)
            proc = subprocess.Popen(
                [args.clang_tidy, "-p", args.build_dir, "--quiet", f],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
            )
            running.append((proc, os.path.relpath(f, source_dir)))
        else:
            drain(block_all=False)
    drain(block_all=True)

    if failures:
        print(f"clang-tidy: {failures} file(s) with diagnostics", file=sys.stderr)
        return 1
    print(f"clang-tidy: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
