// fmgen — synthetic graph generator front end (writes CSR or text edge lists the
// fmwalk tool consumes).
//
// Usage:
//   fmgen --kind=powerlaw --v=1000000 --avgdeg=16 --alpha=0.85 --out=g.csr
//   fmgen --kind=rmat --scale=20 --edgefactor=16 --out=g.csr
//   fmgen --kind=uniform --v=100000 --deg=8 --out=g.txt
//   fmgen --dataset=TW --fmscale=2 --out=tw.csr     # paper stand-in at 2x size
//
// Output format follows the --out extension: ".csr" binary CSR, anything else a
// text edge list.
#include <cstdio>
#include <cstring>
#include <string>

#include "src/fm.h"

namespace {

using namespace fm;

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

int Usage(const char* self) {
  std::fprintf(
      stderr,
      "usage: %s --out=FILE (.csr binary | anything-else text) and one of:\n"
      "  --kind=powerlaw --v=N [--avgdeg=F] [--alpha=F] [--maxdeg=N] "
      "[--locality=F] [--weights] [--shuffle]\n"
      "  --kind=rmat --scale=N [--edgefactor=N]\n"
      "  --kind=uniform --v=N --deg=N\n"
      "  --dataset=YT|TW|FS|UK|YH [--fmscale=F]\n"
      "common: [--seed=N]\n",
      self);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string kind, out, dataset;
  uint64_t v = 0, deg = 0, maxdeg = 0, scale = 16, edgefactor = 16, seed = 1;
  double avgdeg = 8.0, alpha = 0.8, locality = 0.0, fmscale = 1.0;
  bool weights = false, shuffle = false;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    const char* a = argv[i];
    if (ParseFlag(a, "--kind", &value)) {
      kind = value;
    } else if (ParseFlag(a, "--out", &value)) {
      out = value;
    } else if (ParseFlag(a, "--dataset", &value)) {
      dataset = value;
    } else if (ParseFlag(a, "--v", &value)) {
      v = std::stoull(value);
    } else if (ParseFlag(a, "--deg", &value)) {
      deg = std::stoull(value);
    } else if (ParseFlag(a, "--maxdeg", &value)) {
      maxdeg = std::stoull(value);
    } else if (ParseFlag(a, "--scale", &value)) {
      scale = std::stoull(value);
    } else if (ParseFlag(a, "--edgefactor", &value)) {
      edgefactor = std::stoull(value);
    } else if (ParseFlag(a, "--seed", &value)) {
      seed = std::stoull(value);
    } else if (ParseFlag(a, "--avgdeg", &value)) {
      avgdeg = std::stod(value);
    } else if (ParseFlag(a, "--alpha", &value)) {
      alpha = std::stod(value);
    } else if (ParseFlag(a, "--locality", &value)) {
      locality = std::stod(value);
    } else if (ParseFlag(a, "--fmscale", &value)) {
      fmscale = std::stod(value);
    } else if (std::strcmp(a, "--weights") == 0) {
      weights = true;
    } else if (std::strcmp(a, "--shuffle") == 0) {
      shuffle = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a);
      return Usage(argv[0]);
    }
  }
  if (out.empty() || (kind.empty() == dataset.empty())) {
    return Usage(argv[0]);
  }

  try {
    CsrGraph graph;
    Timer timer;
    if (!dataset.empty()) {
      graph = LoadDataset(DatasetByName(dataset), fmscale);
    } else if (kind == "powerlaw") {
      if (v == 0) {
        return Usage(argv[0]);
      }
      PowerLawConfig config;
      config.degrees.num_vertices = static_cast<Vid>(v);
      config.degrees.avg_degree = avgdeg;
      config.degrees.alpha = alpha;
      config.degrees.max_degree =
          maxdeg != 0 ? static_cast<Degree>(maxdeg) : static_cast<Degree>(v / 16);
      config.locality = locality;
      config.random_weights = weights;
      config.shuffle_labels = shuffle;
      config.seed = seed;
      graph = GeneratePowerLawGraph(config);
    } else if (kind == "rmat") {
      RmatConfig config;
      config.scale = static_cast<uint32_t>(scale);
      config.edge_factor = static_cast<uint32_t>(edgefactor);
      config.seed = seed;
      graph = GenerateRmatGraph(config);
    } else if (kind == "uniform") {
      if (v == 0 || deg == 0) {
        return Usage(argv[0]);
      }
      graph = GenerateUniformDegreeGraph(static_cast<Vid>(v),
                                         static_cast<Degree>(deg), seed);
    } else {
      std::fprintf(stderr, "unknown --kind=%s\n", kind.c_str());
      return Usage(argv[0]);
    }
    std::fprintf(stderr, "generated |V|=%u |E|=%llu%s in %.2fs\n",
                 graph.num_vertices(),
                 static_cast<unsigned long long>(graph.num_edges()),
                 graph.weighted() ? " weighted" : "", timer.Elapsed());

    if (out.size() > 4 && out.substr(out.size() - 4) == ".csr") {
      SaveCsrBinary(graph, out);
    } else {
      SaveEdgeListText(graph, out);
    }
    std::fprintf(stderr, "wrote %s (%.1f MB CSR-equivalent)\n", out.c_str(),
                 graph.CsrBytes() / 1048576.0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
