#!/usr/bin/env python3
"""Bench-regression gate over fm-bench-trajectory-v1 documents.

Compares the ns/step timing points of one or more freshly produced trajectory
files (bench-smoke output) against the committed BENCH_*.json history and
fails on regressions beyond a tolerance. Noise-tolerant by construction: each
(series, point) key is compared against the *best* (minimum) value that key
ever recorded in the committed history, so a single slow historical run can
never mask a regression, and run-to-run jitter has to beat the all-time best
by the full tolerance before the gate trips.

Keys present only on one side are reported but never fail the gate (benches
grow new series over time, and scaled-down CI runs may skip points).

Usage:
  tools/check_bench_trajectory.py [options] CURRENT.json [CURRENT2.json ...]

Options:
  --history GLOB     history files (default: BENCH_*.json next to this repo's
                     root; pass multiple times for several globs)
  --tolerance PCT    max allowed regression in percent (default: 25)
  --filter SUBSTR    only check keys whose "series/point" contains SUBSTR
                     (e.g. "fig1c/flashmob-interleave" for the overhead gate)
  --table FILE       also write the delta table to FILE (CI artifact)

Exit status: 0 clean, 1 regression past tolerance, 2 usage/schema error.
"""

import argparse
import glob
import json
import os
import sys


def load_points(path):
    """Returns {(series, point): value} for the ns/step points of one file."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "fm-bench-trajectory-v1":
        raise ValueError(f"{path}: schema {doc.get('schema')!r}, "
                         "expected fm-bench-trajectory-v1")
    points = {}
    for p in doc.get("points", []):
        if p.get("unit") != "ns/step":
            continue  # depths, ratios etc. are not timing points
        points[(p["series"], p["point"])] = float(p["value"])
    return points


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("current", nargs="+", help="fresh trajectory JSON")
    parser.add_argument("--history", action="append", default=[])
    parser.add_argument("--tolerance", type=float, default=25.0)
    parser.add_argument("--filter", default="")
    parser.add_argument("--table", default="")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    globs = args.history or [os.path.join(repo_root, "BENCH_*.json")]
    history_files = sorted(set(sum((glob.glob(g) for g in globs), [])))
    if not history_files:
        print(f"error: no history files match {globs}", file=sys.stderr)
        return 2

    try:
        best = {}  # key -> (value, file)
        for path in history_files:
            for key, value in load_points(path).items():
                if key not in best or value < best[key][0]:
                    best[key] = (value, os.path.basename(path))
        current = {}  # key -> (value, file)
        for path in args.current:
            for key, value in load_points(path).items():
                current[key] = (value, os.path.basename(path))
    except (OSError, ValueError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    def wanted(key):
        return args.filter in f"{key[0]}/{key[1]}"

    shared = sorted(k for k in current if k in best and wanted(k))
    only_current = sorted(k for k in current if k not in best and wanted(k))
    only_history = sorted(k for k in best if k not in current and wanted(k))

    lines = []
    lines.append(f"bench trajectory gate: tolerance {args.tolerance:g}%, "
                 f"{len(history_files)} history files, "
                 f"{len(shared)} shared ns/step points")
    lines.append(f"{'series/point':<44} {'best':>10} {'current':>10} "
                 f"{'delta':>8}  status")
    regressions = []
    for key in shared:
        best_value, best_file = best[key]
        cur_value, _ = current[key]
        delta = ((cur_value - best_value) / best_value * 100
                 if best_value > 0 else 0.0)
        status = "ok"
        if delta > args.tolerance:
            status = "REGRESSION"
            regressions.append(key)
        elif delta < 0:
            status = "improved"
        lines.append(f"{key[0] + '/' + key[1]:<44} {best_value:>10.4g} "
                     f"{cur_value:>10.4g} {delta:>+7.1f}%  {status}"
                     f" (best: {best_file})")
    for key in only_current:
        lines.append(f"{key[0] + '/' + key[1]:<44} {'-':>10} "
                     f"{current[key][0]:>10.4g} {'':>8}  new (no history)")
    for key in only_history:
        lines.append(f"{key[0] + '/' + key[1]:<44} {best[key][0]:>10.4g} "
                     f"{'-':>10} {'':>8}  not in this run")
    if not shared:
        lines.append("warning: no overlapping ns/step points — nothing gated")
    lines.append(f"result: {len(regressions)} regression(s) past "
                 f"{args.tolerance:g}%")

    table = "\n".join(lines) + "\n"
    sys.stdout.write(table)
    if args.table:
        with open(args.table, "w") as f:
            f.write(table)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
