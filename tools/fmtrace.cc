// fmtrace — offline summary of a --trace-json capture.
//
// Usage:
//   fmtrace [--top=N] trace.json
//
// Reads the Chrome trace-event JSON written by `fmwalk --trace-json` (or the
// fig benchmarks) and prints:
//   - per-category totals (span count, total/mean/max duration),
//   - per-thread totals (events, busy time) with thread names,
//   - the engine stage-skew table: "engine.vp" sample chunks grouped by their
//     "step" arg, with max/mean duration per step (skew = max/mean — the Fig 10
//     load-balance view, from a trace instead of a re-run),
//   - the top-N longest spans (default 10),
//   - the exporter's otherData accounting (exported/dropped events, threads).
//
// The same file loads in ui.perfetto.dev for the zoomable timeline; fmtrace is
// the grep-able terminal view.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/json.h"

namespace {

using fm::json::ParseJson;
using fm::json::Value;

struct Span {
  std::string category;
  std::string name;
  double ts_us = 0;
  double dur_us = 0;
  int64_t tid = 0;
  std::map<std::string, double> args;
};

struct Accum {
  uint64_t count = 0;
  double total_us = 0;
  double max_us = 0;
  void Add(double dur_us) {
    ++count;
    total_us += dur_us;
    max_us = std::max(max_us, dur_us);
  }
  double MeanUs() const {
    return count == 0 ? 0 : total_us / static_cast<double>(count);
  }
};

int Usage() {
  std::fprintf(stderr, "usage: fmtrace [--top=N] trace.json\n");
  return 2;
}

std::string Fmt(double us) {
  char buf[32];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fs", us / 1e6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", us);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  int top_n = 10;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--top=", 6) == 0) {
      top_n = std::atoi(a + 6);
    } else if (a[0] == '-' && a[1] != '\0') {
      return Usage();
    } else {
      if (!path.empty()) {
        return Usage();
      }
      path = a;
    }
  }
  if (path.empty()) {
    return Usage();
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();

  Value doc;
  try {
    doc = ParseJson(ss.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    return 1;
  }

  // Accept both the full document and a bare traceEvents array.
  const Value* events = nullptr;
  if (doc.type == Value::Type::kArray) {
    events = &doc;
  } else if (doc.Has("traceEvents") &&
             doc.At("traceEvents").type == Value::Type::kArray) {
    events = &doc.At("traceEvents");
  } else {
    std::fprintf(stderr, "error: %s: no traceEvents array\n", path.c_str());
    return 1;
  }

  std::vector<Span> spans;
  std::map<int64_t, std::string> thread_names;
  for (const Value& e : events->array) {
    if (e.type != Value::Type::kObject || !e.Has("ph")) {
      continue;
    }
    const std::string& ph = e.Str("ph");
    int64_t tid = e.Has("tid") ? static_cast<int64_t>(e.Num("tid")) : 0;
    if (ph == "M") {
      if (e.Has("name") && e.Str("name") == "thread_name" && e.Has("args")) {
        thread_names[tid] = e.At("args").Str("name");
      }
      continue;
    }
    if (ph != "X") {
      continue;
    }
    Span s;
    s.category = e.Has("cat") ? e.Str("cat") : "";
    s.name = e.Has("name") ? e.Str("name") : "";
    s.ts_us = e.Has("ts") ? e.Num("ts") : 0;
    s.dur_us = e.Has("dur") ? e.Num("dur") : 0;
    s.tid = tid;
    if (e.Has("args")) {
      for (const auto& [key, val] : e.At("args").object) {
        if (val.type == Value::Type::kNumber) {
          s.args[key] = val.number;
        }
      }
    }
    spans.push_back(std::move(s));
  }

  if (spans.empty()) {
    std::fprintf(stderr, "%s: no complete (\"ph\":\"X\") spans\n", path.c_str());
    return 1;
  }

  // ---- per-category ---------------------------------------------------------
  std::map<std::string, Accum> by_category;
  std::map<std::string, Accum> by_cat_name;
  std::map<int64_t, Accum> by_thread;
  for (const Span& s : spans) {
    by_category[s.category].Add(s.dur_us);
    by_cat_name[s.category + "/" + s.name].Add(s.dur_us);
    by_thread[s.tid].Add(s.dur_us);
  }

  std::printf("%s: %zu spans, %zu threads\n\n", path.c_str(), spans.size(),
              by_thread.size());

  std::printf("per category:\n");
  std::printf("  %-28s %8s %12s %12s %12s\n", "category/name", "count",
              "total", "mean", "max");
  for (const auto& [cat, acc] : by_category) {
    std::printf("  %-28s %8" PRIu64 " %12s %12s %12s\n", cat.c_str(),
                acc.count, Fmt(acc.total_us).c_str(), Fmt(acc.MeanUs()).c_str(),
                Fmt(acc.max_us).c_str());
    for (const auto& [key, sub] : by_cat_name) {
      if (key.compare(0, cat.size() + 1, cat + "/") == 0) {
        std::printf("    %-26s %8" PRIu64 " %12s %12s %12s\n",
                    key.c_str() + cat.size() + 1, sub.count,
                    Fmt(sub.total_us).c_str(), Fmt(sub.MeanUs()).c_str(),
                    Fmt(sub.max_us).c_str());
      }
    }
  }

  // ---- per-thread -----------------------------------------------------------
  std::printf("\nper thread:\n");
  std::printf("  %-20s %8s %12s\n", "thread", "spans", "busy");
  for (const auto& [tid, acc] : by_thread) {
    auto it = thread_names.find(tid);
    std::string name = it != thread_names.end()
                           ? it->second
                           : "tid-" + std::to_string(tid);
    std::printf("  %-20s %8" PRIu64 " %12s\n", name.c_str(), acc.count,
                Fmt(acc.total_us).c_str());
  }

  // ---- stage skew: engine.vp sample chunks grouped by step ------------------
  std::map<int64_t, Accum> by_step;
  for (const Span& s : spans) {
    if (s.category != "engine.vp") {
      continue;
    }
    auto it = s.args.find("step");
    if (it != s.args.end()) {
      by_step[static_cast<int64_t>(it->second)].Add(s.dur_us);
    }
  }
  if (!by_step.empty()) {
    std::printf("\nstage skew (engine.vp sample chunks per step; "
                "skew = max/mean):\n");
    std::printf("  %6s %8s %12s %12s %8s\n", "step", "chunks", "mean", "max",
                "skew");
    for (const auto& [step, acc] : by_step) {
      double mean = acc.MeanUs();
      std::printf("  %6" PRId64 " %8" PRIu64 " %12s %12s %7.2fx\n", step,
                  acc.count, Fmt(mean).c_str(), Fmt(acc.max_us).c_str(),
                  mean > 0 ? acc.max_us / mean : 0.0);
    }
  }

  // ---- top-N longest spans --------------------------------------------------
  if (top_n > 0) {
    std::vector<const Span*> longest;
    longest.reserve(spans.size());
    for (const Span& s : spans) {
      longest.push_back(&s);
    }
    size_t n = std::min<size_t>(static_cast<size_t>(top_n), longest.size());
    std::partial_sort(longest.begin(), longest.begin() + n, longest.end(),
                      [](const Span* a, const Span* b) {
                        return a->dur_us > b->dur_us;
                      });
    std::printf("\ntop %zu longest spans:\n", n);
    std::printf("  %12s  %-28s %6s  %s\n", "dur", "category/name", "tid",
                "args");
    for (size_t i = 0; i < n; ++i) {
      const Span& s = *longest[i];
      std::string args;
      for (const auto& [key, val] : s.args) {
        if (!args.empty()) {
          args += ' ';
        }
        args += key + "=" + std::to_string(static_cast<int64_t>(val));
      }
      std::printf("  %12s  %-28s %6" PRId64 "  %s\n", Fmt(s.dur_us).c_str(),
                  (s.category + "/" + s.name).c_str(), s.tid, args.c_str());
    }
  }

  // ---- exporter accounting --------------------------------------------------
  if (doc.type == Value::Type::kObject && doc.Has("otherData")) {
    const Value& other = doc.At("otherData");
    std::printf("\nexporter: %" PRId64 " events exported, %" PRId64
                " dropped (ring overflow), %" PRId64 " threads\n",
                other.Has("exported_events")
                    ? static_cast<int64_t>(other.Num("exported_events"))
                    : -1,
                other.Has("dropped_events")
                    ? static_cast<int64_t>(other.Num("dropped_events"))
                    : -1,
                other.Has("threads")
                    ? static_cast<int64_t>(other.Num("threads"))
                    : -1);
  }
  return 0;
}
