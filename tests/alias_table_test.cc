#include "src/sampling/alias_table.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/util/rng.h"
#include "src/util/stats.h"

namespace fm {
namespace {

TEST(AliasTableTest, RejectsInvalidWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -0.5}), std::invalid_argument);
}

TEST(AliasTableTest, SingleItem) {
  AliasTable table(std::vector<double>{3.0});
  XorShiftRng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.Sample(rng), 0u);
  }
}

TEST(AliasTableTest, ExactProbabilities) {
  std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  double total = 10.0;
  double sum = 0;
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(table.Probability(i), weights[i] / total, 1e-12);
    sum += table.Probability(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table(std::vector<double>{1.0, 0.0, 1.0});
  XorShiftRng rng(2);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_NE(table.Sample(rng), 1u);
  }
}

class AliasDistributionTest
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(AliasDistributionTest, MatchesTargetDistribution) {
  const std::vector<double>& weights = GetParam();
  AliasTable table(weights);
  XorShiftRng rng(7);
  const uint64_t draws = 1 << 20;
  std::vector<uint64_t> observed(weights.size(), 0);
  for (uint64_t i = 0; i < draws; ++i) {
    ++observed[table.Sample(rng)];
  }
  double total = 0;
  for (double w : weights) {
    total += w;
  }
  std::vector<double> expected;
  for (double w : weights) {
    expected.push_back(w / total * draws);
  }
  EXPECT_TRUE(ChiSquareTestPasses(observed, expected));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AliasDistributionTest,
    ::testing::Values(std::vector<double>{1, 1, 1, 1},
                      std::vector<double>{1, 2, 3, 4, 5},
                      std::vector<double>{100, 1, 1, 1},
                      std::vector<double>{0.001, 0.999},
                      std::vector<double>{5, 0, 5, 0, 5},
                      std::vector<double>(257, 1.0)));

}  // namespace
}  // namespace fm
