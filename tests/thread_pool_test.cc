#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace fm {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  const uint64_t tasks = 10000;
  std::vector<std::atomic<int>> hits(tasks);
  pool.ParallelFor(tasks, [&](uint64_t t, uint32_t) { ++hits[t]; });
  for (uint64_t t = 0; t < tasks; ++t) {
    ASSERT_EQ(hits[t].load(), 1) << t;
  }
}

TEST(ThreadPoolTest, ZeroTasksIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](uint64_t, uint32_t) { FAIL(); });
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(100, [&](uint64_t t, uint32_t worker) {
    EXPECT_EQ(worker, 0u);
    sum += t;
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, ChunksTileTheRange) {
  ThreadPool pool(3);
  const uint64_t n = 1003;  // not divisible by 3
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelChunks(n, [&](uint64_t begin, uint64_t end, uint32_t) {
    ASSERT_LT(begin, end);
    for (uint64_t i = begin; i < end; ++i) {
      ++hits[i];
    }
  });
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ChunksSmallerThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.ParallelChunks(3, [&](uint64_t begin, uint64_t end, uint32_t) {
    EXPECT_EQ(end, begin + 1);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolTest, WorkerIndicesAreInRange) {
  ThreadPool pool(4);
  std::atomic<bool> ok{true};
  pool.ParallelFor(1000, [&](uint64_t, uint32_t worker) {
    if (worker >= pool.thread_count()) {
      ok = false;
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPoolTest, SequentialJobsReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(64, [&](uint64_t t, uint32_t) { sum += t; });
    ASSERT_EQ(sum.load(), 2016u);
  }
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::Global(), &ThreadPool::Global());
  EXPECT_GE(ThreadPool::Global().thread_count(), 1u);
}

}  // namespace
}  // namespace fm
