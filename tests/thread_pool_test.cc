#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace fm {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  const uint64_t tasks = 10000;
  std::vector<std::atomic<int>> hits(tasks);
  pool.ParallelFor(tasks, [&](uint64_t t, uint32_t) { ++hits[t]; });
  for (uint64_t t = 0; t < tasks; ++t) {
    ASSERT_EQ(hits[t].load(), 1) << t;
  }
}

TEST(ThreadPoolTest, ZeroTasksIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](uint64_t, uint32_t) { FAIL(); });
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(100, [&](uint64_t t, uint32_t worker) {
    EXPECT_EQ(worker, 0u);
    sum += t;
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, ChunksTileTheRange) {
  ThreadPool pool(3);
  const uint64_t n = 1003;  // not divisible by 3
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelChunks(n, [&](uint64_t begin, uint64_t end, uint32_t) {
    ASSERT_LT(begin, end);
    for (uint64_t i = begin; i < end; ++i) {
      ++hits[i];
    }
  });
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ChunksSmallerThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.ParallelChunks(3, [&](uint64_t begin, uint64_t end, uint32_t) {
    EXPECT_EQ(end, begin + 1);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolTest, WorkerIndicesAreInRange) {
  ThreadPool pool(4);
  std::atomic<bool> ok{true};
  pool.ParallelFor(1000, [&](uint64_t, uint32_t worker) {
    if (worker >= pool.thread_count()) {
      ok = false;
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPoolTest, SequentialJobsReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(64, [&](uint64_t t, uint32_t) { sum += t; });
    ASSERT_EQ(sum.load(), 2016u);
  }
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::Global(), &ThreadPool::Global());
  EXPECT_GE(ThreadPool::Global().thread_count(), 1u);
}

// --- edge cases the TSan stress suite relies on being pinned down ------------

TEST(ThreadPoolEdgeTest, ZeroChunksIsNoop) {
  ThreadPool pool(4);
  pool.ParallelChunks(0, [&](uint64_t, uint64_t, uint32_t) { FAIL(); });
}

TEST(ThreadPoolEdgeTest, SingleThreadChunksCoverRangeInOrder) {
  ThreadPool pool(1);
  std::vector<uint64_t> seen;
  pool.ParallelChunks(7, [&](uint64_t begin, uint64_t end, uint32_t worker) {
    EXPECT_EQ(worker, 0u);
    for (uint64_t i = begin; i < end; ++i) {
      seen.push_back(i);
    }
  });
  std::vector<uint64_t> want(7);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(seen, want);  // one chunk, scanned in order — no data races possible
}

TEST(ThreadPoolEdgeTest, SingleTaskRunsInlineOnCaller) {
  ThreadPool pool(4);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.ParallelFor(1, [&](uint64_t t, uint32_t worker) {
    EXPECT_EQ(t, 0u);
    EXPECT_EQ(worker, 0u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolEdgeTest, CompletionIsABarrier) {
  // Every write performed inside a job must be visible (without atomics) after
  // ParallelFor returns — the done_cv_ handshake is the happens-before edge the
  // shuffle stages depend on.
  ThreadPool pool(4);
  const uint64_t n = 100000;
  std::vector<uint64_t> out(n, 0);
  for (int round = 1; round <= 5; ++round) {
    pool.ParallelFor(n, [&](uint64_t t, uint32_t) {
      out[t] = t + static_cast<uint64_t>(round);
    });
    for (uint64_t t = 0; t < n; ++t) {
      ASSERT_EQ(out[t], t + static_cast<uint64_t>(round));
    }
  }
}

TEST(ThreadPoolEdgeTest, AlternatingEmptyAndFullJobs) {
  // A zero-task job between real jobs must not disturb the epoch handshake.
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(0, [&](uint64_t, uint32_t) { FAIL(); });
    std::atomic<uint64_t> count{0};
    pool.ParallelFor(17, [&](uint64_t, uint32_t) { ++count; });
    ASSERT_EQ(count.load(), 17u);
    pool.ParallelChunks(0, [&](uint64_t, uint64_t, uint32_t) { FAIL(); });
  }
}

TEST(ThreadPoolEdgeTest, NestedUseOfDistinctPools) {
  // ParallelFor is not reentrant on one pool, but a job may drive a different
  // pool — the pattern the engine uses for per-VP inner parallelism.
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<uint64_t> total{0};
  outer.ParallelFor(4, [&](uint64_t, uint32_t) {
    // Only worker 0 (the caller) may submit to `inner`: submission from two
    // outer workers at once would race on inner's job slot by design.
    static Mutex submit_mutex;
    MutexLock lock(submit_mutex);
    inner.ParallelFor(8, [&](uint64_t, uint32_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 32u);
}

}  // namespace
}  // namespace fm
