#include <gtest/gtest.h>

#include "src/baseline/graphvite_engine.h"
#include "src/baseline/knightking_engine.h"
#include "src/core/engine.h"
#include "src/gen/powerlaw_graph.h"
#include "tests/test_util.h"

namespace fm {
namespace {

CsrGraph SkewedGraph(Vid n) {
  PowerLawConfig config;
  config.degrees.num_vertices = n;
  config.degrees.avg_degree = 8;
  config.degrees.alpha = 0.8;
  return GeneratePowerLawGraph(config);
}

WalkSpec SmallSpec(Wid walkers, uint32_t steps, uint64_t seed = 1) {
  WalkSpec spec;
  spec.num_walkers = walkers;
  spec.steps = steps;
  spec.seed = seed;
  return spec;
}

TEST(KnightKingTest, PathsValid) {
  CsrGraph g = SkewedGraph(3000);
  KnightKingEngine engine(g);
  WalkResult result = engine.Run(SmallSpec(5000, 10));
  EXPECT_EQ(result.paths.num_walkers(), 5000u);
  EXPECT_TRUE(result.paths.ValidAgainst(g));
  EXPECT_EQ(result.stats.total_steps, 50000u);
}

TEST(KnightKingTest, XorshiftVariantAlsoValid) {
  CsrGraph g = SkewedGraph(1000);
  BaselineOptions options;
  options.use_mersenne = false;
  KnightKingEngine engine(g, options);
  WalkResult result = engine.Run(SmallSpec(2000, 6));
  EXPECT_TRUE(result.paths.ValidAgainst(g));
}

TEST(KnightKingTest, Node2VecValid) {
  CsrGraph g = SkewedGraph(1000);
  KnightKingEngine engine(g);
  WalkSpec spec = SmallSpec(2000, 6);
  spec.algorithm = WalkAlgorithm::kNode2Vec;
  spec.node2vec = {0.5, 2.0};
  WalkResult result = engine.Run(spec);
  EXPECT_TRUE(result.paths.ValidAgainst(g));
}

// The xorshift path seeds one RNG stream per (step, global walker), so the
// ring executor must reproduce the sequential walk bit-for-bit at every
// interleave depth — the baseline counterpart of the FlashMob oracle suite.
TEST(KnightKingTest, InterleavedMatchesSequentialExactly) {
  CsrGraph g = SkewedGraph(1500);
  WalkSpec spec = SmallSpec(3000, 8, 17);
  spec.stop_probability = 0.1;  // early deaths stress the ring refill path
  BaselineOptions base;
  base.use_mersenne = false;
  base.interleave_depth = 1;
  WalkResult sequential = KnightKingEngine(g, base).Run(spec);
  for (uint32_t depth : {4u, 8u, 16u}) {
    BaselineOptions opts = base;
    opts.interleave_depth = depth;
    WalkResult ring = KnightKingEngine(g, opts).Run(spec);
    EXPECT_EQ(ring.stats.interleave_depth, depth);
    ASSERT_TRUE(ring.paths.SameAs(sequential.paths)) << "depth " << depth;
    EXPECT_EQ(ring.visit_counts, sequential.visit_counts) << "depth " << depth;
    EXPECT_GT(ring.stats.prefetch.Total(), 0u) << "depth " << depth;
  }
}

TEST(KnightKingTest, InterleavedWeightedMatchesSequentialExactly) {
  // Weighted draws route through the two-phase alias split (PickSlot /
  // ResolveSlot); the ring must keep those draws in the sequential order.
  GraphBuilder b(6);
  for (Vid v = 0; v < 6; ++v) {
    for (Vid t = 0; t < 6; ++t) {
      if (t != v) {
        b.AddEdge(v, t, static_cast<float>(1 + (v + t) % 4));
      }
    }
  }
  CsrGraph g = b.Build();
  WalkSpec spec = SmallSpec(4000, 6, 23);
  spec.use_edge_weights = true;
  BaselineOptions base;
  base.use_mersenne = false;
  WalkResult sequential = KnightKingEngine(g, base).Run(spec);
  for (uint32_t depth : {4u, 16u}) {
    BaselineOptions opts = base;
    opts.interleave_depth = depth;
    WalkResult ring = KnightKingEngine(g, opts).Run(spec);
    ASSERT_TRUE(ring.paths.SameAs(sequential.paths)) << "depth " << depth;
  }
}

TEST(KnightKingTest, InterleavedNode2VecMatchesSequentialExactly) {
  // The rejection loop draws a variable number of samples per walker; the
  // ring replays retries draw-for-draw.
  CsrGraph g = SkewedGraph(800);
  WalkSpec spec = SmallSpec(2000, 6, 29);
  spec.algorithm = WalkAlgorithm::kNode2Vec;
  spec.node2vec = {0.25, 4.0};
  BaselineOptions base;
  base.use_mersenne = false;
  WalkResult sequential = KnightKingEngine(g, base).Run(spec);
  for (uint32_t depth : {4u, 8u, 16u}) {
    BaselineOptions opts = base;
    opts.interleave_depth = depth;
    WalkResult ring = KnightKingEngine(g, opts).Run(spec);
    ASSERT_TRUE(ring.paths.SameAs(sequential.paths)) << "depth " << depth;
  }
}

TEST(KnightKingTest, MersennePathIgnoresInterleaveDepth) {
  // The Mersenne path keeps KnightKing's historical per-chunk streams and
  // always runs sequentially; a requested depth must not change the walk.
  CsrGraph g = SkewedGraph(600);
  WalkSpec spec = SmallSpec(1200, 5, 31);
  BaselineOptions base;  // use_mersenne = true
  WalkResult sequential = KnightKingEngine(g, base).Run(spec);
  BaselineOptions opts = base;
  opts.interleave_depth = 8;
  WalkResult rerun = KnightKingEngine(g, opts).Run(spec);
  EXPECT_EQ(rerun.stats.interleave_depth, 1u);
  EXPECT_EQ(rerun.stats.prefetch.Total(), 0u);
  ASSERT_TRUE(rerun.paths.SameAs(sequential.paths));
}

TEST(GraphViteTest, PathsValid) {
  CsrGraph g = SkewedGraph(3000);
  GraphViteEngine engine(g);
  WalkResult result = engine.Run(SmallSpec(5000, 10));
  EXPECT_TRUE(result.paths.ValidAgainst(g));
}

TEST(GraphViteTest, StopProbabilityRespected) {
  CsrGraph g = SkewedGraph(500);
  GraphViteEngine engine(g);
  WalkSpec spec = SmallSpec(20000, 5);
  spec.stop_probability = 0.5;
  WalkResult result = engine.Run(spec);
  uint64_t alive = 0;
  for (Wid w = 0; w < result.paths.num_walkers(); ++w) {
    alive += result.paths.At(w, 5) != kInvalidVid;
  }
  EXPECT_NEAR(static_cast<double>(alive) / 20000, 1.0 / 32, 0.01);
}

TEST(BaselineEquivalenceTest, AllEnginesAgreeOnVisitDistribution) {
  // FlashMob and both baselines implement the same stochastic process; per-vertex
  // visit shares on the hot vertices must agree across engines.
  CsrGraph g = SkewedGraph(2000);
  WalkSpec spec = SmallSpec(60000, 10, 5);
  spec.keep_paths = false;

  FlashMobEngine fmob(g);
  auto fm_counts = fmob.Run(spec).visit_counts;
  KnightKingEngine knk(g);
  auto knk_counts = knk.Run(spec).visit_counts;
  GraphViteEngine gv(g);
  auto gv_counts = gv.Run(spec).visit_counts;

  uint64_t total_fm = 0, total_knk = 0, total_gv = 0;
  for (Vid v = 0; v < g.num_vertices(); ++v) {
    total_fm += fm_counts[v];
    total_knk += knk_counts[v];
    total_gv += gv_counts[v];
  }
  for (Vid v = 0; v < 50; ++v) {
    double a = static_cast<double>(fm_counts[v]) / total_fm;
    double b = static_cast<double>(knk_counts[v]) / total_knk;
    double c = static_cast<double>(gv_counts[v]) / total_gv;
    ASSERT_NEAR(a, b, 0.1 * std::max(a, b) + 1e-5) << v;
    ASSERT_NEAR(a, c, 0.1 * std::max(a, c) + 1e-5) << v;
  }
}

TEST(BaselineEquivalenceTest, DeterministicGraphGivesIdenticalPaths) {
  // On a ring (out-degree 1) the walk is fully determined by the start vertex, so
  // visit counts per walker match exactly across engines given the same starts...
  // starts are seeded differently per engine, so compare structure instead: every
  // path is the unique ring walk from its start.
  CsrGraph g = RingGraph(100);
  WalkSpec spec = SmallSpec(500, 7, 3);
  KnightKingEngine knk(g);
  WalkResult r = knk.Run(spec);
  for (Wid w = 0; w < 500; ++w) {
    for (uint32_t s = 0; s < 7; ++s) {
      ASSERT_EQ(r.paths.At(w, s + 1), (r.paths.At(w, s) + 1) % 100);
    }
  }
}

TEST(BaselineInstrumentationTest, KnightKingMissesMoreThanFlashMob) {
  // The headline claim at test scale: on a skewed graph far larger than the
  // simulated caches, FlashMob's partitioned access pattern must produce fewer
  // L2+L3(+DRAM) misses per step than KnightKing's whole-graph random walk.
  CsrGraph g = SkewedGraph(60000);
  WalkSpec spec = SmallSpec(30000, 4, 9);
  spec.keep_paths = false;

  CacheInfo tiny;
  tiny.l1_bytes = 8 * 1024;
  tiny.l2_bytes = 64 * 1024;
  tiny.l3_bytes = 512 * 1024;

  CacheHierarchy fm_sim(tiny);
  FlashMobEngine fmob(g);
  WalkResult fm_run = fmob.RunInstrumented(spec, &fm_sim);

  CacheHierarchy knk_sim(tiny);
  KnightKingEngine knk(g);
  WalkResult knk_run = knk.RunInstrumented(spec, &knk_sim);

  double fm_dram_per_step = static_cast<double>(fm_sim.counters().hits[3]) /
                            fm_run.stats.total_steps;
  double knk_dram_per_step = static_cast<double>(knk_sim.counters().hits[3]) /
                             knk_run.stats.total_steps;
  EXPECT_LT(fm_dram_per_step, knk_dram_per_step);
}

}  // namespace
}  // namespace fm
