#include "src/graph/graph_stats.h"

#include <gtest/gtest.h>

#include "src/gen/powerlaw_graph.h"
#include "src/graph/degree_sort.h"
#include "tests/test_util.h"

namespace fm {
namespace {

TEST(GraphStatsTest, BucketsCoverAllVertices) {
  PowerLawConfig config;
  config.degrees.num_vertices = 10000;
  config.degrees.avg_degree = 8;
  CsrGraph g = GeneratePowerLawGraph(config);  // generated degree-sorted
  ASSERT_TRUE(IsDegreeSorted(g));
  DegreeBucketStats stats = ComputeDegreeBucketStats(g);
  Vid total = 0;
  double edge_share = 0;
  for (size_t b = 0; b < kDegreeBuckets; ++b) {
    total += stats.vertex_count[b];
    edge_share += stats.edge_share[b];
  }
  EXPECT_EQ(total, g.num_vertices());
  EXPECT_NEAR(edge_share, 1.0, 1e-9);
}

TEST(GraphStatsTest, AvgDegreeDecreasesAcrossBuckets) {
  PowerLawConfig config;
  config.degrees.num_vertices = 10000;
  config.degrees.avg_degree = 16;
  config.degrees.alpha = 0.8;
  CsrGraph g = GeneratePowerLawGraph(config);
  DegreeBucketStats stats = ComputeDegreeBucketStats(g);
  EXPECT_GT(stats.avg_degree[0], stats.avg_degree[1]);
  EXPECT_GT(stats.avg_degree[1], stats.avg_degree[2]);
  EXPECT_GT(stats.avg_degree[2], stats.avg_degree[3]);
}

TEST(GraphStatsTest, VisitShareTracksCounts) {
  CsrGraph g = SmallSortedGraph();
  // Visits concentrated on the highest-degree vertex (bucket boundaries on a
  // 4-vertex graph: 1% and 5% of 4 round to 0 -> first two buckets empty, 25% -> 1).
  std::vector<uint64_t> visits{10, 5, 3, 2};
  DegreeBucketStats stats = ComputeDegreeBucketStats(g, visits);
  double total_share = 0;
  for (size_t b = 0; b < kDegreeBuckets; ++b) {
    total_share += stats.visit_share[b];
  }
  EXPECT_NEAR(total_share, 1.0, 1e-9);
  // Last bucket holds vertices 1..3 => 10/20 visits in bucket 2 (vertex 0).
  EXPECT_NEAR(stats.visit_share[2], 0.5, 1e-9);
  EXPECT_NEAR(stats.visit_share[3], 0.5, 1e-9);
}

TEST(GraphStatsTest, RequiresSortedGraph) {
  GraphBuilder b(3);
  b.AddEdge(2, 0);
  b.AddEdge(2, 1);
  b.AddEdge(0, 2);
  CsrGraph g = b.Build();  // degree(2)=2 > degree(0)=1, not descending
  EXPECT_DEATH(ComputeDegreeBucketStats(g), "degree-sorted");
}

TEST(GraphStatsTest, FractionWithDegree) {
  CsrGraph g = SmallSortedGraph();  // degrees 3,2,1,1
  EXPECT_DOUBLE_EQ(FractionWithDegree(g, 1), 0.5);
  EXPECT_DOUBLE_EQ(FractionWithDegree(g, 2), 0.25);
  EXPECT_DOUBLE_EQ(FractionWithDegree(g, 7), 0.0);
}

TEST(GraphStatsTest, SkewedGraphConcentratesEdgesInTopBucket) {
  // Mirrors the Table 2 observation: with alpha ~0.85 the top 1% of vertices hold
  // roughly half the edges.
  PowerLawConfig config;
  config.degrees.num_vertices = 50000;
  config.degrees.avg_degree = 20;
  config.degrees.alpha = 0.85;
  config.degrees.max_degree = 50000 / 16;
  CsrGraph g = GeneratePowerLawGraph(config);
  DegreeBucketStats stats = ComputeDegreeBucketStats(g);
  EXPECT_GT(stats.edge_share[0], 0.30);
  EXPECT_LT(stats.edge_share[3], 0.30);
}

}  // namespace
}  // namespace fm
