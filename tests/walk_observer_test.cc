// Streaming-observer equivalence: the parallel sharded accumulation and the
// PathSetSink must reproduce the engine's own outputs bit-for-bit, across
// every algorithm, identity mode, and termination setting.
#include "src/core/walk_observer.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/engine.h"
#include "src/gen/powerlaw_graph.h"
#include "tests/test_util.h"

namespace fm {
namespace {

CsrGraph SkewedGraph(Vid n, uint64_t seed = 1) {
  PowerLawConfig config;
  config.degrees.num_vertices = n;
  config.degrees.avg_degree = 8;
  config.degrees.alpha = 0.8;
  config.degrees.max_degree = n / 8;
  config.seed = seed;
  return GeneratePowerLawGraph(config);
}

struct Combo {
  WalkAlgorithm algorithm;
  bool track_identity;
  double stop_probability;
};

std::vector<Combo> AllCombos() {
  std::vector<Combo> combos;
  for (WalkAlgorithm algorithm :
       {WalkAlgorithm::kDeepWalk, WalkAlgorithm::kNode2Vec,
        WalkAlgorithm::kMetropolisHastings}) {
    for (bool track_identity : {true, false}) {
      for (double stop : {0.0, 0.15}) {
        combos.push_back({algorithm, track_identity, stop});
      }
    }
  }
  return combos;
}

WalkSpec ComboSpec(const Combo& combo, Wid walkers, uint32_t steps,
                   uint64_t seed) {
  WalkSpec spec;
  spec.algorithm = combo.algorithm;
  spec.node2vec = {2.0, 0.5};
  spec.track_identity = combo.track_identity;
  spec.keep_paths = false;
  spec.stop_probability = combo.stop_probability;
  spec.num_walkers = walkers;
  spec.steps = steps;
  spec.seed = seed;
  return spec;
}

// An external ShardedVisitCounter riding the same run must agree exactly with
// the engine's internal counter, in every mode.
TEST(WalkObserverTest, ExternalCounterMatchesEngineCounts) {
  CsrGraph g = SkewedGraph(2000);
  for (const Combo& combo : AllCombos()) {
    FlashMobEngine engine(g);
    ShardedVisitCounter counter(g.num_vertices());
    WalkResult result = engine.Run(ComboSpec(combo, 6000, 9, 5), {&counter});
    ASSERT_EQ(counter.TakeCounts(), result.visit_counts)
        << "algorithm " << static_cast<int>(combo.algorithm) << " tracked "
        << combo.track_identity << " stop " << combo.stop_probability;
  }
}

// The streamed counts must be bit-identical to the pre-refactor serial
// accumulation. PathSet::VisitCounts IS that serial loop (a full scan of the
// materialized rows), and the engine's counts for the same seed are identical
// with keep_paths on or off — so counts from a counts-only run must equal the
// row scan of a path-keeping run exactly.
TEST(WalkObserverTest, CountsMatchSerialRowScan) {
  CsrGraph g = SkewedGraph(2500);
  for (WalkAlgorithm algorithm :
       {WalkAlgorithm::kDeepWalk, WalkAlgorithm::kNode2Vec,
        WalkAlgorithm::kMetropolisHastings}) {
    for (double stop : {0.0, 0.15}) {
      Combo combo{algorithm, /*track_identity=*/true, stop};
      WalkSpec spec = ComboSpec(combo, 5000, 11, 9);

      FlashMobEngine counting_engine(g);
      WalkResult counted = counting_engine.Run(spec);

      spec.keep_paths = true;
      FlashMobEngine path_engine(g);
      WalkResult pathed = path_engine.Run(spec);

      std::vector<uint64_t> serial = pathed.paths.VisitCounts(g.num_vertices());
      ASSERT_EQ(counted.visit_counts, serial)
          << "algorithm " << static_cast<int>(algorithm) << " stop " << stop;
      ASSERT_EQ(pathed.visit_counts, serial);
    }
  }
}

// PathSetSink must reconstruct exactly what keep_paths materializes — from a
// run that never materializes rows itself.
TEST(WalkObserverTest, PathSetSinkMatchesKeepPaths) {
  CsrGraph g = SkewedGraph(1500);
  for (WalkAlgorithm algorithm :
       {WalkAlgorithm::kDeepWalk, WalkAlgorithm::kNode2Vec}) {
    for (double stop : {0.0, 0.15}) {
      Combo combo{algorithm, /*track_identity=*/true, stop};
      WalkSpec spec = ComboSpec(combo, 4000, 7, 3);

      spec.keep_paths = false;
      FlashMobEngine sink_engine(g);
      PathSetSink sink;
      sink_engine.Run(spec, {&sink});
      PathSet streamed = sink.TakePaths();

      spec.keep_paths = true;
      FlashMobEngine path_engine(g);
      WalkResult reference = path_engine.Run(spec);

      ASSERT_EQ(streamed.num_walkers(), reference.paths.num_walkers());
      for (uint32_t s = 0; s <= spec.steps; ++s) {
        ASSERT_EQ(streamed.Row(s), reference.paths.Row(s))
            << "algorithm " << static_cast<int>(algorithm) << " stop " << stop
            << " row " << s;
      }
    }
  }
}

// Observers must see every episode: force a multi-episode run and check both
// sinks still agree with the engine outputs exactly.
TEST(WalkObserverTest, ObserversSpanEpisodes) {
  CsrGraph g = SkewedGraph(1200);
  EngineOptions options;
  options.dram_budget_bytes = 1 << 20;  // forces several episodes
  WalkSpec spec;
  spec.num_walkers = 100000;
  spec.steps = 5;
  spec.seed = 23;

  FlashMobEngine engine(g, options);
  ASSERT_LT(engine.EpisodeWalkers(spec), spec.num_walkers);
  ShardedVisitCounter counter(g.num_vertices());
  PathSetSink sink;
  WalkResult result = engine.Run(spec, {&counter, &sink});
  EXPECT_GT(result.stats.episodes, 1u);
  EXPECT_EQ(counter.TakeCounts(), result.visit_counts);
  PathSet streamed = sink.TakePaths();
  ASSERT_EQ(streamed.num_walkers(), result.paths.num_walkers());
  for (uint32_t s = 0; s <= spec.steps; ++s) {
    ASSERT_EQ(streamed.Row(s), result.paths.Row(s)) << "row " << s;
  }
}

// Counts accumulate across runs until taken.
TEST(WalkObserverTest, CounterAccumulatesAcrossRuns) {
  CsrGraph g = SkewedGraph(800);
  WalkSpec spec;
  spec.num_walkers = 2000;
  spec.steps = 4;
  spec.keep_paths = false;
  FlashMobEngine engine(g);
  ShardedVisitCounter counter(g.num_vertices());
  WalkResult once = engine.Run(spec, {&counter});
  engine.Run(spec, {&counter});
  std::vector<uint64_t> doubled = counter.TakeCounts();
  for (Vid v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(doubled[v], 2 * once.visit_counts[v]) << v;
  }
  // After TakeCounts the slate is clean.
  engine.Run(spec, {&counter});
  EXPECT_EQ(counter.TakeCounts(), once.visit_counts);
}

// Walker-order streams require tracked identity; the engine must refuse the
// combination loudly rather than deliver garbage rows.
TEST(WalkObserverTest, WalkerChunkSinksRequireTrackedIdentity) {
  CsrGraph g = SkewedGraph(500);
  WalkSpec spec;
  spec.num_walkers = 1000;
  spec.steps = 2;
  spec.keep_paths = false;
  spec.track_identity = false;
  FlashMobEngine engine(g);
  PathSetSink sink;
  EXPECT_DEATH(engine.Run(spec, {&sink}), "track_identity");
}

// Observer streams work under the instrumented (cache-simulated) path too.
TEST(WalkObserverTest, InstrumentedRunFeedsObservers) {
  CsrGraph g = SkewedGraph(1000);
  WalkSpec spec;
  spec.num_walkers = 1500;
  spec.steps = 4;
  spec.seed = 31;
  FlashMobEngine engine(g);
  CacheHierarchy sim;
  ShardedVisitCounter counter(g.num_vertices());
  WalkResult result = engine.RunInstrumented(spec, &sim, {&counter});
  EXPECT_GT(sim.counters().accesses, 0u);
  EXPECT_EQ(counter.TakeCounts(), result.visit_counts);
}

}  // namespace
}  // namespace fm
