#include "src/sampling/rejection.h"

#include <gtest/gtest.h>

#include <map>

#include "src/core/algorithms/node2vec.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "tests/test_util.h"

namespace fm {
namespace {

TEST(Node2VecWeightTest, ThreeCases) {
  CsrGraph g = SmallGraph();  // 0->{1,2,3}, 1->{0,2}, 2->{3}, 3->{0}
  Node2VecParams params{2.0, 4.0};
  // Walk ... 1 -> 0 -> x. prev=1.
  EXPECT_DOUBLE_EQ(Node2VecWeight(g, 1, 1, params), 0.5);   // back to prev: 1/p
  EXPECT_DOUBLE_EQ(Node2VecWeight(g, 1, 2, params), 1.0);   // 1->2 exists: dist 1
  EXPECT_DOUBLE_EQ(Node2VecWeight(g, 1, 3, params), 0.25);  // dist 2: 1/q
}

TEST(Node2VecTransitionProbsTest, NormalizedAndConsistent) {
  CsrGraph g = SmallGraph();
  Node2VecParams params{0.5, 2.0};
  auto probs = Node2VecTransitionProbs(g, 0, 1, params);
  ASSERT_EQ(probs.size(), 3u);
  double sum = 0;
  for (double p : probs) {
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Weights out of 0 with prev=1: to 1 (prev): 1/p=2, to 2 (1->2 edge): 1, to 3: 1/q=0.5.
  EXPECT_NEAR(probs[0], 2.0 / 3.5, 1e-12);
  EXPECT_NEAR(probs[1], 1.0 / 3.5, 1e-12);
  EXPECT_NEAR(probs[2], 0.5 / 3.5, 1e-12);
}

class RejectionDistributionTest
    : public ::testing::TestWithParam<Node2VecParams> {};

TEST_P(RejectionDistributionTest, MatchesExactDistribution) {
  CsrGraph g = CompleteGraph(8);
  Node2VecParams params = GetParam();
  const Vid cur = 0;
  const Vid prev = 3;
  auto exact = Node2VecTransitionProbs(g, cur, prev, params);
  auto nbrs = g.neighbors(cur);

  XorShiftRng rng(17);
  const uint64_t draws = 1 << 18;
  std::map<Vid, uint64_t> counts;
  for (uint64_t i = 0; i < draws; ++i) {
    ++counts[SampleNode2VecRejection(g, cur, prev, params, rng)];
  }
  std::vector<uint64_t> observed;
  std::vector<double> expected;
  for (size_t i = 0; i < nbrs.size(); ++i) {
    observed.push_back(counts[nbrs[i]]);
    expected.push_back(exact[i] * draws);
  }
  EXPECT_TRUE(ChiSquareTestPasses(observed, expected))
      << "p=" << params.p << " q=" << params.q;
}

INSTANTIATE_TEST_SUITE_P(PqSweep, RejectionDistributionTest,
                         ::testing::Values(Node2VecParams{1.0, 1.0},
                                           Node2VecParams{0.25, 4.0},
                                           Node2VecParams{4.0, 0.25},
                                           Node2VecParams{2.0, 2.0},
                                           Node2VecParams{0.5, 0.5}));

TEST(RejectionTest, UniformWhenPQOne) {
  // p=q=1 reduces node2vec to a uniform first-order walk.
  CsrGraph g = SmallGraph();
  auto probs = Node2VecTransitionProbs(g, 0, 3, Node2VecParams{1.0, 1.0});
  for (double p : probs) {
    EXPECT_NEAR(p, 1.0 / 3.0, 1e-12);
  }
}

TEST(RejectionTest, DegreeOneAlwaysReturnsOnlyNeighbor) {
  CsrGraph g = SmallGraph();
  XorShiftRng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleNode2VecRejection(g, 2, 0, Node2VecParams{0.1, 9.0}, rng), 3u);
  }
}

}  // namespace
}  // namespace fm
