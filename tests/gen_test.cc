#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "src/gen/dataset_registry.h"
#include "src/gen/powerlaw_graph.h"
#include "src/gen/rmat.h"
#include "src/gen/toy_graphs.h"
#include "src/gen/uniform_degree.h"
#include "src/graph/degree_sort.h"

namespace fm {
namespace {

TEST(PowerLawGraphTest, StructureAndSorting) {
  PowerLawConfig config;
  config.degrees.num_vertices = 5000;
  config.degrees.avg_degree = 10;
  config.degrees.alpha = 0.8;
  CsrGraph g = GeneratePowerLawGraph(config);
  EXPECT_EQ(g.num_vertices(), 5000u);
  EXPECT_TRUE(IsDegreeSorted(g));
  EXPECT_TRUE(g.AdjacencySorted());
  g.CheckValid();
  // Every vertex alive (min_degree = 1).
  for (Vid v = 0; v < g.num_vertices(); ++v) {
    ASSERT_GE(g.degree(v), 1u);
  }
}

TEST(PowerLawGraphTest, DeterministicForSeed) {
  PowerLawConfig config;
  config.degrees.num_vertices = 1000;
  config.degrees.avg_degree = 6;
  config.seed = 99;
  CsrGraph a = GeneratePowerLawGraph(config);
  CsrGraph b = GeneratePowerLawGraph(config);
  EXPECT_TRUE(Identical(a, b));
}

TEST(PowerLawGraphTest, ShuffleLabelsPreservesDegreeMultiset) {
  PowerLawConfig config;
  config.degrees.num_vertices = 2000;
  config.degrees.avg_degree = 8;
  CsrGraph sorted = GeneratePowerLawGraph(config);
  config.shuffle_labels = true;
  CsrGraph shuffled = GeneratePowerLawGraph(config);
  std::vector<Degree> ds, dh;
  for (Vid v = 0; v < 2000; ++v) {
    ds.push_back(sorted.degree(v));
    dh.push_back(shuffled.degree(v));
  }
  std::sort(ds.begin(), ds.end());
  std::sort(dh.begin(), dh.end());
  EXPECT_EQ(ds, dh);
}

TEST(PowerLawGraphTest, LocalityBiasesTargetsNearby) {
  PowerLawConfig config;
  config.degrees.num_vertices = 50000;
  config.degrees.avg_degree = 8;
  config.degrees.alpha = 0.3;
  config.locality = 0.9;
  config.locality_window = 256;
  CsrGraph local = GeneratePowerLawGraph(config);
  config.locality = 0.0;
  CsrGraph global = GeneratePowerLawGraph(config);
  auto near_fraction = [](const CsrGraph& g, Vid window) {
    uint64_t near = 0;
    for (Vid v = 0; v < g.num_vertices(); ++v) {
      for (Vid u : g.neighbors(v)) {
        near += (u > v ? u - v : v - u) <= window;
      }
    }
    return static_cast<double>(near) / g.num_edges();
  };
  EXPECT_GT(near_fraction(local, 256), near_fraction(global, 256) + 0.5);
}

TEST(RmatTest, SizesAndValidity) {
  RmatConfig config;
  config.scale = 10;
  config.edge_factor = 8;
  CsrGraph g = GenerateRmatGraph(config);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_EQ(g.num_edges(), 8192u);
  g.CheckValid();
}

TEST(RmatTest, SkewedDegreeDistribution) {
  RmatConfig config;
  config.scale = 12;
  config.edge_factor = 16;
  CsrGraph g = GenerateRmatGraph(config);
  DegreeSortedGraph sorted = DegreeSort(g);
  // Top 1% of vertices should own far more than 1% of edges.
  Vid top = sorted.graph.num_vertices() / 100;
  Eid top_edges = sorted.graph.offsets()[top];
  EXPECT_GT(static_cast<double>(top_edges) / sorted.graph.num_edges(), 0.05);
}

TEST(UniformDegreeTest, ExactRegularity) {
  CsrGraph g = GenerateUniformDegreeGraph(500, 7, 3);
  for (Vid v = 0; v < 500; ++v) {
    ASSERT_EQ(g.degree(v), 7u);
  }
  g.CheckValid();
}

TEST(UniformDegreeTest, TargetUniverseRestriction) {
  CsrGraph g = GenerateUniformDegreeGraph(1000, 4, 5, /*target_universe=*/100);
  for (Vid t : g.edges()) {
    ASSERT_LT(t, 100u);
  }
}

TEST(ToyGraphTest, FitsByteBudget) {
  for (uint64_t budget : {32ull * 1024, 1024ull * 1024, 16ull * 1024 * 1024}) {
    CsrGraph g = GenerateCacheSizedGraph(budget, 16, 1);
    EXPECT_LE(g.CsrBytes(), budget);
    // Not absurdly small either: at least 60% utilized.
    EXPECT_GE(g.CsrBytes(), budget * 6 / 10);
  }
}

TEST(DatasetRegistryTest, HasFivePaperGraphs) {
  const auto& all = AllDatasets();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].name, "YT");
  EXPECT_EQ(all[4].name, "YH");
  EXPECT_EQ(DatasetByName("TW").full_name, "Twitter");
  EXPECT_THROW(DatasetByName("nope"), std::invalid_argument);
}

TEST(DatasetRegistryTest, LoadGeneratesAndCaches) {
  auto cache = std::filesystem::temp_directory_path() / "fm_ds_cache_test";
  std::filesystem::remove_all(cache);
  ::setenv("FM_DATASET_CACHE", cache.c_str(), 1);
  CsrGraph g = LoadDataset(DatasetByName("YT"), /*scale=*/0.05);
  EXPECT_GT(g.num_vertices(), 1000u);
  EXPECT_TRUE(IsDegreeSorted(g));
  // Second load comes from the cache file and must be identical.
  CsrGraph g2 = LoadDataset(DatasetByName("YT"), 0.05);
  EXPECT_TRUE(Identical(g, g2));
  ::unsetenv("FM_DATASET_CACHE");
  std::filesystem::remove_all(cache);
}

TEST(DatasetRegistryTest, AverageDegreeTracksPaper) {
  const DatasetSpec& yt = DatasetByName("YT");
  CsrGraph g = LoadDataset(yt, 0.05);
  double avg = static_cast<double>(g.num_edges()) / g.num_vertices();
  double paper_avg =
      static_cast<double>(yt.paper_edges) / static_cast<double>(yt.paper_vertices);
  EXPECT_NEAR(avg, paper_avg, paper_avg * 0.25);
}

}  // namespace
}  // namespace fm
