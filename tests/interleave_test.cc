// Unit tests for the step-interleaving ring executor (src/core/interleave.h):
// the driver protocol (Init order, round-robin Advance, refill on completion),
// the depth plan model, and the knob parser. The bitwise-equality proofs that
// the ring reproduces the sequential kernels live in distribution_oracle_test,
// determinism_test, and baseline_test; this file pins the driver mechanics
// those proofs rest on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/interleave.h"

namespace fm {
namespace {

// Scripted Ops: each walker runs a fixed number of Advance calls (its
// "lifetime"); a lifetime of 0 means the walker completes at Init. Records
// the full call trace so tests can assert driver-order properties.
struct ScriptedOps {
  explicit ScriptedOps(std::vector<uint32_t> lifetimes)
      : lifetimes(std::move(lifetimes)),
        remaining(kMaxInterleaveDepth, 0),
        walker_in_slot(kMaxInterleaveDepth, 0) {}

  // Builds "I7"/"A7"-style trace tokens; written as append (not operator+ on
  // a literal) to dodge GCC 12's -Wrestrict false positive at -O2.
  static std::string Token(char kind, Wid i) {
    std::string t(1, kind);
    t += std::to_string(i);
    return t;
  }

  bool Init(uint32_t slot, Wid i) {
    init_order.push_back(i);
    trace.push_back(Token('I', i));
    if (lifetimes[i] == 0) {
      return false;  // completed immediately (instant death / PS draw)
    }
    remaining[slot] = lifetimes[i];
    walker_in_slot[slot] = i;
    return true;
  }

  bool Advance(uint32_t slot) {
    const Wid i = walker_in_slot[slot];
    advances.push_back(i);
    trace.push_back(Token('A', i));
    return --remaining[slot] > 0;
  }

  std::vector<uint32_t> lifetimes;       // per-walker Advance count
  std::vector<uint32_t> remaining;       // per-slot countdown
  std::vector<Wid> walker_in_slot;
  std::vector<Wid> init_order;           // Init call sequence
  std::vector<Wid> advances;             // Advance call sequence (walker ids)
  std::vector<std::string> trace;        // interleaved I<i>/A<i> record
};

std::vector<uint32_t> Uniform(Wid count, uint32_t lifetime) {
  return std::vector<uint32_t>(count, lifetime);
}

// Every walker must be inited exactly once, in increasing order, and receive
// exactly `lifetime` Advance calls — at any depth.
void CheckCompleteness(const ScriptedOps& ops) {
  const Wid count = static_cast<Wid>(ops.lifetimes.size());
  ASSERT_EQ(ops.init_order.size(), count);
  for (Wid i = 0; i < count; ++i) {
    EXPECT_EQ(ops.init_order[i], i) << "Init order must be monotone";
  }
  std::vector<uint32_t> advance_counts(count, 0);
  for (Wid w : ops.advances) {
    ++advance_counts[w];
  }
  for (Wid i = 0; i < count; ++i) {
    EXPECT_EQ(advance_counts[i], ops.lifetimes[i]) << "walker " << i;
  }
}

TEST(RunInterleavedRingTest, SequentialDegenerateCase) {
  ScriptedOps ops(Uniform(5, 3));
  RunInterleavedRing(1, 5, ops);
  CheckCompleteness(ops);
  // Depth 1 runs each walker to completion before the next Init.
  std::vector<std::string> expected = {"I0", "A0", "A0", "A0", "I1", "A1",
                                       "A1", "A1", "I2", "A2", "A2", "A2",
                                       "I3", "A3", "A3", "A3", "I4", "A4",
                                       "A4", "A4"};
  EXPECT_EQ(ops.trace, expected);
}

TEST(RunInterleavedRingTest, DepthZeroBehavesLikeDepthOne) {
  ScriptedOps a(Uniform(4, 2));
  ScriptedOps b(Uniform(4, 2));
  RunInterleavedRing(0, 4, a);
  RunInterleavedRing(1, 4, b);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(RunInterleavedRingTest, InterleavesAcrossSlots) {
  // 3 walkers, depth 3: after priming (I0 I1 I2), Advances rotate round-robin
  // so each slot's prefetch gets two other slots' work as distance.
  ScriptedOps ops(Uniform(3, 2));
  RunInterleavedRing(3, 3, ops);
  CheckCompleteness(ops);
  std::vector<std::string> expected = {"I0", "I1", "I2", "A0", "A1",
                                       "A2", "A0", "A1", "A2"};
  EXPECT_EQ(ops.trace, expected);
}

TEST(RunInterleavedRingTest, RingWrapAroundRefillsFreedSlots) {
  // Depth 2, 4 walkers of lifetime 1: each Advance completes a walker and its
  // slot is immediately refilled with the next pending one — the wrap-around
  // path that keeps the ring full through many generations of walkers.
  ScriptedOps ops(Uniform(4, 1));
  RunInterleavedRing(2, 4, ops);
  CheckCompleteness(ops);
  std::vector<std::string> expected = {"I0", "I1", "A0", "I2",
                                       "A1", "I3", "A2", "A3"};
  EXPECT_EQ(ops.trace, expected);
}

TEST(RunInterleavedRingTest, TailSmallerThanRing) {
  // 3 walkers in a depth-8 ring: slots 3..7 never fill, and the driver must
  // still terminate and run everyone to completion.
  for (uint32_t depth : {4u, 8u, 16u}) {
    ScriptedOps ops(Uniform(3, 5));
    RunInterleavedRing(depth, 3, ops);
    CheckCompleteness(ops);
  }
}

TEST(RunInterleavedRingTest, ZeroWalkersIsANoOp) {
  ScriptedOps ops({});
  RunInterleavedRing(8, 0, ops);
  EXPECT_TRUE(ops.trace.empty());
}

TEST(RunInterleavedRingTest, EarlyDeathAtInitHandsSlotOnward) {
  // Walkers 1 and 2 die at Init (lifetime 0) while the ring is being primed:
  // their slot must go straight to the next pending walker without a gap.
  ScriptedOps ops({2, 0, 0, 2, 2, 0, 1});
  RunInterleavedRing(2, 7, ops);
  CheckCompleteness(ops);
  // Priming claims 0 (lives), 1 (dies), 2 (dies), 3 (lives) — ring now full.
  std::vector<std::string> head = {"I0", "I1", "I2", "I3"};
  ASSERT_GE(ops.trace.size(), head.size());
  EXPECT_EQ(std::vector<std::string>(ops.trace.begin(),
                                     ops.trace.begin() + head.size()),
            head);
}

TEST(RunInterleavedRingTest, EveryDeathPatternCompletesAtEveryDepth) {
  // Sweep a mix of lifetimes (instant deaths, short, long) across all depths
  // up to the max: the driver invariants (monotone Init order, exact Advance
  // counts, termination) hold regardless of ring geometry.
  std::vector<uint32_t> lifetimes;
  for (Wid i = 0; i < 200; ++i) {
    lifetimes.push_back(i % 7 == 0 ? 0 : (i % 5) + 1);
  }
  for (uint32_t depth : {1u, 2u, 3u, 4u, 8u, 16u, 64u}) {
    ScriptedOps ops(lifetimes);
    RunInterleavedRing(depth, static_cast<Wid>(lifetimes.size()), ops);
    CheckCompleteness(ops);
  }
}

TEST(RunInterleavedRingTest, DepthAboveMaxIsClamped) {
  // The driver clamps to kMaxInterleaveDepth internally; a huge depth must
  // not index past the occupied[] array.
  ScriptedOps ops(Uniform(100, 3));
  RunInterleavedRing(1000, 100, ops);
  CheckCompleteness(ops);
}

TEST(InterleaveStatsTest, AccumulatesByRequestType) {
  InterleaveStats a;
  a.offsets = 3;
  a.alias = 2;
  a.edges = 5;
  a.shuffle = 7;
  EXPECT_EQ(a.Total(), 17u);
  InterleaveStats b;
  b.offsets = 1;
  b.shuffle = 1;
  a += b;
  EXPECT_EQ(a.offsets, 4u);
  EXPECT_EQ(a.shuffle, 8u);
  EXPECT_EQ(a.Total(), 19u);
}

TEST(BuildInterleavePlanTest, PinnedDepthPassesThrough) {
  CacheInfo cache;
  cache.l1_bytes = 32 * 1024;
  InterleavePlan plan = BuildInterleavePlan(6, cache);
  EXPECT_EQ(plan.depth, 6u);
  EXPECT_EQ(plan.requested, 6u);
  EXPECT_FALSE(plan.from_auto);
}

TEST(BuildInterleavePlanTest, PinnedDepthClampedToMax) {
  CacheInfo cache;
  cache.l1_bytes = 32 * 1024;
  InterleavePlan plan = BuildInterleavePlan(kMaxInterleaveDepth + 10, cache);
  EXPECT_EQ(plan.depth, kMaxInterleaveDepth);
}

TEST(BuildInterleavePlanTest, AutoUsesFillBufferBudget) {
  // Normal L1 (32KB): the fill-buffer budget (10 - 2 = 8) binds, and 8 is
  // already a power of two.
  CacheInfo cache;
  cache.l1_bytes = 32 * 1024;
  InterleavePlan plan = BuildInterleavePlan(kInterleaveDepthAuto, cache);
  EXPECT_EQ(plan.depth, 8u);
  EXPECT_TRUE(plan.from_auto);
  EXPECT_EQ(plan.requested, kInterleaveDepthAuto);
}

TEST(BuildInterleavePlanTest, AutoRespectsTinyL1) {
  // 1KB L1: the ring state cap (l1/(4*64) = 4) undercuts the fill buffers.
  CacheInfo cache;
  cache.l1_bytes = 1024;
  InterleavePlan plan = BuildInterleavePlan(kInterleaveDepthAuto, cache);
  EXPECT_EQ(plan.depth, 4u);
  EXPECT_TRUE(plan.from_auto);
}

TEST(BuildInterleavePlanTest, AutoRoundsDownToPowerOfTwo) {
  // 1.5KB L1 caps the ring at 6 slots; the plan rounds down to 4 so the
  // standard depth sweep {1,4,8,16} brackets every auto pick.
  CacheInfo cache;
  cache.l1_bytes = 1536;
  InterleavePlan plan = BuildInterleavePlan(kInterleaveDepthAuto, cache);
  EXPECT_EQ(plan.depth, 4u);
}

TEST(BuildInterleavePlanTest, DescribeNamesTheSource) {
  CacheInfo cache;
  cache.l1_bytes = 32 * 1024;
  EXPECT_NE(BuildInterleavePlan(0, cache).Describe().find("auto"),
            std::string::npos);
  EXPECT_NE(BuildInterleavePlan(4, cache).Describe().find("pinned"),
            std::string::npos);
}

TEST(ParseInterleaveDepthTest, AcceptsAutoAndDigits) {
  uint32_t depth = 99;
  EXPECT_TRUE(ParseInterleaveDepth("auto", &depth));
  EXPECT_EQ(depth, kInterleaveDepthAuto);
  EXPECT_TRUE(ParseInterleaveDepth("1", &depth));
  EXPECT_EQ(depth, 1u);
  EXPECT_TRUE(ParseInterleaveDepth("16", &depth));
  EXPECT_EQ(depth, 16u);
  EXPECT_TRUE(ParseInterleaveDepth("64", &depth));
  EXPECT_EQ(depth, 64u);
}

TEST(ParseInterleaveDepthTest, RejectsJunkWithoutClobbering) {
  uint32_t depth = 7;
  EXPECT_FALSE(ParseInterleaveDepth("", &depth));
  EXPECT_FALSE(ParseInterleaveDepth("0", &depth));
  EXPECT_FALSE(ParseInterleaveDepth("65", &depth));
  EXPECT_FALSE(ParseInterleaveDepth("999999999999", &depth));
  EXPECT_FALSE(ParseInterleaveDepth("-1", &depth));
  EXPECT_FALSE(ParseInterleaveDepth("8x", &depth));
  EXPECT_FALSE(ParseInterleaveDepth("Auto", &depth));
  EXPECT_EQ(depth, 7u) << "failed parses must leave *depth untouched";
}

TEST(WalkerSeedTest, DistinctPerWalkerAndChunk) {
  // The determinism invariant rests on walker-indexed streams: same
  // (chunk_seed, i) always maps to the same seed, different walkers and
  // different chunks get different streams.
  EXPECT_EQ(WalkerSeed(42, 7), WalkerSeed(42, 7));
  EXPECT_NE(WalkerSeed(42, 7), WalkerSeed(42, 8));
  EXPECT_NE(WalkerSeed(42, 7), WalkerSeed(43, 7));
}

}  // namespace
}  // namespace fm
