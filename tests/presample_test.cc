#include "src/core/presample.h"

#include <gtest/gtest.h>

#include "src/cachesim/mem_hook.h"
#include "src/gen/uniform_degree.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "tests/test_util.h"

namespace fm {
namespace {

TEST(PresampleTest, AllocatesOnlyForPsPartitions) {
  CsrGraph g = GenerateUniformDegreeGraph(1024, 4, 1);
  PartitionPlan ds_plan = PartitionPlan::BuildUniform(g, 4, SamplePolicy::kDS);
  PresampleBuffers none(g, ds_plan);
  EXPECT_FALSE(none.enabled());
  EXPECT_EQ(none.total_samples(), 0u);

  PartitionPlan ps_plan = PartitionPlan::BuildUniform(g, 4, SamplePolicy::kPS);
  PresampleBuffers all(g, ps_plan);
  EXPECT_TRUE(all.enabled());
  EXPECT_EQ(all.total_samples(), g.num_edges());
}

TEST(PresampleTest, NextReturnsOnlyNeighbors) {
  CsrGraph g = SmallSortedGraph();
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, SamplePolicy::kPS);
  PresampleBuffers buffers(g, plan);
  XorShiftRng rng(3);
  NullMemHook hook;
  for (Vid v = 0; v < g.num_vertices(); ++v) {
    uint32_t vp_i = plan.VpOf(v);
    for (int i = 0; i < 200; ++i) {
      Vid next = buffers.Next(g, vp_i, plan.vp(vp_i), v, nullptr, rng, hook);
      ASSERT_TRUE(g.HasEdge(v, next)) << v << "->" << next;
    }
  }
}

TEST(PresampleTest, SamplesAreUniformOverEdges) {
  // Star center has n-1 neighbors; consumption across refills must be uniform.
  CsrGraph g = StarGraph(17);  // center degree 16, already degree-sorted
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, SamplePolicy::kPS);
  PresampleBuffers buffers(g, plan);
  XorShiftRng rng(11);
  NullMemHook hook;
  const uint64_t draws = 1 << 18;
  std::vector<uint64_t> counts(17, 0);
  uint32_t vp_i = plan.VpOf(0);
  for (uint64_t i = 0; i < draws; ++i) {
    ++counts[buffers.Next(g, vp_i, plan.vp(vp_i), 0, nullptr, rng, hook)];
  }
  std::vector<uint64_t> observed(counts.begin() + 1, counts.end());
  std::vector<double> expected(16, draws / 16.0);
  EXPECT_EQ(counts[0], 0u);  // center never its own neighbor
  EXPECT_TRUE(ChiSquareTestPasses(observed, expected));
}

TEST(PresampleTest, ResetForcesRefill) {
  CsrGraph g = RingGraph(8);  // degree 1: next is deterministic
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, SamplePolicy::kPS);
  PresampleBuffers buffers(g, plan);
  XorShiftRng rng(5);
  NullMemHook hook;
  uint32_t vp_i = plan.VpOf(3);
  EXPECT_EQ(buffers.Next(g, vp_i, plan.vp(vp_i), 3, nullptr, rng, hook), 4u);
  buffers.ResetAll();
  EXPECT_EQ(buffers.Next(g, vp_i, plan.vp(vp_i), 3, nullptr, rng, hook), 4u);
}

TEST(PresampleTest, HookSeesRefillAndConsumption) {
  CsrGraph g = StarGraph(5);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, SamplePolicy::kPS);
  PresampleBuffers buffers(g, plan);
  CacheHierarchy sim;  // paper geometry
  CacheSimHook hook(&sim);
  XorShiftRng rng(7);
  uint32_t vp_i = plan.VpOf(0);
  buffers.Next(g, vp_i, plan.vp(vp_i), 0, nullptr, rng, hook);
  // First call: offsets + cursor + refill (degree 4: 4 reads + 4 writes) + one
  // sample read + cursor write > 5 accesses.
  EXPECT_GT(sim.counters().accesses, 5u);
}

}  // namespace
}  // namespace fm
