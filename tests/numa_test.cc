#include "src/core/numa.h"

#include <gtest/gtest.h>

#include "src/gen/powerlaw_graph.h"

namespace fm {
namespace {

CsrGraph SkewedGraph(Vid n) {
  PowerLawConfig config;
  config.degrees.num_vertices = n;
  config.degrees.avg_degree = 8;
  config.degrees.alpha = 0.8;
  return GeneratePowerLawGraph(config);
}

WalkSpec Spec(Wid walkers, uint32_t steps) {
  WalkSpec spec;
  spec.num_walkers = walkers;
  spec.steps = steps;
  spec.keep_paths = false;
  return spec;
}

TEST(NumaTest, PartitionedModeHasRemoteStreamsOnly) {
  CsrGraph g = SkewedGraph(20000);
  SocketTopology topo;
  topo.sockets = 2;
  topo.dram_per_socket_bytes = 64ull << 20;
  NumaRunResult r =
      RunNumaWalk(g, Spec(40000, 5), NumaMode::kPartitioned, topo);
  EXPECT_GT(r.per_step_ns, 0);
  EXPECT_DOUBLE_EQ(r.remote_stream_fraction, 0.5);
}

TEST(NumaTest, ReplicatedModeHasNoRemoteAccesses) {
  CsrGraph g = SkewedGraph(20000);
  SocketTopology topo;
  topo.sockets = 2;
  topo.dram_per_socket_bytes = 64ull << 20;
  NumaRunResult r = RunNumaWalk(g, Spec(40000, 5), NumaMode::kReplicated, topo);
  EXPECT_DOUBLE_EQ(r.remote_stream_fraction, 0.0);
}

TEST(NumaTest, PartitionedDoublesWalkerBudget) {
  // Fig 12b: mode P nearly doubles walker density relative to mode R because the
  // graph is stored once instead of per socket. Use a DRAM budget small enough to
  // bind.
  CsrGraph g = SkewedGraph(50000);
  SocketTopology topo;
  topo.sockets = 2;
  topo.dram_per_socket_bytes = g.CsrBytes() * 2;
  WalkSpec spec = Spec(1 << 22, 3);  // more walkers than any budget allows

  NumaRunResult p = RunNumaWalk(g, spec, NumaMode::kPartitioned, topo);
  NumaRunResult r = RunNumaWalk(g, spec, NumaMode::kReplicated, topo);
  EXPECT_GT(p.walkers_per_episode, r.walkers_per_episode);
  double ratio = static_cast<double>(p.walkers_per_episode) /
                 static_cast<double>(r.walkers_per_episode);
  EXPECT_GT(ratio, 1.5);
}

TEST(NumaTest, SingleSocketDegenerates) {
  CsrGraph g = SkewedGraph(5000);
  SocketTopology topo;
  topo.sockets = 1;
  topo.dram_per_socket_bytes = 256ull << 20;
  NumaRunResult r = RunNumaWalk(g, Spec(5000, 3), NumaMode::kPartitioned, topo);
  EXPECT_DOUBLE_EQ(r.remote_stream_fraction, 0.0);
}

TEST(NumaTest, RejectsGraphLargerThanDram) {
  CsrGraph g = SkewedGraph(50000);
  SocketTopology topo;
  topo.sockets = 2;
  topo.dram_per_socket_bytes = g.CsrBytes() / 4;
  EXPECT_DEATH(RunNumaWalk(g, Spec(1000, 2), NumaMode::kReplicated, topo),
               "exceeds");
}

}  // namespace
}  // namespace fm
