// End-to-end tests across the full pipeline: dataset stand-in -> degree sort ->
// plan -> walk -> output, plus cross-engine agreement on realistic graphs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "src/fm.h"

namespace fm {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_dir_ = std::filesystem::temp_directory_path() / "fm_integration_cache";
    ::setenv("FM_DATASET_CACHE", cache_dir_.c_str(), 1);
  }
  void TearDown() override {
    ::unsetenv("FM_DATASET_CACHE");
    std::filesystem::remove_all(cache_dir_);
  }
  std::filesystem::path cache_dir_;
};

TEST_F(IntegrationTest, FullDeepWalkPipelineOnDatasetStandIn) {
  CsrGraph g = LoadDataset(DatasetByName("YT"), /*scale=*/0.1);
  ASSERT_TRUE(IsDegreeSorted(g));

  FlashMobEngine engine(g);
  WalkSpec spec = DeepWalkSpec(g.num_vertices(), /*steps=*/10, /*rounds=*/1);
  WalkResult result = engine.Run(spec);
  EXPECT_TRUE(result.paths.ValidAgainst(g));
  EXPECT_EQ(result.stats.total_steps,
            static_cast<uint64_t>(g.num_vertices()) * 10);

  // Table 2's key property end to end: hot vertices dominate visits.
  DegreeBucketStats stats = ComputeDegreeBucketStats(g, result.visit_counts);
  EXPECT_GT(stats.visit_share[0] + stats.visit_share[1], 0.30);
  EXPECT_LT(stats.visit_share[3], 0.45);
  // Visit share tracks edge share (the Table 2 correlation).
  for (size_t bucket = 0; bucket < kDegreeBuckets; ++bucket) {
    EXPECT_NEAR(stats.visit_share[bucket], stats.edge_share[bucket], 0.12)
        << bucket;
  }
}

TEST_F(IntegrationTest, ShuffledInputGraphIsHandledViaDegreeSort) {
  PowerLawConfig config;
  config.degrees.num_vertices = 20000;
  config.degrees.avg_degree = 8;
  config.shuffle_labels = true;
  CsrGraph raw = GeneratePowerLawGraph(config);
  DegreeSortedGraph sorted = DegreeSort(raw);

  FlashMobEngine engine(sorted.graph);
  WalkSpec spec;
  spec.num_walkers = 10000;
  spec.steps = 8;
  WalkResult result = engine.Run(spec);
  ASSERT_TRUE(result.paths.ValidAgainst(sorted.graph));

  // Paths map back to valid walks on the original labels.
  for (Wid w = 0; w < 50; ++w) {
    auto path = result.paths.Path(w);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      Vid from = sorted.new_to_old[path[i]];
      Vid to = sorted.new_to_old[path[i + 1]];
      if (from != to) {
        ASSERT_TRUE(raw.HasEdge(from, to));
      }
    }
  }
}

TEST_F(IntegrationTest, FlashMobMatchesKnightKingOnDataset) {
  CsrGraph g = LoadDataset(DatasetByName("YT"), 0.05);
  WalkSpec spec;
  spec.num_walkers = static_cast<Wid>(g.num_vertices()) * 4;
  spec.steps = 10;
  spec.keep_paths = false;

  FlashMobEngine fmob(g);
  auto fm_counts = fmob.Run(spec).visit_counts;
  KnightKingEngine knk(g);
  auto knk_counts = knk.Run(spec).visit_counts;

  // Rank correlation on the hottest 1% of vertices.
  uint64_t fm_total = 0, knk_total = 0;
  for (Vid v = 0; v < g.num_vertices(); ++v) {
    fm_total += fm_counts[v];
    knk_total += knk_counts[v];
  }
  Vid top = std::max<Vid>(g.num_vertices() / 100, 20);
  for (Vid v = 0; v < top; ++v) {
    double a = static_cast<double>(fm_counts[v]) / fm_total;
    double b = static_cast<double>(knk_counts[v]) / knk_total;
    ASSERT_NEAR(a, b, std::max(a, b) * 0.25 + 1e-5) << v;
  }
}

TEST_F(IntegrationTest, InstrumentedHeadlineComparison) {
  // Fig 1b in miniature: per-step L2/L3 misses, FlashMob vs KnightKing, on a graph
  // much bigger than the simulated cache.
  CsrGraph g = LoadDataset(DatasetByName("YT"), 0.1);
  WalkSpec spec;
  spec.num_walkers = 20000;
  spec.steps = 3;
  spec.keep_paths = false;

  CacheInfo tiny;
  tiny.l1_bytes = 8 * 1024;
  tiny.l2_bytes = 64 * 1024;
  tiny.l3_bytes = 512 * 1024;

  CacheHierarchy fm_sim(tiny), knk_sim(tiny);
  FlashMobEngine fmob(g);
  WalkResult fm_run = fmob.RunInstrumented(spec, &fm_sim);
  KnightKingEngine knk(g);
  WalkResult knk_run = knk.RunInstrumented(spec, &knk_sim);

  double fm_l3_miss = static_cast<double>(fm_sim.counters().misses[2]) /
                      fm_run.stats.total_steps;
  double knk_l3_miss = static_cast<double>(knk_sim.counters().misses[2]) /
                       knk_run.stats.total_steps;
  EXPECT_LT(fm_l3_miss, knk_l3_miss);
}

TEST_F(IntegrationTest, EdgeStreamFeedsDownstreamConsumer) {
  // The "stream sampled edges to the GPU" output mode: every streamed pair is an
  // edge and the count matches live walker-steps.
  CsrGraph g = LoadDataset(DatasetByName("YT"), 0.02);
  FlashMobEngine engine(g);
  WalkSpec spec;
  spec.num_walkers = 5000;
  spec.steps = 5;
  WalkResult result = engine.Run(spec);
  uint64_t streamed = 0;
  result.paths.StreamEdges([&](Vid from, Vid to) {
    ++streamed;
    ASSERT_TRUE(g.HasEdge(from, to) || from == to);
  });
  EXPECT_EQ(streamed, result.stats.total_steps);
}

}  // namespace
}  // namespace fm
