#include "src/apps/simrank.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/gen/powerlaw_graph.h"
#include "src/graph/transpose.h"
#include "tests/test_util.h"

namespace fm {
namespace {

TEST(ExactSimRankTest, IdentityAndRange) {
  CsrGraph g = SmallGraph();
  auto s = ExactSimRank(g, 0.6, 10);
  for (Vid a = 0; a < 4; ++a) {
    EXPECT_DOUBLE_EQ(s[a][a], 1.0);
    for (Vid b = 0; b < 4; ++b) {
      EXPECT_GE(s[a][b], 0.0);
      EXPECT_LE(s[a][b], 1.0);
      EXPECT_DOUBLE_EQ(s[a][b], s[b][a]);
    }
  }
}

TEST(ExactSimRankTest, HandComputedTwoParents) {
  // 0 -> 2, 1 -> 2, 0 -> 3, 1 -> 3: vertices 2 and 3 share identical in-sets
  // {0, 1}. s(2,3) = c/4 * (s00 + s01 + s10 + s11); with s(0,1) = 0 (no in-edges)
  // => s(2,3) = c/4 * 2 = c/2.
  GraphBuilder b(4);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(0, 3);
  b.AddEdge(1, 3);
  CsrGraph g = b.Build();
  auto s = ExactSimRank(g, 0.6, 20);
  EXPECT_NEAR(s[2][3], 0.6 / 2, 1e-9);
  EXPECT_DOUBLE_EQ(s[0][1], 0.0);  // no in-neighbors: never similar
}

TEST(SimRankMcTest, MatchesExactOnSmallGraphs) {
  // Random small graph; MC estimates must track the exact fixed point.
  PowerLawConfig config;
  config.degrees.num_vertices = 60;
  config.degrees.avg_degree = 4;
  config.degrees.alpha = 0.4;
  CsrGraph g = GeneratePowerLawGraph(config);
  CsrGraph reverse = Transpose(g);
  auto exact = ExactSimRank(g, 0.6, 14);

  SimRankOptions options;
  options.samples = 40000;
  options.seed = 11;
  int checked = 0;
  for (Vid a = 0; a < 8; ++a) {
    for (Vid b = a + 1; b < 8; ++b) {
      double mc = EstimateSimRank(reverse, a, b, options);
      EXPECT_NEAR(mc, exact[a][b], 0.03) << a << "," << b;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 28);
}

TEST(SimRankMcTest, SelfSimilarityIsOne) {
  CsrGraph reverse = Transpose(SmallGraph());
  EXPECT_DOUBLE_EQ(EstimateSimRank(reverse, 2, 2), 1.0);
}

TEST(SimRankMcTest, BatchMatchesSingle) {
  CsrGraph g = SmallGraph();
  CsrGraph reverse = Transpose(g);
  SimRankOptions options;
  options.samples = 5000;
  std::vector<std::pair<Vid, Vid>> pairs{{0, 1}, {1, 2}, {2, 3}};
  auto batch = EstimateSimRankBatch(reverse, pairs, options);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], EstimateSimRank(reverse, pairs[i].first,
                                               pairs[i].second, options));
  }
}

TEST(SimRankMcTest, WalkedBatchMatchesExact) {
  // The engine-walked batch estimator draws its coupled walks from the
  // FlashMob step pipeline (via a PairMeetingObserver) instead of per-pair
  // pointer chases; it agrees with the exact fixed point statistically.
  PowerLawConfig config;
  config.degrees.num_vertices = 60;
  config.degrees.avg_degree = 4;
  config.degrees.alpha = 0.4;
  CsrGraph g = GeneratePowerLawGraph(config);
  CsrGraph reverse = Transpose(g);
  auto exact = ExactSimRank(g, 0.6, 14);

  SimRankOptions options;
  options.samples = 40000;
  options.seed = 13;
  std::vector<std::pair<Vid, Vid>> pairs;
  for (Vid a = 0; a < 8; ++a) {
    for (Vid b = a + 1; b < 8; ++b) {
      pairs.push_back({a, b});
    }
  }
  auto walked = EstimateSimRankBatchWalked(reverse, pairs, options);
  ASSERT_EQ(walked.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_NEAR(walked[i], exact[pairs[i].first][pairs[i].second], 0.03)
        << pairs[i].first << "," << pairs[i].second;
  }
}

TEST(SimRankMcTest, WalkedBatchDeadVerticesScoreZero) {
  GraphBuilder b(3);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  CsrGraph reverse = Transpose(b.Build());
  SimRankOptions options;
  options.samples = 1000;
  auto walked = EstimateSimRankBatchWalked(reverse, {{0, 1}, {2, 2}}, options);
  ASSERT_EQ(walked.size(), 2u);
  EXPECT_DOUBLE_EQ(walked[0], 0.0);  // no in-edges: the pair can never meet
  EXPECT_DOUBLE_EQ(walked[1], 1.0);  // identical pair meets at step 0
}

TEST(SimRankMcTest, DeadVerticesScoreZero) {
  // Vertices with no in-edges can never meet.
  GraphBuilder b(3);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  CsrGraph reverse = Transpose(b.Build());
  SimRankOptions options;
  options.samples = 1000;
  EXPECT_DOUBLE_EQ(EstimateSimRank(reverse, 0, 1, options), 0.0);
}

}  // namespace
}  // namespace fm
