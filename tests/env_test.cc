#include "src/util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace fm {
namespace {

TEST(EnvTest, Int64ParsesAndFallsBack) {
  ::setenv("FM_TEST_INT", "42", 1);
  EXPECT_EQ(EnvInt64("FM_TEST_INT", 7), 42);
  ::setenv("FM_TEST_INT", "-13", 1);
  EXPECT_EQ(EnvInt64("FM_TEST_INT", 7), -13);
  ::setenv("FM_TEST_INT", "abc", 1);
  EXPECT_EQ(EnvInt64("FM_TEST_INT", 7), 7);
  ::setenv("FM_TEST_INT", "", 1);
  EXPECT_EQ(EnvInt64("FM_TEST_INT", 7), 7);
  ::unsetenv("FM_TEST_INT");
  EXPECT_EQ(EnvInt64("FM_TEST_INT", 7), 7);
}

TEST(EnvTest, DoubleParsesAndFallsBack) {
  ::setenv("FM_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("FM_TEST_DBL", 1.0), 2.5);
  ::setenv("FM_TEST_DBL", "junk", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("FM_TEST_DBL", 1.0), 1.0);
  ::unsetenv("FM_TEST_DBL");
  EXPECT_DOUBLE_EQ(EnvDouble("FM_TEST_DBL", 1.0), 1.0);
}

TEST(EnvTest, StringFallsBack) {
  ::setenv("FM_TEST_STR", "hello", 1);
  EXPECT_EQ(EnvString("FM_TEST_STR", "d"), "hello");
  ::unsetenv("FM_TEST_STR");
  EXPECT_EQ(EnvString("FM_TEST_STR", "d"), "d");
}

}  // namespace
}  // namespace fm
