#include "src/apps/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/gen/powerlaw_graph.h"
#include "src/gen/uniform_degree.h"
#include "tests/test_util.h"

namespace fm {
namespace {

TEST(AggregateTest, AverageDegreeOnRegularGraph) {
  // Regular graph: no degree bias to correct; estimate must be near-exact.
  CsrGraph g = GenerateUniformDegreeGraph(5000, 6, 3);
  AggregateOptions options;
  options.walkers = 2000;
  double est = EstimateAverageDegree(g, options);
  EXPECT_NEAR(est, 6.0, 0.1);
}

TEST(AggregateTest, AverageDegreeOnSkewedGraph) {
  // Undirected-ized power-law graph (stationary distribution ~ degree holds
  // exactly for undirected walks).
  PowerLawConfig config;
  config.degrees.num_vertices = 8000;
  config.degrees.avg_degree = 6;
  config.degrees.alpha = 0.7;
  CsrGraph directed = GeneratePowerLawGraph(config);
  GraphBuilder b(directed.num_vertices());
  for (Vid v = 0; v < directed.num_vertices(); ++v) {
    for (Vid u : directed.neighbors(v)) {
      b.AddEdge(v, u);
      b.AddEdge(u, v);
    }
  }
  CsrGraph g = DegreeSort(b.Build({.remove_duplicate_edges = true})).graph;
  double truth = static_cast<double>(g.num_edges()) / g.num_vertices();

  AggregateOptions options;
  options.walkers = 4000;
  options.steps = 80;
  double est = EstimateAverageDegree(g, options);
  EXPECT_NEAR(est, truth, truth * 0.15);
}

TEST(AggregateTest, VertexCountEstimate) {
  // Needs enough samples for collisions: small graph, many walkers.
  CsrGraph g = GenerateUniformDegreeGraph(2000, 8, 5);
  AggregateOptions options;
  options.walkers = 3000;
  options.steps = 72;
  double est = EstimateVertexCount(g, options);
  EXPECT_NEAR(est, 2000.0, 2000.0 * 0.25);
}

TEST(AggregateTest, VertexCountWithoutCollisionsReturnsZero) {
  // Huge graph, tiny sample: no collisions expected => no estimate (0).
  PowerLawConfig config;
  config.degrees.num_vertices = 500000;
  config.degrees.avg_degree = 8;
  CsrGraph g = GeneratePowerLawGraph(config);
  AggregateOptions options;
  options.walkers = 4;
  options.steps = 24;
  options.burn_in = 16;
  double est = EstimateVertexCount(g, options);
  EXPECT_GE(est, 0.0);  // usually 0; never negative or NaN
  EXPECT_FALSE(std::isnan(est));
}

TEST(AggregateTest, EstimatorIsSeedStable) {
  CsrGraph g = GenerateUniformDegreeGraph(3000, 5, 7);
  AggregateOptions options;
  options.walkers = 1500;
  options.seed = 42;
  double a = EstimateAverageDegree(g, options);
  double b = EstimateAverageDegree(g, options);
  EXPECT_DOUBLE_EQ(a, b);  // deterministic given the seed
}

}  // namespace
}  // namespace fm
