#include "src/core/sample_stage.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/algorithms/node2vec.h"
#include "src/gen/uniform_degree.h"
#include "src/util/stats.h"
#include "tests/test_util.h"

namespace fm {
namespace {

TEST(HasEdgeHookedTest, MatchesGraphHasEdge) {
  CsrGraph g = SmallGraph();
  NullMemHook hook;
  for (Vid v = 0; v < g.num_vertices(); ++v) {
    for (Vid u = 0; u < g.num_vertices(); ++u) {
      EXPECT_EQ(HasEdgeHooked(g, v, u, hook), g.HasEdge(v, u)) << v << " " << u;
    }
  }
}

class SampleKernelTest : public ::testing::TestWithParam<SamplePolicy> {};

TEST_P(SampleKernelTest, ProducesValidNeighbors) {
  CsrGraph g = GenerateUniformDegreeGraph(512, 6, 2, 512);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, GetParam());
  PresampleBuffers buffers(g, plan);
  XorShiftRng init(1);
  const Wid n = 4096;
  std::vector<Vid> walkers(n);
  for (auto& w : walkers) {
    w = static_cast<Vid>(init.NextBounded(512));
  }
  auto before = walkers;
  NullMemHook hook;
  SampleVpFirstOrder(g, 0, plan.vp(0), &buffers, walkers.data(), n, 0.0, nullptr,
                     /*chunk_seed=*/2, hook);
  for (Wid j = 0; j < n; ++j) {
    ASSERT_TRUE(g.HasEdge(before[j], walkers[j])) << j;
  }
}

TEST_P(SampleKernelTest, UniformDistributionPerVertex) {
  // All walkers parked on a degree-8 vertex: sampled next stops must be uniform
  // over its 8 distinct neighbors (statistically identical under PS and DS).
  GraphBuilder b(9);
  for (Vid t = 1; t <= 8; ++t) {
    b.AddEdge(0, t);
    b.AddEdge(t, 0);
  }
  CsrGraph g = DegreeSort(b.Build()).graph;
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, GetParam());
  PresampleBuffers buffers(g, plan);
  const Wid n = 1 << 18;
  std::vector<Vid> walkers(n, 0);  // vertex 0 = the hub after sorting
  NullMemHook hook;
  SampleVpFirstOrder(g, 0, plan.vp(0), &buffers, walkers.data(), n, 0.0, nullptr,
                     /*chunk_seed=*/3, hook);
  std::vector<uint64_t> counts(9, 0);
  for (Vid v : walkers) {
    ++counts[v];
  }
  std::vector<uint64_t> observed(counts.begin() + 1, counts.end());
  std::vector<double> expected(8, n / 8.0);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_TRUE(ChiSquareTestPasses(observed, expected));
}

INSTANTIATE_TEST_SUITE_P(Policies, SampleKernelTest,
                         ::testing::Values(SamplePolicy::kPS, SamplePolicy::kDS));

TEST(SampleKernelTest, UniformDegreeFastPathMatchesGeneralCsr) {
  // Same graph, same seed: the regular-partition arithmetic path and the general
  // CSR path must make identical choices (both draw index rng.NextBounded(deg)).
  CsrGraph g = GenerateUniformDegreeGraph(256, 4, 9, 256);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, SamplePolicy::kDS);
  ASSERT_TRUE(plan.vp(0).uniform_degree);
  PartitionPlan general = plan;
  // Forge a non-uniform view of the same partition by clearing the flag.
  // (Degree stays 4 for every vertex, so both paths sample the same edge set.)
  const_cast<VertexPartition&>(general.vp(0)).uniform_degree = false;

  const Wid n = 10000;
  std::vector<Vid> a(n), b2(n);
  XorShiftRng init(4);
  for (Wid j = 0; j < n; ++j) {
    a[j] = b2[j] = static_cast<Vid>(init.NextBounded(256));
  }
  NullMemHook hook;
  SampleVpFirstOrder(g, 0, plan.vp(0), nullptr, a.data(), n, 0.0, nullptr,
                     /*chunk_seed=*/5, hook);
  SampleVpFirstOrder(g, 0, general.vp(0), nullptr, b2.data(), n, 0.0, nullptr,
                     /*chunk_seed=*/5, hook);
  EXPECT_EQ(a, b2);
}

TEST(SampleKernelTest, DegreeOneNeedsNoRng) {
  CsrGraph g = RingGraph(64);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, SamplePolicy::kDS);
  ASSERT_TRUE(plan.vp(0).uniform_degree);
  ASSERT_EQ(plan.vp(0).degree, 1u);
  std::vector<Vid> walkers{0, 5, 63};
  NullMemHook hook;
  SampleVpFirstOrder(g, 0, plan.vp(0), nullptr, walkers.data(), 3, 0.0, nullptr,
                     /*chunk_seed=*/1, hook);
  EXPECT_EQ(walkers, (std::vector<Vid>{1, 6, 0}));
}

TEST(SampleKernelTest, DeadEndStaysInPlace) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);  // vertex 1 has no out-edges
  CsrGraph g = b.Build();
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, SamplePolicy::kDS);
  std::vector<Vid> walkers{1, 1};
  NullMemHook hook;
  SampleVpFirstOrder(g, 0, plan.vp(0), nullptr, walkers.data(), 2, 0.0, nullptr,
                     /*chunk_seed=*/1, hook);
  EXPECT_EQ(walkers, (std::vector<Vid>{1, 1}));
}

TEST(SampleKernelTest, StopProbabilityTerminatesRoughlyThatFraction) {
  CsrGraph g = GenerateUniformDegreeGraph(128, 4, 3, 128);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, SamplePolicy::kDS);
  const Wid n = 1 << 17;
  std::vector<Vid> walkers(n, 0);
  NullMemHook hook;
  SampleVpFirstOrder(g, 0, plan.vp(0), nullptr, walkers.data(), n, 0.25, nullptr,
                     /*chunk_seed=*/6, hook);
  double dead = std::count(walkers.begin(), walkers.end(), kInvalidVid) /
                static_cast<double>(n);
  EXPECT_NEAR(dead, 0.25, 0.01);
}

TEST(Node2VecKernelTest, ValidTransitionsAndDistribution) {
  CsrGraph g = CompleteGraph(6);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, SamplePolicy::kDS);
  Node2VecParams params{0.5, 2.0};
  const Wid n = 1 << 17;
  std::vector<Vid> walkers(n, 0);
  std::vector<Vid> prevs(n, 2);
  NullMemHook hook;
  SampleVpNode2Vec(g, plan.vp(0), params, walkers.data(), prevs.data(), n, 0.0,
                   /*update_prevs=*/false, /*chunk_seed=*/8, hook);
  auto exact = Node2VecTransitionProbs(g, 0, 2, params);
  auto nbrs = g.neighbors(0);
  std::vector<uint64_t> counts(6, 0);
  for (Vid v : walkers) {
    ASSERT_TRUE(g.HasEdge(0, v));
    ++counts[v];
  }
  std::vector<uint64_t> observed;
  std::vector<double> expected;
  for (size_t i = 0; i < nbrs.size(); ++i) {
    observed.push_back(counts[nbrs[i]]);
    expected.push_back(exact[i] * n);
  }
  EXPECT_TRUE(ChiSquareTestPasses(observed, expected));
}

TEST(Node2VecKernelTest, FirstStepIsUniform) {
  CsrGraph g = CompleteGraph(5);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, SamplePolicy::kDS);
  const Wid n = 1 << 16;
  std::vector<Vid> walkers(n, 0);
  std::vector<Vid> prevs(n, kInvalidVid);
  NullMemHook hook;
  SampleVpNode2Vec(g, plan.vp(0), Node2VecParams{0.1, 10.0}, walkers.data(),
                   prevs.data(), n, 0.0, /*update_prevs=*/false,
                   /*chunk_seed=*/9, hook);
  std::vector<uint64_t> counts(5, 0);
  for (Vid v : walkers) {
    ++counts[v];
  }
  std::vector<uint64_t> observed(counts.begin() + 1, counts.end());
  std::vector<double> expected(4, n / 4.0);
  EXPECT_TRUE(ChiSquareTestPasses(observed, expected));
}

}  // namespace
}  // namespace fm
