#include "src/core/cost_model.h"

#include <gtest/gtest.h>

namespace fm {
namespace {

AnalyticCostModel PaperModel() { return AnalyticCostModel(PaperCacheInfo()); }

TEST(AnalyticCostModelTest, WorkingSets) {
  AnalyticCostModel model = PaperModel();
  // PS: cursor + one active line per vertex, degree-independent.
  EXPECT_EQ(model.WorkingSetBytes(1000, 8, SamplePolicy::kPS),
            model.WorkingSetBytes(1000, 512, SamplePolicy::kPS));
  // DS: all edges + offsets.
  EXPECT_EQ(model.WorkingSetBytes(1000, 8, SamplePolicy::kDS), 1000u * 8 * 4 + 8000u);
  EXPECT_GT(model.WorkingSetBytes(1000, 512, SamplePolicy::kDS),
            model.WorkingSetBytes(1000, 8, SamplePolicy::kDS));
}

TEST(AnalyticCostModelTest, LevelClassification) {
  AnalyticCostModel model = PaperModel();
  EXPECT_EQ(model.LevelFor(16 * 1024), 1);
  EXPECT_EQ(model.LevelFor(512 * 1024), 2);
  EXPECT_EQ(model.LevelFor(10 * 1024 * 1024), 3);
  EXPECT_EQ(model.LevelFor(1ull << 30), 4);
}

TEST(AnalyticCostModelTest, EffectiveLatencyMonotoneInWorkingSet) {
  AnalyticCostModel model = PaperModel();
  double prev = 0;
  for (uint64_t ws = 1024; ws <= (1ull << 30); ws *= 4) {
    double lat = model.EffectiveRandomNs(ws);
    EXPECT_GE(lat, prev * 0.999) << ws;
    prev = lat;
  }
  EXPECT_NEAR(model.EffectiveRandomNs(1024), 0.77, 0.01);     // L1 random
  EXPECT_GT(model.EffectiveRandomNs(1ull << 32), 15.0);       // ~DRAM random
}

TEST(AnalyticCostModelTest, FigureSixObservation1_FasterCachesWin) {
  // Both policies benefit from fitting the working set into faster caches.
  AnalyticCostModel model = PaperModel();
  for (SamplePolicy policy : {SamplePolicy::kPS, SamplePolicy::kDS}) {
    double small = model.SampleNsPerStep(400, 16, 1.0, policy);
    double large = model.SampleNsPerStep(4'000'000, 16, 1.0, policy);
    EXPECT_LT(small, large);
  }
}

TEST(AnalyticCostModelTest, FigureSixObservation2_PsLikesHighDegree) {
  AnalyticCostModel model = PaperModel();
  // PS gets cheaper as degree rises (same VP vertex count / working set).
  double ps_low = model.SampleNsPerStep(4096, 16, 1.0, SamplePolicy::kPS);
  double ps_high = model.SampleNsPerStep(4096, 1024, 1.0, SamplePolicy::kPS);
  EXPECT_LT(ps_high, ps_low);
  // DS is degree-insensitive once the working set level is fixed: compare two
  // degrees whose working sets stay within L2.
  double ds_a = model.SampleNsPerStep(2048, 16, 1.0, SamplePolicy::kDS);
  double ds_b = model.SampleNsPerStep(2048, 32, 1.0, SamplePolicy::kDS);
  EXPECT_NEAR(ds_a, ds_b, ds_a * 0.25);
}

TEST(AnalyticCostModelTest, FigureSixObservation3_DensityHelpsInCache) {
  AnalyticCostModel model = PaperModel();
  for (SamplePolicy policy : {SamplePolicy::kPS, SamplePolicy::kDS}) {
    double sparse = model.SampleNsPerStep(4096, 64, 0.25, policy);
    double dense = model.SampleNsPerStep(4096, 64, 1.0, policy);
    EXPECT_LE(dense, sparse);
  }
}

TEST(AnalyticCostModelTest, FigureSixObservation4_PsDramIsWorst) {
  AnalyticCostModel model = PaperModel();
  uint64_t huge = 64'000'000;  // PS working set ~4.3 GB: deep DRAM territory
  double ps_dram = model.SampleNsPerStep(huge, 64, 1.0, SamplePolicy::kPS);
  double ps_l2 = model.SampleNsPerStep(8192, 64, 1.0, SamplePolicy::kPS);
  double ds_l2 = model.SampleNsPerStep(2048, 16, 1.0, SamplePolicy::kDS);
  EXPECT_GT(ps_dram, ps_l2 * 2);
  EXPECT_GT(ps_dram, ds_l2 * 2);
}

TEST(AnalyticCostModelTest, PsBeatsDsForHighDegreeVertices) {
  // The crossover the planner exploits: hub partitions should prefer PS, tail
  // degree-1/2 partitions should prefer DS.
  AnalyticCostModel model = PaperModel();
  double ps_hub = model.SampleNsPerStep(1 << 14, 1024, 1.0, SamplePolicy::kPS);
  double ds_hub = model.SampleNsPerStep(1 << 14, 1024, 1.0, SamplePolicy::kDS);
  EXPECT_LT(ps_hub, ds_hub);
  double ps_tail = model.SampleNsPerStep(1 << 14, 1, 1.0, SamplePolicy::kPS);
  double ds_tail = model.SampleNsPerStep(1 << 14, 1, 1.0, SamplePolicy::kDS);
  EXPECT_LT(ds_tail, ps_tail);
}

TEST(AnalyticCostModelTest, ThreadsShrinkL3Share) {
  AnalyticCostModel solo(PaperCacheInfo(), LatencyModel{}, 1);
  AnalyticCostModel crowded(PaperCacheInfo(), LatencyModel{}, 12);
  // A working set that fits a whole L3 but not 1/12th of it.
  uint64_t ws = 10 * 1024 * 1024;
  EXPECT_LT(solo.EffectiveRandomNs(ws), crowded.EffectiveRandomNs(ws));
}

}  // namespace
}  // namespace fm
