#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/util/stats.h"

namespace fm {
namespace {

TEST(XorShiftRngTest, DeterministicForSameSeed) {
  XorShiftRng a(42);
  XorShiftRng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(XorShiftRngTest, DifferentSeedsDiverge) {
  XorShiftRng a(1);
  XorShiftRng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.Next() == b.Next();
  }
  EXPECT_LT(equal, 3);
}

TEST(XorShiftRngTest, ZeroSeedIsValid) {
  XorShiftRng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.Next());
  }
  EXPECT_EQ(seen.size(), 1000u);  // no short cycle, nonzero state
}

TEST(XorShiftRngTest, NextDoubleInUnitInterval) {
  XorShiftRng rng(7);
  for (int i = 0; i < 100000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(XorShiftRngTest, NextBoundedInRange) {
  XorShiftRng rng(9);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(XorShiftRngTest, NextBoundedIsUniform) {
  XorShiftRng rng(11);
  const uint64_t buckets = 16;
  const uint64_t draws = 1 << 20;
  std::vector<uint64_t> observed(buckets, 0);
  for (uint64_t i = 0; i < draws; ++i) {
    ++observed[rng.NextBounded(buckets)];
  }
  std::vector<double> expected(buckets, static_cast<double>(draws) / buckets);
  EXPECT_TRUE(ChiSquareTestPasses(observed, expected));
}

TEST(MersenneRngTest, UniformAndDeterministic) {
  MersenneRng a(5);
  MersenneRng b(5);
  EXPECT_EQ(a.Next(), b.Next());
  const uint64_t buckets = 16;
  const uint64_t draws = 1 << 18;
  std::vector<uint64_t> observed(buckets, 0);
  for (uint64_t i = 0; i < draws; ++i) {
    ++observed[a.NextBounded(buckets)];
  }
  std::vector<double> expected(buckets, static_cast<double>(draws) / buckets);
  EXPECT_TRUE(ChiSquareTestPasses(observed, expected));
}

TEST(DeriveSeedTest, StreamsAreDecorrelated) {
  // Consecutive stream ids must give unrelated generators.
  uint64_t base = 123;
  std::set<uint64_t> seeds;
  for (uint64_t s = 0; s < 1000; ++s) {
    seeds.insert(DeriveSeed(base, s));
  }
  EXPECT_EQ(seeds.size(), 1000u);
  // First outputs of adjacent streams agree in few bit positions on average.
  XorShiftRng a(DeriveSeed(base, 0));
  XorShiftRng b(DeriveSeed(base, 1));
  int identical = 0;
  for (int i = 0; i < 64; ++i) {
    identical += a.Next() == b.Next();
  }
  EXPECT_EQ(identical, 0);
}

TEST(SplitMix64Test, KnownSequenceProperties) {
  uint64_t state = 0;
  uint64_t first = SplitMix64(state);
  uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(first, 0u);
}

}  // namespace
}  // namespace fm
