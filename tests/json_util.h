// Test-side alias for the shared JSON parser. The parser used to live here;
// it moved to src/util/json.h so `fmtrace` can read trace documents with the
// same grammar the tests assert against. Kept as a thin forwarding header so
// test code keeps its `testjson::` spelling.
#ifndef TESTS_JSON_UTIL_H_
#define TESTS_JSON_UTIL_H_

#include "src/util/json.h"

namespace fm {
namespace testjson {

using json::ParseJson;
using json::Value;

}  // namespace testjson
}  // namespace fm

#endif  // TESTS_JSON_UTIL_H_
