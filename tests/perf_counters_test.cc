// perf_counters + MetricsExport: open/read/close lifecycle through an injected
// syscall shim (no real PMU needed), the graceful-degradation contract
// (EACCES/ENOSYS -> inactive groups, "noop" backend, all-zero reads, never a
// failure), CounterSample arithmetic, and JSON round-trips of both metrics
// schemas through the shared parser in src/util/json.h.
#include "src/util/perf_counters.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>
#endif

#include "src/core/metrics.h"
#include "src/graph/degree_sort.h"
#include "src/graph/graph_builder.h"
#include "src/util/json.h"

namespace fm {
namespace {

// Restores the real syscall no matter how a test exits.
struct ShimGuard {
  explicit ShimGuard(PerfEventOpenFn fn) { SetPerfEventOpenForTest(fn); }
  ~ShimGuard() { SetPerfEventOpenForTest(nullptr); }
};

long FailWithEacces(void*, int32_t, int32_t, int32_t, unsigned long) {
  errno = EACCES;
  return -1;
}

long FailWithEnosys(void*, int32_t, int32_t, int32_t, unsigned long) {
  errno = ENOSYS;
  return -1;
}

TEST(CounterSampleTest, AccessorsMapToSlots) {
  CounterSample s;
  for (int i = 0; i < kNumPerfCounters; ++i) {
    s.values[i] = 100 + i;
  }
  EXPECT_EQ(s.cycles(), 100u);
  EXPECT_EQ(s.instructions(), 101u);
  EXPECT_EQ(s.llc_loads(), 102u);
  EXPECT_EQ(s.llc_misses(), 103u);
  EXPECT_EQ(s.l1d_misses(), 104u);
  EXPECT_EQ(s.dtlb_misses(), 105u);
}

TEST(CounterSampleTest, NamesAreStableJsonKeys) {
  const char* expected[kNumPerfCounters] = {"cycles",     "instructions",
                                            "llc_loads",  "llc_misses",
                                            "l1d_misses", "dtlb_misses"};
  for (int i = 0; i < kNumPerfCounters; ++i) {
    EXPECT_STREQ(PerfCounterName(i), expected[i]);
  }
  EXPECT_STREQ(PerfCounterName(-1), "unknown");
  EXPECT_STREQ(PerfCounterName(kNumPerfCounters), "unknown");
}

TEST(CounterSampleTest, ArithmeticAndDerivedRates) {
  CounterSample a, b;
  a.values[0] = 1000;  // cycles
  a.values[1] = 2500;  // instructions
  a.values[2] = 80;    // llc loads
  a.values[3] = 20;    // llc misses
  b.values[0] = 400;
  b.values[1] = 500;

  CounterSample sum = a;
  sum += b;
  EXPECT_EQ(sum.cycles(), 1400u);
  EXPECT_EQ(sum.instructions(), 3000u);

  CounterSample delta = a - b;
  EXPECT_EQ(delta.cycles(), 600u);
  EXPECT_EQ(delta.instructions(), 2000u);

  // Saturating difference: a multiplex-scaling wobble must clamp to 0, not
  // wrap to 2^64 - epsilon.
  CounterSample wobble = b - a;
  EXPECT_EQ(wobble.cycles(), 0u);
  EXPECT_EQ(wobble.instructions(), 0u);

  EXPECT_DOUBLE_EQ(a.Ipc(), 2.5);
  EXPECT_DOUBLE_EQ(a.LlcMissRatio(), 0.25);
  CounterSample zero;
  EXPECT_TRUE(zero.AllZero());
  EXPECT_DOUBLE_EQ(zero.Ipc(), 0.0);       // no division by zero
  EXPECT_DOUBLE_EQ(zero.LlcMissRatio(), 0.0);
  EXPECT_FALSE(a.AllZero());
}

TEST(PerfCounterGroupTest, DefaultConstructedIsInactiveAndReadsZero) {
  PerfCounterGroup group;
  EXPECT_FALSE(group.active());
  EXPECT_EQ(group.num_open(), 0);
  EXPECT_TRUE(group.Read().AllZero());
}

TEST(PerfCounterGroupTest, EaccesDegradesToInactive) {
  // perf_event_paranoid forbidding the open must not abort anything: the
  // group comes back inactive and usable.
  ShimGuard guard(&FailWithEacces);
  PerfCounterGroup group = PerfCounterGroup::OpenForThread(0);
  EXPECT_FALSE(group.active());
  EXPECT_TRUE(group.Read().AllZero());
}

TEST(PerfCounterGroupTest, EnosysDegradesToInactive) {
  // Seccomp'd containers return ENOSYS; same contract.
  ShimGuard guard(&FailWithEnosys);
  PerfCounterGroup group = PerfCounterGroup::OpenForThread(0);
  EXPECT_FALSE(group.active());
  EXPECT_TRUE(group.Read().AllZero());
}

TEST(StagePerfMonitorTest, NoopBackendWhenNothingOpens) {
  ShimGuard guard(&FailWithEacces);
  StagePerfMonitor monitor(std::vector<int32_t>{1234, 5678});
  EXPECT_FALSE(monitor.active());
  EXPECT_STREQ(monitor.backend(), "noop");
  EXPECT_TRUE(monitor.ReadTotal().AllZero());
}

#if defined(__linux__)

int CountOpenFds() {
  int count = 0;
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) {
    return -1;
  }
  while (readdir(dir) != nullptr) {
    ++count;
  }
  closedir(dir);
  return count;
}

// Shim that hands out fds onto a fixture file containing one
// {value, time_enabled, time_running} record — read() then behaves exactly
// like a perf counter fd, so the whole open/read/scale/close path runs
// without PMU hardware.
std::string g_fixture_path;

long OpenFixtureFd(void*, int32_t, int32_t, int32_t, unsigned long) {
  int fd = open(g_fixture_path.c_str(), O_RDONLY);
  if (fd < 0) {
    errno = ENOENT;
    return -1;
  }
  return fd;
}

class FixtureFdTest : public ::testing::Test {
 protected:
  void WriteFixture(uint64_t value, uint64_t enabled, uint64_t running) {
    g_fixture_path =
        ::testing::TempDir() + "/perf_counters_fixture_" +
        std::to_string(getpid()) + ".bin";
    std::FILE* f = std::fopen(g_fixture_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    uint64_t buf[3] = {value, enabled, running};
    ASSERT_EQ(std::fwrite(buf, sizeof(uint64_t), 3, f), 3u);
    std::fclose(f);
  }

  void TearDown() override {
    if (!g_fixture_path.empty()) {
      std::remove(g_fixture_path.c_str());
      g_fixture_path.clear();
    }
  }
};

TEST_F(FixtureFdTest, OpenReadCloseLifecycle) {
  WriteFixture(/*value=*/7777, /*enabled=*/100, /*running=*/100);
  int fds_before = CountOpenFds();
  {
    ShimGuard guard(&OpenFixtureFd);
    PerfCounterGroup group = PerfCounterGroup::OpenForThread(0);
    ASSERT_TRUE(group.active());
    EXPECT_EQ(group.num_open(), kNumPerfCounters);
    CounterSample sample = group.Read();
    for (int i = 0; i < kNumPerfCounters; ++i) {
      EXPECT_EQ(sample.values[i], 7777u) << PerfCounterName(i);
    }
    EXPECT_GT(CountOpenFds(), fds_before);
  }
  // RAII close: every fd the shim handed out must be returned.
  EXPECT_EQ(CountOpenFds(), fds_before);
}

TEST_F(FixtureFdTest, MultiplexedValuesAreScaled) {
  // The event ran only 1/4 of the enabled window: reads must extrapolate
  // value * enabled/running (the standard perf convention).
  WriteFixture(/*value=*/1000, /*enabled=*/400, /*running=*/100);
  ShimGuard guard(&OpenFixtureFd);
  PerfCounterGroup group = PerfCounterGroup::OpenForThread(0);
  ASSERT_TRUE(group.active());
  EXPECT_EQ(group.Read().cycles(), 4000u);
}

TEST_F(FixtureFdTest, MoveTransfersOwnership) {
  WriteFixture(1, 10, 10);
  int fds_before = CountOpenFds();
  {
    ShimGuard guard(&OpenFixtureFd);
    PerfCounterGroup a = PerfCounterGroup::OpenForThread(0);
    ASSERT_TRUE(a.active());
    PerfCounterGroup b = std::move(a);
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): moved-from state is specified
    EXPECT_TRUE(b.active());
    a = std::move(b);
    EXPECT_TRUE(a.active());
  }
  EXPECT_EQ(CountOpenFds(), fds_before);  // no double-close, no leak
}

TEST_F(FixtureFdTest, StagePerfMonitorSumsThreads) {
  WriteFixture(50, 10, 10);
  ShimGuard guard(&OpenFixtureFd);
  // Coordinator + two "workers" (the shim ignores the tid).
  StagePerfMonitor monitor(std::vector<int32_t>{111, 222});
  ASSERT_TRUE(monitor.active());
  EXPECT_STREQ(monitor.backend(), "perf");
  EXPECT_EQ(monitor.ReadTotal().cycles(), 150u);
}

#endif  // defined(__linux__)

// ---- MetricsExport round-trips ---------------------------------------------

WalkStats FabricatedStats() {
  WalkStats stats;
  stats.total_steps = 1000;
  stats.episodes = 2;
  stats.walker_density = 0.125;
  stats.times.sample_s = 0.5;
  stats.times.shuffle_s = 0.25;
  stats.times.other_s = 0.25;
  stats.perf_backend = "perf";
  stats.counters.scatter.values[0] = 100;
  stats.counters.sample.values[0] = 800;   // cycles
  stats.counters.sample.values[1] = 1600;  // instructions
  stats.counters.sample.values[2] = 64;    // llc loads
  stats.counters.sample.values[3] = 16;    // llc misses
  stats.counters.gather.values[0] = 100;
  StepStageRecord rec;
  rec.episode = 1;
  rec.step = 3;
  rec.scatter_s = 0.01;
  rec.sample_s = 0.02;
  rec.gather_s = 0.03;
  rec.live_walkers = 42;
  rec.sample_counters.values[3] = 8;
  stats.step_records.push_back(rec);
  return stats;
}

TEST(MetricsExportTest, WalkMetricsJsonRoundTrips) {
  MetricsMeta meta;
  meta.tool = "unit-test";
  meta.graph = "path/with \"quotes\"\nand\\slashes";
  meta.algorithm = "deepwalk";
  meta.seed = 1234567890123ULL;
  meta.threads = 8;
  WalkStats stats = FabricatedStats();

  json::Value doc = json::ParseJson(WalkMetricsJson(meta, stats, nullptr));
  EXPECT_EQ(doc.Str("schema"), "fm-metrics-v1");
  EXPECT_EQ(doc.Str("backend"), "perf");
  EXPECT_EQ(doc.Str("tool"), "unit-test");
  // Escaping round-trip: the parser must recover the raw path.
  EXPECT_EQ(doc.Str("graph"), meta.graph);
  EXPECT_EQ(doc.Num("seed"), 1234567890123.0);
  EXPECT_EQ(doc.Num("threads"), 8.0);

  const json::Value& run = doc.At("run");
  EXPECT_EQ(run.Num("total_steps"), 1000.0);
  EXPECT_EQ(run.Num("episodes"), 2.0);
  EXPECT_DOUBLE_EQ(run.At("seconds").Num("sample"), 0.5);

  const json::Value& counters = doc.At("counters");
  EXPECT_EQ(counters.At("sample").Num("cycles"), 800.0);
  EXPECT_EQ(counters.At("sample").Num("llc_misses"), 16.0);
  const json::Value& derived = counters.At("derived");
  // Totals: cycles 100+800+100, instructions 1600 -> IPC 1.6.
  EXPECT_DOUBLE_EQ(derived.Num("ipc"), 1.6);
  EXPECT_DOUBLE_EQ(derived.Num("llc_miss_ratio"), 0.25);
  EXPECT_DOUBLE_EQ(derived.Num("cycles_per_step"), 1.0);

  const json::Value& steps = doc.At("steps");
  ASSERT_EQ(steps.array.size(), 1u);
  EXPECT_EQ(steps.array[0].Num("episode"), 1.0);
  EXPECT_EQ(steps.array[0].Num("step"), 3.0);
  EXPECT_EQ(steps.array[0].Num("live_walkers"), 42.0);
  EXPECT_EQ(steps.array[0].At("counters").At("sample").Num("llc_misses"), 8.0);
  // No plan given: vp_classes must be present and empty, not missing.
  EXPECT_TRUE(doc.At("vp_classes").array.empty());
}

TEST(MetricsExportTest, BackendDefaultsToOffWhenCollectionDisabled) {
  WalkStats stats;
  json::Value doc =
      json::ParseJson(WalkMetricsJson(MetricsMeta{}, stats, nullptr));
  EXPECT_EQ(doc.Str("backend"), "off");
  EXPECT_EQ(doc.At("counters").At("derived").Num("ipc"), 0.0);
}

TEST(MetricsExportTest, BenchTrajectoryRoundTrips) {
  BenchTrajectory traj("unit_bench");
  traj.set_backend("noop");
  traj.Add("fig1a/flashmob", "YT", 37.5, "ns/step");
  traj.Add("fig1a/knightking", "YT", 210.0, "ns/step");
  CounterSample sample;
  sample.values[0] = 12345;
  traj.AddCounters("fig1a/flashmob/YT", sample);

  json::Value doc = json::ParseJson(traj.ToJson());
  EXPECT_EQ(doc.Str("schema"), "fm-bench-trajectory-v1");
  EXPECT_EQ(doc.Str("bench"), "unit_bench");
  EXPECT_EQ(doc.Str("backend"), "noop");
  ASSERT_EQ(doc.At("points").array.size(), 2u);
  EXPECT_EQ(doc.At("points").array[0].Str("series"), "fig1a/flashmob");
  EXPECT_EQ(doc.At("points").array[0].Str("point"), "YT");
  EXPECT_DOUBLE_EQ(doc.At("points").array[0].Num("value"), 37.5);
  EXPECT_EQ(doc.At("points").array[0].Str("unit"), "ns/step");
  ASSERT_EQ(doc.At("counters").array.size(), 1u);
  EXPECT_EQ(doc.At("counters").array[0].At("sample").Num("cycles"), 12345.0);
}

TEST(MetricsExportTest, WriteReadFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/metrics_roundtrip.json";
  MetricsMeta meta;
  meta.tool = "unit-test";
  ASSERT_TRUE(WriteWalkMetricsJson(path, meta, FabricatedStats(), nullptr));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  std::remove(path.c_str());
  json::Value doc = json::ParseJson(
      text.substr(0, text.find_last_not_of('\n') + 1));
  EXPECT_EQ(doc.Str("schema"), "fm-metrics-v1");
}

TEST(MetricsExportTest, WriteToBadPathReturnsFalse) {
  EXPECT_FALSE(WriteWalkMetricsJson("/nonexistent-dir/x/y.json", MetricsMeta{},
                                    WalkStats{}, nullptr));
  EXPECT_FALSE(BenchTrajectory("b").WriteJson("/nonexistent-dir/x/y.json"));
}

TEST(MetricsExportTest, AggregateVpClassesSharesSumToOne) {
  // Hand-build a two-VP plan via BuildUniform on a tiny graph, then check the
  // class aggregation arithmetic.
  GraphBuilder b(128);
  for (Vid v = 0; v < 128; ++v) {
    b.AddEdge(v, (v + 1) % 128);
    b.AddEdge(v, (v + 2) % 128);
  }
  CsrGraph g = DegreeSort(b.Build()).graph;
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 2, SamplePolicy::kDS);
  WalkStats stats;
  stats.vp_walker_steps.assign(plan.num_vps(), 0);
  for (uint32_t i = 0; i < plan.num_vps(); ++i) {
    stats.vp_walker_steps[i] = 100 * (i + 1);
  }
  auto classes = AggregateVpClasses(&plan, stats);
  ASSERT_FALSE(classes.empty());
  double share = 0;
  uint64_t steps = 0;
  uint32_t vps = 0;
  for (const VpClassMetrics& cls : classes) {
    share += cls.walker_step_share;
    steps += cls.walker_steps;
    vps += cls.vps;
  }
  EXPECT_NEAR(share, 1.0, 1e-9);
  EXPECT_EQ(vps, plan.num_vps());
  uint64_t expected_steps = 0;
  for (uint64_t s : stats.vp_walker_steps) {
    expected_steps += s;
  }
  EXPECT_EQ(steps, expected_steps);
  // Size mismatch (stale stats): defined to return empty, not crash.
  stats.vp_walker_steps.pop_back();
  EXPECT_TRUE(AggregateVpClasses(&plan, stats).empty());
}

}  // namespace
}  // namespace fm
