// WalkerState: episode sizing, buffer rotation, and parallel placement with
// observer notification.
#include "src/core/walker_state.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/core/walk_observer.h"
#include "src/util/thread_pool.h"
#include "tests/test_util.h"

namespace fm {
namespace {

// Records every placement chunk so tests can check the chunks tile [0, w)
// exactly and carry the final row contents.
class RecordingObserver : public WalkObserver {
 public:
  void OnPlacementChunk(Wid begin, std::span<const Vid> positions,
                        uint32_t worker) override {
    MutexLock lock(mu_);
    chunks_.push_back({begin, std::vector<Vid>(positions.begin(), positions.end()),
                       worker});
  }

  struct Chunk {
    Wid begin;
    std::vector<Vid> positions;
    uint32_t worker;
  };

  std::vector<Chunk> sorted_chunks() {
    MutexLock lock(mu_);
    std::vector<Chunk> out = chunks_;
    std::sort(out.begin(), out.end(),
              [](const Chunk& a, const Chunk& b) { return a.begin < b.begin; });
    return out;
  }

 private:
  Mutex mu_;
  std::vector<Chunk> chunks_ FM_GUARDED_BY(mu_);
};

TEST(WalkerStateTest, EpisodeCapacityMatchesPerWalkerBytes) {
  WalkSpec spec;
  spec.num_walkers = 1u << 30;
  spec.steps = 13;  // keep_paths: (13 + 3) * 4 = 64 bytes per walker
  EXPECT_EQ(EpisodeCapacity(spec, 64u << 20, 100), (64u << 20) / 64);

  spec.keep_paths = false;  // rotating rows: 24 bytes per walker
  EXPECT_EQ(EpisodeCapacity(spec, 24u << 20, 100), 1u << 20);

  spec.algorithm = WalkAlgorithm::kNode2Vec;  // + 8 bytes of predecessor state
  EXPECT_EQ(EpisodeCapacity(spec, 32u << 20, 100), 1u << 20);
}

TEST(WalkerStateTest, EpisodeCapacityFloorsAndCaps) {
  WalkSpec spec;
  spec.num_walkers = 500;
  spec.steps = 10;
  // Tiny budget floors at 1024 walkers, then the total bounds it.
  EXPECT_EQ(EpisodeCapacity(spec, 1, 100), 500u);
  spec.num_walkers = 1u << 20;
  EXPECT_EQ(EpisodeCapacity(spec, 1, 100), 1024u);
  // num_walkers == 0 means one walker per vertex.
  spec.num_walkers = 0;
  EXPECT_EQ(EpisodeCapacity(spec, 1u << 30, 300), 300u);
}

TEST(WalkerStateTest, SeededPlacementRoundRobinWithBaseOffset) {
  CsrGraph g = SmallSortedGraph();
  ThreadPool pool(3);
  WalkSpec spec;
  spec.start_vertices = {2, 0, 1};
  spec.num_walkers = 10;
  spec.steps = 1;
  WalkerState state(g, spec, /*walkers=*/10);
  state.Place(&pool, /*episode=*/0, /*base_walker=*/5, {});
  for (Wid j = 0; j < 10; ++j) {
    EXPECT_EQ(state.cur()[j], spec.start_vertices[(5 + j) % 3]) << j;
  }
}

TEST(WalkerStateTest, DegreeProportionalPlacementIsDeterministic) {
  CsrGraph g = StarGraph(32);
  auto sorted = DegreeSort(g);
  ThreadPool pool(4);
  WalkSpec spec;
  spec.num_walkers = 5000;
  spec.steps = 1;
  spec.seed = 77;
  WalkerState a(sorted.graph, spec, 5000);
  WalkerState b(sorted.graph, spec, 5000);
  a.Place(&pool, 0, 0, {});
  b.Place(&pool, 0, 0, {});
  EXPECT_TRUE(std::equal(a.cur(), a.cur() + 5000, b.cur()));
  // The hub (sorted VID 0) owns half the undirected star's edges.
  Wid hub = static_cast<Wid>(std::count(a.cur(), a.cur() + 5000, Vid{0}));
  EXPECT_NEAR(static_cast<double>(hub) / 5000, 0.5, 0.05);
}

TEST(WalkerStateTest, PlacementChunksTileTheEpisode) {
  CsrGraph g = SmallSortedGraph();
  ThreadPool pool(4);
  WalkSpec spec;
  spec.num_walkers = 1000;
  spec.steps = 1;
  WalkerState state(g, spec, 1000);
  RecordingObserver recorder;
  WalkObserver* observers[] = {&recorder};
  state.Place(&pool, 0, 0, observers);
  Wid next = 0;
  for (const auto& chunk : recorder.sorted_chunks()) {
    ASSERT_EQ(chunk.begin, next);
    for (size_t i = 0; i < chunk.positions.size(); ++i) {
      ASSERT_EQ(chunk.positions[i], state.cur()[chunk.begin + i]);
    }
    next += chunk.positions.size();
  }
  EXPECT_EQ(next, 1000u);
}

TEST(WalkerStateTest, TrackedRotationCyclesThreeBuffers) {
  CsrGraph g = SmallSortedGraph();
  WalkSpec spec;
  spec.num_walkers = 100;
  spec.steps = 4;
  spec.keep_paths = false;
  WalkerState state(g, spec, 100);
  Vid* row0 = state.cur();
  Vid* row1 = state.GatherTarget(0);
  EXPECT_NE(row0, row1);
  state.AdvanceTracked(0);
  EXPECT_EQ(state.cur(), row1);
  // Without node2vec only two buffers rotate: the old cur frees up.
  EXPECT_EQ(state.GatherTarget(1), row0);
  state.AdvanceTracked(1);
  EXPECT_EQ(state.cur(), row0);
  EXPECT_EQ(state.GatherTarget(2), row1);
}

TEST(WalkerStateTest, Node2VecTrackedKeepsPredecessorRow) {
  CsrGraph g = SmallSortedGraph();
  WalkSpec spec;
  spec.num_walkers = 50;
  spec.steps = 4;
  spec.keep_paths = false;
  spec.algorithm = WalkAlgorithm::kNode2Vec;
  WalkerState state(g, spec, 50);
  ASSERT_NE(state.sw_prev(), nullptr);
  // First step has no predecessors; AfterScatter(nullptr) must mark that.
  EXPECT_EQ(state.scatter_aux(), nullptr);
  state.AfterScatter(nullptr);
  EXPECT_EQ(state.sw_prev()[0], kInvalidVid);
  Vid* row0 = state.cur();
  state.AdvanceTracked(0);
  // Now the previous row is the predecessor source for the next scatter.
  EXPECT_EQ(state.scatter_aux(), row0);
}

TEST(WalkerStateTest, IdentityFreeAdvanceSwapsInSampledRow) {
  CsrGraph g = SmallSortedGraph();
  WalkSpec spec;
  spec.num_walkers = 64;
  spec.steps = 2;
  spec.keep_paths = false;
  spec.track_identity = false;
  WalkerState state(g, spec, 64);
  for (Wid j = 0; j < 64; ++j) {
    state.sw()[j] = static_cast<Vid>(j % 4);
  }
  state.AdvanceIdentityFree();
  for (Wid j = 0; j < 64; ++j) {
    ASSERT_EQ(state.cur()[j], static_cast<Vid>(j % 4));
  }
}

TEST(WalkerStateTest, TakePathsReturnsPlacedRows) {
  CsrGraph g = SmallSortedGraph();
  ThreadPool pool(2);
  WalkSpec spec;
  spec.start_vertices = {3};
  spec.num_walkers = 20;
  spec.steps = 2;
  WalkerState state(g, spec, 20);
  state.Place(&pool, 0, 0, {});
  PathSet paths = state.TakePaths();
  ASSERT_EQ(paths.num_walkers(), 20u);
  for (Wid j = 0; j < 20; ++j) {
    EXPECT_EQ(paths.At(j, 0), 3u);
  }
}

}  // namespace
}  // namespace fm
