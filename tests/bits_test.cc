#include "src/util/bits.h"

#include <gtest/gtest.h>

namespace fm {
namespace {

TEST(BitsTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ull << 63));
  EXPECT_FALSE(IsPowerOfTwo((1ull << 63) + 1));
}

TEST(BitsTest, NextPrevPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(4), 4u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(PrevPowerOfTwo(1), 1u);
  EXPECT_EQ(PrevPowerOfTwo(5), 4u);
  EXPECT_EQ(PrevPowerOfTwo(8), 8u);
}

TEST(BitsTest, Log2) {
  EXPECT_EQ(Log2Floor(1), 0u);
  EXPECT_EQ(Log2Floor(2), 1u);
  EXPECT_EQ(Log2Floor(3), 1u);
  EXPECT_EQ(Log2Floor(1024), 10u);
  EXPECT_EQ(Log2Ceil(1), 0u);
  EXPECT_EQ(Log2Ceil(2), 1u);
  EXPECT_EQ(Log2Ceil(3), 2u);
  EXPECT_EQ(Log2Ceil(1025), 11u);
}

TEST(BitsTest, CeilDivAndAlign) {
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(CeilDiv(1, 100), 1u);
  EXPECT_EQ(AlignUp(0, 64), 0u);
  EXPECT_EQ(AlignUp(1, 64), 64u);
  EXPECT_EQ(AlignUp(64, 64), 64u);
  EXPECT_EQ(AlignUp(65, 64), 128u);
}

// Property sweep: round trips between the helpers.
class BitsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitsPropertyTest, Consistency) {
  uint64_t x = GetParam();
  EXPECT_LE(PrevPowerOfTwo(x), x);
  EXPECT_GE(NextPowerOfTwo(x), x);
  EXPECT_TRUE(IsPowerOfTwo(PrevPowerOfTwo(x)));
  EXPECT_TRUE(IsPowerOfTwo(NextPowerOfTwo(x)));
  EXPECT_EQ(Log2Floor(PrevPowerOfTwo(x)), Log2Floor(x));
  EXPECT_EQ(uint64_t{1} << Log2Ceil(x), NextPowerOfTwo(x));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitsPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 9, 100, 1023, 1024,
                                           1025, 123456789, 1ull << 40));

}  // namespace
}  // namespace fm
