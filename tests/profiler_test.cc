#include "src/core/profiler.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace fm {
namespace {

TEST(ProfilerTest, MeasuredPointIsPositiveAndFinite) {
  for (SamplePolicy policy : {SamplePolicy::kPS, SamplePolicy::kDS}) {
    double ns = MeasureSamplePointNs(2048, 8, 1.0, policy, 3, 2);
    EXPECT_GT(ns, 0.0);
    EXPECT_LT(ns, 10000.0);
  }
}

TEST(ProfilerTest, ShuffleCostReasonable) {
  double ns = MeasureShuffleNsPerWalker();
  EXPECT_GT(ns, 0.1);
  EXPECT_LT(ns, 1000.0);
}

TEST(ProfilerTest, SaveLoadRoundTrip) {
  auto path = std::filesystem::temp_directory_path() / "fm_profile_test.txt";
  // Build a model via LoadOrCalibrate against a missing file (triggers calibration
  // — keep it cheap by testing only the persistence, using a pre-saved file).
  CalibratedCostModel model =
      CalibratedCostModel::LoadOrCalibrate(path.string(), PaperCacheInfo());
  CalibratedCostModel loaded =
      CalibratedCostModel::LoadOrCalibrate(path.string(), PaperCacheInfo());
  for (SamplePolicy policy : {SamplePolicy::kPS, SamplePolicy::kDS}) {
    for (uint8_t level = 1; level <= 4; ++level) {
      EXPECT_NEAR(model.factor(policy, level), loaded.factor(policy, level),
                  1e-9 + model.factor(policy, level) * 1e-9);
      EXPECT_GT(model.factor(policy, level), 0.0);
    }
  }
  EXPECT_NEAR(model.ShuffleNsPerWalker(), loaded.ShuffleNsPerWalker(), 1e-6);
  std::filesystem::remove(path);
}

TEST(ProfilerTest, CorruptProfileFallsBackToCalibration) {
  auto path = std::filesystem::temp_directory_path() / "fm_profile_corrupt.txt";
  {
    std::ofstream out(path);
    out << "fmprofile-v1\nnot numbers at all\n";
  }
  CalibratedCostModel model =
      CalibratedCostModel::LoadOrCalibrate(path.string(), PaperCacheInfo());
  // Calibration replaced the corrupt file with a valid one.
  CalibratedCostModel again =
      CalibratedCostModel::LoadOrCalibrate(path.string(), PaperCacheInfo());
  EXPECT_GT(model.factor(SamplePolicy::kDS, 1), 0.0);
  EXPECT_NEAR(model.factor(SamplePolicy::kDS, 1),
              again.factor(SamplePolicy::kDS, 1), 1e-6);
  std::filesystem::remove(path);
}

TEST(ProfilerTest, CalibratedModelGivesSaneCosts) {
  // Calibration factors reflect the actual machine, so cross-policy orderings may
  // legitimately shift on exotic hardware; assert only robust structure: positive,
  // finite costs in a plausible ns range, and cache-friendly working sets not
  // worse than DRAM-sized ones by more than noise.
  auto path = std::filesystem::temp_directory_path() / "fm_profile_order.txt";
  CalibratedCostModel model =
      CalibratedCostModel::LoadOrCalibrate(path.string(), PaperCacheInfo());
  for (SamplePolicy policy : {SamplePolicy::kPS, SamplePolicy::kDS}) {
    double small = model.SampleNsPerStep(2048, 16, 1.0, policy);
    double huge = model.SampleNsPerStep(16'000'000, 16, 1.0, policy);
    EXPECT_GT(small, 0.0);
    EXPECT_LT(small, 2000.0);
    EXPECT_LT(small, huge * 5);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace fm
