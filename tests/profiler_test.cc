#include "src/core/profiler.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/core/engine.h"
#include "src/gen/powerlaw_graph.h"

namespace fm {
namespace {

TEST(ProfilerTest, MeasuredPointIsPositiveAndFinite) {
  for (SamplePolicy policy : {SamplePolicy::kPS, SamplePolicy::kDS}) {
    double ns = MeasureSamplePointNs(2048, 8, 1.0, policy, 3, 2);
    EXPECT_GT(ns, 0.0);
    EXPECT_LT(ns, 10000.0);
  }
}

TEST(ProfilerTest, ShuffleCostReasonable) {
  double ns = MeasureShuffleNsPerWalker();
  EXPECT_GT(ns, 0.1);
  EXPECT_LT(ns, 1000.0);
}

TEST(ProfilerTest, SaveLoadRoundTrip) {
  auto path = std::filesystem::temp_directory_path() / "fm_profile_test.txt";
  // Build a model via LoadOrCalibrate against a missing file (triggers calibration
  // — keep it cheap by testing only the persistence, using a pre-saved file).
  CalibratedCostModel model =
      CalibratedCostModel::LoadOrCalibrate(path.string(), PaperCacheInfo());
  CalibratedCostModel loaded =
      CalibratedCostModel::LoadOrCalibrate(path.string(), PaperCacheInfo());
  for (SamplePolicy policy : {SamplePolicy::kPS, SamplePolicy::kDS}) {
    for (uint8_t level = 1; level <= 4; ++level) {
      EXPECT_NEAR(model.factor(policy, level), loaded.factor(policy, level),
                  1e-9 + model.factor(policy, level) * 1e-9);
      EXPECT_GT(model.factor(policy, level), 0.0);
    }
  }
  EXPECT_NEAR(model.ShuffleNsPerWalker(), loaded.ShuffleNsPerWalker(), 1e-6);
  std::filesystem::remove(path);
}

TEST(ProfilerTest, CorruptProfileFallsBackToCalibration) {
  auto path = std::filesystem::temp_directory_path() / "fm_profile_corrupt.txt";
  {
    std::ofstream out(path);
    out << "fmprofile-v1\nnot numbers at all\n";
  }
  CalibratedCostModel model =
      CalibratedCostModel::LoadOrCalibrate(path.string(), PaperCacheInfo());
  // Calibration replaced the corrupt file with a valid one.
  CalibratedCostModel again =
      CalibratedCostModel::LoadOrCalibrate(path.string(), PaperCacheInfo());
  EXPECT_GT(model.factor(SamplePolicy::kDS, 1), 0.0);
  EXPECT_NEAR(model.factor(SamplePolicy::kDS, 1),
              again.factor(SamplePolicy::kDS, 1), 1e-6);
  std::filesystem::remove(path);
}

TEST(ProfilerTest, CalibratedModelGivesSaneCosts) {
  // Calibration factors reflect the actual machine, so cross-policy orderings may
  // legitimately shift on exotic hardware; assert only robust structure: positive,
  // finite costs in a plausible ns range, and cache-friendly working sets not
  // worse than DRAM-sized ones by more than noise.
  auto path = std::filesystem::temp_directory_path() / "fm_profile_order.txt";
  CalibratedCostModel model =
      CalibratedCostModel::LoadOrCalibrate(path.string(), PaperCacheInfo());
  for (SamplePolicy policy : {SamplePolicy::kPS, SamplePolicy::kDS}) {
    double small = model.SampleNsPerStep(2048, 16, 1.0, policy);
    double huge = model.SampleNsPerStep(16'000'000, 16, 1.0, policy);
    EXPECT_GT(small, 0.0);
    EXPECT_LT(small, 2000.0);
    EXPECT_LT(small, huge * 5);
  }
  std::filesystem::remove(path);
}

TEST(ProfilerTest, EngineRunRecordsPerStageCounters) {
  PowerLawConfig config;
  config.degrees.num_vertices = 2000;
  config.degrees.avg_degree = 8;
  config.degrees.alpha = 0.8;
  config.degrees.max_degree = 250;
  config.seed = 3;
  CsrGraph g = GeneratePowerLawGraph(config);

  EngineOptions options;
  options.record_step_stats = true;
  options.collect_counters = true;
  FlashMobEngine engine(g, options);
  WalkSpec spec;
  spec.num_walkers = 4000;
  spec.steps = 6;
  spec.seed = 9;
  WalkResult result = engine.Run(spec);

  // The backend is resolved at run time: "perf" where perf_event_open works,
  // "noop" where it is unavailable — never empty or "off" once counter
  // collection was requested.
  EXPECT_TRUE(result.stats.perf_backend == std::string("perf") ||
              result.stats.perf_backend == std::string("noop"));
  ASSERT_EQ(result.stats.step_records.size(), 6u);
  for (const StepStageRecord& rec : result.stats.step_records) {
    // Counter samples exist per stage; values are zero under the noop backend
    // but the structure (and JSON schema) is identical either way.
    if (result.stats.perf_backend == std::string("noop")) {
      EXPECT_TRUE(rec.sample_counters.AllZero());
    }
    EXPECT_GE(rec.scatter_counters.cycles(), 0u);
    EXPECT_GE(rec.gather_counters.cycles(), 0u);
  }
  // Aggregate totals equal the per-step sums, stage by stage.
  CounterSample scatter_sum;
  for (const StepStageRecord& rec : result.stats.step_records) {
    scatter_sum += rec.scatter_counters;
  }
  EXPECT_EQ(result.stats.counters.scatter.cycles(), scatter_sum.cycles());
  EXPECT_EQ(result.stats.counters.scatter.llc_misses(),
            scatter_sum.llc_misses());
}

TEST(ProfilerTest, CountersOffByDefault) {
  PowerLawConfig config;
  config.degrees.num_vertices = 500;
  config.degrees.avg_degree = 6;
  config.degrees.alpha = 0.8;
  config.degrees.max_degree = 60;
  config.seed = 4;
  CsrGraph g = GeneratePowerLawGraph(config);

  EngineOptions options;
  options.record_step_stats = true;
  FlashMobEngine engine(g, options);
  WalkSpec spec;
  spec.num_walkers = 1000;
  spec.steps = 3;
  WalkResult result = engine.Run(spec);
  // Empty backend string = collection never requested (metrics layer reports
  // this as "off" in JSON).
  EXPECT_TRUE(result.stats.perf_backend.empty());
  EXPECT_TRUE(result.stats.counters.Total().AllZero());
}

}  // namespace
}  // namespace fm
