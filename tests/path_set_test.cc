#include "src/core/path_set.h"

#include <gtest/gtest.h>

#include <vector>

#include "tests/test_util.h"

namespace fm {
namespace {

PathSet MakePaths() {
  // 2 walkers, 3 steps. Walker 0: 0->1->2->3; walker 1: 3->0->1->kInvalid.
  PathSet paths(2, 3);
  std::vector<std::vector<Vid>> rows{{0, 3}, {1, 0}, {2, 1}, {3, kInvalidVid}};
  for (uint32_t s = 0; s <= 3; ++s) {
    paths.Row(s) = rows[s];
  }
  return paths;
}

TEST(PathSetTest, TransposeIntoPaths) {
  PathSet paths = MakePaths();
  EXPECT_EQ(paths.Path(0), (std::vector<Vid>{0, 1, 2, 3}));
  EXPECT_EQ(paths.Path(1), (std::vector<Vid>{3, 0, 1}));  // stops at termination
}

TEST(PathSetTest, VisitCounts) {
  PathSet paths = MakePaths();
  auto counts = paths.VisitCounts(4);
  EXPECT_EQ(counts, (std::vector<uint64_t>{2, 2, 1, 2}));
}

TEST(PathSetTest, StreamEdgesSkipsTerminated) {
  PathSet paths = MakePaths();
  std::vector<std::pair<Vid, Vid>> edges;
  paths.StreamEdges([&](Vid a, Vid b) { edges.push_back({a, b}); });
  std::vector<std::pair<Vid, Vid>> expected{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 1}};
  EXPECT_EQ(edges, expected);
}

TEST(PathSetTest, ValidAgainstGraph) {
  // SmallGraph edges: 0->{1,2,3}, 1->{0,2}, 2->{3}, 3->{0}.
  CsrGraph g = SmallGraph();
  PathSet ok(1, 2);
  ok.Row(0) = {0};
  ok.Row(1) = {2};
  ok.Row(2) = {3};
  EXPECT_TRUE(ok.ValidAgainst(g));

  PathSet bad(1, 1);
  bad.Row(0) = {2};
  bad.Row(1) = {1};  // 2->1 is not an edge
  EXPECT_FALSE(bad.ValidAgainst(g));
}

TEST(PathSetTest, ValidAllowsDeadEndStay) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  CsrGraph g = b.Build();
  PathSet paths(1, 2);
  paths.Row(0) = {0};
  paths.Row(1) = {1};
  paths.Row(2) = {1};  // stuck at dead end: allowed
  EXPECT_TRUE(paths.ValidAgainst(g));
  paths.Row(2) = {0};  // teleporting from dead end: not allowed
  EXPECT_FALSE(paths.ValidAgainst(g));
}

TEST(PathSetTest, AppendMergesEpisodes) {
  PathSet a = MakePaths();
  PathSet b = MakePaths();
  a.Append(std::move(b));
  EXPECT_EQ(a.num_walkers(), 4u);
  EXPECT_EQ(a.steps(), 3u);
  EXPECT_EQ(a.Path(2), (std::vector<Vid>{0, 1, 2, 3}));
  // Appending into an empty set adopts the other's shape.
  PathSet empty;
  empty.Append(MakePaths());
  EXPECT_EQ(empty.num_walkers(), 2u);
}

TEST(PathSetTest, EmptyPathSet) {
  PathSet paths;
  EXPECT_EQ(paths.num_walkers(), 0u);
  auto counts = paths.VisitCounts(5);
  EXPECT_EQ(counts, std::vector<uint64_t>(5, 0));
}

}  // namespace
}  // namespace fm
