struct R { unsigned long* visit_counts; };
unsigned long good(const R& r) { return r.visit_counts[0]; }
