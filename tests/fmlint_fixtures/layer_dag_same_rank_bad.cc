#include "src/sampling/alias_table.h"

namespace fm {
void SameBandEdge() {}
}  // namespace fm
