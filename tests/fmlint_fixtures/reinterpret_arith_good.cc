#include <cstdint>
#include <cstring>
uint32_t good(const char* base, long off) {
  uint32_t v;
  std::memcpy(&v, base + off, sizeof(v));
  return v;
}
