#include "src/util/sync.h"
fm::Mutex mu;
void bad() {
  mu.Lock();
  mu.Unlock();
}
