#include "src/util/perf_counters.h"
int good();
