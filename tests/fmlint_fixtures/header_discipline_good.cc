#include "src/graph/internal/packing.h"
#include "src/util/types.h"

namespace fm {
void OwnInternalIsFine() {}
}  // namespace fm
