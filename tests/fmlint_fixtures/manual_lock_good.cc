#include "src/util/sync.h"
fm::Mutex mu;
void good() { fm::MutexLock lock(mu); }
