#ifndef SRC_ACYCLIC_B_H_
#define SRC_ACYCLIC_B_H_
int f();
#endif  // SRC_ACYCLIC_B_H_
