namespace fm {
namespace alt {
// A second ReadCount definition: the simple-name call in taint_helper_b.cc
// becomes ambiguous, and the analysis deliberately under-approximates
// (no provenance) rather than guess.
unsigned long long ReadCount(const char* base) {
  return 7;
}
}  // namespace alt
}  // namespace fm
