namespace fm {
struct XorShiftRng {
  explicit XorShiftRng(unsigned long long seed);
  unsigned long long Next();
};

// A pure passthrough helper: the interprocedural summary must propagate
// WalkerSeed provenance through Remix into the construction below.
unsigned long long Remix(unsigned long long seed) {
  return SplitMix64(seed);
}

FM_HOT_PATH unsigned long long StepWalker(unsigned long long chunk_seed,
                                          unsigned long long walker_index) {
  XorShiftRng rng(Remix(WalkerSeed(chunk_seed, walker_index)));
  return rng.Next();
}
}  // namespace fm
