// fmlint:disable(raw-mutex)
int clean();
