#include <atomic>

#include "src/util/sync.h"

namespace fm {
std::atomic<long> g_steps{0};

FM_HOT_PATH void CountStep(long delta) {
  g_steps.fetch_add(delta);
}
}  // namespace fm
