#include <atomic>

namespace fm {
std::atomic<long> g_cell{0};
std::atomic<long> g_total{0};

void Bump(long delta) {
  // relaxed: single-writer shard cell; the fold runs after quiesce.
  const long cur = g_cell.load(std::memory_order_relaxed);
  // relaxed: same single-writer cell as the load above.
  g_cell.store(cur + delta, std::memory_order_relaxed);
  // relaxed: commutative accumulation; order does not matter.
  g_total.fetch_add(delta, std::memory_order_relaxed);
}
}  // namespace fm
