#include <atomic>

namespace fm {
struct Node {
  int value;
};

std::atomic<Node*> g_head{nullptr};
std::atomic<unsigned long long> g_count{0};
Node g_pool[16];

void Publish(int v) {
  Node* n = &g_pool[0];
  n->value = v;
  // relaxed: fast publish.
  g_head.store(n, std::memory_order_relaxed);
}

int Consume() {
  // relaxed: fast read.
  Node* n = g_head.load(std::memory_order_relaxed);
  return n->value;
}

void Count() {
  // relaxed: counter bump.
  g_count.store(1, std::memory_order_relaxed);
}
}  // namespace fm
