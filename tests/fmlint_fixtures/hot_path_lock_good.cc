#include "src/util/sync.h"

namespace fm {
class Counter {
 public:
  void Snapshot() {
    MutexLock guard(mu_);
    snap_ = value_;
  }
  FM_HOT_PATH void Bump() { ++value_; }

 private:
  Mutex mu_;
  long value_ = 0;
  long snap_ = 0;
};
}  // namespace fm
