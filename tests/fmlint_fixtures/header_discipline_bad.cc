#include "src/core/walk_engine.cc"
#include "src/fm.h"
#include "src/graph/internal/packing.h"

namespace fm {
void BreaksDiscipline() {}
}  // namespace fm
