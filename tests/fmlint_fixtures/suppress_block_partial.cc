// fmlint:disable(raw-mutex)
#include <mutex>
std::mutex covered;
// fmlint:enable(raw-mutex)
std::mutex uncovered;
