namespace fm {
class AltSink {
 public:
  void Emit(int) {}
};
}  // namespace fm
