#include <mutex>
std::mutex mu;  // fmlint:allow(raw-mutex) fixture: legacy site pending migration
