#include <cstdint>
uint32_t bad(const char* base, long off) {
  return *reinterpret_cast<const uint32_t*>(base + off);
}
