#include <vector>

namespace fm {
void Consume(const char* base) {
  unsigned long long n = ReadCount(base);
  std::vector<int> items(n);
}
}  // namespace fm
