#include "src/util/trace.h"
unsigned long good() { return fm::TraceNowNs(); }
