struct R { unsigned long* visit_counts; };
void bad(R& r) { r.visit_counts[0] += 1; }
