#include <cstdio>

namespace fm {
inline void Report(int x) {
  printf("%d\n", x);
}

FM_HOT_PATH void Kernel(const int* in, int n) {
  for (int i = 0; i < n; ++i) {
    Report(in[i]);
  }
}
}  // namespace fm
