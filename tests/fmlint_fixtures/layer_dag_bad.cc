#include "src/core/shuffle.h"

namespace fm {
void UsesUpperLayer() {}
}  // namespace fm
