namespace fm {
FM_HOT_PATH int Spread(int x) {
  return x % 7;
}
}  // namespace fm
