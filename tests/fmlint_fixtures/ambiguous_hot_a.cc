namespace fm {
FM_HOT_PATH void Kernel(const int* in, int n) {
  for (int i = 0; i < n; ++i) {
    Emit(in[i]);
  }
}
}  // namespace fm
