namespace fm {
struct SplitRng {
  void Seed(unsigned long long s);
};

SplitRng g_rngs[64];

// Reseeding by ring slot ties the stream to buffer placement, not to the
// walker; two runs with different ring occupancy diverge.
FM_HOT_PATH void Refill(unsigned long long chunk_seed, unsigned int slot) {
  g_rngs[slot].Seed(DeriveSeed(chunk_seed, slot));
}
}  // namespace fm
