#include <vector>

namespace fm {
FM_HOT_PATH void Fill(std::vector<int>& out, int n) {
  std::vector<int> tmp(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(i);
  }
}
}  // namespace fm
