#ifndef SRC_UTIL_FXLOCK3_H_
#define SRC_UTIL_FXLOCK3_H_
#include "src/util/sync.h"
namespace fm {
class Ledger {
 public:
  void Credit() {
    MutexLock in(mu_in_);
    MutexLock out(mu_out_);
  }
  void Debit() {
    MutexLock in(mu_in_);
    Flush();
  }
  void Flush() {
    MutexLock out(mu_out_);
  }

 private:
  Mutex mu_in_;
  Mutex mu_out_;
};
}  // namespace fm
#endif  // SRC_UTIL_FXLOCK3_H_
