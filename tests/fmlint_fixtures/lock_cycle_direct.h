#ifndef SRC_UTIL_FXLOCK_H_
#define SRC_UTIL_FXLOCK_H_
#include "src/util/sync.h"
namespace fm {
class Exchange {
 public:
  void Deposit() {
    MutexLock in(mu_in_);
    MutexLock out(mu_out_);
    ++moved_;
  }
  void Withdraw() {
    MutexLock out(mu_out_);
    MutexLock in(mu_in_);
    --moved_;
  }

 private:
  Mutex mu_in_;
  Mutex mu_out_;
  long moved_ = 0;
};
}  // namespace fm
#endif  // SRC_UTIL_FXLOCK_H_
