namespace fm {
// Raw string contents are data, not code: nothing in here may trip keyword
// rules even though the text names banned constructs. The embedded quotes are
// the regression: a lexer without raw-string support toggles out of the
// string at the inner `"` and reads the banned names as code.
const char* Doc() {
  return R"doc(prose with a "quoted" bit, then
std::mutex and std::mt19937 and std::chrono::steady_clock::now()
)doc";
}

const char* Empty() { return R"()"; }
}  // namespace fm
