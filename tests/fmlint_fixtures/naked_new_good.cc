#include <memory>
std::unique_ptr<int> good() { return std::make_unique<int>(3); }
