#include "src/util/rng.h"
uint64_t good(fm::XorShiftRng& rng) { return rng.Next(); }
