#include "src/fm.h"

namespace fm {
void ExternalConsumer() {}
}  // namespace fm
