#ifndef SRC_FIXTURE_GOOD_H_
#define SRC_FIXTURE_GOOD_H_
int f();
#endif  // SRC_FIXTURE_GOOD_H_
