#include <atomic>
std::atomic<int> x;
// relaxed: single-writer counter; readers tolerate staleness.
int good_above() { return x.load(std::memory_order_relaxed); }
int good_same() { return x.load(std::memory_order_relaxed); }  // relaxed: see above
// A wrapped justification, ending lines away from the load itself:
// relaxed: the join handshake provides the ordering edge and the count
// is only read after it.
int good_block() { return x.load(std::memory_order_relaxed); }
