#ifndef SRC_UTIL_FXLOCK2_H_
#define SRC_UTIL_FXLOCK2_H_
#include "src/util/sync.h"
namespace fm {
class Queue {
 public:
  void Produce() {
    MutexLock lock(mu_front_);
    Drain();
  }
  void Consume() {
    MutexLock lock(mu_rear_);
    MutexLock lock2(mu_front_);
  }
  void Drain() {
    MutexLock lock(mu_rear_);
  }

 private:
  Mutex mu_front_;
  Mutex mu_rear_;
};
}  // namespace fm
#endif  // SRC_UTIL_FXLOCK2_H_
