#ifndef SRC_ACYCLIC_A_H_
#define SRC_ACYCLIC_A_H_
#include "src/acyclic_b.h"
#endif  // SRC_ACYCLIC_A_H_
