int clean();  // fmlint:allow(raw-mutex)
