#include <atomic>

#include "src/util/sync.h"

namespace fm {
std::atomic<long> g_shard{0};

// Single-writer shard: a relaxed store/load pair on a cell only this thread
// writes is the sanctioned hot-path metric update.
FM_HOT_PATH void CountStep(long delta) {
  // relaxed: single-writer shard cell; folds tolerate staleness.
  const long cur = g_shard.load(std::memory_order_relaxed);
  // relaxed: same single-writer shard cell as the load above.
  g_shard.store(cur + delta, std::memory_order_relaxed);
}
}  // namespace fm
