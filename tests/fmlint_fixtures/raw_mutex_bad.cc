#include <condition_variable>
#include <mutex>
std::mutex mu;
std::condition_variable cv;
void bad() {
  std::lock_guard<std::mutex> lock(mu);
}
