#include "src/cachesim/mem_hook.h"
#include "src/graph/csr_graph.h"
#include "src/util/types.h"

namespace fm {
void FollowsManifest() {}
}  // namespace fm
