namespace fm {
struct XorShiftRng {
  explicit XorShiftRng(unsigned long long seed);
  unsigned long long Next();
};

// The PR 3 placement-bug shape: the stream id depends on how many threads the
// pool happened to get, so walks change with machine / pool size.
FM_HOT_PATH unsigned long long StepWalker(unsigned long long base_seed,
                                          unsigned int num_threads) {
  XorShiftRng rng(DeriveSeed(base_seed, num_threads));
  return rng.Next();
}
}  // namespace fm
