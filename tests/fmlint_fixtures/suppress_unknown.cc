int clean();  // fmlint:allow(no-such-rule)
