#include <atomic>
std::atomic<int> x;
int bad() { return x.load(std::memory_order_relaxed); }
