#include <chrono>
long bad() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
