#include <vector>

namespace fm {
unsigned long long LoadScalar(const char* p);

void ReadBlock(const char* base, unsigned long long file_size) {
  unsigned long long n = LoadScalar(base);
  if (n > file_size) {
    return;
  }
  // Sanitized: the bound comparison above clears the taint on both branches.
  std::vector<int> items(n);

  unsigned long long hint = LoadScalar(base + 8);
  // taint: capacity hint only; a huge value wastes one reserve call but
  // cannot index or overflow anything.
  items.reserve(hint);
}
}  // namespace fm
