// fmlint:enable(raw-mutex)
int clean();
