#ifndef SRC_CYCLE_A_H_
#define SRC_CYCLE_A_H_
#include "src/cycle_b.h"
#endif  // SRC_CYCLE_A_H_
