#include <sys/syscall.h>
#include <unistd.h>
long bad(struct perf_event_attr* attr) {
  return syscall(__NR_perf_event_open, attr, 0, -1, -1, 0);
}
