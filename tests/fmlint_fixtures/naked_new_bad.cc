int* bad() { return new int(3); }
