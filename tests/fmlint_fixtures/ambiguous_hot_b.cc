#include <cstdio>

namespace fm {
void Emit(int x) {
  printf("%d\n", x);
}
}  // namespace fm
