#include <cstdio>

namespace fm {
inline void Report(int x) {
  printf("%d\n", x);
}

FM_HOT_PATH int Kernel(const int* in, int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += in[i];
  }
  return acc;
}

// The hot closure does not reach Report from here: not a hot function.
void Summarize(int acc) { Report(acc); }
}  // namespace fm
