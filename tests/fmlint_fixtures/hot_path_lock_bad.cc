#include "src/util/sync.h"

namespace fm {
class Counter {
 public:
  FM_HOT_PATH void Bump() {
    MutexLock guard(mu_);
    ++value_;
  }

 private:
  Mutex mu_;
  long value_ = 0;
};
}  // namespace fm
