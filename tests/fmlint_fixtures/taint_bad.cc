#include <vector>

namespace fm {
unsigned long long LoadScalar(const char* p);

// A header-derived count used raw: the allocation, the loop bound, and the
// index are all attacker-controlled by a corrupt file.
void ReadBlock(const char* base) {
  unsigned long long n = LoadScalar(base);
  std::vector<int> items(n);
  for (unsigned long long i = 0; i < n; ++i) {
    items[i] = 0;
  }
  items[n - 1] = 1;
}
}  // namespace fm
