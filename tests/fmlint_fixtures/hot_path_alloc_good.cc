#include <vector>

namespace fm {
FM_HOT_PATH void Fill(int* out, int n) {
  for (int i = 0; i < n; ++i) {
    out[i] = i;
  }
}

// Allocation outside the hot closure is fine.
void Setup(std::vector<int>& buf, int n) {
  buf.resize(static_cast<size_t>(n));
}
}  // namespace fm
