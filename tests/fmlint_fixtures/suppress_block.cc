// fmlint:disable(raw-mutex) fixture: this block is intentionally legacy
#include <mutex>
std::mutex mu_a;
std::mutex mu_b;
// fmlint:enable(raw-mutex)
