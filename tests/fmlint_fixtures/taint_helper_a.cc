namespace fm {
namespace io {
unsigned long long LoadScalar(const char* p);

// Taint source behind a helper: callers in other TUs only see the summary.
unsigned long long ReadCount(const char* base) {
  return LoadScalar(base);
}
}  // namespace io
}  // namespace fm
