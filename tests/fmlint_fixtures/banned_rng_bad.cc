#include <random>
int bad() {
  std::mt19937 gen(42);
  return rand() % 7;
}
