#ifndef WRONG_GUARD_H_
#define WRONG_GUARD_H_
int f();
#endif  // WRONG_GUARD_H_
