#ifndef SRC_UTIL_FXLOCK4_H_
#define SRC_UTIL_FXLOCK4_H_
#include "src/util/sync.h"
namespace fm {
class Swap {
 public:
  void Forward() {
    MutexLock a(mu_a_);
    MutexLock b(mu_b_);  // fmlint:allow(lock-order) -- upgrade path, audited
  }
  void Backward() {
    MutexLock b(mu_b_);
    MutexLock a(mu_a_);
  }

 private:
  Mutex mu_a_;
  Mutex mu_b_;
};
}  // namespace fm
#endif  // SRC_UTIL_FXLOCK4_H_
