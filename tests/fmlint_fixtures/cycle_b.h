#ifndef SRC_CYCLE_B_H_
#define SRC_CYCLE_B_H_
#include "src/cycle_a.h"
#endif  // SRC_CYCLE_B_H_
