namespace fm {
FM_HOT_PATH int Half(int x) {
  // div: power-of-two halving; the compiler folds this to a shift.
  int h = x / 2;
  return h + x % 8;  // div: power-of-two remainder folds to a mask
}
}  // namespace fm
