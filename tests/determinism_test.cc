// Cross-thread-count determinism: the engine's per-VP RNG streams are derived
// from (seed, episode, step, vp) — never from thread identity — so the same
// seed must produce bit-identical walks no matter how many workers execute
// them. This pins down the property that makes perf runs comparable across
// machines and makes any data race that corrupts walker state visible as a
// hash mismatch (the TSan suite's semantic complement).
//
// The partition plan itself depends on PartitionPlan::Config::threads_sharing_l3
// (the engine defaults it to the pool's thread count), and a different plan
// legitimately reorders RNG streams. The test therefore pins the config —
// matching how a reproducible production run would pin its plan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/core/engine.h"
#include "src/gen/uniform_degree.h"
#include "src/graph/degree_sort.h"
#include "src/graph/graph_builder.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace fm {
namespace {

// FNV-1a over every stored walker position, row-major: any reordering or
// corruption of any path changes the hash.
uint64_t PathSetHash(const PathSet& paths) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(paths.num_walkers());
  mix(paths.steps());
  for (uint32_t step = 0; step <= paths.steps(); ++step) {
    for (Wid w = 0; w < paths.num_walkers(); ++w) {
      mix(paths.At(w, step));
    }
  }
  return h;
}

// Skewed-degree deterministic graph, large enough for several VPs.
CsrGraph BuildGraph() {
  const Vid n = 2048;
  GraphBuilder b(n);
  XorShiftRng rng(99);
  for (Vid v = 0; v < n; ++v) {
    Degree deg = 1 + static_cast<Degree>(rng.NextBounded(1 + v % 16));
    for (Degree i = 0; i < deg; ++i) {
      Vid t = static_cast<Vid>(rng.NextBounded(n));
      if (t == v) {
        t = (t + 1) % n;
      }
      b.AddEdge(v, t);
    }
  }
  return DegreeSort(b.Build()).graph;
}

struct RunDigest {
  uint64_t path_hash = 0;
  std::vector<uint64_t> counts;
};

RunDigest RunWith(const CsrGraph& g, uint32_t threads, WalkAlgorithm algorithm,
                  double stop_probability,
                  ShuffleBackendKind backend = ShuffleBackendKind::kAuto,
                  uint32_t interleave_depth = kInterleaveDepthAuto) {
  ThreadPool pool(threads);
  EngineOptions options;
  options.pool = &pool;
  options.shuffle_backend = backend;
  options.interleave_depth = interleave_depth;
  // Pin the plan config: threads_sharing_l3 feeds the planner's cache-level
  // classification, and the engine would otherwise default it to the pool
  // size, changing the plan (and hence the RNG stream layout) across runs.
  options.plan.threads_sharing_l3 = 4;
  WalkSpec spec;
  spec.algorithm = algorithm;
  spec.steps = 12;
  spec.num_walkers = 4 * g.num_vertices();
  spec.seed = 7;
  spec.stop_probability = stop_probability;
  spec.keep_paths = true;
  if (algorithm == WalkAlgorithm::kNode2Vec) {
    spec.node2vec = {0.5, 2.0};
  }
  FlashMobEngine engine(g, options);
  WalkResult result = engine.Run(spec);
  RunDigest digest;
  digest.path_hash = PathSetHash(result.paths);
  digest.counts = std::move(result.visit_counts);
  return digest;
}

class DeterminismTest
    : public ::testing::TestWithParam<std::tuple<WalkAlgorithm, double>> {};

TEST_P(DeterminismTest, SameSeedSameWalksAcrossThreadCounts) {
  auto [algorithm, stop] = GetParam();
  CsrGraph g = BuildGraph();
  uint32_t hw = std::max(2u, std::thread::hardware_concurrency());
  std::vector<uint32_t> thread_counts{1, 4, hw};
  RunDigest reference = RunWith(g, thread_counts[0], algorithm, stop);
  ASSERT_NE(reference.path_hash, 0u);
  for (size_t i = 1; i < thread_counts.size(); ++i) {
    RunDigest digest = RunWith(g, thread_counts[i], algorithm, stop);
    EXPECT_EQ(digest.path_hash, reference.path_hash)
        << "PathSet diverged at threads=" << thread_counts[i];
    EXPECT_EQ(digest.counts, reference.counts)
        << "visit counts diverged at threads=" << thread_counts[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndStops, DeterminismTest,
    ::testing::Combine(::testing::Values(WalkAlgorithm::kDeepWalk,
                                         WalkAlgorithm::kNode2Vec),
                       ::testing::Values(0.0, 0.15)),
    [](const ::testing::TestParamInfo<DeterminismTest::ParamType>& info) {
      const char* algo = std::get<0>(info.param) == WalkAlgorithm::kDeepWalk
                             ? "deepwalk"
                             : "node2vec";
      return std::string(algo) +
             (std::get<1>(info.param) == 0.0 ? "_stop0" : "_stop15");
    });

TEST_P(DeterminismTest, BinnedShuffleMatchesDirectAcrossThreadCounts) {
  // The shuffle backend must be invisible to walk content: the binned path
  // reproduces the direct SW layout bit-for-bit, so paths and visit counts —
  // node2vec's predecessor stream included — must hash identically across
  // backends at every thread count.
  auto [algorithm, stop] = GetParam();
  CsrGraph g = BuildGraph();
  uint32_t hw = std::max(2u, std::thread::hardware_concurrency());
  RunDigest reference =
      RunWith(g, 1, algorithm, stop, ShuffleBackendKind::kDirect);
  ASSERT_NE(reference.path_hash, 0u);
  for (uint32_t threads : {1u, 4u, hw}) {
    RunDigest binned =
        RunWith(g, threads, algorithm, stop, ShuffleBackendKind::kBinned);
    EXPECT_EQ(binned.path_hash, reference.path_hash)
        << "binned PathSet diverged from direct at threads=" << threads;
    EXPECT_EQ(binned.counts, reference.counts)
        << "binned visit counts diverged from direct at threads=" << threads;
  }
}

TEST_P(DeterminismTest, InterleaveDepthInvisibleAcrossThreadsAndBackends) {
  // The ring executor must be a pure scheduling change: the same walk, bit
  // for bit, at every interleave depth — including when combined with the
  // other two execution axes (thread count, shuffle backend). Every walker
  // draws from a stream indexed by its chunk position, so depth only changes
  // *when* a draw happens, never *which* stream it comes from.
  auto [algorithm, stop] = GetParam();
  CsrGraph g = BuildGraph();
  uint32_t hw = std::max(2u, std::thread::hardware_concurrency());
  RunDigest reference =
      RunWith(g, 1, algorithm, stop, ShuffleBackendKind::kDirect, 1);
  ASSERT_NE(reference.path_hash, 0u);
  for (uint32_t depth : {4u, 8u, 16u}) {
    for (uint32_t threads : {1u, hw}) {
      for (ShuffleBackendKind backend :
           {ShuffleBackendKind::kDirect, ShuffleBackendKind::kBinned}) {
        RunDigest digest = RunWith(g, threads, algorithm, stop, backend, depth);
        EXPECT_EQ(digest.path_hash, reference.path_hash)
            << "PathSet diverged at depth=" << depth << " threads=" << threads
            << " backend=" << (backend == ShuffleBackendKind::kDirect
                                   ? "direct"
                                   : "binned");
        EXPECT_EQ(digest.counts, reference.counts)
            << "visit counts diverged at depth=" << depth
            << " threads=" << threads;
      }
    }
  }
}

TEST(DeterminismTest, WalkerIndexedSeedingSurvivesSlotChurn) {
  // Regression for the RNG-indexing invariant: with a high stop probability,
  // walkers die mid-ring constantly and slot assignment at depth 16 bears no
  // resemblance to walker order. If streams were seeded by ring slot (the
  // tempting bug), the reuse pattern would scramble draws and these hashes
  // would diverge; walker-indexed seeding keeps them bit-identical.
  CsrGraph g = BuildGraph();
  RunDigest sequential = RunWith(g, 2, WalkAlgorithm::kDeepWalk, 0.5,
                                 ShuffleBackendKind::kAuto, 1);
  RunDigest ring = RunWith(g, 2, WalkAlgorithm::kDeepWalk, 0.5,
                           ShuffleBackendKind::kAuto, 16);
  EXPECT_EQ(ring.path_hash, sequential.path_hash);
  EXPECT_EQ(ring.counts, sequential.counts);
}

TEST(DeterminismTest, AutoDepthMatchesItsResolvedPin) {
  // "auto" is only a depth picker: whatever it resolves to must already be in
  // the bit-identical family, so auto == depth-1 == any pinned depth.
  CsrGraph g = BuildGraph();
  RunDigest pinned = RunWith(g, 3, WalkAlgorithm::kDeepWalk, 0.1,
                             ShuffleBackendKind::kAuto, 1);
  RunDigest autod = RunWith(g, 3, WalkAlgorithm::kDeepWalk, 0.1,
                            ShuffleBackendKind::kAuto, kInterleaveDepthAuto);
  EXPECT_EQ(autod.path_hash, pinned.path_hash);
}

TEST(DeterminismTest, RepeatedRunsWithSamePoolAreIdentical) {
  // Same engine, same spec, run twice: episode state (presample cursors, RNG
  // derivation) must reset completely between runs.
  CsrGraph g = BuildGraph();
  ThreadPool pool(3);
  EngineOptions options;
  options.pool = &pool;
  options.plan.threads_sharing_l3 = 4;
  WalkSpec spec;
  spec.steps = 10;
  spec.num_walkers = 2 * g.num_vertices();
  spec.seed = 5;
  FlashMobEngine engine(g, options);
  uint64_t first = PathSetHash(engine.Run(spec).paths);
  uint64_t second = PathSetHash(engine.Run(spec).paths);
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Sanity check that the hash is actually sensitive to walk content.
  CsrGraph g = BuildGraph();
  ThreadPool pool(2);
  EngineOptions options;
  options.pool = &pool;
  options.plan.threads_sharing_l3 = 4;
  WalkSpec spec;
  spec.steps = 10;
  spec.num_walkers = 2 * g.num_vertices();
  FlashMobEngine engine(g, options);
  spec.seed = 1;
  uint64_t a = PathSetHash(engine.Run(spec).paths);
  spec.seed = 2;
  uint64_t b = PathSetHash(engine.Run(spec).paths);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace fm
