#include "src/core/mckp.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace fm {
namespace {

TEST(MckpTest, EmptyProblem) {
  MckpSolution s = SolveMckp({}, 10);
  EXPECT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.total_cost, 0.0);
}

TEST(MckpTest, SingleClassPicksCheapestFeasible) {
  std::vector<std::vector<MckpItem>> classes{{{5.0, 8}, {3.0, 20}, {9.0, 1}}};
  MckpSolution s = SolveMckp(classes, 10);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.chosen[0], 0u);  // cost 3 item is too heavy; cost 5/weight 8 wins
  EXPECT_DOUBLE_EQ(s.total_cost, 5.0);
}

TEST(MckpTest, InfeasibleWhenEveryItemTooHeavy) {
  std::vector<std::vector<MckpItem>> classes{{{1.0, 5}}, {{1.0, 6}}};
  MckpSolution s = SolveMckp(classes, 10);
  EXPECT_FALSE(s.feasible);
}

TEST(MckpTest, TightWeightLimit) {
  std::vector<std::vector<MckpItem>> classes{{{1.0, 5}}, {{2.0, 5}}};
  MckpSolution s = SolveMckp(classes, 10);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.total_weight, 10u);
  EXPECT_DOUBLE_EQ(s.total_cost, 3.0);
}

TEST(MckpTest, TradesCostAcrossClasses) {
  // Class 0: cheap-heavy vs costly-light; class 1 likewise. Budget forces exactly
  // one heavy pick; DP must put the heavy pick where it saves the most.
  std::vector<std::vector<MckpItem>> classes{
      {{0.0, 8}, {10.0, 2}},  // saving 10 by going heavy
      {{0.0, 8}, {1.0, 2}},   // saving 1 by going heavy
  };
  MckpSolution s = SolveMckp(classes, 10);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.chosen[0], 0u);
  EXPECT_EQ(s.chosen[1], 1u);
  EXPECT_DOUBLE_EQ(s.total_cost, 1.0);
}

TEST(MckpTest, ZeroWeightItems) {
  std::vector<std::vector<MckpItem>> classes{{{7.0, 0}}, {{1.0, 0}, {0.5, 3}}};
  MckpSolution s = SolveMckp(classes, 2);
  ASSERT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.total_cost, 8.0);
}

class MckpRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MckpRandomTest, DpMatchesBruteForce) {
  XorShiftRng rng(1000 + GetParam());
  uint32_t num_classes = 2 + static_cast<uint32_t>(rng.NextBounded(4));
  uint32_t weight_limit = 5 + static_cast<uint32_t>(rng.NextBounded(20));
  std::vector<std::vector<MckpItem>> classes(num_classes);
  for (auto& cls : classes) {
    uint32_t items = 1 + static_cast<uint32_t>(rng.NextBounded(4));
    for (uint32_t i = 0; i < items; ++i) {
      cls.push_back({static_cast<double>(rng.NextBounded(100)),
                     static_cast<uint32_t>(rng.NextBounded(12))});
    }
  }
  MckpSolution dp = SolveMckp(classes, weight_limit);
  MckpSolution bf = SolveMckpBruteForce(classes, weight_limit);
  ASSERT_EQ(dp.feasible, bf.feasible);
  if (dp.feasible) {
    EXPECT_DOUBLE_EQ(dp.total_cost, bf.total_cost);
    EXPECT_LE(dp.total_weight, weight_limit);
    // Verify the reconstruction: chosen items re-sum to the reported totals.
    double cost = 0;
    uint32_t weight = 0;
    for (size_t c = 0; c < classes.size(); ++c) {
      cost += classes[c][dp.chosen[c]].cost;
      weight += classes[c][dp.chosen[c]].weight;
    }
    EXPECT_DOUBLE_EQ(cost, dp.total_cost);
    EXPECT_EQ(weight, dp.total_weight);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MckpRandomTest, ::testing::Range(0, 40));

TEST(MckpTest, LargeInstanceRunsFast) {
  // The paper's scale: ~64-128 classes, P=2048, ~30 items each; the DP must be
  // effectively instant (paper reports 0.01s).
  XorShiftRng rng(9);
  std::vector<std::vector<MckpItem>> classes(128);
  for (auto& cls : classes) {
    for (int i = 0; i < 30; ++i) {
      cls.push_back({static_cast<double>(rng.NextBounded(1000)),
                     static_cast<uint32_t>(1 + rng.NextBounded(64))});
    }
  }
  MckpSolution s = SolveMckp(classes, 2048);
  EXPECT_TRUE(s.feasible);
  EXPECT_LE(s.total_weight, 2048u);
}

}  // namespace
}  // namespace fm
