#include "src/graph/transpose.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/gen/powerlaw_graph.h"
#include "tests/test_util.h"

namespace fm {
namespace {

TEST(TransposeTest, ReversesEveryEdge) {
  CsrGraph g = SmallGraph();
  CsrGraph t = Transpose(g);
  EXPECT_EQ(t.num_vertices(), g.num_vertices());
  EXPECT_EQ(t.num_edges(), g.num_edges());
  for (Vid v = 0; v < g.num_vertices(); ++v) {
    for (Vid u : g.neighbors(v)) {
      EXPECT_TRUE(t.HasEdge(u, v)) << u << "->" << v;
    }
  }
  t.CheckValid();
  EXPECT_TRUE(t.AdjacencySorted());
}

TEST(TransposeTest, DoubleTransposeIsIdentity) {
  PowerLawConfig config;
  config.degrees.num_vertices = 3000;
  config.degrees.avg_degree = 7;
  CsrGraph g = GeneratePowerLawGraph(config);
  EXPECT_TRUE(Identical(Transpose(Transpose(g)), g));
}

TEST(TransposeTest, CarriesWeights) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 2.5f);
  b.AddEdge(0, 2, 7.0f);
  b.AddEdge(2, 1, 1.5f);
  CsrGraph t = Transpose(b.Build());
  ASSERT_TRUE(t.weighted());
  // In-edges of 1: from 0 (2.5) and from 2 (1.5), sorted by source.
  auto nbrs = t.neighbors(1);
  auto wts = t.neighbor_weights(1);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_FLOAT_EQ(wts[0], 2.5f);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_FLOAT_EQ(wts[1], 1.5f);
}

TEST(TransposeTest, UndirectedGraphIsSelfTranspose) {
  CsrGraph g = StarGraph(10);  // built undirected
  EXPECT_TRUE(Identical(Transpose(g), g));
}

TEST(TransposeTest, EmptyAdjacencies) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  CsrGraph t = Transpose(b.Build());
  EXPECT_EQ(t.degree(0), 0u);
  EXPECT_EQ(t.degree(1), 1u);
  EXPECT_EQ(t.degree(2), 0u);
}

}  // namespace
}  // namespace fm
